/**
 * @file
 * Scenario: a malicious row-hammer kernel attacks a full dual-core
 * system (paper Section VIII-D) and we compare how SCA, PRCAT and
 * DRCAT confine the damage.
 *
 * The attack picks 4 Gaussian-placed target rows per bank (64 targets
 * across the 16 banks) and hammers them with 75 % of all accesses
 * (Heavy mode), mixed into a memory-intensive benign workload.  We
 * run the closed-loop timing simulation and report, per scheme: rows
 * refreshed, execution-time overhead, and whether any victim was ever
 * left unprotected past the threshold.
 */

#include <iostream>

#include "common/table.hpp"
#include "sim/experiment.hpp"

int
main()
{
    using namespace catsim;

    const double scale = 0.1; // fast demo; see docs/DESIGN.md on scaling
    ExperimentRunner runner(scale);

    WorkloadSpec attack;
    attack.name = "comm2";
    attack.isAttack = true;
    attack.attackMode = AttackMode::Heavy;
    attack.attackKernel = 7;

    std::cout << "Row-hammer attack demo: Heavy mode (75% target "
                 "accesses), kernel #7, T=16K\n\n";

    const auto &base =
        runner.baseline(SystemPreset::DualCore2Ch, attack);
    std::cout << "baseline (unprotected): "
              << base.totalActivations << " activations, "
              << base.execSeconds * 1e3 << " ms simulated\n\n";

    TextTable table({"scheme", "refresh events", "rows refreshed",
                     "rows/event", "ETO"});
    for (auto kind :
         {SchemeKind::Sca, SchemeKind::Prcat, SchemeKind::Drcat}) {
        SchemeConfig cfg;
        cfg.kind = kind;
        cfg.numCounters = kind == SchemeKind::Sca ? 128 : 64;
        cfg.maxLevels = 11;
        cfg.threshold = 16384;

        const auto r = runner.evalCmrpo(SystemPreset::DualCore2Ch,
                                        attack, cfg);
        const double eto = runner.evalEto(SystemPreset::DualCore2Ch,
                                          attack, cfg);
        const double perEvent = r.stats.refreshEvents
            ? static_cast<double>(r.stats.victimRowsRefreshed)
                  / static_cast<double>(r.stats.refreshEvents)
            : 0.0;
        table.addRow({cfg.label(),
                      TextTable::num(r.stats.refreshEvents),
                      TextTable::num(r.stats.victimRowsRefreshed),
                      TextTable::fixed(perEvent, 1),
                      TextTable::pct(eto, 3)});
    }
    table.print(std::cout);

    std::cout
        << "\nReading the table: SCA refreshes its whole static group "
           "(hundreds of rows) every time an attacked group trips, "
           "while the CAT variants descend onto each target row and "
           "refresh only a few dozen rows per event - the paper's "
           "Section VIII-D conclusion that CAT-based approaches "
           "confine attacked rows to small groups.\n";
    return 0;
}
