/**
 * @file
 * Quickstart: protect one DRAM bank with a Counter-based Adaptive Tree
 * in ~40 lines.
 *
 * Build & run:
 *   cmake -B build -S . && cmake --build build -j
 *   ./build/examples/quickstart
 *
 * A DRCAT instance watches a bank's row-activation stream.  For each
 * activation it returns a RefreshAction; a non-zero rowCount orders
 * the memory controller to refresh that victim range.  Here we hammer
 * one row among background noise and watch the tree confine the
 * refresh work to a tiny group around the aggressor.
 */

#include <iostream>

#include "common/rng.hpp"
#include "core/drcat.hpp"

int
main()
{
    using namespace catsim;

    const RowAddr kRows = 65536;     // rows in the bank
    const std::uint32_t kT = 32768;  // refresh threshold (DDR3-era)

    // 64 on-chip counters, trees up to 11 levels - the paper's sweet
    // spot (Fig 10).
    Drcat drcat(kRows, /*num_counters=*/64, /*max_levels=*/11, kT);

    Xoshiro256StarStar rng(7);
    const RowAddr aggressor = 31337;

    Count refreshes = 0, rowsRefreshed = 0;
    for (int i = 0; i < 200000; ++i) {
        // 70 % of traffic hammers one row; the rest is background.
        const RowAddr row = rng.nextDouble() < 0.7
            ? aggressor
            : static_cast<RowAddr>(rng.nextBounded(kRows));

        const RefreshAction act = drcat.onActivate(row);
        if (act.triggered()) {
            ++refreshes;
            rowsRefreshed += act.rowCount;
            std::cout << "refresh #" << refreshes << ": rows ["
                      << act.lo << ", " << act.hi << "] ("
                      << act.rowCount << " rows)\n";
        }
    }

    const auto &tree = drcat.tree();
    std::cout << "\naggressor leaf depth: " << tree.leafDepth(aggressor)
              << " (max " << 11 - 1 << "), group ["
              << tree.leafRange(aggressor).first << ", "
              << tree.leafRange(aggressor).second << "]\n"
              << "counter splits: " << drcat.stats().splits
              << ", total rows refreshed: " << rowsRefreshed << "\n"
              << "SRAM accesses per activation (avg): "
              << static_cast<double>(drcat.stats().sramAccesses)
                     / static_cast<double>(drcat.stats().activations)
              << "\n";

    std::cout << "\nThe tree zoomed in on the aggressor: each refresh "
                 "covers only its small group plus the two adjacent "
                 "rows, instead of a 1K-row static group (SCA) or "
                 "random early refreshes (PRA).\n";
    return 0;
}
