/**
 * @file
 * Scenario: evaluate the mitigation design space for YOUR workload.
 *
 * A memory-system architect picks a workload (any of the 18 built-in
 * MSC-style profiles, default blackscholes), sweeps the schemes the
 * paper compares, and reads off the power/performance trade-off:
 * CMRPO broken into dynamic / static / refresh components, plus ETO.
 *
 * Usage:
 *   ./build/examples/workload_study [workload=black] [threshold=32768]
 *                                   [scale=0.1]
 */

#include <iostream>

#include "common/config.hpp"
#include "common/table.hpp"
#include "sim/experiment.hpp"

int
main(int argc, char **argv)
{
    using namespace catsim;

    const Config cfg = Config::fromArgs(argc, argv);
    const std::string name = cfg.getString("workload", "black");
    const auto threshold =
        static_cast<std::uint32_t>(cfg.getUint("threshold", 32768));
    const double scale = cfg.getDouble("scale", 0.1);

    const WorkloadProfile &profile = findWorkload(name);
    std::cout << "workload " << profile.name << " (" << profile.suite
              << "): readRatio=" << profile.readRatio
              << " zipfTheta=" << profile.zipfTheta
              << " hotRows=" << profile.hotRows
              << " hotFraction=" << profile.hotFraction
              << " meanGap=" << profile.meanGap << "\n"
              << "refresh threshold T=" << threshold
              << ", scale=" << scale << "\n\n";

    ExperimentRunner runner(scale);
    WorkloadSpec w;
    w.name = name;

    const auto mk = [threshold](SchemeKind kind,
                                std::uint32_t counters,
                                std::uint32_t levels, double p = 0) {
        SchemeConfig s;
        s.kind = kind;
        s.numCounters = counters;
        s.maxLevels = levels;
        s.threshold = threshold;
        if (p > 0)
            s.praProbability = p;
        return s;
    };
    const SchemeConfig schemes[] = {
        mk(SchemeKind::Pra, 0, 0,
           threshold <= 16384 ? 0.003 : 0.002),
        mk(SchemeKind::Sca, 64, 0),
        mk(SchemeKind::Sca, 128, 0),
        mk(SchemeKind::Prcat, 64, 11),
        mk(SchemeKind::Drcat, 64, 11),
        mk(SchemeKind::CounterCache, 2048, 0),
    };

    TextTable table({"scheme", "CMRPO", "dyn mW", "static mW",
                     "refresh mW", "rows refreshed", "ETO"});
    for (const auto &s : schemes) {
        const auto r =
            runner.evalCmrpo(SystemPreset::DualCore2Ch, w, s);
        const double eto =
            runner.evalEto(SystemPreset::DualCore2Ch, w, s);
        table.addRow({s.label(), TextTable::pct(r.cmrpo, 2),
                      TextTable::fixed(r.power.dynamic, 4),
                      TextTable::fixed(r.power.statik, 4),
                      TextTable::fixed(r.power.refresh, 4),
                      TextTable::num(r.stats.victimRowsRefreshed),
                      TextTable::pct(eto, 3)});
    }
    table.print(std::cout);

    std::cout << "\nHow to read this: PRA pays for random bits on "
                 "every access; SCA pays for coarse group refreshes; "
                 "the CAT variants pay mostly their small static "
                 "cost.  The counter cache is the exact-but-expensive "
                 "upper bound on precision.\n";
    return 0;
}
