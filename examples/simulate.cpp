/**
 * @file
 * Config-driven simulator CLI: run any workload / attack through any
 * scheme on any system preset and print the full result sheet.
 *
 * Usage (key=value arguments, all optional):
 *   simulate scheme=drcat counters=64 levels=11 threshold=32768
 *            workload=black system=dual2ch scale=0.1 seed=42
 *            attack=none|heavy|medium|light kernel=1 p=0.002 eto=1
 *            kind=gaussian|multibank       (alias: kernelkind=)
 *            policy=legacy|lru|lfu|random  (alias: eviction=)
 *            pool=K                        (alias: bankspool=)
 *            bundle=W
 *
 * Everything except scale=/eto=/trace= is read by SystemConfig::parse
 * (sim/system_config.hpp documents the full surface), so any config
 * line printed by SystemConfig::format() pastes straight back into
 * this CLI.  `counters` may be any M >= 2 (the CAT pre-splits unevenly
 * for non-powers of two); `policy` selects the counter-cache victim
 * policy; `pool=K` (K > 1, CAT schemes) shares one pool of K x
 * counters among each group of K consecutive banks - set K to the
 * geometry's banks-per-rank (8) for per-rank pools; `bundle=W` sets
 * the (purely execution-layout) SoA tree-bundle width.
 *   simulate trace=file.trc traceformat=native|dramsim
 *            epochrecords=N scheme=... threshold=...
 *
 * With trace=, the file is ingested (DRAMSim-style or native), mapped
 * through the system's AddressMapper into per-bank activation streams
 * (a kEpochMarker every N=epochrecords records, 0 = single epoch),
 * and replayed through the scheme; the replay stats are printed.
 *
 * Examples:
 *   ./build/examples/simulate
 *   ./build/examples/simulate scheme=sca counters=128 workload=comm1
 *   ./build/examples/simulate scheme=pra p=0.003 threshold=16384
 *   ./build/examples/simulate attack=heavy scheme=drcat eto=1
 *   ./build/examples/simulate trace=hammer.trc traceformat=dramsim
 */

#include <iostream>

#include "common/config.hpp"
#include "common/logging.hpp"
#include "common/table.hpp"
#include "sim/experiment.hpp"
#include "trace/trace_ingest.hpp"

int
main(int argc, char **argv)
{
    using namespace catsim;

    const Config cfg = Config::fromArgs(argc, argv);

    // The whole scheme/system/workload/attack surface is read by the
    // one shared parser; only simulate-specific keys (scale=, eto=,
    // trace=...) are read here.
    const SystemConfig parsed = SystemConfig::parse(cfg);
    const SchemeConfig &scheme = parsed.scheme;
    const SystemPreset preset = parsed.preset;
    const WorkloadSpec &w = parsed.workload;
    const std::string system = systemPresetName(preset);

    // External-trace mode: ingest, map into per-bank streams, replay.
    // Parsed after workload/attack so bogus values of those keys are
    // still rejected; scale/seed do not apply to a fixed trace.
    const std::string tracePath = cfg.getString("trace", "");
    if (!tracePath.empty()) {
        const TraceFormat format = parseTraceFormat(
            cfg.getString("traceformat", "native"));
        if (scheme.kind == SchemeKind::None)
            CATSIM_FATAL("trace replay needs a real scheme");
        VectorTrace trace = readTraceFileAs(tracePath, format);
        const TimingConfig sys = makeSystem(preset);
        const AddressMapper mapper(sys.geometry, sys.mapping);
        const auto streams = traceBankStreams(
            trace, mapper, sys.geometry,
            cfg.getUint("epochrecords", 0));
        const ReplayResult r = replayActivations(
            streams, scheme, sys.geometry.rowsPerBank);

        std::cout << "replaying " << trace.size() << " records from '"
                  << tracePath << "' through " << scheme.label()
                  << " on " << system << "\n\n";
        TextTable sheet({"metric", "value"});
        sheet.addRow({"banks", TextTable::num(r.banks)});
        sheet.addRow({"epochs (bank 0)", TextTable::num(r.epochs)});
        sheet.addRow({"activations",
                      TextTable::num(r.stats.activations)});
        sheet.addRow({"refresh events",
                      TextTable::num(r.stats.refreshEvents)});
        sheet.addRow({"victim rows refreshed",
                      TextTable::num(r.stats.victimRowsRefreshed)});
        sheet.addRow({"SRAM accesses",
                      TextTable::num(r.stats.sramAccesses)});
        sheet.addRow({"CAT splits", TextTable::num(r.stats.splits)});
        sheet.print(std::cout);
        return 0;
    }

    ExperimentRunner runner(cfg.getDouble("scale", 0.1));

    std::cout << "simulating " << w.label() << " on " << system
              << " with " << scheme.label()
              << " (T=" << scheme.threshold
              << ", scale=" << runner.scale() << ")\n"
              << "config: " << parsed.format() << "\n\n";

    const auto &base = runner.baseline(preset, w);
    const auto sys = makeSystem(preset);
    const double banks = sys.geometry.totalBanks();

    TextTable sheet({"metric", "value"});
    sheet.addRow({"simulated time (ms)",
                  TextTable::fixed(base.execSeconds * 1e3, 2)});
    sheet.addRow({"activations", TextTable::num(base.totalActivations)});
    sheet.addRow({"reads", TextTable::num(base.controller.reads)});
    sheet.addRow({"writes", TextTable::num(base.controller.writes)});
    sheet.addRow({"refresh epochs", TextTable::num(base.epochs)});
    sheet.addRow({"activations/bank/epoch",
                  TextTable::fixed(
                      static_cast<double>(base.totalActivations) / banks
                          / std::max<Count>(base.epochs, 1),
                      0)});

    if (scheme.kind != SchemeKind::None) {
        const auto r = runner.evalCmrpo(preset, w, scheme);
        sheet.addRow({"CMRPO", TextTable::pct(r.cmrpo, 2)});
        sheet.addRow({"  dynamic power (mW/bank)",
                      TextTable::fixed(r.power.dynamic, 4)});
        sheet.addRow({"  static power (mW/bank)",
                      TextTable::fixed(r.power.statik, 4)});
        sheet.addRow({"  refresh power (mW/bank)",
                      TextTable::fixed(r.power.refresh, 4)});
        sheet.addRow({"refresh events",
                      TextTable::num(r.stats.refreshEvents)});
        sheet.addRow({"victim rows refreshed",
                      TextTable::num(r.stats.victimRowsRefreshed)});
        sheet.addRow({"CAT splits", TextTable::num(r.stats.splits)});
        sheet.addRow({"DRCAT merges", TextTable::num(r.stats.merges)});
        if (cfg.getBool("eto", false)) {
            sheet.addRow({"ETO",
                          TextTable::pct(
                              runner.evalEto(preset, w, scheme), 3)});
        }
    }
    sheet.print(std::cout);
    return 0;
}
