/**
 * @file
 * Scenario: watch DRCAT's tree follow a migrating hot spot.
 *
 * The paper's Section V motivates DRCAT with temporal changes in
 * access patterns (context switches, application phases).  This
 * example hammers a hot region, lets the tree converge, then moves
 * the hot region and prints, epoch by epoch, how the 2-bit weights
 * merge cold leaves and re-split around the new aggressor - versus
 * PRCAT, which rebuilds from the balanced tree every epoch.
 *
 * The two schemes are independent, so each epoch advances them
 * concurrently via parallelFor (CATSIM_JOBS workers); each scheme owns
 * its RNG and reporting happens after the join, so the output is
 * identical at any job count.
 */

#include <iomanip>
#include <iostream>
#include <vector>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "core/drcat.hpp"

namespace
{

using namespace catsim;

/** One epoch of traffic: 80 % to the hot row, 20 % background. */
template <typename SchemeT>
Count
epochTraffic(SchemeT &scheme, RowAddr hot, std::uint64_t seed)
{
    Xoshiro256StarStar rng(seed);
    // Batch-first: generate the epoch's stream, hand it over in one
    // onActivateBatch call (bit-identical to the per-call loop), and
    // read the victim-row total off the scheme's stats.
    std::vector<RowAddr> rows(120000);
    for (RowAddr &row : rows)
        row = rng.nextDouble() < 0.8
            ? hot
            : static_cast<RowAddr>(rng.nextBounded(65536));
    const Count before = scheme.stats().victimRowsRefreshed;
    scheme.onActivateBatch(rows.data(), rows.size());
    const Count refreshed =
        scheme.stats().victimRowsRefreshed - before;
    scheme.onEpoch();
    return refreshed;
}

/** Advance both schemes one epoch, DRCAT and PRCAT in parallel. */
std::pair<Count, Count>
epochBoth(Drcat &drcat, Prcat &prcat, RowAddr hot, std::uint64_t seed)
{
    Count d = 0, p = 0;
    parallelFor(2, [&](std::size_t i) {
        if (i == 0)
            d = epochTraffic(drcat, hot, seed);
        else
            p = epochTraffic(prcat, hot, seed);
    });
    return {d, p};
}

void
report(const char *label, const Prcat &scheme, RowAddr hot,
       Count rows_this_epoch)
{
    const auto &tree = scheme.tree();
    const auto [lo, hi] = tree.leafRange(hot);
    std::cout << "  " << std::left << std::setw(6) << label
              << " hot-leaf depth " << tree.leafDepth(hot)
              << ", group size " << (hi - lo + 1) << ", rows refreshed "
              << rows_this_epoch << ", merges so far "
              << scheme.stats().merges << "\n";
}

} // namespace

int
main()
{
    using namespace catsim;

    const std::uint32_t kT = 8192;
    Drcat drcat(65536, 32, 11, kT);
    Prcat prcat(65536, 32, 11, kT);

    const RowAddr hotA = 4242, hotB = 50505;

    std::cout << "Phase 1: hot row " << hotA << " (4 epochs)\n";
    for (int e = 0; e < 4; ++e) {
        const auto [d, p] = epochBoth(drcat, prcat, hotA, 100 + e);
        std::cout << " epoch " << e << ":\n";
        report("DRCAT", drcat, hotA, d);
        report("PRCAT", prcat, hotA, p);
    }

    std::cout << "\nPhase 2: hot row moves to " << hotB
              << " (4 epochs)\n";
    for (int e = 4; e < 8; ++e) {
        const auto [d, p] = epochBoth(drcat, prcat, hotB, 100 + e);
        std::cout << " epoch " << e << ":\n";
        report("DRCAT", drcat, hotB, d);
        report("PRCAT", prcat, hotB, p);
    }

    std::cout << "\ntotals: DRCAT refreshed "
              << drcat.stats().victimRowsRefreshed << " rows with "
              << drcat.stats().merges << " reconfigurations; PRCAT "
              << prcat.stats().victimRowsRefreshed << " rows with "
              << prcat.stats().epochResets << " full rebuilds\n"
              << "\nWhat to look for: DRCAT keeps the deep leaf on the "
                 "hot row across epochs (no re-learning) and, after "
                 "the migration, merges cold sibling leaves (weight 0) "
                 "to free counters for the new hot region (paper "
                 "Fig 7).  The transition epoch is where DRCAT pays "
                 "its chase cost - the coarse refreshes before the "
                 "weights saturate - while PRCAT re-learns through "
                 "free splits but forgets every counter at each epoch, "
                 "which is the accuracy loss Section V-A warns about "
                 "for distributed-refresh DDRx devices.\n";
    return 0;
}
