#include "hw_model.hpp"

#include <cmath>

#include "common/logging.hpp"

namespace catsim
{

namespace
{

/** One Table II row (per bank, L=11, T=32K). */
struct CalRow
{
    double m;          //!< counters
    double dyn;        //!< nJ per access
    double stat;       //!< nJ per 64 ms interval
    double area;       //!< mm^2
};

constexpr CalRow kDrcat[] = {
    {32, 3.05e-4, 5.77e3, 3.16e-2},  {64, 4.30e-4, 1.39e4, 6.12e-2},
    {128, 5.83e-4, 2.77e4, 1.16e-1}, {256, 8.72e-4, 5.44e4, 2.23e-1},
    {512, 1.17e-3, 1.06e5, 3.93e-1},
};

constexpr CalRow kPrcat[] = {
    {32, 2.91e-4, 5.55e3, 3.04e-2},  {64, 4.09e-4, 1.32e4, 5.86e-2},
    {128, 5.50e-4, 2.63e4, 1.11e-1}, {256, 8.25e-4, 5.13e4, 2.11e-1},
    {512, 1.10e-3, 1.02e5, 3.75e-1},
};

constexpr CalRow kSca[] = {
    {32, 1.41e-4, 3.16e3, 1.86e-2},  {64, 1.92e-4, 8.81e3, 4.04e-2},
    {128, 2.22e-4, 1.44e4, 6.04e-2}, {256, 3.12e-4, 2.39e4, 1.00e-1},
    {512, 4.25e-4, 4.52e4, 1.72e-1},
};

/**
 * Piecewise log-log interpolation over the table; outside the table the
 * two nearest points extrapolate the power law.
 */
double
loglog(const CalRow *rows, std::size_t n, double m,
       double CalRow::*field)
{
    std::size_t i = 0;
    while (i + 2 < n && rows[i + 1].m < m)
        ++i;
    const double x0 = std::log2(rows[i].m);
    const double x1 = std::log2(rows[i + 1].m);
    const double y0 = std::log2(rows[i].*field);
    const double y1 = std::log2(rows[i + 1].*field);
    const double x = std::log2(m);
    const double y = y0 + (y1 - y0) * (x - x0) / (x1 - x0);
    return std::pow(2.0, y);
}

/**
 * Dynamic-energy scale for a CAT tree depth different from the
 * calibrated L=11: the number of SRAM accesses per activation ranges
 * from 2 to L - log2(M/4) (Section IV-C); the average scales linearly
 * between those bounds.
 */
double
depthScale(std::uint32_t num_counters, std::uint32_t max_levels)
{
    const double m = std::log2(static_cast<double>(num_counters));
    auto avg = [m](double L) {
        const double maxAcc = std::max(2.0, L - (m - 2.0));
        return (2.0 + maxAcc) / 2.0;
    };
    return avg(static_cast<double>(max_levels)) / avg(11.0);
}

/** Static-energy scale for a counter width different from T=32K. */
double
widthScale(std::uint32_t threshold, bool has_weights)
{
    const double bits = std::log2(static_cast<double>(threshold));
    const double refBits = 15.0; // log2(32768)
    if (has_weights)
        return (bits + 2.0) / (refBits + 2.0);
    return bits / refBits;
}

} // namespace

HwCost
HwModel::cost(SchemeKind kind, std::uint32_t num_counters,
              std::uint32_t max_levels, std::uint32_t threshold)
{
    HwCost c;
    const double m = static_cast<double>(num_counters);
    switch (kind) {
      case SchemeKind::None:
        return c;
      case SchemeKind::Pra:
        // One PRNG is shared across banks; its energy is charged per
        // generated bit by the CMRPO calculator, not here.
        c.areaMm2 = EnergyConstants::kPrngAreaMm2;
        return c;
      case SchemeKind::Sca:
        c.dynPerAccess = loglog(kSca, 5, m, &CalRow::dyn);
        c.staticPerInterval = loglog(kSca, 5, m, &CalRow::stat)
                              * widthScale(threshold, false);
        c.areaMm2 = loglog(kSca, 5, m, &CalRow::area);
        return c;
      case SchemeKind::Prcat:
        c.dynPerAccess = loglog(kPrcat, 5, m, &CalRow::dyn)
                         * depthScale(num_counters, max_levels);
        c.staticPerInterval = loglog(kPrcat, 5, m, &CalRow::stat)
                              * widthScale(threshold, false);
        c.areaMm2 = loglog(kPrcat, 5, m, &CalRow::area);
        return c;
      case SchemeKind::Drcat:
        c.dynPerAccess = loglog(kDrcat, 5, m, &CalRow::dyn)
                         * depthScale(num_counters, max_levels);
        c.staticPerInterval = loglog(kDrcat, 5, m, &CalRow::stat)
                              * widthScale(threshold, true);
        c.areaMm2 = loglog(kDrcat, 5, m, &CalRow::area);
        return c;
      case SchemeKind::CounterCache:
        // Tag + data make a cache of K counters cost about as much as a
        // 2K-counter SCA array (paper Fig 2 discussion, footnote 4).
        c.dynPerAccess = loglog(kSca, 5, 2.0 * m, &CalRow::dyn);
        c.staticPerInterval = loglog(kSca, 5, 2.0 * m, &CalRow::stat)
                              * widthScale(threshold, false);
        c.areaMm2 = loglog(kSca, 5, 2.0 * m, &CalRow::area);
        return c;
      case SchemeKind::MisraGries: {
        // Graphene-style CAM of M entries: a 17-bit row tag plus a
        // log2(T)-bit count per entry (CACTI-lite sizing).  The CAM
        // match sweeps the tag array, charged as one extra access on
        // top of the read + update pair; like the counter cache, tags
        // roughly double the array next to a plain counter file, which
        // the area model reuses.
        const double bits =
            17.0 + std::log2(static_cast<double>(threshold));
        const double bytes = m * bits / 8.0;
        c.dynPerAccess = 3.0 * sramAccessNj(bytes);
        c.staticPerInterval = sramLeakageMw(bytes) * 1e6
                              * EnergyConstants::kIntervalSeconds;
        c.areaMm2 = loglog(kSca, 5, 2.0 * m, &CalRow::area);
        return c;
      }
      case SchemeKind::Rfm: {
        // One RAA counter per bank plus command logic: a few bytes of
        // state, negligible next to any tracking table.
        const double bytes = 4.0;
        c.dynPerAccess = 2.0 * sramAccessNj(bytes);
        c.staticPerInterval = sramLeakageMw(bytes) * 1e6
                              * EnergyConstants::kIntervalSeconds;
        c.areaMm2 = 1.0e-3;
        return c;
      }
    }
    CATSIM_PANIC("unreachable scheme kind in HwModel");
}

MilliWatt
HwModel::regularRefreshPowerMw(RowAddr rows)
{
    return EnergyConstants::kRegularRefreshPowerMw64k
           * (static_cast<double>(rows) / 65536.0);
}

MilliWatt
HwModel::sramLeakageMw(double bytes)
{
    // Anchor: SCA_128 = 128 x 16-bit = 256 B leaks 1.44e4 nJ / 64 ms
    // = 0.225 mW; leakage grows slightly super-linearly with size
    // (decoder + periphery), exponent fit to the Table II column.
    const double anchorBytes = 256.0;
    const double anchorMw = 1.44e4 / 64e3;
    return anchorMw * std::pow(bytes / anchorBytes, 0.96);
}

NanoJoule
HwModel::sramAccessNj(double bytes)
{
    // Anchor: SCA_128 spends 2.22e-4 nJ on 2 accesses => 1.11e-4 nJ per
    // access of a 256 B array; access energy grows ~ sqrt(size)
    // (bitline/wordline halves), exponent fit to the Table II column.
    const double anchorBytes = 256.0;
    const double anchorNj = 1.11e-4;
    return anchorNj * std::pow(bytes / anchorBytes, 0.40);
}

} // namespace catsim
