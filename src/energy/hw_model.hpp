/**
 * @file
 * Hardware energy/area model for the mitigation schemes.
 *
 * The paper synthesized Verilog for DRCAT/PRCAT/SCA control logic with
 * Synopsys DC/PrimeTime (45 nm FreePDK) and modeled SRAM with CACTI;
 * Table II lists the resulting per-bank costs for M in {32..512} at
 * L=11, T=32K.  Those numbers are embedded here as a calibration table;
 * configurations the paper does not list are obtained by log-log
 * interpolation/extrapolation in M, a linear scaling of dynamic energy
 * with the average number of SRAM accesses (which grows with tree
 * depth), and a linear scaling of static energy with counter width
 * log2(T) (+2 weight bits for DRCAT).  See docs/DESIGN.md Section 3.
 */

#ifndef CATSIM_ENERGY_HW_MODEL_HPP
#define CATSIM_ENERGY_HW_MODEL_HPP

#include <cstdint>

#include "common/types.hpp"
#include "core/factory.hpp"

namespace catsim
{

/** Per-bank hardware cost of a scheme configuration. */
struct HwCost
{
    NanoJoule dynPerAccess = 0.0;      //!< nJ per row activation
    NanoJoule staticPerInterval = 0.0; //!< nJ per 64 ms refresh interval
    double areaMm2 = 0.0;
};

/** Physical constants used across the evaluation. */
struct EnergyConstants
{
    /** Energy to refresh one DRAM row (Ghosh & Lee, MICRO'07). */
    static constexpr NanoJoule kRefreshPerRowNj = 1.0;

    /** Regular refresh power for a 64K-row bank (paper Section VI). */
    static constexpr MilliWatt kRegularRefreshPowerMw64k = 2.5;

    /** PRNG energy per generated bit (Srinivasan+, VLSIC'10). */
    static constexpr NanoJoule kPrngPerBitNj = 2.917e-3;

    /** PRNG area (Table II). */
    static constexpr double kPrngAreaMm2 = 4.004e-3;

    /** Refresh interval length in seconds. */
    static constexpr double kIntervalSeconds = 0.064;

    /**
     * Energy of one counter read or write in reserved DRAM (counter-
     * cache miss path).  DRAM array access energy dwarfs SRAM; value
     * follows the activate+rw energy of a narrow burst.
     */
    static constexpr NanoJoule kCounterDramAccessNj = 5.0;

    /**
     * Amortization of Table II static energy in the CMRPO calculation.
     * Taken verbatim per bank, the published static energies are
     * inconsistent with the paper's own CMRPO results (e.g. DRCAT64
     * static alone would be 1.39e4 nJ / 64 ms = 8.7 % of 2.5 mW, yet
     * Fig 8 reports 4 % TOTAL; DRCAT512's plateau in Fig 10 likewise
     * implies ~4x).  The paper's figures are reproduced when static
     * energy is amortized by this factor (the tracking structure is
     * plausibly shared by several banks in the synthesized design).
     * Table II itself is reported unscaled (bench_table2_hw).
     */
    static constexpr double kStaticAmortization = 4.0;
};

/** Table II-calibrated cost model. */
class HwModel
{
  public:
    /**
     * Per-bank cost of a scheme.
     *
     * @param kind  Scheme family.
     * @param num_counters M for SCA/CAT; cache capacity (counters) for
     *              the counter-cache baseline.
     * @param max_levels   L (CAT families only).
     * @param threshold    Refresh threshold T (counter width).
     */
    static HwCost cost(SchemeKind kind, std::uint32_t num_counters,
                       std::uint32_t max_levels, std::uint32_t threshold);

    /** Regular (baseline) refresh power for a bank of @p rows rows. */
    static MilliWatt regularRefreshPowerMw(RowAddr rows);

    /**
     * CACTI-lite: leakage power (mW) of an SRAM array of @p bytes at
     * 45 nm.  Anchored so that an SCA counter array reproduces the
     * Table II static energy.
     */
    static MilliWatt sramLeakageMw(double bytes);

    /** CACTI-lite: dynamic energy (nJ) of one SRAM access. */
    static NanoJoule sramAccessNj(double bytes);
};

} // namespace catsim

#endif // CATSIM_ENERGY_HW_MODEL_HPP
