/**
 * @file
 * CMRPO - Crosstalk Mitigation Refresh Power Overhead (paper
 * Section VI).
 *
 * CMRPO is the average power a mitigation scheme spends deciding which
 * rows to refresh plus actually refreshing them, relative to the
 * regular retention-refresh power of the bank (2.5 mW per 64K rows).
 * Three components add up (Section VII-B):
 *   1. dynamic power: per-activation scheme energy x activation rate;
 *   2. static power: SRAM + logic leakage over the refresh interval;
 *   3. refresh power: 1 nJ per victim row x victim-refresh rate.
 */

#ifndef CATSIM_ENERGY_CMRPO_HPP
#define CATSIM_ENERGY_CMRPO_HPP

#include "core/factory.hpp"
#include "core/mitigation.hpp"
#include "energy/hw_model.hpp"

namespace catsim
{

/** Power components of a scheme, per bank, in mW. */
struct PowerBreakdown
{
    MilliWatt dynamic = 0.0;
    MilliWatt statik = 0.0;
    MilliWatt refresh = 0.0;

    MilliWatt total() const { return dynamic + statik + refresh; }
};

/**
 * Per-bank power of a scheme given measured event counts.
 *
 * @param config   Scheme configuration (selects the Table II row).
 * @param stats    Event counts accumulated over the run (per bank, or
 *                 totals divided by bank count).
 * @param exec_seconds Wall-clock execution time of the run.
 */
PowerBreakdown schemePower(const SchemeConfig &config,
                           const SchemeStats &stats,
                           double exec_seconds);

/** CMRPO: power overhead relative to regular refresh of the bank. */
double cmrpo(const PowerBreakdown &power, RowAddr rows_per_bank);

/** Convenience: schemePower + cmrpo in one call. */
double cmrpoOf(const SchemeConfig &config, const SchemeStats &stats,
               double exec_seconds, RowAddr rows_per_bank);

/**
 * ETO - execution time overhead: slowdown of a run with mitigation
 * relative to the unprotected baseline (paper Section VI).
 */
double eto(double baseline_seconds, double mitigated_seconds);

} // namespace catsim

#endif // CATSIM_ENERGY_CMRPO_HPP
