#include "cmrpo.hpp"

#include "common/logging.hpp"

namespace catsim
{

PowerBreakdown
schemePower(const SchemeConfig &config, const SchemeStats &stats,
            double exec_seconds)
{
    if (exec_seconds <= 0.0)
        CATSIM_FATAL("schemePower needs a positive execution time");

    HwCost hw = HwModel::cost(config.kind, config.numCounters,
                              config.maxLevels, config.threshold);
    if (config.banksPerPool > 1
        && (config.kind == SchemeKind::Prcat
            || config.kind == SchemeKind::Drcat)) {
        // Rank-shared counter pool: one structure of k x M counters
        // serves k banks.  Every activation pays the bigger array's
        // dynamic access energy (plus the arbitration access already
        // counted in sramAccesses), while leakage and area are the
        // bank's 1/k share.  See docs/DESIGN.md Section 9.
        const double k = static_cast<double>(config.banksPerPool);
        const HwCost rank = HwModel::cost(
            config.kind, config.numCounters * config.banksPerPool,
            config.maxLevels, config.threshold);
        hw.dynPerAccess = rank.dynPerAccess;
        hw.staticPerInterval = rank.staticPerInterval / k;
        hw.areaMm2 = rank.areaMm2 / k;
    }

    PowerBreakdown p;
    // nJ / s = nW; divide by 1e6 for mW.
    const double toMw = 1e-6;

    double dynNj = hw.dynPerAccess * static_cast<double>(stats.activations);
    // PRA draws per decision; a random-eviction counter cache draws
    // per conflict miss (both report through stats.prngBits).
    if (config.kind == SchemeKind::Pra
        || (config.kind == SchemeKind::CounterCache
            && config.evictionPolicy == EvictionPolicyKind::Random)) {
        dynNj += EnergyConstants::kPrngPerBitNj
                 * static_cast<double>(stats.prngBits);
    }
    if (config.kind == SchemeKind::CounterCache) {
        dynNj += EnergyConstants::kCounterDramAccessNj
                 * static_cast<double>(stats.counterDramReads
                                       + stats.counterDramWrites);
    }
    p.dynamic = dynNj / exec_seconds * toMw;

    p.statik = hw.staticPerInterval / EnergyConstants::kIntervalSeconds
               / EnergyConstants::kStaticAmortization * toMw;

    p.refresh = EnergyConstants::kRefreshPerRowNj
                * static_cast<double>(stats.victimRowsRefreshed)
                / exec_seconds * toMw;
    return p;
}

double
cmrpo(const PowerBreakdown &power, RowAddr rows_per_bank)
{
    return power.total() / HwModel::regularRefreshPowerMw(rows_per_bank);
}

double
cmrpoOf(const SchemeConfig &config, const SchemeStats &stats,
        double exec_seconds, RowAddr rows_per_bank)
{
    return cmrpo(schemePower(config, stats, exec_seconds),
                 rows_per_bank);
}

double
eto(double baseline_seconds, double mitigated_seconds)
{
    if (baseline_seconds <= 0.0)
        CATSIM_FATAL("eto needs a positive baseline time");
    return (mitigated_seconds - baseline_seconds) / baseline_seconds;
}

} // namespace catsim
