/**
 * @file
 * Parallel sweep engine over experiment grids.
 *
 * The paper's headline figures are grids of independent
 * workload x scheme x system evaluations (Fig 10: counters x levels x
 * thresholds x 18 workloads), so a SweepRunner takes the whole grid as
 * a flat vector of cells and evaluates them across a thread pool
 * (CATSIM_JOBS workers by default).  Results come back indexed by cell
 * - never by completion order - and every cell's evaluation is
 * deterministic given its spec, so the output is bit-identical to the
 * serial path at any job count.
 *
 * Cells that share a (preset, workload) pair share one baseline timing
 * run: the underlying ExperimentRunner's cache hands out per-key
 * shared futures, so the first cell to need a baseline computes it and
 * concurrent cells block instead of duplicating the work.
 */

#ifndef CATSIM_SIM_SWEEP_HPP
#define CATSIM_SIM_SWEEP_HPP

#include <cstddef>
#include <functional>
#include <vector>

#include "common/parallel.hpp"
#include "sim/experiment.hpp"

namespace catsim
{

/** One grid point: what to run and which scheme to evaluate. */
struct SweepCell
{
    SystemPreset preset = SystemPreset::DualCore2Ch;
    WorkloadSpec workload;
    SchemeConfig scheme;
    /** Free-form variant id for runMetric callbacks (e.g. which split
     *  schedule an ablation cell evaluates); unused by runCmrpo/Eto. */
    std::uint64_t tag = 0;

    /** The cell as one SystemConfig - the single parse/format/label
     *  surface (sim/system_config.hpp); benches derive cell tags from
     *  this instead of hand-assembling label strings. */
    SystemConfig system() const { return {preset, workload, scheme}; }

    /** "scheme@workload/preset" via SystemConfig::label(). */
    std::string label() const { return system().label(); }
};

/**
 * One closed-loop grid point (bench_fig14_adaptive): an adaptive
 * attack scenario against a scheme.  No recorded baseline is involved,
 * so these cells are pure functions of their spec and need no shared
 * cache at all.
 */
struct AdaptiveCell
{
    SystemPreset preset = SystemPreset::DualCore2Ch;
    AdaptiveAttackSpec attack;
    SchemeConfig scheme;
};

/** Evaluates experiment grids concurrently. */
class SweepRunner
{
  public:
    /**
     * @param scale Experiment scale forwarded to ExperimentRunner.
     * @param jobs  Worker count (1 = serial; default CATSIM_JOBS).
     */
    explicit SweepRunner(double scale = experimentScale(),
                         std::size_t jobs = defaultJobs());

    /** CMRPO replay for every cell; results[i] belongs to cells[i]. */
    std::vector<EvalResult> runCmrpo(const std::vector<SweepCell> &cells);

    /** ETO timing run for every cell; results[i] belongs to cells[i]. */
    std::vector<double> runEto(const std::vector<SweepCell> &cells);

    /**
     * Closed-loop adaptive-attack replay for every cell; results[i]
     * belongs to cells[i].  Cells never touch the baseline cache, so
     * the grid parallelizes embarrassingly and stays bit-identical at
     * any job count.
     */
    std::vector<EvalResult> runAdaptive(
        const std::vector<AdaptiveCell> &cells);

    /**
     * Closed-loop ETO timing runs (two runTimingOnSources legs per
     * cell, see ExperimentRunner::evalAdaptiveEto); results[i] belongs
     * to cells[i].  Like runAdaptive, cells are pure functions of
     * their spec - no baseline cache, bit-identical at any job count.
     */
    std::vector<double> runAdaptiveEto(
        const std::vector<AdaptiveCell> &cells);

    /**
     * Arbitrary per-cell metric over closed-loop cells (the
     * AdaptiveCell counterpart of runMetric); results[i] belongs to
     * cells[i].  @p fn must be deterministic given its cell and
     * thread-safe - the runner's evalAdaptive* family is.  fig14 uses
     * this for the attacker-success (max inter-refresh disturbance)
     * complement of the CMRPO grid.
     */
    std::vector<double> runAdaptiveMetric(
        const std::vector<AdaptiveCell> &cells,
        const std::function<double(ExperimentRunner &,
                                   const AdaptiveCell &)> &fn);

    /**
     * Arbitrary per-cell metric on the same pool and shared baseline
     * cache; results[i] belongs to cells[i].  @p fn must be
     * deterministic given its cell and thread-safe against concurrent
     * calls (the shared ExperimentRunner is).  This is how benches
     * with bespoke evaluations (e.g. the split-schedule ablation's
     * victim-row replays) ride the sweep engine without teaching it
     * their metric.
     */
    std::vector<double> runMetric(
        const std::vector<SweepCell> &cells,
        const std::function<double(ExperimentRunner &,
                                   const SweepCell &)> &fn);

    /** The shared runner (baseline cache, counters, disk cache dir). */
    ExperimentRunner &runner() { return runner_; }

    std::size_t jobs() const { return jobs_; }
    double scale() const { return runner_.scale(); }

  private:
    ExperimentRunner runner_;
    std::size_t jobs_;
};

} // namespace catsim

#endif // CATSIM_SIM_SWEEP_HPP
