/**
 * @file
 * Parallel sweep engine over experiment grids.
 *
 * The paper's headline figures are grids of independent
 * workload x scheme x system evaluations (Fig 10: counters x levels x
 * thresholds x 18 workloads), so a SweepRunner takes the whole grid as
 * a flat vector of cells and evaluates them across a thread pool
 * (CATSIM_JOBS workers by default).  Results come back indexed by cell
 * - never by completion order - and every cell's evaluation is
 * deterministic given its spec, so the output is bit-identical to the
 * serial path at any job count.
 *
 * Cells that share a (preset, workload) pair share one baseline timing
 * run: the underlying ExperimentRunner's cache hands out per-key
 * shared futures, so the first cell to need a baseline computes it and
 * concurrent cells block instead of duplicating the work.
 *
 * Crash safety: with CATSIM_CHECKPOINT=dir every finished cell is
 * journaled (sim/checkpoint.hpp) the moment it completes, and a
 * restarted run replays the journal and re-runs only the missing
 * cells - because each cell is a pure function of its spec, the
 * resumed output is byte-identical to an uninterrupted run.  With
 * CATSIM_SWEEP_KEEP_GOING=1 a failing cell is retried once and then
 * recorded as a structured CellError while the rest of the grid
 * completes (default remains fail-fast).
 */

#ifndef CATSIM_SIM_SWEEP_HPP
#define CATSIM_SIM_SWEEP_HPP

#include <cstddef>
#include <functional>
#include <map>
#include <vector>

#include "common/parallel.hpp"
#include "sim/checkpoint.hpp"
#include "sim/experiment.hpp"

namespace catsim
{

/** One grid point: what to run and which scheme to evaluate. */
struct SweepCell
{
    SystemPreset preset = SystemPreset::DualCore2Ch;
    WorkloadSpec workload;
    SchemeConfig scheme;
    /** Free-form variant id for runMetric callbacks (e.g. which split
     *  schedule an ablation cell evaluates); unused by runCmrpo/Eto. */
    std::uint64_t tag = 0;

    /** The cell as one SystemConfig - the single parse/format/label
     *  surface (sim/system_config.hpp); benches derive cell tags from
     *  this instead of hand-assembling label strings. */
    SystemConfig system() const { return {preset, workload, scheme}; }

    /** "scheme@workload/preset" via SystemConfig::label(). */
    std::string label() const { return system().label(); }
};

/**
 * One closed-loop grid point (bench_fig14_adaptive): an adaptive
 * attack scenario against a scheme.  No recorded baseline is involved,
 * so these cells are pure functions of their spec and need no shared
 * cache at all.
 */
struct AdaptiveCell
{
    SystemPreset preset = SystemPreset::DualCore2Ch;
    AdaptiveAttackSpec attack;
    SchemeConfig scheme;
};

/**
 * One cell that failed permanently under keep-going mode: which cell,
 * what it was, and what its final attempt threw.  The cell's result
 * slot holds NaN (metric runs) or an EvalResult with cmrpo = NaN, and
 * the cell is NOT journaled, so a checkpointed resume re-runs exactly
 * the failed cells.
 */
struct CellError
{
    std::size_t index = 0;  //!< position in the cells vector
    std::string label;      //!< cell label for the error report
    std::string message;    //!< what() of the last attempt
    int attempts = 0;       //!< evaluation attempts made (max 2)
};

/** Evaluates experiment grids concurrently. */
class SweepRunner
{
  public:
    /**
     * @param scale Experiment scale forwarded to ExperimentRunner.
     * @param jobs  Worker count (1 = serial; default CATSIM_JOBS).
     */
    explicit SweepRunner(double scale = experimentScale(),
                         std::size_t jobs = defaultJobs());

    /** CMRPO replay for every cell; results[i] belongs to cells[i]. */
    std::vector<EvalResult> runCmrpo(const std::vector<SweepCell> &cells);

    /** ETO timing run for every cell; results[i] belongs to cells[i]. */
    std::vector<double> runEto(const std::vector<SweepCell> &cells);

    /**
     * Closed-loop adaptive-attack replay for every cell; results[i]
     * belongs to cells[i].  Cells never touch the baseline cache, so
     * the grid parallelizes embarrassingly and stays bit-identical at
     * any job count.
     */
    std::vector<EvalResult> runAdaptive(
        const std::vector<AdaptiveCell> &cells);

    /**
     * Closed-loop ETO timing runs (two runTimingOnSources legs per
     * cell, see ExperimentRunner::evalAdaptiveEto); results[i] belongs
     * to cells[i].  Like runAdaptive, cells are pure functions of
     * their spec - no baseline cache, bit-identical at any job count.
     */
    std::vector<double> runAdaptiveEto(
        const std::vector<AdaptiveCell> &cells);

    /**
     * Arbitrary per-cell metric over closed-loop cells (the
     * AdaptiveCell counterpart of runMetric); results[i] belongs to
     * cells[i].  @p fn must be deterministic given its cell and
     * thread-safe - the runner's evalAdaptive* family is.  fig14 uses
     * this for the attacker-success (max inter-refresh disturbance)
     * complement of the CMRPO grid.
     */
    std::vector<double> runAdaptiveMetric(
        const std::vector<AdaptiveCell> &cells,
        const std::function<double(ExperimentRunner &,
                                   const AdaptiveCell &)> &fn);

    /**
     * Arbitrary per-cell metric on the same pool and shared baseline
     * cache; results[i] belongs to cells[i].  @p fn must be
     * deterministic given its cell and thread-safe against concurrent
     * calls (the shared ExperimentRunner is).  This is how benches
     * with bespoke evaluations (e.g. the split-schedule ablation's
     * victim-row replays) ride the sweep engine without teaching it
     * their metric.
     */
    std::vector<double> runMetric(
        const std::vector<SweepCell> &cells,
        const std::function<double(ExperimentRunner &,
                                   const SweepCell &)> &fn);

    /** The shared runner (baseline cache, counters, disk cache dir). */
    ExperimentRunner &runner() { return runner_; }

    std::size_t jobs() const { return jobs_; }
    double scale() const { return runner_.scale(); }

    /**
     * Directory for the crash-safe run journal; "" disables
     * checkpointing.  Defaults to the CATSIM_CHECKPOINT environment
     * variable.  Not thread-safe against in-flight runs.
     */
    void setCheckpointDir(const std::string &dir) { checkpointDir_ = dir; }
    const std::string &checkpointDir() const { return checkpointDir_; }

    /**
     * Keep-going mode: a failing cell is retried once, then recorded
     * in lastErrors() while every other cell completes.  Defaults to
     * the CATSIM_SWEEP_KEEP_GOING environment variable (=1 enables);
     * off means fail-fast (the first cell failure aborts the grid,
     * though cells finished before it are still journaled).
     */
    void setKeepGoing(bool keepGoing) { keepGoing_ = keepGoing; }
    bool keepGoing() const { return keepGoing_; }

    /**
     * Per-cell errors from the most recent run* call (empty on full
     * success or in fail-fast mode, which throws instead).  Sorted by
     * cell index.
     */
    const std::vector<CellError> &lastErrors() const { return errors_; }

    /** Cells served from the journal by the most recent run* call. */
    std::size_t lastResumedCells() const { return resumedCells_; }

  private:
    /**
     * Shared engine behind every run* method: journal replay, cell
     * evaluation across the pool, retry/keep-going handling, and
     * per-cell journal appends.  @p kind names the run flavor (part
     * of the journal run key); @p specs/@p labels are per-cell.
     */
    template <typename Result>
    std::vector<Result> runJournaled(
        const char *kind, const std::vector<std::string> &specs,
        const std::vector<std::string> &labels,
        const std::function<Result(std::size_t)> &eval);

    ExperimentRunner runner_;
    std::size_t jobs_;
    std::string checkpointDir_;
    bool keepGoing_ = false;
    std::vector<CellError> errors_;
    std::size_t resumedCells_ = 0;
    /** Per-kind invocation counter: distinguishes repeated grids (and
     *  different runMetric callbacks) within one process, and is
     *  reproduced by a re-run of the same bench, so resume matches. */
    std::map<std::string, std::uint64_t> callSeq_;
};

} // namespace catsim

#endif // CATSIM_SIM_SWEEP_HPP
