/**
 * @file
 * The one configuration surface for a simulated system: which machine
 * preset, which workload/attack the cores run, and which mitigation
 * scheme (with eviction policy, counter pooling and bundle width)
 * defends the banks.
 *
 * Historically three parsers grew independently - the simulate CLI's
 * flag block, per-bench cell builders, and ad-hoc label formatting -
 * each accepting a slightly different key set.  SystemConfig::parse is
 * now the single reader of the key=value surface and
 * SystemConfig::format the single writer: `parse(fromString(format()))`
 * round-trips exactly, so a printed config line IS a reproduction
 * recipe.  The legacy simulate flags (`eviction=`, `bankspool=`,
 * `kernelkind=`) remain as aliases of the canonical keys.
 *
 * Key surface (all optional, shown with canonical names):
 *   system=dual2ch|quad2ch|quad4ch
 *   workload=<profile> seed=<n>
 *   attack=none|heavy|medium|light kernel=<1..12>
 *   kind=gaussian|multibank            (alias: kernelkind=)
 *   scheme=none|sca|pra|prcat|drcat|cc
 *   counters=<M> levels=<L> threshold=<T>
 *   p=<PRA prob> lfsr=0|1 ways=<CC assoc> schemeseed=<n>
 *   policy=legacy|lru|lfu|random       (alias: eviction=)
 *   pool=<banks per shared pool>       (alias: bankspool=)
 *   bundle=<banks per SoA tree bundle, 0 = default, 1 = off>
 */

#ifndef CATSIM_SIM_SYSTEM_CONFIG_HPP
#define CATSIM_SIM_SYSTEM_CONFIG_HPP

#include <string>

#include "common/config.hpp"
#include "core/factory.hpp"
#include "trace/attack.hpp"
#include "trace/attack_kernel.hpp"

namespace catsim
{

/** System shape presets used in the paper. */
enum class SystemPreset
{
    DualCore2Ch,  //!< Table I default
    QuadCore2Ch,  //!< Section VIII-B
    QuadCore4Ch,  //!< Section VIII-B
};

/** Canonical preset key, e.g. "dual2ch". */
const char *systemPresetName(SystemPreset preset);

/** Parse "dual2ch|quad2ch|quad4ch" (fatal otherwise). */
SystemPreset parseSystemPreset(const std::string &name);

/** What the cores execute. */
struct WorkloadSpec
{
    std::string name;              //!< workload profile name
    bool isAttack = false;
    AttackMode attackMode = AttackMode::Medium;
    std::uint64_t attackKernel = 1; //!< 1..12
    /** Target placement (Gaussian = paper default; MultiBank
     *  synchronizes one target set across all banks). */
    AttackKernelKind attackKernelKind = AttackKernelKind::Gaussian;
    std::uint64_t seed = 42;

    std::string label() const;
};

/**
 * Everything one evaluation cell needs: machine x workload x scheme.
 */
struct SystemConfig
{
    SystemPreset preset = SystemPreset::DualCore2Ch;
    WorkloadSpec workload;
    SchemeConfig scheme;

    /**
     * Read the full key=value surface (canonical keys and legacy
     * aliases) from @p cfg; unknown values are fatal, missing keys
     * keep paper defaults - byte-compatible with the historical
     * simulate CLI parser.
     */
    static SystemConfig parse(const Config &cfg);

    /** Convenience: parse a "key=value ..." string. */
    static SystemConfig parse(const std::string &text)
    {
        return parse(Config::fromString(text));
    }

    /**
     * Canonical key=value line; only non-default keys are emitted, and
     * parse(format()) reproduces this config exactly.  (A programmatic
     * custom split-threshold schedule is the one field with no key; it
     * is never emitted and cannot round-trip.)
     */
    std::string format() const;

    /**
     * Human tag for tables and reports:
     * "<scheme label>@<workload label>/<preset>" - every piece routed
     * through the same single formatter the labels always came from.
     */
    std::string label() const;
};

} // namespace catsim

#endif // CATSIM_SIM_SYSTEM_CONFIG_HPP
