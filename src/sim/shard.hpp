/**
 * @file
 * Fleet-scale sharded simulation.
 *
 * A ShardPlan carves a topology's flat bank space into contiguous
 * per-shard ranges; ShardedSim runs one independent replay per shard
 * and merges the results.  Each shard builds its OWN schemes and
 * sources inside its worker job - the factory packs a shard's
 * TreeBundles into that shard's arenas, and because construction
 * happens on the worker thread, first-touch allocation keeps each
 * shard's slab local to the NUMA node the worker is pinned to
 * (CATSIM_NUMA_PIN=1).  Shards share no mutable state; the only
 * cross-shard traffic is the result merge on the caller's thread.
 *
 * Determinism: a shard over banks [first, first+n) builds exactly the
 * per-bank schemes the whole-topology run would (global-bank seed
 * derivation and pool grouping via makeBankSchemes' first_bank), shard
 * boundaries are aligned to counter-pool groups so no pool is ever
 * split, and SchemeStats merge by integer summation (order-free).  So
 * the merged FleetResult is bit-identical at ANY shard count and ANY
 * CATSIM_JOBS - the scaling knobs move work between cores, never
 * results.  Epoch counts are taken from the shard owning global bank
 * 0, matching the unsharded replay's bank-0 rule.
 *
 * Fleet runs checkpoint per shard through the PR 8 journal
 * (CATSIM_CHECKPOINT=dir): a SIGKILLed run resumes with finished
 * shards decoded from disk and only the rest re-run, byte-identically.
 * With CATSIM_SWEEP_KEEP_GOING=1 a failing shard is retried once and
 * then reported as a structured ShardError while the rest of the
 * fleet completes (the `shard_task` fail point injects such failures
 * deterministically).
 */

#ifndef CATSIM_SIM_SHARD_HPP
#define CATSIM_SIM_SHARD_HPP

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/parallel.hpp"
#include "controller/address_mapping.hpp"
#include "core/factory.hpp"
#include "dram/geometry.hpp"
#include "sim/activation_sim.hpp"
#include "sim/activation_source.hpp"
#include "trace/trace_ingest.hpp"

namespace catsim
{

/** Shard count from CATSIM_SHARDS (>= 1); 1 when unset/unparsable. */
std::uint32_t defaultShards();

/** One shard's contiguous slice of the flat bank space. */
struct ShardRange
{
    std::uint32_t firstBank = 0;
    std::uint32_t numBanks = 0;
};

/**
 * Partition of num_banks flat banks into contiguous shard ranges,
 * balanced to within one pool group.  Boundaries always align to
 * banks_per_pool groups, so a SharedCounterPool never straddles
 * shards; the shard count is clamped to the number of groups.
 */
class ShardPlan
{
  public:
    static ShardPlan make(std::uint32_t num_banks,
                          std::uint32_t num_shards,
                          std::uint32_t banks_per_pool = 1);

    const std::vector<ShardRange> &shards() const { return shards_; }
    std::uint32_t numShards() const
    {
        return static_cast<std::uint32_t>(shards_.size());
    }
    std::uint32_t numBanks() const { return numBanks_; }

    /** Canonical "banks=B/shards=S" string (journal keys, logs). */
    std::string spec() const;

  private:
    std::vector<ShardRange> shards_;
    std::uint32_t numBanks_ = 0;
};

/** A shard that failed permanently in keep-going mode. */
struct ShardError
{
    std::size_t shard = 0;   //!< index into plan().shards()
    std::string message;
    int attempts = 0;
};

/** Merged fleet replay outcome. */
struct FleetResult
{
    ReplayResult total;                  //!< summed over live shards
    std::vector<ReplayResult> perShard;  //!< indexed by shard
    std::vector<ShardError> errors;      //!< keep-going failures, by shard
    std::uint64_t steals = 0;            //!< pool steals (telemetry)
    std::size_t resumedShards = 0;       //!< decoded from the journal
};

/**
 * Runs a sharded replay: one job per shard on a work-stealing pool
 * (uneven shards - attacked banks run hot - are what the stealing is
 * for), merged into one FleetResult.
 */
class ShardedSim
{
  public:
    /** Builds bank @p global_bank's source (nullptr = idle bank). */
    using SourceFactory =
        std::function<std::unique_ptr<ActivationSource>(
            std::uint32_t global_bank)>;

    ShardedSim(SchemeConfig scheme, RowAddr rows_per_bank,
               ShardPlan plan, std::size_t jobs = defaultJobs());

    const ShardPlan &plan() const { return plan_; }

    /**
     * Source-driven fleet run: each shard builds its banks' sources
     * via @p make_source and replays them through replaySources with
     * its global first_bank, journaling the shard's ReplayResult under
     * @p tag when CATSIM_CHECKPOINT is set.
     */
    FleetResult run(const SourceFactory &make_source,
                    const std::string &tag);

    /**
     * Streaming trace fleet replay: windows @p stream through a
     * TraceWindower (bounded memory - feed it a StreamingTraceReader
     * and the trace is never resident) and feeds each window's
     * per-bank rows to persistent per-shard schemes.  Restricted to
     * private-pool configs (banksPerPool == 1): the pooled replay's
     * round-robin contention interleave is not reproducible window by
     * window, so pooled trace replays must use the in-RAM path (fatal
     * here).  Journaled all-or-nothing under @p tag: a completed run
     * resumes from the journal without touching the trace; a partial
     * one re-streams from the start.
     */
    FleetResult replayTrace(TraceStream &stream,
                            const AddressMapper &mapper,
                            const DramGeometry &geometry,
                            std::uint64_t epoch_every,
                            std::size_t window_records,
                            const std::string &tag);

  private:
    FleetResult runShards(
        const char *kind, const std::string &tag,
        const std::function<ReplayResult(const ShardRange &,
                                         std::size_t)> &eval_shard);
    std::vector<std::string> shardKeys(const char *kind) const;
    std::string runKey(const char *kind, const std::string &tag,
                       std::uint64_t seq,
                       const std::vector<std::string> &keys) const;
    void finishTotals(FleetResult *fleet,
                      const std::vector<char> &live) const;

    SchemeConfig scheme_;
    RowAddr rowsPerBank_;
    ShardPlan plan_;
    std::size_t jobs_;
    std::string checkpointDir_;
    bool keepGoing_;
    std::map<std::string, std::uint64_t> callSeq_;
};

} // namespace catsim

#endif // CATSIM_SIM_SHARD_HPP
