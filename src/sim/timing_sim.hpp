/**
 * @file
 * Timing simulation front ends over the unified discrete-event engine
 * (sim/event_engine.hpp): cores -> memory controller -> DRAM, with a
 * mitigation scheme attached to every bank.
 *
 * Two front ends share the engine, the controller, and the epoch
 * timer:
 *
 *  - runTiming: trace-driven cores.  Each core is a Source actor that
 *    consumes one trace record per event, so requests reach the
 *    controller in arrival order (exact for closed-page FR-FCFS,
 *    which has no row hits to reorder for).  Bit-identical to the
 *    frozen reference loop (sim/reference_timing_sim.hpp).
 *  - runTimingOnSources: stimulus-driven banks.  Each DRAM bank is a
 *    Source actor fed by an ActivationSource at the fastest legal ACT
 *    cadence (one per tRC); closed-loop sources observe every
 *    RefreshAction mid-flight and can re-aim, which is what makes ETO
 *    under an adaptive attacker expressible at all.
 *
 * Both emit epoch callbacks at every (scaled) 64 ms auto-refresh
 * boundary through the engine-owned epoch timer and can record the
 * per-bank activation streams for later cheap replay (ActivationSim).
 */

#ifndef CATSIM_SIM_TIMING_SIM_HPP
#define CATSIM_SIM_TIMING_SIM_HPP

#include <functional>
#include <memory>
#include <vector>

#include "common/types.hpp"
#include "controller/address_mapping.hpp"
#include "controller/memory_controller.hpp"
#include "core/factory.hpp"
#include "dram/dram_system.hpp"
#include "sim/activation_source.hpp"
#include "sim/core_model.hpp"
#include "trace/trace.hpp"

namespace catsim
{

/** Full system configuration for one timing run. */
struct TimingConfig
{
    DramGeometry geometry = DramGeometry::dualCore2Ch();
    DramTiming timing = DramTiming::ddr3_1600();
    MappingPolicy mapping = MappingPolicy::RowRankBankChanCol;
    CoreParams core;
    std::uint32_t numCores = 2;
    SchemeConfig scheme;              //!< SchemeKind::None = baseline
    bool recordActivations = false;
    /**
     * Epoch length scale (1.0 = the real 64 ms interval).  Scaling the
     * epoch together with the refresh threshold (see
     * ExperimentScaling in experiment.hpp) keeps the counting dynamics
     * faithful while shortening runs.
     */
    double epochScale = 1.0;
};

/** Per-core trace factory: build core i's stream. */
using StreamFactory =
    std::function<std::unique_ptr<TraceStream>(CoreId core)>;

/** Results of one timing run. */
struct TimingResult
{
    Cycle execCycles = 0;
    double execSeconds = 0.0;
    Count epochs = 0;
    ControllerStats controller;
    SchemeStats scheme;               //!< summed over banks
    Count totalActivations = 0;
    Count victimRowsRefreshed = 0;
    /** Per flat bank: rows activated in order, kEpochMarker at epochs. */
    std::vector<std::vector<RowAddr>> bankStreams;
};

/** Run one closed-loop timing simulation with trace-driven cores. */
TimingResult runTiming(const TimingConfig &config,
                       const StreamFactory &make_stream);

/**
 * Run one timing simulation where every DRAM bank is driven by its
 * own stimulus source (sources[i] is flat bank i's; null = idle bank).
 * Each bank hammers at one ACT per tRC on its local clock; victim
 * refreshes ordered by the scheme block the bank, so mitigation cost
 * lands in execCycles (read at the DRAM pin, i.e. last completion).
 * Closed-loop sources receive onRefreshAction for every activation
 * they issue, including untriggered ones.  The sources' own Epoch
 * chunks are pacing metadata on this path; real boundaries come from
 * the engine's epoch timer.  Sources are stateful - pass fresh ones
 * per run.
 */
TimingResult runTimingOnSources(
    const TimingConfig &config,
    const std::vector<std::unique_ptr<ActivationSource>> &sources);

} // namespace catsim

#endif // CATSIM_SIM_TIMING_SIM_HPP
