/**
 * @file
 * Closed-loop timing simulation: cores -> memory controller -> DRAM,
 * with a mitigation scheme attached to every bank.
 *
 * Cores are advanced in global time order, so requests reach the
 * controller in arrival order (exact for closed-page FR-FCFS, which has
 * no row hits to reorder for).  The simulator emits epoch callbacks at
 * every 64 ms auto-refresh boundary and can record the per-bank
 * activation streams for later cheap replay (ActivationSim).
 */

#ifndef CATSIM_SIM_TIMING_SIM_HPP
#define CATSIM_SIM_TIMING_SIM_HPP

#include <functional>
#include <memory>
#include <vector>

#include "common/types.hpp"
#include "controller/address_mapping.hpp"
#include "controller/memory_controller.hpp"
#include "core/factory.hpp"
#include "dram/dram_system.hpp"
#include "sim/core_model.hpp"
#include "trace/trace.hpp"

namespace catsim
{

/** Full system configuration for one timing run. */
struct SystemConfig
{
    DramGeometry geometry = DramGeometry::dualCore2Ch();
    DramTiming timing = DramTiming::ddr3_1600();
    MappingPolicy mapping = MappingPolicy::RowRankBankChanCol;
    CoreParams core;
    std::uint32_t numCores = 2;
    SchemeConfig scheme;              //!< SchemeKind::None = baseline
    bool recordActivations = false;
    /**
     * Epoch length scale (1.0 = the real 64 ms interval).  Scaling the
     * epoch together with the refresh threshold (see
     * ExperimentScaling in experiment.hpp) keeps the counting dynamics
     * faithful while shortening runs.
     */
    double epochScale = 1.0;
};

/** Per-core trace factory: build core i's stream. */
using StreamFactory =
    std::function<std::unique_ptr<TraceStream>(CoreId core)>;

/** Results of one timing run. */
struct TimingResult
{
    Cycle execCycles = 0;
    double execSeconds = 0.0;
    Count epochs = 0;
    ControllerStats controller;
    SchemeStats scheme;               //!< summed over banks
    Count totalActivations = 0;
    Count victimRowsRefreshed = 0;
    /** Per flat bank: rows activated in order, kEpochMarker at epochs. */
    std::vector<std::vector<RowAddr>> bankStreams;
};

/** Run one closed-loop timing simulation. */
TimingResult runTiming(const SystemConfig &config,
                       const StreamFactory &make_stream);

} // namespace catsim

#endif // CATSIM_SIM_TIMING_SIM_HPP
