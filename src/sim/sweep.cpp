#include "sweep.hpp"

namespace catsim
{

SweepRunner::SweepRunner(double scale, std::size_t jobs)
    : runner_(scale), jobs_(jobs ? jobs : 1)
{
}

std::vector<EvalResult>
SweepRunner::runCmrpo(const std::vector<SweepCell> &cells)
{
    std::vector<EvalResult> results(cells.size());
    parallelFor(
        cells.size(),
        [this, &cells, &results](std::size_t i) {
            const SweepCell &c = cells[i];
            results[i] =
                runner_.evalCmrpo(c.preset, c.workload, c.scheme);
        },
        jobs_);
    return results;
}

std::vector<double>
SweepRunner::runEto(const std::vector<SweepCell> &cells)
{
    std::vector<double> results(cells.size());
    parallelFor(
        cells.size(),
        [this, &cells, &results](std::size_t i) {
            const SweepCell &c = cells[i];
            results[i] =
                runner_.evalEto(c.preset, c.workload, c.scheme);
        },
        jobs_);
    return results;
}

std::vector<EvalResult>
SweepRunner::runAdaptive(const std::vector<AdaptiveCell> &cells)
{
    std::vector<EvalResult> results(cells.size());
    parallelFor(
        cells.size(),
        [this, &cells, &results](std::size_t i) {
            const AdaptiveCell &c = cells[i];
            results[i] =
                runner_.evalAdaptive(c.preset, c.attack, c.scheme);
        },
        jobs_);
    return results;
}

std::vector<double>
SweepRunner::runAdaptiveEto(const std::vector<AdaptiveCell> &cells)
{
    std::vector<double> results(cells.size());
    parallelFor(
        cells.size(),
        [this, &cells, &results](std::size_t i) {
            const AdaptiveCell &c = cells[i];
            results[i] =
                runner_.evalAdaptiveEto(c.preset, c.attack, c.scheme);
        },
        jobs_);
    return results;
}

std::vector<double>
SweepRunner::runAdaptiveMetric(
    const std::vector<AdaptiveCell> &cells,
    const std::function<double(ExperimentRunner &,
                               const AdaptiveCell &)> &fn)
{
    std::vector<double> results(cells.size());
    parallelFor(
        cells.size(),
        [this, &cells, &results, &fn](std::size_t i) {
            results[i] = fn(runner_, cells[i]);
        },
        jobs_);
    return results;
}

std::vector<double>
SweepRunner::runMetric(
    const std::vector<SweepCell> &cells,
    const std::function<double(ExperimentRunner &, const SweepCell &)>
        &fn)
{
    std::vector<double> results(cells.size());
    parallelFor(
        cells.size(),
        [this, &cells, &results, &fn](std::size_t i) {
            results[i] = fn(runner_, cells[i]);
        },
        jobs_);
    return results;
}

} // namespace catsim
