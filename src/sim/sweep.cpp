#include "sweep.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <memory>
#include <mutex>
#include <sstream>

#include "common/fault_injection.hpp"
#include "common/logging.hpp"

namespace catsim
{

namespace
{

bool
keepGoingFromEnv()
{
    const char *env = std::getenv("CATSIM_SWEEP_KEEP_GOING");
    return env && std::string(env) == "1";
}

/** Canonical spec string: the whole cell, so a changed grid misses. */
std::string
cellSpec(const SweepCell &c)
{
    return c.system().format() + "|tag=" + std::to_string(c.tag);
}

std::string
cellSpec(const AdaptiveCell &c)
{
    std::ostringstream os;
    os << SystemConfig{c.preset, WorkloadSpec{}, c.scheme}.format()
       << "|attacker=" << attackerKindName(c.attack.attacker)
       << "|mode=" << static_cast<int>(c.attack.mode)
       << "|kernel=" << c.attack.kernel << "|seed=" << c.attack.seed
       << "|targets=" << c.attack.targetsPerBank
       << "|epochs=" << c.attack.epochs;
    return os.str();
}

std::string
cellLabel(const SweepCell &c)
{
    return c.label();
}

std::string
cellLabel(const AdaptiveCell &c)
{
    return std::string(attackerKindName(c.attack.attacker)) + "@"
           + SystemConfig{c.preset, WorkloadSpec{}, c.scheme}.label();
}

template <typename Cell>
std::vector<std::string>
specsOf(const std::vector<Cell> &cells)
{
    std::vector<std::string> specs;
    specs.reserve(cells.size());
    for (const auto &c : cells)
        specs.push_back(cellSpec(c));
    return specs;
}

template <typename Cell>
std::vector<std::string>
labelsOf(const std::vector<Cell> &cells)
{
    std::vector<std::string> labels;
    labels.reserve(cells.size());
    for (const auto &c : cells)
        labels.push_back(cellLabel(c));
    return labels;
}

/** Journal blob codecs; doubles bit-exact so resumes are identical. */
std::string
encodeResult(double v)
{
    BlobWriter w;
    w.putDouble(v);
    return w.str();
}

bool
decodeResult(const std::string &blob, double *v)
{
    BlobReader r(blob);
    return r.getDouble(v) && r.atEnd();
}

std::string
encodeResult(const EvalResult &e)
{
    BlobWriter w;
    w.putDouble(e.cmrpo);
    w.putDouble(e.power.dynamic);
    w.putDouble(e.power.statik);
    w.putDouble(e.power.refresh);
    w.putDouble(e.baselineSeconds);
    w.putU64(e.stats.activations);
    w.putU64(e.stats.refreshEvents);
    w.putU64(e.stats.victimRowsRefreshed);
    w.putU64(e.stats.sramAccesses);
    w.putU64(e.stats.prngBits);
    w.putU64(e.stats.splits);
    w.putU64(e.stats.merges);
    w.putU64(e.stats.epochResets);
    w.putU64(e.stats.counterDramReads);
    w.putU64(e.stats.counterDramWrites);
    return w.str();
}

bool
decodeResult(const std::string &blob, EvalResult *e)
{
    BlobReader r(blob);
    return r.getDouble(&e->cmrpo) && r.getDouble(&e->power.dynamic)
           && r.getDouble(&e->power.statik)
           && r.getDouble(&e->power.refresh)
           && r.getDouble(&e->baselineSeconds)
           && r.getU64(&e->stats.activations)
           && r.getU64(&e->stats.refreshEvents)
           && r.getU64(&e->stats.victimRowsRefreshed)
           && r.getU64(&e->stats.sramAccesses)
           && r.getU64(&e->stats.prngBits) && r.getU64(&e->stats.splits)
           && r.getU64(&e->stats.merges)
           && r.getU64(&e->stats.epochResets)
           && r.getU64(&e->stats.counterDramReads)
           && r.getU64(&e->stats.counterDramWrites) && r.atEnd();
}

/** Mark a permanently-failed cell's result slot. */
void
markFailed(double *v)
{
    *v = std::numeric_limits<double>::quiet_NaN();
}

void
markFailed(EvalResult *e)
{
    *e = EvalResult{};
    e->cmrpo = std::numeric_limits<double>::quiet_NaN();
}

/** what() of the in-flight exception (for CellError records). */
std::string
currentExceptionMessage()
{
    try {
        throw;
    } catch (const std::exception &e) {
        return e.what();
    } catch (...) {
        return "unknown error";
    }
}

} // namespace

SweepRunner::SweepRunner(double scale, std::size_t jobs)
    : runner_(scale), jobs_(jobs ? jobs : 1),
      checkpointDir_(checkpointDirFromEnv()),
      keepGoing_(keepGoingFromEnv())
{
}

template <typename Result>
std::vector<Result>
SweepRunner::runJournaled(const char *kind,
                          const std::vector<std::string> &specs,
                          const std::vector<std::string> &labels,
                          const std::function<Result(std::size_t)> &eval)
{
    const std::size_t n = specs.size();
    std::vector<Result> results(n);
    std::vector<char> done(n, 0);
    errors_.clear();
    resumedCells_ = 0;
    const std::uint64_t seq = callSeq_[kind]++;

    // Replay: journaled cells (validated by key + CRC at open) are
    // decoded in place and never re-run.
    std::unique_ptr<CheckpointJournal> journal;
    std::vector<std::string> keys(n);
    for (std::size_t i = 0; i < n; ++i)
        keys[i] = std::string(kind) + '#' + std::to_string(i) + '|'
                  + specs[i];
    if (!checkpointDir_.empty()) {
        std::ostringstream runKey;
        runKey << kind << "|seq=" << seq << "|scale=" << std::hexfloat
               << scale() << "|cells=" << n;
        for (const auto &k : keys)
            runKey << '|' << k;
        journal = std::make_unique<CheckpointJournal>(checkpointDir_,
                                                      runKey.str());
        std::string blob;
        for (std::size_t i = 0; i < n; ++i) {
            if (journal->lookup(keys[i], &blob)
                && decodeResult(blob, &results[i])) {
                done[i] = 1;
                ++resumedCells_;
            }
        }
        if (resumedCells_ > 0)
            CATSIM_INFORM("checkpoint: resumed ", resumedCells_, "/", n,
                          " ", kind, " cells from ", journal->path());
    }

    std::vector<std::size_t> pending;
    pending.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        if (!done[i])
            pending.push_back(i);

    std::mutex errMutex;
    parallelFor(
        pending.size(),
        [this, &pending, &results, &keys, &labels, &eval, &journal,
         &errMutex](std::size_t pi) {
            const std::size_t i = pending[pi];
            if (!keepGoing_) {
                // Fail-fast: the first cell failure aborts the grid
                // (parallelFor attaches the failing index), but cells
                // that finished before it are journaled below, so a
                // checkpointed re-run picks up from them.
                fault::maybeThrow("sweep_cell");
                results[i] = eval(i);
            } else {
                int attempts = 0;
                for (;;) {
                    ++attempts;
                    try {
                        fault::maybeThrow("sweep_cell");
                        results[i] = eval(i);
                        break;
                    } catch (...) {
                        if (attempts < 2)
                            continue; // transient? one retry
                        CellError err;
                        err.index = i;
                        err.label = labels[i];
                        err.message = currentExceptionMessage();
                        err.attempts = attempts;
                        {
                            std::lock_guard<std::mutex> lock(errMutex);
                            errors_.push_back(std::move(err));
                        }
                        markFailed(&results[i]);
                        return; // failed cells are never journaled
                    }
                }
            }
            if (journal) {
                try {
                    journal->append(keys[i], encodeResult(results[i]));
                } catch (const std::exception &e) {
                    // The result itself is valid; losing its journal
                    // record only costs a re-run on resume.  Keep
                    // going quietly in keep-going mode, die loudly in
                    // fail-fast (a broken journal would make every
                    // later resume silently partial).
                    if (!keepGoing_)
                        throw;
                    CATSIM_WARN("checkpoint append failed for ",
                                labels[i], ": ", e.what());
                }
            }
        },
        jobs_);

    std::sort(errors_.begin(), errors_.end(),
              [](const CellError &a, const CellError &b) {
                  return a.index < b.index;
              });
    if (!errors_.empty()) {
        CATSIM_WARN("sweep keep-going: ", errors_.size(), "/", n, " ",
                    kind, " cells failed permanently; their results "
                    "are NaN and they were not checkpointed");
        for (const auto &e : errors_)
            CATSIM_WARN("  cell ", e.index, " (", e.label, "), ",
                        e.attempts, " attempts: ", e.message);
    }
    return results;
}

std::vector<EvalResult>
SweepRunner::runCmrpo(const std::vector<SweepCell> &cells)
{
    return runJournaled<EvalResult>(
        "cmrpo", specsOf(cells), labelsOf(cells),
        [this, &cells](std::size_t i) {
            const SweepCell &c = cells[i];
            return runner_.evalCmrpo(c.preset, c.workload, c.scheme);
        });
}

std::vector<double>
SweepRunner::runEto(const std::vector<SweepCell> &cells)
{
    return runJournaled<double>(
        "eto", specsOf(cells), labelsOf(cells),
        [this, &cells](std::size_t i) {
            const SweepCell &c = cells[i];
            return runner_.evalEto(c.preset, c.workload, c.scheme);
        });
}

std::vector<EvalResult>
SweepRunner::runAdaptive(const std::vector<AdaptiveCell> &cells)
{
    return runJournaled<EvalResult>(
        "adaptive", specsOf(cells), labelsOf(cells),
        [this, &cells](std::size_t i) {
            const AdaptiveCell &c = cells[i];
            return runner_.evalAdaptive(c.preset, c.attack, c.scheme);
        });
}

std::vector<double>
SweepRunner::runAdaptiveEto(const std::vector<AdaptiveCell> &cells)
{
    return runJournaled<double>(
        "adaptive-eto", specsOf(cells), labelsOf(cells),
        [this, &cells](std::size_t i) {
            const AdaptiveCell &c = cells[i];
            return runner_.evalAdaptiveEto(c.preset, c.attack, c.scheme);
        });
}

std::vector<double>
SweepRunner::runAdaptiveMetric(
    const std::vector<AdaptiveCell> &cells,
    const std::function<double(ExperimentRunner &,
                               const AdaptiveCell &)> &fn)
{
    return runJournaled<double>(
        "adaptive-metric", specsOf(cells), labelsOf(cells),
        [this, &cells, &fn](std::size_t i) {
            return fn(runner_, cells[i]);
        });
}

std::vector<double>
SweepRunner::runMetric(
    const std::vector<SweepCell> &cells,
    const std::function<double(ExperimentRunner &, const SweepCell &)>
        &fn)
{
    return runJournaled<double>(
        "metric", specsOf(cells), labelsOf(cells),
        [this, &cells, &fn](std::size_t i) {
            return fn(runner_, cells[i]);
        });
}

} // namespace catsim
