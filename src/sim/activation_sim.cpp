#include "activation_sim.hpp"

#include "common/logging.hpp"

namespace catsim
{

namespace
{

/** Drive one bank's source through one scheme instance. */
Count
playSource(ActivationSource &source, MitigationScheme &scheme)
{
    const bool closed = source.closedLoop();
    Count epochs = 0;
    for (;;) {
        const RowAddr *rows = nullptr;
        std::size_t count = 0;
        const SourceChunk chunk = source.next(&rows, &count);
        if (chunk == SourceChunk::End)
            break;
        if (chunk == SourceChunk::Epoch) {
            scheme.onEpoch();
            ++epochs;
            continue;
        }
        if (closed) {
            // Per-activation loop: the source sees every RefreshAction,
            // which is what lets adaptive attackers react.
            for (std::size_t i = 0; i < count; ++i) {
                const RefreshAction act = scheme.onActivate(rows[i]);
                source.onRefreshAction(rows[i], act);
            }
        } else {
            // Epoch markers are rare (one per 64 ms of simulated
            // time), so nearly the whole stream goes through tight
            // per-scheme inner loops instead of one virtual call per
            // activation.
            scheme.onActivateBatch(rows, count);
        }
    }
    return epochs;
}

} // namespace

ReplayResult
replaySources(
    const std::vector<std::unique_ptr<ActivationSource>> &sources,
    const SchemeConfig &scheme_config, RowAddr rows_per_bank)
{
    ReplayResult res;
    res.banks = sources.size();

    std::uint32_t bankIdx = 0;
    for (const auto &source : sources) {
        if (!source) {
            ++bankIdx;
            continue;
        }
        SchemeConfig cfg = scheme_config;
        cfg.seed = scheme_config.seed * 1000003ULL + bankIdx;
        auto scheme = makeScheme(cfg, rows_per_bank);
        if (!scheme)
            CATSIM_FATAL("replay needs a real scheme, not None");

        const Count epochs = playSource(*source, *scheme);
        if (bankIdx == 0)
            res.epochs = epochs;
        res.stats.add(scheme->stats());
        ++bankIdx;
    }
    return res;
}

ReplayResult
replayActivations(const std::vector<std::vector<RowAddr>> &bank_streams,
                  const SchemeConfig &scheme_config,
                  RowAddr rows_per_bank)
{
    std::vector<std::unique_ptr<ActivationSource>> sources;
    sources.reserve(bank_streams.size());
    for (const auto &stream : bank_streams)
        sources.push_back(
            std::make_unique<RecordedStreamSource>(stream));
    return replaySources(sources, scheme_config, rows_per_bank);
}

} // namespace catsim
