#include "activation_sim.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace catsim
{

namespace
{

/**
 * Interleave all bank sources round-robin at a fixed activation
 * quantum.  Only used for rank-pooled CAT configs: banks sharing a
 * counter budget must compete for it roughly in parallel, the way the
 * timing simulator's arrival-order interleaving makes them - a
 * sequential bank-by-bank replay would let bank 0 drain the whole
 * pool before bank 1 ever runs.  The quantum (activations per bank
 * per turn) is fixed, so the contention order is deterministic and
 * independent of CATSIM_JOBS; per-scheme results are otherwise
 * identical to the sequential path because batch delivery is
 * semantically per-row.
 */
constexpr std::size_t kPoolQuantum = 1024;

std::vector<Count>
playInterleaved(
    const std::vector<std::unique_ptr<ActivationSource>> &sources,
    const std::vector<std::unique_ptr<MitigationScheme>> &schemes)
{
    struct BankCursor
    {
        const RowAddr *rows = nullptr;
        std::size_t pending = 0;
        bool done = false;
    };
    std::vector<BankCursor> cursors(sources.size());
    std::vector<Count> epochs(sources.size(), 0);
    for (std::size_t b = 0; b < sources.size(); ++b)
        if (!sources[b])
            cursors[b].done = true;

    bool active = true;
    while (active) {
        active = false;
        for (std::size_t b = 0; b < sources.size(); ++b) {
            BankCursor &cur = cursors[b];
            if (cur.done)
                continue;
            active = true;
            ActivationSource &source = *sources[b];
            MitigationScheme &scheme = *schemes[b];
            const bool closed = source.closedLoop();
            std::size_t budget = kPoolQuantum;
            while (budget > 0) {
                if (cur.pending == 0) {
                    const SourceChunk chunk =
                        source.next(&cur.rows, &cur.pending);
                    if (chunk == SourceChunk::End) {
                        cur.done = true;
                        break;
                    }
                    if (chunk == SourceChunk::Epoch) {
                        scheme.onEpoch();
                        ++epochs[b];
                        cur.pending = 0;
                        continue;
                    }
                }
                const std::size_t take =
                    std::min(budget, cur.pending);
                if (closed) {
                    for (std::size_t i = 0; i < take; ++i) {
                        const RefreshAction act =
                            scheme.onActivate(cur.rows[i]);
                        source.onRefreshAction(cur.rows[i], act);
                    }
                } else {
                    scheme.onActivateBatch(cur.rows, take);
                }
                cur.rows += take;
                cur.pending -= take;
                budget -= take;
            }
        }
    }
    return epochs;
}

/** Drive one bank's source through one scheme instance. */
Count
playSource(ActivationSource &source, MitigationScheme &scheme)
{
    const bool closed = source.closedLoop();
    Count epochs = 0;
    for (;;) {
        const RowAddr *rows = nullptr;
        std::size_t count = 0;
        const SourceChunk chunk = source.next(&rows, &count);
        if (chunk == SourceChunk::End)
            break;
        if (chunk == SourceChunk::Epoch) {
            scheme.onEpoch();
            ++epochs;
            continue;
        }
        if (closed) {
            // Per-activation loop: the source sees every RefreshAction,
            // which is what lets adaptive attackers react.
            for (std::size_t i = 0; i < count; ++i) {
                const RefreshAction act = scheme.onActivate(rows[i]);
                source.onRefreshAction(rows[i], act);
            }
        } else {
            // Epoch markers are rare (one per 64 ms of simulated
            // time), so nearly the whole stream goes through tight
            // per-scheme inner loops instead of one virtual call per
            // activation.
            scheme.onActivateBatch(rows, count);
        }
    }
    return epochs;
}

} // namespace

ReplayResult
replaySources(
    const std::vector<std::unique_ptr<ActivationSource>> &sources,
    const SchemeConfig &scheme_config, RowAddr rows_per_bank)
{
    ReplayResult res;
    res.banks = sources.size();

    const bool pooled = scheme_config.banksPerPool > 1
                        && (scheme_config.kind == SchemeKind::Prcat
                            || scheme_config.kind == SchemeKind::Drcat);
    if (pooled) {
        // Banks sharing a counter pool are built together (one pool
        // per bank group) and interleaved round-robin so contention
        // resolves roughly in parallel (see playInterleaved).
        auto schemes = makeBankSchemes(
            scheme_config, rows_per_bank,
            static_cast<std::uint32_t>(sources.size()));
        for (std::size_t b = 0; b < sources.size(); ++b)
            if (sources[b] && !schemes[b])
                CATSIM_FATAL("replay needs a real scheme, not None");
        const std::vector<Count> epochs =
            playInterleaved(sources, schemes);
        if (!epochs.empty())
            res.epochs = epochs[0];
        for (std::size_t b = 0; b < sources.size(); ++b)
            if (sources[b])
                res.stats.add(schemes[b]->stats());
        return res;
    }

    // Private-pool path: one scheme alive at a time (a CounterCache
    // instance carries a per-row backing array, so keeping all banks'
    // schemes alive would multiply peak memory for nothing).  The
    // per-bank seed derivation matches makeBankSchemes.
    std::uint32_t bankIdx = 0;
    for (const auto &source : sources) {
        if (!source) {
            ++bankIdx;
            continue;
        }
        SchemeConfig cfg = scheme_config;
        cfg.seed = scheme_config.seed * 1000003ULL + bankIdx;
        auto scheme = makeScheme(cfg, rows_per_bank);
        if (!scheme)
            CATSIM_FATAL("replay needs a real scheme, not None");

        const Count epochs = playSource(*source, *scheme);
        if (bankIdx == 0)
            res.epochs = epochs;
        res.stats.add(scheme->stats());
        ++bankIdx;
    }
    return res;
}

ReplayResult
replayActivations(const std::vector<std::vector<RowAddr>> &bank_streams,
                  const SchemeConfig &scheme_config,
                  RowAddr rows_per_bank)
{
    std::vector<std::unique_ptr<ActivationSource>> sources;
    sources.reserve(bank_streams.size());
    for (const auto &stream : bank_streams)
        sources.push_back(
            std::make_unique<RecordedStreamSource>(stream));
    return replaySources(sources, scheme_config, rows_per_bank);
}

} // namespace catsim
