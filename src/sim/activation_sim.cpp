#include "activation_sim.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace catsim
{

ReplayResult
replayActivations(const std::vector<std::vector<RowAddr>> &bank_streams,
                  const SchemeConfig &scheme_config,
                  RowAddr rows_per_bank)
{
    ReplayResult res;
    res.banks = bank_streams.size();

    std::uint32_t bankIdx = 0;
    for (const auto &stream : bank_streams) {
        SchemeConfig cfg = scheme_config;
        cfg.seed = scheme_config.seed * 1000003ULL + bankIdx;
        auto scheme = makeScheme(cfg, rows_per_bank);
        if (!scheme)
            CATSIM_FATAL("replay needs a real scheme, not None");

        // Feed marker-delimited chunks through the batch entry point:
        // epoch markers are rare (one per 64 ms of simulated time), so
        // nearly the whole stream goes through tight per-scheme inner
        // loops instead of one virtual call per activation.
        Count epochs = 0;
        const RowAddr *data = stream.data();
        const std::size_t n = stream.size();
        std::size_t begin = 0;
        while (begin <= n) {
            const RowAddr *chunk_end = std::find(
                data + begin, data + n, kEpochMarker);
            const std::size_t end =
                static_cast<std::size_t>(chunk_end - data);
            scheme->onActivateBatch(data + begin, end - begin);
            if (end == n)
                break;
            scheme->onEpoch();
            ++epochs;
            begin = end + 1;
        }
        if (bankIdx == 0)
            res.epochs = epochs;

        const SchemeStats &st = scheme->stats();
        res.stats.activations += st.activations;
        res.stats.refreshEvents += st.refreshEvents;
        res.stats.victimRowsRefreshed += st.victimRowsRefreshed;
        res.stats.sramAccesses += st.sramAccesses;
        res.stats.prngBits += st.prngBits;
        res.stats.splits += st.splits;
        res.stats.merges += st.merges;
        res.stats.epochResets += st.epochResets;
        res.stats.counterDramReads += st.counterDramReads;
        res.stats.counterDramWrites += st.counterDramWrites;
        ++bankIdx;
    }
    return res;
}

} // namespace catsim
