#include "activation_sim.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "core/tree_bundle.hpp"
#include "sim/event_engine.hpp"

namespace catsim
{

namespace
{

/**
 * Pooled-replay activation quantum.  Banks sharing a counter budget
 * must compete for it roughly in parallel, the way the timing
 * simulator's arrival-order interleaving makes them - a sequential
 * bank-by-bank replay would let bank 0 drain the whole pool before
 * bank 1 ever runs.  The quantum (activations per bank per turn) is
 * fixed, so the contention order is deterministic and independent of
 * CATSIM_JOBS; per-scheme results are otherwise identical to the
 * sequential path because batch delivery is semantically per-row.
 */
constexpr std::size_t kPoolQuantum = 1024;

/**
 * Private-pool replay bank.  Every event consumes ONE source chunk and
 * re-arms at the same time (= the bank index), so the engine's FIFO
 * rule for same-actor-same-time events runs each bank to completion
 * before the next bank's first event - the historical sequential
 * order.  The scheme is built lazily on the first event and torn down
 * at End, so at most one bank's scheme is alive at a time (a
 * CounterCache instance carries a per-row backing array; keeping all
 * banks' schemes alive would multiply peak memory for nothing).  The
 * per-bank seed derivation matches makeBankSchemes.
 */
class SequentialBankActor : public SimActor
{
  public:
    SequentialBankActor(EventEngine &engine, ActivationSource &source,
                        const SchemeConfig &scheme_config,
                        RowAddr rows_per_bank, std::uint32_t bank_idx,
                        std::uint32_t global_bank)
        : engine_(engine), source_(source), config_(scheme_config),
          rowsPerBank_(rows_per_bank), bankIdx_(bank_idx)
    {
        config_.seed = scheme_config.seed * 1000003ULL + global_bank;
        id_ = engine_.addActor(this, EventEngine::ActorRole::Source);
        engine_.schedule(id_, static_cast<SimTime>(bank_idx));
    }

    void
    onEvent(SimTime now) override
    {
        if (!scheme_) {
            scheme_ = makeScheme(config_, rowsPerBank_);
            if (!scheme_)
                CATSIM_FATAL("replay needs a real scheme, not None");
        }
        const RowAddr *rows = nullptr;
        std::size_t count = 0;
        const SourceChunk chunk = source_.next(&rows, &count);
        if (chunk == SourceChunk::End) {
            stats_ = scheme_->stats();
            scheme_.reset();
            engine_.retire(id_);
            return;
        }
        if (chunk == SourceChunk::Epoch) {
            scheme_->onEpoch();
            ++epochs_;
        } else if (source_.closedLoop()) {
            // Per-activation loop: the source sees every
            // RefreshAction, which is what lets adaptive attackers
            // react.
            for (std::size_t i = 0; i < count; ++i) {
                const RefreshAction act = scheme_->onActivate(rows[i]);
                source_.onRefreshAction(rows[i], act);
            }
        } else {
            // Epoch markers are rare (one per 64 ms of simulated
            // time), so nearly the whole stream goes through tight
            // per-scheme inner loops instead of one virtual call per
            // activation.
            scheme_->onActivateBatch(rows, count);
        }
        engine_.schedule(id_, now);
    }

    std::uint32_t bankIdx() const { return bankIdx_; }
    Count epochs() const { return epochs_; }
    const SchemeStats &stats() const { return stats_; }

  private:
    EventEngine &engine_;
    ActivationSource &source_;
    SchemeConfig config_;
    RowAddr rowsPerBank_;
    std::uint32_t bankIdx_;
    ActorId id_ = 0;
    std::unique_ptr<MitigationScheme> scheme_;
    SchemeStats stats_;
    Count epochs_ = 0;
};

/**
 * Rank-pooled replay bank.  Every event plays one kPoolQuantum-sized
 * turn against an externally owned scheme and re-arms one turn later;
 * registration in bank order makes the engine's actor-id tie-break
 * visit live banks round-robin within each turn - the historical
 * interleaved order.
 */
class PooledBankActor : public SimActor
{
  public:
    PooledBankActor(EventEngine &engine, ActivationSource &source,
                    MitigationScheme &scheme, std::uint32_t bank_idx)
        : engine_(engine), source_(source), scheme_(scheme),
          bankIdx_(bank_idx)
    {
        id_ = engine_.addActor(this, EventEngine::ActorRole::Source);
        engine_.schedule(id_, 0.0);
    }

    void
    onEvent(SimTime now) override
    {
        const bool closed = source_.closedLoop();
        std::size_t budget = kPoolQuantum;
        while (budget > 0) {
            if (pending_ == 0) {
                const SourceChunk chunk =
                    source_.next(&rows_, &pending_);
                if (chunk == SourceChunk::End) {
                    engine_.retire(id_);
                    return;
                }
                if (chunk == SourceChunk::Epoch) {
                    scheme_.onEpoch();
                    ++epochs_;
                    pending_ = 0;
                    continue;
                }
            }
            const std::size_t take = std::min(budget, pending_);
            if (closed) {
                for (std::size_t i = 0; i < take; ++i) {
                    const RefreshAction act =
                        scheme_.onActivate(rows_[i]);
                    source_.onRefreshAction(rows_[i], act);
                }
            } else {
                scheme_.onActivateBatch(rows_, take);
            }
            rows_ += take;
            pending_ -= take;
            budget -= take;
        }
        engine_.schedule(id_, now + 1.0);
    }

    std::uint32_t bankIdx() const { return bankIdx_; }
    Count epochs() const { return epochs_; }

  private:
    EventEngine &engine_;
    ActivationSource &source_;
    MitigationScheme &scheme_;
    std::uint32_t bankIdx_;
    ActorId id_ = 0;
    const RowAddr *rows_ = nullptr;
    std::size_t pending_ = 0;
    Count epochs_ = 0;
};

/**
 * Bundle-backed replay group.  One actor drives ALL banks of one
 * TreeBundle: every event pulls one chunk per live lane and steps the
 * whole group through the arena's lockstep walk
 * (TreeBundle::onActivateLanes) - one event-engine dispatch per bank
 * GROUP, not per bank.  Non-pooled lanes are fully independent, so the
 * interleaving is invisible in the results; closed-loop lanes fall
 * back to the per-activation feedback loop within the same turn.
 */
class BundleGroupActor : public SimActor
{
  public:
    struct Lane
    {
        ActivationSource *source;
        MitigationScheme *scheme;
        std::uint32_t bundleLane;
        std::uint32_t bankIdx;
        Count epochs = 0;
        bool done = false;
    };

    BundleGroupActor(EventEngine &engine, TreeBundle &bundle,
                     std::vector<Lane> lanes)
        : engine_(engine), bundle_(bundle), lanes_(std::move(lanes))
    {
        id_ = engine_.addActor(this, EventEngine::ActorRole::Source);
        engine_.schedule(id_, 0.0);
    }

    void
    onEvent(SimTime now) override
    {
        batches_.clear();
        std::size_t live = 0;
        for (Lane &lane : lanes_) {
            if (lane.done)
                continue;
            const RowAddr *rows = nullptr;
            std::size_t count = 0;
            const SourceChunk chunk = lane.source->next(&rows, &count);
            if (chunk == SourceChunk::End) {
                lane.done = true;
                continue;
            }
            ++live;
            if (chunk == SourceChunk::Epoch) {
                lane.scheme->onEpoch();
                ++lane.epochs;
            } else if (lane.source->closedLoop()) {
                for (std::size_t i = 0; i < count; ++i) {
                    const RefreshAction act =
                        lane.scheme->onActivate(rows[i]);
                    lane.source->onRefreshAction(rows[i], act);
                }
            } else {
                batches_.push_back({lane.bundleLane, rows, count});
            }
        }
        if (!batches_.empty())
            bundle_.onActivateLanes(batches_.data(), batches_.size());
        if (live == 0) {
            engine_.retire(id_);
            return;
        }
        engine_.schedule(id_, now + 1.0);
    }

    const std::vector<Lane> &lanes() const { return lanes_; }

  private:
    EventEngine &engine_;
    TreeBundle &bundle_;
    std::vector<Lane> lanes_;
    std::vector<TreeBundle::LaneBatch> batches_;
    ActorId id_ = 0;
};

} // namespace

ReplayResult
replaySources(
    const std::vector<std::unique_ptr<ActivationSource>> &sources,
    const SchemeConfig &scheme_config, RowAddr rows_per_bank,
    std::uint32_t first_bank)
{
    ReplayResult res;
    res.banks = sources.size();

    EventEngine engine;
    const bool pooled = scheme_config.banksPerPool > 1
                        && (scheme_config.kind == SchemeKind::Prcat
                            || scheme_config.kind == SchemeKind::Drcat);
    if (pooled) {
        // Banks sharing a counter pool are built together (one pool
        // per bank group) and interleaved round-robin so contention
        // resolves roughly in parallel (see PooledBankActor).
        auto schemes = makeBankSchemes(
            scheme_config, rows_per_bank,
            static_cast<std::uint32_t>(sources.size()), first_bank);
        for (std::size_t b = 0; b < sources.size(); ++b)
            if (sources[b] && !schemes[b])
                CATSIM_FATAL("replay needs a real scheme, not None");

        std::vector<std::unique_ptr<PooledBankActor>> actors;
        actors.reserve(sources.size());
        for (std::size_t b = 0; b < sources.size(); ++b) {
            if (!sources[b])
                continue;
            actors.push_back(std::make_unique<PooledBankActor>(
                engine, *sources[b], *schemes[b],
                static_cast<std::uint32_t>(b)));
        }
        engine.run();

        for (const auto &actor : actors)
            if (actor->bankIdx() == 0)
                res.epochs = actor->epochs();
        for (std::size_t b = 0; b < sources.size(); ++b)
            if (sources[b])
                res.stats.add(schemes[b]->stats());
        return res;
    }

    const bool catFamily = scheme_config.kind == SchemeKind::Prcat
                           || scheme_config.kind == SchemeKind::Drcat;
    if (catFamily && scheme_config.bundleWidth != 1) {
        // Private-pool CAT banks come back bundle-backed from the
        // factory: drive each bundle's banks as ONE group actor so a
        // single event dispatch steps the whole group through the
        // arena's lockstep walk.  CAT trees are small, so holding
        // every bank's scheme at once (unlike the sequential path's
        // one-at-a-time rule, which exists for CounterCache's per-row
        // arrays) costs nothing.
        auto schemes = makeBankSchemes(
            scheme_config, rows_per_bank,
            static_cast<std::uint32_t>(sources.size()), first_bank);
        std::vector<std::unique_ptr<BundleGroupActor>> groups;
        std::vector<BundleGroupActor::Lane> lanes;
        TreeBundle *current = nullptr;
        auto flush = [&]() {
            if (!lanes.empty())
                groups.push_back(std::make_unique<BundleGroupActor>(
                    engine, *current, std::move(lanes)));
            lanes.clear();
        };
        for (std::size_t b = 0; b < sources.size(); ++b) {
            const BundleHint hint = schemes[b]->bundleHint();
            if (!hint.bundled())
                CATSIM_FATAL("factory returned a non-bundled CAT "
                             "scheme for bundleWidth != 1");
            if (hint.bundle != current) {
                flush();
                current = hint.bundle;
            }
            if (sources[b])
                lanes.push_back({sources[b].get(), schemes[b].get(),
                                 hint.lane,
                                 static_cast<std::uint32_t>(b)});
        }
        flush();
        engine.run();

        for (const auto &group : groups)
            for (const auto &lane : group->lanes())
                if (lane.bankIdx == 0)
                    res.epochs = lane.epochs;
        for (std::size_t b = 0; b < sources.size(); ++b)
            if (sources[b])
                res.stats.add(schemes[b]->stats());
        return res;
    }

    std::vector<std::unique_ptr<SequentialBankActor>> actors;
    actors.reserve(sources.size());
    for (std::size_t b = 0; b < sources.size(); ++b) {
        if (!sources[b])
            continue;
        actors.push_back(std::make_unique<SequentialBankActor>(
            engine, *sources[b], scheme_config, rows_per_bank,
            static_cast<std::uint32_t>(b),
            first_bank + static_cast<std::uint32_t>(b)));
    }
    engine.run();

    for (const auto &actor : actors) {
        if (actor->bankIdx() == 0)
            res.epochs = actor->epochs();
        res.stats.add(actor->stats());
    }
    return res;
}

ReplayResult
replayActivations(const std::vector<std::vector<RowAddr>> &bank_streams,
                  const SchemeConfig &scheme_config,
                  RowAddr rows_per_bank)
{
    std::vector<std::unique_ptr<ActivationSource>> sources;
    sources.reserve(bank_streams.size());
    for (const auto &stream : bank_streams)
        sources.push_back(
            std::make_unique<RecordedStreamSource>(stream));
    return replaySources(sources, scheme_config, rows_per_bank);
}

} // namespace catsim
