#include "activation_source.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace catsim
{

SourceChunk
RecordedStreamSource::next(const RowAddr **rows, std::size_t *count)
{
    if (finished_)
        return SourceChunk::End;
    if (nextIsEpoch_) {
        nextIsEpoch_ = false;
        return SourceChunk::Epoch;
    }
    const RowAddr *data = stream_->data();
    const std::size_t n = stream_->size();
    const RowAddr *chunkEnd =
        std::find(data + begin_, data + n, kEpochMarker);
    const std::size_t end = static_cast<std::size_t>(chunkEnd - data);
    *rows = data + begin_;
    *count = end - begin_;
    if (end == n) {
        finished_ = true;
    } else {
        nextIsEpoch_ = true;
        begin_ = end + 1;
    }
    return SourceChunk::Rows;
}

AttackSourceBase::AttackSourceBase(const AttackSourceParams &params)
    : params_(params), aggressors_(params.targets), rng_(params.seed)
{
    if (params_.targets.empty())
        CATSIM_FATAL("attack source needs at least one target row");
    if (params_.actsPerEpoch == 0)
        CATSIM_FATAL("attack source needs actsPerEpoch > 0");
    // A bank-filling aggressor set would leave re-aiming (freshRow)
    // nowhere to rotate to.
    if (params_.targets.size() >= params_.numRows)
        CATSIM_FATAL("attack source needs fewer targets (",
                     params_.targets.size(), ") than rows (",
                     params_.numRows, ")");
    for (RowAddr t : params_.targets) {
        if (t >= params_.numRows)
            CATSIM_FATAL("target row ", t, " outside bank of ",
                         params_.numRows, " rows");
    }
}

bool
AttackSourceBase::atBoundary(SourceChunk *out)
{
    if (pendingEpoch_) {
        pendingEpoch_ = false;
        producedInEpoch_ = 0;
        ++epochsDone_;
        *out = SourceChunk::Epoch;
        return true;
    }
    if (epochsDone_ >= params_.epochs) {
        *out = SourceChunk::End;
        return true;
    }
    return false;
}

void
AttackSourceBase::noteProduced(std::uint64_t n)
{
    producedInEpoch_ += n;
    if (producedInEpoch_ >= params_.actsPerEpoch)
        pendingEpoch_ = true;
}

RowAddr
AttackSourceBase::nextAggressor()
{
    // Many-sided hammer: cycle through the aggressor set.
    lastAggressorIdx_ = hammerIdx_;
    hammerIdx_ = (hammerIdx_ + 1) % aggressors_.size();
    return aggressors_[lastAggressorIdx_];
}

SyntheticAttackSource::SyntheticAttackSource(
    const AttackSourceParams &params)
    : AttackSourceBase(params)
{
    buffer_.resize(kChunk);
}

SourceChunk
SyntheticAttackSource::next(const RowAddr **rows, std::size_t *count)
{
    SourceChunk boundary;
    if (atBoundary(&boundary))
        return boundary;
    const std::size_t n = static_cast<std::size_t>(
        std::min<std::uint64_t>(leftInEpoch(), kChunk));
    for (std::size_t i = 0; i < n; ++i) {
        buffer_[i] = rng_.nextDouble() < params_.targetFraction
            ? nextAggressor()
            : static_cast<RowAddr>(rng_.nextBounded(params_.numRows));
    }
    noteProduced(n);
    *rows = buffer_.data();
    *count = n;
    return SourceChunk::Rows;
}

RefreshAwareAttackerSource::RefreshAwareAttackerSource(
    const AttackSourceParams &params)
    : AttackSourceBase(params)
{
}

RowAddr
RefreshAwareAttackerSource::freshRow()
{
    // Re-aim to a row not currently in the aggressor set.
    for (;;) {
        const auto row =
            static_cast<RowAddr>(rng_.nextBounded(params_.numRows));
        if (std::find(aggressors_.begin(), aggressors_.end(), row)
            == aggressors_.end())
            return row;
    }
}

SourceChunk
RefreshAwareAttackerSource::next(const RowAddr **rows,
                                 std::size_t *count)
{
    SourceChunk boundary;
    if (atBoundary(&boundary))
        return boundary;
    if (rng_.nextDouble() < params_.targetFraction) {
        lastWasAggressor_ = true;
        current_ = nextAggressor();
    } else {
        lastWasAggressor_ = false;
        current_ =
            static_cast<RowAddr>(rng_.nextBounded(params_.numRows));
    }
    noteProduced(1);
    *rows = &current_;
    *count = 1;
    return SourceChunk::Rows;
}

void
RefreshAwareAttackerSource::onRefreshAction(RowAddr row,
                                            const RefreshAction &act)
{
    if (!act.triggered() || !lastWasAggressor_ || row != current_)
        return;
    // The defense just refreshed victims around this aggressor: it has
    // been located.  Rotate it to a fresh row (TRR-style re-aim) so
    // defenses that learn stable hot locations must start over.
    aggressors_[lastAggressorIdx_] = freshRow();
    ++rotations_;
}

CloudMixSource::CloudMixSource(const CloudMixParams &params)
    : params_(params),
      zipf_(params.hotRowsPerTenant, params.zipfTheta),
      rng_(params.seed),
      bases_(params.tenants, 0),
      buffer_(kChunk)
{
    if (params_.tenants == 0)
        CATSIM_FATAL("cloud mix needs at least one tenant");
    if (params_.hotRowsPerTenant == 0
        || params_.hotRowsPerTenant > params_.numRows)
        CATSIM_FATAL("cloud-mix working set of ",
                     params_.hotRowsPerTenant,
                     " rows does not fit a bank of ", params_.numRows,
                     " rows");
    if (params_.actsPerEpoch == 0)
        CATSIM_FATAL("cloud mix needs actsPerEpoch > 0");
    rebase();
}

RowAddr
CloudMixSource::tenantBase(std::uint32_t tenant) const
{
    if (tenant >= bases_.size())
        CATSIM_FATAL("tenant ", tenant, " out of range (",
                     bases_.size(), " tenants)");
    return bases_[tenant];
}

void
CloudMixSource::rebase()
{
    // Bases are a pure hash of (seed, phase, tenant), so relocation
    // happens at the same activation index no matter how the stream
    // was chunked, and a rebuilt source lands in the same phase.
    const std::uint64_t phase =
        params_.phaseEvery ? produced_ / params_.phaseEvery : 0;
    for (std::uint32_t t = 0; t < params_.tenants; ++t) {
        Xoshiro256StarStar h(params_.seed * 0x9E3779B97F4A7C15ULL
                             + phase * 1000003ULL + t);
        bases_[t] =
            static_cast<RowAddr>(h.nextBounded(params_.numRows));
    }
}

SourceChunk
CloudMixSource::next(const RowAddr **rows, std::size_t *count)
{
    if (pendingEpoch_) {
        pendingEpoch_ = false;
        producedInEpoch_ = 0;
        ++epochsDone_;
        return SourceChunk::Epoch;
    }
    if (epochsDone_ >= params_.epochs)
        return SourceChunk::End;
    std::uint64_t n = std::min<std::uint64_t>(
        params_.actsPerEpoch - producedInEpoch_, kChunk);
    if (params_.phaseEvery > 0) {
        // Stop the chunk at the phase boundary so the rebase happens
        // at the exact activation index.
        const std::uint64_t intoPhase = produced_ % params_.phaseEvery;
        n = std::min(n, params_.phaseEvery - intoPhase);
    }
    for (std::uint64_t i = 0; i < n; ++i) {
        const auto tenant = static_cast<std::uint32_t>(
            rng_.nextBounded(params_.tenants));
        const auto offset = static_cast<RowAddr>(zipf_.sample(rng_));
        buffer_[static_cast<std::size_t>(i)] =
            (bases_[tenant] + offset) % params_.numRows;
    }
    produced_ += n;
    producedInEpoch_ += n;
    if (producedInEpoch_ >= params_.actsPerEpoch)
        pendingEpoch_ = true;
    if (params_.phaseEvery > 0 && produced_ % params_.phaseEvery == 0)
        rebase();
    *rows = buffer_.data();
    *count = static_cast<std::size_t>(n);
    return SourceChunk::Rows;
}

} // namespace catsim
