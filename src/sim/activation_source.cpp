#include "activation_source.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace catsim
{

SourceChunk
RecordedStreamSource::next(const RowAddr **rows, std::size_t *count)
{
    if (finished_)
        return SourceChunk::End;
    if (nextIsEpoch_) {
        nextIsEpoch_ = false;
        return SourceChunk::Epoch;
    }
    const RowAddr *data = stream_->data();
    const std::size_t n = stream_->size();
    const RowAddr *chunkEnd =
        std::find(data + begin_, data + n, kEpochMarker);
    const std::size_t end = static_cast<std::size_t>(chunkEnd - data);
    *rows = data + begin_;
    *count = end - begin_;
    if (end == n) {
        finished_ = true;
    } else {
        nextIsEpoch_ = true;
        begin_ = end + 1;
    }
    return SourceChunk::Rows;
}

AttackSourceBase::AttackSourceBase(const AttackSourceParams &params)
    : params_(params), aggressors_(params.targets), rng_(params.seed)
{
    if (params_.targets.empty())
        CATSIM_FATAL("attack source needs at least one target row");
    if (params_.actsPerEpoch == 0)
        CATSIM_FATAL("attack source needs actsPerEpoch > 0");
    // A bank-filling aggressor set would leave re-aiming (freshRow)
    // nowhere to rotate to.
    if (params_.targets.size() >= params_.numRows)
        CATSIM_FATAL("attack source needs fewer targets (",
                     params_.targets.size(), ") than rows (",
                     params_.numRows, ")");
    for (RowAddr t : params_.targets) {
        if (t >= params_.numRows)
            CATSIM_FATAL("target row ", t, " outside bank of ",
                         params_.numRows, " rows");
    }
}

bool
AttackSourceBase::atBoundary(SourceChunk *out)
{
    if (pendingEpoch_) {
        pendingEpoch_ = false;
        producedInEpoch_ = 0;
        ++epochsDone_;
        *out = SourceChunk::Epoch;
        return true;
    }
    if (epochsDone_ >= params_.epochs) {
        *out = SourceChunk::End;
        return true;
    }
    return false;
}

void
AttackSourceBase::noteProduced(std::uint64_t n)
{
    producedInEpoch_ += n;
    if (producedInEpoch_ >= params_.actsPerEpoch)
        pendingEpoch_ = true;
}

RowAddr
AttackSourceBase::nextAggressor()
{
    // Many-sided hammer: cycle through the aggressor set.
    lastAggressorIdx_ = hammerIdx_;
    hammerIdx_ = (hammerIdx_ + 1) % aggressors_.size();
    return aggressors_[lastAggressorIdx_];
}

SyntheticAttackSource::SyntheticAttackSource(
    const AttackSourceParams &params)
    : AttackSourceBase(params)
{
    buffer_.resize(kChunk);
}

SourceChunk
SyntheticAttackSource::next(const RowAddr **rows, std::size_t *count)
{
    SourceChunk boundary;
    if (atBoundary(&boundary))
        return boundary;
    const std::size_t n = static_cast<std::size_t>(
        std::min<std::uint64_t>(leftInEpoch(), kChunk));
    for (std::size_t i = 0; i < n; ++i) {
        buffer_[i] = rng_.nextDouble() < params_.targetFraction
            ? nextAggressor()
            : static_cast<RowAddr>(rng_.nextBounded(params_.numRows));
    }
    noteProduced(n);
    *rows = buffer_.data();
    *count = n;
    return SourceChunk::Rows;
}

RefreshAwareAttackerSource::RefreshAwareAttackerSource(
    const AttackSourceParams &params)
    : AttackSourceBase(params)
{
}

RowAddr
RefreshAwareAttackerSource::freshRow()
{
    // Re-aim to a row not currently in the aggressor set.
    for (;;) {
        const auto row =
            static_cast<RowAddr>(rng_.nextBounded(params_.numRows));
        if (std::find(aggressors_.begin(), aggressors_.end(), row)
            == aggressors_.end())
            return row;
    }
}

SourceChunk
RefreshAwareAttackerSource::next(const RowAddr **rows,
                                 std::size_t *count)
{
    SourceChunk boundary;
    if (atBoundary(&boundary))
        return boundary;
    if (rng_.nextDouble() < params_.targetFraction) {
        lastWasAggressor_ = true;
        current_ = nextAggressor();
    } else {
        lastWasAggressor_ = false;
        current_ =
            static_cast<RowAddr>(rng_.nextBounded(params_.numRows));
    }
    noteProduced(1);
    *rows = &current_;
    *count = 1;
    return SourceChunk::Rows;
}

void
RefreshAwareAttackerSource::onRefreshAction(RowAddr row,
                                            const RefreshAction &act)
{
    if (!act.triggered() || !lastWasAggressor_ || row != current_)
        return;
    // The defense just refreshed victims around this aggressor: it has
    // been located.  Rotate it to a fresh row (TRR-style re-aim) so
    // defenses that learn stable hot locations must start over.
    aggressors_[lastAggressorIdx_] = freshRow();
    ++rotations_;
}

} // namespace catsim
