#include "experiment.hpp"

#include <cmath>
#include <cstdlib>
#include <sstream>

#include "common/config.hpp"
#include "common/logging.hpp"
#include "sim/baseline_io.hpp"

namespace catsim
{

std::string
WorkloadSpec::label() const
{
    if (!isAttack)
        return name;
    std::ostringstream os;
    os << "attack-";
    // The Gaussian default is omitted so pre-existing labels (and the
    // on-disk baseline cache keys derived from them) stay unchanged.
    if (attackKernelKind != AttackKernelKind::Gaussian)
        os << attackKernelKindName(attackKernelKind) << '-';
    os << attackModeName(attackMode) << "-k" << attackKernel
       << "+" << name;
    return os.str();
}

const char *
attackerKindName(AttackerKind kind)
{
    switch (kind) {
      case AttackerKind::Static:
        return "Static";
      case AttackerKind::MultiBank:
        return "MultiBank";
      case AttackerKind::RefreshAware:
        return "RefreshAware";
    }
    return "?";
}

SystemConfig
makeSystem(SystemPreset preset)
{
    SystemConfig sys;
    switch (preset) {
      case SystemPreset::DualCore2Ch:
        sys.geometry = DramGeometry::dualCore2Ch();
        sys.numCores = 2;
        sys.mapping = MappingPolicy::RowRankBankChanCol;
        break;
      case SystemPreset::QuadCore2Ch:
        sys.geometry = DramGeometry::quadCore2Ch();
        sys.numCores = 4;
        sys.mapping = MappingPolicy::RowRankBankChanCol;
        break;
      case SystemPreset::QuadCore4Ch:
        sys.geometry = DramGeometry::quadCore4Ch();
        sys.numCores = 4;
        sys.mapping = MappingPolicy::RowRankBankColChan;
        break;
    }
    return sys;
}

ExperimentRunner::ExperimentRunner(double scale) : scale_(scale)
{
    if (scale_ <= 0.0 || scale_ > 1.0)
        CATSIM_FATAL("experiment scale must be in (0, 1], got ", scale_);
    if (const char *dir = std::getenv("CATSIM_BASELINE_CACHE"))
        cacheDir_ = dir;
}

void
ExperimentRunner::setBaselineCacheDir(const std::string &dir)
{
    cacheDir_ = dir;
}

std::string
ExperimentRunner::baselineCachePath(SystemPreset preset,
                                    const WorkloadSpec &workload) const
{
    if (cacheDir_.empty())
        return {};
    return cacheDir_ + '/'
           + baselineCacheFileName(cacheKey(preset, workload), scale_);
}

std::uint32_t
ExperimentRunner::scaledThreshold(std::uint32_t threshold) const
{
    const auto t = static_cast<std::uint32_t>(
        std::llround(static_cast<double>(threshold) * scale_));
    return std::max<std::uint32_t>(t, 512);
}

SchemeConfig
ExperimentRunner::scaledScheme(const SchemeConfig &scheme) const
{
    SchemeConfig s = scheme;
    if (s.kind == SchemeKind::Pra)
        return s;
    s.threshold = scaledThreshold(scheme.threshold);
    if (!s.splitThresholds.empty()) {
        // Co-scale a custom split schedule proportionally to the
        // scaled refresh threshold (NOT through scaledThreshold's 512
        // floor, which would flatten eager low-threshold schedules)
        // so the schedule keeps its shape relative to T.
        const double ratio = static_cast<double>(s.threshold)
                             / static_cast<double>(scheme.threshold);
        for (auto &t : s.splitThresholds)
            t = std::max<std::uint32_t>(
                2, static_cast<std::uint32_t>(std::llround(
                       static_cast<double>(t) * ratio)));
        s.splitThresholds.back() = s.threshold;
    }
    return s;
}

std::uint64_t
ExperimentRunner::recordsFor(const WorkloadSpec &workload,
                             const SystemConfig &sys) const
{
    const WorkloadProfile &p = findWorkload(workload.name);
    const double epochCycles =
        static_cast<double>(sys.timing.refreshIntervalCycles()) * scale_;
    // A record occupies roughly gap/retire-rate bus cycles of compute
    // plus a couple of cycles of memory pressure per core.
    double gap = p.meanGap;
    if (workload.isAttack) {
        const double tf = attackTargetFraction(workload.attackMode);
        gap = tf * 8.0 + (1.0 - tf) * gap;
    }
    const double retire = static_cast<double>(sys.core.retireWidth)
                          * static_cast<double>(sys.core.cpuMult);
    const double cyclesPerRecord = gap / retire + 2.0;
    const double target = 1.2 * epochCycles / cyclesPerRecord;
    return static_cast<std::uint64_t>(std::max(target, 50000.0));
}

std::string
ExperimentRunner::cacheKey(SystemPreset preset,
                           const WorkloadSpec &workload) const
{
    std::ostringstream os;
    os << static_cast<int>(preset) << '/' << workload.label() << '/'
       << workload.seed;
    return os.str();
}

StreamFactory
ExperimentRunner::streamFactory(const WorkloadSpec &workload,
                                const SystemConfig &sys,
                                std::uint64_t records,
                                const AddressMapper &mapper) const
{
    WorkloadProfile profile = findWorkload(workload.name);
    if (profile.phaseEvery > 0) {
        // Interpret a non-zero phaseEvery as "this workload has
        // phases" and re-anchor the relocation period to simulated
        // time: about one hot-set turnover every 1.5 epochs,
        // independent of the experiment scale.
        profile.phaseEvery =
            std::max<std::uint64_t>(records * 5 / 4, 1);
    }
    const DramGeometry geometry = sys.geometry;
    if (workload.isAttack) {
        const AttackMode mode = workload.attackMode;
        const std::uint64_t kernel = workload.attackKernel;
        const AttackKernelKind kind = workload.attackKernelKind;
        const std::uint64_t seed = workload.seed;
        return [profile, geometry, &mapper, mode, kernel, kind, seed,
                records](CoreId core) -> std::unique_ptr<TraceStream> {
            return std::make_unique<AttackWorkload>(
                profile, geometry, mapper, mode, kernel,
                seed * 7919ULL + core + 1, records, 4, kind);
        };
    }
    const std::uint64_t seed = workload.seed;
    return [profile, geometry, &mapper, seed,
            records](CoreId core) -> std::unique_ptr<TraceStream> {
        return std::make_unique<SyntheticWorkload>(
            profile, geometry, mapper, seed * 7919ULL + core + 1,
            records);
    };
}

ExperimentRunner::BaselinePtr
ExperimentRunner::computeBaseline(SystemPreset preset,
                                  const WorkloadSpec &workload,
                                  const std::string &key)
{
    SystemConfig sys = makeSystem(preset);
    sys.scheme.kind = SchemeKind::None;
    sys.recordActivations = true;
    sys.epochScale = scale_;

    auto entry = std::make_shared<BaselineEntry>();
    entry->mapper = std::make_unique<AddressMapper>(sys.geometry,
                                                    sys.mapping);

    const std::string path = baselineCachePath(preset, workload);
    if (!path.empty()
        && loadBaseline(path, key, scale_, &entry->timing)) {
        diskLoads_.fetch_add(1);
        return entry;
    }

    const std::uint64_t records = recordsFor(workload, sys);
    auto factory = streamFactory(workload, sys, records,
                                 *entry->mapper);
    entry->timing = runTiming(sys, factory);
    computeCount_.fetch_add(1);

    if (!path.empty())
        saveBaseline(path, key, scale_, entry->timing);
    return entry;
}

const ExperimentRunner::BaselineEntry &
ExperimentRunner::baselineEntry(SystemPreset preset,
                                const WorkloadSpec &workload)
{
    const std::string key = cacheKey(preset, workload);

    std::promise<BaselinePtr> promise;
    std::shared_future<BaselinePtr> future;
    bool owner = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = baselines_.find(key);
        if (it != baselines_.end()) {
            future = it->second;
        } else {
            future = promise.get_future().share();
            baselines_.emplace(key, future);
            owner = true;
        }
    }
    // The owning thread computes outside the lock; everyone else
    // blocks on the shared future, so a baseline is computed exactly
    // once no matter how many sweep cells need it concurrently.
    if (owner) {
        try {
            promise.set_value(computeBaseline(preset, workload, key));
        } catch (...) {
            // Waiters see the real error; dropping the cache entry
            // lets a later call retry instead of hitting a
            // broken_promise forever.
            {
                std::lock_guard<std::mutex> lock(mutex_);
                baselines_.erase(key);
            }
            promise.set_exception(std::current_exception());
        }
    }
    return *future.get();
}

const TimingResult &
ExperimentRunner::baseline(SystemPreset preset,
                           const WorkloadSpec &workload)
{
    return baselineEntry(preset, workload).timing;
}

EvalResult
ExperimentRunner::evalFromReplay(const ReplayResult &replay,
                                 const SchemeConfig &scheme,
                                 double exec_seconds,
                                 const SystemConfig &sys) const
{
    // Per-bank averages feed the per-bank power model.
    const double banks = static_cast<double>(replay.banks);
    SchemeStats perBank;
    perBank.activations = static_cast<Count>(
        static_cast<double>(replay.stats.activations) / banks);
    perBank.prngBits = static_cast<Count>(
        static_cast<double>(replay.stats.prngBits) / banks);
    perBank.counterDramReads = static_cast<Count>(
        static_cast<double>(replay.stats.counterDramReads) / banks);
    perBank.counterDramWrites = static_cast<Count>(
        static_cast<double>(replay.stats.counterDramWrites) / banks);
    // De-scale threshold-triggered refresh work: each scaled epoch
    // produces the real per-epoch refresh count but lasts only
    // s * 64 ms of simulated time.
    const double refreshScale =
        (scheme.kind == SchemeKind::Pra) ? 1.0 : scale_;
    perBank.victimRowsRefreshed = static_cast<Count>(
        static_cast<double>(replay.stats.victimRowsRefreshed) / banks
        * refreshScale);

    EvalResult out;
    out.stats = replay.stats;
    out.baselineSeconds = exec_seconds;
    out.power = schemePower(scheme, perBank, exec_seconds);
    out.cmrpo = cmrpo(out.power, sys.geometry.rowsPerBank);
    return out;
}

EvalResult
ExperimentRunner::evalCmrpo(SystemPreset preset,
                            const WorkloadSpec &workload,
                            const SchemeConfig &scheme)
{
    const TimingResult &base = baseline(preset, workload);
    const SystemConfig sys = makeSystem(preset);
    const SchemeConfig sim = scaledScheme(scheme);

    const ReplayResult replay = replayActivations(
        base.bankStreams, sim, sys.geometry.rowsPerBank);
    return evalFromReplay(replay, scheme, base.execSeconds, sys);
}

EvalResult
ExperimentRunner::evalAdaptive(SystemPreset preset,
                               const AdaptiveAttackSpec &attack,
                               const SchemeConfig &scheme)
{
    const SystemConfig sys = makeSystem(preset);
    const SchemeConfig sim = scaledScheme(scheme);

    const double epochCycles =
        static_cast<double>(sys.timing.refreshIntervalCycles()) * scale_;
    // The attacker drives every bank flat out: one activation per tRC
    // (the fastest legal ACT cadence on one bank).
    const auto actsPerEpoch = static_cast<std::uint64_t>(
        epochCycles / static_cast<double>(sys.timing.tRC));
    if (actsPerEpoch == 0)
        CATSIM_FATAL("experiment scale ", scale_,
                     " leaves no activations in an epoch");

    // Initial target placement comes from the same kernel strategies
    // the open-loop AttackWorkload uses.
    std::vector<std::vector<RowAddr>> targets(
        sys.geometry.totalBanks());
    for (auto &t : targets)
        t.resize(attack.targetsPerBank);
    const AttackKernelKind placement =
        attack.attacker == AttackerKind::MultiBank
            ? AttackKernelKind::MultiBank
            : AttackKernelKind::Gaussian;
    makeAttackKernel(placement)->pickTargets(targets, sys.geometry,
                                             attack.kernel);

    std::vector<std::unique_ptr<ActivationSource>> sources;
    sources.reserve(targets.size());
    for (std::uint32_t b = 0; b < targets.size(); ++b) {
        AttackSourceParams p;
        p.numRows = sys.geometry.rowsPerBank;
        p.targets = std::move(targets[b]);
        p.targetFraction = attackTargetFraction(attack.mode);
        p.actsPerEpoch = actsPerEpoch;
        p.epochs = attack.epochs;
        p.seed = attack.seed * 1000003ULL + b;
        if (attack.attacker == AttackerKind::RefreshAware)
            sources.push_back(
                std::make_unique<RefreshAwareAttackerSource>(p));
        else
            sources.push_back(
                std::make_unique<SyntheticAttackSource>(p));
    }

    const ReplayResult replay =
        replaySources(sources, sim, sys.geometry.rowsPerBank);
    // The "baseline" run time of a closed-loop cell is the simulated
    // wall clock itself: epochs * the scaled 64 ms refresh interval.
    const double execSeconds =
        sys.timing.cyclesToNs(static_cast<Cycle>(
            epochCycles * static_cast<double>(attack.epochs)))
        * 1e-9;
    return evalFromReplay(replay, scheme, execSeconds, sys);
}

double
ExperimentRunner::evalEto(SystemPreset preset,
                          const WorkloadSpec &workload,
                          const SchemeConfig &scheme)
{
    const BaselineEntry &entry = baselineEntry(preset, workload);
    const TimingResult &base = entry.timing;

    SystemConfig sys = makeSystem(preset);
    sys.scheme = scaledScheme(scheme);
    sys.recordActivations = false;
    sys.epochScale = scale_;

    const std::uint64_t records = recordsFor(workload, sys);
    auto factory = streamFactory(workload, sys, records, *entry.mapper);

    const TimingResult mitigated = runTiming(sys, factory);
    const double raw = eto(base.execSeconds, mitigated.execSeconds);
    // De-scale: the per-epoch blocking time is faithful, but a scaled
    // epoch is 1/s shorter, inflating the relative overhead.
    const double corr = (scheme.kind == SchemeKind::Pra) ? 1.0 : scale_;
    return raw * corr;
}

} // namespace catsim
