#include "experiment.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <sstream>

#include "common/config.hpp"
#include "common/logging.hpp"
#include "sim/baseline_io.hpp"

namespace catsim
{

const char *
attackerKindName(AttackerKind kind)
{
    switch (kind) {
      case AttackerKind::Static:
        return "Static";
      case AttackerKind::MultiBank:
        return "MultiBank";
      case AttackerKind::RefreshAware:
        return "RefreshAware";
      case AttackerKind::ManySided:
        return "ManySided";
      case AttackerKind::HalfDouble:
        return "HalfDouble";
      case AttackerKind::CloudMix:
        return "CloudMix";
    }
    return "?";
}

namespace
{

/**
 * Rate-based schemes (PRA's coin flip, RFM's rolling ACT budget)
 * order refresh work in proportion to the activation stream, not to a
 * per-row threshold, so the threshold co-scaling and its de-scaling
 * corrections do not apply to them.
 */
bool
rateBasedScheme(SchemeKind kind)
{
    return kind == SchemeKind::Pra || kind == SchemeKind::Rfm;
}

} // namespace

TimingConfig
makeSystem(SystemPreset preset)
{
    TimingConfig sys;
    switch (preset) {
      case SystemPreset::DualCore2Ch:
        sys.geometry = DramGeometry::dualCore2Ch();
        sys.numCores = 2;
        sys.mapping = MappingPolicy::RowRankBankChanCol;
        break;
      case SystemPreset::QuadCore2Ch:
        sys.geometry = DramGeometry::quadCore2Ch();
        sys.numCores = 4;
        sys.mapping = MappingPolicy::RowRankBankChanCol;
        break;
      case SystemPreset::QuadCore4Ch:
        sys.geometry = DramGeometry::quadCore4Ch();
        sys.numCores = 4;
        sys.mapping = MappingPolicy::RowRankBankColChan;
        break;
    }
    return sys;
}

ExperimentRunner::ExperimentRunner(double scale) : scale_(scale)
{
    if (scale_ <= 0.0 || scale_ > 1.0)
        CATSIM_FATAL("experiment scale must be in (0, 1], got ", scale_);
    if (const char *dir = std::getenv("CATSIM_BASELINE_CACHE"))
        cacheDir_ = dir;
}

void
ExperimentRunner::setBaselineCacheDir(const std::string &dir)
{
    cacheDir_ = dir;
}

std::string
ExperimentRunner::baselineCachePath(SystemPreset preset,
                                    const WorkloadSpec &workload) const
{
    if (cacheDir_.empty())
        return {};
    return cacheDir_ + '/'
           + baselineCacheFileName(cacheKey(preset, workload), scale_);
}

std::uint32_t
ExperimentRunner::scaledThreshold(std::uint32_t threshold) const
{
    const auto t = static_cast<std::uint32_t>(
        std::llround(static_cast<double>(threshold) * scale_));
    return std::max<std::uint32_t>(t, 512);
}

SchemeConfig
ExperimentRunner::scaledScheme(const SchemeConfig &scheme) const
{
    SchemeConfig s = scheme;
    if (rateBasedScheme(s.kind))
        return s;
    s.threshold = scaledThreshold(scheme.threshold);
    if (!s.splitThresholds.empty()) {
        // Co-scale a custom split schedule proportionally to the
        // scaled refresh threshold (NOT through scaledThreshold's 512
        // floor, which would flatten eager low-threshold schedules)
        // so the schedule keeps its shape relative to T.
        const double ratio = static_cast<double>(s.threshold)
                             / static_cast<double>(scheme.threshold);
        for (auto &t : s.splitThresholds)
            t = std::max<std::uint32_t>(
                2, static_cast<std::uint32_t>(std::llround(
                       static_cast<double>(t) * ratio)));
        s.splitThresholds.back() = s.threshold;
    }
    return s;
}

std::uint64_t
ExperimentRunner::recordsFor(const WorkloadSpec &workload,
                             const TimingConfig &sys) const
{
    const WorkloadProfile &p = findWorkload(workload.name);
    const double epochCycles =
        static_cast<double>(sys.timing.refreshIntervalCycles()) * scale_;
    // A record occupies roughly gap/retire-rate bus cycles of compute
    // plus a couple of cycles of memory pressure per core.
    double gap = p.meanGap;
    if (workload.isAttack) {
        const double tf = attackTargetFraction(workload.attackMode);
        gap = tf * 8.0 + (1.0 - tf) * gap;
    }
    const double retire = static_cast<double>(sys.core.retireWidth)
                          * static_cast<double>(sys.core.cpuMult);
    const double cyclesPerRecord = gap / retire + 2.0;
    const double target = 1.2 * epochCycles / cyclesPerRecord;
    return static_cast<std::uint64_t>(std::max(target, 50000.0));
}

std::string
ExperimentRunner::cacheKey(SystemPreset preset,
                           const WorkloadSpec &workload) const
{
    std::ostringstream os;
    os << static_cast<int>(preset) << '/' << workload.label() << '/'
       << workload.seed;
    return os.str();
}

StreamFactory
ExperimentRunner::streamFactory(const WorkloadSpec &workload,
                                const TimingConfig &sys,
                                std::uint64_t records,
                                const AddressMapper &mapper) const
{
    WorkloadProfile profile = findWorkload(workload.name);
    if (profile.phaseEvery > 0) {
        // Interpret a non-zero phaseEvery as "this workload has
        // phases" and re-anchor the relocation period to simulated
        // time: about one hot-set turnover every 1.5 epochs,
        // independent of the experiment scale.
        profile.phaseEvery =
            std::max<std::uint64_t>(records * 5 / 4, 1);
    }
    const DramGeometry geometry = sys.geometry;
    if (workload.isAttack) {
        const AttackMode mode = workload.attackMode;
        const std::uint64_t kernel = workload.attackKernel;
        const AttackKernelKind kind = workload.attackKernelKind;
        const std::uint64_t seed = workload.seed;
        return [profile, geometry, &mapper, mode, kernel, kind, seed,
                records](CoreId core) -> std::unique_ptr<TraceStream> {
            return std::make_unique<AttackWorkload>(
                profile, geometry, mapper, mode, kernel,
                seed * 7919ULL + core + 1, records, 4, kind);
        };
    }
    const std::uint64_t seed = workload.seed;
    return [profile, geometry, &mapper, seed,
            records](CoreId core) -> std::unique_ptr<TraceStream> {
        return std::make_unique<SyntheticWorkload>(
            profile, geometry, mapper, seed * 7919ULL + core + 1,
            records);
    };
}

ExperimentRunner::BaselinePtr
ExperimentRunner::computeBaseline(SystemPreset preset,
                                  const WorkloadSpec &workload,
                                  const std::string &key)
{
    TimingConfig sys = makeSystem(preset);
    sys.scheme.kind = SchemeKind::None;
    sys.recordActivations = true;
    sys.epochScale = scale_;

    auto entry = std::make_shared<BaselineEntry>();
    entry->mapper = std::make_unique<AddressMapper>(sys.geometry,
                                                    sys.mapping);

    const std::string path = baselineCachePath(preset, workload);
    if (!path.empty()
        && loadBaseline(path, key, scale_, &entry->timing)) {
        diskLoads_.fetch_add(1);
        return entry;
    }

    const std::uint64_t records = recordsFor(workload, sys);
    auto factory = streamFactory(workload, sys, records,
                                 *entry->mapper);
    entry->timing = runTiming(sys, factory);
    computeCount_.fetch_add(1);

    if (!path.empty())
        saveBaseline(path, key, scale_, entry->timing);
    return entry;
}

const ExperimentRunner::BaselineEntry &
ExperimentRunner::baselineEntry(SystemPreset preset,
                                const WorkloadSpec &workload)
{
    const std::string key = cacheKey(preset, workload);

    std::promise<BaselinePtr> promise;
    std::shared_future<BaselinePtr> future;
    bool owner = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = baselines_.find(key);
        if (it != baselines_.end()) {
            future = it->second;
        } else {
            future = promise.get_future().share();
            baselines_.emplace(key, future);
            owner = true;
        }
    }
    // The owning thread computes outside the lock; everyone else
    // blocks on the shared future, so a baseline is computed exactly
    // once no matter how many sweep cells need it concurrently.
    if (owner) {
        try {
            promise.set_value(computeBaseline(preset, workload, key));
        } catch (...) {
            // Waiters see the real error; dropping the cache entry
            // lets a later call retry instead of hitting a
            // broken_promise forever.
            {
                std::lock_guard<std::mutex> lock(mutex_);
                baselines_.erase(key);
            }
            promise.set_exception(std::current_exception());
        }
    }
    return *future.get();
}

const TimingResult &
ExperimentRunner::baseline(SystemPreset preset,
                           const WorkloadSpec &workload)
{
    return baselineEntry(preset, workload).timing;
}

EvalResult
ExperimentRunner::evalFromReplay(const ReplayResult &replay,
                                 const SchemeConfig &scheme,
                                 double exec_seconds,
                                 const TimingConfig &sys) const
{
    // Per-bank averages feed the per-bank power model.
    const double banks = static_cast<double>(replay.banks);
    SchemeStats perBank;
    perBank.activations = static_cast<Count>(
        static_cast<double>(replay.stats.activations) / banks);
    perBank.prngBits = static_cast<Count>(
        static_cast<double>(replay.stats.prngBits) / banks);
    perBank.counterDramReads = static_cast<Count>(
        static_cast<double>(replay.stats.counterDramReads) / banks);
    perBank.counterDramWrites = static_cast<Count>(
        static_cast<double>(replay.stats.counterDramWrites) / banks);
    // De-scale threshold-triggered refresh work: each scaled epoch
    // produces the real per-epoch refresh count but lasts only
    // s * 64 ms of simulated time.
    const double refreshScale =
        rateBasedScheme(scheme.kind) ? 1.0 : scale_;
    perBank.victimRowsRefreshed = static_cast<Count>(
        static_cast<double>(replay.stats.victimRowsRefreshed) / banks
        * refreshScale);

    EvalResult out;
    out.stats = replay.stats;
    out.baselineSeconds = exec_seconds;
    out.power = schemePower(scheme, perBank, exec_seconds);
    out.cmrpo = cmrpo(out.power, sys.geometry.rowsPerBank);
    return out;
}

EvalResult
ExperimentRunner::evalCmrpo(SystemPreset preset,
                            const WorkloadSpec &workload,
                            const SchemeConfig &scheme)
{
    const TimingResult &base = baseline(preset, workload);
    const TimingConfig sys = makeSystem(preset);
    const SchemeConfig sim = scaledScheme(scheme);

    const ReplayResult replay = replayActivations(
        base.bankStreams, sim, sys.geometry.rowsPerBank);
    return evalFromReplay(replay, scheme, base.execSeconds, sys);
}

std::vector<std::unique_ptr<ActivationSource>>
ExperimentRunner::adaptiveSources(const TimingConfig &sys,
                                  const AdaptiveAttackSpec &attack) const
{
    const double epochCycles =
        static_cast<double>(sys.timing.refreshIntervalCycles()) * scale_;
    // The attacker drives every bank flat out: one activation per tRC
    // (the fastest legal ACT cadence on one bank).
    const auto actsPerEpoch = static_cast<std::uint64_t>(
        epochCycles / static_cast<double>(sys.timing.tRC));
    if (actsPerEpoch == 0)
        CATSIM_FATAL("experiment scale ", scale_,
                     " leaves no activations in an epoch");

    // CloudMix is the benign consolidation scenario: no aggressors,
    // every bank runs a multi-tenant Zipf mix whose hot sets relocate
    // mid-epoch (the reconfiguration stress DRCAT's weights target).
    if (attack.attacker == AttackerKind::CloudMix) {
        std::vector<std::unique_ptr<ActivationSource>> sources;
        const std::uint32_t banks = sys.geometry.totalBanks();
        sources.reserve(banks);
        for (std::uint32_t b = 0; b < banks; ++b) {
            CloudMixParams p;
            p.numRows = sys.geometry.rowsPerBank;
            p.actsPerEpoch = actsPerEpoch;
            p.epochs = attack.epochs;
            // Two phases per epoch: one deterministic hot-set turnover
            // between consecutive retention refreshes.
            p.phaseEvery = std::max<std::uint64_t>(actsPerEpoch / 2, 1);
            p.seed = attack.seed * 1000003ULL + b;
            sources.push_back(std::make_unique<CloudMixSource>(p));
        }
        return sources;
    }

    // Initial target placement comes from the same kernel strategies
    // the open-loop AttackWorkload uses.
    std::vector<std::vector<RowAddr>> targets(
        sys.geometry.totalBanks());
    for (auto &t : targets)
        t.resize(attack.targetsPerBank);
    AttackKernelKind placement = AttackKernelKind::Gaussian;
    switch (attack.attacker) {
      case AttackerKind::MultiBank:
        placement = AttackKernelKind::MultiBank;
        break;
      case AttackerKind::ManySided:
        placement = AttackKernelKind::ManySided;
        break;
      case AttackerKind::HalfDouble:
        placement = AttackKernelKind::HalfDouble;
        break;
      default:
        break;
    }
    makeAttackKernel(placement)->pickTargets(targets, sys.geometry,
                                             attack.kernel);

    std::vector<std::unique_ptr<ActivationSource>> sources;
    sources.reserve(targets.size());
    for (std::uint32_t b = 0; b < targets.size(); ++b) {
        AttackSourceParams p;
        p.numRows = sys.geometry.rowsPerBank;
        p.targets = std::move(targets[b]);
        p.targetFraction = attackTargetFraction(attack.mode);
        p.actsPerEpoch = actsPerEpoch;
        p.epochs = attack.epochs;
        p.seed = attack.seed * 1000003ULL + b;
        if (attack.attacker == AttackerKind::RefreshAware)
            sources.push_back(
                std::make_unique<RefreshAwareAttackerSource>(p));
        else
            sources.push_back(
                std::make_unique<SyntheticAttackSource>(p));
    }
    return sources;
}

EvalResult
ExperimentRunner::evalAdaptive(SystemPreset preset,
                               const AdaptiveAttackSpec &attack,
                               const SchemeConfig &scheme)
{
    const TimingConfig sys = makeSystem(preset);
    const SchemeConfig sim = scaledScheme(scheme);
    const double epochCycles =
        static_cast<double>(sys.timing.refreshIntervalCycles()) * scale_;

    const auto sources = adaptiveSources(sys, attack);
    const ReplayResult replay =
        replaySources(sources, sim, sys.geometry.rowsPerBank);
    // The "baseline" run time of a closed-loop cell is the simulated
    // wall clock itself: epochs * the scaled 64 ms refresh interval.
    const double execSeconds =
        sys.timing.cyclesToNs(static_cast<Cycle>(
            epochCycles * static_cast<double>(attack.epochs)))
        * 1e-9;
    return evalFromReplay(replay, scheme, execSeconds, sys);
}

namespace
{

/**
 * Per-bank hammer ledger: counts activations per row and resets a
 * row's clock when a refresh covers ALL of its victims - interior
 * rows need both neighbors in [lo, hi] (i.e. row in [lo+1, hi-1]);
 * the bank-edge rows have a single victim (row 1 resp. N-2) and
 * reset whenever that victim is covered.  The maximum count ever
 * reached is the attacker's best disturbance before the defense
 * intervened.
 *
 * This is the exact form of the rule; the SafetyChecker in
 * tests/test_integration_safety.cpp (and the tree-level copy in
 * test_cat_tree.cpp) deliberately keeps the conservative variant
 * that widens to the edges only when the refresh range touches them
 * - failing to reset there only makes the safety assertion stricter,
 * while a success *metric* must not over-report the attacker.
 */
class DisturbanceLedger
{
  public:
    explicit DisturbanceLedger(RowAddr num_rows)
        : numRows_(num_rows), counts_(num_rows, 0)
    {
    }

    void
    onActivate(RowAddr row, const RefreshAction &act)
    {
        const std::uint32_t reached = ++counts_[row];
        if (reached > max_)
            max_ = reached;
        if (act.triggered()) {
            for (std::int64_t r = static_cast<std::int64_t>(act.lo) + 1;
                 r <= static_cast<std::int64_t>(act.hi) - 1; ++r)
                counts_[static_cast<std::size_t>(r)] = 0;
            if (act.lo <= 1 && act.hi >= 1)
                counts_[0] = 0;
            if (act.lo <= numRows_ - 2 && act.hi >= numRows_ - 2)
                counts_[numRows_ - 1] = 0;
        }
    }

    /** Retention refresh rewrites every row: all clocks restart. */
    void
    onEpoch()
    {
        std::fill(counts_.begin(), counts_.end(), 0);
    }

    std::uint32_t maxReached() const { return max_; }

  private:
    RowAddr numRows_;
    std::vector<std::uint32_t> counts_;
    std::uint32_t max_ = 0;
};

} // namespace

double
ExperimentRunner::evalAdaptiveDisturbance(SystemPreset preset,
                                          const AdaptiveAttackSpec &attack,
                                          const SchemeConfig &scheme)
{
    const TimingConfig sys = makeSystem(preset);
    const SchemeConfig sim = scaledScheme(scheme);
    const RowAddr rows = sys.geometry.rowsPerBank;
    if (sim.kind == SchemeKind::None)
        CATSIM_FATAL("disturbance eval needs a real scheme, not None");
    // The ledger replays banks independently, one after the other; a
    // rank-shared pool would be drained by the first bank (the
    // starvation artifact replaySources interleaves away), so reject
    // it rather than report a biased metric.
    if (sim.banksPerPool > 1
        && (sim.kind == SchemeKind::Prcat
            || sim.kind == SchemeKind::Drcat))
        CATSIM_FATAL("disturbance eval does not support rank-shared "
                     "counter pools (banksPerPool=", sim.banksPerPool,
                     ")");

    // Same sources and per-bank schemes as evalAdaptive, but stepped
    // one activation at a time through the ledger (batch and per-call
    // delivery are semantically identical, so the schemes behave
    // exactly as they do in the CMRPO leg).
    const auto sources = adaptiveSources(sys, attack);
    auto schemes = makeBankSchemes(
        sim, rows, static_cast<std::uint32_t>(sources.size()));

    std::uint32_t maxReached = 0;
    for (std::size_t b = 0; b < sources.size(); ++b) {
        ActivationSource &source = *sources[b];
        MitigationScheme &bankScheme = *schemes[b];
        const bool closed = source.closedLoop();
        DisturbanceLedger ledger(rows);
        for (;;) {
            const RowAddr *rowsPtr = nullptr;
            std::size_t count = 0;
            const SourceChunk chunk = source.next(&rowsPtr, &count);
            if (chunk == SourceChunk::End)
                break;
            if (chunk == SourceChunk::Epoch) {
                bankScheme.onEpoch();
                ledger.onEpoch();
                continue;
            }
            for (std::size_t i = 0; i < count; ++i) {
                const RefreshAction act =
                    bankScheme.onActivate(rowsPtr[i]);
                ledger.onActivate(rowsPtr[i], act);
                if (closed)
                    source.onRefreshAction(rowsPtr[i], act);
            }
        }
        maxReached = std::max(maxReached, ledger.maxReached());
    }
    // Normalize against the threshold every counting scheme ran with
    // in this scaled run (scaledScheme leaves PRA's threshold field
    // untouched, so it is re-derived here for all kinds).
    return static_cast<double>(maxReached)
           / static_cast<double>(scaledThreshold(scheme.threshold));
}

double
ExperimentRunner::evalAdaptiveEto(SystemPreset preset,
                                  const AdaptiveAttackSpec &attack,
                                  const SchemeConfig &scheme)
{
    TimingConfig sys = makeSystem(preset);
    sys.recordActivations = false;
    sys.epochScale = scale_;

    // Sources are stateful (closed-loop ones mutate their aggressor
    // sets), so each leg gets a fresh, identically seeded fleet.
    TimingConfig baseSys = sys;
    baseSys.scheme = SchemeConfig{};
    baseSys.scheme.kind = SchemeKind::None;
    const auto baseSources = adaptiveSources(baseSys, attack);
    const TimingResult base = runTimingOnSources(baseSys, baseSources);

    TimingConfig mitSys = sys;
    mitSys.scheme = scaledScheme(scheme);
    const auto mitSources = adaptiveSources(mitSys, attack);
    const TimingResult mitigated =
        runTimingOnSources(mitSys, mitSources);

    const double raw = eto(base.execSeconds, mitigated.execSeconds);
    // De-scale: the per-epoch blocking time is faithful, but a scaled
    // epoch is 1/s shorter, inflating the relative overhead.
    const double corr = rateBasedScheme(scheme.kind) ? 1.0 : scale_;
    return raw * corr;
}

double
ExperimentRunner::evalEto(SystemPreset preset,
                          const WorkloadSpec &workload,
                          const SchemeConfig &scheme)
{
    const BaselineEntry &entry = baselineEntry(preset, workload);
    const TimingResult &base = entry.timing;

    TimingConfig sys = makeSystem(preset);
    sys.scheme = scaledScheme(scheme);
    sys.recordActivations = false;
    sys.epochScale = scale_;

    const std::uint64_t records = recordsFor(workload, sys);
    auto factory = streamFactory(workload, sys, records, *entry.mapper);

    const TimingResult mitigated = runTiming(sys, factory);
    const double raw = eto(base.execSeconds, mitigated.execSeconds);
    // De-scale: the per-epoch blocking time is faithful, but a scaled
    // epoch is 1/s shorter, inflating the relative overhead.
    const double corr = rateBasedScheme(scheme.kind) ? 1.0 : scale_;
    return raw * corr;
}

} // namespace catsim
