/**
 * @file
 * Unified discrete-event engine shared by every simulation front end.
 *
 * The engine owns one priority queue of events ordered by
 * (time, actor-id, insertion-seq); actors - cores, the refresh/epoch
 * timer, the memory controller's stimulus sources, replay banks - are
 * first-class participants that schedule themselves and consume their
 * own events.  The tie-break order is part of the contract:
 *
 *   1. earlier time first;
 *   2. at equal time, the actor registered first (lower actor id);
 *   3. for the same actor at the same time, FIFO insertion order.
 *
 * Rule 2 is what lets the open-loop timing front end reproduce the
 * historical scan loop bit for bit: the epoch timer registers before
 * the cores, so an epoch boundary fires before any core whose clock
 * has reached it (the old `earliest->time() >= nextEpoch` test), and
 * ties between cores resolve to the lowest core id exactly as the old
 * linear scan did.  Rule 3 is what lets the sequential replay front
 * end run one bank to completion before the next (all of bank b's
 * events sit at time b and drain in insertion order).
 *
 * Two actor roles exist: Source actors (cores, stimulus sources) keep
 * the engine alive and must retire() when done; Timer actors (the
 * epoch clock) never keep the engine running on their own - the run
 * stops the moment the last Source retires, exactly as the historical
 * loops stopped when the last core's trace ended, leaving any pending
 * timer events unfired.
 */

#ifndef CATSIM_SIM_EVENT_ENGINE_HPP
#define CATSIM_SIM_EVENT_ENGINE_HPP

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/types.hpp"

namespace catsim
{

/** Simulated timestamp: bus cycles for timing runs, turns for replay. */
using SimTime = double;

/** Index assigned by EventEngine::addActor (registration order). */
using ActorId = std::uint32_t;

class EventEngine;

/** One participant in the event loop. */
class SimActor
{
  public:
    virtual ~SimActor() = default;

    /**
     * Consume one event previously scheduled for this actor.  The
     * actor re-arms itself via EventEngine::schedule (at most one
     * outstanding event per actor) or, for Source actors, calls
     * EventEngine::retire when its stream is exhausted.
     */
    virtual void onEvent(SimTime now) = 0;
};

/** Deterministic discrete-event queue over registered actors. */
class EventEngine
{
  public:
    /** Source actors keep the run alive; Timer actors do not. */
    enum class ActorRole
    {
        Source,
        Timer,
    };

    /**
     * Register an actor; ids are assigned in call order and double as
     * the same-time tie-break priority.  @p actor must outlive run().
     */
    ActorId addActor(SimActor *actor, ActorRole role);

    /**
     * Arm @p id to fire at @p at.  An actor may have at most one
     * outstanding event; scheduling is only legal from outside run()
     * (initial arming) or from within the actor's own onEvent.
     */
    void schedule(ActorId id, SimTime at);

    /** A Source actor is done; never schedule it again. */
    void retire(ActorId id);

    /**
     * Pop-and-dispatch until every Source actor has retired.  Pending
     * Timer events past that point are dropped unfired.
     */
    void run();

    /** Source actors registered and not yet retired. */
    Count liveSources() const { return liveSources_; }

  private:
    struct Event
    {
        SimTime time = 0.0;
        ActorId actor = 0;
        std::uint64_t seq = 0;
    };

    /** Min-heap order: the documented (time, actor, seq) tie-break. */
    struct EventAfter
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.time != b.time)
                return a.time > b.time;
            if (a.actor != b.actor)
                return a.actor > b.actor;
            return a.seq > b.seq;
        }
    };

    std::vector<SimActor *> actors_;
    std::priority_queue<Event, std::vector<Event>, EventAfter> queue_;
    std::uint64_t nextSeq_ = 0;
    Count liveSources_ = 0;
};

/**
 * Engine-owned auto-refresh epoch clock.  Owns the epoch-length
 * arithmetic that timing front ends used to copy (`nextEpoch +=
 * epochCycles` with the same floating-point accumulation order) and
 * fires @p on_epoch at every boundary; epoch work is whatever the
 * front end installs (scheme resets, kEpochMarker emission).
 */
class EpochTimerActor : public SimActor
{
  public:
    using Callback = std::function<void()>;

    /**
     * @param engine       Engine to register with (as a Timer actor);
     *                     must be registered FIRST so epoch boundaries
     *                     win same-time ties against every source.
     * @param epoch_cycles Scaled epoch length; fatal below one cycle.
     * @param on_epoch     Invoked once per boundary crossed.
     */
    EpochTimerActor(EventEngine &engine, double epoch_cycles,
                    Callback on_epoch);

    void onEvent(SimTime now) override;

    /** Boundaries fired so far. */
    Count epochs() const { return epochs_; }

  private:
    EventEngine &engine_;
    ActorId id_;
    double epochCycles_;
    double next_;
    Callback onEpoch_;
    Count epochs_ = 0;
};

/**
 * Append the kEpochMarker sentinel to every recorded per-bank stream -
 * the one emission point shared by the timing front end and trace
 * ingestion (historically copy-pasted loops).
 */
void appendEpochMarkers(std::vector<std::vector<RowAddr>> &streams);

} // namespace catsim

#endif // CATSIM_SIM_EVENT_ENGINE_HPP
