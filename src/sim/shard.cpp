#include "shard.hpp"

#include <algorithm>
#include <cstdlib>
#include <mutex>
#include <sstream>

#include "common/fault_injection.hpp"
#include "common/logging.hpp"
#include "sim/checkpoint.hpp"

namespace catsim
{

std::uint32_t
defaultShards()
{
    if (const char *env = std::getenv("CATSIM_SHARDS")) {
        char *end = nullptr;
        const long v = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && v >= 1)
            return static_cast<std::uint32_t>(v);
    }
    return 1;
}

namespace
{

bool
keepGoingFromEnv()
{
    const char *env = std::getenv("CATSIM_SWEEP_KEEP_GOING");
    return env && std::string(env) == "1";
}

/** Journal blob codec for one shard's ReplayResult (all integers). */
std::string
encodeReplay(const ReplayResult &r)
{
    BlobWriter w;
    w.putU64(r.stats.activations);
    w.putU64(r.stats.refreshEvents);
    w.putU64(r.stats.victimRowsRefreshed);
    w.putU64(r.stats.sramAccesses);
    w.putU64(r.stats.prngBits);
    w.putU64(r.stats.splits);
    w.putU64(r.stats.merges);
    w.putU64(r.stats.epochResets);
    w.putU64(r.stats.counterDramReads);
    w.putU64(r.stats.counterDramWrites);
    w.putU64(r.banks);
    w.putU64(r.epochs);
    return w.str();
}

bool
decodeReplay(const std::string &blob, ReplayResult *r)
{
    BlobReader rd(blob);
    return rd.getU64(&r->stats.activations)
           && rd.getU64(&r->stats.refreshEvents)
           && rd.getU64(&r->stats.victimRowsRefreshed)
           && rd.getU64(&r->stats.sramAccesses)
           && rd.getU64(&r->stats.prngBits)
           && rd.getU64(&r->stats.splits)
           && rd.getU64(&r->stats.merges)
           && rd.getU64(&r->stats.epochResets)
           && rd.getU64(&r->stats.counterDramReads)
           && rd.getU64(&r->stats.counterDramWrites)
           && rd.getU64(&r->banks) && rd.getU64(&r->epochs)
           && rd.atEnd();
}

std::string
currentExceptionMessage()
{
    try {
        throw;
    } catch (const std::exception &e) {
        return e.what();
    } catch (...) {
        return "unknown error";
    }
}

/**
 * Feed one bank's window slice (rows + kEpochMarker sentinels) to its
 * persistent scheme.  Batch boundaries are semantically per-row, so
 * splitting at window edges is invisible in the results.
 */
Count
feedWindowSlice(MitigationScheme &scheme, const std::vector<RowAddr> &rows)
{
    Count epochs = 0;
    std::size_t start = 0;
    for (std::size_t i = 0; i < rows.size(); ++i) {
        if (rows[i] != kEpochMarker)
            continue;
        if (i > start)
            scheme.onActivateBatch(rows.data() + start, i - start);
        scheme.onEpoch();
        ++epochs;
        start = i + 1;
    }
    if (start < rows.size())
        scheme.onActivateBatch(rows.data() + start, rows.size() - start);
    return epochs;
}

} // namespace

ShardPlan
ShardPlan::make(std::uint32_t num_banks, std::uint32_t num_shards,
                std::uint32_t banks_per_pool)
{
    if (num_banks == 0)
        CATSIM_FATAL("ShardPlan needs at least one bank");
    const std::uint32_t align = std::max<std::uint32_t>(banks_per_pool, 1);
    // Pool groups are the indivisible unit: a shard boundary inside a
    // group would split a SharedCounterPool (tail group may be short).
    const std::uint32_t groups = (num_banks + align - 1) / align;
    const std::uint32_t shards =
        std::min(std::max<std::uint32_t>(num_shards, 1), groups);

    ShardPlan plan;
    plan.numBanks_ = num_banks;
    plan.shards_.reserve(shards);
    for (std::uint32_t s = 0; s < shards; ++s) {
        const std::uint32_t g0 =
            static_cast<std::uint32_t>(std::uint64_t(groups) * s / shards);
        const std::uint32_t g1 = static_cast<std::uint32_t>(
            std::uint64_t(groups) * (s + 1) / shards);
        const std::uint32_t first = g0 * align;
        const std::uint32_t last = std::min(g1 * align, num_banks);
        plan.shards_.push_back({first, last - first});
    }
    return plan;
}

std::string
ShardPlan::spec() const
{
    return "banks=" + std::to_string(numBanks_) + "/shards="
           + std::to_string(shards_.size());
}

ShardedSim::ShardedSim(SchemeConfig scheme, RowAddr rows_per_bank,
                       ShardPlan plan, std::size_t jobs)
    : scheme_(std::move(scheme)), rowsPerBank_(rows_per_bank),
      plan_(std::move(plan)), jobs_(jobs ? jobs : 1),
      checkpointDir_(checkpointDirFromEnv()),
      keepGoing_(keepGoingFromEnv())
{
}

std::vector<std::string>
ShardedSim::shardKeys(const char *kind) const
{
    std::vector<std::string> keys;
    keys.reserve(plan_.numShards());
    for (std::size_t i = 0; i < plan_.numShards(); ++i) {
        const ShardRange &r = plan_.shards()[i];
        keys.push_back(std::string(kind) + "-shard#" + std::to_string(i)
                       + "|first=" + std::to_string(r.firstBank)
                       + "|n=" + std::to_string(r.numBanks));
    }
    return keys;
}

std::string
ShardedSim::runKey(const char *kind, const std::string &tag,
                   std::uint64_t seq,
                   const std::vector<std::string> &keys) const
{
    std::ostringstream os;
    os << "fleet-" << kind << "|tag=" << tag << "|seq=" << seq << '|'
       << scheme_.format() << "|rows=" << rowsPerBank_ << '|'
       << plan_.spec();
    for (const auto &k : keys)
        os << '|' << k;
    return os.str();
}

void
ShardedSim::finishTotals(FleetResult *fleet,
                         const std::vector<char> &live) const
{
    fleet->total = ReplayResult{};
    for (std::size_t i = 0; i < fleet->perShard.size(); ++i) {
        if (!live[i])
            continue;
        fleet->total.stats.add(fleet->perShard[i].stats);
        fleet->total.banks += fleet->perShard[i].banks;
    }
    // Epochs follow the unsharded replay's bank-0 rule: the shard
    // holding global bank 0 is always shard 0 (contiguous ranges).
    if (!fleet->perShard.empty() && live[0])
        fleet->total.epochs = fleet->perShard[0].epochs;
}

FleetResult
ShardedSim::runShards(
    const char *kind, const std::string &tag,
    const std::function<ReplayResult(const ShardRange &, std::size_t)>
        &eval_shard)
{
    const std::size_t n = plan_.numShards();
    FleetResult fleet;
    fleet.perShard.resize(n);
    std::vector<char> done(n, 0);
    std::vector<char> live(n, 1);
    const std::uint64_t seq = callSeq_[std::string(kind) + '|' + tag]++;

    std::unique_ptr<CheckpointJournal> journal;
    const std::vector<std::string> keys = shardKeys(kind);
    if (!checkpointDir_.empty()) {
        journal = std::make_unique<CheckpointJournal>(
            checkpointDir_, runKey(kind, tag, seq, keys));
        std::string blob;
        for (std::size_t i = 0; i < n; ++i) {
            if (journal->lookup(keys[i], &blob)
                && decodeReplay(blob, &fleet.perShard[i])) {
                done[i] = 1;
                ++fleet.resumedShards;
            }
        }
        if (fleet.resumedShards > 0)
            CATSIM_INFORM("checkpoint: resumed ", fleet.resumedShards,
                          "/", n, " fleet ", kind, " shards from ",
                          journal->path());
    }

    std::vector<std::size_t> pending;
    pending.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        if (!done[i])
            pending.push_back(i);

    std::mutex errMutex;
    ThreadPool pool(std::min(jobs_, std::max<std::size_t>(
                                        pending.size(), 1)));
    for (const std::size_t i : pending) {
        pool.submit([this, i, &fleet, &live, &keys, &eval_shard,
                     &journal, &errMutex] {
            const ShardRange &range = plan_.shards()[i];
            if (!keepGoing_) {
                try {
                    fault::maybeThrow("shard_task");
                    fleet.perShard[i] = eval_shard(range, i);
                } catch (const std::exception &e) {
                    throw std::runtime_error(
                        "shard " + std::to_string(i) + ": " + e.what());
                }
            } else {
                int attempts = 0;
                for (;;) {
                    ++attempts;
                    try {
                        fault::maybeThrow("shard_task");
                        fleet.perShard[i] = eval_shard(range, i);
                        break;
                    } catch (...) {
                        if (attempts < 2)
                            continue; // transient? one retry
                        ShardError err;
                        err.shard = i;
                        err.message = currentExceptionMessage();
                        err.attempts = attempts;
                        {
                            std::lock_guard<std::mutex> lock(errMutex);
                            fleet.errors.push_back(std::move(err));
                        }
                        live[i] = 0;
                        return; // failed shards are never journaled
                    }
                }
            }
            if (journal) {
                try {
                    journal->append(keys[i],
                                    encodeReplay(fleet.perShard[i]));
                } catch (const std::exception &e) {
                    if (!keepGoing_)
                        throw;
                    CATSIM_WARN("checkpoint append failed for shard ",
                                i, ": ", e.what());
                }
            }
        });
    }
    pool.wait();
    fleet.steals = pool.steals();

    std::sort(fleet.errors.begin(), fleet.errors.end(),
              [](const ShardError &a, const ShardError &b) {
                  return a.shard < b.shard;
              });
    if (!fleet.errors.empty()) {
        CATSIM_WARN("fleet keep-going: ", fleet.errors.size(), "/", n,
                    " shards failed permanently; they are excluded "
                    "from the merged totals and were not checkpointed");
        for (const auto &e : fleet.errors)
            CATSIM_WARN("  shard ", e.shard, ", ", e.attempts,
                        " attempts: ", e.message);
    }
    finishTotals(&fleet, live);
    return fleet;
}

FleetResult
ShardedSim::run(const SourceFactory &make_source, const std::string &tag)
{
    if (scheme_.kind == SchemeKind::None)
        CATSIM_FATAL("fleet replay needs a real scheme, not None");
    return runShards(
        "run", tag,
        [this, &make_source](const ShardRange &range, std::size_t) {
            std::vector<std::unique_ptr<ActivationSource>> sources;
            sources.reserve(range.numBanks);
            for (std::uint32_t b = 0; b < range.numBanks; ++b)
                sources.push_back(make_source(range.firstBank + b));
            return replaySources(sources, scheme_, rowsPerBank_,
                                 range.firstBank);
        });
}

FleetResult
ShardedSim::replayTrace(TraceStream &stream, const AddressMapper &mapper,
                        const DramGeometry &geometry,
                        std::uint64_t epoch_every,
                        std::size_t window_records,
                        const std::string &tag)
{
    if (scheme_.kind == SchemeKind::None)
        CATSIM_FATAL("fleet replay needs a real scheme, not None");
    if (scheme_.banksPerPool > 1
        && (scheme_.kind == SchemeKind::Prcat
            || scheme_.kind == SchemeKind::Drcat))
        CATSIM_FATAL(
            "streamed trace replay cannot reproduce the pooled "
            "round-robin interleave window by window; use the in-RAM "
            "path (traceBankStreams + replayActivations) for "
            "banksPerPool > 1");
    if (geometry.totalBanks() != plan_.numBanks())
        CATSIM_FATAL("ShardPlan covers ", plan_.numBanks(),
                     " banks but the geometry has ",
                     geometry.totalBanks());

    const std::size_t n = plan_.numShards();
    FleetResult fleet;
    fleet.perShard.resize(n);
    std::vector<char> live(n, 1);
    const std::uint64_t seq = callSeq_[std::string("trace|") + tag]++;

    // All-or-nothing resume: per-shard results only exist once the
    // whole trace has streamed, so a journal either replays the full
    // fleet (without touching the trace) or the run starts over.
    std::unique_ptr<CheckpointJournal> journal;
    const std::vector<std::string> keys = shardKeys("trace");
    if (!checkpointDir_.empty()) {
        // epoch_every changes the results (window size does not), so
        // it is part of the run identity.
        journal = std::make_unique<CheckpointJournal>(
            checkpointDir_,
            runKey("trace",
                   tag + "|epoch=" + std::to_string(epoch_every), seq,
                   keys));
        std::string blob;
        std::size_t found = 0;
        for (std::size_t i = 0; i < n; ++i)
            if (journal->lookup(keys[i], &blob)
                && decodeReplay(blob, &fleet.perShard[i]))
                ++found;
        if (found == n) {
            CATSIM_INFORM("checkpoint: resumed full fleet trace replay "
                          "(", n, " shards) from ", journal->path());
            fleet.resumedShards = n;
            finishTotals(&fleet, live);
            return fleet;
        }
        for (auto &r : fleet.perShard)
            r = ReplayResult{};
    }

    // Persistent per-shard schemes: state carries across windows, so
    // the concatenated feed equals the one-shot in-RAM replay.
    std::vector<std::vector<std::unique_ptr<MitigationScheme>>> schemes(n);
    std::vector<Count> epochs(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
        const ShardRange &r = plan_.shards()[i];
        schemes[i] = makeBankSchemes(scheme_, rowsPerBank_, r.numBanks,
                                     r.firstBank);
    }

    TraceWindower windower(stream, mapper, geometry, epoch_every,
                           window_records);
    std::vector<std::vector<RowAddr>> window;
    std::mutex errMutex;
    ThreadPool pool(std::min(jobs_, n));
    while (windower.next(&window)) {
        for (std::size_t i = 0; i < n; ++i) {
            if (!live[i])
                continue; // dead shards skip the rest of the stream
            pool.submit([this, i, &schemes, &epochs, &window, &live,
                         &fleet, &errMutex] {
                const ShardRange &range = plan_.shards()[i];
                try {
                    fault::maybeThrow("shard_task");
                    for (std::uint32_t b = 0; b < range.numBanks; ++b) {
                        const auto &rows = window[range.firstBank + b];
                        if (rows.empty())
                            continue;
                        const Count e =
                            feedWindowSlice(*schemes[i][b], rows);
                        if (range.firstBank + b == 0)
                            epochs[i] += e;
                    }
                } catch (...) {
                    if (!keepGoing_) {
                        try {
                            throw;
                        } catch (const std::exception &e) {
                            throw std::runtime_error(
                                "shard " + std::to_string(i) + ": "
                                + e.what());
                        }
                    }
                    // No retry here: the shard's scheme state may
                    // already hold part of this window, so a re-feed
                    // would double-count.  Record and drop the shard;
                    // the rest of the fleet keeps streaming.
                    ShardError err;
                    err.shard = i;
                    err.message = currentExceptionMessage();
                    err.attempts = 1;
                    {
                        std::lock_guard<std::mutex> lock(errMutex);
                        fleet.errors.push_back(std::move(err));
                    }
                    live[i] = 0;
                }
            });
        }
        pool.wait();
    }
    fleet.steals = pool.steals();

    for (std::size_t i = 0; i < n; ++i) {
        if (!live[i])
            continue;
        ReplayResult &r = fleet.perShard[i];
        r.banks = plan_.shards()[i].numBanks;
        r.epochs = epochs[i];
        for (const auto &s : schemes[i])
            if (s)
                r.stats.add(s->stats());
        if (journal) {
            try {
                journal->append(keys[i], encodeReplay(r));
            } catch (const std::exception &e) {
                if (!keepGoing_)
                    throw;
                CATSIM_WARN("checkpoint append failed for shard ", i,
                            ": ", e.what());
            }
        }
    }

    std::sort(fleet.errors.begin(), fleet.errors.end(),
              [](const ShardError &a, const ShardError &b) {
                  return a.shard < b.shard;
              });
    if (!fleet.errors.empty()) {
        CATSIM_WARN("fleet keep-going: ", fleet.errors.size(), "/", n,
                    " trace shards failed; they are excluded from the "
                    "merged totals and were not checkpointed");
        for (const auto &e : fleet.errors)
            CATSIM_WARN("  shard ", e.shard, ": ", e.message);
    }
    finishTotals(&fleet, live);
    return fleet;
}

} // namespace catsim
