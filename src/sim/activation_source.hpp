/**
 * @file
 * Pluggable per-bank activation sources for the replay engine.
 *
 * A mitigation scheme consumes one bank's row-activation stream; an
 * ActivationSource produces it.  Three families exist:
 *
 *  - RecordedStreamSource: replays a stream recorded by the timing
 *    simulator (or ingested from a trace file).  Chunks are handed out
 *    zero-copy between epoch markers, so the scheme's onActivateBatch
 *    fast path is preserved and results are bit-identical to the
 *    historical replayActivations loop.
 *  - SyntheticAttackSource: generates a live kernel-attack stream
 *    (targets + uniform benign filler) without any recording - an
 *    open-loop synthetic generator.
 *  - RefreshAwareAttackerSource: a *closed-loop* TRR-style adaptive
 *    attacker.  It observes every RefreshAction the scheme under test
 *    returns; when the defense refreshes around one of its aggressor
 *    rows it rotates that aggressor elsewhere, defeating defenses
 *    whose strength comes from learning stable hot locations.
 *
 * Closed-loop sources (closedLoop() == true) are driven one activation
 * at a time and receive onRefreshAction() after each; open-loop
 * sources are driven through the batched fast path.
 */

#ifndef CATSIM_SIM_ACTIVATION_SOURCE_HPP
#define CATSIM_SIM_ACTIVATION_SOURCE_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "common/zipf.hpp"
#include "core/mitigation.hpp"

namespace catsim
{

/** What ActivationSource::next produced. */
enum class SourceChunk
{
    Rows,  //!< a marker-free run of activations
    Epoch, //!< a 64 ms auto-refresh boundary
    End,   //!< stream exhausted
};

/** Pull-based producer of one bank's activation stream. */
class ActivationSource
{
  public:
    virtual ~ActivationSource() = default;

    /** True when the source reacts to per-activation RefreshActions. */
    virtual bool closedLoop() const { return false; }

    /**
     * Produce the next chunk.  On SourceChunk::Rows, the rows/count
     * outputs describe a buffer owned by the source, valid until the
     * next call.  Epoch and End leave the outputs untouched.
     */
    virtual SourceChunk next(const RowAddr **rows,
                             std::size_t *count) = 0;

    /**
     * Feedback for one activation the replay engine just played
     * (closed-loop sources only): the row and the scheme's response.
     */
    virtual void
    onRefreshAction(RowAddr row, const RefreshAction &act)
    {
        (void)row;
        (void)act;
    }
};

/**
 * Zero-copy source over a recorded stream (rows + kEpochMarker
 * sentinels).  Emits exactly the chunk sequence the historical replay
 * loop produced: every marker-delimited segment (including a possibly
 * empty final one), with Epoch between segments.
 */
class RecordedStreamSource : public ActivationSource
{
  public:
    /** @p stream must outlive the source. */
    explicit RecordedStreamSource(const std::vector<RowAddr> &stream)
        : stream_(&stream)
    {
    }

    SourceChunk next(const RowAddr **rows, std::size_t *count) override;

  private:
    const std::vector<RowAddr> *stream_;
    std::size_t begin_ = 0;
    bool nextIsEpoch_ = false;
    bool finished_ = false;
};

/** Shape of a synthetic per-bank attack stream. */
struct AttackSourceParams
{
    RowAddr numRows = 65536;          //!< rows in this bank
    std::vector<RowAddr> targets;     //!< initial aggressor rows
    double targetFraction = 0.5;      //!< share of acts on aggressors
    std::uint64_t actsPerEpoch = 0;   //!< activations per 64 ms epoch
    std::uint64_t epochs = 2;         //!< epochs before End
    std::uint64_t seed = 1;           //!< stream seed
};

/**
 * Shared state machine of the live attack generators: the epoch /
 * end-of-stream gate (an Epoch chunk after every actsPerEpoch
 * activations, End after the configured epoch count) and the
 * round-robin many-sided hammer over a mutable aggressor set.
 */
class AttackSourceBase : public ActivationSource
{
  public:
    const std::vector<RowAddr> &aggressors() const
    {
        return aggressors_;
    }

  protected:
    explicit AttackSourceBase(const AttackSourceParams &params);

    /** True when next() must return *out (Epoch or End) unprocessed. */
    bool atBoundary(SourceChunk *out);

    /** Activations still allowed before the next epoch boundary. */
    std::uint64_t leftInEpoch() const
    {
        return params_.actsPerEpoch - producedInEpoch_;
    }

    /** Account @p n produced activations toward the epoch gate. */
    void noteProduced(std::uint64_t n);

    /** Next aggressor row (round robin); sets lastAggressorIdx_. */
    RowAddr nextAggressor();

    AttackSourceParams params_;
    std::vector<RowAddr> aggressors_;
    Xoshiro256StarStar rng_;
    std::size_t lastAggressorIdx_ = 0;

  private:
    std::uint64_t producedInEpoch_ = 0;
    std::uint64_t epochsDone_ = 0;
    std::size_t hammerIdx_ = 0;
    bool pendingEpoch_ = false;
};

/**
 * Open-loop live generator: aggressors are hammered round-robin
 * (many-sided pattern) at the configured fraction, the rest of the
 * stream is uniform benign filler.  Deterministic in its params.
 */
class SyntheticAttackSource : public AttackSourceBase
{
  public:
    explicit SyntheticAttackSource(const AttackSourceParams &params);

    SourceChunk next(const RowAddr **rows, std::size_t *count) override;

    const std::vector<RowAddr> &targets() const { return aggressors_; }

  private:
    static constexpr std::size_t kChunk = 4096;

    std::vector<RowAddr> buffer_;
};

/**
 * Closed-loop TRR-style adaptive attacker.  Emits one activation at a
 * time; after each, the replay engine reports the scheme's
 * RefreshAction.  A triggered refresh whose victim range covers the
 * neighborhood of one of the attacker's aggressors means the defense
 * has located that aggressor - the attacker rotates it to a fresh row
 * (re-aiming, TRRespass-style) and keeps hammering.
 */
class RefreshAwareAttackerSource : public AttackSourceBase
{
  public:
    explicit RefreshAwareAttackerSource(
        const AttackSourceParams &params);

    bool closedLoop() const override { return true; }
    SourceChunk next(const RowAddr **rows, std::size_t *count) override;
    void onRefreshAction(RowAddr row,
                         const RefreshAction &act) override;

    /** Aggressor re-aims performed so far (for reports/tests). */
    Count rotations() const { return rotations_; }

  private:
    RowAddr current_ = 0;
    bool lastWasAggressor_ = false;
    Count rotations_ = 0;

    RowAddr freshRow();
};

/** Shape of the benign multi-tenant cloud-mix stream. */
struct CloudMixParams
{
    RowAddr numRows = 65536;        //!< rows in this bank
    std::uint32_t tenants = 4;      //!< co-located tenants on the bank
    RowAddr hotRowsPerTenant = 256; //!< per-tenant working-set rows
    double zipfTheta = 0.99;        //!< intra-tenant popularity skew
    std::uint64_t actsPerEpoch = 0; //!< activations per 64 ms epoch
    std::uint64_t epochs = 2;       //!< epochs before End
    std::uint64_t phaseEvery = 0;   //!< acts between hot-set moves
                                    //!< (0 = static hot sets)
    std::uint64_t seed = 1;         //!< stream seed
};

/**
 * Open-loop benign generator: a consolidated multi-tenant cloud bank.
 * Each activation picks one of the tenants uniformly and a row from
 * that tenant's Zipf-skewed working set; every phaseEvery activations
 * the working sets relocate to seeded, phase-indexed bases
 * (deterministic phase changes - the hot-spot turnover that dynamic
 * reconfiguration schemes are sold on).  Deterministic in its params
 * and independent of how the stream is chunked.
 */
class CloudMixSource : public ActivationSource
{
  public:
    explicit CloudMixSource(const CloudMixParams &params);

    SourceChunk next(const RowAddr **rows, std::size_t *count) override;

    /** Hot-set base row of @p tenant in the current phase (tests). */
    RowAddr tenantBase(std::uint32_t tenant) const;

  private:
    static constexpr std::size_t kChunk = 4096;

    /** Move every tenant's base for the phase produced_ sits in. */
    void rebase();

    CloudMixParams params_;
    ZipfSampler zipf_;
    Xoshiro256StarStar rng_;
    std::vector<RowAddr> bases_;
    std::vector<RowAddr> buffer_;
    std::uint64_t produced_ = 0; //!< total acts, drives phase changes
    std::uint64_t producedInEpoch_ = 0;
    std::uint64_t epochsDone_ = 0;
    bool pendingEpoch_ = false;
};

} // namespace catsim

#endif // CATSIM_SIM_ACTIVATION_SOURCE_HPP
