/**
 * @file
 * Activation-replay simulation.
 *
 * Mitigation schemes are a pure function of the per-bank row-activation
 * stream, so once a timing run has recorded those streams (with epoch
 * markers), any number of scheme configurations can be evaluated by
 * cheap replay - no DRAM timing involved.  This is what makes the
 * paper's large sweeps (Fig 10: counters x levels x thresholds x 18
 * workloads) tractable.
 */

#ifndef CATSIM_SIM_ACTIVATION_SIM_HPP
#define CATSIM_SIM_ACTIVATION_SIM_HPP

#include <memory>
#include <vector>

#include "common/types.hpp"
#include "core/factory.hpp"
#include "core/mitigation.hpp"
#include "sim/activation_source.hpp"
#include "sim/timing_sim.hpp"

namespace catsim
{

/** Replay results. */
struct ReplayResult
{
    SchemeStats stats;          //!< summed over banks
    Count banks = 0;
    Count epochs = 0;

    /** Per-bank average of a stat (for per-bank CMRPO). */
    double
    perBank(Count v) const
    {
        return banks ? static_cast<double>(v) / static_cast<double>(banks)
                     : 0.0;
    }
};

/**
 * Replay recorded bank streams (rows + kEpochMarker sentinels) through
 * fresh per-bank instances of the given scheme.
 */
ReplayResult replayActivations(
    const std::vector<std::vector<RowAddr>> &bank_streams,
    const SchemeConfig &scheme_config, RowAddr rows_per_bank);

/**
 * Drive one ActivationSource per bank through fresh per-bank scheme
 * instances (sources[i] is bank i's stream).  Open-loop sources go
 * through the onActivateBatch fast path; closed-loop sources are
 * stepped one activation at a time and receive the scheme's
 * RefreshAction after each - this is how adaptive attackers observe
 * the defense.  Null entries are skipped (bank idle).
 *
 * @param first_bank Global flat-bank index of sources[0].  A shard
 *     replaying banks [first_bank, first_bank + n) produces exactly
 *     the per-bank schemes (seeds, pool groups) the whole-topology
 *     call would, so sharded results merge bit-identically; must be
 *     pool-group-aligned when scheme_config.banksPerPool > 1.
 */
ReplayResult replaySources(
    const std::vector<std::unique_ptr<ActivationSource>> &sources,
    const SchemeConfig &scheme_config, RowAddr rows_per_bank,
    std::uint32_t first_bank = 0);

} // namespace catsim

#endif // CATSIM_SIM_ACTIVATION_SIM_HPP
