/**
 * @file
 * Frozen pre-event-engine timing simulator.
 *
 * This is the historical runTiming loop (linear scan for the earliest
 * core, inline epoch bookkeeping) kept verbatim as the differential
 * oracle for the event-queue engine, exactly as ReferenceCatTree
 * freezes the recursive tree for the flattened CatTree.  Do not
 * optimize or refactor it; tests/test_event_engine_diff.cpp asserts
 * the production runTiming reproduces it bit for bit.
 */

#ifndef CATSIM_SIM_REFERENCE_TIMING_SIM_HPP
#define CATSIM_SIM_REFERENCE_TIMING_SIM_HPP

#include "sim/timing_sim.hpp"

namespace catsim
{

/** Historical scan-loop implementation of runTiming (frozen). */
TimingResult referenceRunTiming(const TimingConfig &config,
                                const StreamFactory &make_stream);

} // namespace catsim

#endif // CATSIM_SIM_REFERENCE_TIMING_SIM_HPP
