#include "reference_timing_sim.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace catsim
{

TimingResult
referenceRunTiming(const TimingConfig &config,
                   const StreamFactory &make_stream)
{
    DramSystem dram(config.geometry, config.timing);
    AddressMapper mapper(config.geometry, config.mapping);
    MemoryController mc(dram, mapper, config.scheme);

    TimingResult res;
    if (config.recordActivations) {
        res.bankStreams.resize(config.geometry.totalBanks());
        mc.setActivationObserver(
            [&res](std::uint32_t bank, RowAddr row) {
                res.bankStreams[bank].push_back(row);
            });
    }

    std::vector<std::unique_ptr<CoreModel>> cores;
    cores.reserve(config.numCores);
    for (CoreId c = 0; c < config.numCores; ++c) {
        cores.push_back(std::make_unique<CoreModel>(
            c, config.core, make_stream(c), mc));
    }

    const double epochCycles =
        static_cast<double>(config.timing.refreshIntervalCycles())
        * config.epochScale;
    if (epochCycles < 1.0)
        CATSIM_FATAL("epoch scale too small");
    double nextEpoch = epochCycles;

    // Advance the earliest core one record at a time; cores' clocks
    // only move forward, so requests are submitted in arrival order.
    std::size_t active = cores.size();
    while (active > 0) {
        CoreModel *earliest = nullptr;
        for (auto &core : cores) {
            if (core->done())
                continue;
            if (!earliest || core->time() < earliest->time())
                earliest = core.get();
        }
        if (!earliest)
            break;

        if (earliest->time() >= nextEpoch) {
            mc.onEpoch();
            ++res.epochs;
            nextEpoch += epochCycles;
            if (config.recordActivations) {
                for (auto &s : res.bankStreams)
                    s.push_back(kEpochMarker);
            }
            continue;
        }

        if (!earliest->step())
            --active;
    }

    Cycle end = 0;
    for (auto &core : cores) {
        core->drain();
        end = std::max(end, static_cast<Cycle>(core->time()));
    }
    mc.drainAllWrites(end);
    end = std::max(end, mc.stats().lastCompletion);

    res.execCycles = end;
    res.execSeconds = config.timing.cyclesToNs(end) * 1e-9;
    res.controller = mc.stats();
    res.scheme = mc.combinedSchemeStats();
    res.totalActivations = dram.totalActivations();
    res.victimRowsRefreshed = dram.totalVictimRowsRefreshed();
    return res;
}

} // namespace catsim
