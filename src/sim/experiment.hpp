/**
 * @file
 * Experiment orchestration shared by the bench binaries and examples.
 *
 * An ExperimentRunner owns a cache of baseline timing runs (one per
 * workload/system pair) whose recorded activation streams feed cheap
 * scheme replays for CMRPO, and runs full timing simulations for ETO.
 *
 * Scaled experiments: simulating a full 64 ms refresh interval per
 * configuration is expensive, so the runner supports a scale factor
 * s in (0,1] (CATSIM_SCALE).  Scaling shrinks the epoch length AND the
 * refresh threshold together, which preserves the counting dynamics
 * (triggers per epoch, tree shapes, ordering between schemes) exactly;
 * the runner then de-scales the reported refresh power and ETO (both
 * are per-epoch quantities spread over a 1/s shorter run) so reported
 * numbers estimate the unscaled system.  PRA is threshold-free and
 * needs no correction.  docs/DESIGN.md Section 7 discusses fidelity.
 */

#ifndef CATSIM_SIM_EXPERIMENT_HPP
#define CATSIM_SIM_EXPERIMENT_HPP

#include <atomic>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/config.hpp"
#include "energy/cmrpo.hpp"
#include "sim/activation_sim.hpp"
#include "sim/system_config.hpp"
#include "sim/timing_sim.hpp"
#include "trace/attack.hpp"
#include "trace/workloads.hpp"

namespace catsim
{

/**
 * Closed-loop attacker families evaluated by bench_fig14_adaptive and
 * the modern scenario corpus of bench_fig16_modern.
 */
enum class AttackerKind
{
    Static,       //!< fixed Gaussian targets, open loop
    MultiBank,    //!< fixed targets synchronized across banks
    RefreshAware, //!< TRR-style: rotates aggressors on observed refresh
    ManySided,    //!< aggressor pairs straddling each victim (v+-1)
    HalfDouble,   //!< far pairs at distance 2 (blast radius 2)
    CloudMix,     //!< benign multi-tenant Zipf mix with phase changes
};

/** Attacker name for labels/reports. */
const char *attackerKindName(AttackerKind kind);

/**
 * One closed-loop attack scenario: every bank is driven by a live
 * per-bank attacker source (no recorded baseline involved), hammering
 * at the bank's maximum activation rate with the paper's Heavy/Medium/
 * Light target mix.
 */
struct AdaptiveAttackSpec
{
    AttackerKind attacker = AttackerKind::Static;
    AttackMode mode = AttackMode::Medium;
    std::uint64_t kernel = 1;          //!< target-placement seed (1..12)
    std::uint64_t seed = 42;           //!< per-bank stream seed base
    std::uint32_t targetsPerBank = 4;  //!< initial aggressors per bank
    std::uint64_t epochs = 2;          //!< scaled 64 ms epochs simulated
};

/** Build the TimingConfig skeleton for a preset. */
TimingConfig makeSystem(SystemPreset preset);

/** Per-workload/scheme evaluation results. */
struct EvalResult
{
    double cmrpo = 0.0;
    PowerBreakdown power;       //!< per bank
    SchemeStats stats;          //!< totals over banks
    double baselineSeconds = 0.0;
};

/**
 * Orchestrates baseline caching, replays and timing runs.
 *
 * Thread safety: every public method may be called concurrently (the
 * SweepRunner does).  The baseline cache hands out one shared_future
 * per (preset, workload) key, so concurrent evaluations that share a
 * baseline compute it exactly once and the rest block on the future.
 * Cached entries live for the runner's lifetime, so returned
 * references stay valid.
 *
 * Disk persistence: when CATSIM_BASELINE_CACHE names a directory (or
 * setBaselineCacheDir() is called), computed baselines - including
 * their recorded activation streams - are serialized there and later
 * runs load them instead of re-running the timing simulation.
 */
class ExperimentRunner
{
  public:
    /**
     * @param scale Experiment scale s in (0,1]; defaults to the
     *              CATSIM_SCALE environment variable (1.0 when unset).
     */
    explicit ExperimentRunner(double scale = experimentScale());

    /**
     * Baseline (no mitigation) timing run with recorded activation
     * streams; cached per (preset, workload).
     */
    const TimingResult &baseline(SystemPreset preset,
                                 const WorkloadSpec &workload);

    /**
     * CMRPO of a scheme on a workload via activation replay of the
     * cached baseline streams.  @p scheme carries the PAPER threshold;
     * the runner applies the scale internally.
     */
    EvalResult evalCmrpo(SystemPreset preset,
                         const WorkloadSpec &workload,
                         const SchemeConfig &scheme);

    /** ETO of a scheme on a workload via a full timing run. */
    double evalEto(SystemPreset preset, const WorkloadSpec &workload,
                   const SchemeConfig &scheme);

    /**
     * CMRPO of a scheme against a closed-loop adaptive attack.  Unlike
     * evalCmrpo there is no recorded baseline: every bank is driven by
     * a live attacker source (RefreshAware sources observe each
     * RefreshAction and re-aim), so the whole cell is one pure
     * function of its spec - cheap, deterministic, and cache-free.
     */
    EvalResult evalAdaptive(SystemPreset preset,
                            const AdaptiveAttackSpec &attack,
                            const SchemeConfig &scheme);

    /**
     * Attacker-success complement to evalAdaptive's defense-cost view:
     * the maximum number of activations any single row accumulated
     * before a refresh covered both of its victims (the
     * test_integration_safety ledger), over all banks of the same
     * closed-loop scenario, reported as a fraction of the scaled
     * refresh threshold.  Deterministic schemes stay at/just above 1.0
     * (a CAT split consumes the triggering access, so a hammered row
     * can overshoot by a few accesses); values meaningfully above 1.0
     * mean the attacker outran the defense (PRA's probabilistic gap).
     * Pure function of its arguments, like evalAdaptive.
     */
    double evalAdaptiveDisturbance(SystemPreset preset,
                                   const AdaptiveAttackSpec &attack,
                                   const SchemeConfig &scheme);

    /**
     * ETO of a scheme under a closed-loop attack, via two full timing
     * runs on the stimulus path (runTimingOnSources): a baseline leg
     * with the identical attacker fleet and no mitigation, and a
     * mitigated leg where every victim refresh blocks the hammered
     * bank.  RefreshAware attackers observe the mitigated leg's
     * RefreshActions mid-flight - the overhead of a defense that is
     * being actively evaded, which no replay of a recorded stream can
     * express.  Pure function of its arguments, like evalAdaptive.
     */
    double evalAdaptiveEto(SystemPreset preset,
                           const AdaptiveAttackSpec &attack,
                           const SchemeConfig &scheme);

    /** Records per core targeting ~1.2 scaled epochs for a profile. */
    std::uint64_t recordsFor(const WorkloadSpec &workload,
                             const TimingConfig &sys) const;

    double scale() const { return scale_; }

    /** Scale a paper threshold for simulation. */
    std::uint32_t scaledThreshold(std::uint32_t threshold) const;

    /**
     * Directory for on-disk baseline persistence; "" disables it.
     * Defaults to the CATSIM_BASELINE_CACHE environment variable.
     * Not thread-safe against in-flight evaluations - set it up front.
     */
    void setBaselineCacheDir(const std::string &dir);
    const std::string &baselineCacheDir() const { return cacheDir_; }

    /** On-disk path a baseline would use; "" when caching is off. */
    std::string baselineCachePath(SystemPreset preset,
                                  const WorkloadSpec &workload) const;

    /** Timing simulations actually executed (cache misses). */
    std::uint64_t baselineComputeCount() const
    {
        return computeCount_.load();
    }

    /** Baselines satisfied from the on-disk cache. */
    std::uint64_t baselineDiskLoads() const { return diskLoads_.load(); }

  private:
    /** A cached baseline plus the mapper its streams were built with. */
    struct BaselineEntry
    {
        // The mapper must outlive the stream factories referencing it.
        std::unique_ptr<AddressMapper> mapper;
        TimingResult timing;
    };
    using BaselinePtr = std::shared_ptr<const BaselineEntry>;

    StreamFactory streamFactory(const WorkloadSpec &workload,
                                const TimingConfig &sys,
                                std::uint64_t records,
                                const AddressMapper &mapper) const;
    /** Live per-bank attacker sources for one closed-loop scenario. */
    std::vector<std::unique_ptr<ActivationSource>> adaptiveSources(
        const TimingConfig &sys,
        const AdaptiveAttackSpec &attack) const;
    SchemeConfig scaledScheme(const SchemeConfig &scheme) const;
    EvalResult evalFromReplay(const ReplayResult &replay,
                              const SchemeConfig &scheme,
                              double exec_seconds,
                              const TimingConfig &sys) const;
    std::string cacheKey(SystemPreset preset,
                         const WorkloadSpec &workload) const;
    const BaselineEntry &baselineEntry(SystemPreset preset,
                                       const WorkloadSpec &workload);
    BaselinePtr computeBaseline(SystemPreset preset,
                                const WorkloadSpec &workload,
                                const std::string &key);

    double scale_;
    std::string cacheDir_;
    std::mutex mutex_;
    std::map<std::string, std::shared_future<BaselinePtr>> baselines_;
    std::atomic<std::uint64_t> computeCount_{0};
    std::atomic<std::uint64_t> diskLoads_{0};
};

} // namespace catsim

#endif // CATSIM_SIM_EXPERIMENT_HPP
