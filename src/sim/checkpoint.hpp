/**
 * @file
 * Crash-safe run journal for sweeps and Monte-Carlo campaigns.
 *
 * Every SweepRunner cell and Monte-Carlo trial batch is a pure
 * deterministic function of its spec, so a long run can be made
 * crash-safe by journaling each completed unit of work: one record
 * per cell, appended (and fsync'd) the moment the cell finishes.  On
 * restart the journal is replayed, every record whose key and CRC32
 * validate is served from disk, and only the missing cells re-run -
 * a killed-and-resumed run therefore produces byte-identical output
 * to an uninterrupted one.
 *
 * Enabled by CATSIM_CHECKPOINT=dir (or programmatically).  One
 * journal file per distinct run, named from a hash of the run key (the
 * run kind, scale, and every cell spec), so a changed grid opens a
 * fresh journal instead of mixing stale cells in.
 *
 * On-disk format (little-endian, append-only):
 *
 *   header:  u64 magic "CATSIMJ1" | u64 version | u64 runKeyLen |
 *            runKey bytes | u32 crc32(header bytes so far)
 *   record:  u64 keyLen | u64 blobLen | key bytes | blob bytes |
 *            u32 crc32(record bytes so far)
 *
 * Replay stops at the first short read or CRC mismatch, truncates the
 * file back to the last valid record (the torn tail a SIGKILL mid
 * append leaves behind), and appends from there.  A corrupt or torn
 * record is therefore never served - it is re-run instead.
 */

#ifndef CATSIM_SIM_CHECKPOINT_HPP
#define CATSIM_SIM_CHECKPOINT_HPP

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace catsim
{

/** Checkpoint directory from CATSIM_CHECKPOINT ("" = disabled). */
std::string checkpointDirFromEnv();

/** Journal file name (not path) for a run key: hash-suffixed. */
std::string checkpointFileName(const std::string &runKey);

/**
 * One append-only journal of completed work records.
 *
 * Thread safety: lookup() reads the replayed index built at open time
 * and may race with nothing; append() serializes internally, so
 * concurrent sweep workers can journal cells as they finish.
 */
class CheckpointJournal
{
  public:
    /**
     * Open (creating if needed) dir/checkpointFileName(runKey) and
     * replay its valid records.  A header that fails validation or
     * names a different run key (hash collision, format bump) starts
     * the journal fresh.
     */
    CheckpointJournal(const std::string &dir, const std::string &runKey);

    CheckpointJournal(const CheckpointJournal &) = delete;
    CheckpointJournal &operator=(const CheckpointJournal &) = delete;

    /** True when @p key was journaled; copies its blob to @p blob. */
    bool lookup(const std::string &key, std::string *blob) const;

    /**
     * Append one completed record and fsync it.  Throws
     * std::runtime_error on I/O failure (a cell result that could not
     * be made durable must not be treated as checkpointed).
     */
    void append(const std::string &key, const std::string &blob);

    /** Records replayed from disk at open time. */
    std::size_t replayedRecords() const { return replayed_; }

    /** Full path of the journal file. */
    const std::string &path() const { return path_; }

  private:
    std::string path_;
    std::map<std::string, std::string> index_;
    std::size_t replayed_ = 0;
    std::mutex appendMutex_;
};

/**
 * Little-endian binary blob builder/reader for journal payloads.
 * Doubles are stored bit-exactly, so a value decoded from the journal
 * is the value the original run computed - byte-identical resumes.
 */
class BlobWriter
{
  public:
    void putU64(std::uint64_t v);
    void putDouble(double v);
    const std::string &str() const { return buf_; }

  private:
    std::string buf_;
};

class BlobReader
{
  public:
    explicit BlobReader(const std::string &buf) : buf_(buf) {}
    bool getU64(std::uint64_t *v);
    bool getDouble(double *v);
    /** True when every byte was consumed (length sanity check). */
    bool atEnd() const { return pos_ == buf_.size(); }

  private:
    const std::string &buf_;
    std::size_t pos_ = 0;
};

} // namespace catsim

#endif // CATSIM_SIM_CHECKPOINT_HPP
