#include "timing_sim.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"
#include "sim/event_engine.hpp"

namespace catsim
{

namespace
{

/**
 * One trace-driven core as an engine actor.  Every event consumes one
 * trace record; the actor re-arms at the core's advanced clock, so the
 * queue order reproduces the historical earliest-core scan (see the
 * tie-break contract in event_engine.hpp).
 */
class CoreActor : public SimActor
{
  public:
    CoreActor(EventEngine &engine, CoreModel &core)
        : engine_(engine), core_(core)
    {
        id_ = engine_.addActor(this, EventEngine::ActorRole::Source);
        engine_.schedule(id_, core_.time());
    }

    void
    onEvent(SimTime) override
    {
        if (core_.step())
            engine_.schedule(id_, core_.time());
        else
            engine_.retire(id_);
    }

  private:
    EventEngine &engine_;
    CoreModel &core_;
    ActorId id_ = 0;
};

/**
 * One DRAM bank hammered by an ActivationSource at the fastest legal
 * cadence (one ACT per tRC of local time).  The DRAM timeline pushes
 * actual issue later whenever the bank is blocked by victim refreshes,
 * which is exactly the slowdown ETO measures.
 */
class BankSourceActor : public SimActor
{
  public:
    BankSourceActor(EventEngine &engine, ActivationSource &source,
                    MemoryController &mc, const MappedAddr &loc,
                    double act_cycles)
        : engine_(engine), source_(source), mc_(mc), loc_(loc),
          actCycles_(act_cycles)
    {
        id_ = engine_.addActor(this, EventEngine::ActorRole::Source);
        engine_.schedule(id_, clock_);
    }

    void
    onEvent(SimTime) override
    {
        while (pending_ == 0) {
            const SourceChunk chunk = source_.next(&rows_, &pending_);
            if (chunk == SourceChunk::End) {
                engine_.retire(id_);
                return;
            }
            // The source's own Epoch chunks are pacing metadata on the
            // timing path; real boundaries come from the engine-owned
            // epoch timer.
        }
        MemRequest req;
        req.loc = loc_;
        req.loc.row = rows_[0];
        req.arrival = static_cast<Cycle>(clock_);
        mc_.submitMapped(req);
        ++rows_;
        --pending_;
        clock_ += actCycles_;
        engine_.schedule(id_, clock_);
    }

    double clock() const { return clock_; }

  private:
    EventEngine &engine_;
    ActivationSource &source_;
    MemoryController &mc_;
    MappedAddr loc_;
    double actCycles_;
    ActorId id_ = 0;
    double clock_ = 0.0;
    const RowAddr *rows_ = nullptr;
    std::size_t pending_ = 0;
};

double
scaledEpochCycles(const TimingConfig &config)
{
    return static_cast<double>(config.timing.refreshIntervalCycles())
           * config.epochScale;
}

/** Invert BankId::flat: flat -> DRAM coordinates with row/col zero. */
MappedAddr
bankCoordinates(const DramGeometry &geom, std::uint32_t flat)
{
    MappedAddr loc;
    loc.bank = flat % geom.banksPerRank;
    const std::uint32_t tmp = flat / geom.banksPerRank;
    loc.rank = tmp % geom.ranksPerChannel;
    loc.channel = tmp / geom.ranksPerChannel;
    return loc;
}

void
finishResult(TimingResult &res, const TimingConfig &config, Cycle end,
             const MemoryController &mc, const DramSystem &dram)
{
    res.execCycles = end;
    res.execSeconds = config.timing.cyclesToNs(end) * 1e-9;
    res.controller = mc.stats();
    res.scheme = mc.combinedSchemeStats();
    res.totalActivations = dram.totalActivations();
    res.victimRowsRefreshed = dram.totalVictimRowsRefreshed();
}

} // namespace

TimingResult
runTiming(const TimingConfig &config, const StreamFactory &make_stream)
{
    DramSystem dram(config.geometry, config.timing);
    AddressMapper mapper(config.geometry, config.mapping);
    MemoryController mc(dram, mapper, config.scheme);

    TimingResult res;
    if (config.recordActivations) {
        res.bankStreams.resize(config.geometry.totalBanks());
        mc.setActivationObserver(
            [&res](std::uint32_t bank, RowAddr row) {
                res.bankStreams[bank].push_back(row);
            });
    }

    std::vector<std::unique_ptr<CoreModel>> cores;
    cores.reserve(config.numCores);
    for (CoreId c = 0; c < config.numCores; ++c) {
        cores.push_back(std::make_unique<CoreModel>(
            c, config.core, make_stream(c), mc));
    }

    EventEngine engine;
    // The epoch timer registers first: at an exact boundary tie it
    // fires before any core, preserving the historical semantics of
    // "epoch work happens before the core whose clock reached it".
    EpochTimerActor epochTimer(
        engine, scaledEpochCycles(config), [&]() {
            mc.onEpoch();
            if (config.recordActivations)
                appendEpochMarkers(res.bankStreams);
        });
    std::vector<std::unique_ptr<CoreActor>> actors;
    actors.reserve(cores.size());
    for (auto &core : cores)
        actors.push_back(std::make_unique<CoreActor>(engine, *core));

    engine.run();
    res.epochs = epochTimer.epochs();

    Cycle end = 0;
    for (auto &core : cores) {
        core->drain();
        end = std::max(end, static_cast<Cycle>(core->time()));
    }
    mc.drainAllWrites(end);
    end = std::max(end, mc.stats().lastCompletion);

    finishResult(res, config, end, mc, dram);
    return res;
}

TimingResult
runTimingOnSources(
    const TimingConfig &config,
    const std::vector<std::unique_ptr<ActivationSource>> &sources)
{
    DramSystem dram(config.geometry, config.timing);
    AddressMapper mapper(config.geometry, config.mapping);
    MemoryController mc(dram, mapper, config.scheme);

    const std::uint32_t totalBanks = config.geometry.totalBanks();
    if (sources.size() != totalBanks)
        CATSIM_FATAL("runTimingOnSources: need one source slot per bank");

    TimingResult res;
    if (config.recordActivations) {
        res.bankStreams.resize(totalBanks);
        mc.setActivationObserver(
            [&res](std::uint32_t bank, RowAddr row) {
                res.bankStreams[bank].push_back(row);
            });
    }
    // Mid-flight defense feedback: every ACT's RefreshAction (possibly
    // untriggered) is delivered to the issuing bank's source while the
    // run is in progress - the closed-loop attacker's sensing channel.
    mc.setRefreshActionObserver(
        [&sources](std::uint32_t bank, RowAddr row,
                   const RefreshAction &act) {
            ActivationSource *src = sources[bank].get();
            if (src && src->closedLoop())
                src->onRefreshAction(row, act);
        });

    EventEngine engine;
    EpochTimerActor epochTimer(
        engine, scaledEpochCycles(config), [&]() {
            mc.onEpoch();
            if (config.recordActivations)
                appendEpochMarkers(res.bankStreams);
        });
    const double actCycles =
        static_cast<double>(config.timing.tRC);
    std::vector<std::unique_ptr<BankSourceActor>> actors;
    actors.reserve(totalBanks);
    for (std::uint32_t b = 0; b < totalBanks; ++b) {
        if (!sources[b])
            continue;
        actors.push_back(std::make_unique<BankSourceActor>(
            engine, *sources[b], mc,
            bankCoordinates(config.geometry, b), actCycles));
    }

    engine.run();
    res.epochs = epochTimer.epochs();

    Cycle end = mc.stats().lastCompletion;
    for (const auto &actor : actors) {
        end = std::max(
            end, static_cast<Cycle>(std::ceil(actor->clock())));
    }
    mc.drainAllWrites(end);
    end = std::max(end, mc.stats().lastCompletion);

    finishResult(res, config, end, mc, dram);
    return res;
}

} // namespace catsim
