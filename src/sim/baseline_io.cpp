#include "baseline_io.hpp"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <thread>

#include "common/checksum.hpp"
#include "common/durable_io.hpp"
#include "common/fault_injection.hpp"
#include "common/logging.hpp"

namespace catsim
{

namespace
{

/** Bump on any layout change; stale files are silently recomputed. */
constexpr std::uint64_t kMagic = 0x43415453494D4231ULL; // "CATSIMB1"

void
putU64(std::ostream &os, std::uint64_t v)
{
    os.write(reinterpret_cast<const char *>(&v), sizeof v);
}

void
putDouble(std::ostream &os, double v)
{
    os.write(reinterpret_cast<const char *>(&v), sizeof v);
}

bool
getU64(std::istream &is, std::uint64_t *v)
{
    is.read(reinterpret_cast<char *>(v), sizeof *v);
    return static_cast<bool>(is);
}

bool
getDouble(std::istream &is, double *v)
{
    is.read(reinterpret_cast<char *>(v), sizeof *v);
    return static_cast<bool>(is);
}

/** FNV-1a, for collision-proofing the sanitized file name. */
std::uint64_t
fnv1a(const std::string &s)
{
    std::uint64_t h = 1469598103934665603ULL;
    for (unsigned char c : s) {
        h ^= c;
        h *= 1099511628211ULL;
    }
    return h;
}

} // namespace

std::string
baselineCacheFileName(const std::string &key, double scale)
{
    std::string safe;
    safe.reserve(key.size());
    for (char c : key) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
                        || (c >= '0' && c <= '9') || c == '-' || c == '.';
        safe.push_back(ok ? c : '_');
    }
    std::uint64_t scaleBits;
    static_assert(sizeof scaleBits == sizeof scale, "double is 64-bit");
    std::memcpy(&scaleBits, &scale, sizeof scaleBits);
    char suffix[64];
    std::snprintf(suffix, sizeof suffix, "-%016llx-%016llx.catb",
                  static_cast<unsigned long long>(fnv1a(key)),
                  static_cast<unsigned long long>(scaleBits));
    return safe + suffix;
}

bool
saveBaseline(const std::string &path, const std::string &key,
             double scale, const TimingResult &result)
{
    std::error_code ec;
    const std::filesystem::path target(path);
    if (target.has_parent_path())
        std::filesystem::create_directories(target.parent_path(), ec);

    // Serialize into memory first so the CRC32 trailer covers the
    // exact bytes that hit the disk.
    std::ostringstream payload(std::ios::binary);
    putU64(payload, kMagic);
    putU64(payload, kBaselineModelVersion);
    putU64(payload, key.size());
    payload.write(key.data(), static_cast<std::streamsize>(key.size()));
    putDouble(payload, scale);

    putU64(payload, result.execCycles);
    putDouble(payload, result.execSeconds);
    putU64(payload, result.epochs);
    putU64(payload, result.controller.reads);
    putU64(payload, result.controller.writes);
    putU64(payload, result.controller.writeDrains);
    putU64(payload, result.controller.victimRefreshEvents);
    putU64(payload, result.controller.victimRowsRefreshed);
    putU64(payload, result.controller.lastCompletion);
    putU64(payload, result.scheme.activations);
    putU64(payload, result.scheme.refreshEvents);
    putU64(payload, result.scheme.victimRowsRefreshed);
    putU64(payload, result.scheme.sramAccesses);
    putU64(payload, result.scheme.prngBits);
    putU64(payload, result.scheme.splits);
    putU64(payload, result.scheme.merges);
    putU64(payload, result.scheme.epochResets);
    putU64(payload, result.scheme.counterDramReads);
    putU64(payload, result.scheme.counterDramWrites);
    putU64(payload, result.totalActivations);
    putU64(payload, result.victimRowsRefreshed);

    putU64(payload, result.bankStreams.size());
    for (const auto &stream : result.bankStreams) {
        putU64(payload, stream.size());
        payload.write(reinterpret_cast<const char *>(stream.data()),
                      static_cast<std::streamsize>(stream.size()
                                                   * sizeof(RowAddr)));
    }
    std::string blob = payload.str();
    const std::uint32_t crc = crc32(blob.data(), blob.size());
    blob.append(reinterpret_cast<const char *>(&crc), sizeof crc);

    if (fault::shouldFail("baseline_write_enospc")) {
        CATSIM_WARN("baseline cache: cannot write ", path,
                    " (injected ENOSPC)");
        return false;
    }
    // Injected torn write: half the blob reaches the final path, as a
    // crash between rename and device writeback would leave it.  The
    // CRC trailer makes the next load miss and recompute.
    const std::size_t writeLen = fault::shouldFail("baseline_write_torn")
        ? blob.size() / 2
        : blob.size();

    // Unique temp name per writer (thread id alone can collide across
    // processes sharing a cache dir); renamed into place atomically.
    std::ostringstream uniq;
    uniq << std::this_thread::get_id() << '.' << std::hex
         << std::random_device{}();
    const std::string tmp = path + ".tmp." + uniq.str();
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os) {
            CATSIM_WARN("baseline cache: cannot write ", tmp);
            return false;
        }
        os.write(blob.data(), static_cast<std::streamsize>(writeLen));
        os.flush();
        if (!os) {
            CATSIM_WARN("baseline cache: short write to ", tmp);
            os.close();
            std::filesystem::remove(tmp, ec);
            return false;
        }
    }
    // Durability: data to the device before the rename publishes it,
    // then the rename itself via the directory.  Best effort - a
    // filesystem that refuses fsync degrades to page-cache safety.
    syncFile(tmp);
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        CATSIM_WARN("baseline cache: rename to ", path, " failed: ",
                    ec.message());
        std::filesystem::remove(tmp, ec);
        return false;
    }
    syncParentDir(path);
    return true;
}

bool
loadBaseline(const std::string &path, const std::string &key,
             double scale, TimingResult *out)
{
    std::ifstream file(path, std::ios::binary);
    if (!file)
        return false;
    if (fault::shouldFail("baseline_read"))
        return false; // models an I/O error / short read mid-load

    // Read the whole image so the CRC32 trailer can be verified before
    // any field is trusted; the image size also bounds every length
    // field below, so a corrupt file can never trigger a huge
    // allocation.
    std::string image;
    {
        std::ostringstream os;
        os << file.rdbuf();
        image = os.str();
    }
    if (image.size() < sizeof(std::uint32_t))
        return false;
    std::uint32_t storedCrc = 0;
    std::memcpy(&storedCrc,
                image.data() + image.size() - sizeof storedCrc,
                sizeof storedCrc);
    const std::size_t payloadSize = image.size() - sizeof storedCrc;
    if (crc32(image.data(), payloadSize) != storedCrc)
        return false; // torn, truncated, or bit-flipped: recompute
    const std::uint64_t fileSize = payloadSize;

    std::istringstream is(image.substr(0, payloadSize),
                          std::ios::binary);

    std::uint64_t magic = 0, version = 0, keyLen = 0;
    if (!getU64(is, &magic) || magic != kMagic || !getU64(is, &version)
        || version != kBaselineModelVersion || !getU64(is, &keyLen)
        || keyLen > 4096)
        return false;
    std::string storedKey(keyLen, '\0');
    is.read(storedKey.data(), static_cast<std::streamsize>(keyLen));
    double storedScale = 0.0;
    if (!is || storedKey != key || !getDouble(is, &storedScale)
        || storedScale != scale)
        return false;

    TimingResult r;
    bool ok = getU64(is, &r.execCycles) && getDouble(is, &r.execSeconds)
              && getU64(is, &r.epochs) && getU64(is, &r.controller.reads)
              && getU64(is, &r.controller.writes)
              && getU64(is, &r.controller.writeDrains)
              && getU64(is, &r.controller.victimRefreshEvents)
              && getU64(is, &r.controller.victimRowsRefreshed)
              && getU64(is, &r.controller.lastCompletion)
              && getU64(is, &r.scheme.activations)
              && getU64(is, &r.scheme.refreshEvents)
              && getU64(is, &r.scheme.victimRowsRefreshed)
              && getU64(is, &r.scheme.sramAccesses)
              && getU64(is, &r.scheme.prngBits)
              && getU64(is, &r.scheme.splits)
              && getU64(is, &r.scheme.merges)
              && getU64(is, &r.scheme.epochResets)
              && getU64(is, &r.scheme.counterDramReads)
              && getU64(is, &r.scheme.counterDramWrites)
              && getU64(is, &r.totalActivations)
              && getU64(is, &r.victimRowsRefreshed);
    if (!ok)
        return false;

    std::uint64_t banks = 0;
    if (!getU64(is, &banks) || banks > 65536)
        return false;
    r.bankStreams.resize(banks);
    for (auto &stream : r.bankStreams) {
        std::uint64_t len = 0;
        if (!getU64(is, &len) || len > fileSize / sizeof(RowAddr))
            return false;
        stream.resize(len);
        is.read(reinterpret_cast<char *>(stream.data()),
                static_cast<std::streamsize>(len * sizeof(RowAddr)));
        if (!is)
            return false;
    }
    // Reject trailing garbage (e.g. a truncated-then-appended file).
    is.peek();
    if (!is.eof())
        return false;

    *out = std::move(r);
    return true;
}

} // namespace catsim
