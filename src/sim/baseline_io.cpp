#include "baseline_io.hpp"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <thread>

#include "common/logging.hpp"

namespace catsim
{

namespace
{

/** Bump on any layout change; stale files are silently recomputed. */
constexpr std::uint64_t kMagic = 0x43415453494D4231ULL; // "CATSIMB1"

void
putU64(std::ostream &os, std::uint64_t v)
{
    os.write(reinterpret_cast<const char *>(&v), sizeof v);
}

void
putDouble(std::ostream &os, double v)
{
    os.write(reinterpret_cast<const char *>(&v), sizeof v);
}

bool
getU64(std::istream &is, std::uint64_t *v)
{
    is.read(reinterpret_cast<char *>(v), sizeof *v);
    return static_cast<bool>(is);
}

bool
getDouble(std::istream &is, double *v)
{
    is.read(reinterpret_cast<char *>(v), sizeof *v);
    return static_cast<bool>(is);
}

/** FNV-1a, for collision-proofing the sanitized file name. */
std::uint64_t
fnv1a(const std::string &s)
{
    std::uint64_t h = 1469598103934665603ULL;
    for (unsigned char c : s) {
        h ^= c;
        h *= 1099511628211ULL;
    }
    return h;
}

} // namespace

std::string
baselineCacheFileName(const std::string &key, double scale)
{
    std::string safe;
    safe.reserve(key.size());
    for (char c : key) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
                        || (c >= '0' && c <= '9') || c == '-' || c == '.';
        safe.push_back(ok ? c : '_');
    }
    std::uint64_t scaleBits;
    static_assert(sizeof scaleBits == sizeof scale, "double is 64-bit");
    std::memcpy(&scaleBits, &scale, sizeof scaleBits);
    char suffix[64];
    std::snprintf(suffix, sizeof suffix, "-%016llx-%016llx.catb",
                  static_cast<unsigned long long>(fnv1a(key)),
                  static_cast<unsigned long long>(scaleBits));
    return safe + suffix;
}

bool
saveBaseline(const std::string &path, const std::string &key,
             double scale, const TimingResult &result)
{
    std::error_code ec;
    const std::filesystem::path target(path);
    if (target.has_parent_path())
        std::filesystem::create_directories(target.parent_path(), ec);

    // Unique temp name per writer (thread id alone can collide across
    // processes sharing a cache dir); renamed into place atomically.
    std::ostringstream uniq;
    uniq << std::this_thread::get_id() << '.' << std::hex
         << std::random_device{}();
    const std::string tmp = path + ".tmp." + uniq.str();
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os) {
            CATSIM_WARN("baseline cache: cannot write ", tmp);
            return false;
        }
        putU64(os, kMagic);
        putU64(os, kBaselineModelVersion);
        putU64(os, key.size());
        os.write(key.data(),
                 static_cast<std::streamsize>(key.size()));
        putDouble(os, scale);

        putU64(os, result.execCycles);
        putDouble(os, result.execSeconds);
        putU64(os, result.epochs);
        putU64(os, result.controller.reads);
        putU64(os, result.controller.writes);
        putU64(os, result.controller.writeDrains);
        putU64(os, result.controller.victimRefreshEvents);
        putU64(os, result.controller.victimRowsRefreshed);
        putU64(os, result.controller.lastCompletion);
        putU64(os, result.scheme.activations);
        putU64(os, result.scheme.refreshEvents);
        putU64(os, result.scheme.victimRowsRefreshed);
        putU64(os, result.scheme.sramAccesses);
        putU64(os, result.scheme.prngBits);
        putU64(os, result.scheme.splits);
        putU64(os, result.scheme.merges);
        putU64(os, result.scheme.epochResets);
        putU64(os, result.scheme.counterDramReads);
        putU64(os, result.scheme.counterDramWrites);
        putU64(os, result.totalActivations);
        putU64(os, result.victimRowsRefreshed);

        putU64(os, result.bankStreams.size());
        for (const auto &stream : result.bankStreams) {
            putU64(os, stream.size());
            os.write(reinterpret_cast<const char *>(stream.data()),
                     static_cast<std::streamsize>(stream.size()
                                                  * sizeof(RowAddr)));
        }
        if (!os) {
            CATSIM_WARN("baseline cache: short write to ", tmp);
            os.close();
            std::filesystem::remove(tmp, ec);
            return false;
        }
    }
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        CATSIM_WARN("baseline cache: rename to ", path, " failed: ",
                    ec.message());
        std::filesystem::remove(tmp, ec);
        return false;
    }
    return true;
}

bool
loadBaseline(const std::string &path, const std::string &key,
             double scale, TimingResult *out)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return false;

    // Total size bounds every length field below, so a corrupt file
    // can never trigger a huge allocation.
    is.seekg(0, std::ios::end);
    const auto endPos = is.tellg();
    if (endPos < 0)
        return false;
    const std::uint64_t fileSize = static_cast<std::uint64_t>(endPos);
    is.seekg(0, std::ios::beg);

    std::uint64_t magic = 0, version = 0, keyLen = 0;
    if (!getU64(is, &magic) || magic != kMagic || !getU64(is, &version)
        || version != kBaselineModelVersion || !getU64(is, &keyLen)
        || keyLen > 4096)
        return false;
    std::string storedKey(keyLen, '\0');
    is.read(storedKey.data(), static_cast<std::streamsize>(keyLen));
    double storedScale = 0.0;
    if (!is || storedKey != key || !getDouble(is, &storedScale)
        || storedScale != scale)
        return false;

    TimingResult r;
    bool ok = getU64(is, &r.execCycles) && getDouble(is, &r.execSeconds)
              && getU64(is, &r.epochs) && getU64(is, &r.controller.reads)
              && getU64(is, &r.controller.writes)
              && getU64(is, &r.controller.writeDrains)
              && getU64(is, &r.controller.victimRefreshEvents)
              && getU64(is, &r.controller.victimRowsRefreshed)
              && getU64(is, &r.controller.lastCompletion)
              && getU64(is, &r.scheme.activations)
              && getU64(is, &r.scheme.refreshEvents)
              && getU64(is, &r.scheme.victimRowsRefreshed)
              && getU64(is, &r.scheme.sramAccesses)
              && getU64(is, &r.scheme.prngBits)
              && getU64(is, &r.scheme.splits)
              && getU64(is, &r.scheme.merges)
              && getU64(is, &r.scheme.epochResets)
              && getU64(is, &r.scheme.counterDramReads)
              && getU64(is, &r.scheme.counterDramWrites)
              && getU64(is, &r.totalActivations)
              && getU64(is, &r.victimRowsRefreshed);
    if (!ok)
        return false;

    std::uint64_t banks = 0;
    if (!getU64(is, &banks) || banks > 65536)
        return false;
    r.bankStreams.resize(banks);
    for (auto &stream : r.bankStreams) {
        std::uint64_t len = 0;
        if (!getU64(is, &len) || len > fileSize / sizeof(RowAddr))
            return false;
        stream.resize(len);
        is.read(reinterpret_cast<char *>(stream.data()),
                static_cast<std::streamsize>(len * sizeof(RowAddr)));
        if (!is)
            return false;
    }
    // Reject trailing garbage (e.g. a truncated-then-appended file).
    is.peek();
    if (!is.eof())
        return false;

    *out = std::move(r);
    return true;
}

} // namespace catsim
