/**
 * @file
 * On-disk persistence for baseline timing results.
 *
 * A baseline run is fully determined by (preset, workload, seed,
 * scale), so its TimingResult - including the recorded per-bank
 * activation streams that feed every replay - can be cached on disk
 * and reused across processes.  Repeated bench runs then skip the
 * timing baseline entirely (the dominant cost at small grids).
 *
 * The format is a versioned little-endian binary blob that embeds the
 * logical cache key and the experiment scale; any mismatch (stale
 * format, colliding file name, different scale) makes the load fail
 * and the caller recompute.  Files are written via a temp path plus
 * atomic rename so concurrent writers can never expose a torn file,
 * fsync'd (file, then containing directory) before/after the rename
 * so a crash can't leave a renamed-but-empty entry, and carry a CRC32
 * trailer so any torn or bit-flipped content is rejected at load time
 * instead of feeding corrupt streams into a figure.
 */

#ifndef CATSIM_SIM_BASELINE_IO_HPP
#define CATSIM_SIM_BASELINE_IO_HPP

#include <cstdint>
#include <string>

#include "sim/timing_sim.hpp"

namespace catsim
{

/**
 * Model fingerprint embedded in every cache file.  Bump this whenever
 * a semantic change (timing model, workload generation, recordsFor
 * heuristic, preset shapes...) invalidates previously recorded
 * activation streams, even if the file layout itself is unchanged;
 * stale files then miss and are recomputed instead of silently
 * feeding outdated streams into new figures.
 *
 * Version history: 1 = original layout; 2 = CRC32 trailer appended
 * (legacy files simply miss and are recomputed, matching the existing
 * stale-format policy).
 */
constexpr std::uint64_t kBaselineModelVersion = 2;

/**
 * File name (not path) for a baseline cache entry: a sanitized key
 * plus a hash so distinct keys can never alias one file.
 */
std::string baselineCacheFileName(const std::string &key, double scale);

/**
 * Serialize @p result to @p path.  Creates parent directories.
 * @return false (with a warning) on I/O failure - caching is best
 *         effort and never fatal.
 */
bool saveBaseline(const std::string &path, const std::string &key,
                  double scale, const TimingResult &result);

/**
 * Load a baseline from @p path into @p out.
 * @return true only if the file exists, parses, and matches @p key
 *         and @p scale exactly.
 */
bool loadBaseline(const std::string &path, const std::string &key,
                  double scale, TimingResult *out);

} // namespace catsim

#endif // CATSIM_SIM_BASELINE_IO_HPP
