/**
 * @file
 * On-disk persistence for baseline timing results.
 *
 * A baseline run is fully determined by (preset, workload, seed,
 * scale), so its TimingResult - including the recorded per-bank
 * activation streams that feed every replay - can be cached on disk
 * and reused across processes.  Repeated bench runs then skip the
 * timing baseline entirely (the dominant cost at small grids).
 *
 * The format is a versioned little-endian binary blob that embeds the
 * logical cache key and the experiment scale; any mismatch (stale
 * format, colliding file name, different scale) makes the load fail
 * and the caller recompute.  Files are written via a temp path plus
 * atomic rename so concurrent writers can never expose a torn file.
 */

#ifndef CATSIM_SIM_BASELINE_IO_HPP
#define CATSIM_SIM_BASELINE_IO_HPP

#include <cstdint>
#include <string>

#include "sim/timing_sim.hpp"

namespace catsim
{

/**
 * Model fingerprint embedded in every cache file.  Bump this whenever
 * a semantic change (timing model, workload generation, recordsFor
 * heuristic, preset shapes...) invalidates previously recorded
 * activation streams, even if the file layout itself is unchanged;
 * stale files then miss and are recomputed instead of silently
 * feeding outdated streams into new figures.
 */
constexpr std::uint64_t kBaselineModelVersion = 1;

/**
 * File name (not path) for a baseline cache entry: a sanitized key
 * plus a hash so distinct keys can never alias one file.
 */
std::string baselineCacheFileName(const std::string &key, double scale);

/**
 * Serialize @p result to @p path.  Creates parent directories.
 * @return false (with a warning) on I/O failure - caching is best
 *         effort and never fatal.
 */
bool saveBaseline(const std::string &path, const std::string &key,
                  double scale, const TimingResult &result);

/**
 * Load a baseline from @p path into @p out.
 * @return true only if the file exists, parses, and matches @p key
 *         and @p scale exactly.
 */
bool loadBaseline(const std::string &path, const std::string &key,
                  double scale, TimingResult *out);

} // namespace catsim

#endif // CATSIM_SIM_BASELINE_IO_HPP
