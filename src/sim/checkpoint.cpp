#include "checkpoint.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/checksum.hpp"
#include "common/durable_io.hpp"
#include "common/fault_injection.hpp"
#include "common/logging.hpp"

namespace catsim
{

namespace
{

constexpr std::uint64_t kJournalMagic = 0x43415453494D4A31ULL; // CATSIMJ1
constexpr std::uint64_t kJournalVersion = 1;
/** Sanity bounds so a corrupt length field can't drive allocation. */
constexpr std::uint64_t kMaxKeyLen = 1u << 20;
constexpr std::uint64_t kMaxBlobLen = 1u << 28;

void
appendU64(std::string *buf, std::uint64_t v)
{
    char raw[sizeof v];
    std::memcpy(raw, &v, sizeof v);
    buf->append(raw, sizeof v);
}

void
appendU32(std::string *buf, std::uint32_t v)
{
    char raw[sizeof v];
    std::memcpy(raw, &v, sizeof v);
    buf->append(raw, sizeof v);
}

/** Cursor over an in-memory file image. */
struct Cursor
{
    const std::string &data;
    std::size_t pos = 0;

    bool
    readU64(std::uint64_t *v)
    {
        if (data.size() - pos < sizeof *v)
            return false;
        std::memcpy(v, data.data() + pos, sizeof *v);
        pos += sizeof *v;
        return true;
    }

    bool
    readU32(std::uint32_t *v)
    {
        if (data.size() - pos < sizeof *v)
            return false;
        std::memcpy(v, data.data() + pos, sizeof *v);
        pos += sizeof *v;
        return true;
    }

    bool
    readBytes(std::string *out, std::uint64_t len)
    {
        if (data.size() - pos < len)
            return false;
        out->assign(data.data() + pos, len);
        pos += len;
        return true;
    }
};

std::uint64_t
fnv1a(const std::string &s)
{
    std::uint64_t h = 1469598103934665603ULL;
    for (unsigned char c : s) {
        h ^= c;
        h *= 1099511628211ULL;
    }
    return h;
}

/** Serialized header for @p runKey (magic..runKey plus CRC). */
std::string
makeHeader(const std::string &runKey)
{
    std::string h;
    appendU64(&h, kJournalMagic);
    appendU64(&h, kJournalVersion);
    appendU64(&h, runKey.size());
    h += runKey;
    appendU32(&h, crc32(h.data(), h.size()));
    return h;
}

/** Serialized record for (key, blob): lengths, bytes, CRC. */
std::string
makeRecord(const std::string &key, const std::string &blob)
{
    std::string r;
    appendU64(&r, key.size());
    appendU64(&r, blob.size());
    r += key;
    r += blob;
    appendU32(&r, crc32(r.data(), r.size()));
    return r;
}

} // namespace

std::string
checkpointDirFromEnv()
{
    const char *env = std::getenv("CATSIM_CHECKPOINT");
    return env ? env : "";
}

std::string
checkpointFileName(const std::string &runKey)
{
    char name[64];
    std::snprintf(name, sizeof name, "run-%016llx.catj",
                  static_cast<unsigned long long>(fnv1a(runKey)));
    return name;
}

CheckpointJournal::CheckpointJournal(const std::string &dir,
                                     const std::string &runKey)
{
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    path_ = (std::filesystem::path(dir) / checkpointFileName(runKey))
                .string();

    // Read the whole image up front: records are validated (and the
    // torn tail truncated) against in-memory bytes, never a stream
    // whose fail state conflates EOF with I/O error.
    std::string image;
    {
        std::ifstream is(path_, std::ios::binary);
        if (is) {
            std::ostringstream os;
            os << is.rdbuf();
            image = os.str();
        }
    }

    const std::string header = makeHeader(runKey);
    bool fresh = image.empty();
    if (!fresh
        && (image.size() < header.size()
            || std::memcmp(image.data(), header.data(), header.size())
                   != 0)) {
        CATSIM_WARN("checkpoint journal ", path_,
                    ": header mismatch (stale format or colliding run "
                    "key); starting fresh");
        fresh = true;
    }

    std::size_t validEnd = header.size();
    if (!fresh) {
        Cursor cur{image, header.size()};
        while (cur.pos < image.size()) {
            const std::size_t recordStart = cur.pos;
            if (fault::shouldFail("checkpoint_replay_short"))
                break; // models a read failing mid-replay
            std::uint64_t keyLen = 0, blobLen = 0;
            std::string key, blob;
            std::uint32_t storedCrc = 0;
            if (!cur.readU64(&keyLen) || !cur.readU64(&blobLen)
                || keyLen > kMaxKeyLen || blobLen > kMaxBlobLen
                || !cur.readBytes(&key, keyLen)
                || !cur.readBytes(&blob, blobLen)
                || !cur.readU32(&storedCrc)) {
                CATSIM_WARN("checkpoint journal ", path_,
                            ": torn record at offset ", recordStart,
                            "; truncating tail");
                break;
            }
            const std::uint32_t computed = crc32(
                image.data() + recordStart,
                cur.pos - recordStart - sizeof storedCrc);
            if (computed != storedCrc) {
                CATSIM_WARN("checkpoint journal ", path_,
                            ": CRC mismatch at offset ", recordStart,
                            "; truncating tail");
                break;
            }
            index_[key] = std::move(blob);
            ++replayed_;
            validEnd = cur.pos;
        }
    }

    if (fresh) {
        // (Re)write header + truncate everything else.
        std::ofstream os(path_, std::ios::binary | std::ios::trunc);
        if (!os || !os.write(header.data(),
                             static_cast<std::streamsize>(header.size())))
            CATSIM_WARN("checkpoint journal ", path_,
                        ": cannot write header; checkpointing will "
                        "fail loudly on first append");
        os.flush();
    } else if (validEnd < image.size()) {
        std::filesystem::resize_file(path_, validEnd, ec);
        if (ec)
            CATSIM_WARN("checkpoint journal ", path_,
                        ": cannot truncate torn tail: ", ec.message());
    }
    syncFile(path_);
    syncParentDir(path_);
}

bool
CheckpointJournal::lookup(const std::string &key,
                          std::string *blob) const
{
    const auto it = index_.find(key);
    if (it == index_.end())
        return false;
    *blob = it->second;
    return true;
}

void
CheckpointJournal::append(const std::string &key, const std::string &blob)
{
    const std::string record = makeRecord(key, blob);
    std::lock_guard<std::mutex> lock(appendMutex_);
    fault::maybeThrow("checkpoint_append_enospc");
    {
        std::ofstream os(path_, std::ios::binary | std::ios::app);
        if (!os)
            throw std::runtime_error("checkpoint journal " + path_
                                     + ": cannot open for append");
        if (fault::shouldFail("checkpoint_append_torn")) {
            // Model a crash mid-write: half the record reaches the
            // file, then the process "dies".  Replay must drop it.
            os.write(record.data(),
                     static_cast<std::streamsize>(record.size() / 2));
            os.flush();
            throw FaultInjected(
                "fail-point 'checkpoint_append_torn' fired");
        }
        os.write(record.data(),
                 static_cast<std::streamsize>(record.size()));
        os.flush();
        if (!os)
            throw std::runtime_error("checkpoint journal " + path_
                                     + ": short append");
    }
    // A record only counts as checkpointed once it is on the device;
    // otherwise a crash after "skip this cell next time" was decided
    // could lose the cell entirely.
    syncFile(path_);
    index_[key] = blob;
}

void
BlobWriter::putU64(std::uint64_t v)
{
    appendU64(&buf_, v);
}

void
BlobWriter::putDouble(double v)
{
    std::uint64_t bits;
    static_assert(sizeof bits == sizeof v, "double is 64-bit");
    std::memcpy(&bits, &v, sizeof bits);
    appendU64(&buf_, bits);
}

bool
BlobReader::getU64(std::uint64_t *v)
{
    if (buf_.size() - pos_ < sizeof *v)
        return false;
    std::memcpy(v, buf_.data() + pos_, sizeof *v);
    pos_ += sizeof *v;
    return true;
}

bool
BlobReader::getDouble(double *v)
{
    std::uint64_t bits = 0;
    if (!getU64(&bits))
        return false;
    std::memcpy(v, &bits, sizeof *v);
    return true;
}

} // namespace catsim
