#include "core_model.hpp"

#include <algorithm>
#include <cmath>

namespace catsim
{

CoreModel::CoreModel(CoreId id, const CoreParams &params,
                     std::unique_ptr<TraceStream> stream,
                     MemoryController &controller)
    : id_(id),
      params_(params),
      stream_(std::move(stream)),
      controller_(controller)
{
}

bool
CoreModel::step()
{
    TraceRecord rec;
    if (!stream_->next(rec)) {
        done_ = true;
        return false;
    }

    // Retire the compute gap at full width.
    time_ += static_cast<double>(rec.gap) / retirePerBusCycle();
    instructions_ += rec.gap + 1;
    ++memOps_;

    // Retire completed reads.
    const auto now = static_cast<Cycle>(time_);
    inflightReads_.erase(
        std::remove_if(inflightReads_.begin(), inflightReads_.end(),
                       [now](Cycle c) { return c <= now; }),
        inflightReads_.end());

    MemRequest req;
    req.addr = rec.addr;
    req.isWrite = rec.isWrite;
    req.core = id_;
    req.arrival = static_cast<Cycle>(std::ceil(time_));

    if (rec.isWrite) {
        const Cycle ack = controller_.submitWrite(req);
        if (static_cast<double>(ack) > time_)
            time_ = static_cast<double>(ack);
        return true;
    }

    // Reads: stall on the oldest outstanding read once the MLP window
    // is full (ROB head blocks retirement).
    if (inflightReads_.size() >= params_.mlp) {
        const auto oldest =
            *std::min_element(inflightReads_.begin(),
                              inflightReads_.end());
        if (static_cast<double>(oldest) > time_)
            time_ = static_cast<double>(oldest);
        inflightReads_.erase(std::find(inflightReads_.begin(),
                                       inflightReads_.end(), oldest));
        req.arrival = static_cast<Cycle>(std::ceil(time_));
    }

    const Cycle done = controller_.submitRead(req);
    inflightReads_.push_back(done);
    return true;
}

void
CoreModel::drain()
{
    for (const Cycle c : inflightReads_) {
        if (static_cast<double>(c) > time_)
            time_ = static_cast<double>(c);
    }
    inflightReads_.clear();
}

} // namespace catsim
