#include "event_engine.hpp"

#include "common/logging.hpp"

namespace catsim
{

ActorId
EventEngine::addActor(SimActor *actor, ActorRole role)
{
    const auto id = static_cast<ActorId>(actors_.size());
    actors_.push_back(actor);
    if (role == ActorRole::Source)
        ++liveSources_;
    return id;
}

void
EventEngine::schedule(ActorId id, SimTime at)
{
    Event e;
    e.time = at;
    e.actor = id;
    e.seq = nextSeq_++;
    queue_.push(e);
}

void
EventEngine::retire(ActorId id)
{
    (void)id;
    if (liveSources_ == 0)
        CATSIM_FATAL("retire() without a live source actor");
    --liveSources_;
}

void
EventEngine::run()
{
    while (liveSources_ > 0 && !queue_.empty()) {
        const Event e = queue_.top();
        queue_.pop();
        actors_[e.actor]->onEvent(e.time);
    }
}

EpochTimerActor::EpochTimerActor(EventEngine &engine,
                                 double epoch_cycles, Callback on_epoch)
    : engine_(engine),
      epochCycles_(epoch_cycles),
      next_(epoch_cycles),
      onEpoch_(std::move(on_epoch))
{
    if (epochCycles_ < 1.0)
        CATSIM_FATAL("epoch scale too small");
    id_ = engine_.addActor(this, EventEngine::ActorRole::Timer);
    engine_.schedule(id_, next_);
}

void
EpochTimerActor::onEvent(SimTime)
{
    onEpoch_();
    ++epochs_;
    next_ += epochCycles_;
    engine_.schedule(id_, next_);
}

void
appendEpochMarkers(std::vector<std::vector<RowAddr>> &streams)
{
    for (auto &s : streams)
        s.push_back(kEpochMarker);
}

} // namespace catsim
