#include "system_config.hpp"

#include <sstream>

#include "common/logging.hpp"

namespace catsim
{

const char *
systemPresetName(SystemPreset preset)
{
    switch (preset) {
      case SystemPreset::DualCore2Ch:
        return "dual2ch";
      case SystemPreset::QuadCore2Ch:
        return "quad2ch";
      case SystemPreset::QuadCore4Ch:
        return "quad4ch";
    }
    return "?";
}

SystemPreset
parseSystemPreset(const std::string &name)
{
    const std::string s = asciiLower(name);
    if (s == "dual2ch")
        return SystemPreset::DualCore2Ch;
    if (s == "quad2ch")
        return SystemPreset::QuadCore2Ch;
    if (s == "quad4ch")
        return SystemPreset::QuadCore4Ch;
    CATSIM_FATAL("system must be dual2ch|quad2ch|quad4ch, got '", name,
                 "'");
}

std::string
WorkloadSpec::label() const
{
    if (!isAttack)
        return name;
    std::ostringstream os;
    os << "attack-";
    // The Gaussian default is omitted so pre-existing labels (and the
    // on-disk baseline cache keys derived from them) stay unchanged.
    if (attackKernelKind != AttackKernelKind::Gaussian)
        os << attackKernelKindName(attackKernelKind) << '-';
    os << attackModeName(attackMode) << "-k" << attackKernel
       << "+" << name;
    return os.str();
}

SystemConfig
SystemConfig::parse(const Config &cfg)
{
    SystemConfig sys;
    sys.scheme = SchemeConfig::parse(cfg);
    sys.preset = parseSystemPreset(cfg.getString("system", "dual2ch"));

    WorkloadSpec &w = sys.workload;
    w.name = cfg.getString("workload", "black");
    w.seed = cfg.getUint("seed", 42);
    // `kernelkind=` is the historical simulate CLI spelling.
    w.attackKernelKind = parseAttackKernelKind(
        cfg.getString("kind", cfg.getString("kernelkind", "gaussian")));
    const std::string attack =
        asciiLower(cfg.getString("attack", "none"));
    if (attack != "none") {
        w.isAttack = true;
        w.attackKernel = cfg.getUint("kernel", 1);
        if (attack == "heavy")
            w.attackMode = AttackMode::Heavy;
        else if (attack == "medium")
            w.attackMode = AttackMode::Medium;
        else if (attack == "light")
            w.attackMode = AttackMode::Light;
        else
            CATSIM_FATAL("attack must be none|heavy|medium|light, got '",
                         attack, "'");
    }
    return sys;
}

std::string
SystemConfig::format() const
{
    const WorkloadSpec defw;
    std::ostringstream os;
    os << "system=" << systemPresetName(preset);
    // "black" is parse()'s default, so omitting it keeps the line
    // minimal while parse(format()) still round-trips; an empty name
    // only exists on never-parsed programmatic specs.
    if (!workload.name.empty() && workload.name != "black")
        os << " workload=" << workload.name;
    if (workload.seed != defw.seed)
        os << " seed=" << workload.seed;
    if (workload.isAttack) {
        os << " attack=" << asciiLower(attackModeName(workload.attackMode));
        if (workload.attackKernel != defw.attackKernel)
            os << " kernel=" << workload.attackKernel;
        if (workload.attackKernelKind != defw.attackKernelKind)
            os << " kind="
               << attackKernelKindName(workload.attackKernelKind);
    }
    os << ' ' << scheme.format();
    return os.str();
}

std::string
SystemConfig::label() const
{
    return scheme.label() + "@" + workload.label() + "/"
           + systemPresetName(preset);
}

} // namespace catsim
