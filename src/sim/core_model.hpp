/**
 * @file
 * Lightweight out-of-order core front end (USIMM-style; paper Table I:
 * 3.2 GHz, 128-entry ROB, fetch width 4, retire width 2, pipeline
 * depth 10).
 *
 * The model consumes trace records {gap, op, addr}.  Non-memory
 * instructions retire at the retire width; reads are issued to the
 * memory controller and the core may run ahead until its memory-level
 * parallelism window (derived from the ROB size divided by the typical
 * instruction gap) is full, at which point it stalls on the oldest
 * outstanding read.  Writes are posted and complete immediately unless
 * the controller exerts write-queue backpressure.
 */

#ifndef CATSIM_SIM_CORE_MODEL_HPP
#define CATSIM_SIM_CORE_MODEL_HPP

#include <memory>
#include <vector>

#include "common/types.hpp"
#include "controller/memory_controller.hpp"
#include "trace/trace.hpp"

namespace catsim
{

/** Core pipeline parameters (paper Table I). */
struct CoreParams
{
    std::uint32_t robSize = 128;
    std::uint32_t fetchWidth = 4;
    std::uint32_t retireWidth = 2;
    std::uint32_t pipelineDepth = 10;
    std::uint32_t cpuMult = 4;  //!< CPU cycles per bus cycle
    std::uint32_t mlp = 16;      //!< max outstanding reads
};

/** One simulated core driving a trace into the memory controller. */
class CoreModel
{
  public:
    CoreModel(CoreId id, const CoreParams &params,
              std::unique_ptr<TraceStream> stream,
              MemoryController &controller);

    /** Bus-cycle timestamp of the core's next action. */
    double time() const { return time_; }

    bool done() const { return done_; }

    /** Process one trace record; returns false when the trace ends. */
    bool step();

    /** Wait for all outstanding reads (end of simulation). */
    void drain();

    Count instructionsRetired() const { return instructions_; }
    Count memOps() const { return memOps_; }
    CoreId id() const { return id_; }

  private:
    /** Instructions retired per bus cycle at full speed. */
    double
    retirePerBusCycle() const
    {
        return static_cast<double>(params_.retireWidth)
               * static_cast<double>(params_.cpuMult);
    }

    CoreId id_;
    CoreParams params_;
    std::unique_ptr<TraceStream> stream_;
    MemoryController &controller_;
    double time_ = 0.0;
    bool done_ = false;
    std::vector<Cycle> inflightReads_;
    Count instructions_ = 0;
    Count memOps_ = 0;
};

} // namespace catsim

#endif // CATSIM_SIM_CORE_MODEL_HPP
