#include "rng.hpp"

#include <cmath>

namespace catsim
{

Xoshiro256StarStar::Xoshiro256StarStar(std::uint64_t seed)
{
    SplitMix64 sm(seed);
    for (auto &s : state_)
        s = sm.next();
}

std::uint64_t
Xoshiro256StarStar::next()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

double
Xoshiro256StarStar::nextDouble()
{
    // 53 high-quality mantissa bits.
    return (next() >> 11) * 0x1.0p-53;
}

std::uint64_t
Xoshiro256StarStar::nextBounded(std::uint64_t bound)
{
    if (bound == 0)
        return 0;
    // Lemire's nearly-divisionless bounded generation.
    __uint128_t m = static_cast<__uint128_t>(next()) * bound;
    std::uint64_t lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
        std::uint64_t threshold = (-bound) % bound;
        while (lo < threshold) {
            m = static_cast<__uint128_t>(next()) * bound;
            lo = static_cast<std::uint64_t>(m);
        }
    }
    return static_cast<std::uint64_t>(m >> 64);
}

double
Xoshiro256StarStar::nextGaussian()
{
    if (hasCachedGaussian_) {
        hasCachedGaussian_ = false;
        return cachedGaussian_;
    }
    double u1 = 0.0;
    do {
        u1 = nextDouble();
    } while (u1 <= 0.0);
    const double u2 = nextDouble();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cachedGaussian_ = r * std::sin(theta);
    hasCachedGaussian_ = true;
    return r * std::cos(theta);
}

} // namespace catsim
