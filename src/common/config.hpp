/**
 * @file
 * Lightweight key=value configuration with typed getters.
 *
 * Used by examples and bench binaries so experiments can be re-run with
 * different parameters without recompiling.  Parsing accepts
 * "key=value" tokens (command-line style) and simple config files with
 * one pair per line; '#' starts a comment.
 */

#ifndef CATSIM_COMMON_CONFIG_HPP
#define CATSIM_COMMON_CONFIG_HPP

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace catsim
{

/** String-keyed configuration dictionary. */
class Config
{
  public:
    Config() = default;

    /** Parse argv-style "key=value" tokens; unknown tokens are fatal. */
    static Config fromArgs(int argc, const char *const *argv);

    /** Parse a config file (one key=value per line, '#' comments). */
    static Config fromFile(const std::string &path);

    /** Parse a whitespace-separated "key=value ..." string (what
     *  SystemConfig::format emits; completes the round-trip). */
    static Config fromString(const std::string &text);

    void set(const std::string &key, const std::string &value);
    bool has(const std::string &key) const;

    std::string getString(const std::string &key,
                          const std::string &def) const;
    std::int64_t getInt(const std::string &key, std::int64_t def) const;
    std::uint64_t getUint(const std::string &key, std::uint64_t def) const;
    double getDouble(const std::string &key, double def) const;
    bool getBool(const std::string &key, bool def) const;

    /** All keys, sorted (for reproducibility logging). */
    std::vector<std::string> keys() const;

  private:
    std::map<std::string, std::string> values_;
};

/**
 * Global experiment scale factor from the CATSIM_SCALE environment
 * variable (default 1.0).  Bench binaries multiply their access budgets
 * by this so CI smoke runs and long faithful runs share one code path.
 */
double experimentScale();

/** ASCII-lowercased copy, for the case-insensitive name parsers. */
std::string asciiLower(std::string s);

} // namespace catsim

#endif // CATSIM_COMMON_CONFIG_HPP
