/**
 * @file
 * gem5-style status and error reporting helpers.
 *
 * panic() is for internal invariant violations (simulator bugs) and
 * aborts; fatal() is for user errors (bad configuration) and exits with
 * status 1; warn()/inform() report conditions without stopping.
 */

#ifndef CATSIM_COMMON_LOGGING_HPP
#define CATSIM_COMMON_LOGGING_HPP

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace catsim
{

namespace detail
{

/** Stream a parameter pack into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

} // namespace detail

/** Abort on a simulator bug.  Never returns. */
#define CATSIM_PANIC(...) \
    ::catsim::detail::panicImpl(__FILE__, __LINE__, \
                                ::catsim::detail::concat(__VA_ARGS__))

/** Exit(1) on a user/configuration error.  Never returns. */
#define CATSIM_FATAL(...) \
    ::catsim::detail::fatalImpl(__FILE__, __LINE__, \
                                ::catsim::detail::concat(__VA_ARGS__))

/** Report a suspicious-but-survivable condition. */
#define CATSIM_WARN(...) \
    ::catsim::detail::warnImpl(::catsim::detail::concat(__VA_ARGS__))

/** Report normal operating status. */
#define CATSIM_INFORM(...) \
    ::catsim::detail::informImpl(::catsim::detail::concat(__VA_ARGS__))

} // namespace catsim

#endif // CATSIM_COMMON_LOGGING_HPP
