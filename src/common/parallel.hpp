/**
 * @file
 * Work-stealing thread pool and parallel-for used by the sweep and
 * shard engines.
 *
 * The pool keeps one deque per worker.  submit() places jobs on the
 * workers' deques round-robin by submission index; a worker pops its
 * own deque LIFO (newest first, cache-warm) and, when its deque is
 * empty, steals the OLDEST job from another worker's deque (FIFO
 * steal, scanning victims round-robin from its own index).  Stealing
 * is what keeps unevenly-loaded fleets busy: when one shard of a
 * sharded simulation runs hot (attacked banks), the workers that
 * drained their own shards pull the hot worker's queued jobs instead
 * of idling.  Jobs are coarse (milliseconds to seconds of simulation),
 * so the deques hang off one pool mutex - the win is the *scheduling
 * policy* (no worker idles while any deque holds work), not lock-free
 * queue throughput.
 *
 * The job count defaults to the CATSIM_JOBS environment variable
 * (hardware concurrency when unset); jobs == 1 degenerates to inline
 * execution on the calling thread so the serial path needs no special
 * casing.  With CATSIM_NUMA_PIN=1 each worker pins itself round-robin
 * across the host's NUMA nodes (Linux; a no-op elsewhere), so
 * shard-per-worker runs keep their arenas node-local.
 *
 * Determinism contract: scheduling (placement, stealing, pinning)
 * decides only WHERE and WHEN a job runs, never what it computes.
 * Callers index results by job id (e.g. grid cell or shard id), never
 * by completion order, and each job is a pure function of its spec, so
 * any job count - and any steal schedule - produces bit-identical
 * output.  Errors are deterministic too: wait() rethrows the failure
 * of the LOWEST submission index (see below), not the first to finish.
 */

#ifndef CATSIM_COMMON_PARALLEL_HPP
#define CATSIM_COMMON_PARALLEL_HPP

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace catsim
{

/**
 * Job count from the CATSIM_JOBS environment variable; hardware
 * concurrency (at least 1) when unset or unparsable.
 */
std::size_t defaultJobs();

/** True when CATSIM_NUMA_PIN=1 requests worker pinning. */
bool numaPinEnabled();

/**
 * Fixed-size worker pool with per-worker deques and work stealing
 * (LIFO local pop, FIFO cross-worker steal).
 */
class ThreadPool
{
  public:
    /** @param jobs Worker count; 0 and 1 both mean "run inline". */
    explicit ThreadPool(std::size_t jobs = defaultJobs());

    /** Drains outstanding work, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Worker count (1 when running inline). */
    std::size_t jobs() const { return jobs_; }

    /**
     * Enqueue one job on the deque of worker (submission index mod
     * jobs).  With jobs() == 1 the job runs immediately on the calling
     * thread.  Jobs must not submit further jobs.
     */
    void submit(std::function<void()> job);

    /**
     * Block until every submitted job has finished.  If any jobs
     * threw, rethrows the error of the job with the LOWEST submission
     * index (the rest are dropped), wrapped as a std::runtime_error
     * whose message is prefixed with "task N:" - so the reported
     * failure is deterministic across thread schedules (and steal
     * schedules) whenever the set of failing jobs is.  Non-std
     * exceptions propagate unwrapped.
     */
    void wait();

    /**
     * Jobs executed by a worker other than the one they were placed
     * on (i.e. successful steals) since construction.  Scheduling
     * telemetry only - the result of a run never depends on it.
     */
    std::uint64_t steals() const
    {
        return steals_.load(std::memory_order_relaxed);
    }

  private:
    void workerLoop(std::size_t self);
    void recordException(std::size_t seq);
    /** Pop a runnable job for worker @p self; false when none exist.
     *  Caller holds mutex_. */
    bool takeJob(std::size_t self,
                 std::pair<std::size_t, std::function<void()>> *out,
                 bool *stolen);

    std::size_t jobs_;
    std::vector<std::thread> workers_;
    /** One deque per worker: owner pops back (LIFO), thieves pop
     *  front (FIFO).  All guarded by mutex_ - see the file comment. */
    std::vector<std::deque<std::pair<std::size_t, std::function<void()>>>>
        queues_;
    std::mutex mutex_;
    std::condition_variable workReady_;
    std::condition_variable allDone_;
    std::size_t inFlight_ = 0;
    std::size_t submitSeq_ = 0;
    bool stopping_ = false;
    std::exception_ptr firstError_;
    std::size_t firstErrorSeq_ = 0;
    std::atomic<std::uint64_t> steals_{0};
};

/**
 * Run fn(0) .. fn(n - 1) across @p jobs workers and block until all
 * complete.  Indices are handed out dynamically, so per-index work may
 * be uneven; with jobs <= 1 the calls happen in index order on the
 * calling thread.  If calls threw, rethrows the error of the lowest
 * failing index as a std::runtime_error prefixed with "cell N:" (among
 * the cells that actually ran before the grid was poisoned), so the
 * surfaced failure names a cell rather than a thread.  Non-std
 * exceptions propagate unwrapped.
 */
void parallelFor(std::size_t n, const std::function<void(std::size_t)> &fn,
                 std::size_t jobs = defaultJobs());

} // namespace catsim

#endif // CATSIM_COMMON_PARALLEL_HPP
