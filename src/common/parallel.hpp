/**
 * @file
 * Minimal thread pool and parallel-for used by the sweep engine.
 *
 * Sweeps over (workload x scheme x config) grids are embarrassingly
 * parallel, so a plain mutex-protected job queue is enough - no work
 * stealing, no futures-per-task.  The job count defaults to the
 * CATSIM_JOBS environment variable (hardware concurrency when unset);
 * jobs == 1 degenerates to inline execution on the calling thread so
 * the serial path needs no special casing.
 *
 * Determinism contract: callers index results by job id (e.g. grid
 * cell), never by completion order, so any job count produces
 * bit-identical output.
 */

#ifndef CATSIM_COMMON_PARALLEL_HPP
#define CATSIM_COMMON_PARALLEL_HPP

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace catsim
{

/**
 * Job count from the CATSIM_JOBS environment variable; hardware
 * concurrency (at least 1) when unset or unparsable.
 */
std::size_t defaultJobs();

/** Fixed-size worker pool draining a FIFO job queue. */
class ThreadPool
{
  public:
    /** @param jobs Worker count; 0 and 1 both mean "run inline". */
    explicit ThreadPool(std::size_t jobs = defaultJobs());

    /** Drains outstanding work, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Worker count (1 when running inline). */
    std::size_t jobs() const { return jobs_; }

    /**
     * Enqueue one job.  With jobs() == 1 the job runs immediately on
     * the calling thread.  Jobs must not submit further jobs.
     */
    void submit(std::function<void()> job);

    /**
     * Block until every submitted job has finished.  If any jobs
     * threw, rethrows the error of the job with the LOWEST submission
     * index (the rest are dropped), wrapped as a std::runtime_error
     * whose message is prefixed with "task N:" - so the reported
     * failure is deterministic across thread schedules whenever the
     * set of failing jobs is.  Non-std exceptions propagate unwrapped.
     */
    void wait();

  private:
    void workerLoop();
    void recordException(std::size_t seq);

    std::size_t jobs_;
    std::vector<std::thread> workers_;
    std::deque<std::pair<std::size_t, std::function<void()>>> queue_;
    std::mutex mutex_;
    std::condition_variable workReady_;
    std::condition_variable allDone_;
    std::size_t inFlight_ = 0;
    std::size_t submitSeq_ = 0;
    bool stopping_ = false;
    std::exception_ptr firstError_;
    std::size_t firstErrorSeq_ = 0;
};

/**
 * Run fn(0) .. fn(n - 1) across @p jobs workers and block until all
 * complete.  Indices are handed out dynamically, so per-index work may
 * be uneven; with jobs <= 1 the calls happen in index order on the
 * calling thread.  If calls threw, rethrows the error of the lowest
 * failing index as a std::runtime_error prefixed with "cell N:" (among
 * the cells that actually ran before the grid was poisoned), so the
 * surfaced failure names a cell rather than a thread.  Non-std
 * exceptions propagate unwrapped.
 */
void parallelFor(std::size_t n, const std::function<void(std::size_t)> &fn,
                 std::size_t jobs = defaultJobs());

} // namespace catsim

#endif // CATSIM_COMMON_PARALLEL_HPP
