#include "durable_io.hpp"

#include <filesystem>

#ifndef _WIN32
#include <fcntl.h>
#include <unistd.h>
#endif

namespace catsim
{

namespace
{

#ifndef _WIN32
bool
fsyncPath(const char *path, int flags)
{
    const int fd = ::open(path, flags);
    if (fd < 0)
        return false;
    const bool ok = ::fsync(fd) == 0;
    ::close(fd);
    return ok;
}
#endif

} // namespace

bool
syncFile(const std::string &path)
{
#ifdef _WIN32
    (void)path;
    return false;
#else
    return fsyncPath(path.c_str(), O_RDONLY);
#endif
}

bool
syncParentDir(const std::string &path)
{
#ifdef _WIN32
    (void)path;
    return false;
#else
    std::filesystem::path p(path);
    const std::filesystem::path dir =
        p.has_parent_path() ? p.parent_path() : ".";
    return fsyncPath(dir.string().c_str(), O_RDONLY | O_DIRECTORY);
#endif
}

} // namespace catsim
