/**
 * @file
 * Aligned ASCII table printer used by the bench binaries to emit the
 * paper's tables and figure series in a readable, diff-friendly form.
 */

#ifndef CATSIM_COMMON_TABLE_HPP
#define CATSIM_COMMON_TABLE_HPP

#include <ostream>
#include <string>
#include <vector>

namespace catsim
{

/**
 * Column-aligned text table.  Cells are strings; helpers format numbers
 * with fixed precision or scientific notation.
 */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> header);

    /** Append a full row (must match header width). */
    void addRow(std::vector<std::string> row);

    /** Render with per-column padding to the stream. */
    void print(std::ostream &os) const;

    /** Format helpers. */
    static std::string fixed(double v, int precision = 2);
    static std::string sci(double v, int precision = 2);
    static std::string pct(double v, int precision = 2);
    static std::string num(std::uint64_t v);

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace catsim

#endif // CATSIM_COMMON_TABLE_HPP
