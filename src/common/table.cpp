#include "table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "logging.hpp"

namespace catsim
{

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header))
{
}

void
TextTable::addRow(std::vector<std::string> row)
{
    if (row.size() != header_.size())
        CATSIM_PANIC("table row width ", row.size(), " != header width ",
                     header_.size());
    rows_.push_back(std::move(row));
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(widths[c]) + 2)
               << row[c];
        }
        os << '\n';
    };

    emit(header_);
    std::string rule;
    for (std::size_t c = 0; c < header_.size(); ++c)
        rule += std::string(widths[c], '-') + "  ";
    os << rule << '\n';
    for (const auto &row : rows_)
        emit(row);
}

std::string
TextTable::fixed(double v, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

std::string
TextTable::sci(double v, int precision)
{
    std::ostringstream os;
    os << std::scientific << std::setprecision(precision) << v;
    return os.str();
}

std::string
TextTable::pct(double v, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << (v * 100.0) << '%';
    return os.str();
}

std::string
TextTable::num(std::uint64_t v)
{
    return std::to_string(v);
}

} // namespace catsim
