/**
 * @file
 * Small statistics accumulators used throughout the simulator.
 */

#ifndef CATSIM_COMMON_STATS_HPP
#define CATSIM_COMMON_STATS_HPP

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace catsim
{

/**
 * Welford online mean/variance accumulator.
 */
class RunningStat
{
  public:
    /** Add one observation. */
    void
    add(double x)
    {
        ++n_;
        const double delta = x - mean_;
        mean_ += delta / static_cast<double>(n_);
        m2_ += delta * (x - mean_);
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
        sum_ += x;
    }

    std::uint64_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    double sum() const { return sum_; }

    /** Sample variance (n-1 denominator). */
    double
    variance() const
    {
        return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
    }

    double stddev() const { return std::sqrt(variance()); }
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }

    void
    reset()
    {
        *this = RunningStat();
    }

  private:
    std::uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * Fixed-bucket histogram over [lo, hi); out-of-range samples clamp to
 * the first/last bucket.
 */
class Histogram
{
  public:
    Histogram(double lo, double hi, std::size_t buckets)
        : lo_(lo), hi_(hi), counts_(buckets, 0)
    {
    }

    void
    add(double x)
    {
        const double span = hi_ - lo_;
        long idx = static_cast<long>((x - lo_) / span
                                     * static_cast<double>(counts_.size()));
        idx = std::clamp<long>(idx, 0,
                               static_cast<long>(counts_.size()) - 1);
        ++counts_[static_cast<std::size_t>(idx)];
        ++total_;
    }

    std::uint64_t bucket(std::size_t i) const { return counts_.at(i); }
    std::size_t buckets() const { return counts_.size(); }
    std::uint64_t total() const { return total_; }
    double bucketLow(std::size_t i) const
    {
        return lo_ + (hi_ - lo_) * static_cast<double>(i)
               / static_cast<double>(counts_.size());
    }

  private:
    double lo_;
    double hi_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
};

/**
 * Geometric mean accumulator (used for workload-suite summaries).
 */
class GeoMean
{
  public:
    void
    add(double x)
    {
        if (x > 0.0) {
            logSum_ += std::log(x);
            ++n_;
        }
    }

    double
    value() const
    {
        return n_ ? std::exp(logSum_ / static_cast<double>(n_)) : 0.0;
    }

  private:
    double logSum_ = 0.0;
    std::uint64_t n_ = 0;
};

} // namespace catsim

#endif // CATSIM_COMMON_STATS_HPP
