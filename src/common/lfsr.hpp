/**
 * @file
 * Galois linear-feedback shift registers.
 *
 * The paper's Monte-Carlo study (Section III-A) shows that replacing
 * PRA's true random number generator with a cheap LFSR-based PRNG
 * "largely increases PRA's unsurvivability" because consecutive outputs
 * are strongly correlated.  This class models such a generator: maximal-
 * length taps for common widths, bit-serial shifting, and an n-bit word
 * extraction that mirrors how a hardware PRA implementation would sample
 * the register.
 */

#ifndef CATSIM_COMMON_LFSR_HPP
#define CATSIM_COMMON_LFSR_HPP

#include <cstdint>

namespace catsim
{

/**
 * Maximal-length Galois LFSR with configurable width (2..64 bits).
 */
class Lfsr
{
  public:
    /**
     * @param width Register width in bits; a maximal-length tap mask is
     *              selected from a built-in table.
     * @param seed  Initial register contents (must be non-zero after
     *              masking; 0 is replaced with 1).
     */
    explicit Lfsr(unsigned width = 16, std::uint64_t seed = 0xACE1u);

    /** Shift once; returns the output (bit 0 before shifting). */
    unsigned shiftBit();

    /** Extract an n-bit word by shifting n times (bit-serial hardware). */
    std::uint64_t nextBits(unsigned n);

    /**
     * Pseudo-uniform double in [0,1) built from `width` fresh bits.
     * Quality is deliberately poor for small widths - that is the point.
     */
    double nextDouble();

    /** Current register value (for tests). */
    std::uint64_t state() const { return state_; }

    /** Sequence period for a maximal LFSR of this width: 2^width - 1. */
    std::uint64_t period() const;

    unsigned width() const { return width_; }

  private:
    unsigned width_;
    std::uint64_t mask_;
    std::uint64_t taps_;
    std::uint64_t state_;
};

} // namespace catsim

#endif // CATSIM_COMMON_LFSR_HPP
