/**
 * @file
 * Branch-free integer bit tricks shared by the hot-path index math.
 *
 * The CAT structures lean on power-of-two arithmetic everywhere (row
 * spans, jump-table prefixes, packed child slots), so the same handful
 * of log2/ctz helpers kept reappearing as file-local lambdas.  They
 * live here once, in the constexpr table-driven style of the classic
 * integer-log bit hacks (a 256-entry byte table resolves the top set
 * bit after three shift probes) so Debug builds do not pay a loop per
 * lookup either.
 */

#ifndef CATSIM_COMMON_BIT_HPP
#define CATSIM_COMMON_BIT_HPP

#include <cstdint>

namespace catsim
{

/** True for powers of two; false for zero. */
constexpr bool
isPow2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

namespace detail
{

/** log2 of the top set bit per byte value (log2Byte[0] unused). */
struct Log2ByteTable
{
    std::uint8_t entry[256] = {};

    constexpr Log2ByteTable()
    {
        // entry[v] = floor(log2(v)): each power-of-two block of byte
        // values shares one result, filled without a nested loop so
        // the table stays constexpr-friendly under C++17.
        for (unsigned v = 1; v < 256; ++v) {
            unsigned l = 0;
            for (unsigned probe = v; probe > 1; probe >>= 1)
                ++l;
            entry[v] = static_cast<std::uint8_t>(l);
        }
    }
};

constexpr Log2ByteTable kLog2Byte{};

} // namespace detail

/** floor(log2(v)); 0 for v == 0. */
constexpr std::uint32_t
floorLog2(std::uint64_t v)
{
    // Table-driven integer log: narrow to the top non-zero byte with
    // three branch probes, then one table load finishes the job.
    std::uint32_t shift = 0;
    if (v >> 32) {
        v >>= 32;
        shift += 32;
    }
    if (v >> 16) {
        v >>= 16;
        shift += 16;
    }
    if (v >> 8) {
        v >>= 8;
        shift += 8;
    }
    return shift + detail::kLog2Byte.entry[v & 0xFF];
}

/** ceil(log2(v)); 0 for v <= 1. */
constexpr std::uint32_t
ceilLog2(std::uint64_t v)
{
    return v <= 1 ? 0 : floorLog2(v - 1) + 1;
}

/** Index of the lowest set bit; undefined for v == 0. */
inline std::uint32_t
ctz64(std::uint64_t v)
{
#if defined(__GNUC__) || defined(__clang__)
    return static_cast<std::uint32_t>(__builtin_ctzll(v));
#else
    std::uint32_t n = 0;
    while (!(v & 1)) {
        v >>= 1;
        ++n;
    }
    return n;
#endif
}

} // namespace catsim

#endif // CATSIM_COMMON_BIT_HPP
