#include "config.hpp"

#include <cctype>
#include <cstdlib>
#include <fstream>

#include "logging.hpp"

namespace catsim
{

namespace
{

std::pair<std::string, std::string>
splitPair(const std::string &token)
{
    const auto eq = token.find('=');
    if (eq == std::string::npos)
        CATSIM_FATAL("config token '", token, "' is not key=value");
    return {token.substr(0, eq), token.substr(eq + 1)};
}

std::string
trim(const std::string &s)
{
    const auto b = s.find_first_not_of(" \t\r\n");
    if (b == std::string::npos)
        return "";
    const auto e = s.find_last_not_of(" \t\r\n");
    return s.substr(b, e - b + 1);
}

} // namespace

Config
Config::fromArgs(int argc, const char *const *argv)
{
    Config cfg;
    for (int i = 1; i < argc; ++i) {
        auto [k, v] = splitPair(argv[i]);
        cfg.set(k, v);
    }
    return cfg;
}

Config
Config::fromString(const std::string &text)
{
    Config cfg;
    std::size_t pos = 0;
    while (pos < text.size()) {
        const std::size_t end = text.find_first_of(" \t\r\n", pos);
        const std::string token =
            text.substr(pos, end == std::string::npos ? std::string::npos
                                                      : end - pos);
        pos = end == std::string::npos ? text.size() : end + 1;
        if (token.empty())
            continue;
        auto [k, v] = splitPair(token);
        cfg.set(k, v);
    }
    return cfg;
}

Config
Config::fromFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        CATSIM_FATAL("cannot open config file '", path, "'");
    Config cfg;
    std::string line;
    while (std::getline(in, line)) {
        const auto hash = line.find('#');
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        line = trim(line);
        if (line.empty())
            continue;
        auto [k, v] = splitPair(line);
        cfg.set(trim(k), trim(v));
    }
    return cfg;
}

void
Config::set(const std::string &key, const std::string &value)
{
    values_[key] = value;
}

bool
Config::has(const std::string &key) const
{
    return values_.count(key) != 0;
}

std::string
Config::getString(const std::string &key, const std::string &def) const
{
    const auto it = values_.find(key);
    return it == values_.end() ? def : it->second;
}

std::int64_t
Config::getInt(const std::string &key, std::int64_t def) const
{
    const auto it = values_.find(key);
    if (it == values_.end())
        return def;
    try {
        return std::stoll(it->second);
    } catch (...) {
        CATSIM_FATAL("config key '", key, "' value '", it->second,
                     "' is not an integer");
    }
}

std::uint64_t
Config::getUint(const std::string &key, std::uint64_t def) const
{
    const auto v = getInt(key, static_cast<std::int64_t>(def));
    if (v < 0)
        CATSIM_FATAL("config key '", key, "' must be non-negative");
    return static_cast<std::uint64_t>(v);
}

double
Config::getDouble(const std::string &key, double def) const
{
    const auto it = values_.find(key);
    if (it == values_.end())
        return def;
    try {
        return std::stod(it->second);
    } catch (...) {
        CATSIM_FATAL("config key '", key, "' value '", it->second,
                     "' is not a number");
    }
}

bool
Config::getBool(const std::string &key, bool def) const
{
    const auto it = values_.find(key);
    if (it == values_.end())
        return def;
    const std::string &v = it->second;
    if (v == "1" || v == "true" || v == "yes" || v == "on")
        return true;
    if (v == "0" || v == "false" || v == "no" || v == "off")
        return false;
    CATSIM_FATAL("config key '", key, "' value '", v, "' is not boolean");
}

std::vector<std::string>
Config::keys() const
{
    std::vector<std::string> out;
    out.reserve(values_.size());
    for (const auto &[k, v] : values_)
        out.push_back(k);
    return out;
}

double
experimentScale()
{
    const char *env = std::getenv("CATSIM_SCALE");
    if (!env)
        return 1.0;
    try {
        const double s = std::stod(env);
        return s > 0.0 ? s : 1.0;
    } catch (...) {
        return 1.0;
    }
}

std::string
asciiLower(std::string s)
{
    for (char &c : s)
        c = static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    return s;
}

} // namespace catsim
