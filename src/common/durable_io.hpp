/**
 * @file
 * Durability helpers for the temp-write + atomic-rename idiom.
 *
 * std::ofstream flushes to the OS page cache, not to the device: a
 * power loss or SIGKILL between rename and writeback can leave a
 * zero-length or torn file at the final path even though the rename
 * itself is atomic.  Writers of cache/journal files therefore fsync
 * the data file before renaming it into place, and fsync the
 * containing directory afterwards so the rename itself is durable.
 *
 * Both helpers are best-effort: on platforms without fsync semantics
 * (or on filesystems that reject directory fsync) they return false
 * and the caller carries on - durability narrows to the page cache,
 * which is still no worse than the pre-helper behaviour.
 */

#ifndef CATSIM_COMMON_DURABLE_IO_HPP
#define CATSIM_COMMON_DURABLE_IO_HPP

#include <string>

namespace catsim
{

/** fsync the file at @p path (opens it read-only to get an fd). */
bool syncFile(const std::string &path);

/** fsync the directory containing @p path (durability of renames). */
bool syncParentDir(const std::string &path);

} // namespace catsim

#endif // CATSIM_COMMON_DURABLE_IO_HPP
