/**
 * @file
 * CRC32 (IEEE 802.3 reflected polynomial) for on-disk integrity.
 *
 * Every binary artifact the simulator persists (baseline cache files,
 * checkpoint journals) carries a CRC32 so a torn write, truncated
 * tail, or bit flip is detected at load time instead of silently
 * feeding corrupt state into a figure.  The streaming Crc32 class
 * lets writers fold in data as they serialize; crc32() is the oneshot
 * convenience for buffers already in memory.
 */

#ifndef CATSIM_COMMON_CHECKSUM_HPP
#define CATSIM_COMMON_CHECKSUM_HPP

#include <cstddef>
#include <cstdint>

namespace catsim
{

/** Streaming CRC32 accumulator (IEEE, reflected, init/final 0xFFFFFFFF). */
class Crc32
{
  public:
    /** Fold @p len bytes at @p data into the running checksum. */
    void update(const void *data, std::size_t len);

    /** Finalized checksum of everything updated so far. */
    std::uint32_t value() const { return state_ ^ 0xFFFFFFFFu; }

    /** Reset to the empty-input state. */
    void reset() { state_ = 0xFFFFFFFFu; }

  private:
    std::uint32_t state_ = 0xFFFFFFFFu;
};

/** CRC32 of one contiguous buffer. */
std::uint32_t crc32(const void *data, std::size_t len);

} // namespace catsim

#endif // CATSIM_COMMON_CHECKSUM_HPP
