#include "zipf.hpp"

#include <cmath>

#include "logging.hpp"

namespace catsim
{

ZipfSampler::ZipfSampler(std::uint64_t n, double theta)
    : n_(n), theta_(theta)
{
    if (n == 0)
        CATSIM_FATAL("ZipfSampler requires n > 0");
    if (theta < 0.0)
        CATSIM_FATAL("ZipfSampler requires theta >= 0, got ", theta);

    // Rejection-inversion bookkeeping (Hormann & Derflinger).
    hImaxInv_ = h(static_cast<double>(n_) + 0.5);
    hX0_ = h(1.5) - 1.0;
    s_ = 2.0 - hInverse(h(2.5) - std::pow(2.0, -theta_));
}

double
ZipfSampler::h(double x) const
{
    // Integral of x^-theta; the theta==1 case uses log.
    if (theta_ == 1.0)
        return std::log(x);
    return (std::pow(x, 1.0 - theta_) - 1.0) / (1.0 - theta_);
}

double
ZipfSampler::hInverse(double x) const
{
    if (theta_ == 1.0)
        return std::exp(x);
    return std::pow(1.0 + x * (1.0 - theta_), 1.0 / (1.0 - theta_));
}

std::uint64_t
ZipfSampler::sample(Xoshiro256StarStar &rng) const
{
    if (theta_ == 0.0)
        return rng.nextBounded(n_);

    while (true) {
        const double u = hImaxInv_ + rng.nextDouble() * (hX0_ - hImaxInv_);
        const double x = hInverse(u);
        std::uint64_t k = static_cast<std::uint64_t>(x + 0.5);
        if (k < 1)
            k = 1;
        if (k > n_)
            k = n_;
        const double kd = static_cast<double>(k);
        if (kd - x <= s_ || u >= h(kd + 0.5) - std::pow(kd, -theta_))
            return k - 1;
    }
}

} // namespace catsim
