/**
 * @file
 * Pseudo-random number generation.
 *
 * Two families are provided:
 *  - Xoshiro256StarStar: a fast, high-quality generator used to model the
 *    "true" PRNG that the paper assumes for PRA's reliability analysis
 *    (Srinivasan et al., VLSIC 2010) and to drive workload synthesis.
 *  - Lfsr (see lfsr.hpp): a cheap Fibonacci LFSR whose correlated output
 *    degrades PRA reliability, reproducing the paper's Monte-Carlo
 *    observation in Section III-A.
 */

#ifndef CATSIM_COMMON_RNG_HPP
#define CATSIM_COMMON_RNG_HPP

#include <array>
#include <cstdint>

namespace catsim
{

/**
 * SplitMix64 stepper, used for seeding and as a tiny standalone PRNG.
 */
class SplitMix64
{
  public:
    explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

    /** Advance and return the next 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

  private:
    std::uint64_t state_;
};

/**
 * xoshiro256** by Blackman & Vigna: the simulator's reference
 * high-quality PRNG.  Deterministic given a seed, so every experiment in
 * the repository is reproducible.
 */
class Xoshiro256StarStar
{
  public:
    using result_type = std::uint64_t;

    explicit Xoshiro256StarStar(std::uint64_t seed = 0x1234567895555555ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** UniformRandomBitGenerator interface. */
    std::uint64_t operator()() { return next(); }
    static constexpr std::uint64_t min() { return 0; }
    static constexpr std::uint64_t max() { return ~0ULL; }

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Uniform integer in [0, bound) using Lemire's method. */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** Bernoulli trial with probability p. */
    bool nextBernoulli(double p) { return nextDouble() < p; }

    /** Standard normal via Box-Muller (cached second variate). */
    double nextGaussian();

  private:
    static std::uint64_t rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::array<std::uint64_t, 4> state_;
    bool hasCachedGaussian_ = false;
    double cachedGaussian_ = 0.0;
};

} // namespace catsim

#endif // CATSIM_COMMON_RNG_HPP
