#include "fault_injection.hpp"

#include <cstdlib>
#include <map>
#include <mutex>
#include <set>
#include <sstream>

#include "common/logging.hpp"

namespace catsim
{

namespace fault
{

namespace detail
{

std::atomic<bool> gArmed{false};

namespace
{

struct Site
{
    std::set<std::uint64_t> armedHits; //!< 1-based hit indices
    bool every = false;                //!< "site@*"
    std::uint64_t hits = 0;
};

struct Registry
{
    std::mutex mutex;
    std::map<std::string, Site> sites;
};

Registry &
registry()
{
    static Registry r;
    return r;
}

/** Parse "site@nth[,site@nth...]" into the registry (caller locks). */
void
parseInto(Registry &r, const std::string &spec)
{
    r.sites.clear();
    std::istringstream is(spec);
    std::string item;
    while (std::getline(is, item, ',')) {
        if (item.empty())
            continue;
        const auto at = item.find('@');
        if (at == std::string::npos || at == 0) {
            CATSIM_WARN("fault injection: ignoring malformed "
                        "fail-point '", item, "' (want site@nth)");
            continue;
        }
        const std::string site = item.substr(0, at);
        const std::string nth = item.substr(at + 1);
        if (nth == "*") {
            r.sites[site].every = true;
            continue;
        }
        char *end = nullptr;
        const unsigned long long v =
            std::strtoull(nth.c_str(), &end, 10);
        if (end == nth.c_str() || *end != '\0' || v == 0) {
            CATSIM_WARN("fault injection: ignoring fail-point '", item,
                        "' (nth must be a positive integer or *)");
            continue;
        }
        r.sites[site].armedHits.insert(v);
    }
    gArmed.store(!r.sites.empty(), std::memory_order_relaxed);
}

/** Arms the registry from CATSIM_FAILPOINTS before main(). */
[[maybe_unused]] const bool kEnvInit = [] {
    if (const char *env = std::getenv("CATSIM_FAILPOINTS")) {
        Registry &r = registry();
        std::lock_guard<std::mutex> lock(r.mutex);
        parseInto(r, env);
        if (!r.sites.empty())
            CATSIM_INFORM("fault injection armed: ", env);
    }
    return true;
}();

} // namespace

bool
shouldFailSlow(const char *site)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    const auto it = r.sites.find(site);
    if (it == r.sites.end())
        return false;
    Site &s = it->second;
    ++s.hits;
    return s.every || s.armedHits.count(s.hits) > 0;
}

} // namespace detail

void
maybeThrow(const char *site)
{
    if (shouldFail(site))
        throw FaultInjected(std::string("fail-point '") + site
                            + "' fired");
}

void
installFailpoints(const std::string &spec)
{
    detail::Registry &r = detail::registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    detail::parseInto(r, spec);
}

std::uint64_t
hitCount(const std::string &site)
{
    detail::Registry &r = detail::registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    const auto it = r.sites.find(site);
    return it == r.sites.end() ? 0 : it->second.hits;
}

} // namespace fault

} // namespace catsim
