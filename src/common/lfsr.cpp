#include "lfsr.hpp"

#include "logging.hpp"

namespace catsim
{

namespace
{

/**
 * Maximal-length tap masks (Galois right-shift form) indexed by
 * register width.  Values follow Koopman's published tables; every
 * width below is verified maximal by tests/test_lfsr.cpp.
 */
std::uint64_t
tapsForWidth(unsigned width)
{
    switch (width) {
      case 2: return 0x3;
      case 3: return 0x6;
      case 4: return 0xC;
      case 5: return 0x14;
      case 6: return 0x30;
      case 7: return 0x60;
      case 8: return 0xB8;
      case 9: return 0x110;
      case 10: return 0x240;
      case 11: return 0x500;
      case 12: return 0xE08;
      case 13: return 0x1C80;
      case 14: return 0x3802;
      case 15: return 0x6000;
      case 16: return 0xD008;
      case 17: return 0x12000;
      case 18: return 0x20400;
      case 19: return 0x72000;
      case 20: return 0x90000;
      case 21: return 0x140000;
      case 22: return 0x300000;
      case 23: return 0x420000;
      case 24: return 0xE10000;
      case 31: return 0x48000000;
      case 32: return 0x80200003;
      case 63: return 0x6000000000000000ULL;
      case 64: return 0xD800000000000000ULL;
      default:
        CATSIM_FATAL("no maximal LFSR taps tabulated for width ", width);
    }
}

} // namespace

Lfsr::Lfsr(unsigned width, std::uint64_t seed)
    : width_(width),
      mask_(width >= 64 ? ~0ULL : ((1ULL << width) - 1)),
      taps_(tapsForWidth(width)),
      state_(seed & mask_)
{
    if (width < 2 || width > 64)
        CATSIM_FATAL("LFSR width must be in [2, 64], got ", width);
    if (state_ == 0)
        state_ = 1;
}

unsigned
Lfsr::shiftBit()
{
    // Galois (one-to-many) form: shift right, XOR the tap mask into
    // the register when the output bit is one.  Koopman's published
    // masks are maximal-length for exactly this update rule.
    const unsigned out = static_cast<unsigned>(state_ & 1);
    state_ >>= 1;
    if (out)
        state_ ^= taps_;
    state_ &= mask_;
    return out;
}

std::uint64_t
Lfsr::nextBits(unsigned n)
{
    std::uint64_t v = 0;
    for (unsigned i = 0; i < n; ++i)
        v = (v << 1) | shiftBit();
    return v;
}

double
Lfsr::nextDouble()
{
    const unsigned n = width_ > 32 ? 32 : width_;
    const double denom = static_cast<double>(1ULL << n);
    return static_cast<double>(nextBits(n)) / denom;
}

std::uint64_t
Lfsr::period() const
{
    if (width_ >= 64)
        return ~0ULL;
    return (1ULL << width_) - 1;
}

} // namespace catsim
