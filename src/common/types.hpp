/**
 * @file
 * Fundamental scalar types shared by every catsim library.
 */

#ifndef CATSIM_COMMON_TYPES_HPP
#define CATSIM_COMMON_TYPES_HPP

#include <cstdint>

namespace catsim
{

/** Physical byte address in the simulated machine. */
using Addr = std::uint64_t;

/** DRAM row index within one bank (banks have up to 2^20 rows here). */
using RowAddr = std::uint32_t;

/** Memory-bus clock cycle count (800 MHz DDR3 bus by default). */
using Cycle = std::uint64_t;

/** CPU core identifier. */
using CoreId = std::uint32_t;

/** Energy in nanojoules.  All energy bookkeeping uses nJ. */
using NanoJoule = double;

/** Power in milliwatts.  CMRPO is a ratio of mW quantities. */
using MilliWatt = double;

/** Count of events (row activations, refreshes, ...). */
using Count = std::uint64_t;

/**
 * Sentinel inserted into recorded per-bank activation streams at 64 ms
 * auto-refresh epoch boundaries.  Lives here (not in the sim layer)
 * because both the recorders (timing sim, trace ingestion) and the
 * replayers agree on it.
 */
constexpr RowAddr kEpochMarker = 0xFFFFFFFFu;

} // namespace catsim

#endif // CATSIM_COMMON_TYPES_HPP
