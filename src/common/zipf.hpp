/**
 * @file
 * Zipf-distributed integer sampling.
 *
 * DRAM row popularity in real workloads is heavily skewed (paper Fig 3:
 * "a small group of rows dominate overall accesses").  The synthetic
 * workload generators model row popularity with a Zipf(theta) law over a
 * permuted row id space; this sampler provides O(1) amortized draws via
 * rejection-inversion (W. Hormann, G. Derflinger, 1996), which stays fast
 * for the 64K-1M element ranges used by the bank model.
 */

#ifndef CATSIM_COMMON_ZIPF_HPP
#define CATSIM_COMMON_ZIPF_HPP

#include <cstdint>

#include "rng.hpp"

namespace catsim
{

/**
 * Samples k in [0, n) with P(k) proportional to 1/(k+1)^theta.
 */
class ZipfSampler
{
  public:
    /**
     * @param n     Number of items (> 0).
     * @param theta Skew parameter; 0 gives uniform, ~0.99 is the classic
     *              YCSB hot-set skew, larger is hotter.
     */
    ZipfSampler(std::uint64_t n, double theta);

    /** Draw one sample using the supplied RNG. */
    std::uint64_t sample(Xoshiro256StarStar &rng) const;

    std::uint64_t n() const { return n_; }
    double theta() const { return theta_; }

  private:
    double h(double x) const;
    double hInverse(double x) const;

    std::uint64_t n_;
    double theta_;
    double hImaxInv_;
    double hX0_;
    double s_;
};

} // namespace catsim

#endif // CATSIM_COMMON_ZIPF_HPP
