/**
 * @file
 * Deterministic fail-point registry for crash-safety testing.
 *
 * A repo whose subject is probability-of-failure under disturbance
 * should itself be testable under injected faults: torn writes, short
 * reads, ENOSPC, a worker dying mid-cell.  Named fail-point sites are
 * compiled into the I/O and sweep hot paths; they cost one relaxed
 * atomic load when no fail-points are armed, and fire at exact hit
 * counts when armed, so a test can force "the 3rd checkpoint append
 * tears" and get the same failure every run.
 *
 * Arming:  CATSIM_FAILPOINTS=site@nth[,site@nth...]   (nth is 1-based;
 * the same site may be listed several times to arm several hits, and
 * `site@*` arms every hit).  Tests can also call
 * installFailpoints(spec) to swap the registry at runtime - this
 * resets all hit counters.
 *
 * Each site decides what "failing" means locally: saveBaseline's torn
 * site truncates the payload it writes, the checkpoint append site
 * throws after a partial record, the sweep-cell site throws before
 * evaluating.  Sites that model a crash throw FaultInjected, which is
 * an ordinary std::runtime_error to everything above.
 */

#ifndef CATSIM_COMMON_FAULT_INJECTION_HPP
#define CATSIM_COMMON_FAULT_INJECTION_HPP

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace catsim
{

/** Exception thrown by fail-point sites that model a crash/abort. */
struct FaultInjected : std::runtime_error
{
    using std::runtime_error::runtime_error;
};

namespace fault
{

namespace detail
{
extern std::atomic<bool> gArmed;
bool shouldFailSlow(const char *site);
} // namespace detail

/** True when any fail-point is armed (one relaxed atomic load). */
inline bool
armed()
{
    return detail::gArmed.load(std::memory_order_relaxed);
}

/**
 * Count one hit of @p site; true when this exact hit is armed.  Free
 * (no counting, no lock) while nothing is armed, so production runs
 * pay nothing for the instrumentation.
 */
inline bool
shouldFail(const char *site)
{
    return armed() && detail::shouldFailSlow(site);
}

/** Throw FaultInjected when this hit of @p site is armed. */
void maybeThrow(const char *site);

/**
 * Replace the registry with @p spec (the CATSIM_FAILPOINTS grammar);
 * "" disarms everything.  Resets every site's hit counter.  Intended
 * for tests; not safe against concurrent shouldFail of the same site.
 */
void installFailpoints(const std::string &spec);

/** Hits counted for @p site since the last install (0 when unarmed). */
std::uint64_t hitCount(const std::string &site);

} // namespace fault

} // namespace catsim

#endif // CATSIM_COMMON_FAULT_INJECTION_HPP
