#include "checksum.hpp"

#include <array>

namespace catsim
{

namespace
{

/** Byte-at-a-time table for the reflected polynomial 0xEDB88320. */
std::array<std::uint32_t, 256>
makeTable()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
        table[i] = c;
    }
    return table;
}

const std::array<std::uint32_t, 256> &
table()
{
    static const std::array<std::uint32_t, 256> t = makeTable();
    return t;
}

} // namespace

void
Crc32::update(const void *data, std::size_t len)
{
    const auto *p = static_cast<const unsigned char *>(data);
    const auto &t = table();
    std::uint32_t c = state_;
    for (std::size_t i = 0; i < len; ++i)
        c = t[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
    state_ = c;
}

std::uint32_t
crc32(const void *data, std::size_t len)
{
    Crc32 c;
    c.update(data, len);
    return c.value();
}

} // namespace catsim
