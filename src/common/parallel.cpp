#include "parallel.hpp"

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "common/fault_injection.hpp"

namespace catsim
{

std::size_t
defaultJobs()
{
    if (const char *env = std::getenv("CATSIM_JOBS")) {
        char *end = nullptr;
        const long v = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && v >= 1)
            return static_cast<std::size_t>(v);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

ThreadPool::ThreadPool(std::size_t jobs) : jobs_(jobs ? jobs : 1)
{
    if (jobs_ == 1)
        return;
    workers_.reserve(jobs_);
    for (std::size_t i = 0; i < jobs_; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    workReady_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
ThreadPool::recordException(std::size_t seq)
{
    // Caller holds mutex_.  Lowest submission sequence wins so the
    // reported error does not depend on thread completion order.
    if (!firstError_ || seq < firstErrorSeq_) {
        firstError_ = std::current_exception();
        firstErrorSeq_ = seq;
    }
}

void
ThreadPool::submit(std::function<void()> job)
{
    if (jobs_ == 1) {
        const std::size_t seq = submitSeq_++;
        try {
            fault::maybeThrow("pool_task");
            job();
        } catch (...) {
            std::lock_guard<std::mutex> lock(mutex_);
            recordException(seq);
        }
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.emplace_back(submitSeq_++, std::move(job));
        ++inFlight_;
    }
    workReady_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    allDone_.wait(lock, [this] { return inFlight_ == 0; });
    if (firstError_) {
        std::exception_ptr err = firstError_;
        const std::size_t seq = firstErrorSeq_;
        firstError_ = nullptr;
        lock.unlock();
        try {
            std::rethrow_exception(err);
        } catch (const std::exception &e) {
            throw std::runtime_error("task " + std::to_string(seq) + ": "
                                     + e.what());
        }
        // Non-std exceptions carry no message to wrap; let them
        // propagate as-is.
    }
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::size_t seq = 0;
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            workReady_.wait(
                lock, [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stopping_ and drained
            seq = queue_.front().first;
            job = std::move(queue_.front().second);
            queue_.pop_front();
        }
        try {
            fault::maybeThrow("pool_task");
            job();
        } catch (...) {
            std::lock_guard<std::mutex> lock(mutex_);
            recordException(seq);
        }
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (--inFlight_ == 0)
                allDone_.notify_all();
        }
    }
}

void
parallelFor(std::size_t n, const std::function<void(std::size_t)> &fn,
            std::size_t jobs)
{
    if (n == 0)
        return;
    const std::size_t workers = std::min(jobs ? jobs : 1, n);
    if (workers <= 1) {
        for (std::size_t i = 0; i < n; ++i) {
            try {
                fault::maybeThrow("parallel_cell");
                fn(i);
            } catch (const std::exception &e) {
                throw std::runtime_error(
                    "cell " + std::to_string(i) + ": " + e.what());
            }
        }
        return;
    }
    // Dynamic index handout: cheap and balances uneven cells.  A
    // failed call poisons the grid so other workers stop picking up
    // new indices (matching the serial path's stop-at-first-throw)
    // instead of burning through the remaining cells.  Errors are
    // recorded here, not via the pool, so the lowest failing *cell*
    // index wins regardless of which worker hit it - the rethrown
    // message is stable across job counts whenever the set of failing
    // cells is.
    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    std::mutex errMutex;
    std::size_t errIndex = n;
    std::exception_ptr errPtr;
    ThreadPool pool(workers);
    for (std::size_t w = 0; w < workers; ++w) {
        pool.submit([&] {
            for (std::size_t i = next.fetch_add(1); i < n;
                 i = next.fetch_add(1)) {
                if (failed.load(std::memory_order_relaxed))
                    return;
                try {
                    fault::maybeThrow("parallel_cell");
                    fn(i);
                } catch (...) {
                    std::lock_guard<std::mutex> lock(errMutex);
                    if (!errPtr || i < errIndex) {
                        errPtr = std::current_exception();
                        errIndex = i;
                    }
                    failed.store(true, std::memory_order_relaxed);
                }
            }
        });
    }
    pool.wait();
    if (errPtr) {
        try {
            std::rethrow_exception(errPtr);
        } catch (const std::exception &e) {
            throw std::runtime_error(
                "cell " + std::to_string(errIndex) + ": " + e.what());
        }
        // Non-std exceptions propagate unwrapped.
    }
}

} // namespace catsim
