#include "parallel.hpp"

#include <atomic>
#include <cstdlib>

namespace catsim
{

std::size_t
defaultJobs()
{
    if (const char *env = std::getenv("CATSIM_JOBS")) {
        char *end = nullptr;
        const long v = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && v >= 1)
            return static_cast<std::size_t>(v);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

ThreadPool::ThreadPool(std::size_t jobs) : jobs_(jobs ? jobs : 1)
{
    if (jobs_ == 1)
        return;
    workers_.reserve(jobs_);
    for (std::size_t i = 0; i < jobs_; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    workReady_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
ThreadPool::recordException()
{
    // Caller holds mutex_.
    if (!firstError_)
        firstError_ = std::current_exception();
}

void
ThreadPool::submit(std::function<void()> job)
{
    if (jobs_ == 1) {
        try {
            job();
        } catch (...) {
            std::lock_guard<std::mutex> lock(mutex_);
            recordException();
        }
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_back(std::move(job));
        ++inFlight_;
    }
    workReady_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    allDone_.wait(lock, [this] { return inFlight_ == 0; });
    if (firstError_) {
        std::exception_ptr err = firstError_;
        firstError_ = nullptr;
        lock.unlock();
        std::rethrow_exception(err);
    }
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            workReady_.wait(
                lock, [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stopping_ and drained
            job = std::move(queue_.front());
            queue_.pop_front();
        }
        try {
            job();
        } catch (...) {
            std::lock_guard<std::mutex> lock(mutex_);
            recordException();
        }
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (--inFlight_ == 0)
                allDone_.notify_all();
        }
    }
}

void
parallelFor(std::size_t n, const std::function<void(std::size_t)> &fn,
            std::size_t jobs)
{
    if (n == 0)
        return;
    const std::size_t workers = std::min(jobs ? jobs : 1, n);
    if (workers <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }
    // Dynamic index handout: cheap and balances uneven cells.  A
    // failed call poisons the grid so other workers stop picking up
    // new indices (matching the serial path's stop-at-first-throw)
    // instead of burning through the remaining cells.
    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    ThreadPool pool(workers);
    for (std::size_t w = 0; w < workers; ++w) {
        pool.submit([&next, &failed, &fn, n] {
            for (std::size_t i = next.fetch_add(1); i < n;
                 i = next.fetch_add(1)) {
                if (failed.load(std::memory_order_relaxed))
                    return;
                try {
                    fn(i);
                } catch (...) {
                    failed.store(true, std::memory_order_relaxed);
                    throw; // recorded by the pool, rethrown in wait()
                }
            }
        });
    }
    pool.wait();
}

} // namespace catsim
