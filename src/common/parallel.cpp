#include "parallel.hpp"

#include <cstdlib>
#include <stdexcept>
#include <string>

#include "common/fault_injection.hpp"

#ifdef __linux__
#include <fstream>
#include <pthread.h>
#include <sched.h>
#include <sstream>
#endif

namespace catsim
{

std::size_t
defaultJobs()
{
    if (const char *env = std::getenv("CATSIM_JOBS")) {
        char *end = nullptr;
        const long v = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && v >= 1)
            return static_cast<std::size_t>(v);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

bool
numaPinEnabled()
{
    const char *env = std::getenv("CATSIM_NUMA_PIN");
    return env && std::string(env) == "1";
}

namespace
{

#ifdef __linux__

/** Parse a sysfs cpulist ("0-3,8,10-11") into CPU ids. */
std::vector<int>
parseCpuList(const std::string &list)
{
    std::vector<int> cpus;
    std::istringstream is(list);
    std::string tok;
    while (std::getline(is, tok, ',')) {
        const std::size_t dash = tok.find('-');
        try {
            if (dash == std::string::npos) {
                cpus.push_back(std::stoi(tok));
            } else {
                const int lo = std::stoi(tok.substr(0, dash));
                const int hi = std::stoi(tok.substr(dash + 1));
                for (int c = lo; c <= hi; ++c)
                    cpus.push_back(c);
            }
        } catch (...) {
            return {}; // unparsable sysfs: fall back to cpu round-robin
        }
    }
    return cpus;
}

/** CPUs of each online NUMA node; empty when sysfs is unreadable. */
const std::vector<std::vector<int>> &
numaNodeCpus()
{
    static const std::vector<std::vector<int>> nodes = [] {
        std::vector<std::vector<int>> out;
        for (int node = 0; node < 1024; ++node) {
            std::ifstream in("/sys/devices/system/node/node"
                             + std::to_string(node) + "/cpulist");
            if (!in)
                break;
            std::string list;
            std::getline(in, list);
            std::vector<int> cpus = parseCpuList(list);
            if (!cpus.empty())
                out.push_back(std::move(cpus));
        }
        return out;
    }();
    return nodes;
}

/**
 * Pin the calling worker round-robin across NUMA nodes (whole-node
 * affinity mask, so the OS still balances within the node); falls back
 * to plain CPU round-robin when node topology is unreadable.  Failures
 * are ignored - pinning is a performance hint, never correctness.
 */
void
pinWorkerRoundRobin(std::size_t worker)
{
    cpu_set_t set;
    CPU_ZERO(&set);
    const auto &nodes = numaNodeCpus();
    if (!nodes.empty()) {
        for (int c : nodes[worker % nodes.size()])
            CPU_SET(static_cast<unsigned>(c), &set);
    } else {
        const unsigned hw = std::thread::hardware_concurrency();
        if (hw == 0)
            return;
        CPU_SET(worker % hw, &set);
    }
    (void)pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
}

#else

void
pinWorkerRoundRobin(std::size_t)
{
}

#endif

} // namespace

ThreadPool::ThreadPool(std::size_t jobs) : jobs_(jobs ? jobs : 1)
{
    if (jobs_ == 1)
        return;
    queues_.resize(jobs_);
    workers_.reserve(jobs_);
    for (std::size_t i = 0; i < jobs_; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    workReady_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
ThreadPool::recordException(std::size_t seq)
{
    // Caller holds mutex_.  Lowest submission sequence wins so the
    // reported error does not depend on thread completion order.
    if (!firstError_ || seq < firstErrorSeq_) {
        firstError_ = std::current_exception();
        firstErrorSeq_ = seq;
    }
}

void
ThreadPool::submit(std::function<void()> job)
{
    if (jobs_ == 1) {
        const std::size_t seq = submitSeq_++;
        try {
            fault::maybeThrow("pool_task");
            job();
        } catch (...) {
            std::lock_guard<std::mutex> lock(mutex_);
            recordException(seq);
        }
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const std::size_t seq = submitSeq_++;
        // Round-robin placement by submission index: deterministic
        // home deques, even initial spread, and tasks stay LIFO-warm
        // on their home worker until someone runs dry and steals.
        queues_[seq % jobs_].emplace_back(seq, std::move(job));
        ++inFlight_;
    }
    workReady_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    allDone_.wait(lock, [this] { return inFlight_ == 0; });
    if (firstError_) {
        std::exception_ptr err = firstError_;
        const std::size_t seq = firstErrorSeq_;
        firstError_ = nullptr;
        lock.unlock();
        try {
            std::rethrow_exception(err);
        } catch (const std::exception &e) {
            throw std::runtime_error("task " + std::to_string(seq) + ": "
                                     + e.what());
        }
        // Non-std exceptions carry no message to wrap; let them
        // propagate as-is.
    }
}

bool
ThreadPool::takeJob(std::size_t self,
                    std::pair<std::size_t, std::function<void()>> *out,
                    bool *stolen)
{
    // Caller holds mutex_.  Own deque first, newest job first (LIFO:
    // the data it touches is still warm); then scan the other workers
    // round-robin from our own index and steal their OLDEST job (FIFO:
    // the one its owner would reach last, minimizing contention on
    // what the owner is about to pop).
    auto &own = queues_[self];
    if (!own.empty()) {
        *out = std::move(own.back());
        own.pop_back();
        *stolen = false;
        return true;
    }
    for (std::size_t i = 1; i < jobs_; ++i) {
        auto &victim = queues_[(self + i) % jobs_];
        if (victim.empty())
            continue;
        *out = std::move(victim.front());
        victim.pop_front();
        *stolen = true;
        steals_.fetch_add(1, std::memory_order_relaxed);
        return true;
    }
    return false;
}

void
ThreadPool::workerLoop(std::size_t self)
{
    if (numaPinEnabled())
        pinWorkerRoundRobin(self);
    for (;;) {
        std::pair<std::size_t, std::function<void()>> item;
        bool stolen = false;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            workReady_.wait(lock, [this] {
                if (stopping_)
                    return true;
                for (const auto &q : queues_)
                    if (!q.empty())
                        return true;
                return false;
            });
            if (!takeJob(self, &item, &stolen))
                return; // stopping_ and every deque drained
        }
        try {
            if (stolen)
                fault::maybeThrow("pool_steal");
            fault::maybeThrow("pool_task");
            item.second();
        } catch (...) {
            std::lock_guard<std::mutex> lock(mutex_);
            recordException(item.first);
        }
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (--inFlight_ == 0)
                allDone_.notify_all();
        }
    }
}

void
parallelFor(std::size_t n, const std::function<void(std::size_t)> &fn,
            std::size_t jobs)
{
    if (n == 0)
        return;
    const std::size_t workers = std::min(jobs ? jobs : 1, n);
    if (workers <= 1) {
        for (std::size_t i = 0; i < n; ++i) {
            try {
                fault::maybeThrow("parallel_cell");
                fn(i);
            } catch (const std::exception &e) {
                throw std::runtime_error(
                    "cell " + std::to_string(i) + ": " + e.what());
            }
        }
        return;
    }
    // Dynamic index handout: cheap and balances uneven cells.  A
    // failed call poisons the grid so other workers stop picking up
    // new indices (matching the serial path's stop-at-first-throw)
    // instead of burning through the remaining cells.  Errors are
    // recorded here, not via the pool, so the lowest failing *cell*
    // index wins regardless of which worker hit it - the rethrown
    // message is stable across job counts whenever the set of failing
    // cells is.
    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    std::mutex errMutex;
    std::size_t errIndex = n;
    std::exception_ptr errPtr;
    ThreadPool pool(workers);
    for (std::size_t w = 0; w < workers; ++w) {
        pool.submit([&] {
            for (std::size_t i = next.fetch_add(1); i < n;
                 i = next.fetch_add(1)) {
                if (failed.load(std::memory_order_relaxed))
                    return;
                try {
                    fault::maybeThrow("parallel_cell");
                    fn(i);
                } catch (...) {
                    std::lock_guard<std::mutex> lock(errMutex);
                    if (!errPtr || i < errIndex) {
                        errPtr = std::current_exception();
                        errIndex = i;
                    }
                    failed.store(true, std::memory_order_relaxed);
                }
            }
        });
    }
    pool.wait();
    if (errPtr) {
        try {
            std::rethrow_exception(errPtr);
        } catch (const std::exception &e) {
            throw std::runtime_error(
                "cell " + std::to_string(errIndex) + ": " + e.what());
        }
        // Non-std exceptions propagate unwrapped.
    }
}

} // namespace catsim
