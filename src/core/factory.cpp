#include "factory.hpp"

#include <sstream>

#include "common/config.hpp"
#include "common/logging.hpp"
#include "core/counter_cache.hpp"
#include "core/drcat.hpp"
#include "core/pra.hpp"
#include "core/prcat.hpp"
#include "core/sca.hpp"

namespace catsim
{

std::string
SchemeConfig::label() const
{
    std::ostringstream os;
    switch (kind) {
      case SchemeKind::None:
        os << "none";
        break;
      case SchemeKind::Sca:
        os << "SCA_" << numCounters;
        break;
      case SchemeKind::Pra:
        os << "PRA_" << praProbability;
        break;
      case SchemeKind::Prcat:
        os << "PRCAT_" << numCounters;
        break;
      case SchemeKind::Drcat:
        os << "DRCAT_" << numCounters;
        break;
      case SchemeKind::CounterCache:
        os << "CC_" << numCounters;
        break;
    }
    return os.str();
}

SchemeKind
parseSchemeKind(const std::string &name)
{
    const std::string s = asciiLower(name);
    if (s == "none")
        return SchemeKind::None;
    if (s == "sca")
        return SchemeKind::Sca;
    if (s == "pra")
        return SchemeKind::Pra;
    if (s == "prcat")
        return SchemeKind::Prcat;
    if (s == "drcat")
        return SchemeKind::Drcat;
    if (s == "cc" || s == "countercache")
        return SchemeKind::CounterCache;
    CATSIM_FATAL("unknown scheme '", name, "'");
}

std::unique_ptr<MitigationScheme>
makeScheme(const SchemeConfig &config, RowAddr num_rows)
{
    switch (config.kind) {
      case SchemeKind::None:
        return nullptr;
      case SchemeKind::Sca:
        return std::make_unique<Sca>(num_rows, config.numCounters,
                                     config.threshold);
      case SchemeKind::Pra: {
        std::unique_ptr<PrngSource> prng;
        if (config.lfsrPrng)
            prng = std::make_unique<LfsrPrng>(16, config.seed | 1);
        else
            prng = std::make_unique<TruePrng>(config.seed);
        return std::make_unique<Pra>(num_rows, config.praProbability,
                                     std::move(prng));
      }
      case SchemeKind::Prcat:
        return std::make_unique<Prcat>(num_rows, config.numCounters,
                                       config.maxLevels,
                                       config.threshold,
                                       config.splitThresholds);
      case SchemeKind::Drcat:
        return std::make_unique<Drcat>(num_rows, config.numCounters,
                                       config.maxLevels,
                                       config.threshold,
                                       config.splitThresholds);
      case SchemeKind::CounterCache:
        return std::make_unique<CounterCache>(num_rows,
                                              config.numCounters,
                                              config.cacheWays,
                                              config.threshold);
    }
    CATSIM_PANIC("unreachable scheme kind");
}

} // namespace catsim
