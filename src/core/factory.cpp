#include "factory.hpp"

#include <algorithm>
#include <sstream>

#include "common/config.hpp"
#include "common/logging.hpp"
#include "core/counter_cache.hpp"
#include "core/drcat.hpp"
#include "core/pra.hpp"
#include "core/prcat.hpp"
#include "core/sca.hpp"
#include "core/shared_pool.hpp"

namespace catsim
{

std::string
SchemeConfig::label() const
{
    std::ostringstream os;
    switch (kind) {
      case SchemeKind::None:
        os << "none";
        break;
      case SchemeKind::Sca:
        os << "SCA_" << numCounters;
        break;
      case SchemeKind::Pra:
        os << "PRA_" << praProbability;
        break;
      case SchemeKind::Prcat:
        os << "PRCAT_" << numCounters;
        break;
      case SchemeKind::Drcat:
        os << "DRCAT_" << numCounters;
        break;
      case SchemeKind::CounterCache:
        os << "CC_" << numCounters;
        // The legacy default is omitted so pre-existing labels stay
        // unchanged.
        if (evictionPolicy != EvictionPolicyKind::Legacy)
            os << '_' << evictionPolicyName(evictionPolicy);
        break;
    }
    if (banksPerPool > 1
        && (kind == SchemeKind::Prcat || kind == SchemeKind::Drcat))
        os << "_rank" << banksPerPool;
    return os.str();
}

SchemeKind
parseSchemeKind(const std::string &name)
{
    const std::string s = asciiLower(name);
    if (s == "none")
        return SchemeKind::None;
    if (s == "sca")
        return SchemeKind::Sca;
    if (s == "pra")
        return SchemeKind::Pra;
    if (s == "prcat")
        return SchemeKind::Prcat;
    if (s == "drcat")
        return SchemeKind::Drcat;
    if (s == "cc" || s == "countercache")
        return SchemeKind::CounterCache;
    CATSIM_FATAL("unknown scheme '", name, "'");
}

namespace
{

/** Build one instance; @p pool is only non-null for CAT kinds. */
std::unique_ptr<MitigationScheme>
makeOne(const SchemeConfig &config, RowAddr num_rows,
        std::shared_ptr<SharedCounterPool> pool)
{
    switch (config.kind) {
      case SchemeKind::None:
        return nullptr;
      case SchemeKind::Sca:
        return std::make_unique<Sca>(num_rows, config.numCounters,
                                     config.threshold);
      case SchemeKind::Pra: {
        std::unique_ptr<PrngSource> prng;
        if (config.lfsrPrng)
            prng = std::make_unique<LfsrPrng>(16, config.seed | 1);
        else
            prng = std::make_unique<TruePrng>(config.seed);
        return std::make_unique<Pra>(num_rows, config.praProbability,
                                     std::move(prng));
      }
      case SchemeKind::Prcat:
        return std::make_unique<Prcat>(num_rows, config.numCounters,
                                       config.maxLevels,
                                       config.threshold,
                                       config.splitThresholds,
                                       std::move(pool));
      case SchemeKind::Drcat:
        return std::make_unique<Drcat>(num_rows, config.numCounters,
                                       config.maxLevels,
                                       config.threshold,
                                       config.splitThresholds,
                                       std::move(pool));
      case SchemeKind::CounterCache:
        return std::make_unique<CounterCache>(
            num_rows, config.numCounters, config.cacheWays,
            config.threshold,
            config.evictionPolicy == EvictionPolicyKind::Legacy
                ? nullptr
                : makeEvictionPolicy(config.evictionPolicy,
                                     config.seed));
    }
    CATSIM_PANIC("unreachable scheme kind");
}

bool
wantsSharedPool(const SchemeConfig &config)
{
    return config.banksPerPool > 1
           && (config.kind == SchemeKind::Prcat
               || config.kind == SchemeKind::Drcat);
}

} // namespace

std::unique_ptr<MitigationScheme>
makeScheme(const SchemeConfig &config, RowAddr num_rows)
{
    if (wantsSharedPool(config))
        CATSIM_FATAL("banksPerPool=", config.banksPerPool,
                     " needs makeBankSchemes (a single instance cannot "
                     "share a counter pool)");
    return makeOne(config, num_rows, nullptr);
}

std::vector<std::unique_ptr<MitigationScheme>>
makeBankSchemes(const SchemeConfig &config, RowAddr num_rows,
                std::uint32_t num_banks)
{
    std::vector<std::unique_ptr<MitigationScheme>> schemes;
    schemes.reserve(num_banks);
    const bool pooled = wantsSharedPool(config);
    std::shared_ptr<SharedCounterPool> pool;
    for (std::uint32_t b = 0; b < num_banks; ++b) {
        if (pooled && b % config.banksPerPool == 0) {
            // One pool per group of banksPerPool consecutive banks (a
            // rank in flat bank order); a short tail group keeps the
            // per-bank budget, not the full-rank one.
            const std::uint32_t group =
                std::min(config.banksPerPool, num_banks - b);
            pool = std::make_shared<SharedCounterPool>(
                config.numCounters * group);
        }
        SchemeConfig cfg = config;
        cfg.seed = config.seed * 1000003ULL + b;
        schemes.push_back(makeOne(cfg, num_rows, pool));
    }
    return schemes;
}

} // namespace catsim
