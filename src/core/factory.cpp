#include "factory.hpp"

#include <algorithm>
#include <sstream>

#include "common/config.hpp"
#include "common/logging.hpp"
#include "core/counter_cache.hpp"
#include "core/drcat.hpp"
#include "core/misra_gries.hpp"
#include "core/pra.hpp"
#include "core/prcat.hpp"
#include "core/rfm.hpp"
#include "core/sca.hpp"
#include "core/shared_pool.hpp"
#include "core/tree_bundle.hpp"

namespace catsim
{

std::string
SchemeConfig::label() const
{
    std::ostringstream os;
    switch (kind) {
      case SchemeKind::None:
        os << "none";
        break;
      case SchemeKind::Sca:
        os << "SCA_" << numCounters;
        break;
      case SchemeKind::Pra:
        os << "PRA_" << praProbability;
        break;
      case SchemeKind::Prcat:
        os << "PRCAT_" << numCounters;
        break;
      case SchemeKind::Drcat:
        os << "DRCAT_" << numCounters;
        break;
      case SchemeKind::CounterCache:
        os << "CC_" << numCounters;
        // The legacy default is omitted so pre-existing labels stay
        // unchanged.
        if (evictionPolicy != EvictionPolicyKind::Legacy)
            os << '_' << evictionPolicyName(evictionPolicy);
        break;
      case SchemeKind::MisraGries:
        os << "MG_" << numCounters;
        break;
      case SchemeKind::Rfm:
        os << "RFM_" << rfmBudget;
        break;
    }
    if (banksPerPool > 1
        && (kind == SchemeKind::Prcat || kind == SchemeKind::Drcat))
        os << "_rank" << banksPerPool;
    return os.str();
}

const char *
schemeKindName(SchemeKind kind)
{
    switch (kind) {
      case SchemeKind::None:
        return "none";
      case SchemeKind::Sca:
        return "sca";
      case SchemeKind::Pra:
        return "pra";
      case SchemeKind::Prcat:
        return "prcat";
      case SchemeKind::Drcat:
        return "drcat";
      case SchemeKind::CounterCache:
        return "cc";
      case SchemeKind::MisraGries:
        return "mg";
      case SchemeKind::Rfm:
        return "rfm";
    }
    return "?";
}

SchemeConfig
SchemeConfig::parse(const Config &cfg)
{
    SchemeConfig s;
    s.kind = parseSchemeKind(cfg.getString("scheme", "drcat"));
    s.numCounters =
        static_cast<std::uint32_t>(cfg.getUint("counters", 64));
    s.maxLevels = static_cast<std::uint32_t>(cfg.getUint("levels", 11));
    s.threshold =
        static_cast<std::uint32_t>(cfg.getUint("threshold", 32768));
    s.praProbability = cfg.getDouble("p", 0.002);
    s.cacheWays = static_cast<std::uint32_t>(cfg.getUint("ways", 8));
    s.rfmBudget =
        static_cast<std::uint32_t>(cfg.getUint("rfmbudget", 64));
    s.seed = cfg.getUint("schemeseed", 1);
    s.lfsrPrng = cfg.getBool("lfsr", false);
    // `eviction=` and `bankspool=` are the historical simulate CLI
    // spellings, kept as aliases of the canonical keys.
    s.evictionPolicy = parseEvictionPolicy(
        cfg.getString("policy", cfg.getString("eviction", "legacy")));
    s.banksPerPool = static_cast<std::uint32_t>(
        cfg.getUint("pool", cfg.getUint("bankspool", 0)));
    s.bundleWidth =
        static_cast<std::uint32_t>(cfg.getUint("bundle", 0));
    return s;
}

std::string
SchemeConfig::format() const
{
    const SchemeConfig def;
    std::ostringstream os;
    os << "scheme=" << schemeKindName(kind);
    if (numCounters != def.numCounters)
        os << " counters=" << numCounters;
    if (maxLevels != def.maxLevels)
        os << " levels=" << maxLevels;
    if (threshold != def.threshold)
        os << " threshold=" << threshold;
    if (praProbability != def.praProbability)
        os << " p=" << praProbability;
    if (cacheWays != def.cacheWays)
        os << " ways=" << cacheWays;
    if (rfmBudget != def.rfmBudget)
        os << " rfmbudget=" << rfmBudget;
    if (seed != def.seed)
        os << " schemeseed=" << seed;
    if (lfsrPrng)
        os << " lfsr=1";
    if (evictionPolicy != def.evictionPolicy)
        os << " policy=" << evictionPolicyName(evictionPolicy);
    if (banksPerPool != def.banksPerPool)
        os << " pool=" << banksPerPool;
    if (bundleWidth != def.bundleWidth)
        os << " bundle=" << bundleWidth;
    return os.str();
}

SchemeKind
parseSchemeKind(const std::string &name)
{
    const std::string s = asciiLower(name);
    if (s == "none")
        return SchemeKind::None;
    if (s == "sca")
        return SchemeKind::Sca;
    if (s == "pra")
        return SchemeKind::Pra;
    if (s == "prcat")
        return SchemeKind::Prcat;
    if (s == "drcat")
        return SchemeKind::Drcat;
    if (s == "cc" || s == "countercache")
        return SchemeKind::CounterCache;
    if (s == "mg" || s == "misragries" || s == "misra-gries")
        return SchemeKind::MisraGries;
    if (s == "rfm")
        return SchemeKind::Rfm;
    CATSIM_FATAL("unknown scheme '", name, "'");
}

namespace
{

/** Build one instance; @p pool is only non-null for CAT kinds. */
std::unique_ptr<MitigationScheme>
makeOne(const SchemeConfig &config, RowAddr num_rows,
        std::shared_ptr<SharedCounterPool> pool)
{
    switch (config.kind) {
      case SchemeKind::None:
        return nullptr;
      case SchemeKind::Sca:
        return std::make_unique<Sca>(num_rows, config.numCounters,
                                     config.threshold);
      case SchemeKind::Pra: {
        std::unique_ptr<PrngSource> prng;
        if (config.lfsrPrng)
            prng = std::make_unique<LfsrPrng>(16, config.seed | 1);
        else
            prng = std::make_unique<TruePrng>(config.seed);
        return std::make_unique<Pra>(num_rows, config.praProbability,
                                     std::move(prng));
      }
      case SchemeKind::Prcat:
        return std::make_unique<Prcat>(num_rows, config.numCounters,
                                       config.maxLevels,
                                       config.threshold,
                                       config.splitThresholds,
                                       std::move(pool));
      case SchemeKind::Drcat:
        return std::make_unique<Drcat>(num_rows, config.numCounters,
                                       config.maxLevels,
                                       config.threshold,
                                       config.splitThresholds,
                                       std::move(pool));
      case SchemeKind::CounterCache:
        return std::make_unique<CounterCache>(
            num_rows, config.numCounters, config.cacheWays,
            config.threshold,
            config.evictionPolicy == EvictionPolicyKind::Legacy
                ? nullptr
                : makeEvictionPolicy(config.evictionPolicy,
                                     config.seed));
      case SchemeKind::MisraGries:
        return std::make_unique<MisraGries>(
            num_rows, config.numCounters, config.threshold);
      case SchemeKind::Rfm:
        return std::make_unique<Rfm>(num_rows, config.rfmBudget);
    }
    CATSIM_PANIC("unreachable scheme kind");
}

bool
wantsSharedPool(const SchemeConfig &config)
{
    return config.banksPerPool > 1
           && (config.kind == SchemeKind::Prcat
               || config.kind == SchemeKind::Drcat);
}

/**
 * Banks per TreeBundle for this config, 1 meaning "standalone trees".
 * Pooled groups must be covered by one bundle (the bundle maintains
 * the lanes' cached thresholds across pool events, so an external
 * sharer would invalidate them behind its back).
 */
std::uint32_t
resolveBundleWidth(const SchemeConfig &config)
{
    if (config.kind != SchemeKind::Prcat
        && config.kind != SchemeKind::Drcat)
        return 1;
    if (wantsSharedPool(config)) {
        if (config.bundleWidth != 0 && config.bundleWidth != 1
            && config.bundleWidth != config.banksPerPool)
            CATSIM_FATAL("bundleWidth=", config.bundleWidth,
                         " must cover the banksPerPool=",
                         config.banksPerPool, " group (or be 0/1)");
        return config.bundleWidth == 1 ? 1 : config.banksPerPool;
    }
    return config.bundleWidth == 0 ? kDefaultBundleWidth
                                   : config.bundleWidth;
}

} // namespace

std::unique_ptr<MitigationScheme>
makeScheme(const SchemeConfig &config, RowAddr num_rows)
{
    if (wantsSharedPool(config))
        CATSIM_FATAL("banksPerPool=", config.banksPerPool,
                     " needs makeBankSchemes (a single instance cannot "
                     "share a counter pool)");
    return makeOne(config, num_rows, nullptr);
}

std::vector<std::unique_ptr<MitigationScheme>>
makeBankSchemes(const SchemeConfig &config, RowAddr num_rows,
                std::uint32_t num_banks, std::uint32_t first_bank)
{
    std::vector<std::unique_ptr<MitigationScheme>> schemes;
    schemes.reserve(num_banks);
    const bool pooled = wantsSharedPool(config);
    const std::uint32_t width = resolveBundleWidth(config);
    if (pooled && first_bank % config.banksPerPool != 0)
        CATSIM_FATAL("first_bank=", first_bank,
                     " splits a banksPerPool=", config.banksPerPool,
                     " counter-pool group (shard boundaries must align "
                     "to pool groups)");

    if (width > 1) {
        // Bundle-backed CAT group: one SoA arena per `width`
        // consecutive banks (= one pool group when pooled, tail groups
        // smaller).  Construction order matches the standalone loop
        // bank for bank, so pooled trees acquire their pre-split
        // charges in the same sequence.
        for (std::uint32_t b = 0; b < num_banks; b += width) {
            const std::uint32_t group = std::min(width, num_banks - b);
            std::shared_ptr<SharedCounterPool> pool;
            if (pooled)
                pool = std::make_shared<SharedCounterPool>(
                    config.numCounters * group);
            auto bundle = std::make_shared<TreeBundle>(
                num_rows, config.numCounters, config.maxLevels,
                config.threshold, config.kind == SchemeKind::Drcat,
                config.splitThresholds, std::move(pool), group);
            for (std::uint32_t l = 0; l < group; ++l)
                schemes.push_back(std::make_unique<BundledCatScheme>(
                    bundle, l, num_rows));
        }
        return schemes;
    }

    std::shared_ptr<SharedCounterPool> pool;
    for (std::uint32_t b = 0; b < num_banks; ++b) {
        if (pooled && b % config.banksPerPool == 0) {
            // One pool per group of banksPerPool consecutive banks (a
            // rank in flat bank order); a short tail group keeps the
            // per-bank budget, not the full-rank one.
            const std::uint32_t group =
                std::min(config.banksPerPool, num_banks - b);
            pool = std::make_shared<SharedCounterPool>(
                config.numCounters * group);
        }
        SchemeConfig cfg = config;
        cfg.seed = config.seed * 1000003ULL + (first_bank + b);
        schemes.push_back(makeOne(cfg, num_rows, pool));
    }
    return schemes;
}

} // namespace catsim
