#include "split_thresholds.hpp"

#include <cmath>

#include "common/logging.hpp"

namespace catsim
{

namespace
{

bool
isPow2(std::uint32_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

std::uint32_t
log2u(std::uint32_t v)
{
    std::uint32_t l = 0;
    while (v > 1) {
        v >>= 1;
        ++l;
    }
    return l;
}

} // namespace

bool
splitThresholdsCalibrated(std::uint32_t num_counters,
                          std::uint32_t max_levels)
{
    return num_counters == 64 && max_levels == 10;
}

std::vector<std::uint32_t>
computeSplitThresholds(std::uint32_t num_counters,
                       std::uint32_t max_levels, std::uint32_t threshold)
{
    if (num_counters < 2)
        CATSIM_FATAL("CAT needs at least 2 counters, got ",
                     num_counters);
    // ceil(log2(M)); for a non-power-of-two M the schedule anchors on
    // the next power up, so the uneven deepest pre-split level (depth
    // m-1, see cat_tree.hpp) still gets a real split threshold and a
    // power-of-two M reproduces the historical schedule exactly.
    const std::uint32_t m =
        log2u(num_counters) + (isPow2(num_counters) ? 0 : 1);
    const std::uint32_t L = max_levels;
    if (L < m + 1)
        CATSIM_FATAL("CAT max levels (", L, ") must exceed ceil(log2(M))=",
                     m);
    if (threshold < 8)
        CATSIM_FATAL("refresh threshold too small: ", threshold);

    std::vector<std::uint32_t> thr(L, threshold);
    thr[L - 1] = threshold;

    if (splitThresholdsCalibrated(num_counters, max_levels)) {
        // Paper Section IV-D published schedule for M=64, L=10 at
        // T=32768, scaled linearly with T.
        const double scale = static_cast<double>(threshold) / 32768.0;
        const double anchors[4] = {5155.0, 10309.0, 12886.0, 16384.0};
        for (std::uint32_t i = 0; i < 4; ++i) {
            thr[5 + i] = static_cast<std::uint32_t>(
                std::llround(anchors[i] * scale));
        }
        return thr;
    }

    // Generic rule (docs/DESIGN.md Section 4).  Depths m-1 .. L-2 carry real
    // split thresholds; anything shallower reuses thr[m-1].
    const double ratio = std::pow(2.0, 1.0 / 3.0);
    double v = static_cast<double>(threshold) / 2.0;
    thr[L - 2] = static_cast<std::uint32_t>(std::llround(v));
    for (std::int64_t d = static_cast<std::int64_t>(L) - 3;
         d >= static_cast<std::int64_t>(m); --d) {
        v /= ratio;
        thr[static_cast<std::size_t>(d)] =
            static_cast<std::uint32_t>(std::llround(v));
    }
    // The first split threshold is half the next one - except when it
    // is also the last split threshold, where the T/2 rule wins.
    if (m >= 1 && m - 1 < L - 2)
        thr[m - 1] = thr[m] / 2;
    for (std::uint32_t d = 0; d + 1 < m; ++d)
        thr[d] = thr[m - 1];

    // The schedule must be non-decreasing with depth and end at T; a
    // violation would let a child start above its own split threshold
    // forever.
    for (std::uint32_t d = m - 1; d + 1 < L; ++d) {
        if (thr[d] > thr[d + 1])
            CATSIM_PANIC("split thresholds must be non-decreasing");
    }
    return thr;
}

} // namespace catsim
