#include "misra_gries.hpp"

#include <sstream>

#include "common/logging.hpp"
#include "core/pra.hpp"

namespace catsim
{

MisraGries::MisraGries(RowAddr num_rows, std::uint32_t num_entries,
                       std::uint32_t threshold)
    : MitigationScheme(num_rows),
      threshold_(threshold),
      entries_(num_entries)
{
    if (num_entries == 0)
        CATSIM_FATAL("Misra-Gries needs at least one entry");
    if (threshold < 2)
        CATSIM_FATAL("Misra-Gries threshold must be >= 2, got ",
                     threshold);
}

RefreshAction
MisraGries::refreshAround(RowAddr row)
{
    const RefreshAction act =
        neighborRefresh(row, numRows_, adjacency_);
    ++stats_.refreshEvents;
    stats_.victimRowsRefreshed += act.rowCount;
    return act;
}

RefreshAction
MisraGries::onActivate(RowAddr row)
{
    ++stats_.activations;
    // CC-style SRAM budget: one CAM probe + one entry/spill update.
    stats_.sramAccesses += 2;

    Entry *slot = nullptr;
    for (auto &e : entries_) {
        if (e.live && e.row == row) {
            ++e.count;
            // `count + spills since the entry's baseline` upper-bounds
            // the row's true activations since its last refresh.
            if (e.count + (dec_ - e.decBase) >= threshold_) {
                // Keep the heavy hitter tracked: the bound restarts
                // at the current spill level instead of at zero.
                e.count = 0;
                e.decBase = dec_;
                return refreshAround(row);
            }
            return {};
        }
        if (e.count == 0 && !slot)
            slot = &e;
    }

    if (slot) {
        slot->row = row;
        slot->count = 1;
        // Earlier spills may have absorbed occurrences of this row, so
        // a fresh entry's bound starts from the full spill total.
        slot->decBase = 0;
        slot->live = true;
        if (1 + dec_ >= threshold_) {
            slot->count = 0;
            slot->decBase = dec_;
            return refreshAround(row);
        }
        return {};
    }

    // Summary-full miss: classic Misra-Gries decrements every entry,
    // absorbing one occurrence of each tracked row plus this one into
    // the global spill counter (a full-table rewrite in SRAM).
    ++dec_;
    for (auto &e : entries_)
        --e.count;
    stats_.sramAccesses += entries_.size();
    // The dropped occurrence still counts toward the untracked row's
    // bound (the spill total alone).  Only reachable when the table is
    // undersized for the stream (entries + 1 <= acts / T), where the
    // scheme degrades to conservative refresh-per-miss instead of
    // losing the no-false-negative guarantee.
    if (dec_ >= threshold_)
        return refreshAround(row);
    return {};
}

void
MisraGries::onEpoch()
{
    // Retention refresh clears accumulated disturbance: restart the
    // sketch like the other counting schemes restart their counters.
    for (auto &e : entries_)
        e = Entry{};
    dec_ = 0;
    ++stats_.epochResets;
}

std::uint32_t
MisraGries::trackedCount(RowAddr row) const
{
    for (const auto &e : entries_) {
        if (e.live && e.row == row)
            return e.count;
    }
    return 0;
}

std::string
MisraGries::name() const
{
    std::ostringstream os;
    os << "MG_" << entries_.size();
    return os.str();
}

} // namespace catsim
