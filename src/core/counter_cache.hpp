/**
 * @file
 * Counter-cache baseline (Kim, Nair, Qureshi - CAL 2015; paper
 * Section II and Fig 2).
 *
 * One log2(T)-bit counter per DRAM row lives in a reserved area of main
 * memory; a small on-chip set-associative cache keeps recently used
 * counters so most activations update SRAM instead of DRAM.  Tracking
 * is exact, so only the two physical neighbors of an aggressor are ever
 * refreshed - at the price of counter storage, cache management, and
 * DRAM traffic on misses.
 *
 * Victim selection is pluggable (eviction_policy.hpp): the historical
 * policy is the frozen default, and LRU/LFU/random variants feed the
 * eviction-sensitivity study (bench_fig15_extensions).
 */

#ifndef CATSIM_CORE_COUNTER_CACHE_HPP
#define CATSIM_CORE_COUNTER_CACHE_HPP

#include <cstdint>
#include <memory>
#include <vector>

#include "core/adjacency.hpp"
#include "core/eviction_policy.hpp"
#include "core/mitigation.hpp"

namespace catsim
{

/** Exact per-row counting with an on-chip counter cache. */
class CounterCache : public MitigationScheme
{
  public:
    /**
     * @param num_rows   Rows per bank.
     * @param cache_counters Capacity of the on-chip cache in counters
     *                   (e.g. 2048 for the paper's "2K counter cache").
     * @param ways       Set associativity.
     * @param threshold  Refresh threshold (T).
     * @param policy     Victim-selection strategy; null selects the
     *                   frozen legacy policy.
     */
    CounterCache(RowAddr num_rows, std::uint32_t cache_counters,
                 std::uint32_t ways, std::uint32_t threshold,
                 std::unique_ptr<EvictionPolicy> policy = nullptr);

    RefreshAction onActivate(RowAddr row) override;
    void onEpoch() override;
    std::string name() const override;

    Count hits() const { return hits_; }
    Count misses() const { return misses_; }
    std::uint32_t capacity() const { return cacheCounters_; }

    /** The active victim-selection strategy. */
    const EvictionPolicy &policy() const { return *policy_; }

    /** Physical-adjacency model for victim selection (may be null). */
    void setAdjacency(const RowAdjacency *adjacency)
    {
        adjacency_ = adjacency;
    }

  private:
    std::uint32_t cacheCounters_;
    std::uint32_t ways_;
    std::uint32_t sets_;
    std::uint32_t threshold_;
    std::unique_ptr<EvictionPolicy> policy_;
    std::vector<RowAddr> tags_;          //!< sets_ x ways_
    std::vector<CacheWayState> meta_;    //!< sets_ x ways_
    std::vector<std::uint32_t> backing_; //!< per-row counters ("DRAM")
    std::uint64_t tick_ = 0;
    Count hits_ = 0;
    Count misses_ = 0;
    const RowAdjacency *adjacency_ = nullptr;
};

} // namespace catsim

#endif // CATSIM_CORE_COUNTER_CACHE_HPP
