/**
 * @file
 * Construction of mitigation schemes by name, used by the simulators,
 * bench binaries and examples.
 */

#ifndef CATSIM_CORE_FACTORY_HPP
#define CATSIM_CORE_FACTORY_HPP

#include <memory>
#include <string>
#include <vector>

#include "core/eviction_policy.hpp"
#include "core/mitigation.hpp"

namespace catsim
{

class Config;

/** Which mitigation scheme to build. */
enum class SchemeKind
{
    None,  //!< no mitigation (baseline runs)
    Sca,
    Pra,
    Prcat,
    Drcat,
    CounterCache,
    MisraGries, //!< frequent-item tracking (Graphene-style)
    Rfm,        //!< DDR5 refresh management (rolling ACT counter)
};

/** Parameters shared by all schemes; unused fields are ignored. */
struct SchemeConfig
{
    SchemeKind kind = SchemeKind::Drcat;
    std::uint32_t numCounters = 64;  //!< M (SCA/CAT) or cache capacity
    std::uint32_t maxLevels = 11;    //!< L (CAT only)
    std::uint32_t threshold = 32768; //!< refresh threshold T
    double praProbability = 0.002;   //!< p (PRA only)
    std::uint32_t cacheWays = 8;     //!< counter-cache associativity
    std::uint32_t rfmBudget = 64;    //!< ACTs per RFM command (RAAIMT)
    std::uint64_t seed = 1;          //!< PRNG seed (PRA only)
    bool lfsrPrng = false;           //!< use the cheap LFSR for PRA
    /**
     * Custom CAT split-threshold schedule (size maxLevels, last entry
     * == threshold); empty selects the paper's Section IV-D schedule.
     * Used by ablation studies; ExperimentRunner co-scales a custom
     * schedule with the refresh threshold.
     */
    std::vector<std::uint32_t> splitThresholds;
    /** Counter-cache victim selection; Legacy is the frozen default. */
    EvictionPolicyKind evictionPolicy = EvictionPolicyKind::Legacy;
    /**
     * CAT counter-pool sharing: 0 or 1 keeps the paper's private
     * per-bank pools; k > 1 shares one pool of k x numCounters
     * counters among each group of k consecutive banks (set it to the
     * geometry's banksPerRank for per-rank pools).  Only honoured by
     * makeBankSchemes - building a single pooled instance through
     * makeScheme is a configuration error.
     */
    std::uint32_t banksPerPool = 0;
    /**
     * CAT bundling width for makeBankSchemes: how many consecutive
     * banks share one structure-of-arrays TreeBundle (see
     * core/tree_bundle.hpp).  0 picks the default (the pool group for
     * pooled configs, kDefaultBundleWidth otherwise); 1 builds
     * standalone per-bank trees (the pre-bundle construction, kept for
     * differential tests); pooled configs require the bundle to cover
     * the whole pool group, so values other than 0, 1 and banksPerPool
     * are rejected there.  Purely an execution-layout knob - results
     * are bit-identical for every width.
     */
    std::uint32_t bundleWidth = 0;

    /** Human-readable label, e.g. "DRCAT_64". */
    std::string label() const;

    /**
     * Read the scheme keys of the key=value surface: scheme=,
     * counters=, levels=, threshold=, p=, lfsr=, ways=, rfmbudget=,
     * schemeseed=, policy= (alias eviction=), pool= (alias
     * bankspool=), bundle=.  Missing keys keep the paper defaults
     * above.
     */
    static SchemeConfig parse(const Config &cfg);

    /**
     * Canonical scheme keys, defaults omitted; parse(format())
     * reproduces this config (custom splitThresholds excepted - they
     * have no key).
     */
    std::string format() const;
};

/** Default CAT bundle width (banks per arena) for bundleWidth = 0. */
constexpr std::uint32_t kDefaultBundleWidth = 16;

/** Parse "none|sca|pra|prcat|drcat|cc|mg|rfm" (case-insensitive). */
SchemeKind parseSchemeKind(const std::string &name);

/** Canonical scheme key, e.g. "drcat" (parseSchemeKind's inverse). */
const char *schemeKindName(SchemeKind kind);

/**
 * Build one per-bank scheme instance; returns nullptr for
 * SchemeKind::None.  Fatal when the config asks for a shared counter
 * pool (banksPerPool > 1) - a single instance cannot share.
 */
std::unique_ptr<MitigationScheme> makeScheme(const SchemeConfig &config,
                                             RowAddr num_rows);

/**
 * Build the scheme instances for @p num_banks banks (flat bank order;
 * entry b is bank b's scheme, or nullptr for SchemeKind::None).  Each
 * bank's config derives its seed exactly as the historical per-bank
 * loops did (seed * 1000003 + GLOBAL bank index, where the global
 * index is first_bank + b), so per-bank construction is byte-identical
 * to calling makeScheme in a loop - and a shard building banks
 * [first_bank, first_bank + num_banks) gets the same instances the
 * whole-topology call would.  With config.banksPerPool = k > 1 and a
 * CAT-family kind, each group of k consecutive banks (a rank, when
 * k = banksPerRank) shares one SharedCounterPool of k x numCounters
 * counters; the pool's lifetime is tied to the returned schemes, and
 * first_bank must be a multiple of k (fatal otherwise) so shard
 * boundaries never split a pool group.
 */
std::vector<std::unique_ptr<MitigationScheme>> makeBankSchemes(
    const SchemeConfig &config, RowAddr num_rows,
    std::uint32_t num_banks, std::uint32_t first_bank = 0);

} // namespace catsim

#endif // CATSIM_CORE_FACTORY_HPP
