/**
 * @file
 * Construction of mitigation schemes by name, used by the simulators,
 * bench binaries and examples.
 */

#ifndef CATSIM_CORE_FACTORY_HPP
#define CATSIM_CORE_FACTORY_HPP

#include <memory>
#include <string>
#include <vector>

#include "core/mitigation.hpp"

namespace catsim
{

/** Which mitigation scheme to build. */
enum class SchemeKind
{
    None,  //!< no mitigation (baseline runs)
    Sca,
    Pra,
    Prcat,
    Drcat,
    CounterCache,
};

/** Parameters shared by all schemes; unused fields are ignored. */
struct SchemeConfig
{
    SchemeKind kind = SchemeKind::Drcat;
    std::uint32_t numCounters = 64;  //!< M (SCA/CAT) or cache capacity
    std::uint32_t maxLevels = 11;    //!< L (CAT only)
    std::uint32_t threshold = 32768; //!< refresh threshold T
    double praProbability = 0.002;   //!< p (PRA only)
    std::uint32_t cacheWays = 8;     //!< counter-cache associativity
    std::uint64_t seed = 1;          //!< PRNG seed (PRA only)
    bool lfsrPrng = false;           //!< use the cheap LFSR for PRA
    /**
     * Custom CAT split-threshold schedule (size maxLevels, last entry
     * == threshold); empty selects the paper's Section IV-D schedule.
     * Used by ablation studies; ExperimentRunner co-scales a custom
     * schedule with the refresh threshold.
     */
    std::vector<std::uint32_t> splitThresholds;

    /** Human-readable label, e.g. "DRCAT_64". */
    std::string label() const;
};

/** Parse "none|sca|pra|prcat|drcat|cc" (case-insensitive). */
SchemeKind parseSchemeKind(const std::string &name);

/**
 * Build one per-bank scheme instance; returns nullptr for
 * SchemeKind::None.
 */
std::unique_ptr<MitigationScheme> makeScheme(const SchemeConfig &config,
                                             RowAddr num_rows);

} // namespace catsim

#endif // CATSIM_CORE_FACTORY_HPP
