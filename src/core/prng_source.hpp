/**
 * @file
 * Random-bit sources for PRA.
 *
 * The paper's reliability analysis (Section III-A) holds only when PRA
 * draws from a true/high-quality PRNG; a cheap LFSR-based PRNG produces
 * correlated decisions and ruins unsurvivability.  Both are modeled so
 * the Monte-Carlo study in src/reliability can contrast them.
 */

#ifndef CATSIM_CORE_PRNG_SOURCE_HPP
#define CATSIM_CORE_PRNG_SOURCE_HPP

#include <cstdint>
#include <memory>

#include "common/lfsr.hpp"
#include "common/rng.hpp"

namespace catsim
{

/** Abstract n-bit random word source. */
class PrngSource
{
  public:
    virtual ~PrngSource() = default;

    /** Produce an n-bit word (n <= 32). */
    virtual std::uint32_t nextBits(unsigned n) = 0;

    /** Human-readable kind for reports. */
    virtual const char *kind() const = 0;
};

/**
 * High-quality generator modeling the all-digital true RNG of
 * Srinivasan et al. (VLSIC 2010) that the paper assumes for PRA.
 */
class TruePrng : public PrngSource
{
  public:
    explicit TruePrng(std::uint64_t seed = 0x9E3779B9u) : rng_(seed) {}

    std::uint32_t
    nextBits(unsigned n) override
    {
        return static_cast<std::uint32_t>(rng_.next()
                                          >> (64u - (n ? n : 1u)));
    }

    const char *kind() const override { return "true-prng"; }

  private:
    Xoshiro256StarStar rng_;
};

/** Cheap LFSR-based generator (Section III-A Monte-Carlo study). */
class LfsrPrng : public PrngSource
{
  public:
    explicit LfsrPrng(unsigned width = 16, std::uint64_t seed = 0xACE1u)
        : lfsr_(width, seed)
    {
    }

    std::uint32_t
    nextBits(unsigned n) override
    {
        return static_cast<std::uint32_t>(lfsr_.nextBits(n));
    }

    const char *kind() const override { return "lfsr-prng"; }

  private:
    Lfsr lfsr_;
};

} // namespace catsim

#endif // CATSIM_CORE_PRNG_SOURCE_HPP
