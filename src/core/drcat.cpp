#include "drcat.hpp"

namespace catsim
{

Drcat::Drcat(RowAddr num_rows, std::uint32_t num_counters,
             std::uint32_t max_levels, std::uint32_t threshold,
             std::vector<std::uint32_t> split_thresholds,
             std::shared_ptr<SharedCounterPool> pool)
    : Prcat(num_rows, num_counters, max_levels, threshold, true,
            std::move(split_thresholds), std::move(pool))
{
}

void
Drcat::onEpoch()
{
    // Retention refresh clears disturbance, so the counts restart, but
    // the learned tree shape and weights survive - that is the point of
    // DRCAT.  Counter values are conservative upper bounds, so leaving
    // them would only cause early refreshes; the paper resets counts at
    // the epoch because the 64 ms retention refresh rewrites every row.
    tree_.resetCountsOnly();
    ++stats_.epochResets;
}

std::string
Drcat::name() const
{
    return treeLabel("DRCAT");
}

} // namespace catsim
