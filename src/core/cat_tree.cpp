#include "cat_tree.hpp"

#include <algorithm>

#include "common/bit.hpp"
#include "common/logging.hpp"
#include "core/shared_pool.hpp"

namespace catsim
{

CatTree::CatTree(Params params) : params_(std::move(params))
{
    const auto M = params_.numCounters;
    const auto L = params_.maxLevels;
    if (M < 2)
        CATSIM_FATAL("CAT needs at least 2 counters, got ", M);
    if (!isPow2(params_.numRows))
        CATSIM_FATAL("CAT rows must be a power of two, got ",
                     params_.numRows);
    // The initial balanced shape is defined by presplitCounters (the
    // per-bank nominal M when a rank-shared pool raises the capacity),
    // which defaults to the capacity itself.
    const std::uint32_t shapeM =
        params_.presplitCounters ? params_.presplitCounters : M;
    if (shapeM < 2 || shapeM > M)
        CATSIM_FATAL("CAT pre-split counters (", shapeM,
                     ") must be in [2, M=", M, "]");
    // ceil(log2(shapeM)): the depth budget the initial shape needs one
    // level of growth beyond (identical to log2(M) for a power of two).
    const std::uint32_t cl2 = ceilLog2(shapeM);
    if (L < cl2 + 1)
        CATSIM_FATAL("CAT levels L=", L, " must exceed ceil(log2(M))=",
                     cl2);
    if (params_.numRows < (1u << (L - 1)))
        CATSIM_FATAL("CAT needs at least 2^(L-1) rows; got ",
                     params_.numRows, " for L=", L);
    if (params_.splitThresholds.size() != L)
        CATSIM_FATAL("CAT needs one split threshold per level (", L,
                     "), got ", params_.splitThresholds.size());
    if (params_.splitThresholds.back() != params_.refreshThreshold)
        CATSIM_FATAL("last split threshold must equal the refresh "
                     "threshold");
    // A split threshold above T would let a group count past the
    // refresh threshold without refreshing (the split branch only
    // takes thr < T), silently weakening the protection; reject it
    // here rather than letting custom schedules through.
    for (const std::uint32_t t : params_.splitThresholds)
        if (t > params_.refreshThreshold)
            CATSIM_FATAL("split threshold ", t, " exceeds the refresh "
                         "threshold ", params_.refreshThreshold);

    // P = floor(shapeM/2) initial leaves; a non-power-of-two P puts
    // the (P - 2^d) lowest-address prefixes one level deeper than
    // d = floor(log2 P) (uneven deepest pre-split level).
    presplitLeaves_ = shapeM / 2;
    presplitDepth_ = floorLog2(presplitLeaves_);
    presplitExtra_ = presplitLeaves_ - (1u << presplitDepth_);
    rowBits_ = floorLog2(params_.numRows);
    jumpShift_ = rowBits_ - presplitDepth_;
    pool_ = params_.sharedPool;
    reset();
}

CatTree::~CatTree()
{
    if (pool_ != nullptr)
        pool_->release(poolHeld_);
}

void
CatTree::reset()
{
    const auto M = params_.numCounters;
    slots_.assign(2 * (M - 1), 0);
    quad_.assign(4 * (M - 1), 0);
    inodeParent_.assign(M - 1, kNone);
    inodeParentRight_.assign(M - 1, false);
    inodeInUse_.assign(M - 1, false);
    inodeDepth_.assign(M - 1, 0);
    inodeLo_.assign(M - 1, 0);
    candWords_.assign((M - 1 + 63) / 64, 0);
    counts_.assign(M, 0);
    counterDepth_.assign(M, 0);
    counterParent_.assign(M, kNone);
    counterSide_.assign(M, 0);
    weightStored_.assign(M, 0);
    weightTouch_.assign(M, 0);
    refreshOrdinal_ = 0;
    counterInUse_.assign(M, false);
    freeCounters_.clear();
    freeInodes_.clear();
    for (std::uint32_t i = M; i-- > 1;)
        freeCounters_.push_back(i);
    for (std::uint32_t i = M - 1; i-- > 0;)
        freeInodes_.push_back(i);

    rootPtr_ = 0;
    rootIsLeaf_ = true;
    activeCounters_ = 1;
    counterInUse_[0] = true;
    // Sized before presplit: an uneven pre-split splits leaves AT the
    // jump depth, and splitLeaf mirrors those into the jump table
    // (rebuildJumpTable below recomputes every entry regardless).
    jump_.assign(std::size_t{1} << presplitDepth_, 0);

    if (pool_ != nullptr) {
        // Re-baseline the pool charge: everything this tree held goes
        // back, then the root counter is taken again (presplit charges
        // the other initial leaves through allocCounter).
        pool_->release(poolHeld_);
        poolHeld_ = 0;
        if (!pool_->tryAcquire())
            CATSIM_FATAL("shared counter pool (capacity ",
                         pool_->capacity(),
                         ") cannot cover the initial trees");
        poolHeld_ = 1;
    }

    presplit(kNone, false, 0, 0, 0);
    rebuildJumpTable();
    updateCanGrow();
}

void
CatTree::resetCountsOnly()
{
    std::fill(counts_.begin(), counts_.end(), 0);
}

void
CatTree::presplit(std::uint32_t parent, bool right, std::uint32_t counter,
                  std::uint32_t depth, RowAddr lo)
{
    // The subtree's target depth is read off its lowest prefix: the
    // deeper prefixes are the lowest-address ones, so the first prefix
    // under a subtree carries its maximum (and the split below is
    // needed exactly when the subtree contains any deeper target).
    if (depth >= presplitTargetDepth(lo))
        return;
    Walk w;
    w.counter = counter;
    w.parent = parent;
    w.parentRight = right;
    w.depth = depth;
    w.lo = lo;
    const std::uint32_t nc = allocCounter();
    const std::uint32_t ni = allocInode();
    splitLeaf(w, nc, ni);
    const RowAddr half = (params_.numRows >> depth) / 2;
    presplit(ni, false, counter, depth + 1, lo);
    presplit(ni, true, nc, depth + 1, lo + half);
}

void
CatTree::rebuildJumpTable()
{
    const std::uint32_t entries = 1u << presplitDepth_;
    jump_.assign(entries, 0);
    for (std::uint32_t prefix = 0; prefix < entries; ++prefix) {
        std::uint32_t cur = pack(rootPtr_, rootIsLeaf_);
        for (std::uint32_t d = 0; d < presplitDepth_; ++d) {
            const std::uint32_t s =
                (prefix >> (presplitDepth_ - 1 - d)) & 1u;
            cur = slots_[2 * slotNode(cur) + s];
        }
        jump_[prefix] = cur;
    }
}

std::uint32_t
CatTree::allocCounter()
{
    if (freeCounters_.empty())
        CATSIM_PANIC("CAT counter free list exhausted");
    if (pool_ != nullptr) {
        // Growth paths check pool availability up front, so a failed
        // acquire can only mean the pool cannot cover the pre-split
        // trees of its banks - a configuration error.
        if (!pool_->tryAcquire())
            CATSIM_FATAL("shared counter pool (capacity ",
                         pool_->capacity(),
                         ") cannot cover the banks' initial trees");
        ++poolHeld_;
    }
    const std::uint32_t c = freeCounters_.back();
    freeCounters_.pop_back();
    updateCanGrow();
    counterInUse_[c] = true;
    return c;
}

std::uint32_t
CatTree::allocInode()
{
    if (freeInodes_.empty())
        CATSIM_PANIC("CAT intermediate-node free list exhausted");
    const std::uint32_t i = freeInodes_.back();
    freeInodes_.pop_back();
    updateCanGrow();
    inodeInUse_[i] = true;
    return i;
}

CatTree::Walk
CatTree::walkTo(RowAddr row) const
{
    // leafSlotFor jumps straight to the node at the pre-split depth
    // (the balanced lambda-level prefix is immutable, Section IV-C)
    // and then descends TWO levels per load through the quad table;
    // the two row-address bits at the current depth pick the entry,
    // the slot's low bit says leaf.  An inode slot has low bit 0, so
    // 2*cur is its own quad base.  When the left of the two levels
    // already ends in a leaf the entry is absorbed (both b2 values
    // hold the leaf), which is why the loop carries no depth/parent
    // bookkeeping: those come from the per-leaf tables here.  The b2
    // shift is masked so the final-level read (bitPos == 0) stays
    // defined; it then selects between two identical absorbed entries.
    return walkFromCounter(slotNode(leafSlotFor(row)), row);
}

CatTree::Walk
CatTree::walkFromCounter(std::uint32_t counter, RowAddr row) const
{
    Walk w;
    w.counter = counter;
    w.depth = counterDepth_[counter];
    w.parent = counterParent_[counter];
    w.parentRight = counterSide_[counter] != 0;
    const RowAddr span = params_.numRows >> w.depth;
    w.lo = row & ~(span - 1);
    w.hi = w.lo + span - 1;
    return w;
}

void
CatTree::setChildSlot(std::uint32_t inode, bool right,
                      std::uint32_t slot)
{
    slots_[2 * inode + right] = slot;
    // Mirror into this node's own quad half...
    const std::uint32_t base = 4 * inode + 2 * right;
    if (isLeafSlot(slot)) {
        quad_[base] = slot;
        quad_[base + 1] = slot;
    } else {
        quad_[base] = slots_[2 * slotNode(slot)];
        quad_[base + 1] = slots_[2 * slotNode(slot) + 1];
    }
    // ...and into the parent entry that routes through this node.
    const std::uint32_t up = inodeParent_[inode];
    if (up != kNone)
        quad_[4 * up + 2 * inodeParentRight_[inode] + right] = slot;
}

void
CatTree::splitLeaf(const Walk &w, std::uint32_t new_counter,
                   std::uint32_t new_inode)
{
    inodeParent_[new_inode] = w.parent;
    inodeParentRight_[new_inode] = w.parentRight;
    inodeDepth_[new_inode] = w.depth;
    inodeLo_[new_inode] = w.lo;
    setChildSlot(new_inode, false, pack(w.counter, true));
    setChildSlot(new_inode, true, pack(new_counter, true));
    counterDepth_[w.counter] = w.depth + 1;
    counterParent_[w.counter] = new_inode;
    counterSide_[w.counter] = 0;
    counterDepth_[new_counter] = w.depth + 1;
    counterParent_[new_counter] = new_inode;
    counterSide_[new_counter] = 1;

    // Clone the count: both halves inherit the parent's history, which
    // keeps the scheme conservative (no victim can be undercounted).
    counts_[new_counter] = counts_[w.counter];
    weightStored_[new_counter] = weightStored_[w.counter];
    weightTouch_[new_counter] = weightTouch_[w.counter];

    if (w.parent == kNone) {
        rootPtr_ = new_inode;
        rootIsLeaf_ = false;
    } else {
        setChildSlot(w.parent, w.parentRight, pack(new_inode, false));
        candClear(w.parent);
    }
    if (w.depth >= presplitDepth_) {
        candSet(new_inode);
        // A node at exactly the pre-split depth is a jump-table entry.
        if (w.depth == presplitDepth_)
            jump_[w.lo >> jumpShift_] = pack(new_inode, false);
    }
    ++activeCounters_;
}

std::uint32_t
CatTree::thresholdAt(std::uint32_t depth) const
{
    return params_.splitThresholds[std::min<std::size_t>(
        depth, params_.splitThresholds.size() - 1)];
}

CatTree::AccessResult
CatTree::access(RowAddr row)
{
    if (row >= params_.numRows)
        CATSIM_PANIC("row ", row, " out of range");

    // Fast path: resolve the counter and its depth only; the full Walk
    // (parent link, covered range) is materialized from the per-leaf
    // tables below, and only when a split or refresh actually needs it.
    const std::uint32_t counter = slotNode(leafSlotFor(row));
    const std::uint32_t depth = counterDepth_[counter];
    AccessResult res;
    res.leafDepth = depth;
    // The jump replaces the pre-split levels; the remaining descent
    // costs one access per level, the counter a read and a write
    // (Section IV-C).  A rank-pooled tree pays one more per activation
    // for the bank-select into the shared array (DESIGN.md Section 9).
    res.sramAccesses = (depth - presplitDepth_) + 2
                       + (pool_ != nullptr ? 1u : 0u);

    // depth < rowBits_ <=> the group spans more than one row.  Growth
    // additionally needs a free counter in the rank pool when one is
    // attached; the pool can change between this bank's activations
    // (other banks allocate from it), so it is consulted live instead
    // of being folded into the cached canGrow_.
    const bool splittable =
        depth + 1 < params_.maxLevels && depth < rowBits_ && canGrow_
        && (pool_ == nullptr || pool_->available() != 0);
    const std::uint32_t thr = splittable
        ? thresholdAt(depth)
        : params_.refreshThreshold;

    if (counts_[counter] < thr) {
        ++counts_[counter];
        return res;
    }

    const Walk w = walkFromCounter(counter, row);

    if (splittable && thr < params_.refreshThreshold) {
        const std::uint32_t nc = allocCounter();
        const std::uint32_t ni = allocInode();
        splitLeaf(w, nc, ni);
        ++splits_;
        res.didSplit = true;
        if (pool_ != nullptr)
            ++res.sramAccesses; // shared free-list update
        return res;
    }

    // Refresh the whole group plus the two rows adjacent to it.
    counts_[w.counter] = 0;
    std::int64_t lo = static_cast<std::int64_t>(w.lo) - 1;
    std::int64_t hi = static_cast<std::int64_t>(w.hi) + 1;
    lo = std::max<std::int64_t>(lo, 0);
    hi = std::min<std::int64_t>(hi,
                                static_cast<std::int64_t>(params_.numRows)
                                    - 1);
    res.refreshed = true;
    res.lo = static_cast<RowAddr>(lo);
    res.hi = static_cast<RowAddr>(hi);
    res.rowsRefreshed = static_cast<Count>(hi - lo + 1);

    if (params_.enableWeights) {
        // Architecturally every other in-use counter's weight drops by
        // one here; the lazy scheme does it by advancing the global
        // ordinal instead (the hot counter escapes the decrement by
        // being restamped above the bump).
        std::uint32_t hotW = materializedWeight(w.counter);
        if (hotW < 3)
            ++hotW;
        ++refreshOrdinal_;
        setWeight(w.counter, static_cast<std::uint8_t>(hotW));
        if (hotW == 3) {
            res.didReconfigure = tryReconfigure(w);
            if (res.didReconfigure && pool_ != nullptr)
                ++res.sramAccesses; // shared free-list update
        }
    }
    return res;
}

bool
CatTree::tryReconfigure(const Walk &hot)
{
    // Can the hot leaf be subdivided at all?
    if (hot.depth + 1 >= params_.maxLevels || hot.lo >= hot.hi)
        return false;

    // Step 1 (Fig 7): find an intermediate node whose children are
    // both cold leaf counters (weight zero).  The candidate bitset
    // already encodes "both children are leaves, at or below the
    // pre-split level" - nodes above it are never merged, since the
    // lambda-level balanced prefix is what allows direct SRAM indexing
    // (Section IV-C) - so only the weight check runs here, lowest
    // index first to match the historical scan order.
    std::uint32_t cand = kNone;
    for (std::size_t wi = 0; wi < candWords_.size() && cand == kNone;
         ++wi) {
        std::uint64_t word = candWords_[wi];
        while (word) {
            const std::uint32_t i =
                static_cast<std::uint32_t>(wi * 64) + ctz64(word);
            if (materializedWeight(slotNode(slots_[2 * i])) == 0
                && materializedWeight(slotNode(slots_[2 * i + 1]))
                       == 0) {
                cand = i;
                break;
            }
            word &= word - 1;
        }
    }
    if (cand == kNone)
        return false;

    // Merge: keep the child with the larger count so the merged group
    // can never undercount, free the other counter and the node.
    const std::uint32_t l = slotNode(slots_[2 * cand]);
    const std::uint32_t r = slotNode(slots_[2 * cand + 1]);
    const std::uint32_t keep = counts_[l] >= counts_[r] ? l : r;
    const std::uint32_t drop = keep == l ? r : l;
    counts_[keep] = std::max(counts_[l], counts_[r]);

    const std::uint32_t parent = inodeParent_[cand];
    const bool side = inodeParentRight_[cand];
    if (parent == kNone) {
        rootPtr_ = keep;
        rootIsLeaf_ = true;
    } else {
        setChildSlot(parent, side, pack(keep, true));
        if (isLeafSlot(slots_[2 * parent])
            && isLeafSlot(slots_[2 * parent + 1])
            && inodeDepth_[parent] >= presplitDepth_)
            candSet(parent);
    }
    counterDepth_[keep] = inodeDepth_[cand];
    counterParent_[keep] = parent;
    counterSide_[keep] = side;
    if (inodeDepth_[cand] == presplitDepth_)
        jump_[inodeLo_[cand] >> jumpShift_] = pack(keep, true);
    candClear(cand);
    inodeInUse_[cand] = false;
    freeInodes_.push_back(cand);
    counterInUse_[drop] = false;
    setWeight(drop, 0);
    counts_[drop] = 0;
    freeCounters_.push_back(drop);
    if (pool_ != nullptr) {
        // The freed counter goes back to the rank before the split
        // below re-acquires it, so a full pool still reconfigures.
        pool_->release(1);
        --poolHeld_;
    }
    updateCanGrow();
    --activeCounters_;
    ++merges_;

    // Step 2: split the hot leaf with the freed counter.  The hot
    // leaf's parent slot is untouched by the merge (the hot counter has
    // weight 3, so it cannot have been a child of `cand`).
    const std::uint32_t nc = allocCounter();
    const std::uint32_t ni = allocInode();
    splitLeaf(hot, nc, ni);
    ++splits_;

    // Step 3: newly split counters keep weight 1 so they are neither
    // immediately re-split nor immediately merged back.
    setWeight(hot.counter, 1);
    setWeight(nc, 1);
    return true;
}

std::uint32_t
CatTree::leafDepth(RowAddr row) const
{
    return walkTo(row).depth;
}

std::uint32_t
CatTree::counterValue(RowAddr row) const
{
    return counts_[walkTo(row).counter];
}

std::pair<RowAddr, RowAddr>
CatTree::leafRange(RowAddr row) const
{
    const Walk w = walkTo(row);
    return {w.lo, w.hi};
}

std::uint32_t
CatTree::leafWeight(RowAddr row) const
{
    return materializedWeight(walkTo(row).counter);
}

std::uint32_t
CatTree::maxLeafDepth() const
{
    std::uint32_t best = 0;
    // Iterative DFS over packed (slot, depth).
    struct Item
    {
        std::uint32_t slot;
        std::uint32_t depth;
    };
    std::vector<Item> stack{{pack(rootPtr_, rootIsLeaf_), 0}};
    while (!stack.empty()) {
        const Item it = stack.back();
        stack.pop_back();
        if (isLeafSlot(it.slot)) {
            best = std::max(best, it.depth);
            continue;
        }
        const std::uint32_t nd = slotNode(it.slot);
        stack.push_back({slots_[2 * nd], it.depth + 1});
        stack.push_back({slots_[2 * nd + 1], it.depth + 1});
    }
    return best;
}

bool
CatTree::walkInvariants(std::uint32_t slot, RowAddr lo, RowAddr hi,
                        std::uint32_t depth, std::uint32_t parent,
                        bool right, std::vector<bool> &seen_counters,
                        std::vector<bool> &seen_inodes,
                        std::string *why) const
{
    auto fail = [&](const std::string &msg) {
        if (why)
            *why = msg;
        return false;
    };

    if (depth >= params_.maxLevels)
        return fail("node deeper than L-1");
    if (lo > hi)
        return fail("empty row range");

    if (isLeafSlot(slot)) {
        const std::uint32_t ptr = slotNode(slot);
        if (ptr >= params_.numCounters)
            return fail("leaf pointer out of range");
        if (depth < presplitDepth_)
            return fail("leaf above the pre-split level");
        if (seen_counters[ptr])
            return fail("counter reached twice");
        if (!counterInUse_[ptr])
            return fail("leaf references a free counter");
        seen_counters[ptr] = true;
        if (counterDepth_[ptr] != depth)
            return fail("stored leaf depth disagrees with the tree");
        if (counterParent_[ptr] != parent
            || (counterSide_[ptr] != 0) != right)
            return fail("stored leaf parent disagrees with the tree");
        if (counts_[ptr] > params_.refreshThreshold)
            return fail("count exceeds refresh threshold");
        if (weightStored_[ptr] > 3)
            return fail("stored weight exceeds 2-bit range");
        if (weightTouch_[ptr] > refreshOrdinal_)
            return fail("weight stamped after the current ordinal");
        if (!params_.enableWeights && materializedWeight(ptr) != 0)
            return fail("weights used without DRCAT mode");
        // Brute-force hot-path oracle: the jump+quad lookup must land
        // on exactly this leaf for the corner rows of its range (the
        // recursive descent above is the ground truth).  This is what
        // pins the uneven non-power-of-two pre-split shapes, where the
        // jump table mixes leaf and inode entries.
        if (leafSlotFor(lo) != slot || leafSlotFor(hi) != slot
            || leafSlotFor(lo + (hi - lo) / 2) != slot)
            return fail("leafSlotFor disagrees with the tree walk");
        return true;
    }

    const std::uint32_t ptr = slotNode(slot);
    if (ptr + 1 >= params_.numCounters)
        return fail("inode pointer out of range");
    if (seen_inodes[ptr])
        return fail("inode reached twice");
    if (!inodeInUse_[ptr])
        return fail("tree references a free inode");
    seen_inodes[ptr] = true;

    if (inodeDepth_[ptr] != depth)
        return fail("stored inode depth disagrees with the tree");
    if (inodeLo_[ptr] != lo)
        return fail("stored inode range disagrees with the tree");
    if (inodeParent_[ptr] != parent
        || (parent != kNone
            && static_cast<bool>(inodeParentRight_[ptr]) != right))
        return fail("inode parent link disagrees with the tree");

    const std::uint32_t ls = slots_[2 * ptr];
    const std::uint32_t rs = slots_[2 * ptr + 1];
    // The quad half behind each child must match: absorbed copies of a
    // leaf child, or the child inode's own slots.
    for (int b = 0; b < 2; ++b) {
        const std::uint32_t child = b ? rs : ls;
        const std::uint32_t q0 = quad_[4 * ptr + 2 * b];
        const std::uint32_t q1 = quad_[4 * ptr + 2 * b + 1];
        if (isLeafSlot(child)) {
            if (q0 != child || q1 != child)
                return fail("quad entry not absorbed at a leaf child");
        } else {
            if (q0 != slots_[2 * slotNode(child)]
                || q1 != slots_[2 * slotNode(child) + 1])
                return fail("quad entry disagrees with grandchild");
        }
    }
    const bool structuralCand = isLeafSlot(ls) && isLeafSlot(rs)
                                && depth >= presplitDepth_;
    if (candGet(ptr) != structuralCand)
        return fail("merge-candidate bit disagrees with the tree");

    const RowAddr mid = lo + (hi - lo) / 2;
    return walkInvariants(ls, lo, mid, depth + 1, ptr, false,
                          seen_counters, seen_inodes, why)
           && walkInvariants(rs, mid + 1, hi, depth + 1, ptr, true,
                             seen_counters, seen_inodes, why);
}

bool
CatTree::checkInvariants(std::string *why) const
{
    auto fail = [&](const std::string &msg) {
        if (why)
            *why = msg;
        return false;
    };

    const std::uint32_t numInodes = params_.numCounters - 1;
    std::vector<bool> seenCounters(params_.numCounters, false);
    std::vector<bool> seenInodes(numInodes, false);
    if (!rootIsLeaf_ && inodeParent_[rootPtr_] != kNone)
        return fail("root has a parent link");
    if (!walkInvariants(pack(rootPtr_, rootIsLeaf_), 0,
                        params_.numRows - 1, 0, kNone, false,
                        seenCounters, seenInodes, why))
        return false;

    std::uint32_t leaves = 0;
    for (std::uint32_t c = 0; c < params_.numCounters; ++c) {
        if (seenCounters[c] != counterInUse_[c])
            return fail("counterInUse inconsistent with tree");
        if (seenCounters[c])
            ++leaves;
    }
    if (leaves != activeCounters_)
        return fail("activeCounters does not match leaf count");
    if (leaves + freeCounters_.size() != params_.numCounters)
        return fail("counter free list inconsistent");

    std::uint32_t used = 0;
    for (std::uint32_t i = 0; i < numInodes; ++i) {
        if (seenInodes[i] != inodeInUse_[i])
            return fail("inodeInUse inconsistent with tree");
        if (!seenInodes[i] && candGet(i))
            return fail("free inode still flagged as merge candidate");
        if (seenInodes[i])
            ++used;
    }
    if (used + freeInodes_.size() != numInodes)
        return fail("inode free list inconsistent");
    if (used != leaves - 1 && !(rootIsLeaf_ && used == 0))
        return fail("binary tree shape violated (inodes != leaves-1)");
    if (pool_ != nullptr && poolHeld_ != activeCounters_)
        return fail("pool charge disagrees with active counters");

    // The jump table must match a from-the-root walk for every prefix.
    const std::uint32_t entries = 1u << presplitDepth_;
    for (std::uint32_t prefix = 0; prefix < entries; ++prefix) {
        std::uint32_t cur = pack(rootPtr_, rootIsLeaf_);
        for (std::uint32_t d = 0; d < presplitDepth_; ++d) {
            if (isLeafSlot(cur))
                return fail("pre-split prefix broken by a merge");
            const std::uint32_t s =
                (prefix >> (presplitDepth_ - 1 - d)) & 1u;
            cur = slots_[2 * slotNode(cur) + s];
        }
        if (jump_[prefix] != cur)
            return fail("jump table disagrees with the tree");
    }
    return true;
}

} // namespace catsim
