/**
 * @file
 * PRCAT - Periodically Reset CAT (paper Section V-A).
 *
 * The adaptive tree is torn down and rebuilt at every auto-refresh
 * epoch (64 ms), so each retention interval starts from the balanced
 * pre-split shape and re-learns the access pattern.
 */

#ifndef CATSIM_CORE_PRCAT_HPP
#define CATSIM_CORE_PRCAT_HPP

#include "core/cat_tree.hpp"
#include "core/mitigation.hpp"

namespace catsim
{

/** CAT scheme with periodic full reset. */
class Prcat : public MitigationScheme
{
  public:
    /**
     * @param num_rows    Rows per bank (N).
     * @param num_counters Counters per bank (M, power of two).
     * @param max_levels  Maximum tree levels (L).
     * @param threshold   Refresh threshold (T).
     * @param split_thresholds Custom per-depth split schedule (size L,
     *        last == T); empty selects the paper's Section IV-D one.
     */
    Prcat(RowAddr num_rows, std::uint32_t num_counters,
          std::uint32_t max_levels, std::uint32_t threshold,
          std::vector<std::uint32_t> split_thresholds = {});

    RefreshAction onActivate(RowAddr row) override;
    void onActivateBatch(const RowAddr *rows,
                         std::size_t count) override;
    void onEpoch() override;
    std::string name() const override;

    const CatTree &tree() const { return tree_; }

  protected:
    Prcat(RowAddr num_rows, std::uint32_t num_counters,
          std::uint32_t max_levels, std::uint32_t threshold,
          bool enable_weights,
          std::vector<std::uint32_t> split_thresholds);

    CatTree tree_;

  private:
    static CatTree::Params
    makeParams(RowAddr num_rows, std::uint32_t num_counters,
               std::uint32_t max_levels, std::uint32_t threshold,
               bool enable_weights,
               std::vector<std::uint32_t> split_thresholds);
};

} // namespace catsim

#endif // CATSIM_CORE_PRCAT_HPP
