/**
 * @file
 * PRCAT - Periodically Reset CAT (paper Section V-A).
 *
 * The adaptive tree is torn down and rebuilt at every auto-refresh
 * epoch (64 ms), so each retention interval starts from the balanced
 * pre-split shape and re-learns the access pattern.
 */

#ifndef CATSIM_CORE_PRCAT_HPP
#define CATSIM_CORE_PRCAT_HPP

#include <memory>

#include "core/cat_tree.hpp"
#include "core/mitigation.hpp"
#include "core/shared_pool.hpp"

namespace catsim
{

/**
 * Canonical CatTree::Params for a per-bank CAT scheme: the paper's
 * Section IV-D split schedule when @p split_thresholds is empty, and
 * the rank-pool reshaping (capacity-wide numCounters, per-bank
 * presplitCounters) when @p pool is attached.  Prcat/Drcat and the
 * TreeBundle lanes all build their trees through this one function,
 * which is what makes bundle-backed and standalone construction
 * bit-identical.
 */
CatTree::Params makeCatTreeParams(
    RowAddr num_rows, std::uint32_t num_counters,
    std::uint32_t max_levels, std::uint32_t threshold,
    bool enable_weights, std::vector<std::uint32_t> split_thresholds,
    SharedCounterPool *pool);

/** CAT scheme with periodic full reset. */
class Prcat : public MitigationScheme
{
  public:
    /**
     * @param num_rows    Rows per bank (N).
     * @param num_counters Counters per bank (M >= 2, any value).
     * @param max_levels  Maximum tree levels (L).
     * @param threshold   Refresh threshold (T).
     * @param split_thresholds Custom per-depth split schedule (size L,
     *        last == T); empty selects the paper's Section IV-D one.
     * @param pool        Optional rank-shared counter budget: the tree
     *        keeps its per-bank pre-split shape (M) but can grow up to
     *        the pool's capacity as long as the pool has counters
     *        free.  Shared with the other banks of the rank; kept
     *        alive by every sharing scheme.
     */
    Prcat(RowAddr num_rows, std::uint32_t num_counters,
          std::uint32_t max_levels, std::uint32_t threshold,
          std::vector<std::uint32_t> split_thresholds = {},
          std::shared_ptr<SharedCounterPool> pool = nullptr);

    RefreshAction onActivate(RowAddr row) override;
    void onActivateBatch(const RowAddr *rows,
                         std::size_t count) override;
    void onEpoch() override;
    std::string name() const override;

    const CatTree &tree() const { return tree_; }

    /** The rank-shared counter budget; null for private pools. */
    const SharedCounterPool *sharedPool() const { return pool_.get(); }

  protected:
    Prcat(RowAddr num_rows, std::uint32_t num_counters,
          std::uint32_t max_levels, std::uint32_t threshold,
          bool enable_weights,
          std::vector<std::uint32_t> split_thresholds,
          std::shared_ptr<SharedCounterPool> pool);

    /** Per-bank M + optional rank suffix, e.g. "PRCAT_64_rank8". */
    std::string treeLabel(const char *prefix) const;

    // Declared before tree_: the tree's destructor releases its
    // counters into the pool, so the pool must be destroyed after it.
    std::shared_ptr<SharedCounterPool> pool_;
    CatTree tree_;
};

} // namespace catsim

#endif // CATSIM_CORE_PRCAT_HPP
