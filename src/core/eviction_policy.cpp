#include "eviction_policy.hpp"

#include "common/config.hpp"
#include "common/logging.hpp"
#include "core/prng_source.hpp"

namespace catsim
{

namespace
{

/**
 * The historical policy, frozen: scan ways ascending, remember the
 * LAST invalid way seen; while no invalid way has been seen yet, track
 * the least-recently-used valid way.  (Textbook LRU instead takes the
 * FIRST invalid way - the difference is observable once a set has
 * been warmed unevenly, which is why the legacy behaviour is pinned
 * here rather than "fixed".)
 */
class LegacyEviction : public EvictionPolicy
{
  public:
    std::uint32_t
    pickVictim(const CacheWayState *set, std::uint32_t ways) override
    {
        std::uint32_t victim = 0;
        for (std::uint32_t w = 0; w < ways; ++w) {
            if (!set[w].valid) {
                victim = w;
            } else if (set[victim].valid
                       && set[w].lastUse < set[victim].lastUse) {
                victim = w;
            }
        }
        return victim;
    }

    const char *name() const override { return "legacy"; }
};

class LruEviction : public EvictionPolicy
{
  public:
    std::uint32_t
    pickVictim(const CacheWayState *set, std::uint32_t ways) override
    {
        std::uint32_t victim = 0;
        for (std::uint32_t w = 0; w < ways; ++w) {
            if (!set[w].valid)
                return w;
            if (set[w].lastUse < set[victim].lastUse)
                victim = w;
        }
        return victim;
    }

    const char *name() const override { return "lru"; }
};

class LfuEviction : public EvictionPolicy
{
  public:
    std::uint32_t
    pickVictim(const CacheWayState *set, std::uint32_t ways) override
    {
        std::uint32_t victim = 0;
        for (std::uint32_t w = 0; w < ways; ++w) {
            if (!set[w].valid)
                return w;
            if (set[w].useCount < set[victim].useCount
                || (set[w].useCount == set[victim].useCount
                    && set[w].lastUse < set[victim].lastUse))
                victim = w;
        }
        return victim;
    }

    const char *name() const override { return "lfu"; }
};

class RandomEviction : public EvictionPolicy
{
  public:
    explicit RandomEviction(std::uint64_t seed) : prng_(seed) {}

    std::uint32_t
    pickVictim(const CacheWayState *set, std::uint32_t ways) override
    {
        for (std::uint32_t w = 0; w < ways; ++w)
            if (!set[w].valid)
                return w;
        bits_ += 16;
        return prng_.nextBits(16) % ways;
    }

    const char *name() const override { return "random"; }
    Count prngBits() const override { return bits_; }

  private:
    TruePrng prng_;
    Count bits_ = 0;
};

} // namespace

EvictionPolicyKind
parseEvictionPolicy(const std::string &name)
{
    const std::string s = asciiLower(name);
    if (s == "legacy" || s == "default")
        return EvictionPolicyKind::Legacy;
    if (s == "lru")
        return EvictionPolicyKind::Lru;
    if (s == "lfu")
        return EvictionPolicyKind::Lfu;
    if (s == "random")
        return EvictionPolicyKind::Random;
    CATSIM_FATAL("unknown eviction policy '", name,
                 "' (legacy|lru|lfu|random)");
}

const char *
evictionPolicyName(EvictionPolicyKind kind)
{
    switch (kind) {
      case EvictionPolicyKind::Legacy:
        return "legacy";
      case EvictionPolicyKind::Lru:
        return "lru";
      case EvictionPolicyKind::Lfu:
        return "lfu";
      case EvictionPolicyKind::Random:
        return "random";
    }
    CATSIM_PANIC("unreachable eviction policy kind");
}

std::unique_ptr<EvictionPolicy>
makeEvictionPolicy(EvictionPolicyKind kind, std::uint64_t seed)
{
    switch (kind) {
      case EvictionPolicyKind::Legacy:
        return std::make_unique<LegacyEviction>();
      case EvictionPolicyKind::Lru:
        return std::make_unique<LruEviction>();
      case EvictionPolicyKind::Lfu:
        return std::make_unique<LfuEviction>();
      case EvictionPolicyKind::Random:
        // Seed passed through untouched: Xoshiro seeds via SplitMix64
        // (zero is fine), and any masking would collapse the factory's
        // consecutive per-bank seeds onto shared streams.
        return std::make_unique<RandomEviction>(seed);
    }
    CATSIM_PANIC("unreachable eviction policy kind");
}

} // namespace catsim
