/**
 * @file
 * DRCAT - Dynamically Reconfigured CAT (paper Section V-B).
 *
 * Instead of resetting the tree every 64 ms, DRCAT keeps a 2-bit weight
 * per counter that tracks which groups keep triggering refreshes.  When
 * a weight saturates, a pair of cold sibling leaves is merged and the
 * freed counter subdivides the hot leaf, so the tree follows the
 * workload's hot spots across epochs and application phases.
 */

#ifndef CATSIM_CORE_DRCAT_HPP
#define CATSIM_CORE_DRCAT_HPP

#include "core/prcat.hpp"

namespace catsim
{

/** CAT scheme with weight-driven dynamic reconfiguration. */
class Drcat : public Prcat
{
  public:
    Drcat(RowAddr num_rows, std::uint32_t num_counters,
          std::uint32_t max_levels, std::uint32_t threshold,
          std::vector<std::uint32_t> split_thresholds = {},
          std::shared_ptr<SharedCounterPool> pool = nullptr);

    void onEpoch() override;
    std::string name() const override;
};

} // namespace catsim

#endif // CATSIM_CORE_DRCAT_HPP
