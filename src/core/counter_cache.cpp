#include "counter_cache.hpp"

#include "core/pra.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace catsim
{

CounterCache::CounterCache(RowAddr num_rows,
                           std::uint32_t cache_counters,
                           std::uint32_t ways, std::uint32_t threshold)
    : MitigationScheme(num_rows),
      cacheCounters_(cache_counters),
      ways_(ways),
      sets_(cache_counters / ways),
      threshold_(threshold),
      backing_(num_rows, 0)
{
    if (ways == 0 || cache_counters % ways != 0)
        CATSIM_FATAL("counter cache capacity (", cache_counters,
                     ") must be a multiple of ways (", ways, ")");
    lines_.assign(static_cast<std::size_t>(sets_) * ways_, Line{});
}

RefreshAction
CounterCache::onActivate(RowAddr row)
{
    ++stats_.activations;
    ++tick_;

    const std::uint32_t set = row % sets_;
    Line *base = &lines_[static_cast<std::size_t>(set) * ways_];

    Line *hit = nullptr;
    Line *victim = &base[0];
    for (std::uint32_t w = 0; w < ways_; ++w) {
        Line &ln = base[w];
        if (ln.valid && ln.tag == row) {
            hit = &ln;
            break;
        }
        if (!ln.valid) {
            victim = &ln;
        } else if (victim->valid && ln.lastUse < victim->lastUse) {
            victim = &ln;
        }
    }

    if (hit) {
        ++hits_;
        stats_.sramAccesses += 2; // tag+data read, data write
        hit->lastUse = tick_;
    } else {
        ++misses_;
        stats_.sramAccesses += 2;
        // Evict (write the old counter back to DRAM) and fill.
        if (victim->valid)
            ++stats_.counterDramWrites;
        ++stats_.counterDramReads;
        victim->tag = row;
        victim->valid = true;
        victim->lastUse = tick_;
    }

    if (++backing_[row] < threshold_)
        return {};

    backing_[row] = 0;
    // Exact tracking: refresh only the two physical neighbors.
    const RefreshAction act =
        neighborRefresh(row, numRows_, adjacency_);
    ++stats_.refreshEvents;
    stats_.victimRowsRefreshed += act.rowCount;
    return act;
}

void
CounterCache::onEpoch()
{
    std::fill(backing_.begin(), backing_.end(), 0);
}

std::string
CounterCache::name() const
{
    return "CC_" + std::to_string(cacheCounters_);
}

} // namespace catsim
