#include "counter_cache.hpp"

#include "core/pra.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace catsim
{

CounterCache::CounterCache(RowAddr num_rows,
                           std::uint32_t cache_counters,
                           std::uint32_t ways, std::uint32_t threshold,
                           std::unique_ptr<EvictionPolicy> policy)
    : MitigationScheme(num_rows),
      cacheCounters_(cache_counters),
      ways_(ways),
      sets_(cache_counters / ways),
      threshold_(threshold),
      policy_(policy ? std::move(policy)
                     : makeEvictionPolicy(EvictionPolicyKind::Legacy, 0)),
      backing_(num_rows, 0)
{
    if (ways == 0 || cache_counters % ways != 0)
        CATSIM_FATAL("counter cache capacity (", cache_counters,
                     ") must be a multiple of ways (", ways, ")");
    tags_.assign(static_cast<std::size_t>(sets_) * ways_, 0);
    meta_.assign(static_cast<std::size_t>(sets_) * ways_,
                 CacheWayState{});
}

RefreshAction
CounterCache::onActivate(RowAddr row)
{
    ++stats_.activations;
    ++tick_;

    const std::uint32_t set = row % sets_;
    const std::size_t base = static_cast<std::size_t>(set) * ways_;
    const RowAddr *tags = &tags_[base];
    CacheWayState *meta = &meta_[base];

    std::uint32_t hit = ways_;
    for (std::uint32_t w = 0; w < ways_; ++w) {
        if (meta[w].valid && tags[w] == row) {
            hit = w;
            break;
        }
    }

    if (hit != ways_) {
        ++hits_;
        stats_.sramAccesses += 2; // tag+data read, data write
        meta[hit].lastUse = tick_;
        ++meta[hit].useCount;
    } else {
        ++misses_;
        stats_.sramAccesses += 2;
        const std::uint32_t victim = policy_->pickVictim(meta, ways_);
        stats_.prngBits = policy_->prngBits();
        // Evict (write the old counter back to DRAM) and fill.
        if (meta[victim].valid)
            ++stats_.counterDramWrites;
        ++stats_.counterDramReads;
        tags_[base + victim] = row;
        meta[victim].valid = true;
        meta[victim].lastUse = tick_;
        meta[victim].useCount = 1;
    }

    if (++backing_[row] < threshold_)
        return {};

    backing_[row] = 0;
    // Exact tracking: refresh only the two physical neighbors.
    const RefreshAction act =
        neighborRefresh(row, numRows_, adjacency_);
    ++stats_.refreshEvents;
    stats_.victimRowsRefreshed += act.rowCount;
    return act;
}

void
CounterCache::onEpoch()
{
    std::fill(backing_.begin(), backing_.end(), 0);
}

std::string
CounterCache::name() const
{
    std::string n = "CC_" + std::to_string(cacheCounters_);
    if (std::string(policy_->name()) != "legacy")
        n += "_" + std::string(policy_->name());
    return n;
}

} // namespace catsim
