#include "prcat.hpp"

#include "core/split_thresholds.hpp"

namespace catsim
{

CatTree::Params
Prcat::makeParams(RowAddr num_rows, std::uint32_t num_counters,
                  std::uint32_t max_levels, std::uint32_t threshold,
                  bool enable_weights)
{
    CatTree::Params p;
    p.numRows = num_rows;
    p.numCounters = num_counters;
    p.maxLevels = max_levels;
    p.refreshThreshold = threshold;
    p.splitThresholds =
        computeSplitThresholds(num_counters, max_levels, threshold);
    p.enableWeights = enable_weights;
    return p;
}

Prcat::Prcat(RowAddr num_rows, std::uint32_t num_counters,
             std::uint32_t max_levels, std::uint32_t threshold)
    : Prcat(num_rows, num_counters, max_levels, threshold, false)
{
}

Prcat::Prcat(RowAddr num_rows, std::uint32_t num_counters,
             std::uint32_t max_levels, std::uint32_t threshold,
             bool enable_weights)
    : MitigationScheme(num_rows),
      tree_(makeParams(num_rows, num_counters, max_levels, threshold,
                       enable_weights))
{
}

RefreshAction
Prcat::onActivate(RowAddr row)
{
    ++stats_.activations;
    const auto r = tree_.access(row);
    stats_.sramAccesses += r.sramAccesses;
    if (r.didSplit)
        ++stats_.splits;
    if (r.didReconfigure)
        ++stats_.merges;
    if (!r.refreshed)
        return {};

    RefreshAction act;
    act.lo = r.lo;
    act.hi = r.hi;
    act.rowCount = r.rowsRefreshed;
    ++stats_.refreshEvents;
    stats_.victimRowsRefreshed += act.rowCount;
    return act;
}

void
Prcat::onEpoch()
{
    tree_.reset();
    ++stats_.epochResets;
}

std::string
Prcat::name() const
{
    return "PRCAT_" + std::to_string(tree_.params().numCounters);
}

} // namespace catsim
