#include "prcat.hpp"

#include "core/split_thresholds.hpp"

namespace catsim
{

CatTree::Params
makeCatTreeParams(RowAddr num_rows, std::uint32_t num_counters,
                  std::uint32_t max_levels, std::uint32_t threshold,
                  bool enable_weights,
                  std::vector<std::uint32_t> split_thresholds,
                  SharedCounterPool *pool)
{
    CatTree::Params p;
    p.numRows = num_rows;
    p.numCounters = num_counters;
    p.maxLevels = max_levels;
    p.refreshThreshold = threshold;
    p.splitThresholds = split_thresholds.empty()
        ? computeSplitThresholds(num_counters, max_levels, threshold)
        : std::move(split_thresholds);
    p.enableWeights = enable_weights;
    if (pool != nullptr) {
        // Rank-pooled tree: per-bank shape, pool-wide growth capacity.
        p.numCounters = pool->capacity();
        p.presplitCounters = num_counters;
        p.sharedPool = pool;
    }
    return p;
}

Prcat::Prcat(RowAddr num_rows, std::uint32_t num_counters,
             std::uint32_t max_levels, std::uint32_t threshold,
             std::vector<std::uint32_t> split_thresholds,
             std::shared_ptr<SharedCounterPool> pool)
    : Prcat(num_rows, num_counters, max_levels, threshold, false,
            std::move(split_thresholds), std::move(pool))
{
}

Prcat::Prcat(RowAddr num_rows, std::uint32_t num_counters,
             std::uint32_t max_levels, std::uint32_t threshold,
             bool enable_weights,
             std::vector<std::uint32_t> split_thresholds,
             std::shared_ptr<SharedCounterPool> pool)
    : MitigationScheme(num_rows),
      pool_(std::move(pool)),
      tree_(makeCatTreeParams(num_rows, num_counters, max_levels,
                              threshold, enable_weights,
                              std::move(split_thresholds), pool_.get()))
{
}

RefreshAction
Prcat::onActivate(RowAddr row)
{
    ++stats_.activations;
    const auto r = tree_.access(row);
    stats_.sramAccesses += r.sramAccesses;
    if (r.didSplit)
        ++stats_.splits;
    if (r.didReconfigure)
        ++stats_.merges;
    if (!r.refreshed)
        return {};

    RefreshAction act;
    act.lo = r.lo;
    act.hi = r.hi;
    act.rowCount = r.rowsRefreshed;
    ++stats_.refreshEvents;
    stats_.victimRowsRefreshed += act.rowCount;
    return act;
}

void
Prcat::onActivateBatch(const RowAddr *rows, std::size_t count)
{
    // Same arithmetic as onActivate, but one virtual call per chunk
    // and the SchemeStats folded in once: the whole batch runs on
    // local accumulators next to the tree walk.
    Count sram = 0;
    Count splits = 0;
    Count merges = 0;
    Count events = 0;
    Count victims = 0;
    for (std::size_t i = 0; i < count; ++i) {
        const auto r = tree_.access(rows[i]);
        sram += r.sramAccesses;
        splits += r.didSplit;
        merges += r.didReconfigure;
        if (r.refreshed) {
            ++events;
            victims += r.rowsRefreshed;
        }
    }
    stats_.activations += count;
    stats_.sramAccesses += sram;
    stats_.splits += splits;
    stats_.merges += merges;
    stats_.refreshEvents += events;
    stats_.victimRowsRefreshed += victims;
}

void
Prcat::onEpoch()
{
    tree_.reset();
    ++stats_.epochResets;
}

std::string
Prcat::treeLabel(const char *prefix) const
{
    const auto &p = tree_.params();
    const std::uint32_t m =
        p.presplitCounters ? p.presplitCounters : p.numCounters;
    std::string n = std::string(prefix) + "_" + std::to_string(m);
    if (p.sharedPool != nullptr)
        n += "_rank" + std::to_string(p.numCounters / m);
    return n;
}

std::string
Prcat::name() const
{
    return treeLabel("PRCAT");
}

} // namespace catsim
