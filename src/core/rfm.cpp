#include "rfm.hpp"

#include <sstream>

#include "common/logging.hpp"
#include "core/pra.hpp"

namespace catsim
{

Rfm::Rfm(RowAddr num_rows, std::uint32_t raa_budget)
    : MitigationScheme(num_rows), budget_(raa_budget)
{
    if (raa_budget == 0)
        CATSIM_FATAL("RFM needs an activation budget > 0");
}

RefreshAction
Rfm::onActivate(RowAddr row)
{
    ++stats_.activations;
    // RAA counter read + write.
    stats_.sramAccesses += 2;
    if (++raa_ < budget_)
        return {};
    raa_ = 0;
    const RefreshAction act =
        neighborRefresh(row, numRows_, adjacency_);
    ++stats_.refreshEvents;
    stats_.victimRowsRefreshed += act.rowCount;
    return act;
}

void
Rfm::onEpoch()
{
    // REF resets the rolling window (DDR5 decrements RAA per REF; a
    // full retention pass clears it entirely).
    raa_ = 0;
    ++stats_.epochResets;
}

std::string
Rfm::name() const
{
    std::ostringstream os;
    os << "RFM_" << budget_;
    return os.str();
}

} // namespace catsim
