/**
 * @file
 * Split-threshold schedule for the Counter-based Adaptive Tree
 * (paper Section IV-D).
 *
 * The CAT grows from a balanced tree with lambda = log2(M) levels
 * (M/2 counters at depth log2(M)-1) to at most L levels.  A counter at
 * depth d splits when its count reaches the split threshold T_d; at
 * depth L-1 the threshold is the refresh threshold T and reaching it
 * refreshes the leaf's row range.
 *
 * The paper publishes two anchor schedules derived from its cost model:
 *   M=4:              T1 = T/4,  T2 = T/2
 *   M=64, L=10, T=32768: T5=5155, T6=10309, T7=12886, T8=16384, T9=T
 * The generalized derivation lives in an unavailable technical report,
 * so computeSplitThresholds() uses (a) the published (M=64, L=10)
 * schedule, scaled linearly with T, as a calibration table, and (b) a
 * generic rule for other configurations:
 *   T_{L-2} = T/2;  T_j = T_{j+1} / 2^(1/3) for j in (m-1, L-2);
 *   T_{m-1} = T_m / 2    (m = log2(M))
 * which matches both anchors to within 1 % (see docs/DESIGN.md Section 4).
 */

#ifndef CATSIM_CORE_SPLIT_THRESHOLDS_HPP
#define CATSIM_CORE_SPLIT_THRESHOLDS_HPP

#include <cstdint>
#include <vector>

namespace catsim
{

/**
 * Compute the per-depth split-threshold schedule.
 *
 * @param num_counters M >= 2 (need not be a power of two; the
 *        schedule anchors on m = ceil(log2 M), so power-of-two
 *        configurations reproduce the historical schedule exactly).
 * @param max_levels   L; the tree has depths 0..L-1.
 * @param threshold    Refresh threshold T.
 * @return Vector of size L; element d is the split threshold used by a
 *         counter at depth d (element L-1 equals T).  Depths below the
 *         initial balanced tree (d < m-1) reuse the first real
 *         threshold; they never trigger in practice.
 */
std::vector<std::uint32_t> computeSplitThresholds(
    std::uint32_t num_counters, std::uint32_t max_levels,
    std::uint32_t threshold);

/** True when computeSplitThresholds will use the calibrated table. */
bool splitThresholdsCalibrated(std::uint32_t num_counters,
                               std::uint32_t max_levels);

} // namespace catsim

#endif // CATSIM_CORE_SPLIT_THRESHOLDS_HPP
