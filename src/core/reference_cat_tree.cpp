/**
 * @file
 * Frozen pre-flattening CAT implementation; see the header for why
 * this copy exists and why it must not change behaviour.
 */

#include "reference_cat_tree.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace catsim
{

namespace
{

bool
isPow2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

std::uint32_t
log2u(std::uint64_t v)
{
    std::uint32_t l = 0;
    while (v > 1) {
        v >>= 1;
        ++l;
    }
    return l;
}

} // namespace

ReferenceCatTree::ReferenceCatTree(Params params) : params_(std::move(params))
{
    const auto M = params_.numCounters;
    const auto L = params_.maxLevels;
    if (!isPow2(M) || M < 2)
        CATSIM_FATAL("CAT counters must be a power of two >= 2, got ", M);
    if (!isPow2(params_.numRows))
        CATSIM_FATAL("CAT rows must be a power of two, got ",
                     params_.numRows);
    if (L < log2u(M) + 1)
        CATSIM_FATAL("CAT levels L=", L, " must exceed log2(M)=",
                     log2u(M));
    if (params_.numRows < (1u << (L - 1)))
        CATSIM_FATAL("CAT needs at least 2^(L-1) rows; got ",
                     params_.numRows, " for L=", L);
    if (params_.splitThresholds.size() != L)
        CATSIM_FATAL("CAT needs one split threshold per level (", L,
                     "), got ", params_.splitThresholds.size());
    if (params_.splitThresholds.back() != params_.refreshThreshold)
        CATSIM_FATAL("last split threshold must equal the refresh "
                     "threshold");

    presplitDepth_ = log2u(M) - 1;
    reset();
}

void
ReferenceCatTree::reset()
{
    const auto M = params_.numCounters;
    inodes_.assign(M - 1, INode{});
    inodeParent_.assign(M - 1, kNone);
    inodeParentRight_.assign(M - 1, false);
    inodeInUse_.assign(M - 1, false);
    counts_.assign(M, 0);
    weights_.assign(M, 0);
    counterInUse_.assign(M, false);
    freeCounters_.clear();
    freeInodes_.clear();
    for (std::uint32_t i = M; i-- > 1;)
        freeCounters_.push_back(i);
    for (std::uint32_t i = M - 1; i-- > 0;)
        freeInodes_.push_back(i);

    rootPtr_ = 0;
    rootIsLeaf_ = true;
    activeCounters_ = 1;
    counterInUse_[0] = true;

    presplit(kNone, false, 0, 0, presplitDepth_);
}

void
ReferenceCatTree::resetCountsOnly()
{
    std::fill(counts_.begin(), counts_.end(), 0);
}

void
ReferenceCatTree::presplit(std::uint32_t parent, bool right,
                           std::uint32_t counter, std::uint32_t depth,
                           std::uint32_t target_depth)
{
    if (depth >= target_depth)
        return;
    Walk w;
    w.counter = counter;
    w.parent = parent;
    w.parentRight = right;
    const std::uint32_t nc = allocCounter();
    const std::uint32_t ni = allocInode();
    splitLeaf(w, nc, ni);
    presplit(ni, false, counter, depth + 1, target_depth);
    presplit(ni, true, nc, depth + 1, target_depth);
}

std::uint32_t
ReferenceCatTree::allocCounter()
{
    if (freeCounters_.empty())
        CATSIM_PANIC("CAT counter free list exhausted");
    const std::uint32_t c = freeCounters_.back();
    freeCounters_.pop_back();
    counterInUse_[c] = true;
    return c;
}

std::uint32_t
ReferenceCatTree::allocInode()
{
    if (freeInodes_.empty())
        CATSIM_PANIC("CAT intermediate-node free list exhausted");
    const std::uint32_t i = freeInodes_.back();
    freeInodes_.pop_back();
    inodeInUse_[i] = true;
    return i;
}

ReferenceCatTree::Walk
ReferenceCatTree::walkTo(RowAddr row) const
{
    Walk w;
    w.lo = 0;
    w.hi = params_.numRows - 1;
    std::uint32_t ptr = rootPtr_;
    bool leaf = rootIsLeaf_;
    while (!leaf) {
        const INode &nd = inodes_[ptr];
        const RowAddr mid = w.lo + (w.hi - w.lo) / 2;
        w.parent = ptr;
        if (row > mid) {
            w.parentRight = true;
            w.lo = mid + 1;
            ptr = nd.r;
            leaf = nd.rleaf;
        } else {
            w.parentRight = false;
            w.hi = mid;
            ptr = nd.l;
            leaf = nd.lleaf;
        }
        ++w.depth;
    }
    w.counter = ptr;
    return w;
}

bool
ReferenceCatTree::canSplit(const Walk &w) const
{
    return w.depth + 1 < params_.maxLevels && w.lo < w.hi
           && !freeCounters_.empty() && !freeInodes_.empty();
}

void
ReferenceCatTree::splitLeaf(const Walk &w, std::uint32_t new_counter,
                            std::uint32_t new_inode)
{
    INode &nd = inodes_[new_inode];
    nd.l = w.counter;
    nd.r = new_counter;
    nd.lleaf = true;
    nd.rleaf = true;
    inodeParent_[new_inode] = w.parent;
    inodeParentRight_[new_inode] = w.parentRight;

    // Clone the count: both halves inherit the parent's history, which
    // keeps the scheme conservative (no victim can be undercounted).
    counts_[new_counter] = counts_[w.counter];
    weights_[new_counter] = weights_[w.counter];

    if (w.parent == kNone) {
        rootPtr_ = new_inode;
        rootIsLeaf_ = false;
    } else {
        INode &p = inodes_[w.parent];
        if (w.parentRight) {
            p.r = new_inode;
            p.rleaf = false;
        } else {
            p.l = new_inode;
            p.lleaf = false;
        }
    }
    ++activeCounters_;
}

std::uint32_t
ReferenceCatTree::thresholdAt(std::uint32_t depth, RowAddr lo,
                              RowAddr hi) const
{
    (void)lo;
    (void)hi;
    return params_.splitThresholds[std::min<std::size_t>(
        depth, params_.splitThresholds.size() - 1)];
}

ReferenceCatTree::AccessResult
ReferenceCatTree::access(RowAddr row)
{
    if (row >= params_.numRows)
        CATSIM_PANIC("row ", row, " out of range");

    const Walk w = walkTo(row);
    AccessResult res;
    res.leafDepth = w.depth;
    // Pointer chasing starts at the pre-split jump level; the counter
    // itself costs a read and a write (Section IV-C).
    const std::uint32_t hops =
        w.depth > presplitDepth_ ? w.depth - presplitDepth_ : 0;
    res.sramAccesses = hops + 2;

    const bool splittable = canSplit(w);
    const std::uint32_t thr = splittable
        ? thresholdAt(w.depth, w.lo, w.hi)
        : params_.refreshThreshold;

    if (counts_[w.counter] < thr) {
        ++counts_[w.counter];
        return res;
    }

    if (splittable && thr < params_.refreshThreshold) {
        const std::uint32_t nc = allocCounter();
        const std::uint32_t ni = allocInode();
        splitLeaf(w, nc, ni);
        ++splits_;
        res.didSplit = true;
        return res;
    }

    // Refresh the whole group plus the two rows adjacent to it.
    counts_[w.counter] = 0;
    std::int64_t lo = static_cast<std::int64_t>(w.lo) - 1;
    std::int64_t hi = static_cast<std::int64_t>(w.hi) + 1;
    lo = std::max<std::int64_t>(lo, 0);
    hi = std::min<std::int64_t>(hi,
                                static_cast<std::int64_t>(params_.numRows)
                                    - 1);
    res.refreshed = true;
    res.lo = static_cast<RowAddr>(lo);
    res.hi = static_cast<RowAddr>(hi);
    res.rowsRefreshed = static_cast<Count>(hi - lo + 1);

    if (params_.enableWeights) {
        std::uint8_t &hotW = weights_[w.counter];
        if (hotW < 3)
            ++hotW;
        for (std::uint32_t c = 0; c < params_.numCounters; ++c) {
            if (c != w.counter && counterInUse_[c] && weights_[c] > 0)
                --weights_[c];
        }
        if (hotW == 3)
            res.didReconfigure = tryReconfigure(w);
    }
    return res;
}

std::uint32_t
ReferenceCatTree::inodeDepth(std::uint32_t inode) const
{
    std::uint32_t d = 0;
    std::uint32_t p = inodeParent_[inode];
    while (p != kNone) {
        ++d;
        p = inodeParent_[p];
    }
    return d;
}

bool
ReferenceCatTree::tryReconfigure(const Walk &hot)
{
    // Can the hot leaf be subdivided at all?
    if (hot.depth + 1 >= params_.maxLevels || hot.lo >= hot.hi)
        return false;

    // Step 1 (Fig 7): find an intermediate node whose children are both
    // cold leaf counters (weight zero).  Nodes above the pre-split
    // level are never merged: the lambda-level balanced prefix is what
    // allows direct SRAM indexing (Section IV-C), and keeping it also
    // bounds the largest group a merge can create.
    std::uint32_t cand = kNone;
    for (std::uint32_t i = 0; i < inodes_.size(); ++i) {
        if (!inodeInUse_[i])
            continue;
        const INode &nd = inodes_[i];
        if (nd.lleaf && nd.rleaf && weights_[nd.l] == 0
            && weights_[nd.r] == 0 && inodeDepth(i) >= presplitDepth_) {
            cand = i;
            break;
        }
    }
    if (cand == kNone)
        return false;

    // Merge: keep the child with the larger count so the merged group
    // can never undercount, free the other counter and the node.
    const INode nd = inodes_[cand];
    const std::uint32_t keep =
        counts_[nd.l] >= counts_[nd.r] ? nd.l : nd.r;
    const std::uint32_t drop = keep == nd.l ? nd.r : nd.l;
    counts_[keep] = std::max(counts_[nd.l], counts_[nd.r]);

    const std::uint32_t parent = inodeParent_[cand];
    const bool side = inodeParentRight_[cand];
    if (parent == kNone) {
        rootPtr_ = keep;
        rootIsLeaf_ = true;
    } else {
        INode &p = inodes_[parent];
        if (side) {
            p.r = keep;
            p.rleaf = true;
        } else {
            p.l = keep;
            p.lleaf = true;
        }
    }
    inodeInUse_[cand] = false;
    freeInodes_.push_back(cand);
    counterInUse_[drop] = false;
    weights_[drop] = 0;
    counts_[drop] = 0;
    freeCounters_.push_back(drop);
    --activeCounters_;
    ++merges_;

    // Step 2: split the hot leaf with the freed counter.  The hot
    // leaf's parent slot is untouched by the merge (the hot counter has
    // weight 3, so it cannot have been a child of `cand`).
    const std::uint32_t nc = allocCounter();
    const std::uint32_t ni = allocInode();
    splitLeaf(hot, nc, ni);
    ++splits_;

    // Step 3: newly split counters keep weight 1 so they are neither
    // immediately re-split nor immediately merged back.
    weights_[hot.counter] = 1;
    weights_[nc] = 1;
    return true;
}

std::uint32_t
ReferenceCatTree::leafDepth(RowAddr row) const
{
    return walkTo(row).depth;
}

std::uint32_t
ReferenceCatTree::counterValue(RowAddr row) const
{
    return counts_[walkTo(row).counter];
}

std::pair<RowAddr, RowAddr>
ReferenceCatTree::leafRange(RowAddr row) const
{
    const Walk w = walkTo(row);
    return {w.lo, w.hi};
}

std::uint32_t
ReferenceCatTree::leafWeight(RowAddr row) const
{
    return weights_[walkTo(row).counter];
}

std::uint32_t
ReferenceCatTree::maxLeafDepth() const
{
    std::uint32_t best = 0;
    // Iterative DFS over (ptr, leaf?, depth).
    struct Item
    {
        std::uint32_t ptr;
        bool leaf;
        std::uint32_t depth;
    };
    std::vector<Item> stack{{rootPtr_, rootIsLeaf_, 0}};
    while (!stack.empty()) {
        const Item it = stack.back();
        stack.pop_back();
        if (it.leaf) {
            best = std::max(best, it.depth);
            continue;
        }
        const INode &nd = inodes_[it.ptr];
        stack.push_back({nd.l, nd.lleaf, it.depth + 1});
        stack.push_back({nd.r, nd.rleaf, it.depth + 1});
    }
    return best;
}

bool
ReferenceCatTree::walkInvariants(std::uint32_t ptr, bool is_leaf,
                                 RowAddr lo, RowAddr hi,
                                 std::uint32_t depth,
                                 std::vector<bool> &seen_counters,
                                 std::vector<bool> &seen_inodes,
                                 std::string *why) const
{
    auto fail = [&](const std::string &msg) {
        if (why)
            *why = msg;
        return false;
    };

    if (depth >= params_.maxLevels)
        return fail("node deeper than L-1");
    if (lo > hi)
        return fail("empty row range");

    if (is_leaf) {
        if (ptr >= params_.numCounters)
            return fail("leaf pointer out of range");
        if (seen_counters[ptr])
            return fail("counter reached twice");
        if (!counterInUse_[ptr])
            return fail("leaf references a free counter");
        seen_counters[ptr] = true;
        if (counts_[ptr] > params_.refreshThreshold)
            return fail("count exceeds refresh threshold");
        if (weights_[ptr] > 3)
            return fail("weight exceeds 2-bit range");
        if (!params_.enableWeights && weights_[ptr] != 0)
            return fail("weights used without DRCAT mode");
        return true;
    }

    if (ptr >= inodes_.size())
        return fail("inode pointer out of range");
    if (seen_inodes[ptr])
        return fail("inode reached twice");
    if (!inodeInUse_[ptr])
        return fail("tree references a free inode");
    seen_inodes[ptr] = true;

    const INode &nd = inodes_[ptr];
    if (!nd.lleaf) {
        if (inodeParent_[nd.l] != ptr || inodeParentRight_[nd.l])
            return fail("left child parent link broken");
    }
    if (!nd.rleaf) {
        if (inodeParent_[nd.r] != ptr || !inodeParentRight_[nd.r])
            return fail("right child parent link broken");
    }
    const RowAddr mid = lo + (hi - lo) / 2;
    return walkInvariants(nd.l, nd.lleaf, lo, mid, depth + 1,
                          seen_counters, seen_inodes, why)
           && walkInvariants(nd.r, nd.rleaf, mid + 1, hi, depth + 1,
                             seen_counters, seen_inodes, why);
}

bool
ReferenceCatTree::checkInvariants(std::string *why) const
{
    auto fail = [&](const std::string &msg) {
        if (why)
            *why = msg;
        return false;
    };

    std::vector<bool> seenCounters(params_.numCounters, false);
    std::vector<bool> seenInodes(inodes_.size(), false);
    if (!rootIsLeaf_ && inodeParent_[rootPtr_] != kNone)
        return fail("root has a parent link");
    if (!walkInvariants(rootPtr_, rootIsLeaf_, 0, params_.numRows - 1, 0,
                        seenCounters, seenInodes, why))
        return false;

    std::uint32_t leaves = 0;
    for (std::uint32_t c = 0; c < params_.numCounters; ++c) {
        if (seenCounters[c] != counterInUse_[c])
            return fail("counterInUse inconsistent with tree");
        if (seenCounters[c])
            ++leaves;
    }
    if (leaves != activeCounters_)
        return fail("activeCounters does not match leaf count");
    if (leaves + freeCounters_.size() != params_.numCounters)
        return fail("counter free list inconsistent");

    std::uint32_t used = 0;
    for (std::uint32_t i = 0; i < inodes_.size(); ++i) {
        if (seenInodes[i] != inodeInUse_[i])
            return fail("inodeInUse inconsistent with tree");
        if (seenInodes[i])
            ++used;
    }
    if (used + freeInodes_.size() != inodes_.size())
        return fail("inode free list inconsistent");
    if (used != leaves - 1 && !(rootIsLeaf_ && used == 0))
        return fail("binary tree shape violated (inodes != leaves-1)");
    return true;
}

} // namespace catsim
