#include "shared_pool.hpp"

#include "common/logging.hpp"

namespace catsim
{

SharedCounterPool::SharedCounterPool(std::uint32_t capacity)
    : capacity_(capacity)
{
    if (capacity == 0)
        CATSIM_FATAL("shared counter pool needs a non-zero capacity");
}

bool
SharedCounterPool::tryAcquire()
{
    if (inUse_ == capacity_)
        return false;
    ++inUse_;
    ++acquires_;
    if (inUse_ > peakInUse_)
        peakInUse_ = inUse_;
    return true;
}

void
SharedCounterPool::release(std::uint32_t n)
{
    if (n > inUse_)
        CATSIM_PANIC("shared counter pool released more counters (", n,
                     ") than are in use (", inUse_, ")");
    inUse_ -= n;
}

} // namespace catsim
