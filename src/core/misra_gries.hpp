/**
 * @file
 * Misra-Gries frequent-item tracking mitigation (Graphene-style,
 * Park et al., MICRO 2020).
 *
 * A small table of (row, count) entries summarizes the bank's
 * activation stream with the Misra-Gries heavy-hitters sketch: a hit
 * increments the row's entry, a miss fills a free entry, and a miss
 * against a full table decrements EVERY entry (absorbing one
 * occurrence of each tracked row plus the missing one into a global
 * spill counter).  The sketch under-counts by at most the spill total,
 * so `entry count + spills since the entry was installed` upper-bounds
 * the row's true activation count; when that bound reaches the refresh
 * threshold T the row's physical neighbors are refreshed and the entry
 * resets.
 *
 * Guarantee: no row's true count since its last neighbor refresh ever
 * exceeds T - every activation checks the bound, including misses
 * (whose bound is the spill total alone).  Sized like Graphene
 * (entries + 1 > acts-per-epoch / T) the spill counter stays below T
 * and the miss path never fires; an undersized table degrades to
 * conservative refresh-per-miss instead of losing the guarantee.
 */

#ifndef CATSIM_CORE_MISRA_GRIES_HPP
#define CATSIM_CORE_MISRA_GRIES_HPP

#include <cstdint>
#include <vector>

#include "core/adjacency.hpp"
#include "core/mitigation.hpp"

namespace catsim
{

/** Misra-Gries heavy-hitter tracker with threshold refresh. */
class MisraGries : public MitigationScheme
{
  public:
    /**
     * @param num_rows    Rows per bank.
     * @param num_entries Tracking-table entries (k).
     * @param threshold   Refresh threshold (T).
     */
    MisraGries(RowAddr num_rows, std::uint32_t num_entries,
               std::uint32_t threshold);

    RefreshAction onActivate(RowAddr row) override;
    void onEpoch() override;
    std::string name() const override;

    /**
     * Use a physical-adjacency model for victim selection; must
     * outlive this scheme, nullptr restores direct adjacency.
     */
    void setAdjacency(const RowAdjacency *adjacency)
    {
        adjacency_ = adjacency;
    }

    std::uint32_t numEntries() const
    {
        return static_cast<std::uint32_t>(entries_.size());
    }

    /** Tracked count of @p row; 0 when untracked (test oracles). */
    std::uint32_t trackedCount(RowAddr row) const;

    /** Global decrements (spills) since the last epoch reset. */
    std::uint64_t decrements() const { return dec_; }

  private:
    struct Entry
    {
        RowAddr row = 0;
        std::uint32_t count = 0;    //!< 0 marks an evictable entry
        std::uint64_t decBase = 0;  //!< spills excluded from the bound
        bool live = false;          //!< row field is valid
    };

    RefreshAction refreshAround(RowAddr row);

    std::uint32_t threshold_;
    std::uint64_t dec_ = 0;
    std::vector<Entry> entries_;
    const RowAdjacency *adjacency_ = nullptr;
};

} // namespace catsim

#endif // CATSIM_CORE_MISRA_GRIES_HPP
