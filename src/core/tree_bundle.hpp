/**
 * @file
 * Structure-of-arrays bundle of per-bank CAT trees (the ROADMAP's
 * "SIMD/batched multi-tree hot path").
 *
 * A `makeBankSchemes()` group runs one identical CatTree per bank, and
 * the simulators drive 8-64 of them in lockstep.  Stepping them one
 * virtual call at a time leaves most of the win of PR 3's flattening
 * on the table: every access is a function call, an AccessResult, and
 * a cold pointer chase into that bank's own heap blocks.  The bundle
 * packs the hot tables of all lanes - jump table, quad table, counter
 * values, and two per-counter precomputes - into ONE arena-allocated
 * contiguous block, laid out bank-major (lane 0's tables, then lane
 * 1's, each lane padded to a cache line), and steps whole bank groups
 * per call with a branchless lane-local descent.
 *
 * Fast path.  For the overwhelming majority of activations the tree
 * does nothing but `++count`: the access is a pure increment whenever
 * `count < thr`, where thr is the threshold `CatTree::access` would
 * apply (the depth's split threshold when the leaf is splittable, the
 * refresh threshold T otherwise).  The bundle therefore mirrors, per
 * lane and per counter, the *effective threshold* `thr[c]` and the
 * access's SRAM charge `sram[c] = depth - presplitDepth + 2 (+1
 * pooled)`, both straight-line recomputable from the lane tree.  The
 * descent is the same jump+quad walk as CatTree::leafSlotFor, run on
 * the arena copies; when `counts[c] < thr[c]` the whole access is a
 * table walk plus one increment, with no call, no branch on pool
 * state, and no AccessResult.
 *
 * Slow path and bit-identity.  When the fast-path test fails, the
 * authoritative per-lane CatTree takes over: the arena's counts are
 * written back into the tree, `CatTree::access` performs the real
 * split/refresh/reconfigure (including SharedCounterPool charging and
 * DRCAT weights), and the lane's mirror is rebuilt from the tree.
 * Because `thr[c]` is maintained conservatively - it never exceeds
 * the threshold the tree itself would apply - a fast-path increment
 * happens exactly when the tree would have incremented, so the bundle
 * is bit-identical to per-bank CatTrees (and, transitively, to the
 * frozen ReferenceCatTree) for every stream; tests/test_tree_bundle
 * proves it differentially.  Conservative maintenance means: after
 * any structural event (split, merge, epoch reset) the affected
 * lane's mirror is rebuilt, and for pool-sharing bundles the
 * *threshold* tables of every lane are refreshed, since one lane's
 * growth changes its siblings' splittability.  A stale-but-lower
 * threshold is always safe: it only sends an access down the slow
 * path, where the tree applies the true rule.
 *
 * The index math uses the shared bit-trick helpers (common/bit.hpp,
 * after SNIPPETS.md's poplibs Algorithm.hpp and the table-driven
 * integer-log idiom); the arena is a single aligned allocation so a
 * bundle is one contiguous block, resident together in cache.
 */

#ifndef CATSIM_CORE_TREE_BUNDLE_HPP
#define CATSIM_CORE_TREE_BUNDLE_HPP

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "core/cat_tree.hpp"
#include "core/mitigation.hpp"
#include "core/shared_pool.hpp"

namespace catsim
{

/** A bank group's CAT trees packed into one bank-major SoA arena. */
class TreeBundle
{
  public:
    /**
     * One lane's slice of a multi-lane batch
     * (TreeBundle::onActivateLanes).
     */
    struct LaneBatch
    {
        std::uint32_t lane = 0;
        const RowAddr *rows = nullptr;
        std::size_t count = 0;
    };

    /**
     * Build @p lanes identical trees from the canonical CAT
     * parameters (see makeCatTreeParams).  @p pool, when set, is the
     * group's shared counter budget: every lane draws growth from it,
     * exactly like a makeBankSchemes pool group.  The bundle keeps
     * the pool alive.
     */
    TreeBundle(RowAddr num_rows, std::uint32_t num_counters,
               std::uint32_t max_levels, std::uint32_t threshold,
               bool enable_weights,
               std::vector<std::uint32_t> split_thresholds,
               std::shared_ptr<SharedCounterPool> pool,
               std::uint32_t lanes);

    ~TreeBundle();

    TreeBundle(const TreeBundle &) = delete;
    TreeBundle &operator=(const TreeBundle &) = delete;

    std::uint32_t lanes() const
    {
        return static_cast<std::uint32_t>(trees_.size());
    }

    /**
     * One activation on one lane, with the per-activation
     * RefreshAction a feedback-coupled caller needs.  Stats arithmetic
     * is identical to Prcat::onActivate.
     */
    RefreshAction onActivate(std::uint32_t lane, RowAddr row);

    /** A contiguous chunk on one lane (no epoch markers). */
    void onActivateBatch(std::uint32_t lane, const RowAddr *rows,
                         std::size_t count);

    /**
     * THE batched hot path: step several lanes through their chunks,
     * always preserving each lane's own order.  Pool-sharing groups
     * run a strict per-position round-robin across lanes (pool
     * arbitration order on the slow path is part of the semantics);
     * independent-lane groups run lane-major with a grouped
     * branchless descent (SIMD where the host supports it) - any
     * cross-lane order is bit-identical there, since lanes only
     * couple through a shared pool.  Either way, per-lane results are
     * bit-identical to per-lane onActivateBatch calls.
     */
    void onActivateLanes(const LaneBatch *batches, std::size_t count);

    /**
     * Epoch boundary for one lane: full reset for PRCAT-style lanes,
     * counts-only for DRCAT-style ones (weights enabled), matching
     * Prcat::onEpoch / Drcat::onEpoch.
     */
    void onEpoch(std::uint32_t lane);

    /** Per-lane accumulated stats (what BundledCatScheme reports). */
    const SchemeStats &laneStats(std::uint32_t lane) const
    {
        return stats_[lane];
    }

    /**
     * The authoritative tree behind @p lane, with its counter values
     * synced from the arena - probe-accurate for tests and reports.
     */
    const CatTree &tree(std::uint32_t lane) const;

    /** The group's shared counter budget; null for private pools. */
    const SharedCounterPool *sharedPool() const { return pool_.get(); }

    /** Scheme label for one lane, e.g. "DRCAT_64_rank8". */
    std::string laneName(std::uint32_t lane) const;

    /** Arena bytes backing all lanes (one contiguous allocation). */
    std::size_t arenaBytes() const { return arenaWords_ * 4; }

    /**
     * Which hot-path kernel this host runs: 2 = AVX-512 fused
     * descent+resolve, 1 = AVX2 gather descent, 0 = portable scalar.
     * Purely informational (all tiers are bit-identical); the perf
     * gate uses it to pick the right throughput floor.
     */
    static int simdTier();

  private:
    /** Resolved arena offsets; lane l's table t starts at
     *  arena_[l * laneStride_ + <table offset>]. */
    std::uint32_t *laneBase(std::uint32_t lane)
    {
        return arena_.get() + std::size_t{lane} * laneStride_;
    }
    const std::uint32_t *laneBase(std::uint32_t lane) const
    {
        return arena_.get() + std::size_t{lane} * laneStride_;
    }

    /** Push the arena's counter values into the lane's tree (the tree
     *  lags behind between slow-path events). */
    void syncTreeCounts(std::uint32_t lane) const;
    /** Rebuild the lane's whole mirror from its tree (structure,
     *  counts, thresholds, SRAM charges). */
    void rebuildLane(std::uint32_t lane);
    /** Refresh only the effective-threshold table (cheap; used for
     *  sibling lanes when a pool event changes splittability). */
    void refreshThresholds(std::uint32_t lane);
    /** Copy the tree's counts back into the arena (slow-path exit). */
    void pullCounts(std::uint32_t lane);

    /** Slow path: delegate one access to the authoritative tree and
     *  re-sync the mirror(s). */
    CatTree::AccessResult slowAccess(std::uint32_t lane, RowAddr row);

    // Kept alive for the trees; destroyed after them (member order).
    std::shared_ptr<SharedCounterPool> pool_;
    std::vector<std::unique_ptr<CatTree>> trees_;
    std::vector<SchemeStats> stats_;

    // One contiguous allocation; per-lane layout (all uint32 words):
    //   [0,        M)        counts
    //   [M,       2M)        effective thresholds
    //   [2M,      3M)        per-access SRAM charges
    //   [3M,      3M + J)    jump table (J = 2^presplitDepth)
    //   [3M + J,  3M+J+4M+2) quad table (4(M-1) live entries plus a
    //                        zero pad: the branchless fixed-step
    //                        descent keeps issuing quad loads after a
    //                        row has already landed on a leaf, and a
    //                        leaf code indexes up to 4M+1)
    // padded to a 64-byte boundary, bank-major across lanes.
    std::unique_ptr<std::uint32_t[]> arena_;
    std::size_t arenaWords_ = 0;
    std::size_t laneStride_ = 0;
    std::uint32_t numCounters_ = 0; //!< M (pool capacity when pooled)
    std::uint32_t jumpEntries_ = 0; //!< J
    std::uint32_t jumpShift_ = 0;
    /** Quad steps that take any jump-table entry to its deepest
     *  possible leaf - the fixed trip count of the branchless
     *  grouped descent. */
    std::uint32_t descentSteps_ = 0;
    std::uint32_t offThr_ = 0;      //!< lane-relative table offsets
    std::uint32_t offSram_ = 0;
    std::uint32_t offJump_ = 0;
    std::uint32_t offQuad_ = 0;
};

/**
 * One lane of a TreeBundle behind the MitigationScheme interface.
 *
 * makeBankSchemes hands these out in place of standalone Prcat/Drcat
 * instances when a bank group is bundle-backed; per-bank callers see
 * the exact scheme semantics (onActivate feedback, stats, names),
 * while group drivers discover the shared bundle through bundleHint()
 * and step whole groups per call.
 */
class BundledCatScheme : public MitigationScheme
{
  public:
    BundledCatScheme(std::shared_ptr<TreeBundle> bundle,
                     std::uint32_t lane, RowAddr num_rows)
        : MitigationScheme(num_rows),
          bundle_(std::move(bundle)),
          lane_(lane)
    {
    }

    RefreshAction
    onActivate(RowAddr row) override
    {
        return bundle_->onActivate(lane_, row);
    }

    void
    onActivateBatch(const RowAddr *rows, std::size_t count) override
    {
        bundle_->onActivateBatch(lane_, rows, count);
    }

    void onEpoch() override { bundle_->onEpoch(lane_); }

    std::string name() const override
    {
        return bundle_->laneName(lane_);
    }

    BundleHint bundleHint() const override
    {
        BundleHint h;
        h.bundle = bundle_.get();
        h.lane = lane_;
        return h;
    }

    const SchemeStats &stats() const override
    {
        return bundle_->laneStats(lane_);
    }

    /** The lane's authoritative tree, counts synced (for tests). */
    const CatTree &tree() const { return bundle_->tree(lane_); }

    const SharedCounterPool *sharedPool() const
    {
        return bundle_->sharedPool();
    }

  private:
    std::shared_ptr<TreeBundle> bundle_;
    std::uint32_t lane_;
};

} // namespace catsim

#endif // CATSIM_CORE_TREE_BUNDLE_HPP
