#include "tree_bundle.hpp"

#include <algorithm>
#include <cstring>

#if defined(__GNUC__) && defined(__x86_64__)
#define CATSIM_X86_DESCENT 1
#include <immintrin.h>
#endif

#include "common/bit.hpp"
#include "common/logging.hpp"
#include "core/prcat.hpp"

namespace catsim
{

namespace
{

/** Arena lane stride granularity: 16 words = one 64-byte line. */
constexpr std::size_t kLaneAlignWords = 16;

/** Rows descended per branchless group on the independent-lane fast
 *  path: enough parallel load chains to hide L1 latency, small enough
 *  that `cur` stays in registers. */
constexpr std::size_t kDescentGroup = 16;

} // namespace

TreeBundle::TreeBundle(RowAddr num_rows, std::uint32_t num_counters,
                       std::uint32_t max_levels, std::uint32_t threshold,
                       bool enable_weights,
                       std::vector<std::uint32_t> split_thresholds,
                       std::shared_ptr<SharedCounterPool> pool,
                       std::uint32_t lanes)
    : pool_(std::move(pool))
{
    if (lanes == 0)
        CATSIM_FATAL("a tree bundle needs at least one lane");
    trees_.reserve(lanes);
    stats_.resize(lanes);
    for (std::uint32_t l = 0; l < lanes; ++l)
        trees_.push_back(std::make_unique<CatTree>(makeCatTreeParams(
            num_rows, num_counters, max_levels, threshold,
            enable_weights, split_thresholds, pool_.get())));

    const CatTree &t0 = *trees_.front();
    numCounters_ = t0.params_.numCounters;
    jumpShift_ = t0.jumpShift_;
    jumpEntries_ = 1u << t0.presplitDepth_;

    const std::uint32_t M = numCounters_;
    offThr_ = M;
    offSram_ = 2 * M;
    offJump_ = 3 * M;
    offQuad_ = 3 * M + jumpEntries_;
    // 4(M-1) live quad entries plus a zero pad: the grouped descent
    // is branchless, so rows that already hold a leaf code (up to
    // 2M-1) keep indexing quad[2*cur + 3] <= 4M+1 for the remaining
    // fixed steps; the pad turns those into harmless in-lane loads.
    const std::size_t laneWords = offQuad_ + 4 * M + 2;
    laneStride_ = (laneWords + kLaneAlignWords - 1) / kLaneAlignWords
                  * kLaneAlignWords;
    // Deepest leaf reachable below the jump table, in two-level quad
    // steps (the quad table absorbs odd-depth leaves into the same
    // load, hence the round-up).
    const std::uint32_t maxDepth =
        std::min(t0.params_.maxLevels - 1, t0.rowBits_);
    const std::uint32_t below =
        maxDepth > t0.presplitDepth_ ? maxDepth - t0.presplitDepth_ : 0;
    descentSteps_ = (below + 1) / 2;
    arenaWords_ = laneStride_ * lanes;
    arena_ = std::make_unique<std::uint32_t[]>(arenaWords_);
    std::memset(arena_.get(), 0, arenaWords_ * 4);
    for (std::uint32_t l = 0; l < lanes; ++l)
        rebuildLane(l);
}

TreeBundle::~TreeBundle() = default;

int
TreeBundle::simdTier()
{
#if CATSIM_X86_DESCENT
    if (__builtin_cpu_supports("avx512f") &&
        __builtin_cpu_supports("avx512cd") &&
        __builtin_cpu_supports("avx512vpopcntdq"))
        return 2;
    if (__builtin_cpu_supports("avx2"))
        return 1;
#endif
    return 0;
}

void
TreeBundle::rebuildLane(std::uint32_t lane)
{
    const CatTree &t = *trees_[lane];
    std::uint32_t *base = laneBase(lane);
    const std::uint32_t M = numCounters_;
    std::memcpy(base, t.counts_.data(), M * 4);
    std::memcpy(base + offJump_, t.jump_.data(), jumpEntries_ * 4);
    std::memcpy(base + offQuad_, t.quad_.data(), 4 * (M - 1) * 4);
    const std::uint32_t presplit = t.presplitDepth_;
    const std::uint32_t poolExtra = pool_ != nullptr ? 1u : 0u;
    std::uint32_t *sram = base + offSram_;
    for (std::uint32_t c = 0; c < M; ++c)
        sram[c] = t.counterInUse_[c]
            ? (t.counterDepth_[c] - presplit) + 2 + poolExtra
            : 0;
    refreshThresholds(lane);
}

void
TreeBundle::refreshThresholds(std::uint32_t lane)
{
    const CatTree &t = *trees_[lane];
    std::uint32_t *thr = laneBase(lane) + offThr_;
    const std::uint32_t M = numCounters_;
    const std::uint32_t T = t.params_.refreshThreshold;
    // "Can this tree grow right now": the lane's own free lists plus,
    // for a shared budget, a live pool counter.  When false every
    // leaf's effective threshold is T (Algorithm 1 degenerates to
    // refresh-only), which is exactly what CatTree::access computes.
    const bool growable =
        t.canGrow_ && (pool_ == nullptr || pool_->available() != 0);
    for (std::uint32_t c = 0; c < M; ++c) {
        if (!t.counterInUse_[c]) {
            thr[c] = 0;
            continue;
        }
        const std::uint32_t d = t.counterDepth_[c];
        const bool splittable =
            d + 1 < t.params_.maxLevels && d < t.rowBits_ && growable;
        thr[c] = splittable ? t.thresholdAt(d) : T;
    }
}

void
TreeBundle::syncTreeCounts(std::uint32_t lane) const
{
    CatTree &t = *trees_[lane];
    std::memcpy(t.counts_.data(), laneBase(lane), numCounters_ * 4);
}

void
TreeBundle::pullCounts(std::uint32_t lane)
{
    const CatTree &t = *trees_[lane];
    std::memcpy(laneBase(lane), t.counts_.data(), numCounters_ * 4);
}

CatTree::AccessResult
TreeBundle::slowAccess(std::uint32_t lane, RowAddr row)
{
    // The tree's counter array lags behind the arena between slow
    // events; hand the live values over, let the authoritative tree
    // apply the real split/refresh/reconfigure rule, then re-mirror.
    syncTreeCounts(lane);
    const CatTree::AccessResult res = trees_[lane]->access(row);
    if (res.didSplit || res.didReconfigure) {
        rebuildLane(lane);
        if (pool_ != nullptr) {
            // A pool event changes every sibling's splittability, and
            // a *freed* counter must lower their thresholds before
            // their next fast-path test (a stale-high threshold would
            // increment where the tree would split).  Splits only
            // shrink the pool - stale-low, safe - but refreshing both
            // directions here keeps the lanes on the exact rule.
            for (std::uint32_t l = 0; l < lanes(); ++l)
                if (l != lane)
                    refreshThresholds(l);
        }
    } else {
        // Refresh (count reset) or a conservative delegation that
        // ended in a plain increment: counts changed, structure did
        // not.  Re-pull the counts and heal this lane's thresholds in
        // case a sibling's growth made ours stale.
        pullCounts(lane);
        refreshThresholds(lane);
    }
    return res;
}

RefreshAction
TreeBundle::onActivate(std::uint32_t lane, RowAddr row)
{
    SchemeStats &st = stats_[lane];
    ++st.activations;
    if (row >= trees_[lane]->params_.numRows)
        CATSIM_PANIC("row ", row, " out of range");

    std::uint32_t *base = laneBase(lane);
    const std::uint32_t *quad = base + offQuad_;
    std::uint32_t cur = base[offJump_ + (row >> jumpShift_)];
    std::uint32_t bitPos = jumpShift_ - 1;
    while (!(cur & 1u)) {
        const std::uint32_t b1 = (row >> bitPos) & 1u;
        const std::uint32_t b2 = (row >> ((bitPos - 1) & 31u)) & 1u;
        cur = quad[2 * cur + 2 * b1 + b2];
        bitPos -= 2;
    }
    const std::uint32_t c = cur >> 1;
    if (base[c] < base[offThr_ + c]) {
        ++base[c];
        st.sramAccesses += base[offSram_ + c];
        return {};
    }

    const auto r = slowAccess(lane, row);
    st.sramAccesses += r.sramAccesses;
    if (r.didSplit)
        ++st.splits;
    if (r.didReconfigure)
        ++st.merges;
    if (!r.refreshed)
        return {};
    RefreshAction act;
    act.lo = r.lo;
    act.hi = r.hi;
    act.rowCount = r.rowsRefreshed;
    ++st.refreshEvents;
    st.victimRowsRefreshed += act.rowCount;
    return act;
}

void
TreeBundle::onActivateBatch(std::uint32_t lane, const RowAddr *rows,
                            std::size_t count)
{
    const LaneBatch one{lane, rows, count};
    onActivateLanes(&one, 1);
}

namespace
{

/** Per-lane accumulators folded into SchemeStats once at the end,
 *  like Prcat::onActivateBatch - the inner loop carries nothing but
 *  the walk. */
struct LaneAcc
{
    std::uint32_t *base;
    const RowAddr *rows;
    std::size_t count;
    std::uint32_t lane;
    Count sram = 0;
    Count splits = 0;
    Count merges = 0;
    Count events = 0;
    Count victims = 0;
};

#if CATSIM_X86_DESCENT
#pragma GCC diagnostic push
// GCC's maskless gather intrinsics expand with an uninitialized
// pass-through operand that is fully overwritten; harmless, but it
// trips -Wmaybe-uninitialized at -O3 under -Werror.
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"

/**
 * AVX2 descent of one full group: the same jump+quad walk as the
 * scalar phase 1, eight rows per vector, with real vpgatherdd gathers
 * for the table loads (the build targets baseline x86-64, so this is
 * compiled as a separate clone and entered only when the CPU reports
 * AVX2).  Returns false - leaving @p cur untouched - when any row is
 * out of range, so the scalar path can re-walk the group and panic at
 * the exact offending element.
 */
template <int StepsC>
__attribute__((target("avx2"))) bool
descendGroupAvx2(const std::uint32_t *base, const std::uint32_t *quad,
                 std::uint32_t steps, std::uint32_t shift,
                 std::uint32_t offJump, RowAddr numRows,
                 const RowAddr *rows, std::uint32_t *cur)
{
    static_assert(kDescentGroup % 8 == 0, "AVX2 path walks 8-row vectors");
    const std::uint32_t nSteps =
        StepsC >= 0 ? static_cast<std::uint32_t>(StepsC) : steps;
    const __m256i one = _mm256_set1_epi32(1);
    const auto *jump =
        reinterpret_cast<const int *>(base + offJump);
    // Range check up front (the gather would read junk indices).
    __m256i maxRow = _mm256_setzero_si256();
    for (std::size_t half = 0; half < kDescentGroup / 8; ++half)
        maxRow = _mm256_max_epu32(
            maxRow, _mm256_loadu_si256(reinterpret_cast<const __m256i *>(
                        rows + 8 * half)));
    maxRow = _mm256_max_epu32(maxRow,
                              _mm256_srli_si256(maxRow, 8));
    maxRow = _mm256_max_epu32(maxRow,
                              _mm256_srli_si256(maxRow, 4));
    const std::uint32_t hi = static_cast<std::uint32_t>(
        std::max(_mm256_extract_epi32(maxRow, 0),
                 _mm256_extract_epi32(maxRow, 4)));
    if (hi >= numRows)
        return false;
    for (std::size_t half = 0; half < kDescentGroup / 8; ++half) {
        const __m256i row = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(rows + 8 * half));
        __m256i c = _mm256_i32gather_epi32(
            jump,
            _mm256_srl_epi32(row, _mm_cvtsi32_si128(
                                      static_cast<int>(shift))),
            4);
        for (std::uint32_t s = 0; s < nSteps; ++s) {
            const std::uint32_t bitPos = shift - 1 - 2 * s;
            const __m256i b1 = _mm256_and_si256(
                _mm256_srl_epi32(
                    row, _mm_cvtsi32_si128(
                             static_cast<int>(bitPos & 31u))),
                one);
            const __m256i b2 = _mm256_and_si256(
                _mm256_srl_epi32(
                    row, _mm_cvtsi32_si128(
                             static_cast<int>((bitPos - 1) & 31u))),
                one);
            const __m256i qidx = _mm256_add_epi32(
                _mm256_slli_epi32(c, 1),
                _mm256_add_epi32(_mm256_slli_epi32(b1, 1), b2));
            const __m256i next = _mm256_i32gather_epi32(
                reinterpret_cast<const int *>(quad), qidx, 4);
            // Keep the old code where it is already a leaf (odd) -
            // the vector version of the scalar cmov.
            const __m256i isLeaf = _mm256_cmpeq_epi32(
                _mm256_and_si256(c, one), one);
            c = _mm256_blendv_epi8(next, c, isLeaf);
        }
        _mm256_storeu_si256(
            reinterpret_cast<__m256i *>(cur + 8 * half), c);
    }
    return true;
}

/**
 * AVX-512 processing of one full group: the descent of
 * descendGroupAvx2 at full zmm width, FUSED with the resolve phase.
 * The resolve is the conflict-detection histogram idiom: vpconflictd
 * marks, per lane, the earlier lanes that landed on the same counter,
 * so lane j's post-increment value is v + (earlier duplicates) + 1;
 * when every lane's value stays <= its threshold (the overwhelmingly
 * common case) the whole group commits with ONE scatter (duplicate
 * indices write in lane order, so the last duplicate's v + n wins)
 * and the SRAM charge is a horizontal sum of the gathered per-counter
 * charges.  Any lane crossing its threshold aborts before any state
 * is touched and the scalar resolve re-runs the group from scratch -
 * bit-identical, since increments-then-delegate is exactly what the
 * serial loop would do.
 *
 * Returns 2 when the group was fully consumed, 1 when @p cur holds
 * the descended leaf codes for a scalar resolve (some lane crosses
 * its threshold), 0 when a row is out of range (caller re-walks to
 * panic at the exact element).
 */
template <int StepsC>
__attribute__((target("avx512f,avx512cd,avx512vpopcntdq"))) int
processGroupAvx512(std::uint32_t *base, const std::uint32_t *quad,
                   std::uint32_t steps, std::uint32_t shift,
                   std::uint32_t offThr, std::uint32_t offSram,
                   std::uint32_t offJump, RowAddr numRows,
                   const RowAddr *rows, std::uint32_t *cur,
                   Count *sramAcc)
{
    static_assert(kDescentGroup == 16,
                  "AVX-512 path processes one zmm of rows");
    const std::uint32_t nSteps =
        StepsC >= 0 ? static_cast<std::uint32_t>(StepsC) : steps;
    const __m512i one = _mm512_set1_epi32(1);
    const __m512i row = _mm512_loadu_si512(rows);
    if (_mm512_cmpge_epu32_mask(
            row, _mm512_set1_epi32(static_cast<int>(numRows))))
        return 0;
    __m512i c = _mm512_i32gather_epi32(
        _mm512_srl_epi32(row,
                         _mm_cvtsi32_si128(static_cast<int>(shift))),
        reinterpret_cast<const int *>(base + offJump), 4);
    for (std::uint32_t s = 0; s < nSteps; ++s) {
        const std::uint32_t bitPos = shift - 1 - 2 * s;
        const __m512i b1 = _mm512_and_si512(
            _mm512_srl_epi32(
                row,
                _mm_cvtsi32_si128(static_cast<int>(bitPos & 31u))),
            one);
        const __m512i b2 = _mm512_and_si512(
            _mm512_srl_epi32(row, _mm_cvtsi32_si128(static_cast<int>(
                                      (bitPos - 1) & 31u))),
            one);
        const __m512i qidx = _mm512_add_epi32(
            _mm512_slli_epi32(c, 1),
            _mm512_add_epi32(_mm512_slli_epi32(b1, 1), b2));
        const __m512i next = _mm512_i32gather_epi32(
            qidx, reinterpret_cast<const int *>(quad), 4);
        const __mmask16 leaf = _mm512_test_epi32_mask(c, one);
        c = _mm512_mask_blend_epi32(leaf, next, c);
    }
    const __m512i cidx = _mm512_srli_epi32(c, 1);
    const __m512i v = _mm512_i32gather_epi32(
        cidx, reinterpret_cast<const int *>(base), 4);
    const __m512i thr = _mm512_i32gather_epi32(
        cidx, reinterpret_cast<const int *>(base + offThr), 4);
    const __m512i pre =
        _mm512_popcnt_epi32(_mm512_conflict_epi32(cidx));
    const __m512i val =
        _mm512_add_epi32(_mm512_add_epi32(v, pre), one);
    if (_mm512_cmpgt_epu32_mask(val, thr)) {
        _mm512_storeu_si512(cur, c);
        return 1;
    }
    _mm512_i32scatter_epi32(reinterpret_cast<int *>(base), cidx, val,
                            4);
    const __m512i charge = _mm512_i32gather_epi32(
        cidx, reinterpret_cast<const int *>(base + offSram), 4);
    *sramAcc +=
        static_cast<std::uint32_t>(_mm512_reduce_add_epi32(charge));
    return 2;
}

#pragma GCC diagnostic pop

/** One-time CPU probes for the vector clones. */
inline bool
cpuHasAvx2()
{
    static const bool has = __builtin_cpu_supports("avx2") != 0;
    return has;
}

inline bool
cpuHasAvx512()
{
    static const bool has =
        __builtin_cpu_supports("avx512f") != 0 &&
        __builtin_cpu_supports("avx512cd") != 0 &&
        __builtin_cpu_supports("avx512vpopcntdq") != 0;
    return has;
}
#endif // CATSIM_X86_DESCENT

/**
 * The independent-lane (no shared pool) hot path, lane-major with the
 * grouped branchless descent.  @p StepsC bakes the fixed descent trip
 * count in at compile time (the dispatch switch below instantiates the
 * common depths) so the whole group's walk unrolls with `cur` held in
 * registers; StepsC < 0 falls back to the runtime @p steps bound.
 * @p slow delegates one access to the authoritative tree.
 */
template <int StepsC, typename SlowFn>
void
runLanesIndependent(LaneAcc *accs, std::size_t nLanes, RowAddr numRows,
                    std::uint32_t steps, std::uint32_t shift,
                    std::uint32_t offThr, std::uint32_t offSram,
                    std::uint32_t offJump, std::uint32_t offQuad,
                    SlowFn &&slow)
{
    const std::uint32_t nSteps =
        StepsC >= 0 ? static_cast<std::uint32_t>(StepsC) : steps;
    for (std::size_t b = 0; b < nLanes; ++b) {
        LaneAcc &a = accs[b];
        std::uint32_t *base = a.base;
        const std::uint32_t *quad = base + offQuad;

        // Phase 1 of one group: descend it as branchless fixed-step
        // chains.  Consecutive rows of one lane walk the same frozen
        // topology, so their descents are independent loads the core
        // overlaps; only the counter compare/increment (phase 2) is
        // order-dependent.
        const auto descend = [&](const RowAddr *rows, std::uint32_t *cur,
                                 std::size_t group) {
            for (std::size_t k = 0; k < group; ++k) {
                const RowAddr row = rows[k];
                if (row >= numRows)
                    CATSIM_PANIC("row ", row, " out of range");
                cur[k] = base[offJump + (row >> shift)];
            }
            for (std::uint32_t s = 0; s < nSteps; ++s) {
                const std::uint32_t bitPos = shift - 1 - 2 * s;
                for (std::size_t k = 0; k < group; ++k) {
                    const RowAddr row = rows[k];
                    const std::uint32_t b1 =
                        (row >> (bitPos & 31u)) & 1u;
                    const std::uint32_t b2 =
                        (row >> ((bitPos - 1) & 31u)) & 1u;
                    // Loaded unconditionally (the quad pad makes it
                    // safe for leaf codes), kept only while still
                    // internal: a conditional move, never a
                    // mispredictable leaf-depth branch.
                    const std::uint32_t next =
                        quad[2 * cur[k] + 2 * b1 + b2];
                    cur[k] = (cur[k] & 1u) ? cur[k] : next;
                }
            }
        };

        // Phase 2: resolve in stream order; returns how many of the
        // group's rows were consumed.  A slow event may change this
        // lane's topology, so the rest of the group's descents are
        // stale - restart right after it.
        const auto resolve = [&](const RowAddr *rows,
                                 const std::uint32_t *cur,
                                 std::size_t group) -> std::size_t {
            for (std::size_t k = 0; k < group; ++k) {
                const std::uint32_t c = cur[k] >> 1;
                if (base[c] < base[offThr + c]) {
                    ++base[c];
                    a.sram += base[offSram + c];
                    continue;
                }
                const auto r = slow(a.lane, rows[k]);
                a.sram += r.sramAccesses;
                a.splits += r.didSplit;
                a.merges += r.didReconfigure;
                if (r.refreshed) {
                    ++a.events;
                    a.victims += r.rowsRefreshed;
                }
                return k + 1;
            }
            return group;
        };

        std::size_t i = 0;
#if CATSIM_X86_DESCENT
        if (cpuHasAvx512()) {
            while (a.count - i >= kDescentGroup) {
                const RowAddr *rows = a.rows + i;
                alignas(64) std::uint32_t cur[kDescentGroup];
                const int st = processGroupAvx512<StepsC>(
                    base, quad, nSteps, shift, offThr, offSram,
                    offJump, numRows, rows, cur, &a.sram);
                if (st == 2) {
                    i += kDescentGroup;
                    continue;
                }
                if (st == 0)
                    descend(rows, cur, kDescentGroup); // panics
                i += resolve(rows, cur, kDescentGroup);
            }
        } else if (cpuHasAvx2()) {
            while (a.count - i >= kDescentGroup) {
                const RowAddr *rows = a.rows + i;
                alignas(32) std::uint32_t cur[kDescentGroup];
                if (!descendGroupAvx2<StepsC>(base, quad, nSteps,
                                              shift, offJump, numRows,
                                              rows, cur))
                    descend(rows, cur, kDescentGroup); // panics
                i += resolve(rows, cur, kDescentGroup);
            }
        }
#endif
        // Full groups get the compile-time kDescentGroup trip count
        // (the lambdas inline at each call site, so the loops unroll
        // completely); the tail call keeps the runtime bound.
        while (a.count - i >= kDescentGroup) {
            const RowAddr *rows = a.rows + i;
            std::uint32_t cur[kDescentGroup];
            descend(rows, cur, kDescentGroup);
            i += resolve(rows, cur, kDescentGroup);
        }
        while (i < a.count) {
            const RowAddr *rows = a.rows + i;
            const std::size_t group = a.count - i;
            std::uint32_t cur[kDescentGroup];
            descend(rows, cur, group);
            i += resolve(rows, cur, group);
        }
    }
}

} // namespace

void
TreeBundle::onActivateLanes(const LaneBatch *batches, std::size_t count)
{
    using Acc = LaneAcc;
    std::vector<Acc> accs;
    accs.reserve(count);
    std::size_t maxCount = 0;
    for (std::size_t b = 0; b < count; ++b) {
        if (batches[b].count == 0)
            continue;
        accs.push_back(Acc{laneBase(batches[b].lane), batches[b].rows,
                           batches[b].count, batches[b].lane});
        maxCount = std::max(maxCount, batches[b].count);
    }

    const RowAddr numRows = trees_.front()->params_.numRows;
    const std::uint32_t shift = jumpShift_;
    const std::uint32_t offThr = offThr_;
    const std::uint32_t offSram = offSram_;
    const std::uint32_t offJump = offJump_;
    const std::uint32_t offQuad = offQuad_;
    const std::uint32_t steps = descentSteps_;
    const std::size_t nLanes = accs.size();

    if (pool_ == nullptr) {
        // Independent lanes: no shared pool means lanes cannot observe
        // each other at all, so any cross-lane order is bit-identical
        // and we are free to run lane-major (one 2 KB arena slice hot
        // in L1 at a time) with the grouped branchless descent.  The
        // switch instantiates the common descent depths so the walk
        // fully unrolls (see runLanesIndependent).
        const auto slow = [this](std::uint32_t lane, RowAddr row) {
            return slowAccess(lane, row);
        };
        switch (steps) {
        case 1:
            runLanesIndependent<1>(accs.data(), nLanes, numRows, steps,
                                   shift, offThr, offSram, offJump,
                                   offQuad, slow);
            break;
        case 2:
            runLanesIndependent<2>(accs.data(), nLanes, numRows, steps,
                                   shift, offThr, offSram, offJump,
                                   offQuad, slow);
            break;
        case 3:
            runLanesIndependent<3>(accs.data(), nLanes, numRows, steps,
                                   shift, offThr, offSram, offJump,
                                   offQuad, slow);
            break;
        case 4:
            runLanesIndependent<4>(accs.data(), nLanes, numRows, steps,
                                   shift, offThr, offSram, offJump,
                                   offQuad, slow);
            break;
        default:
            runLanesIndependent<-1>(accs.data(), nLanes, numRows,
                                    steps, shift, offThr, offSram,
                                    offJump, offQuad, slow);
            break;
        }
    } else {
        // Shared-pool group: lanes couple through live pool
        // arbitration on the slow path, so the cross-lane order IS
        // part of the semantics.  Keep the serial lockstep
        // round-robin: position i of every lane, then i+1.
        for (std::size_t i = 0; i < maxCount; ++i) {
            for (std::size_t b = 0; b < nLanes; ++b) {
                Acc &a = accs[b];
                if (i >= a.count)
                    continue;
                const RowAddr row = a.rows[i];
                if (row >= numRows)
                    CATSIM_PANIC("row ", row, " out of range");
                std::uint32_t *base = a.base;
                const std::uint32_t *quad = base + offQuad;
                std::uint32_t cur = base[offJump + (row >> shift)];
                std::uint32_t bitPos = shift - 1;
                while (!(cur & 1u)) {
                    const std::uint32_t b1 = (row >> bitPos) & 1u;
                    const std::uint32_t b2 =
                        (row >> ((bitPos - 1) & 31u)) & 1u;
                    cur = quad[2 * cur + 2 * b1 + b2];
                    bitPos -= 2;
                }
                const std::uint32_t c = cur >> 1;
                if (base[c] < base[offThr + c]) {
                    ++base[c];
                    a.sram += base[offSram + c];
                    continue;
                }
                const auto r = slowAccess(a.lane, row);
                a.sram += r.sramAccesses;
                a.splits += r.didSplit;
                a.merges += r.didReconfigure;
                if (r.refreshed) {
                    ++a.events;
                    a.victims += r.rowsRefreshed;
                }
            }
        }
    }

    for (const Acc &a : accs) {
        SchemeStats &st = stats_[a.lane];
        st.activations += a.count;
        st.sramAccesses += a.sram;
        st.splits += a.splits;
        st.merges += a.merges;
        st.refreshEvents += a.events;
        st.victimRowsRefreshed += a.victims;
    }
}

void
TreeBundle::onEpoch(std::uint32_t lane)
{
    CatTree &t = *trees_[lane];
    if (t.params_.enableWeights) {
        // DRCAT keeps the learned shape; only the counts restart.
        t.resetCountsOnly();
        std::memset(laneBase(lane), 0, numCounters_ * 4);
        // A sibling's growth since our last event may have exhausted
        // or refilled the pool; epoch boundaries are rare enough to
        // re-check.
        if (pool_ != nullptr)
            refreshThresholds(lane);
    } else {
        t.reset();
        rebuildLane(lane);
        if (pool_ != nullptr) {
            // The reset released this lane's grown counters back to
            // the pool: siblings may be splittable again.
            for (std::uint32_t l = 0; l < lanes(); ++l)
                if (l != lane)
                    refreshThresholds(l);
        }
    }
    ++stats_[lane].epochResets;
}

const CatTree &
TreeBundle::tree(std::uint32_t lane) const
{
    syncTreeCounts(lane);
    return *trees_[lane];
}

std::string
TreeBundle::laneName(std::uint32_t lane) const
{
    const auto &p = trees_[lane]->params();
    const std::uint32_t m =
        p.presplitCounters ? p.presplitCounters : p.numCounters;
    std::string n = p.enableWeights ? "DRCAT_" : "PRCAT_";
    n += std::to_string(m);
    if (p.sharedPool != nullptr)
        n += "_rank" + std::to_string(p.numCounters / m);
    return n;
}

} // namespace catsim
