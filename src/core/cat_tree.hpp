/**
 * @file
 * The Counter-based Adaptive Tree (paper Section IV).
 *
 * The tree partitions a bank's N rows into variable-size groups, one
 * active counter per group.  It is stored SRAM-style (paper Fig 5): an
 * array I of at most M-1 intermediate nodes, each holding left/right
 * pointers plus leaf flags, and an array C of M counters.  A row
 * address is located by chasing pointers from the root; the address bit
 * at each depth selects the child.
 *
 * Growth (Algorithm 1): when a leaf counter at depth d reaches the
 * split threshold T_d, a free counter is cloned from it and the group
 * halves; at depth L-1 (or when no counter is free) the threshold is
 * the refresh threshold T, and reaching it refreshes every row in the
 * group plus the two rows adjacent to the group, then resets the
 * counter.
 *
 * The tree starts from a balanced "pre-split" shape with lambda =
 * log2(M) levels (M/2 active counters at depth log2(M)-1), which also
 * bounds pointer chasing to L - log2(M/4) SRAM accesses per activation
 * (Section IV-C).
 *
 * DRCAT support (Section V-B): a 2-bit weight per counter tracks how
 * often its group triggers refreshes.  When a counter's weight
 * saturates, a cold pair of sibling leaves (both weights zero) is
 * merged and the freed counter splits the hot leaf (Fig 7).
 */

#ifndef CATSIM_CORE_CAT_TREE_HPP
#define CATSIM_CORE_CAT_TREE_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace catsim
{

/** Adaptive tree of activation counters for one DRAM bank. */
class CatTree
{
  public:
    /** Construction parameters. */
    struct Params
    {
        RowAddr numRows = 65536;           //!< N (power of two)
        std::uint32_t numCounters = 64;    //!< M (power of two >= 2)
        std::uint32_t maxLevels = 11;      //!< L
        std::uint32_t refreshThreshold = 32768; //!< T
        /** Split threshold per depth, size L, last element == T. */
        std::vector<std::uint32_t> splitThresholds;
        bool enableWeights = false;        //!< DRCAT reconfiguration
    };

    /** Outcome of one activation. */
    struct AccessResult
    {
        bool refreshed = false;
        RowAddr lo = 0;                //!< victim range incl. neighbors
        RowAddr hi = 0;
        Count rowsRefreshed = 0;
        std::uint32_t sramAccesses = 0;
        bool didSplit = false;
        bool didReconfigure = false;   //!< DRCAT merge+split happened
        std::uint32_t leafDepth = 0;
    };

    explicit CatTree(Params params);

    /** Record one activation of @p row and apply Algorithm 1. */
    AccessResult access(RowAddr row);

    /** Rebuild the pre-split balanced tree and zero all state. */
    void reset();

    /**
     * Zero every counter but keep the learned tree shape and weights
     * (DRCAT epoch behaviour: retention refresh clears disturbance, so
     * counts restart, while the adaptation survives).
     */
    void resetCountsOnly();

    /** Number of active (leaf) counters. */
    std::uint32_t activeCounters() const { return activeCounters_; }

    /** Depth of the leaf currently covering @p row (non-mutating). */
    std::uint32_t leafDepth(RowAddr row) const;

    /** Count held by the leaf covering @p row (non-mutating). */
    std::uint32_t counterValue(RowAddr row) const;

    /** Row range [lo, hi] covered by the leaf for @p row. */
    std::pair<RowAddr, RowAddr> leafRange(RowAddr row) const;

    /** Weight register of the leaf covering @p row (DRCAT). */
    std::uint32_t leafWeight(RowAddr row) const;

    /** Deepest leaf in the whole tree (for tests). */
    std::uint32_t maxLeafDepth() const;

    /**
     * Validate structural invariants: leaves partition [0, N-1], active
     * counter count matches the tree, no depth exceeds L-1, counts stay
     * below/at their thresholds, free lists are consistent.
     *
     * @param why Optional out-parameter describing the first violation.
     * @retval true when all invariants hold.
     */
    bool checkInvariants(std::string *why = nullptr) const;

    const Params &params() const { return params_; }
    Count totalSplits() const { return splits_; }
    Count totalMerges() const { return merges_; }

  private:
    static constexpr std::uint32_t kNone = 0xFFFFFFFFu;

    struct INode
    {
        std::uint32_t l = kNone;
        std::uint32_t r = kNone;
        bool lleaf = true;
        bool rleaf = true;
    };

    /** Traversal bookkeeping for the leaf covering a row. */
    struct Walk
    {
        std::uint32_t counter = 0;   //!< leaf counter index
        std::uint32_t depth = 0;
        RowAddr lo = 0;
        RowAddr hi = 0;
        std::uint32_t parent = kNone; //!< inode above the leaf
        bool parentRight = false;     //!< which child slot we came from
    };

    Walk walkTo(RowAddr row) const;
    std::uint32_t thresholdAt(std::uint32_t depth, RowAddr lo,
                              RowAddr hi) const;
    bool canSplit(const Walk &w) const;
    void splitLeaf(const Walk &w, std::uint32_t new_counter,
                   std::uint32_t new_inode);
    std::uint32_t allocCounter();
    std::uint32_t allocInode();
    bool tryReconfigure(const Walk &hot);
    std::uint32_t inodeDepth(std::uint32_t inode) const;
    void presplit(std::uint32_t parent, bool right, std::uint32_t counter,
                  std::uint32_t depth, std::uint32_t target_depth);
    bool walkInvariants(std::uint32_t ptr, bool is_leaf, RowAddr lo,
                        RowAddr hi, std::uint32_t depth,
                        std::vector<bool> &seen_counters,
                        std::vector<bool> &seen_inodes,
                        std::string *why) const;

    Params params_;
    std::uint32_t presplitDepth_;   //!< depth of initial leaves
    std::vector<INode> inodes_;
    std::vector<std::uint32_t> inodeParent_;     //!< kNone for root
    std::vector<bool> inodeParentRight_;
    std::vector<bool> inodeInUse_;
    std::vector<std::uint32_t> counts_;
    std::vector<std::uint8_t> weights_;
    std::vector<bool> counterInUse_;
    std::vector<std::uint32_t> freeCounters_;    //!< stack
    std::vector<std::uint32_t> freeInodes_;      //!< stack
    std::uint32_t rootPtr_ = 0;
    bool rootIsLeaf_ = true;
    std::uint32_t activeCounters_ = 1;
    Count splits_ = 0;
    Count merges_ = 0;
};

} // namespace catsim

#endif // CATSIM_CORE_CAT_TREE_HPP
