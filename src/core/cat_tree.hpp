/**
 * @file
 * The Counter-based Adaptive Tree (paper Section IV).
 *
 * The tree partitions a bank's N rows into variable-size groups, one
 * active counter per group.  Growth (Algorithm 1): when a leaf counter
 * at depth d reaches the split threshold T_d, a free counter is cloned
 * from it and the group halves; at depth L-1 (or when no counter is
 * free) the threshold is the refresh threshold T, and reaching it
 * refreshes every row in the group plus the two rows adjacent to the
 * group, then resets the counter.
 *
 * M need not be a power of two.  The initial balanced shape always has
 * P = floor(M/2) leaves; when P is not a power of two the deepest
 * pre-split level is uneven: with d = floor(log2 P), the (P - 2^d)
 * lowest-address prefixes carry leaves one level deeper (depth d+1)
 * than the rest (depth d), so the leaf row-groups differ by a factor
 * of two across the bank.  Every group is still an aligned
 * power-of-two span, so the walk arithmetic is unchanged; only the
 * immutable prefix (and with it the jump table and the merge floor)
 * shrinks to d levels.  For a power-of-two M this degenerates to the
 * paper's shape (M/2 leaves, all at depth log2(M)-1) bit for bit.
 *
 * A tree can also draw its growth from a rank-shared counter budget
 * (`Params::sharedPool`, see shared_pool.hpp): splits then require a
 * free counter in the *pool*, not just in the local free list, and
 * merges/resets return counters to it.  Sharing costs one extra SRAM
 * access per activation plus one per split/merge (rank arbitration and
 * shared free-list upkeep), charged through `sramAccesses`.
 *
 * Storage is a flattened structure-of-arrays layout built around the
 * invariant the paper's SRAM sizing relies on (Section IV-C): the
 * balanced pre-split prefix of lambda = log2(M) levels is never merged
 * away, so every node at depth lambda-1 can be *indexed directly* from
 * the top lambda-1 row-address bits.  `walkTo` jumps straight to that
 * node through a 2^(lambda-1)-entry jump table and then descends with
 * a branchless child select: each intermediate node owns two packed
 * child slots `(index << 1) | is_leaf`, and the row-address bit at the
 * current depth picks the slot - one array load per level, no pointer
 * chasing, no per-level branch.  This mirrors the hardware's
 * direct-indexed SRAM rows and is what `sramAccesses` counts.
 *
 * DRCAT support (Section V-B): a 2-bit weight per counter tracks how
 * often its group triggers refreshes.  The architectural rule is "every
 * refresh increments the hot counter's weight (saturating at 3) and
 * decrements everyone else's (floored at 0)"; instead of an O(M) sweep
 * per refresh the tree keeps one global refresh ordinal and a
 * last-touch stamp per counter, and materializes
 * `max(0, stored - (ordinal - touch))` on read - exact and O(1),
 * because a counter is only *not* decremented by the refreshes it
 * triggered itself, which are exactly the ones that restamp it.  When
 * a weight saturates, a cold pair of sibling leaves (both weights
 * zero) is merged and the freed counter splits the hot leaf (Fig 7);
 * merge candidates come from a maintained bitset of "both children
 * are leaves, at or below the pre-split level" nodes plus a stored
 * per-node depth, not a full-tree scan.
 */

#ifndef CATSIM_CORE_CAT_TREE_HPP
#define CATSIM_CORE_CAT_TREE_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace catsim
{

class SharedCounterPool;

/** Adaptive tree of activation counters for one DRAM bank. */
class CatTree
{
  public:
    /** Construction parameters. */
    struct Params
    {
        RowAddr numRows = 65536;           //!< N (power of two)
        std::uint32_t numCounters = 64;    //!< M (any value >= 2)
        std::uint32_t maxLevels = 11;      //!< L
        std::uint32_t refreshThreshold = 32768; //!< T
        /** Split threshold per depth, size L, last element == T. */
        std::vector<std::uint32_t> splitThresholds;
        bool enableWeights = false;        //!< DRCAT reconfiguration
        /**
         * Counters defining the initial balanced shape (pre-split
         * leaves = presplitCounters/2); 0 means numCounters.  A
         * rank-pooled tree keeps its per-bank shape here while
         * numCounters holds the whole pool's capacity.
         */
        std::uint32_t presplitCounters = 0;
        /**
         * Optional rank-shared counter budget (not owned; must outlive
         * the tree).  Splits require a free pool counter; merges,
         * resets and destruction release back.
         */
        SharedCounterPool *sharedPool = nullptr;
    };

    /** Outcome of one activation. */
    struct AccessResult
    {
        bool refreshed = false;
        RowAddr lo = 0;                //!< victim range incl. neighbors
        RowAddr hi = 0;
        Count rowsRefreshed = 0;
        std::uint32_t sramAccesses = 0;
        bool didSplit = false;
        bool didReconfigure = false;   //!< DRCAT merge+split happened
        std::uint32_t leafDepth = 0;
    };

    explicit CatTree(Params params);
    ~CatTree();

    CatTree(const CatTree &) = delete;
    CatTree &operator=(const CatTree &) = delete;

    /** Record one activation of @p row and apply Algorithm 1. */
    AccessResult access(RowAddr row);

    /** Rebuild the pre-split balanced tree and zero all state. */
    void reset();

    /**
     * Zero every counter but keep the learned tree shape and weights
     * (DRCAT epoch behaviour: retention refresh clears disturbance, so
     * counts restart, while the adaptation survives).
     */
    void resetCountsOnly();

    /** Number of active (leaf) counters. */
    std::uint32_t activeCounters() const { return activeCounters_; }

    /** Depth of the leaf currently covering @p row (non-mutating). */
    std::uint32_t leafDepth(RowAddr row) const;

    /** Count held by the leaf covering @p row (non-mutating). */
    std::uint32_t counterValue(RowAddr row) const;

    /** Row range [lo, hi] covered by the leaf for @p row. */
    std::pair<RowAddr, RowAddr> leafRange(RowAddr row) const;

    /** Weight register of the leaf covering @p row (DRCAT). */
    std::uint32_t leafWeight(RowAddr row) const;

    /** Deepest leaf in the whole tree (for tests). */
    std::uint32_t maxLeafDepth() const;

    /**
     * Validate structural invariants: leaves partition [0, N-1], active
     * counter count matches the tree, no depth exceeds L-1, no leaf
     * sits above the pre-split level, counts stay below/at their
     * thresholds, free lists are consistent, and the derived hot-path
     * indexes (jump table, per-node depths/ranges, merge-candidate
     * bitset) agree with the tree.  A brute-force oracle additionally
     * replays the jump+quad hot-path lookup (`leafSlotFor`) for the
     * corner rows of every leaf and requires it to land on exactly the
     * leaf the plain recursive descent reaches - this is what pins the
     * uneven non-power-of-two pre-split shapes.
     *
     * @param why Optional out-parameter describing the first violation.
     * @retval true when all invariants hold.
     */
    bool checkInvariants(std::string *why = nullptr) const;

    const Params &params() const { return params_; }
    Count totalSplits() const { return splits_; }
    Count totalMerges() const { return merges_; }

  private:
    /**
     * The tree bundle mirrors this tree's hot tables (jump, quad,
     * counts, per-counter thresholds) into a bank-major arena and
     * needs a narrow private port: it reads the structural state after
     * every delegated mutation and writes `counts_` back before one.
     * No other class gets this access.
     */
    friend class TreeBundle;

    static constexpr std::uint32_t kNone = 0xFFFFFFFFu;

    /** Traversal bookkeeping for the leaf covering a row. */
    struct Walk
    {
        std::uint32_t counter = 0;   //!< leaf counter index
        std::uint32_t depth = 0;
        RowAddr lo = 0;
        RowAddr hi = 0;
        std::uint32_t parent = kNone; //!< inode above the leaf
        bool parentRight = false;     //!< which child slot we came from
    };

    /** Child slot encoding: node index in the high bits, leaf flag in
     *  bit 0, so the walk needs a single load per level. */
    static std::uint32_t pack(std::uint32_t node, bool leaf)
    {
        return (node << 1) | static_cast<std::uint32_t>(leaf);
    }
    static bool isLeafSlot(std::uint32_t slot) { return slot & 1u; }
    static std::uint32_t slotNode(std::uint32_t slot)
    {
        return slot >> 1;
    }

    /** Chase quad entries from the jump node to the covering leaf's
     *  packed slot - the only data-dependent part of a lookup. */
    std::uint32_t leafSlotFor(RowAddr row) const
    {
        const std::uint32_t *quad = quad_.data();
        std::uint32_t cur = jump_[row >> jumpShift_];
        std::uint32_t bitPos = jumpShift_ - 1;
        while (!isLeafSlot(cur)) {
            const std::uint32_t b1 = (row >> bitPos) & 1u;
            const std::uint32_t b2 =
                (row >> ((bitPos - 1) & 31u)) & 1u;
            cur = quad[2 * cur + 2 * b1 + b2];
            bitPos -= 2;
        }
        return cur;
    }

    Walk walkTo(RowAddr row) const;
    Walk walkFromCounter(std::uint32_t counter, RowAddr row) const;
    void setChildSlot(std::uint32_t inode, bool right,
                      std::uint32_t slot);
    void updateCanGrow()
    {
        canGrow_ = !freeCounters_.empty() && !freeInodes_.empty();
    }
    std::uint32_t thresholdAt(std::uint32_t depth) const;
    void splitLeaf(const Walk &w, std::uint32_t new_counter,
                   std::uint32_t new_inode);
    std::uint32_t allocCounter();
    std::uint32_t allocInode();
    bool tryReconfigure(const Walk &hot);
    /** Initial-leaf depth for the prefix covering @p lo (uneven when
     *  floor(M/2) is not a power of two). */
    std::uint32_t presplitTargetDepth(RowAddr lo) const
    {
        if (presplitExtra_ == 0)
            return presplitDepth_;
        return (lo >> jumpShift_) < presplitExtra_ ? presplitDepth_ + 1
                                                   : presplitDepth_;
    }
    void presplit(std::uint32_t parent, bool right, std::uint32_t counter,
                  std::uint32_t depth, RowAddr lo);
    void rebuildJumpTable();
    bool walkInvariants(std::uint32_t slot, RowAddr lo, RowAddr hi,
                        std::uint32_t depth, std::uint32_t parent,
                        bool right, std::vector<bool> &seen_counters,
                        std::vector<bool> &seen_inodes,
                        std::string *why) const;

    /** Weight of @p c under the lazy decay (see file comment). */
    std::uint32_t materializedWeight(std::uint32_t c) const
    {
        const std::uint64_t elapsed =
            refreshOrdinal_ - weightTouch_[c];
        const std::uint32_t stored = weightStored_[c];
        return elapsed >= stored
            ? 0u
            : stored - static_cast<std::uint32_t>(elapsed);
    }

    /** Store an absolute weight for @p c as of the current ordinal. */
    void setWeight(std::uint32_t c, std::uint8_t w)
    {
        weightStored_[c] = w;
        weightTouch_[c] = refreshOrdinal_;
    }

    bool candGet(std::uint32_t inode) const
    {
        return (candWords_[inode >> 6] >> (inode & 63)) & 1u;
    }
    void candSet(std::uint32_t inode)
    {
        candWords_[inode >> 6] |= std::uint64_t{1} << (inode & 63);
    }
    void candClear(std::uint32_t inode)
    {
        candWords_[inode >> 6] &= ~(std::uint64_t{1} << (inode & 63));
    }

    Params params_;
    std::uint32_t presplitDepth_;   //!< shallowest initial-leaf depth
    /** Prefixes (of presplitDepth_ bits) whose initial leaves sit one
     *  level deeper; 0 when floor(M/2) is a power of two. */
    std::uint32_t presplitExtra_ = 0;
    std::uint32_t presplitLeaves_;  //!< P = initial leaf count
    std::uint32_t rowBits_;         //!< log2(numRows)
    SharedCounterPool *pool_ = nullptr;
    std::uint32_t poolHeld_ = 0;    //!< counters charged to the pool

    // Flattened tree: two packed child slots per intermediate node,
    // plus SoA side tables (parent link, depth, covered range start)
    // kept in sync by split/merge so nothing is ever recomputed by
    // chasing pointers.
    std::vector<std::uint32_t> slots_;           //!< 2 per inode
    /**
     * Grandchild acceleration: quad_[4i + 2*b1 + b2] is the slot
     * reached from inode i by descending (b1, b2) - two levels per
     * load in the walk.  A leaf child absorbs: both of its b2 entries
     * hold the leaf slot itself.  Kept in sync by setChildSlot (every
     * slot write mirrors into the node's own quad half and into its
     * parent's entry that routes through it).
     */
    std::vector<std::uint32_t> quad_;
    std::vector<std::uint32_t> inodeParent_;     //!< kNone for root
    std::vector<bool> inodeParentRight_;
    std::vector<bool> inodeInUse_;
    std::vector<std::uint32_t> inodeDepth_;
    std::vector<RowAddr> inodeLo_;
    /** Merge-candidate bitset: in-use nodes at depth >= pre-split with
     *  two leaf children (weights are checked at merge time). */
    std::vector<std::uint64_t> candWords_;

    // Implicit pre-split index: the node at depth presplitDepth_
    // covering each top-bits prefix, as a packed slot.
    std::vector<std::uint32_t> jump_;
    std::uint32_t jumpShift_ = 0;

    std::vector<std::uint32_t> counts_;
    // Per-leaf position tables: the walk reads depth/parent/side here
    // instead of tracking them level by level (quad steps can overrun
    // the consumed-bit count at an absorbed leaf, so they could not be
    // derived from the walk anyway).
    std::vector<std::uint32_t> counterDepth_;
    std::vector<std::uint32_t> counterParent_;   //!< kNone for root
    std::vector<std::uint8_t> counterSide_;
    std::vector<std::uint8_t> weightStored_;
    std::vector<std::uint64_t> weightTouch_;
    std::uint64_t refreshOrdinal_ = 0;  //!< weighted refreshes so far
    std::vector<bool> counterInUse_;
    std::vector<std::uint32_t> freeCounters_;    //!< stack
    std::vector<std::uint32_t> freeInodes_;      //!< stack
    std::uint32_t rootPtr_ = 0;
    bool rootIsLeaf_ = true;
    bool canGrow_ = false;  //!< both free lists non-empty
    std::uint32_t activeCounters_ = 1;
    Count splits_ = 0;
    Count merges_ = 0;
};

} // namespace catsim

#endif // CATSIM_CORE_CAT_TREE_HPP
