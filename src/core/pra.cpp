#include "pra.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <sstream>

#include "common/logging.hpp"

namespace catsim
{

Pra::Pra(RowAddr num_rows, double p, std::unique_ptr<PrngSource> prng)
    : MitigationScheme(num_rows),
      p_(p),
      prng_(prng ? std::move(prng) : std::make_unique<TruePrng>())
{
    if (p <= 0.0 || p >= 1.0)
        CATSIM_FATAL("PRA probability must be in (0,1), got ", p);
    // ceil(log2(1/p)) bits per decision; 9 bits for p = 0.002..0.003.
    bits_ = static_cast<unsigned>(std::ceil(std::log2(1.0 / p)));
    if (bits_ == 0)
        bits_ = 1;
    acceptBelow_ = static_cast<std::uint32_t>(
        std::llround(p * std::pow(2.0, bits_)));
    if (acceptBelow_ == 0)
        acceptBelow_ = 1;
}

RefreshAction
neighborRefresh(RowAddr row, RowAddr num_rows,
                const RowAdjacency *adjacency)
{
    RefreshAction act;
    if (adjacency) {
        std::array<RowAddr, 2> v;
        const std::uint32_t n = adjacency->victims(row, v);
        if (n == 0)
            return act;
        act.lo = act.hi = v[0];
        for (std::uint32_t i = 1; i < n; ++i) {
            act.lo = std::min(act.lo, v[i]);
            act.hi = std::max(act.hi, v[i]);
        }
        act.rowCount = n;
        return act;
    }
    // Direct adjacency: the aggressor is skipped, so an edge row has a
    // single victim.
    if (row == 0) {
        act.lo = act.hi = 1;
        act.rowCount = 1;
    } else if (row == num_rows - 1) {
        act.lo = act.hi = row - 1;
        act.rowCount = 1;
    } else {
        act.lo = row - 1;
        act.hi = row + 1;
        act.rowCount = 2;
    }
    return act;
}

RefreshAction
Pra::onActivate(RowAddr row)
{
    ++stats_.activations;
    stats_.prngBits += bits_;

    const std::uint32_t draw = prng_->nextBits(bits_);
    if (draw >= acceptBelow_)
        return {};

    const RefreshAction act =
        neighborRefresh(row, numRows_, adjacency_);
    ++stats_.refreshEvents;
    stats_.victimRowsRefreshed += act.rowCount;
    return act;
}

std::string
Pra::name() const
{
    std::ostringstream os;
    os << "PRA_" << p_;
    return os.str();
}

} // namespace catsim
