/**
 * @file
 * DDR5 Refresh-Management (RFM) style mitigation.
 *
 * The memory controller keeps a Rolling Accumulated ACT (RAA) counter
 * per bank; whenever the counter reaches the configured budget
 * (JEDEC's RAAIMT) it issues an RFM command and resets.  The DRAM's
 * internal sampler then refreshes the neighbors of the activation that
 * crossed the budget - the deterministic-sampling TRR model.  Like
 * PRA, the scheme is rate-based: refresh work scales with the
 * activation stream, not with a per-row threshold, so no aggressor is
 * ever *guaranteed* a refresh - it is only sampled in proportion to
 * its share of the bank's traffic.
 */

#ifndef CATSIM_CORE_RFM_HPP
#define CATSIM_CORE_RFM_HPP

#include <cstdint>

#include "core/adjacency.hpp"
#include "core/mitigation.hpp"

namespace catsim
{

/** Rolling-activation-counter refresh management. */
class Rfm : public MitigationScheme
{
  public:
    /**
     * @param num_rows   Rows per bank.
     * @param raa_budget Activations between RFM commands (RAAIMT).
     */
    Rfm(RowAddr num_rows, std::uint32_t raa_budget);

    RefreshAction onActivate(RowAddr row) override;
    void onEpoch() override;
    std::string name() const override;

    /**
     * Use a physical-adjacency model for victim selection; must
     * outlive this scheme, nullptr restores direct adjacency.
     */
    void setAdjacency(const RowAdjacency *adjacency)
    {
        adjacency_ = adjacency;
    }

    std::uint32_t budget() const { return budget_; }

  private:
    std::uint32_t budget_;
    std::uint32_t raa_ = 0;
    const RowAdjacency *adjacency_ = nullptr;
};

} // namespace catsim

#endif // CATSIM_CORE_RFM_HPP
