/**
 * @file
 * Frozen pre-flattening CAT implementation (differential oracle).
 *
 * This is the pointer-chasing `CatTree` exactly as it stood before the
 * flattened structure-of-arrays rewrite: an array of INode structs with
 * left/right child pointers chased from the root, an eager O(M) weight
 * decrement on every weighted refresh, and a linear merge-candidate
 * scan with O(depth) parent chasing per intermediate node.
 *
 * It is kept for two purposes only:
 *  - the differential tests (`tests/test_cat_tree_diff.cpp`) drive it
 *    and the production `CatTree` with identical streams and require
 *    bit-identical observable behaviour, and
 *  - `bench_micro_schemes` benchmarks it against the flattened walk so
 *    the speedup is measured, not asserted.
 *
 * Do not use it in simulators and do not "fix" it: its behaviour is
 * the specification the fast tree is checked against.  It reuses the
 * production `CatTree::Params` / `CatTree::AccessResult` types so
 * results compare field-for-field.
 */

#ifndef CATSIM_CORE_REFERENCE_CAT_TREE_HPP
#define CATSIM_CORE_REFERENCE_CAT_TREE_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "core/cat_tree.hpp"

namespace catsim
{

/** Pointer-chasing reference implementation of the adaptive tree. */
class ReferenceCatTree
{
  public:
    using Params = CatTree::Params;
    using AccessResult = CatTree::AccessResult;

    explicit ReferenceCatTree(Params params);

    AccessResult access(RowAddr row);
    void reset();
    void resetCountsOnly();

    std::uint32_t activeCounters() const { return activeCounters_; }
    std::uint32_t leafDepth(RowAddr row) const;
    std::uint32_t counterValue(RowAddr row) const;
    std::pair<RowAddr, RowAddr> leafRange(RowAddr row) const;
    std::uint32_t leafWeight(RowAddr row) const;
    std::uint32_t maxLeafDepth() const;
    bool checkInvariants(std::string *why = nullptr) const;

    const Params &params() const { return params_; }
    Count totalSplits() const { return splits_; }
    Count totalMerges() const { return merges_; }

  private:
    static constexpr std::uint32_t kNone = 0xFFFFFFFFu;

    struct INode
    {
        std::uint32_t l = kNone;
        std::uint32_t r = kNone;
        bool lleaf = true;
        bool rleaf = true;
    };

    struct Walk
    {
        std::uint32_t counter = 0;
        std::uint32_t depth = 0;
        RowAddr lo = 0;
        RowAddr hi = 0;
        std::uint32_t parent = kNone;
        bool parentRight = false;
    };

    Walk walkTo(RowAddr row) const;
    std::uint32_t thresholdAt(std::uint32_t depth, RowAddr lo,
                              RowAddr hi) const;
    bool canSplit(const Walk &w) const;
    void splitLeaf(const Walk &w, std::uint32_t new_counter,
                   std::uint32_t new_inode);
    std::uint32_t allocCounter();
    std::uint32_t allocInode();
    bool tryReconfigure(const Walk &hot);
    std::uint32_t inodeDepth(std::uint32_t inode) const;
    void presplit(std::uint32_t parent, bool right, std::uint32_t counter,
                  std::uint32_t depth, std::uint32_t target_depth);
    bool walkInvariants(std::uint32_t ptr, bool is_leaf, RowAddr lo,
                        RowAddr hi, std::uint32_t depth,
                        std::vector<bool> &seen_counters,
                        std::vector<bool> &seen_inodes,
                        std::string *why) const;

    Params params_;
    std::uint32_t presplitDepth_;
    std::vector<INode> inodes_;
    std::vector<std::uint32_t> inodeParent_;
    std::vector<bool> inodeParentRight_;
    std::vector<bool> inodeInUse_;
    std::vector<std::uint32_t> counts_;
    std::vector<std::uint8_t> weights_;
    std::vector<bool> counterInUse_;
    std::vector<std::uint32_t> freeCounters_;
    std::vector<std::uint32_t> freeInodes_;
    std::uint32_t rootPtr_ = 0;
    bool rootIsLeaf_ = true;
    std::uint32_t activeCounters_ = 1;
    Count splits_ = 0;
    Count merges_ = 0;
};

} // namespace catsim

#endif // CATSIM_CORE_REFERENCE_CAT_TREE_HPP
