/**
 * @file
 * Pluggable victim-selection strategies for the counter cache.
 *
 * The paper's counter-cache baseline (Section II) fixes one cache
 * organization; bench_fig15_extensions studies how sensitive its
 * CMRPO is to the eviction policy.  The historical policy is frozen
 * as `EvictionPolicyKind::Legacy` (the default - construction through
 * the factory without an explicit policy is byte-for-byte the old
 * cache), alongside textbook LRU, LFU, and a PRNG-driven random
 * policy.  Random draws through the existing `PrngSource` abstraction
 * so runs stay deterministic given the scheme seed, and the bits it
 * consumes are charged to `SchemeStats::prngBits` like PRA's.
 */

#ifndef CATSIM_CORE_EVICTION_POLICY_HPP
#define CATSIM_CORE_EVICTION_POLICY_HPP

#include <cstdint>
#include <memory>
#include <string>

#include "common/types.hpp"

namespace catsim
{

/** Victim-selection strategy selector (SchemeConfig::evictionPolicy). */
enum class EvictionPolicyKind
{
    Legacy, //!< frozen historical policy (last invalid way, else LRU)
    Lru,    //!< first invalid way, else least-recently used
    Lfu,    //!< first invalid way, else least use count (LRU tiebreak)
    Random, //!< first invalid way, else a PrngSource draw
};

/** Per-way replacement metadata kept by the counter cache. */
struct CacheWayState
{
    bool valid = false;
    std::uint64_t lastUse = 0;  //!< tick of the last hit or fill
    std::uint64_t useCount = 0; //!< hits + fills since the last fill
};

/** Victim-selection strategy for one set of the counter cache. */
class EvictionPolicy
{
  public:
    virtual ~EvictionPolicy() = default;

    /**
     * Pick the victim way for a fill (only called on a miss, so no way
     * in the set matches the tag).
     *
     * @param set  Per-way metadata, @p ways entries.
     * @param ways Set associativity.
     * @return Way index in [0, ways).
     */
    virtual std::uint32_t pickVictim(const CacheWayState *set,
                                     std::uint32_t ways) = 0;

    /** Policy name for labels/reports, e.g. "lru". */
    virtual const char *name() const = 0;

    /** Random bits drawn so far (non-zero for Random only). */
    virtual Count prngBits() const { return 0; }
};

/** Parse "legacy|lru|lfu|random" (case-insensitive). */
EvictionPolicyKind parseEvictionPolicy(const std::string &name);

/** Policy name, e.g. "lru". */
const char *evictionPolicyName(EvictionPolicyKind kind);

/**
 * Build a policy instance.  @p seed feeds the Random policy's
 * PrngSource (ignored by the deterministic policies), so per-bank
 * caches built from one SchemeConfig draw independent streams.
 */
std::unique_ptr<EvictionPolicy> makeEvictionPolicy(
    EvictionPolicyKind kind, std::uint64_t seed);

} // namespace catsim

#endif // CATSIM_CORE_EVICTION_POLICY_HPP
