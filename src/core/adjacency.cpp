#include "adjacency.hpp"

#include "common/logging.hpp"
#include "common/rng.hpp"

namespace catsim
{

RowAdjacency::RowAdjacency(Kind kind, RowAddr num_rows,
                           std::uint32_t block_size, std::uint64_t seed)
    : kind_(kind), numRows_(num_rows), blockSize_(block_size)
{
    auto pow2 = [](std::uint64_t v) {
        return v != 0 && (v & (v - 1)) == 0;
    };
    if (!pow2(num_rows) || !pow2(block_size)
        || block_size > num_rows)
        CATSIM_FATAL("adjacency needs power-of-two rows (", num_rows,
                     ") and block size (", block_size, ")");
    SplitMix64 sm(seed);
    xorKey_ = static_cast<std::uint32_t>(sm.next()) & (blockSize_ - 1);
}

RowAddr
RowAdjacency::foldOffset(RowAddr offset) const
{
    switch (kind_) {
      case Kind::Direct:
        return offset;
      case Kind::BlockMirrored:
        // Even offsets occupy the low half in order; odd offsets fold
        // back from the top (a common anti-parallel layout).
        if ((offset & 1) == 0)
            return offset / 2;
        return blockSize_ - 1 - offset / 2;
      case Kind::Scrambled:
        return offset ^ xorKey_;
    }
    return offset;
}

RowAddr
RowAdjacency::unfoldOffset(RowAddr pos) const
{
    switch (kind_) {
      case Kind::Direct:
        return pos;
      case Kind::BlockMirrored:
        if (pos < blockSize_ / 2)
            return pos * 2;
        return (blockSize_ - 1 - pos) * 2 + 1;
      case Kind::Scrambled:
        return pos ^ xorKey_;
    }
    return pos;
}

RowAddr
RowAdjacency::logicalToPhysical(RowAddr row) const
{
    const RowAddr block = row / blockSize_;
    return block * blockSize_ + foldOffset(row % blockSize_);
}

RowAddr
RowAdjacency::physicalToLogical(RowAddr pos) const
{
    const RowAddr block = pos / blockSize_;
    return block * blockSize_ + unfoldOffset(pos % blockSize_);
}

std::uint32_t
RowAdjacency::victims(RowAddr row,
                      std::array<RowAddr, 2> &victims) const
{
    const RowAddr pos = logicalToPhysical(row);
    std::uint32_t n = 0;
    if (pos > 0)
        victims[n++] = physicalToLogical(pos - 1);
    if (pos + 1 < numRows_)
        victims[n++] = physicalToLogical(pos + 1);
    return n;
}

std::uint32_t
RowAdjacency::victimsWithin(RowAddr row, std::uint32_t radius,
                            std::array<RowAddr, 4> &out) const
{
    if (radius < 1 || radius > 2)
        CATSIM_FATAL("victim blast radius must be 1 or 2, got ",
                     radius);
    const RowAddr pos = logicalToPhysical(row);
    std::uint32_t n = 0;
    for (RowAddr d = 1; d <= radius; ++d) {
        if (pos >= d)
            out[n++] = physicalToLogical(pos - d);
        if (pos + d < numRows_)
            out[n++] = physicalToLogical(pos + d);
    }
    return n;
}

} // namespace catsim
