/**
 * @file
 * PRA - Probabilistic Row Activation refresh (Kim et al., CAL 2015;
 * paper Sections II and III-A).
 *
 * On every row activation the memory controller draws from a PRNG and,
 * with probability p, refreshes the TWO rows adjacent to the accessed
 * row (the aggressor itself is not refreshed).  The PRNG must produce
 * ceil(log2(1/p)) bits per activation; for p = 0.002/0.003 that is 9
 * bits, whose generation energy dominates PRA's CMRPO.
 */

#ifndef CATSIM_CORE_PRA_HPP
#define CATSIM_CORE_PRA_HPP

#include <memory>

#include "core/adjacency.hpp"
#include "core/mitigation.hpp"
#include "core/prng_source.hpp"

namespace catsim
{

/** Probabilistic neighbor-refresh mitigation. */
class Pra : public MitigationScheme
{
  public:
    /**
     * @param num_rows Rows per bank.
     * @param p        Per-activation refresh probability.
     * @param prng     Bit source; defaults to a TruePrng.
     */
    Pra(RowAddr num_rows, double p,
        std::unique_ptr<PrngSource> prng = nullptr);

    RefreshAction onActivate(RowAddr row) override;
    std::string name() const override;

    double probability() const { return p_; }
    unsigned bitsPerDraw() const { return bits_; }

    /**
     * Use a physical-adjacency model for victim selection (paper
     * Section VII / van de Goor scrambling).  The model must outlive
     * this scheme; nullptr restores direct adjacency.
     */
    void setAdjacency(const RowAdjacency *adjacency)
    {
        adjacency_ = adjacency;
    }

  private:
    double p_;
    unsigned bits_;
    std::uint32_t acceptBelow_;
    std::unique_ptr<PrngSource> prng_;
    const RowAdjacency *adjacency_ = nullptr;
};

/**
 * Build a RefreshAction for the up-to-two physical victims of
 * @p row, shared by the exact-victim schemes (PRA, counter cache).
 */
RefreshAction neighborRefresh(RowAddr row, RowAddr num_rows,
                              const RowAdjacency *adjacency);

} // namespace catsim

#endif // CATSIM_CORE_PRA_HPP
