#include "sca.hpp"

#include "common/logging.hpp"

namespace catsim
{

Sca::Sca(RowAddr num_rows, std::uint32_t num_counters,
         std::uint32_t threshold)
    : MitigationScheme(num_rows),
      numCounters_(num_counters),
      groupSize_(num_rows / num_counters),
      threshold_(threshold),
      counters_(num_counters, 0)
{
    if (num_counters == 0 || num_rows % num_counters != 0)
        CATSIM_FATAL("SCA requires counters (", num_counters,
                     ") to divide rows (", num_rows, ")");
    if (threshold < 2)
        CATSIM_FATAL("SCA refresh threshold must be >= 2");
}

RefreshAction
Sca::onActivate(RowAddr row)
{
    ++stats_.activations;
    // One SRAM read + one write per activation (paper Section VII-A).
    stats_.sramAccesses += 2;

    const std::uint32_t group = row / groupSize_;
    if (++counters_[group] < threshold_)
        return {};

    counters_[group] = 0;
    const std::int64_t lo =
        static_cast<std::int64_t>(group) * groupSize_ - 1;
    const std::int64_t hi =
        static_cast<std::int64_t>(group + 1) * groupSize_;
    return makeRangeRefresh(lo, hi);
}

void
Sca::onEpoch()
{
    // Retention refresh clears disturbance; restart all counts.
    std::fill(counters_.begin(), counters_.end(), 0);
}

std::string
Sca::name() const
{
    return "SCA_" + std::to_string(numCounters_);
}

std::uint32_t
Sca::counterValue(std::uint32_t group) const
{
    return counters_.at(group);
}

} // namespace catsim
