/**
 * @file
 * Rank-level shared counter budget for the CAT family.
 *
 * In the paper every bank owns M counters outright.  The per-rank
 * variant studied by bench_fig15_extensions keeps the same total
 * storage (M x banks counters per rank) but lets the banks compete for
 * it: each bank's tree starts from its usual pre-split shape and any
 * further split draws a counter from the rank's shared free list, so a
 * bank under attack can grow past M while idle neighbors stay small.
 *
 * The pool is pure bookkeeping: it owns no storage, it only meters how
 * many counters the attached trees hold.  Trees charge it on
 * construction/reset, on every split, and release on merge, reset and
 * destruction.  Not thread-safe by design - a pool is only ever shared
 * by the banks of one simulated rank, which a single simulation thread
 * drives (sweep cells build their own schemes, so pools never cross
 * threads).
 *
 * The arbitration cost of sharing is charged through the existing
 * `sramAccesses` accounting: a pooled tree adds one access per
 * activation (bank-select into the rank-shared array) and one per
 * split/reconfigure (shared free-list update); see docs/DESIGN.md
 * Section 9.
 */

#ifndef CATSIM_CORE_SHARED_POOL_HPP
#define CATSIM_CORE_SHARED_POOL_HPP

#include <cstdint>

#include "common/types.hpp"

namespace catsim
{

/** Counter budget shared by all CAT trees of one rank. */
class SharedCounterPool
{
  public:
    explicit SharedCounterPool(std::uint32_t capacity);

    /** Take one counter; false when the pool is exhausted. */
    bool tryAcquire();

    /** Return @p n counters to the pool. */
    void release(std::uint32_t n);

    std::uint32_t capacity() const { return capacity_; }
    std::uint32_t inUse() const { return inUse_; }
    std::uint32_t available() const { return capacity_ - inUse_; }

    /** High-water mark of counters simultaneously held. */
    std::uint32_t peakInUse() const { return peakInUse_; }

    /** Total successful acquisitions over the pool's lifetime. */
    Count acquires() const { return acquires_; }

  private:
    std::uint32_t capacity_;
    std::uint32_t inUse_ = 0;
    std::uint32_t peakInUse_ = 0;
    Count acquires_ = 0;
};

} // namespace catsim

#endif // CATSIM_CORE_SHARED_POOL_HPP
