/**
 * @file
 * Abstract interface for wordline-crosstalk (row hammer) mitigation
 * schemes.
 *
 * A scheme instance watches the row-activation stream of ONE DRAM bank.
 * For every activation it may order a victim-row refresh; the memory
 * controller executes the refresh, blocking the bank (the source of the
 * paper's ETO metric).  Schemes also accumulate the event counts that
 * the energy model (src/energy) converts into CMRPO.
 */

#ifndef CATSIM_CORE_MITIGATION_HPP
#define CATSIM_CORE_MITIGATION_HPP

#include <cstddef>
#include <string>

#include "common/types.hpp"

namespace catsim
{

class TreeBundle;

/**
 * Victim-refresh order returned by a scheme for one activation.
 *
 * `rowCount` is the number of rows actually refreshed (what costs energy
 * and bank time).  [lo, hi] is the affected address range; for PRA the
 * two victims are non-contiguous (row-1 and row+1) so rowCount < span.
 */
struct RefreshAction
{
    Count rowCount = 0;
    RowAddr lo = 0;
    RowAddr hi = 0;

    bool triggered() const { return rowCount > 0; }
};

/** Event counts accumulated by a scheme; input to the energy model. */
struct SchemeStats
{
    Count activations = 0;          //!< row ACTs observed
    Count refreshEvents = 0;        //!< times a refresh was ordered
    Count victimRowsRefreshed = 0;  //!< total rows refreshed
    Count sramAccesses = 0;         //!< on-chip SRAM reads+writes
    Count prngBits = 0;             //!< random bits generated (PRA)
    Count splits = 0;               //!< CAT counter splits
    Count merges = 0;               //!< DRCAT merge-reconfigurations
    Count epochResets = 0;          //!< PRCAT periodic resets
    Count counterDramReads = 0;     //!< counter-cache misses -> DRAM
    Count counterDramWrites = 0;    //!< counter-cache writebacks

    /** Accumulate another instance field by field. */
    void
    add(const SchemeStats &o)
    {
        activations += o.activations;
        refreshEvents += o.refreshEvents;
        victimRowsRefreshed += o.victimRowsRefreshed;
        sramAccesses += o.sramAccesses;
        prngBits += o.prngBits;
        splits += o.splits;
        merges += o.merges;
        epochResets += o.epochResets;
        counterDramReads += o.counterDramReads;
        counterDramWrites += o.counterDramWrites;
    }
};

/**
 * How a scheme instance relates to batched multi-bank execution
 * (MitigationScheme::bundleHint).  A bundle-backed scheme is one lane
 * of a shared structure-of-arrays TreeBundle; drivers that hold a
 * whole bank group (replay, sweeps) can collect lanes of the same
 * bundle and step them together through TreeBundle::onActivateLanes
 * instead of per-bank calls.
 */
struct BundleHint
{
    /** Shared bundle backing this scheme; null for standalone ones. */
    TreeBundle *bundle = nullptr;
    /** This scheme's lane within the bundle. */
    std::uint32_t lane = 0;

    bool bundled() const { return bundle != nullptr; }
};

/**
 * Base class for all mitigation schemes.  One instance per bank.
 *
 * The primary entry point is `onActivateBatch`: drivers that own a
 * stream of activations deliver it in chunks, and schemes with a hot
 * per-activation path run the whole chunk on local accumulators.  The
 * single-row `onActivate` remains for callers that need the
 * per-activation RefreshAction fed back immediately - the memory
 * controller (a triggered refresh blocks the bank) and closed-loop
 * stimulus sources (adaptive attackers observe every action) - and as
 * the semantic definition a batch must match row for row.
 */
class MitigationScheme
{
  public:
    explicit MitigationScheme(RowAddr num_rows) : numRows_(num_rows) {}
    virtual ~MitigationScheme() = default;

    MitigationScheme(const MitigationScheme &) = delete;
    MitigationScheme &operator=(const MitigationScheme &) = delete;

    /**
     * Observe one activation of @p row; returns the victim-refresh
     * order (rowCount == 0 when nothing is to be done).  Feedback-
     * coupled callers only; batch-shaped callers use onActivateBatch.
     */
    virtual RefreshAction onActivate(RowAddr row) = 0;

    /**
     * PRIMARY ENTRY POINT: observe a contiguous batch of activations
     * (no epoch markers).
     *
     * Semantically identical to calling onActivate once per row; the
     * per-row refresh actions are applied to the scheme's own stats
     * and not returned, so this is for replay-style callers that only
     * read stats() afterwards.  The default forwards to onActivate;
     * schemes with a hot per-activation path (the CAT family)
     * override it to hoist the virtual dispatch and per-call stats
     * bookkeeping out of the inner loop, and bundle-backed schemes
     * run the chunk through the shared arena's lane-local descent.
     */
    virtual void
    onActivateBatch(const RowAddr *rows, std::size_t count)
    {
        for (std::size_t i = 0; i < count; ++i)
            onActivate(rows[i]);
    }

    /**
     * Auto-refresh epoch boundary (every 64 ms).  Retention refresh
     * clears accumulated disturbance, so counting schemes reset here.
     */
    virtual void onEpoch() {}

    /** Scheme name for reports, e.g. "DRCAT_64". */
    virtual std::string name() const = 0;

    /**
     * Bundle-capability query: non-null `bundle` means this instance
     * is a lane of a shared TreeBundle and a group driver may batch
     * it with sibling lanes.  Standalone schemes return the default.
     */
    virtual BundleHint bundleHint() const { return {}; }

    /** Event counts so far (bundle-backed schemes override to read
     *  their lane's accumulator inside the shared bundle). */
    virtual const SchemeStats &stats() const { return stats_; }
    RowAddr numRows() const { return numRows_; }

  protected:
    /** Clamp a victim range to the bank and fill a RefreshAction. */
    RefreshAction
    makeRangeRefresh(std::int64_t lo, std::int64_t hi)
    {
        if (lo < 0)
            lo = 0;
        if (hi > static_cast<std::int64_t>(numRows_) - 1)
            hi = static_cast<std::int64_t>(numRows_) - 1;
        RefreshAction act;
        act.lo = static_cast<RowAddr>(lo);
        act.hi = static_cast<RowAddr>(hi);
        act.rowCount = static_cast<Count>(hi - lo + 1);
        ++stats_.refreshEvents;
        stats_.victimRowsRefreshed += act.rowCount;
        return act;
    }

    SchemeStats stats_;
    RowAddr numRows_;
};

} // namespace catsim

#endif // CATSIM_CORE_MITIGATION_HPP
