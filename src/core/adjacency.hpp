/**
 * @file
 * Physical row-adjacency models.
 *
 * Crosstalk victims are the *physically* adjacent wordlines, but DRAM
 * vendors scramble logical row addresses internally (van de Goor &
 * Schanstra, DELTA 2002).  The paper (Section VII) assumes "either the
 * memory controller knows which rows are physically adjacent or the
 * DRAM chip is responsible for refreshing the row and its neighbors".
 * Schemes that refresh exactly two victims (PRA, the counter cache)
 * consult one of these models; range-based schemes (SCA, CAT) refresh
 * a whole group plus its border and are insensitive to in-block
 * scrambling as long as remapping stays within the group granularity.
 */

#ifndef CATSIM_CORE_ADJACENCY_HPP
#define CATSIM_CORE_ADJACENCY_HPP

#include <array>
#include <cstdint>

#include "common/types.hpp"

namespace catsim
{

/** Logical <-> physical row remapping within fixed-size blocks. */
class RowAdjacency
{
  public:
    enum class Kind
    {
        Direct,        //!< physical order == logical order
        BlockMirrored, //!< even rows ascend, odd rows fold back
        Scrambled,     //!< XOR scramble of in-block offset
    };

    /**
     * @param kind      Remapping style.
     * @param num_rows  Rows per bank (power of two).
     * @param block_size Remap granularity (power of two dividing
     *                  num_rows); vendors scramble within subarrays.
     * @param seed      Key source for Scrambled.
     */
    RowAdjacency(Kind kind, RowAddr num_rows,
                 std::uint32_t block_size = 512,
                 std::uint64_t seed = 0x5A5AULL);

    /** Physical position of a logical row. */
    RowAddr logicalToPhysical(RowAddr row) const;

    /** Logical row at a physical position. */
    RowAddr physicalToLogical(RowAddr pos) const;

    /**
     * Logical ids of the rows physically adjacent to @p row.
     *
     * @param row     Aggressor (logical id).
     * @param victims Output, up to 2 logical victim rows.
     * @return Number of victims (1 at the bank edges, else 2).
     */
    std::uint32_t victims(RowAddr row,
                          std::array<RowAddr, 2> &victims) const;

    /**
     * Logical ids of the rows within physical distance @p radius of
     * @p row - the blast radius of modern half-double-style patterns,
     * where an aggressor disturbs rows two wordlines away.
     *
     * @param row     Aggressor (logical id).
     * @param radius  Blast radius, 1 or 2.
     * @param out     Output, nearest ring first (pos-1, pos+1, pos-2,
     *                pos+2), clipped at the bank edges.
     * @return Number of victims written.
     */
    std::uint32_t victimsWithin(RowAddr row, std::uint32_t radius,
                                std::array<RowAddr, 4> &out) const;

    Kind kind() const { return kind_; }
    std::uint32_t blockSize() const { return blockSize_; }

  private:
    RowAddr foldOffset(RowAddr offset) const;
    RowAddr unfoldOffset(RowAddr pos) const;

    Kind kind_;
    RowAddr numRows_;
    std::uint32_t blockSize_;
    std::uint32_t xorKey_;
};

} // namespace catsim

#endif // CATSIM_CORE_ADJACENCY_HPP
