/**
 * @file
 * SCA - Static Counter Assignment (paper Section III-B).
 *
 * The bank's N rows are partitioned into M fixed, equal-size groups and
 * one log2(T)-bit counter counts activations per group.  When a counter
 * reaches the refresh threshold T it is reset and the N/M rows of the
 * group plus the two rows adjacent to the group are refreshed, which
 * covers every possible victim of an aggressor inside the group.
 */

#ifndef CATSIM_CORE_SCA_HPP
#define CATSIM_CORE_SCA_HPP

#include <cstdint>
#include <vector>

#include "core/mitigation.hpp"

namespace catsim
{

/** Uniform (static) counter-per-group mitigation. */
class Sca : public MitigationScheme
{
  public:
    /**
     * @param num_rows  Rows per bank (N).
     * @param num_counters  Counters per bank (M); must divide N.
     * @param threshold Refresh threshold (T).
     */
    Sca(RowAddr num_rows, std::uint32_t num_counters,
        std::uint32_t threshold);

    RefreshAction onActivate(RowAddr row) override;
    void onEpoch() override;
    std::string name() const override;

    std::uint32_t numCounters() const { return numCounters_; }
    std::uint32_t groupSize() const { return groupSize_; }
    std::uint32_t counterValue(std::uint32_t group) const;

  private:
    std::uint32_t numCounters_;
    std::uint32_t groupSize_;
    std::uint32_t threshold_;
    std::vector<std::uint32_t> counters_;
};

} // namespace catsim

#endif // CATSIM_CORE_SCA_HPP
