#include "dram_system.hpp"

#include "common/logging.hpp"

namespace catsim
{

DramSystem::DramSystem(const DramGeometry &geometry,
                       const DramTiming &timing)
    : geometry_(geometry), timing_(timing)
{
    const auto nBanks = geometry_.totalBanks();
    banks_.reserve(nBanks);
    for (std::uint32_t i = 0; i < nBanks; ++i)
        banks_.emplace_back(timing_);
    const auto nRanks = geometry_.channels * geometry_.ranksPerChannel;
    ranks_.reserve(nRanks);
    for (std::uint32_t i = 0; i < nRanks; ++i)
        ranks_.emplace_back(timing_);
    busFreeAt_.assign(geometry_.channels, 0);
}

Rank &
DramSystem::rankOf(const BankId &id)
{
    return ranks_[id.channel * geometry_.ranksPerChannel + id.rank];
}

void
DramSystem::applyAutoRefresh(const BankId &id, Cycle now)
{
    Rank &rank = rankOf(id);
    // Catch up on any auto-refresh windows that opened before `now`.
    while (true) {
        const Cycle end = rank.autoRefreshDue(now);
        if (end == 0)
            break;
        for (std::uint32_t b = 0; b < geometry_.banksPerRank; ++b) {
            BankId bid{id.channel, id.rank, b};
            banks_[bid.flat(geometry_)].blockUntil(end);
        }
    }
}

Cycle
DramSystem::earliestIssue(const BankId &id, Cycle now)
{
    applyAutoRefresh(id, now);
    Cycle t = banks_[id.flat(geometry_)].earliestActivate(now);
    t = rankOf(id).earliestActivate(t);
    // The data burst needs the channel bus tRCD+tCAS after the ACT.
    const Cycle burstStart = t + timing_.tRCD + timing_.tCAS;
    if (busFreeAt_[id.channel] > burstStart)
        t += busFreeAt_[id.channel] - burstStart;
    return t;
}

Cycle
DramSystem::access(const BankId &id, RowAddr row, bool is_write,
                   Cycle issue)
{
    Bank &bank = banks_[id.flat(geometry_)];
    const Cycle ready = bank.access(issue, row, is_write);
    rankOf(id).recordActivate(issue);
    const Cycle burstStart = issue + timing_.tRCD + timing_.tCAS;
    busFreeAt_[id.channel] = burstStart + timing_.tBURST;
    return ready;
}

Cycle
DramSystem::victimRefresh(const BankId &id, std::uint64_t rows, Cycle now)
{
    applyAutoRefresh(id, now);
    return banks_[id.flat(geometry_)].victimRefresh(now, rows);
}

const Bank &
DramSystem::bank(const BankId &id) const
{
    return banks_[id.flat(geometry_)];
}

Bank &
DramSystem::bank(const BankId &id)
{
    return banks_[id.flat(geometry_)];
}

Count
DramSystem::totalActivations() const
{
    Count c = 0;
    for (const auto &b : banks_)
        c += b.activations();
    return c;
}

Count
DramSystem::totalVictimRowsRefreshed() const
{
    Count c = 0;
    for (const auto &b : banks_)
        c += b.victimRowsRefreshed();
    return c;
}

} // namespace catsim
