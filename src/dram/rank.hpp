/**
 * @file
 * Per-rank DRAM constraints: the four-activate window (tFAW), ACT-to-ACT
 * spacing (tRRD) and distributed auto-refresh (tREFI/tRFC).
 */

#ifndef CATSIM_DRAM_RANK_HPP
#define CATSIM_DRAM_RANK_HPP

#include <array>
#include <cstdint>

#include "common/types.hpp"
#include "dram/timing.hpp"

namespace catsim
{

/** Rank-level timing state. */
class Rank
{
  public:
    explicit Rank(const DramTiming &timing)
        : timing_(&timing), nextAutoRefresh_(timing.tREFI)
    {
        actWindow_.fill(0);
    }

    /** Earliest ACT issue respecting tRRD and tFAW. */
    Cycle
    earliestActivate(Cycle now) const
    {
        Cycle t = now;
        if (lastAct_ + timing_->tRRD > t && lastActValid_)
            t = lastAct_ + timing_->tRRD;
        // Oldest of the last four ACTs bounds the tFAW window.
        const Cycle oldest = actWindow_[head_];
        if (actCount_ >= 4 && oldest + timing_->tFAW > t)
            t = oldest + timing_->tFAW;
        return t;
    }

    /** Record an ACT at @p cycle. */
    void
    recordActivate(Cycle cycle)
    {
        lastAct_ = cycle;
        lastActValid_ = true;
        actWindow_[head_] = cycle;
        head_ = (head_ + 1) % actWindow_.size();
        ++actCount_;
    }

    /**
     * Return the end of an auto-refresh window if one is due at or
     * before @p now, advancing the internal tREFI schedule; returns 0
     * when no refresh is due.  The caller blocks all banks in the rank
     * until the returned cycle.
     */
    Cycle
    autoRefreshDue(Cycle now)
    {
        if (now < nextAutoRefresh_)
            return 0;
        const Cycle start = nextAutoRefresh_;
        nextAutoRefresh_ += timing_->tREFI;
        ++autoRefreshes_;
        return start + timing_->tRFC;
    }

    Count autoRefreshes() const { return autoRefreshes_; }

  private:
    const DramTiming *timing_;
    std::array<Cycle, 4> actWindow_;
    std::size_t head_ = 0;
    std::uint64_t actCount_ = 0;
    Cycle lastAct_ = 0;
    bool lastActValid_ = false;
    Cycle nextAutoRefresh_;
    Count autoRefreshes_ = 0;
};

} // namespace catsim

#endif // CATSIM_DRAM_RANK_HPP
