#include "geometry.hpp"

namespace catsim
{

DramGeometry
DramGeometry::dualCore2Ch()
{
    DramGeometry g;
    g.channels = 2;
    g.ranksPerChannel = 1;
    g.banksPerRank = 8;
    g.rowsPerBank = 65536;
    return g;
}

DramGeometry
DramGeometry::quadCore2Ch()
{
    DramGeometry g;
    g.channels = 2;
    g.ranksPerChannel = 1;
    g.banksPerRank = 8;
    g.rowsPerBank = 131072;
    return g;
}

DramGeometry
DramGeometry::quadCore4Ch()
{
    DramGeometry g;
    g.channels = 4;
    g.ranksPerChannel = 2;
    g.banksPerRank = 8;
    g.rowsPerBank = 131072;
    return g;
}

} // namespace catsim
