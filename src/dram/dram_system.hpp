/**
 * @file
 * Aggregate DRAM device model: channels of ranks of banks plus the
 * shared data bus per channel.
 *
 * The model is closed-page and command-level: the memory controller asks
 * for the earliest issue slot for a request, then commits it, and the
 * system returns the data-ready cycle.  Victim refreshes requested by a
 * mitigation scheme block the target bank for tRC per refreshed row.
 */

#ifndef CATSIM_DRAM_DRAM_SYSTEM_HPP
#define CATSIM_DRAM_DRAM_SYSTEM_HPP

#include <vector>

#include "common/types.hpp"
#include "dram/bank.hpp"
#include "dram/geometry.hpp"
#include "dram/rank.hpp"
#include "dram/timing.hpp"

namespace catsim
{

/** Whole-device DRAM timing model. */
class DramSystem
{
  public:
    DramSystem(const DramGeometry &geometry, const DramTiming &timing);

    /**
     * Earliest cycle at which an access to (channel, rank, bank) can be
     * issued, considering bank, rank (tFAW/tRRD), auto-refresh, and the
     * channel data bus.
     */
    Cycle earliestIssue(const BankId &id, Cycle now);

    /**
     * Issue an access; @p issue must be >= earliestIssue(..).
     * @return Data-ready cycle for reads / acceptance cycle for writes.
     */
    Cycle access(const BankId &id, RowAddr row, bool is_write,
                 Cycle issue);

    /**
     * Block the bank while victim rows are refreshed; returns the cycle
     * the bank frees up.
     */
    Cycle victimRefresh(const BankId &id, std::uint64_t rows, Cycle now);

    const Bank &bank(const BankId &id) const;
    Bank &bank(const BankId &id);
    const DramGeometry &geometry() const { return geometry_; }
    const DramTiming &timing() const { return timing_; }

    /** Sum of ACTs over all banks. */
    Count totalActivations() const;

    /** Sum of victim rows refreshed over all banks. */
    Count totalVictimRowsRefreshed() const;

  private:
    Rank &rankOf(const BankId &id);
    void applyAutoRefresh(const BankId &id, Cycle now);

    DramGeometry geometry_;
    DramTiming timing_;
    std::vector<Bank> banks_;
    std::vector<Rank> ranks_;
    std::vector<Cycle> busFreeAt_; //!< per channel
};

} // namespace catsim

#endif // CATSIM_DRAM_DRAM_SYSTEM_HPP
