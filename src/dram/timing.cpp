#include "timing.hpp"

namespace catsim
{

DramTiming
DramTiming::ddr3_1600()
{
    return DramTiming{};
}

} // namespace catsim
