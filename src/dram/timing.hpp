/**
 * @file
 * DDR3-1600 timing constraints in memory-bus cycles.
 *
 * The paper simulates USIMM with a Micron DDR3 MT41J512M8 datasheet and
 * an 800 MHz bus (Table I).  All values below are in bus cycles at
 * tCK = 1.25 ns.  Victim-row refreshes issued by a mitigation scheme
 * occupy the bank for one ACT+PRE pair (tRC) per refreshed row.
 */

#ifndef CATSIM_DRAM_TIMING_HPP
#define CATSIM_DRAM_TIMING_HPP

#include <cstdint>

#include "common/types.hpp"

namespace catsim
{

/** DDR3 timing parameter set (bus cycles unless noted). */
struct DramTiming
{
    double tCkNs = 1.25;        //!< bus clock period, ns
    std::uint32_t cpuMult = 4;  //!< CPU clock multiplier (3.2 GHz cores)

    std::uint32_t tRCD = 11;    //!< ACT -> column command
    std::uint32_t tRP = 11;     //!< PRE -> ACT
    std::uint32_t tCAS = 11;    //!< column read -> first data
    std::uint32_t tRAS = 28;    //!< ACT -> PRE
    std::uint32_t tRC = 39;     //!< ACT -> ACT, same bank (tRAS + tRP)
    std::uint32_t tCCD = 4;     //!< column command spacing
    std::uint32_t tBURST = 4;   //!< data burst length on the bus
    std::uint32_t tWR = 12;     //!< write recovery
    std::uint32_t tWTR = 6;     //!< write -> read turnaround
    std::uint32_t tRTP = 6;     //!< read -> precharge
    std::uint32_t tRRD = 5;     //!< ACT -> ACT, different banks
    std::uint32_t tFAW = 24;    //!< four-activate window
    std::uint32_t tRFC = 128;   //!< auto-refresh command occupancy
    std::uint32_t tREFI = 6240; //!< refresh command interval (7.8 us)

    /** Bus cycles in one 64 ms retention/auto-refresh interval. */
    Cycle
    refreshIntervalCycles() const
    {
        return static_cast<Cycle>(64e6 / tCkNs); // 64 ms / 1.25 ns
    }

    /** Bank-busy cycles for refreshing @p rows victim rows (tRC each). */
    Cycle
    victimRefreshCycles(std::uint64_t rows) const
    {
        return static_cast<Cycle>(rows) * tRC;
    }

    /** Convert bus cycles to nanoseconds. */
    double
    cyclesToNs(Cycle c) const
    {
        return static_cast<double>(c) * tCkNs;
    }

    /** Default DDR3-1600 part used throughout the paper. */
    static DramTiming ddr3_1600();
};

} // namespace catsim

#endif // CATSIM_DRAM_TIMING_HPP
