/**
 * @file
 * DRAM organization parameters (channels / ranks / banks / rows / cols).
 *
 * Defaults follow the paper's Table I: 16 GB total, 2 channels with one
 * 8 GB DIMM each, 1 rank per channel, 8 banks per rank, 64K rows per
 * bank, 64 B cache lines.  Section VIII-B additionally evaluates a
 * 4-channel mapping (64 banks) and quad-core banks with 128K rows.
 */

#ifndef CATSIM_DRAM_GEOMETRY_HPP
#define CATSIM_DRAM_GEOMETRY_HPP

#include <cstdint>

#include "common/types.hpp"

namespace catsim
{

/** Static description of the DRAM organization. */
struct DramGeometry
{
    std::uint32_t channels = 2;
    std::uint32_t ranksPerChannel = 1;
    std::uint32_t banksPerRank = 8;
    std::uint32_t rowsPerBank = 65536;
    std::uint32_t colsPerRow = 256;     //!< 64 B lines: 16 KB row / 64 B
    std::uint32_t lineBytes = 64;

    /** Total banks across the system. */
    std::uint32_t
    totalBanks() const
    {
        return channels * ranksPerChannel * banksPerRank;
    }

    /** Bytes of storage in one bank. */
    std::uint64_t
    bankBytes() const
    {
        return static_cast<std::uint64_t>(rowsPerBank) * colsPerRow
               * lineBytes;
    }

    /** Bytes of storage in the whole system. */
    std::uint64_t
    totalBytes() const
    {
        return bankBytes() * totalBanks();
    }

    /** Paper Table I configuration (dual-core, 2 channels, 16 GB). */
    static DramGeometry dualCore2Ch();

    /** Quad-core, 2 channels: banks grow to 128K rows (Fig 11 caption). */
    static DramGeometry quadCore2Ch();

    /** Quad-core, 4 channels: 64 banks, 128K rows per bank (Fig 11). */
    static DramGeometry quadCore4Ch();
};

/** Flattened bank coordinate. */
struct BankId
{
    std::uint32_t channel = 0;
    std::uint32_t rank = 0;
    std::uint32_t bank = 0;

    bool
    operator==(const BankId &o) const
    {
        return channel == o.channel && rank == o.rank && bank == o.bank;
    }

    /** Linear index in [0, geometry.totalBanks()). */
    std::uint32_t
    flat(const DramGeometry &g) const
    {
        return (channel * g.ranksPerChannel + rank) * g.banksPerRank
               + bank;
    }
};

} // namespace catsim

#endif // CATSIM_DRAM_GEOMETRY_HPP
