/**
 * @file
 * Per-bank DRAM timing state (closed-page operation).
 *
 * The memory controller in the paper uses a closed-page policy with
 * auto-precharge (Table I), so a bank access is modeled as
 * ACT -> RD/WR(A) and the bank becomes available again after tRC.
 * Victim-row refreshes (the crosstalk mitigation mechanism) and rank
 * auto-refresh both appear as "blocked until" windows; requests that
 * arrive during a window wait, which is the source of the paper's
 * execution time overhead (ETO).
 */

#ifndef CATSIM_DRAM_BANK_HPP
#define CATSIM_DRAM_BANK_HPP

#include <cstdint>

#include "common/types.hpp"
#include "dram/timing.hpp"

namespace catsim
{

/** Timing state machine for one DRAM bank. */
class Bank
{
  public:
    explicit Bank(const DramTiming &timing) : timing_(&timing) {}

    /** Earliest cycle at which a new ACT may be issued. */
    Cycle
    earliestActivate(Cycle now) const
    {
        Cycle t = now;
        if (nextActAllowed_ > t)
            t = nextActAllowed_;
        if (blockedUntil_ > t)
            t = blockedUntil_;
        return t;
    }

    /**
     * Issue ACT + column access with auto-precharge at @p cycle (which
     * must be >= earliestActivate).
     *
     * @return Cycle at which read data is available (or the write is
     *         accepted).
     */
    Cycle
    access(Cycle cycle, RowAddr row, bool is_write)
    {
        lastRow_ = row;
        ++activations_;
        nextActAllowed_ = cycle + timing_->tRC;
        if (is_write) {
            // Writes complete at the controller once data is on the bus;
            // write recovery extends the bank-busy window.
            const Cycle busy = cycle + timing_->tRCD + timing_->tCAS
                               + timing_->tBURST + timing_->tWR
                               + timing_->tRP;
            if (busy > nextActAllowed_)
                nextActAllowed_ = busy;
            return cycle + timing_->tRCD + timing_->tCAS
                   + timing_->tBURST;
        }
        return cycle + timing_->tRCD + timing_->tCAS + timing_->tBURST;
    }

    /**
     * Block the bank while @p rows victim rows are refreshed back to
     * back (tRC per row), starting no earlier than the bank is free.
     *
     * @return Cycle at which the bank becomes available again.
     */
    Cycle
    victimRefresh(Cycle now, std::uint64_t rows)
    {
        const Cycle start = earliestActivate(now);
        blockedUntil_ = start + timing_->victimRefreshCycles(rows);
        if (blockedUntil_ > nextActAllowed_)
            nextActAllowed_ = blockedUntil_;
        victimRowsRefreshed_ += rows;
        ++victimRefreshEvents_;
        return blockedUntil_;
    }

    /** Block the bank for a rank-level auto-refresh window. */
    void
    blockUntil(Cycle until)
    {
        if (until > blockedUntil_)
            blockedUntil_ = until;
    }

    Cycle blockedUntil() const { return blockedUntil_; }
    RowAddr lastRow() const { return lastRow_; }
    Count activations() const { return activations_; }
    Count victimRowsRefreshed() const { return victimRowsRefreshed_; }
    Count victimRefreshEvents() const { return victimRefreshEvents_; }

  private:
    const DramTiming *timing_;
    Cycle nextActAllowed_ = 0;
    Cycle blockedUntil_ = 0;
    RowAddr lastRow_ = 0;
    Count activations_ = 0;
    Count victimRowsRefreshed_ = 0;
    Count victimRefreshEvents_ = 0;
};

} // namespace catsim

#endif // CATSIM_DRAM_BANK_HPP
