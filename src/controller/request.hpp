/**
 * @file
 * Memory request descriptor exchanged between the core models and the
 * memory controller.
 */

#ifndef CATSIM_CONTROLLER_REQUEST_HPP
#define CATSIM_CONTROLLER_REQUEST_HPP

#include "common/types.hpp"
#include "controller/address_mapping.hpp"

namespace catsim
{

/** One read or write transaction. */
struct MemRequest
{
    Addr addr = 0;
    bool isWrite = false;
    CoreId core = 0;
    Cycle arrival = 0;   //!< bus cycle the request reaches the MC
    MappedAddr loc;      //!< filled by the controller
};

} // namespace catsim

#endif // CATSIM_CONTROLLER_REQUEST_HPP
