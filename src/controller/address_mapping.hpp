/**
 * @file
 * Physical-address to DRAM-coordinate mapping policies.
 *
 * The paper's default (Table I) is the USIMM policy
 * rw:rk:bk:ch:col:offset - reading from the most significant bits:
 * row, rank, bank, channel, column, cache-line offset.  Section VIII-B
 * additionally evaluates a 4-channel policy that "maximizes memory
 * access parallelism" by interleaving channels at cache-line
 * granularity (rw:rk:bk:col:ch:offset).
 */

#ifndef CATSIM_CONTROLLER_ADDRESS_MAPPING_HPP
#define CATSIM_CONTROLLER_ADDRESS_MAPPING_HPP

#include <cstdint>
#include <string>

#include "common/types.hpp"
#include "dram/geometry.hpp"

namespace catsim
{

/** Decoded DRAM coordinates of a physical address. */
struct MappedAddr
{
    std::uint32_t channel = 0;
    std::uint32_t rank = 0;
    std::uint32_t bank = 0;
    RowAddr row = 0;
    std::uint32_t col = 0;

    BankId
    bankId() const
    {
        return BankId{channel, rank, bank};
    }
};

/** Field order of the mapping. */
enum class MappingPolicy
{
    RowRankBankChanCol, //!< rw:rk:bk:ch:col:offset (paper default)
    RowRankBankColChan, //!< rw:rk:bk:col:ch:offset (4-channel policy)
};

/** Bidirectional address mapper for a fixed geometry. */
class AddressMapper
{
  public:
    AddressMapper(const DramGeometry &geometry, MappingPolicy policy);

    /** Decode a physical byte address. */
    MappedAddr map(Addr addr) const;

    /** Compose a physical byte address from coordinates. */
    Addr compose(const MappedAddr &m) const;

    MappingPolicy policy() const { return policy_; }
    static std::string policyName(MappingPolicy policy);

    /** Floor log2 of a power-of-two field width (0 for v <= 1). */
    static std::uint32_t log2u(std::uint64_t v);

  private:
    DramGeometry geometry_;
    MappingPolicy policy_;
    std::uint32_t offsetBits_;
    std::uint32_t colBits_;
    std::uint32_t chBits_;
    std::uint32_t bkBits_;
    std::uint32_t rkBits_;
    std::uint32_t rwBits_;
};

} // namespace catsim

#endif // CATSIM_CONTROLLER_ADDRESS_MAPPING_HPP
