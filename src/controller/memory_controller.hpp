/**
 * @file
 * Memory controller with FR-FCFS arbitration, closed-page policy, a
 * 64-entry posted write queue per channel, and the victim-refresh hook
 * that connects DRAM activations to a crosstalk-mitigation scheme.
 *
 * Requests are submitted in global arrival order by the timing
 * simulator.  Under a closed-page policy there are no row hits to
 * reorder for, so FR-FCFS degenerates to first-come-first-served per
 * bank readiness - which the submit-in-arrival-order design models
 * exactly.  Writes are posted: they complete immediately from the
 * core's perspective, drain to DRAM when the write queue reaches a high
 * watermark (write-drain mode), and contend with reads for banks and
 * the data bus.
 *
 * Every ACT is reported to the bank's mitigation scheme; a triggered
 * RefreshAction blocks the bank for tRC per victim row, which is how
 * mitigation cost turns into execution-time overhead (ETO).
 */

#ifndef CATSIM_CONTROLLER_MEMORY_CONTROLLER_HPP
#define CATSIM_CONTROLLER_MEMORY_CONTROLLER_HPP

#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/types.hpp"
#include "controller/address_mapping.hpp"
#include "controller/request.hpp"
#include "core/factory.hpp"
#include "core/mitigation.hpp"
#include "dram/dram_system.hpp"

namespace catsim
{

/** Aggregate controller statistics. */
struct ControllerStats
{
    Count reads = 0;
    Count writes = 0;
    Count writeDrains = 0;
    Count victimRefreshEvents = 0;
    Count victimRowsRefreshed = 0;
    Cycle lastCompletion = 0;
};

/** Optional observer of the per-bank activation stream. */
using ActivationObserver =
    std::function<void(std::uint32_t bank_flat, RowAddr row)>;

/**
 * Optional observer of the per-ACT mitigation response.  Invoked for
 * EVERY activation - with an untriggered (rowCount == 0) action when
 * the bank's scheme stayed quiet or no scheme is attached - so
 * closed-loop stimulus sources can watch the defense mid-flight
 * (ActivationSource::onRefreshAction).
 */
using RefreshActionObserver = std::function<void(
    std::uint32_t bank_flat, RowAddr row, const RefreshAction &act)>;

/** The DRAM memory controller. */
class MemoryController
{
  public:
    /**
     * @param dram    DRAM device model (owned by the caller).
     * @param mapper  Address mapping policy.
     * @param scheme_config Mitigation configuration; one scheme instance
     *                is created per bank (SchemeKind::None disables).
     */
    MemoryController(DramSystem &dram, const AddressMapper &mapper,
                     const SchemeConfig &scheme_config);

    /**
     * Submit a read; requests must be submitted in non-decreasing
     * arrival order.
     *
     * @return Bus cycle at which read data is available.
     */
    Cycle submitRead(MemRequest req);

    /**
     * Submit a read whose DRAM coordinates (@p req.loc) the caller
     * already filled in - the address-mapper bypass used by stimulus
     * sources that speak (bank, row) natively.  Same arbitration,
     * write-drain, and mitigation path as submitRead.
     */
    Cycle submitMapped(MemRequest req);

    /**
     * Submit a posted write.
     *
     * @return Bus cycle at which the core may proceed (normally the
     *         arrival cycle; later when the write queue is full).
     */
    Cycle submitWrite(MemRequest req);

    /** Auto-refresh epoch boundary: informs every bank's scheme. */
    void onEpoch();

    /** Flush all pending writes (end of simulation). */
    void drainAllWrites(Cycle now);

    const ControllerStats &stats() const { return stats_; }
    const MitigationScheme *scheme(std::uint32_t bank_flat) const;

    /** Combined stats over all per-bank scheme instances. */
    SchemeStats combinedSchemeStats() const;

    void setActivationObserver(ActivationObserver obs);
    void setRefreshActionObserver(RefreshActionObserver obs);

    static constexpr std::size_t kWriteQueueCapacity = 64;
    static constexpr std::size_t kWriteDrainLow = 48;

  private:
    /** Issue one transaction into the DRAM timeline. */
    Cycle issue(const MemRequest &req, Cycle not_before);
    void drainWrites(std::uint32_t channel, std::size_t down_to,
                     Cycle now);

    DramSystem &dram_;
    const AddressMapper &mapper_;
    std::vector<std::unique_ptr<MitigationScheme>> schemes_; //!< per bank
    std::vector<std::vector<MemRequest>> writeQ_;            //!< per chan
    ControllerStats stats_;
    ActivationObserver observer_;
    RefreshActionObserver refreshObserver_;
};

} // namespace catsim

#endif // CATSIM_CONTROLLER_MEMORY_CONTROLLER_HPP
