#include "memory_controller.hpp"

#include "common/logging.hpp"

namespace catsim
{

MemoryController::MemoryController(DramSystem &dram,
                                   const AddressMapper &mapper,
                                   const SchemeConfig &scheme_config)
    : dram_(dram), mapper_(mapper)
{
    const auto &geom = dram.geometry();
    // Per-bank PRNG seeds keep PRA decisions independent per bank;
    // rank-pooled CAT configs share one counter budget per group of
    // banksPerPool consecutive banks.
    schemes_ = makeBankSchemes(scheme_config, geom.rowsPerBank,
                               geom.totalBanks());
    writeQ_.resize(geom.channels);
}

Cycle
MemoryController::issue(const MemRequest &req, Cycle not_before)
{
    const BankId bid = req.loc.bankId();
    const Cycle at = dram_.earliestIssue(bid, not_before);
    const Cycle done = dram_.access(bid, req.loc.row, req.isWrite, at);

    const std::uint32_t flat = bid.flat(dram_.geometry());
    if (observer_)
        observer_(flat, req.loc.row);
    MitigationScheme *scheme = schemes_[flat].get();
    RefreshAction act;
    if (scheme) {
        act = scheme->onActivate(req.loc.row);
        if (act.triggered()) {
            dram_.victimRefresh(bid, act.rowCount, at);
            ++stats_.victimRefreshEvents;
            stats_.victimRowsRefreshed += act.rowCount;
        }
    }
    if (refreshObserver_)
        refreshObserver_(flat, req.loc.row, act);
    if (done > stats_.lastCompletion)
        stats_.lastCompletion = done;
    return done;
}

Cycle
MemoryController::submitRead(MemRequest req)
{
    req.loc = mapper_.map(req.addr);
    return submitMapped(req);
}

Cycle
MemoryController::submitMapped(MemRequest req)
{
    ++stats_.reads;
    // Write-drain has priority when the queue is saturated; otherwise
    // reads bypass queued writes (standard read-priority scheduling).
    auto &wq = writeQ_[req.loc.channel];
    if (wq.size() >= kWriteQueueCapacity) {
        drainWrites(req.loc.channel, kWriteDrainLow, req.arrival);
        ++stats_.writeDrains;
    }
    return issue(req, req.arrival);
}

Cycle
MemoryController::submitWrite(MemRequest req)
{
    req.loc = mapper_.map(req.addr);
    ++stats_.writes;
    auto &wq = writeQ_[req.loc.channel];
    if (wq.size() >= kWriteQueueCapacity) {
        drainWrites(req.loc.channel, kWriteDrainLow, req.arrival);
        ++stats_.writeDrains;
    }
    wq.push_back(req);
    return req.arrival;
}

void
MemoryController::drainWrites(std::uint32_t channel, std::size_t down_to,
                              Cycle now)
{
    auto &wq = writeQ_[channel];
    std::size_t n = 0;
    while (wq.size() - n > down_to) {
        issue(wq[n], now);
        ++n;
    }
    wq.erase(wq.begin(), wq.begin() + static_cast<std::ptrdiff_t>(n));
}

void
MemoryController::drainAllWrites(Cycle now)
{
    for (std::uint32_t ch = 0; ch < writeQ_.size(); ++ch)
        drainWrites(ch, 0, now);
}

void
MemoryController::onEpoch()
{
    for (auto &s : schemes_) {
        if (s)
            s->onEpoch();
    }
}

const MitigationScheme *
MemoryController::scheme(std::uint32_t bank_flat) const
{
    return schemes_.at(bank_flat).get();
}

SchemeStats
MemoryController::combinedSchemeStats() const
{
    SchemeStats sum;
    for (const auto &s : schemes_) {
        if (s)
            sum.add(s->stats());
    }
    return sum;
}

void
MemoryController::setActivationObserver(ActivationObserver obs)
{
    observer_ = std::move(obs);
}

void
MemoryController::setRefreshActionObserver(RefreshActionObserver obs)
{
    refreshObserver_ = std::move(obs);
}

} // namespace catsim
