#include "address_mapping.hpp"

#include "common/logging.hpp"

namespace catsim
{

std::uint32_t
AddressMapper::log2u(std::uint64_t v)
{
    std::uint32_t l = 0;
    while (v > 1) {
        v >>= 1;
        ++l;
    }
    return l;
}

AddressMapper::AddressMapper(const DramGeometry &geometry,
                             MappingPolicy policy)
    : geometry_(geometry), policy_(policy)
{
    auto pow2 = [](std::uint64_t v) {
        return v != 0 && (v & (v - 1)) == 0;
    };
    if (!pow2(geometry.lineBytes) || !pow2(geometry.colsPerRow)
        || !pow2(geometry.channels) || !pow2(geometry.banksPerRank)
        || !pow2(geometry.ranksPerChannel) || !pow2(geometry.rowsPerBank))
        CATSIM_FATAL("address mapping requires power-of-two geometry");

    offsetBits_ = log2u(geometry.lineBytes);
    colBits_ = log2u(geometry.colsPerRow);
    chBits_ = log2u(geometry.channels);
    bkBits_ = log2u(geometry.banksPerRank);
    rkBits_ = log2u(geometry.ranksPerChannel);
    rwBits_ = log2u(geometry.rowsPerBank);
}

MappedAddr
AddressMapper::map(Addr addr) const
{
    MappedAddr m;
    Addr a = addr >> offsetBits_;
    auto take = [&a](std::uint32_t bits) -> std::uint32_t {
        const std::uint32_t v =
            static_cast<std::uint32_t>(a & ((1ULL << bits) - 1));
        a >>= bits;
        return v;
    };

    switch (policy_) {
      case MappingPolicy::RowRankBankChanCol:
        m.col = take(colBits_);
        m.channel = take(chBits_);
        m.bank = take(bkBits_);
        m.rank = take(rkBits_);
        m.row = take(rwBits_);
        break;
      case MappingPolicy::RowRankBankColChan:
        m.channel = take(chBits_);
        m.col = take(colBits_);
        m.bank = take(bkBits_);
        m.rank = take(rkBits_);
        m.row = take(rwBits_);
        break;
    }
    return m;
}

Addr
AddressMapper::compose(const MappedAddr &m) const
{
    Addr a = 0;
    std::uint32_t shift = offsetBits_;
    auto put = [&a, &shift](std::uint64_t v, std::uint32_t bits) {
        a |= (v & ((1ULL << bits) - 1)) << shift;
        shift += bits;
    };

    switch (policy_) {
      case MappingPolicy::RowRankBankChanCol:
        put(m.col, colBits_);
        put(m.channel, chBits_);
        put(m.bank, bkBits_);
        put(m.rank, rkBits_);
        put(m.row, rwBits_);
        break;
      case MappingPolicy::RowRankBankColChan:
        put(m.channel, chBits_);
        put(m.col, colBits_);
        put(m.bank, bkBits_);
        put(m.rank, rkBits_);
        put(m.row, rwBits_);
        break;
    }
    return a;
}

std::string
AddressMapper::policyName(MappingPolicy policy)
{
    switch (policy) {
      case MappingPolicy::RowRankBankChanCol:
        return "rw:rk:bk:ch:col:offset";
      case MappingPolicy::RowRankBankColChan:
        return "rw:rk:bk:col:ch:offset";
    }
    return "?";
}

} // namespace catsim
