/**
 * @file
 * Kernel-attack stream generator (paper Section VIII-D).
 *
 * Each attack kernel selects a few target rows per bank (4 by default;
 * 64 targets across the dual-core/2-channel system), positioned with a
 * Gaussian distribution around a random center, and hammers them much
 * more frequently than ordinary rows.  Attack records are interleaved
 * with a memory-intensive benign workload at the paper's three mix
 * ratios: Heavy (75 % target accesses), Medium (50 %), Light (25 %).
 */

#ifndef CATSIM_TRACE_ATTACK_HPP
#define CATSIM_TRACE_ATTACK_HPP

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "trace/attack_kernel.hpp"
#include "trace/workloads.hpp"

namespace catsim
{

/** Attack intensity mix from the paper. */
enum class AttackMode
{
    Heavy,  //!< 75 % target rows + 25 % benign accesses
    Medium, //!< 50 % / 50 %
    Light,  //!< 25 % / 75 %
};

/** Fraction of accesses aimed at target rows for a mode. */
double attackTargetFraction(AttackMode mode);

/** Mode name for reports. */
const char *attackModeName(AttackMode mode);

/** Row-hammer kernel mixed into a benign workload. */
class AttackWorkload : public TraceStream
{
  public:
    /**
     * @param benign   Benign profile providing the background traffic.
     * @param geometry DRAM organization.
     * @param mapper   Address composer.
     * @param mode     Heavy/Medium/Light mix.
     * @param kernel_seed One of the paper's 12 kernels (1..12); decides
     *                 target row placement.
     * @param stream_seed Per-core stream seed.
     * @param length   Records before end-of-stream.
     * @param targets_per_bank Hammered rows per bank (default 4).
     * @param kernel_kind Target-placement strategy (default the paper's
     *                 per-bank Gaussian; MultiBank synchronizes one
     *                 target set across all banks).
     */
    AttackWorkload(const WorkloadProfile &benign,
                   const DramGeometry &geometry,
                   const AddressMapper &mapper, AttackMode mode,
                   std::uint64_t kernel_seed, std::uint64_t stream_seed,
                   std::uint64_t length,
                   std::uint32_t targets_per_bank = 4,
                   AttackKernelKind kernel_kind =
                       AttackKernelKind::Gaussian);

    bool next(TraceRecord &out) override;
    void rewind() override;

    /** Target rows of one bank (for tests). */
    const std::vector<RowAddr> &targets(std::uint32_t bank_flat) const;

  private:
    DramGeometry geometry_;
    const AddressMapper &mapper_;
    AttackMode mode_;
    double targetFraction_;
    std::uint64_t streamSeed_;
    std::uint64_t length_;
    std::uint64_t produced_ = 0;
    Xoshiro256StarStar rng_;
    SyntheticWorkload benign_;
    std::vector<std::vector<RowAddr>> targets_; //!< per flat bank
};

} // namespace catsim

#endif // CATSIM_TRACE_ATTACK_HPP
