/**
 * @file
 * Trace records and streams.
 *
 * catsim uses USIMM-style records: each record carries the number of
 * non-memory instructions since the previous memory operation (the
 * "gap"), the operation type, and the physical byte address.  Streams
 * are pull-based so synthetic generators never materialize multi-
 * gigabyte traces; a file-backed reader/writer is provided for
 * interchange with external tools.
 */

#ifndef CATSIM_TRACE_TRACE_HPP
#define CATSIM_TRACE_TRACE_HPP

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace catsim
{

/** One memory operation plus the preceding compute gap. */
struct TraceRecord
{
    std::uint32_t gap = 0; //!< non-memory instructions before this op
    bool isWrite = false;
    Addr addr = 0;
};

/** Pull-based record source. */
class TraceStream
{
  public:
    virtual ~TraceStream() = default;

    /** Fetch the next record; false at end of stream. */
    virtual bool next(TraceRecord &out) = 0;

    /** Restart from the beginning (same sequence). */
    virtual void rewind() = 0;
};

/** In-memory trace, also used as the file reader's buffer. */
class VectorTrace : public TraceStream
{
  public:
    VectorTrace() = default;
    explicit VectorTrace(std::vector<TraceRecord> records)
        : records_(std::move(records))
    {
    }

    bool
    next(TraceRecord &out) override
    {
        if (pos_ >= records_.size())
            return false;
        out = records_[pos_++];
        return true;
    }

    void rewind() override { pos_ = 0; }

    void push(const TraceRecord &r) { records_.push_back(r); }
    std::size_t size() const { return records_.size(); }
    const std::vector<TraceRecord> &records() const { return records_; }

  private:
    std::vector<TraceRecord> records_;
    std::size_t pos_ = 0;
};

/**
 * Strict whole-token address parse (base auto-detected): returns
 * false on partial junk like "0x123junk", which std::stoull alone
 * would silently truncate.  Shared by every trace dialect reader.
 */
bool parseTraceAddr(const std::string &token, Addr *out);

/**
 * Parse one native-format line ("gap R|W hexaddr").  Returns false for
 * blank/comment lines (skip them); malformed lines are fatal, so a
 * file truncated mid-record is rejected loudly.  @p lineno and @p path
 * only feed the error message.  Shared by the batch reader and the
 * streaming reader so both dialects parse byte-identically.
 */
bool parseNativeTraceLine(const std::string &line, std::size_t lineno,
                          const std::string &path, TraceRecord *out);

/**
 * Write a stream to a simple text format: one "gap R|W hexaddr" per
 * line.  Returns the number of records written.
 */
std::size_t writeTraceFile(const std::string &path, TraceStream &stream);

/** Read a trace file written by writeTraceFile. */
VectorTrace readTraceFile(const std::string &path);

} // namespace catsim

#endif // CATSIM_TRACE_TRACE_HPP
