#include "attack.hpp"

#include "common/logging.hpp"

namespace catsim
{

double
attackTargetFraction(AttackMode mode)
{
    switch (mode) {
      case AttackMode::Heavy:
        return 0.75;
      case AttackMode::Medium:
        return 0.50;
      case AttackMode::Light:
        return 0.25;
    }
    return 0.0;
}

const char *
attackModeName(AttackMode mode)
{
    switch (mode) {
      case AttackMode::Heavy:
        return "Heavy";
      case AttackMode::Medium:
        return "Medium";
      case AttackMode::Light:
        return "Light";
    }
    return "?";
}

AttackWorkload::AttackWorkload(const WorkloadProfile &benign,
                               const DramGeometry &geometry,
                               const AddressMapper &mapper,
                               AttackMode mode,
                               std::uint64_t kernel_seed,
                               std::uint64_t stream_seed,
                               std::uint64_t length,
                               std::uint32_t targets_per_bank,
                               AttackKernelKind kernel_kind)
    : geometry_(geometry),
      mapper_(mapper),
      mode_(mode),
      targetFraction_(attackTargetFraction(mode)),
      streamSeed_(stream_seed),
      length_(length),
      rng_(stream_seed),
      benign_(benign, geometry, mapper, stream_seed ^ 0xBEEFULL, length)
{
    targets_.resize(geometry.totalBanks());
    for (auto &t : targets_)
        t.resize(targets_per_bank);
    makeAttackKernel(kernel_kind)
        ->pickTargets(targets_, geometry_, kernel_seed);
}

void
AttackWorkload::rewind()
{
    produced_ = 0;
    rng_ = Xoshiro256StarStar(streamSeed_);
    benign_.rewind();
}

bool
AttackWorkload::next(TraceRecord &out)
{
    if (produced_ >= length_)
        return false;

    if (rng_.nextDouble() < targetFraction_) {
        // Hammer one target row; attacks read (CLFLUSH+load pattern).
        MappedAddr loc;
        loc.channel = static_cast<std::uint32_t>(
            rng_.nextBounded(geometry_.channels));
        loc.rank = static_cast<std::uint32_t>(
            rng_.nextBounded(geometry_.ranksPerChannel));
        loc.bank = static_cast<std::uint32_t>(
            rng_.nextBounded(geometry_.banksPerRank));
        loc.col = static_cast<std::uint32_t>(
            rng_.nextBounded(geometry_.colsPerRow));
        const auto &bankTargets =
            targets_[BankId{loc.channel, loc.rank, loc.bank}.flat(
                geometry_)];
        loc.row = bankTargets[rng_.nextBounded(bankTargets.size())];
        out.gap = 8; // tight hammer loop
        out.isWrite = false;
        out.addr = mapper_.compose(loc);
        ++produced_;
        // Keep the benign stream position advancing so the mix ratio
        // controls row composition, not sequence length.
        return true;
    }

    if (!benign_.next(out)) {
        benign_.rewind();
        if (!benign_.next(out))
            return false;
    }
    ++produced_;
    return true;
}

const std::vector<RowAddr> &
AttackWorkload::targets(std::uint32_t bank_flat) const
{
    return targets_.at(bank_flat);
}

} // namespace catsim
