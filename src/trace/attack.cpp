#include "attack.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"

namespace catsim
{

double
attackTargetFraction(AttackMode mode)
{
    switch (mode) {
      case AttackMode::Heavy:
        return 0.75;
      case AttackMode::Medium:
        return 0.50;
      case AttackMode::Light:
        return 0.25;
    }
    return 0.0;
}

const char *
attackModeName(AttackMode mode)
{
    switch (mode) {
      case AttackMode::Heavy:
        return "Heavy";
      case AttackMode::Medium:
        return "Medium";
      case AttackMode::Light:
        return "Light";
    }
    return "?";
}

AttackWorkload::AttackWorkload(const WorkloadProfile &benign,
                               const DramGeometry &geometry,
                               const AddressMapper &mapper,
                               AttackMode mode,
                               std::uint64_t kernel_seed,
                               std::uint64_t stream_seed,
                               std::uint64_t length,
                               std::uint32_t targets_per_bank)
    : geometry_(geometry),
      mapper_(mapper),
      mode_(mode),
      targetFraction_(attackTargetFraction(mode)),
      streamSeed_(stream_seed),
      length_(length),
      rng_(stream_seed),
      benign_(benign, geometry, mapper, stream_seed ^ 0xBEEFULL, length)
{
    targets_.resize(geometry.totalBanks());
    for (auto &t : targets_)
        t.resize(targets_per_bank);
    pickTargets(kernel_seed);
}

void
AttackWorkload::pickTargets(std::uint64_t kernel_seed)
{
    // Target rows follow a Gaussian around a per-bank center chosen by
    // the kernel (paper: "the distribution of target rows in the kernel
    // attacks follows the Gaussian distribution").
    Xoshiro256StarStar krng(kernel_seed * 0x9E3779B9ULL + 7);
    const double sigma = geometry_.rowsPerBank / 64.0;
    for (auto &bankTargets : targets_) {
        const std::uint64_t center =
            krng.nextBounded(geometry_.rowsPerBank);
        for (auto &row : bankTargets) {
            const double offset = krng.nextGaussian() * sigma;
            std::int64_t r = static_cast<std::int64_t>(center)
                             + static_cast<std::int64_t>(offset);
            const auto n =
                static_cast<std::int64_t>(geometry_.rowsPerBank);
            r = ((r % n) + n) % n;
            row = static_cast<RowAddr>(r);
        }
        // Duplicate targets would merely double-hammer one row; keep
        // them distinct so the kernel stresses `targets_per_bank` rows.
        std::sort(bankTargets.begin(), bankTargets.end());
        for (std::size_t i = 1; i < bankTargets.size(); ++i) {
            if (bankTargets[i] <= bankTargets[i - 1]) {
                bankTargets[i] = (bankTargets[i - 1] + 2)
                                 % geometry_.rowsPerBank;
            }
        }
    }
}

void
AttackWorkload::rewind()
{
    produced_ = 0;
    rng_ = Xoshiro256StarStar(streamSeed_);
    benign_.rewind();
}

bool
AttackWorkload::next(TraceRecord &out)
{
    if (produced_ >= length_)
        return false;

    if (rng_.nextDouble() < targetFraction_) {
        // Hammer one target row; attacks read (CLFLUSH+load pattern).
        MappedAddr loc;
        loc.channel = static_cast<std::uint32_t>(
            rng_.nextBounded(geometry_.channels));
        loc.rank = static_cast<std::uint32_t>(
            rng_.nextBounded(geometry_.ranksPerChannel));
        loc.bank = static_cast<std::uint32_t>(
            rng_.nextBounded(geometry_.banksPerRank));
        loc.col = static_cast<std::uint32_t>(
            rng_.nextBounded(geometry_.colsPerRow));
        const auto &bankTargets =
            targets_[BankId{loc.channel, loc.rank, loc.bank}.flat(
                geometry_)];
        loc.row = bankTargets[rng_.nextBounded(bankTargets.size())];
        out.gap = 8; // tight hammer loop
        out.isWrite = false;
        out.addr = mapper_.compose(loc);
        ++produced_;
        // Keep the benign stream position advancing so the mix ratio
        // controls row composition, not sequence length.
        return true;
    }

    if (!benign_.next(out)) {
        benign_.rewind();
        if (!benign_.next(out))
            return false;
    }
    ++produced_;
    return true;
}

const std::vector<RowAddr> &
AttackWorkload::targets(std::uint32_t bank_flat) const
{
    return targets_.at(bank_flat);
}

} // namespace catsim
