/**
 * @file
 * Synthetic workload profiles standing in for the Memory Scheduling
 * Championship traces used by the paper (Section VI).
 *
 * The mitigation schemes only observe per-bank row-activation streams,
 * so each profile is defined by the properties that shape that stream:
 * memory intensity (mean compute gap between memory ops), row-
 * popularity skew (Zipf over a scattered hot set, paper Fig 3), hot-set
 * size, read ratio, row-burst locality, and phase behaviour (hot-set
 * relocation over time, which is what DRCAT exploits).  Eighteen
 * profiles mirror the paper's workload list across the COMM, PARSEC,
 * SPEC and BIO suites.
 */

#ifndef CATSIM_TRACE_WORKLOADS_HPP
#define CATSIM_TRACE_WORKLOADS_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/zipf.hpp"
#include "controller/address_mapping.hpp"
#include "dram/geometry.hpp"
#include "trace/trace.hpp"

namespace catsim
{

/** Parameters defining one synthetic workload. */
struct WorkloadProfile
{
    std::string name;
    std::string suite;          //!< COMM / PARSEC / SPEC / BIO
    double readRatio = 0.67;    //!< fraction of memory ops that read
    double zipfTheta = 0.9;     //!< popularity skew inside the hot set
    std::uint32_t hotRows = 64; //!< hot rows per bank
    double hotFraction = 0.5;   //!< accesses that hit the hot set
    double meanGap = 80.0;      //!< mean non-memory instrs per mem op
    double rowBurst = 3.0;      //!< mean consecutive ops on one row
    double footprintFraction = 1.0; //!< cold accesses span this share
    std::uint64_t phaseEvery = 0;   //!< relocate hot set every N ops
};

/** The 18 paper workloads. */
const std::vector<WorkloadProfile> &workloadSuite();

/** Look up a profile by name (fatal when unknown). */
const WorkloadProfile &findWorkload(const std::string &name);

/**
 * Deterministic pull-based generator of one core's trace for a
 * workload profile.
 */
class SyntheticWorkload : public TraceStream
{
  public:
    /**
     * @param profile  Workload parameters.
     * @param geometry DRAM organization (banks/rows to target).
     * @param mapper   Address mapper used to compose physical addrs.
     * @param seed     Stream seed; same seed => identical sequence.
     * @param length   Number of records before end-of-stream.
     */
    SyntheticWorkload(const WorkloadProfile &profile,
                      const DramGeometry &geometry,
                      const AddressMapper &mapper, std::uint64_t seed,
                      std::uint64_t length);

    bool next(TraceRecord &out) override;
    void rewind() override;

    const WorkloadProfile &profile() const { return profile_; }

    /**
     * Scatter a dense hot-set index into the bank's row space with a
     * bijective multiplicative hash (odd multiplier mod 2^k), so hot
     * rows are spread across the bank like the spikes in paper Fig 3.
     */
    static RowAddr scatterRow(std::uint64_t index, RowAddr num_rows);

  private:
    void regenerateState();
    TraceRecord makeRecord();

    WorkloadProfile profile_;
    DramGeometry geometry_;
    const AddressMapper &mapper_;
    std::uint64_t seed_;
    std::uint64_t length_;
    std::uint64_t produced_ = 0;
    std::uint64_t phase_ = 0;
    Xoshiro256StarStar rng_;
    ZipfSampler hotSampler_;
    // Current burst state: keep hammering one (bank, row).
    MappedAddr burstLoc_;
    std::uint32_t burstLeft_ = 0;
};

} // namespace catsim

#endif // CATSIM_TRACE_WORKLOADS_HPP
