#include "attack_kernel.hpp"

#include <algorithm>

#include "common/config.hpp"
#include "common/logging.hpp"

namespace catsim
{

const char *
attackKernelKindName(AttackKernelKind kind)
{
    switch (kind) {
      case AttackKernelKind::Gaussian:
        return "Gauss";
      case AttackKernelKind::MultiBank:
        return "MultiBank";
    }
    return "?";
}

AttackKernelKind
parseAttackKernelKind(const std::string &name)
{
    const std::string s = asciiLower(name);
    if (s == "gaussian" || s == "gauss")
        return AttackKernelKind::Gaussian;
    if (s == "multibank" || s == "multi-bank")
        return AttackKernelKind::MultiBank;
    CATSIM_FATAL("unknown attack kernel kind '", name,
                 "' (want gaussian|multibank)");
}

namespace
{

/** The kernel-seed RNG used by the paper kernels (1..12). */
Xoshiro256StarStar
kernelRng(std::uint64_t kernel_seed)
{
    return Xoshiro256StarStar(kernel_seed * 0x9E3779B9ULL + 7);
}

bool
contains(const std::vector<RowAddr> &rows, std::size_t n, RowAddr row)
{
    for (std::size_t i = 0; i < n; ++i) {
        if (rows[i] == row)
            return true;
    }
    return false;
}

} // namespace

void
drawGaussianTargets(std::vector<RowAddr> &rows, Xoshiro256StarStar &rng,
                    std::uint64_t center, double sigma,
                    RowAddr num_rows)
{
    if (rows.size() > static_cast<std::size_t>(num_rows))
        CATSIM_FATAL("cannot place ", rows.size(),
                     " distinct targets in ", num_rows, " rows");
    const auto n = static_cast<std::int64_t>(num_rows);
    for (std::size_t i = 0; i < rows.size(); ++i) {
        RowAddr row = 0;
        // Gaussian placement can collide with an earlier target, which
        // would merely double-hammer one row and silently shrink the
        // effective targets-per-bank; re-draw until distinct.
        bool placed = false;
        for (int attempt = 0; attempt < 64; ++attempt) {
            const double offset = rng.nextGaussian() * sigma;
            std::int64_t r = static_cast<std::int64_t>(center)
                             + static_cast<std::int64_t>(offset);
            r = ((r % n) + n) % n;
            row = static_cast<RowAddr>(r);
            if (!contains(rows, i, row)) {
                placed = true;
                break;
            }
        }
        // Degenerate sigma (or sigma ~ 0): probe linearly so placement
        // always terminates with distinct rows.
        while (!placed) {
            row = (row + 1) % num_rows;
            placed = !contains(rows, i, row);
        }
        rows[i] = row;
    }
    std::sort(rows.begin(), rows.end());
}

void
GaussianKernel::pickTargets(std::vector<std::vector<RowAddr>> &targets,
                            const DramGeometry &geometry,
                            std::uint64_t kernel_seed) const
{
    // Target rows follow a Gaussian around a per-bank center chosen by
    // the kernel (paper: "the distribution of target rows in the kernel
    // attacks follows the Gaussian distribution").
    Xoshiro256StarStar krng = kernelRng(kernel_seed);
    const double sigma = geometry.rowsPerBank / 64.0;
    for (auto &bankTargets : targets) {
        const std::uint64_t center =
            krng.nextBounded(geometry.rowsPerBank);
        drawGaussianTargets(bankTargets, krng, center, sigma,
                            geometry.rowsPerBank);
    }
}

void
MultiBankCoordinatedKernel::pickTargets(
    std::vector<std::vector<RowAddr>> &targets,
    const DramGeometry &geometry, std::uint64_t kernel_seed) const
{
    if (targets.empty())
        return;
    // One placement, every bank: all ranks/channels hammer the same
    // row numbers, so schemes sharing state across banks (and the
    // per-bank trees' identical index bits) are stressed in lockstep.
    Xoshiro256StarStar krng = kernelRng(kernel_seed);
    const double sigma = geometry.rowsPerBank / 64.0;
    const std::uint64_t center = krng.nextBounded(geometry.rowsPerBank);
    drawGaussianTargets(targets[0], krng, center, sigma,
                        geometry.rowsPerBank);
    for (std::size_t b = 1; b < targets.size(); ++b)
        targets[b] = targets[0];
}

std::unique_ptr<AttackKernel>
makeAttackKernel(AttackKernelKind kind)
{
    switch (kind) {
      case AttackKernelKind::Gaussian:
        return std::make_unique<GaussianKernel>();
      case AttackKernelKind::MultiBank:
        return std::make_unique<MultiBankCoordinatedKernel>();
    }
    CATSIM_FATAL("unhandled attack kernel kind");
}

} // namespace catsim
