#include "attack_kernel.hpp"

#include <algorithm>

#include "common/config.hpp"
#include "common/logging.hpp"

namespace catsim
{

const char *
attackKernelKindName(AttackKernelKind kind)
{
    switch (kind) {
      case AttackKernelKind::Gaussian:
        return "Gauss";
      case AttackKernelKind::MultiBank:
        return "MultiBank";
      case AttackKernelKind::ManySided:
        return "ManySided";
      case AttackKernelKind::HalfDouble:
        return "HalfDouble";
    }
    return "?";
}

AttackKernelKind
parseAttackKernelKind(const std::string &name)
{
    const std::string s = asciiLower(name);
    if (s == "gaussian" || s == "gauss")
        return AttackKernelKind::Gaussian;
    if (s == "multibank" || s == "multi-bank")
        return AttackKernelKind::MultiBank;
    if (s == "manysided" || s == "many-sided")
        return AttackKernelKind::ManySided;
    if (s == "halfdouble" || s == "half-double")
        return AttackKernelKind::HalfDouble;
    CATSIM_FATAL("unknown attack kernel kind '", name,
                 "' (want gaussian|multibank|manysided|halfdouble)");
}

namespace
{

/** The kernel-seed RNG used by the paper kernels (1..12). */
Xoshiro256StarStar
kernelRng(std::uint64_t kernel_seed)
{
    return Xoshiro256StarStar(kernel_seed * 0x9E3779B9ULL + 7);
}

bool
contains(const std::vector<RowAddr> &rows, std::size_t n, RowAddr row)
{
    for (std::size_t i = 0; i < n; ++i) {
        if (rows[i] == row)
            return true;
    }
    return false;
}

/** A Gaussian draw around @p center, wrapped into [0, num_rows). */
std::function<RowAddr()>
gaussianDraw(Xoshiro256StarStar &rng, std::uint64_t center,
             double sigma, RowAddr num_rows)
{
    const auto n = static_cast<std::int64_t>(num_rows);
    return [&rng, center, sigma, n]() -> RowAddr {
        const double offset = rng.nextGaussian() * sigma;
        std::int64_t r = static_cast<std::int64_t>(center)
                         + static_cast<std::int64_t>(offset);
        r = ((r % n) + n) % n;
        return static_cast<RowAddr>(r);
    };
}

} // namespace

RowAddr
pickDistinctRow(RowAddr num_rows, const std::function<RowAddr()> &draw,
                const std::function<bool(RowAddr)> &ok)
{
    // A draw can collide with an earlier target, which would merely
    // double-hammer one row and silently shrink the effective
    // targets-per-bank; re-draw until accepted.
    RowAddr row = 0;
    for (int attempt = 0; attempt < 64; ++attempt) {
        row = draw();
        if (ok(row))
            return row;
    }
    // Degenerate draw (sigma ~ 0, tiny banks): probe linearly from the
    // last candidate so placement always terminates.
    for (;;) {
        row = (row + 1) % num_rows;
        if (ok(row))
            return row;
    }
}

void
drawGaussianTargets(std::vector<RowAddr> &rows, Xoshiro256StarStar &rng,
                    std::uint64_t center, double sigma,
                    RowAddr num_rows)
{
    if (rows.size() > static_cast<std::size_t>(num_rows))
        CATSIM_FATAL("cannot place ", rows.size(),
                     " distinct targets in ", num_rows, " rows");
    const auto draw = gaussianDraw(rng, center, sigma, num_rows);
    for (std::size_t i = 0; i < rows.size(); ++i) {
        rows[i] = pickDistinctRow(num_rows, draw, [&](RowAddr row) {
            return !contains(rows, i, row);
        });
    }
    std::sort(rows.begin(), rows.end());
}

void
drawStraddlePairs(std::vector<RowAddr> &rows, Xoshiro256StarStar &rng,
                  std::uint64_t center, double sigma, RowAddr num_rows,
                  RowAddr gap)
{
    const std::size_t pairs = rows.size() / 2;
    // Each placed pair vetoes at most 9 victim candidates (3 used rows
    // x 3 candidates each) and the edges exclude 2 * gap more, so this
    // bound keeps at least one candidate acceptable at every step.
    if (gap == 0
        || 9 * pairs + 2 * static_cast<std::size_t>(gap) + rows.size()
               >= num_rows)
        CATSIM_FATAL("cannot place ", pairs, " straddling pairs of gap ",
                     gap, " in ", num_rows, " rows");
    const auto draw = gaussianDraw(rng, center, sigma, num_rows);
    // Aggressors AND victims of placed pairs are off limits: a row
    // serving as both victim and aggressor would hammer itself clean.
    std::vector<RowAddr> used;
    used.reserve(pairs * 3 + 1);
    std::size_t out = 0;
    for (std::size_t p = 0; p < pairs; ++p) {
        const RowAddr v =
            pickDistinctRow(num_rows, draw, [&](RowAddr row) {
                return row >= gap && row + gap < num_rows
                       && !contains(used, used.size(), row - gap)
                       && !contains(used, used.size(), row)
                       && !contains(used, used.size(), row + gap);
            });
        rows[out++] = v - gap;
        rows[out++] = v + gap;
        used.push_back(v - gap);
        used.push_back(v);
        used.push_back(v + gap);
    }
    if (out < rows.size()) {
        // Odd targets-per-bank: one lone aggressor tops up the set.
        rows[out++] = pickDistinctRow(num_rows, draw, [&](RowAddr row) {
            return !contains(used, used.size(), row);
        });
    }
    std::sort(rows.begin(), rows.end());
}

void
GaussianKernel::pickTargets(std::vector<std::vector<RowAddr>> &targets,
                            const DramGeometry &geometry,
                            std::uint64_t kernel_seed) const
{
    // Target rows follow a Gaussian around a per-bank center chosen by
    // the kernel (paper: "the distribution of target rows in the kernel
    // attacks follows the Gaussian distribution").
    Xoshiro256StarStar krng = kernelRng(kernel_seed);
    const double sigma = geometry.rowsPerBank / 64.0;
    for (auto &bankTargets : targets) {
        const std::uint64_t center =
            krng.nextBounded(geometry.rowsPerBank);
        drawGaussianTargets(bankTargets, krng, center, sigma,
                            geometry.rowsPerBank);
    }
}

void
MultiBankCoordinatedKernel::pickTargets(
    std::vector<std::vector<RowAddr>> &targets,
    const DramGeometry &geometry, std::uint64_t kernel_seed) const
{
    if (targets.empty())
        return;
    // One placement, every bank: all ranks/channels hammer the same
    // row numbers, so schemes sharing state across banks (and the
    // per-bank trees' identical index bits) are stressed in lockstep.
    Xoshiro256StarStar krng = kernelRng(kernel_seed);
    const double sigma = geometry.rowsPerBank / 64.0;
    const std::uint64_t center = krng.nextBounded(geometry.rowsPerBank);
    drawGaussianTargets(targets[0], krng, center, sigma,
                        geometry.rowsPerBank);
    for (std::size_t b = 1; b < targets.size(); ++b)
        targets[b] = targets[0];
}

void
ManySidedKernel::pickTargets(std::vector<std::vector<RowAddr>> &targets,
                             const DramGeometry &geometry,
                             std::uint64_t kernel_seed) const
{
    // Victims follow the same per-bank Gaussian the paper kernels use;
    // each contributes the double-sided aggressor pair (v-1, v+1).
    Xoshiro256StarStar krng = kernelRng(kernel_seed);
    const double sigma = geometry.rowsPerBank / 64.0;
    for (auto &bankTargets : targets) {
        const std::uint64_t center =
            krng.nextBounded(geometry.rowsPerBank);
        drawStraddlePairs(bankTargets, krng, center, sigma,
                          geometry.rowsPerBank, 1);
    }
}

void
HalfDoubleKernel::pickTargets(std::vector<std::vector<RowAddr>> &targets,
                              const DramGeometry &geometry,
                              std::uint64_t kernel_seed) const
{
    // Far pairs (v-2, v+2): the hammered rows are at physical distance
    // 2 from the victim, so only a radius-2 victim model (or a defense
    // refreshing a range) covers the disturbance they cause.
    Xoshiro256StarStar krng = kernelRng(kernel_seed);
    const double sigma = geometry.rowsPerBank / 64.0;
    for (auto &bankTargets : targets) {
        const std::uint64_t center =
            krng.nextBounded(geometry.rowsPerBank);
        drawStraddlePairs(bankTargets, krng, center, sigma,
                          geometry.rowsPerBank, 2);
    }
}

std::unique_ptr<AttackKernel>
makeAttackKernel(AttackKernelKind kind)
{
    switch (kind) {
      case AttackKernelKind::Gaussian:
        return std::make_unique<GaussianKernel>();
      case AttackKernelKind::MultiBank:
        return std::make_unique<MultiBankCoordinatedKernel>();
      case AttackKernelKind::ManySided:
        return std::make_unique<ManySidedKernel>();
      case AttackKernelKind::HalfDouble:
        return std::make_unique<HalfDoubleKernel>();
    }
    CATSIM_FATAL("unhandled attack kernel kind");
}

} // namespace catsim
