/**
 * @file
 * Target-placement strategies for row-hammer attack kernels.
 *
 * An AttackKernel decides *where* an attack hammers: it fills one
 * target-row set per flat bank from a kernel seed.  The stream mixing
 * (how often targets are hit, which benign traffic surrounds them)
 * stays in AttackWorkload / the activation sources, so placement and
 * intensity vary independently.
 *
 * Four placements are provided:
 *  - GaussianKernel: the paper's Section VIII-D kernels - per-bank
 *    targets drawn from a Gaussian around an independent random center.
 *  - MultiBankCoordinatedKernel: one Gaussian target set replicated
 *    into every bank of every rank/channel, so a coordinated attacker
 *    stresses the same counter indices in all per-bank (or future
 *    per-rank shared) counter pools simultaneously.
 *  - ManySidedKernel: aggressor pairs straddling Gaussian-placed
 *    victims (v-1, v+1) - the modern many-/double-sided pattern where
 *    every victim is squeezed from both physical neighbors.
 *  - HalfDoubleKernel: far aggressor pairs (v-2, v+2) reaching each
 *    victim at physical distance 2, the Half-Double blast-radius-2
 *    pattern; victim accounting flows through RowAdjacency's radius-2
 *    neighborhood.
 */

#ifndef CATSIM_TRACE_ATTACK_KERNEL_HPP
#define CATSIM_TRACE_ATTACK_KERNEL_HPP

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "dram/geometry.hpp"

namespace catsim
{

/** Which target-placement strategy an attack uses. */
enum class AttackKernelKind
{
    Gaussian,   //!< per-bank Gaussian placement (paper Section VIII-D)
    MultiBank,  //!< identical targets synchronized across all banks
    ManySided,  //!< aggressor pairs straddling each victim (v+-1)
    HalfDouble, //!< far aggressor pairs at physical distance 2 (v+-2)
};

/** Kind name for labels/reports ("Gauss"/"MultiBank"/...). */
const char *attackKernelKindName(AttackKernelKind kind);

/** Parse "gaussian|multibank|manysided|halfdouble" (case-insensitive). */
AttackKernelKind parseAttackKernelKind(const std::string &name);

/** Strategy interface: place target rows for every flat bank. */
class AttackKernel
{
  public:
    virtual ~AttackKernel() = default;

    /**
     * Fill @p targets (one inner vector per flat bank, each pre-sized
     * to the wanted targets-per-bank) with distinct, sorted target
     * rows.  Deterministic in (@p geometry, @p kernel_seed).
     */
    virtual void pickTargets(std::vector<std::vector<RowAddr>> &targets,
                             const DramGeometry &geometry,
                             std::uint64_t kernel_seed) const = 0;

    virtual AttackKernelKind kind() const = 0;
};

/** Paper kernels: per-bank Gaussian placement around a random center. */
class GaussianKernel : public AttackKernel
{
  public:
    void pickTargets(std::vector<std::vector<RowAddr>> &targets,
                     const DramGeometry &geometry,
                     std::uint64_t kernel_seed) const override;

    AttackKernelKind
    kind() const override
    {
        return AttackKernelKind::Gaussian;
    }
};

/** One Gaussian target set replicated into every bank. */
class MultiBankCoordinatedKernel : public AttackKernel
{
  public:
    void pickTargets(std::vector<std::vector<RowAddr>> &targets,
                     const DramGeometry &geometry,
                     std::uint64_t kernel_seed) const override;

    AttackKernelKind
    kind() const override
    {
        return AttackKernelKind::MultiBank;
    }
};

/** Aggressor pairs (v-1, v+1) straddling Gaussian-placed victims. */
class ManySidedKernel : public AttackKernel
{
  public:
    void pickTargets(std::vector<std::vector<RowAddr>> &targets,
                     const DramGeometry &geometry,
                     std::uint64_t kernel_seed) const override;

    AttackKernelKind
    kind() const override
    {
        return AttackKernelKind::ManySided;
    }
};

/** Far aggressor pairs (v-2, v+2): Half-Double, blast radius 2. */
class HalfDoubleKernel : public AttackKernel
{
  public:
    void pickTargets(std::vector<std::vector<RowAddr>> &targets,
                     const DramGeometry &geometry,
                     std::uint64_t kernel_seed) const override;

    AttackKernelKind
    kind() const override
    {
        return AttackKernelKind::HalfDouble;
    }
};

/** Build a kernel strategy by kind. */
std::unique_ptr<AttackKernel> makeAttackKernel(AttackKernelKind kind);

/**
 * The one distinct-row placement step shared by every kernel: call
 * @p draw up to 64 times until @p ok accepts the candidate, then probe
 * linearly (wrapping) from the last candidate until it does.
 * Terminates as long as at least one row in [0, num_rows) is
 * acceptable; the caller guards feasibility.
 */
RowAddr pickDistinctRow(RowAddr num_rows,
                        const std::function<RowAddr()> &draw,
                        const std::function<bool(RowAddr)> &ok);

/**
 * Fill one bank's target set: distinct rows from a Gaussian with the
 * given center and sigma, re-drawing on collision (a duplicate would
 * silently shrink the effective targets-per-bank).  Exposed for the
 * activation sources, which place targets for a single bank.
 */
void drawGaussianTargets(std::vector<RowAddr> &rows,
                         Xoshiro256StarStar &rng, std::uint64_t center,
                         double sigma, RowAddr num_rows);

/**
 * Fill one bank's target set with straddling aggressor pairs: each
 * victim v drawn from the kernel Gaussian contributes the pair
 * {v - gap, v + gap} (gap 1 = many-sided double pairs, gap 2 =
 * half-double far pairs).  Rows touched by an earlier pair (aggressors
 * and victim) are rejected so pairs never overlap; an odd
 * targets-per-bank is topped up with one lone Gaussian aggressor.
 * Output sorted, all rows distinct.
 */
void drawStraddlePairs(std::vector<RowAddr> &rows,
                       Xoshiro256StarStar &rng, std::uint64_t center,
                       double sigma, RowAddr num_rows, RowAddr gap);

} // namespace catsim

#endif // CATSIM_TRACE_ATTACK_KERNEL_HPP
