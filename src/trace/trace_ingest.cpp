#include "trace_ingest.hpp"

#include <fstream>
#include <sstream>

#include "common/config.hpp"
#include "common/fault_injection.hpp"
#include "common/logging.hpp"
#include "sim/event_engine.hpp"

namespace catsim
{

TraceFormat
parseTraceFormat(const std::string &name)
{
    const std::string s = asciiLower(name);
    if (s == "native")
        return TraceFormat::Native;
    if (s == "dramsim")
        return TraceFormat::DramSim;
    CATSIM_FATAL("unknown trace format '", name,
                 "' (want native|dramsim)");
}

namespace
{

bool
parseOp(const std::string &token, bool *is_write)
{
    if (token == "R" || token == "READ" || token == "P_MEM_RD") {
        *is_write = false;
        return true;
    }
    if (token == "W" || token == "WRITE" || token == "P_MEM_WR") {
        *is_write = true;
        return true;
    }
    return false;
}

} // namespace

VectorTrace
readDramSimTrace(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        CATSIM_FATAL("cannot open trace file '", path, "'");
    VectorTrace trace;
    std::string line;
    std::size_t lineno = 0;
    std::uint64_t prevCycle = 0;
    bool first = true;
    while (std::getline(in, line)) {
        ++lineno;
        fault::maybeThrow("trace_ingest_read");
        if (line.empty() || line[0] == '#' || line[0] == ';')
            continue;
        std::istringstream is(line);
        std::string addr, op;
        std::uint64_t cycle = 0;
        if (!(is >> addr >> op >> cycle))
            CATSIM_FATAL("bad DRAMSim trace line ", lineno, " in '",
                         path, "' (want: hexaddr READ|WRITE cycle)");
        TraceRecord r;
        if (!parseOp(op, &r.isWrite))
            CATSIM_FATAL("bad op '", op, "' at line ", lineno, " in '",
                         path, "'");
        if (!parseTraceAddr(addr, &r.addr))
            CATSIM_FATAL("bad address '", addr, "' at line ", lineno,
                         " in '", path, "'");
        if (!first && cycle < prevCycle)
            CATSIM_FATAL("non-monotonic cycle ", cycle, " at line ",
                         lineno, " in '", path, "'");
        // Absolute issue cycles -> per-record compute gap.  The first
        // record keeps its cycle as lead-in gap, matching how DRAMSim
        // players idle until the first timestamp.
        const std::uint64_t delta = first ? cycle : cycle - prevCycle;
        r.gap = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(delta, 0xFFFFFFFFu));
        prevCycle = cycle;
        first = false;
        trace.push(r);
    }
    return trace;
}

VectorTrace
readTraceFileAs(const std::string &path, TraceFormat format)
{
    switch (format) {
      case TraceFormat::Native:
        return readTraceFile(path);
      case TraceFormat::DramSim:
        return readDramSimTrace(path);
    }
    CATSIM_FATAL("unhandled trace format");
}

std::vector<std::vector<RowAddr>>
traceBankStreams(TraceStream &stream, const AddressMapper &mapper,
                 const DramGeometry &geometry,
                 std::uint64_t epoch_every)
{
    std::vector<std::vector<RowAddr>> streams(geometry.totalBanks());
    TraceRecord r;
    std::uint64_t sinceEpoch = 0;
    while (stream.next(r)) {
        const MappedAddr loc = mapper.map(r.addr);
        const std::uint32_t flat = loc.bankId().flat(geometry);
        if (flat >= streams.size())
            CATSIM_FATAL("trace address 0x", std::hex, r.addr, std::dec,
                         " maps outside the geometry (bank ", flat,
                         " of ", streams.size(), ")");
        streams[flat].push_back(loc.row);
        if (epoch_every > 0 && ++sinceEpoch >= epoch_every) {
            sinceEpoch = 0;
            appendEpochMarkers(streams);
        }
    }
    return streams;
}

} // namespace catsim
