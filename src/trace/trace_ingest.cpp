#include "trace_ingest.hpp"

#include <algorithm>
#include <sstream>

#include "common/config.hpp"
#include "common/fault_injection.hpp"
#include "common/logging.hpp"
#include "sim/event_engine.hpp"

namespace catsim
{

TraceFormat
parseTraceFormat(const std::string &name)
{
    const std::string s = asciiLower(name);
    if (s == "native")
        return TraceFormat::Native;
    if (s == "dramsim")
        return TraceFormat::DramSim;
    CATSIM_FATAL("unknown trace format '", name,
                 "' (want native|dramsim)");
}

namespace
{

bool
parseOp(const std::string &token, bool *is_write)
{
    if (token == "R" || token == "READ" || token == "P_MEM_RD") {
        *is_write = false;
        return true;
    }
    if (token == "W" || token == "WRITE" || token == "P_MEM_WR") {
        *is_write = true;
        return true;
    }
    return false;
}

} // namespace

bool
DramSimLineParser::parse(const std::string &line, std::size_t lineno,
                         const std::string &path, TraceRecord *out)
{
    if (line.empty() || line[0] == '#' || line[0] == ';')
        return false;
    std::istringstream is(line);
    std::string addr, op;
    std::uint64_t cycle = 0;
    if (!(is >> addr >> op >> cycle))
        CATSIM_FATAL("bad DRAMSim trace line ", lineno, " in '", path,
                     "' (want: hexaddr READ|WRITE cycle)");
    TraceRecord r;
    if (!parseOp(op, &r.isWrite))
        CATSIM_FATAL("bad op '", op, "' at line ", lineno, " in '",
                     path, "'");
    if (!parseTraceAddr(addr, &r.addr))
        CATSIM_FATAL("bad address '", addr, "' at line ", lineno,
                     " in '", path, "'");
    if (!first && cycle < prevCycle)
        CATSIM_FATAL("non-monotonic cycle ", cycle, " at line ", lineno,
                     " in '", path, "'");
    // Absolute issue cycles -> per-record compute gap.  The first
    // record keeps its cycle as lead-in gap, matching how DRAMSim
    // players idle until the first timestamp.
    const std::uint64_t delta = first ? cycle : cycle - prevCycle;
    r.gap = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(delta, 0xFFFFFFFFu));
    prevCycle = cycle;
    first = false;
    *out = r;
    return true;
}

VectorTrace
readDramSimTrace(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        CATSIM_FATAL("cannot open trace file '", path, "'");
    VectorTrace trace;
    std::string line;
    std::size_t lineno = 0;
    DramSimLineParser parser;
    while (std::getline(in, line)) {
        ++lineno;
        fault::maybeThrow("trace_ingest_read");
        TraceRecord r;
        if (parser.parse(line, lineno, path, &r))
            trace.push(r);
    }
    return trace;
}

VectorTrace
readTraceFileAs(const std::string &path, TraceFormat format)
{
    switch (format) {
      case TraceFormat::Native:
        return readTraceFile(path);
      case TraceFormat::DramSim:
        return readDramSimTrace(path);
    }
    CATSIM_FATAL("unhandled trace format");
}

StreamingTraceReader::StreamingTraceReader(std::string path,
                                           TraceFormat format,
                                           std::size_t chunk_records)
    : path_(std::move(path)), format_(format),
      chunkRecords_(chunk_records ? chunk_records : 1)
{
    buffer_.reserve(chunkRecords_);
    open();
}

void
StreamingTraceReader::open()
{
    in_.close();
    in_.clear();
    in_.open(path_);
    if (!in_)
        CATSIM_FATAL("cannot open trace file '", path_, "'");
    lineno_ = 0;
    dramsim_ = DramSimLineParser{};
    buffer_.clear();
    pos_ = 0;
    exhausted_ = false;
}

void
StreamingTraceReader::refill()
{
    buffer_.clear();
    pos_ = 0;
    std::string line;
    while (buffer_.size() < chunkRecords_ && std::getline(in_, line)) {
        ++lineno_;
        fault::maybeThrow("trace_ingest_read");
        TraceRecord r;
        const bool got =
            format_ == TraceFormat::Native
                ? parseNativeTraceLine(line, lineno_, path_, &r)
                : dramsim_.parse(line, lineno_, path_, &r);
        if (got)
            buffer_.push_back(r);
    }
    if (buffer_.empty())
        exhausted_ = true;
    peakBuffered_ = std::max(peakBuffered_, buffer_.size());
}

bool
StreamingTraceReader::next(TraceRecord &out)
{
    if (pos_ >= buffer_.size()) {
        if (exhausted_)
            return false;
        refill();
        if (buffer_.empty())
            return false;
    }
    out = buffer_[pos_++];
    ++recordsRead_;
    return true;
}

void
StreamingTraceReader::rewind()
{
    open();
}

std::vector<std::vector<RowAddr>>
traceBankStreams(TraceStream &stream, const AddressMapper &mapper,
                 const DramGeometry &geometry,
                 std::uint64_t epoch_every)
{
    std::vector<std::vector<RowAddr>> streams(geometry.totalBanks());
    TraceRecord r;
    std::uint64_t sinceEpoch = 0;
    while (stream.next(r)) {
        const MappedAddr loc = mapper.map(r.addr);
        const std::uint32_t flat = loc.bankId().flat(geometry);
        if (flat >= streams.size())
            CATSIM_FATAL("trace address 0x", std::hex, r.addr, std::dec,
                         " maps outside the geometry (bank ", flat,
                         " of ", streams.size(), ")");
        streams[flat].push_back(loc.row);
        if (epoch_every > 0 && ++sinceEpoch >= epoch_every) {
            sinceEpoch = 0;
            appendEpochMarkers(streams);
        }
    }
    return streams;
}

TraceWindower::TraceWindower(TraceStream &stream,
                             const AddressMapper &mapper,
                             const DramGeometry &geometry,
                             std::uint64_t epoch_every,
                             std::size_t window_records)
    : stream_(stream), mapper_(mapper), geometry_(geometry),
      epochEvery_(epoch_every),
      windowRecords_(window_records ? window_records : 1)
{
}

bool
TraceWindower::next(std::vector<std::vector<RowAddr>> *window)
{
    window->resize(geometry_.totalBanks());
    for (auto &s : *window)
        s.clear();
    TraceRecord r;
    std::size_t taken = 0;
    while (taken < windowRecords_ && stream_.next(r)) {
        const MappedAddr loc = mapper_.map(r.addr);
        const std::uint32_t flat = loc.bankId().flat(geometry_);
        if (flat >= window->size())
            CATSIM_FATAL("trace address 0x", std::hex, r.addr, std::dec,
                         " maps outside the geometry (bank ", flat,
                         " of ", window->size(), ")");
        (*window)[flat].push_back(loc.row);
        ++taken;
        if (epochEvery_ > 0 && ++sinceEpoch_ >= epochEvery_) {
            sinceEpoch_ = 0;
            appendEpochMarkers(*window);
        }
    }
    recordsWindowed_ += taken;
    std::size_t rows = 0;
    for (const auto &s : *window)
        rows += s.size();
    peakWindowRows_ = std::max(peakWindowRows_, rows);
    return taken > 0;
}

} // namespace catsim
