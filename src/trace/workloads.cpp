#include "workloads.hpp"

#include <cmath>

#include "common/logging.hpp"

namespace catsim
{

namespace
{

/**
 * Profile table.  Intensity (meanGap) and skew parameters are chosen so
 * the per-bank activation streams reproduce the paper's qualitative
 * behaviour: COMM workloads are the most memory-intensive, PARSEC's
 * blackscholes/facesim concentrate accesses on a small dominant hot set
 * (Fig 3), SPEC's libquantum/leslie3d stream with little reuse skew,
 * and BIO sits in between.  phaseEvery > 0 relocates the hot set to
 * model application phases (Section V's motivation for DRCAT).
 */
std::vector<WorkloadProfile>
buildSuite()
{
    std::vector<WorkloadProfile> w;
    auto add = [&w](std::string name, std::string suite, double read,
                    double theta, std::uint32_t hot_rows, double hot_frac,
                    double gap, double burst, double footprint,
                    std::uint64_t phase_every) {
        WorkloadProfile p;
        p.name = std::move(name);
        p.suite = std::move(suite);
        p.readRatio = read;
        p.zipfTheta = theta;
        p.hotRows = hot_rows;
        p.hotFraction = hot_frac;
        p.meanGap = gap;
        p.rowBurst = burst;
        p.footprintFraction = footprint;
        p.phaseEvery = phase_every;
        w.push_back(std::move(p));
    };

    // name      suite     read  theta hot  hfrac gap   burst foot  phase
    add("comm1", "COMM", 0.63, 1.15, 24, 0.74, 6.0, 1.4, 0.80, 900000);
    add("comm2", "COMM", 0.60, 1.05, 32, 0.70, 7.0, 1.3, 0.90, 0);
    add("comm3", "COMM", 0.65, 1.00, 40, 0.66, 9.0, 1.2, 1.00, 700000);
    add("comm4", "COMM", 0.58, 1.10, 24, 0.72, 9.0, 1.4, 0.75, 0);
    add("comm5", "COMM", 0.62, 0.95, 48, 0.62, 8.0, 1.3, 0.95, 500000);
    add("swapt", "PARSEC", 0.70, 0.90, 24, 0.60, 15.0, 1.3, 0.60, 0);
    add("fluid", "PARSEC", 0.72, 0.85, 32, 0.55, 18.0, 1.2, 0.70, 800000);
    add("str", "PARSEC", 0.75, 0.75, 20, 0.48, 14.0, 1.8, 0.85, 0);
    add("black", "PARSEC", 0.68, 1.35, 12, 0.78, 16.0, 1.4, 0.50, 0);
    add("ferret", "PARSEC", 0.66, 0.95, 28, 0.57, 19.0, 1.3, 0.65, 600000);
    add("face", "PARSEC", 0.71, 1.30, 14, 0.76, 16.0, 1.5, 0.55, 0);
    add("freq", "PARSEC", 0.69, 0.92, 24, 0.53, 21.0, 1.2, 0.60, 0);
    add("MTC", "SPEC", 0.64, 1.00, 32, 0.62, 12.0, 1.3, 0.85, 650000);
    add("MTF", "SPEC", 0.67, 0.96, 28, 0.58, 13.0, 1.4, 0.80, 0);
    add("libq", "SPEC", 0.95, 0.40, 16, 0.22, 10.0, 2.2, 1.00, 0);
    add("leslie", "SPEC", 0.80, 0.58, 20, 0.32, 14.0, 2.0, 1.00, 0);
    add("mum", "BIO", 0.74, 0.80, 20, 0.50, 23.0, 1.2, 0.70, 0);
    add("tigr", "BIO", 0.76, 0.82, 18, 0.48, 24.0, 1.2, 0.65, 750000);
    return w;
}

} // namespace

const std::vector<WorkloadProfile> &
workloadSuite()
{
    static const std::vector<WorkloadProfile> suite = buildSuite();
    return suite;
}

const WorkloadProfile &
findWorkload(const std::string &name)
{
    for (const auto &p : workloadSuite()) {
        if (p.name == name)
            return p;
    }
    CATSIM_FATAL("unknown workload '", name, "'");
}

RowAddr
SyntheticWorkload::scatterRow(std::uint64_t index, RowAddr num_rows)
{
    // Odd multiplier => bijection on Z/2^k; high-quality scatter.
    const std::uint64_t h = index * 0x9E3779B97F4A7C15ULL + 0x7F4A7C15ULL;
    return static_cast<RowAddr>(h & (num_rows - 1));
}

SyntheticWorkload::SyntheticWorkload(const WorkloadProfile &profile,
                                     const DramGeometry &geometry,
                                     const AddressMapper &mapper,
                                     std::uint64_t seed,
                                     std::uint64_t length)
    : profile_(profile),
      geometry_(geometry),
      mapper_(mapper),
      seed_(seed),
      length_(length),
      rng_(seed),
      hotSampler_(profile.hotRows, profile.zipfTheta)
{
    if ((geometry_.rowsPerBank & (geometry_.rowsPerBank - 1)) != 0)
        CATSIM_FATAL("workload generator needs power-of-two rows");
}

void
SyntheticWorkload::rewind()
{
    produced_ = 0;
    phase_ = 0;
    burstLeft_ = 0;
    rng_ = Xoshiro256StarStar(seed_);
}

bool
SyntheticWorkload::next(TraceRecord &out)
{
    if (produced_ >= length_)
        return false;
    if (profile_.phaseEvery > 0)
        phase_ = produced_ / profile_.phaseEvery;
    out = makeRecord();
    ++produced_;
    return true;
}

TraceRecord
SyntheticWorkload::makeRecord()
{
    TraceRecord r;
    // Exponential gap with the profile's mean, truncated to [0, 20x].
    double u = rng_.nextDouble();
    if (u >= 1.0)
        u = 0.999999;
    double gap = -profile_.meanGap * std::log(1.0 - u);
    if (gap > 20.0 * profile_.meanGap)
        gap = 20.0 * profile_.meanGap;
    r.gap = static_cast<std::uint32_t>(gap);
    r.isWrite = rng_.nextDouble() >= profile_.readRatio;

    if (burstLeft_ > 0) {
        // Stay on the same row, new column (spatial locality).
        --burstLeft_;
        burstLoc_.col = static_cast<std::uint32_t>(
            rng_.nextBounded(geometry_.colsPerRow));
        r.addr = mapper_.compose(burstLoc_);
        return r;
    }

    MappedAddr loc;
    loc.channel =
        static_cast<std::uint32_t>(rng_.nextBounded(geometry_.channels));
    loc.rank = static_cast<std::uint32_t>(
        rng_.nextBounded(geometry_.ranksPerChannel));
    loc.bank = static_cast<std::uint32_t>(
        rng_.nextBounded(geometry_.banksPerRank));
    loc.col = static_cast<std::uint32_t>(
        rng_.nextBounded(geometry_.colsPerRow));

    const bool hot = rng_.nextDouble() < profile_.hotFraction;
    if (hot) {
        // Hot rows: a dense Zipf index scattered over the bank.  Each
        // phase retires about a quarter of the hot set and brings in
        // fresh rows - application phases shift gradually, which is
        // the temporal change DRCAT tracks (paper Section V).
        const std::uint64_t turnover =
            std::max<std::uint64_t>(1, profile_.hotRows / 4);
        const std::uint64_t idx = hotSampler_.sample(rng_)
                                  + phase_ * turnover;
        loc.row = scatterRow(idx + 1000000ULL, geometry_.rowsPerBank);
    } else {
        const auto foot = static_cast<std::uint64_t>(
            profile_.footprintFraction * geometry_.rowsPerBank);
        const std::uint64_t idx = rng_.nextBounded(foot ? foot : 1);
        loc.row = scatterRow(idx + 5000000ULL, geometry_.rowsPerBank);
    }

    // Start a new burst on this row.
    const double mean_extra = profile_.rowBurst > 1.0
        ? profile_.rowBurst - 1.0
        : 0.0;
    if (mean_extra > 0.0) {
        double v = rng_.nextDouble();
        if (v >= 1.0)
            v = 0.999999;
        burstLeft_ = static_cast<std::uint32_t>(
            -mean_extra * std::log(1.0 - v));
        if (burstLeft_ > 64)
            burstLeft_ = 64;
    }
    burstLoc_ = loc;
    r.addr = mapper_.compose(loc);
    return r;
}

} // namespace catsim
