#include "trace.hpp"

#include <iomanip>
#include <sstream>

#include "common/logging.hpp"

namespace catsim
{

std::size_t
writeTraceFile(const std::string &path, TraceStream &stream)
{
    std::ofstream out(path);
    if (!out)
        CATSIM_FATAL("cannot open trace file '", path, "' for writing");
    TraceRecord r;
    std::size_t n = 0;
    while (stream.next(r)) {
        out << r.gap << ' ' << (r.isWrite ? 'W' : 'R') << " 0x"
            << std::hex << r.addr << std::dec << '\n';
        ++n;
    }
    return n;
}

VectorTrace
readTraceFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        CATSIM_FATAL("cannot open trace file '", path, "'");
    VectorTrace trace;
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream is(line);
        TraceRecord r;
        char op = 0;
        std::string addr;
        if (!(is >> r.gap >> op >> addr))
            CATSIM_FATAL("bad trace line ", lineno, " in '", path, "'");
        if (op != 'R' && op != 'W')
            CATSIM_FATAL("bad op '", op, "' at line ", lineno);
        r.isWrite = (op == 'W');
        r.addr = std::stoull(addr, nullptr, 0);
        trace.push(r);
    }
    return trace;
}

} // namespace catsim
