#include "trace.hpp"

#include <iomanip>
#include <sstream>

#include "common/fault_injection.hpp"
#include "common/logging.hpp"

namespace catsim
{

bool
parseTraceAddr(const std::string &token, Addr *out)
{
    // stoull would wrap a signed token ("-5" -> 0xFFF...FB) instead
    // of failing; addresses are unsigned, so no sign is legal.
    if (token.empty() || token[0] == '-' || token[0] == '+')
        return false;
    try {
        std::size_t pos = 0;
        *out = std::stoull(token, &pos, 0);
        return pos == token.size();
    } catch (const std::exception &) {
        return false;
    }
}

std::size_t
writeTraceFile(const std::string &path, TraceStream &stream)
{
    std::ofstream out(path);
    if (!out)
        CATSIM_FATAL("cannot open trace file '", path, "' for writing");
    TraceRecord r;
    std::size_t n = 0;
    while (stream.next(r)) {
        out << r.gap << ' ' << (r.isWrite ? 'W' : 'R') << " 0x"
            << std::hex << r.addr << std::dec << '\n';
        ++n;
    }
    return n;
}

bool
parseNativeTraceLine(const std::string &line, std::size_t lineno,
                     const std::string &path, TraceRecord *out)
{
    if (line.empty() || line[0] == '#')
        return false;
    std::istringstream is(line);
    TraceRecord r;
    char op = 0;
    std::string addr;
    if (!(is >> r.gap >> op >> addr))
        CATSIM_FATAL("bad trace line ", lineno, " in '", path, "'");
    if (op != 'R' && op != 'W')
        CATSIM_FATAL("bad op '", op, "' at line ", lineno);
    r.isWrite = (op == 'W');
    if (!parseTraceAddr(addr, &r.addr))
        CATSIM_FATAL("bad address '", addr, "' at line ", lineno,
                     " in '", path, "'");
    *out = r;
    return true;
}

VectorTrace
readTraceFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        CATSIM_FATAL("cannot open trace file '", path, "'");
    VectorTrace trace;
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        fault::maybeThrow("trace_ingest_read");
        TraceRecord r;
        if (parseNativeTraceLine(line, lineno, path, &r))
            trace.push(r);
    }
    return trace;
}

} // namespace catsim
