/**
 * @file
 * External trace-file ingestion.
 *
 * Besides catsim's native "gap R|W hexaddr" format (trace.hpp), the
 * simulator ingests DRAMSim-style traces - one memory operation per
 * line as `hexaddr READ|WRITE cycle` with absolute issue cycles - so
 * recorded streams from external tools can drive the schemes.  Records
 * are normalized into the native gap-based form (gap = cycle delta),
 * and `traceBankStreams` maps them through an AddressMapper into the
 * per-bank row-activation streams the replay engine consumes.
 *
 * Two ingestion modes exist.  The batch readers (readTraceFile,
 * readDramSimTrace) materialize the whole file - fine for test-sized
 * traces.  Fleet-scale runs use StreamingTraceReader + TraceWindower
 * instead: the reader refills a bounded record buffer from the file on
 * demand and the windower turns the stream into bounded per-bank row
 * windows, so a multi-GB trace is never resident at once.  Both modes
 * share the same per-line parsers, so they accept and reject byte-
 * identical inputs, and the windowed output concatenates to exactly
 * what traceBankStreams would build in RAM.
 */

#ifndef CATSIM_TRACE_TRACE_INGEST_HPP
#define CATSIM_TRACE_TRACE_INGEST_HPP

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "controller/address_mapping.hpp"
#include "dram/geometry.hpp"
#include "trace/trace.hpp"

namespace catsim
{

/** On-disk trace dialect. */
enum class TraceFormat
{
    Native,  //!< "gap R|W hexaddr" (trace.hpp)
    DramSim, //!< "hexaddr READ|WRITE cycle", absolute cycles
};

/** Parse "native|dramsim" (case-insensitive). */
TraceFormat parseTraceFormat(const std::string &name);

/**
 * Stateful DRAMSim line parser: carries the previous absolute cycle so
 * gaps come out as cycle deltas (the first record keeps its cycle as
 * lead-in gap).  parse() returns false for blank/comment lines; bad
 * lines and non-monotonic cycles are fatal.  Shared by the batch and
 * streaming readers.
 */
struct DramSimLineParser
{
    /** @return true when @p out holds a record for this line. */
    bool parse(const std::string &line, std::size_t lineno,
               const std::string &path, TraceRecord *out);

    std::uint64_t prevCycle = 0;
    bool first = true;
};

/**
 * Read a DRAMSim-style trace: `hexaddr READ|WRITE cycle` per line
 * ('#' and ';' start comments; R/W and P_MEM_RD/P_MEM_WR accepted as
 * operation spellings).  Cycles must be non-decreasing; each record's
 * gap becomes the cycle delta to its predecessor.  Malformed lines are
 * fatal, so truncated or corrupt files are rejected loudly.
 */
VectorTrace readDramSimTrace(const std::string &path);

/** Read @p path in the given dialect. */
VectorTrace readTraceFileAs(const std::string &path, TraceFormat format);

/**
 * Bounded-memory file-backed TraceStream.  Parses the file
 * chunk_records records at a time into an internal buffer, refilling
 * from disk as the consumer drains it - at no point are more than
 * chunk_records records resident (peakBuffered() proves it, for the
 * bounded-memory tests).  Yields exactly the record sequence the
 * matching batch reader would, including the same loud fatals on
 * malformed or truncated input (a line cut mid-record dies at its line
 * number), and hits the `trace_ingest_read` fail point once per file
 * line just like the batch readers.  rewind() reopens the file.
 */
class StreamingTraceReader : public TraceStream
{
  public:
    /** Default chunk: 64 Ki records (~1 MiB of buffer). */
    static constexpr std::size_t kDefaultChunkRecords = 64 * 1024;

    StreamingTraceReader(std::string path, TraceFormat format,
                         std::size_t chunk_records = kDefaultChunkRecords);

    bool next(TraceRecord &out) override;
    void rewind() override;

    /** High-water mark of records buffered at once. */
    std::size_t peakBuffered() const { return peakBuffered_; }

    /** Records handed out since construction (not reset by rewind). */
    std::uint64_t recordsRead() const { return recordsRead_; }

  private:
    void open();
    void refill();

    std::string path_;
    TraceFormat format_;
    std::size_t chunkRecords_;
    std::ifstream in_;
    std::size_t lineno_ = 0;
    DramSimLineParser dramsim_;
    std::vector<TraceRecord> buffer_;
    std::size_t pos_ = 0;
    bool exhausted_ = false;
    std::size_t peakBuffered_ = 0;
    std::uint64_t recordsRead_ = 0;
};

/**
 * Map every record of @p stream through @p mapper into per-flat-bank
 * row streams.  When @p epoch_every > 0, a kEpochMarker sentinel is
 * appended to EVERY bank stream after each @p epoch_every ingested
 * records (mirroring the wall-clock epoch boundaries the timing
 * recorder emits), so the result feeds replayActivations directly.
 * The stream is consumed from its current position.
 */
std::vector<std::vector<RowAddr>> traceBankStreams(
    TraceStream &stream, const AddressMapper &mapper,
    const DramGeometry &geometry, std::uint64_t epoch_every = 0);

/**
 * Windowed traceBankStreams: each next() call drains up to
 * window_records records from the stream into per-flat-bank row
 * vectors (rows + kEpochMarker sentinels), clearing the previous
 * window first.  The epoch cadence is carried across windows, so
 * concatenating every window per bank reproduces the traceBankStreams
 * output bit for bit while only one window is ever resident.  Feed the
 * stream from a StreamingTraceReader and the whole path is bounded:
 * O(chunk + window), independent of trace size.
 */
class TraceWindower
{
  public:
    /** Default window: 256 Ki records (~1 MiB of rows). */
    static constexpr std::size_t kDefaultWindowRecords = 256 * 1024;

    TraceWindower(TraceStream &stream, const AddressMapper &mapper,
                  const DramGeometry &geometry,
                  std::uint64_t epoch_every = 0,
                  std::size_t window_records = kDefaultWindowRecords);

    /**
     * Fill @p window (resized to totalBanks()) with the next batch of
     * per-bank rows; false when the stream is exhausted and nothing
     * was produced.
     */
    bool next(std::vector<std::vector<RowAddr>> *window);

    /** High-water mark of rows (incl. markers) held by one window. */
    std::size_t peakWindowRows() const { return peakWindowRows_; }

    /** Records windowed so far. */
    std::uint64_t recordsWindowed() const { return recordsWindowed_; }

  private:
    TraceStream &stream_;
    const AddressMapper &mapper_;
    const DramGeometry &geometry_;
    std::uint64_t epochEvery_;
    std::size_t windowRecords_;
    std::uint64_t sinceEpoch_ = 0;
    std::size_t peakWindowRows_ = 0;
    std::uint64_t recordsWindowed_ = 0;
};

} // namespace catsim

#endif // CATSIM_TRACE_TRACE_INGEST_HPP
