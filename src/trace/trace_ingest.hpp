/**
 * @file
 * External trace-file ingestion.
 *
 * Besides catsim's native "gap R|W hexaddr" format (trace.hpp), the
 * simulator ingests DRAMSim-style traces - one memory operation per
 * line as `hexaddr READ|WRITE cycle` with absolute issue cycles - so
 * recorded streams from external tools can drive the schemes.  Records
 * are normalized into the native gap-based form (gap = cycle delta),
 * and `traceBankStreams` maps them through an AddressMapper into the
 * per-bank row-activation streams the replay engine consumes.
 */

#ifndef CATSIM_TRACE_TRACE_INGEST_HPP
#define CATSIM_TRACE_TRACE_INGEST_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "controller/address_mapping.hpp"
#include "dram/geometry.hpp"
#include "trace/trace.hpp"

namespace catsim
{

/** On-disk trace dialect. */
enum class TraceFormat
{
    Native,  //!< "gap R|W hexaddr" (trace.hpp)
    DramSim, //!< "hexaddr READ|WRITE cycle", absolute cycles
};

/** Parse "native|dramsim" (case-insensitive). */
TraceFormat parseTraceFormat(const std::string &name);

/**
 * Read a DRAMSim-style trace: `hexaddr READ|WRITE cycle` per line
 * ('#' and ';' start comments; R/W and P_MEM_RD/P_MEM_WR accepted as
 * operation spellings).  Cycles must be non-decreasing; each record's
 * gap becomes the cycle delta to its predecessor.  Malformed lines are
 * fatal, so truncated or corrupt files are rejected loudly.
 */
VectorTrace readDramSimTrace(const std::string &path);

/** Read @p path in the given dialect. */
VectorTrace readTraceFileAs(const std::string &path, TraceFormat format);

/**
 * Map every record of @p stream through @p mapper into per-flat-bank
 * row streams.  When @p epoch_every > 0, a kEpochMarker sentinel is
 * appended to EVERY bank stream after each @p epoch_every ingested
 * records (mirroring the wall-clock epoch boundaries the timing
 * recorder emits), so the result feeds replayActivations directly.
 * The stream is consumed from its current position.
 */
std::vector<std::vector<RowAddr>> traceBankStreams(
    TraceStream &stream, const AddressMapper &mapper,
    const DramGeometry &geometry, std::uint64_t epoch_every = 0);

} // namespace catsim

#endif // CATSIM_TRACE_TRACE_INGEST_HPP
