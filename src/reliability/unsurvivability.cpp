#include "unsurvivability.hpp"

#include <cmath>

#include "common/logging.hpp"

namespace catsim
{

double
refreshPeriodsInYears(double years)
{
    return years * 365.25 * 24.0 * 3600.0 / 0.064;
}

double
praUnsurvivability(std::uint32_t threshold, double p, double q0,
                   double years)
{
    if (p <= 0.0 || p >= 1.0)
        CATSIM_FATAL("probability must be in (0,1)");
    // log-space to survive (1-p)^T underflow for large T.
    const double logFail = static_cast<double>(threshold)
                           * std::log1p(-p);
    const double log10v = logFail / std::log(10.0)
                          + std::log10(q0)
                          + std::log10(refreshPeriodsInYears(years));
    if (log10v >= 0.0)
        return 1.0;
    return std::pow(10.0, log10v);
}

double
minimumSafeProbability(std::uint32_t threshold, double q0, double years)
{
    for (double p = 1e-4; p < 0.5; p += 1e-4) {
        if (praUnsurvivability(threshold, p, q0, years)
            < kChipkillUnsurvivability)
            return p;
    }
    return 0.5;
}

} // namespace catsim
