#include "montecarlo.hpp"

#include <cmath>

#include "common/logging.hpp"

namespace catsim
{

double
McResult::unsurvivabilityAfter(double q0, double intervals) const
{
    const double exposures = q0 * intervals;
    if (windowFailureProb <= 0.0)
        return 0.0;
    // 1 - (1-pf)^n computed stably.
    return -std::expm1(exposures * std::log1p(-windowFailureProb));
}

McResult
praWindowFailures(PrngSource &prng, std::uint32_t threshold, double p,
                  std::uint64_t windows)
{
    if (p <= 0.0 || p >= 1.0)
        CATSIM_FATAL("probability must be in (0,1)");
    const unsigned bits =
        static_cast<unsigned>(std::ceil(std::log2(1.0 / p)));
    const auto accept = static_cast<std::uint32_t>(
        std::llround(p * std::pow(2.0, bits)));

    McResult res;
    res.windows = windows;
    // Each trial models one hammered victim: its disturbance counter
    // restarts whenever a refresh is accepted; the trial fails when T
    // consecutive draws all miss the accept region.
    const std::uint32_t acceptBelow = accept ? accept : 1;
    for (std::uint64_t w = 0; w < windows; ++w) {
        bool refreshed = false;
        for (std::uint32_t i = 0; i < threshold; ++i) {
            if (prng.nextBits(bits) < acceptBelow) {
                refreshed = true;
                break;
            }
        }
        if (!refreshed)
            ++res.failedWindows;
    }
    res.windowFailureProb = windows == 0
        ? 0.0
        : static_cast<double>(res.failedWindows)
              / static_cast<double>(res.windows);
    return res;
}

} // namespace catsim
