#include "montecarlo.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <sstream>

#include "common/logging.hpp"
#include "common/rng.hpp"
#include "sim/checkpoint.hpp"

namespace catsim
{

double
McResult::unsurvivabilityAfter(double q0, double intervals) const
{
    const double exposures = q0 * intervals;
    if (windowFailureProb <= 0.0)
        return 0.0;
    // 1 - (1-pf)^n computed stably.
    return -std::expm1(exposures * std::log1p(-windowFailureProb));
}

McResult
praWindowFailures(PrngSource &prng, std::uint32_t threshold, double p,
                  std::uint64_t windows)
{
    if (p <= 0.0 || p >= 1.0)
        CATSIM_FATAL("probability must be in (0,1)");
    const unsigned bits =
        static_cast<unsigned>(std::ceil(std::log2(1.0 / p)));
    const auto accept = static_cast<std::uint32_t>(
        std::llround(p * std::pow(2.0, bits)));

    McResult res;
    res.windows = windows;
    // Each trial models one hammered victim: its disturbance counter
    // restarts whenever a refresh is accepted; the trial fails when T
    // consecutive draws all miss the accept region.
    const std::uint32_t acceptBelow = accept ? accept : 1;
    for (std::uint64_t w = 0; w < windows; ++w) {
        bool refreshed = false;
        for (std::uint32_t i = 0; i < threshold; ++i) {
            if (prng.nextBits(bits) < acceptBelow) {
                refreshed = true;
                break;
            }
        }
        if (!refreshed)
            ++res.failedWindows;
    }
    res.windowFailureProb = windows == 0
        ? 0.0
        : static_cast<double>(res.failedWindows)
              / static_cast<double>(res.windows);
    return res;
}

namespace
{

/** Per-batch PRNG: an independent stream seeded from (seed, batch). */
std::unique_ptr<PrngSource>
makeBatchPrng(const McCampaignSpec &spec, std::uint64_t batch)
{
    SplitMix64 mix(spec.seed ^ (batch * 0x9E3779B97F4A7C15ULL));
    const std::uint64_t derived = mix.next();
    if (spec.prng == McCampaignSpec::Prng::True)
        return std::make_unique<TruePrng>(derived);
    // The LFSR register must be nonzero within its width.
    const std::uint64_t mask =
        spec.lfsrWidth >= 64 ? ~0ULL : ((1ULL << spec.lfsrWidth) - 1);
    std::uint64_t s = derived & mask;
    if (s == 0)
        s = 1;
    return std::make_unique<LfsrPrng>(spec.lfsrWidth, s);
}

} // namespace

std::string
McCampaignSpec::journalKeyPrefix() const
{
    std::ostringstream os;
    os << "mc|" << (prng == Prng::True ? "true" : "lfsr") << '|'
       << lfsrWidth << "|seed=" << seed << "|T=" << threshold
       << "|p=" << std::hexfloat << p << std::defaultfloat
       << "|windows=" << windows << "|batch=" << windowsPerBatch;
    return os.str();
}

McResult
praWindowFailuresResumable(const McCampaignSpec &spec,
                           CheckpointJournal *journal)
{
    const std::uint64_t batchSize =
        spec.windowsPerBatch ? spec.windowsPerBatch : 1;
    const std::string prefix = spec.journalKeyPrefix();

    McResult total;
    total.windows = spec.windows;
    std::uint64_t resumed = 0;
    for (std::uint64_t batch = 0, start = 0; start < spec.windows;
         ++batch, start += batchSize) {
        const std::uint64_t count =
            std::min(batchSize, spec.windows - start);
        const std::string key =
            prefix + "|#" + std::to_string(batch);

        if (journal) {
            std::string blob;
            std::uint64_t failed = 0, windows = 0;
            if (journal->lookup(key, &blob)) {
                BlobReader r(blob);
                if (r.getU64(&failed) && r.getU64(&windows)
                    && r.atEnd() && windows == count) {
                    total.failedWindows += failed;
                    ++resumed;
                    continue;
                }
            }
        }

        const auto prng = makeBatchPrng(spec, batch);
        const McResult br =
            praWindowFailures(*prng, spec.threshold, spec.p, count);
        total.failedWindows += br.failedWindows;
        if (journal) {
            BlobWriter w;
            w.putU64(br.failedWindows);
            w.putU64(br.windows);
            journal->append(key, w.str());
        }
    }
    if (resumed > 0)
        CATSIM_INFORM("checkpoint: resumed ", resumed,
                      " Monte-Carlo batches (", prefix, ")");
    total.windowFailureProb = total.windows == 0
        ? 0.0
        : static_cast<double>(total.failedWindows)
              / static_cast<double>(total.windows);
    return total;
}

} // namespace catsim
