/**
 * @file
 * Monte-Carlo estimation of PRA failure probability under different
 * PRNGs (paper Section III-A).
 *
 * The analytic Eq. 1 assumes independent Bernoulli draws.  A cheap
 * LFSR-based PRNG produces a fixed periodic bit sequence, so whole
 * stretches of activations can systematically miss the accept region;
 * the paper's Monte-Carlo found that with T=16K, p=0.005 an LFSR-based
 * PRA reaches 1e-4 unsurvivability "after only 25 refresh intervals".
 * This module reproduces that experiment: it slides refresh-threshold
 * windows over the PRNG's decision stream and counts windows with zero
 * accepted refreshes.
 */

#ifndef CATSIM_RELIABILITY_MONTECARLO_HPP
#define CATSIM_RELIABILITY_MONTECARLO_HPP

#include <cstdint>

#include "core/prng_source.hpp"

namespace catsim
{

/** Result of a window-failure Monte-Carlo run. */
struct McResult
{
    std::uint64_t windows = 0;       //!< threshold windows simulated
    std::uint64_t failedWindows = 0; //!< windows with zero refreshes
    double windowFailureProb = 0.0;  //!< failed / total

    /**
     * Unsurvivability after @p intervals refresh intervals with @p q0
     * threshold windows each: 1 - (1 - pf)^(q0 * intervals).
     */
    double unsurvivabilityAfter(double q0, double intervals) const;
};

/**
 * Slide @p windows consecutive windows of @p threshold draws over the
 * PRNG stream; a window fails when no draw accepts.
 *
 * @param prng      Bit source under test.
 * @param threshold Window length T in activations.
 * @param p         Refresh probability (sets bits/accept region).
 * @param windows   Number of windows to simulate.
 */
McResult praWindowFailures(PrngSource &prng, std::uint32_t threshold,
                           double p, std::uint64_t windows);

} // namespace catsim

#endif // CATSIM_RELIABILITY_MONTECARLO_HPP
