/**
 * @file
 * Monte-Carlo estimation of PRA failure probability under different
 * PRNGs (paper Section III-A).
 *
 * The analytic Eq. 1 assumes independent Bernoulli draws.  A cheap
 * LFSR-based PRNG produces a fixed periodic bit sequence, so whole
 * stretches of activations can systematically miss the accept region;
 * the paper's Monte-Carlo found that with T=16K, p=0.005 an LFSR-based
 * PRA reaches 1e-4 unsurvivability "after only 25 refresh intervals".
 * This module reproduces that experiment: it slides refresh-threshold
 * windows over the PRNG's decision stream and counts windows with zero
 * accepted refreshes.
 */

#ifndef CATSIM_RELIABILITY_MONTECARLO_HPP
#define CATSIM_RELIABILITY_MONTECARLO_HPP

#include <cstdint>
#include <string>

#include "core/prng_source.hpp"

namespace catsim
{

class CheckpointJournal;

/** Result of a window-failure Monte-Carlo run. */
struct McResult
{
    std::uint64_t windows = 0;       //!< threshold windows simulated
    std::uint64_t failedWindows = 0; //!< windows with zero refreshes
    double windowFailureProb = 0.0;  //!< failed / total

    /**
     * Unsurvivability after @p intervals refresh intervals with @p q0
     * threshold windows each: 1 - (1 - pf)^(q0 * intervals).
     */
    double unsurvivabilityAfter(double q0, double intervals) const;
};

/**
 * Slide @p windows consecutive windows of @p threshold draws over the
 * PRNG stream; a window fails when no draw accepts.
 *
 * @param prng      Bit source under test.
 * @param threshold Window length T in activations.
 * @param p         Refresh probability (sets bits/accept region).
 * @param windows   Number of windows to simulate.
 */
McResult praWindowFailures(PrngSource &prng, std::uint32_t threshold,
                           double p, std::uint64_t windows);

/**
 * A crash-safe Monte-Carlo campaign: @p windows trials split into
 * batches of @p windowsPerBatch, each batch drawing from its own PRNG
 * stream seeded deterministically from (seed, batch index).  Every
 * batch is therefore a pure function of the spec, so finished batches
 * can be journaled and skipped on resume - a killed-and-resumed
 * campaign accumulates exactly the same failedWindows count as an
 * uninterrupted one.  (Per-batch streams make the counts differ
 * slightly from a praWindowFailures call over one continuous stream;
 * the statistics are equivalent.)
 */
struct McCampaignSpec
{
    enum class Prng
    {
        True, //!< TruePrng (xoshiro-backed high-quality source)
        Lfsr, //!< LfsrPrng (the cheap correlated source)
    };

    Prng prng = Prng::True;
    unsigned lfsrWidth = 16;          //!< LFSR register width
    std::uint64_t seed = 2024;        //!< campaign seed base
    std::uint32_t threshold = 16384;  //!< window length T
    double p = 0.005;                 //!< refresh probability
    std::uint64_t windows = 3000;     //!< total trials
    std::uint64_t windowsPerBatch = 512;

    /** Journal key prefix: every spec field, so a changed campaign
     *  never reuses a stale batch. */
    std::string journalKeyPrefix() const;
};

/**
 * Run (or resume) the campaign.  With @p journal non-null, finished
 * batches are read back instead of re-simulated and fresh batches are
 * appended as they complete; with null it just runs everything.
 */
McResult praWindowFailuresResumable(const McCampaignSpec &spec,
                                    CheckpointJournal *journal);

} // namespace catsim

#endif // CATSIM_RELIABILITY_MONTECARLO_HPP
