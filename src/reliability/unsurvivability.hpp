/**
 * @file
 * PRA reliability analysis (paper Section III-A, Eq. 1).
 *
 * A PRA-protected bank fails when an aggressor row is activated T times
 * within a refresh-threshold window without any of the T Bernoulli(p)
 * draws triggering a victim refresh.  The probability of at least one
 * failure over Y years is
 *     unsurvivability = (1 - p)^T * Q0 * Q1
 * where Q0 is the number of refresh-threshold windows per 64 ms refresh
 * interval and Q1 the number of 64 ms periods in Y years.  Chipkill's
 * 1e-4 serves as the reliability bar.
 */

#ifndef CATSIM_RELIABILITY_UNSURVIVABILITY_HPP
#define CATSIM_RELIABILITY_UNSURVIVABILITY_HPP

#include <cstdint>

namespace catsim
{

/** Chipkill 5-year unsurvivability reference (paper Fig 1). */
constexpr double kChipkillUnsurvivability = 1e-4;

/** Number of 64 ms periods in @p years years. */
double refreshPeriodsInYears(double years);

/**
 * Eq. 1: probability of a crosstalk failure within @p years.
 *
 * @param threshold Refresh threshold T.
 * @param p         Per-activation refresh probability.
 * @param q0        Refresh-threshold windows per 64 ms interval.
 * @param years     Exposure, e.g. 5.
 * @return Failure probability, capped at 1.
 */
double praUnsurvivability(std::uint32_t threshold, double p, double q0,
                          double years);

/**
 * Smallest p (searched over a fine grid) for which PRA beats the
 * Chipkill bar at the given T/Q0/years, used to pick the paper's
 * per-threshold probabilities (0.001@64K ... 0.005@8K).
 */
double minimumSafeProbability(std::uint32_t threshold, double q0,
                              double years);

} // namespace catsim

#endif // CATSIM_RELIABILITY_UNSURVIVABILITY_HPP
