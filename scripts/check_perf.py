#!/usr/bin/env python3
"""Hot-path throughput regression guard.

Reads the ``metrics`` object of the micro-bench's ``BENCH_<name>.json``
(produced by scripts/run_benches.sh) and enforces the committed floors
in ``scripts/reference_perf.json``:

* **Speedup ratios** (bundle vs flattened tree) are machine-relative,
  so they get hard per-SIMD-tier floors: the bench reports which
  bundle kernel the host ran (``bundle_simd_tier``: 2 = AVX-512
  fused descent+resolve, 1 = AVX2 gather descent, 0 = portable
  scalar) and each ratio must clear the floor committed for that
  tier.  This is the PR's acceptance bar (>= 3x on AVX-512 hosts).
* **Absolute throughputs** (activations/second) vary with hardware,
  so they only get loose sanity floors: ``reference * min_frac``.
  They catch order-of-magnitude regressions (e.g. the bundle silently
  falling back to per-call dispatch), not machine-to-machine drift.

Unlike check_metrics.py (bit-exact physics), perf numbers are noisy;
floors here are deliberately one-sided - faster is always fine.

Usage:
    scripts/check_perf.py RESULTS_DIR [--reference FILE]

Exit status: 0 when every present metric clears its floor (or the
bench did not run), 1 on any floor violation, 2 on usage/IO errors.
"""

import argparse
import json
import sys
from pathlib import Path


def load_json(path: Path):
    try:
        with open(path) as fh:
            return json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot read {path}: {exc}", file=sys.stderr)
        sys.exit(2)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("results_dir", type=Path)
    parser.add_argument(
        "--reference",
        type=Path,
        default=Path(__file__).parent / "reference_perf.json",
    )
    args = parser.parse_args()

    ref = load_json(args.reference)
    bench = ref.get("bench", "bench_micro_schemes")
    result_path = args.results_dir / f"BENCH_{bench}.json"
    if not result_path.is_file():
        print(f"check_perf: {result_path.name} not present, skipping")
        return 0

    metrics = load_json(result_path).get("metrics", {})
    if not metrics:
        print(f"check_perf: {result_path.name} has no metrics, skipping")
        return 0

    failures = []

    tier_key = ref.get("tier_metric", "bundle_simd_tier")
    tier = str(int(metrics.get(tier_key, 0)))
    for name, floors in ref.get("ratio_floors", {}).items():
        if name not in metrics:
            continue
        floor = floors.get(tier)
        if floor is None:
            continue
        value = float(metrics[name])
        if value < floor:
            failures.append(
                f"{name} = {value:.3f} below floor {floor:.3f} "
                f"(simd tier {tier})"
            )
        else:
            print(
                f"  ok: {name} = {value:.3f} >= {floor:.3f} "
                f"(simd tier {tier})"
            )

    for name, spec in ref.get("throughput_floors", {}).items():
        if name not in metrics:
            continue
        floor = float(spec["reference"]) * float(spec.get("min_frac", 0.2))
        value = float(metrics[name])
        if value < floor:
            failures.append(
                f"{name} = {value:.3g} below sanity floor {floor:.3g} "
                f"({spec['reference']:.3g} * {spec.get('min_frac', 0.2)})"
            )
        else:
            print(f"  ok: {name} = {value:.3g} >= {floor:.3g}")

    if failures:
        print(f"check_perf: {len(failures)} floor violation(s):")
        for f in failures:
            print(f"  FAIL: {f}")
        return 1
    print("check_perf: all floors cleared")
    return 0


if __name__ == "__main__":
    sys.exit(main())
