#!/usr/bin/env python3
"""Hot-path throughput regression guard with cross-PR trajectory.

Reads the ``metrics`` object of each guarded bench's
``BENCH_<name>.json`` (produced by scripts/run_benches.sh) and enforces
the committed floors in ``scripts/reference_perf.json``.  The reference
file holds one entry per bench under ``benches`` (the micro-bench's
bundle kernels and the fleet-scale shard scaling curve); a bench that
did not run is skipped, so BENCH_FILTERed invocations stay green.

Three kinds of guard, in increasing statefulness:

* **Ratio floors** (bundle vs flattened tree, 4-shard vs 1-shard
  fleet speedup) are machine-relative, so they get hard per-tier
  floors: each bench reports which hardware class it ran on
  (``bundle_simd_tier``: 2 = AVX-512, 1 = AVX2, 0 = scalar;
  ``fleet_worker_tier``: 2 = host has >= 4 cores, 1 = 2-3, 0 = 1)
  and each ratio must clear the floor committed for that tier.
  A 1-core CI box cannot show a 4x shard speedup, so tier 0's fleet
  floors only catch pathological slowdowns.
* **Absolute throughput floors** (activations/second) vary with
  hardware, so they only get loose sanity floors
  (``reference * min_frac``) catching order-of-magnitude regressions.
* **Trajectory tracking** guards against the slow bleed the one-shot
  floors cannot see: ``scripts/perf_history.jsonl`` accumulates one
  record per PR for each tracked metric, and the current value is
  compared against the median of the last ``window`` records measured
  on the same hardware tier.  One bad sample is only a warning (perf
  numbers are noisy); the run FAILS when the current value AND the
  previous record are both below ``median * min_frac`` - a sustained
  regression, not a blip.  Pass ``--update-history`` (the PR workflow:
  run benches, commit the appended line) to append this run's values.

Unlike check_metrics.py (bit-exact physics), perf numbers are noisy;
floors here are deliberately one-sided - faster is always fine.

Usage:
    scripts/check_perf.py RESULTS_DIR [--reference FILE]
        [--history FILE] [--update-history]

Exit status: 0 when every present metric clears its floors (or no
guarded bench ran), 1 on any violation, 2 on usage/IO errors.
"""

import argparse
import json
import statistics
import sys
import time
from pathlib import Path


def load_json(path: Path):
    try:
        with open(path) as fh:
            return json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot read {path}: {exc}", file=sys.stderr)
        sys.exit(2)


def load_history(path: Path):
    """History is JSONL: one {"bench","tier","metric","value"} per line."""
    records = []
    if not path.is_file():
        return records
    with open(path) as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as exc:
                print(
                    f"error: bad history line {lineno} in {path}: {exc}",
                    file=sys.stderr,
                )
                sys.exit(2)
    return records


def check_ratio_floors(spec, metrics, tier, failures):
    for name, floors in spec.get("ratio_floors", {}).items():
        if name not in metrics:
            continue
        floor = floors.get(tier)
        if floor is None:
            continue
        value = float(metrics[name])
        if value < floor:
            failures.append(
                f"{name} = {value:.3f} below floor {floor:.3f} "
                f"(tier {tier})"
            )
        else:
            print(f"  ok: {name} = {value:.3f} >= {floor:.3f} (tier {tier})")


def check_throughput_floors(spec, metrics, failures):
    for name, fspec in spec.get("throughput_floors", {}).items():
        if name not in metrics:
            continue
        min_frac = float(fspec.get("min_frac", 0.2))
        floor = float(fspec["reference"]) * min_frac
        value = float(metrics[name])
        if value < floor:
            failures.append(
                f"{name} = {value:.3g} below sanity floor {floor:.3g} "
                f"({fspec['reference']:.3g} * {min_frac})"
            )
        else:
            print(f"  ok: {name} = {value:.3g} >= {floor:.3g}")


def check_trajectory(bench, spec, metrics, tier, history, new_records,
                     failures):
    """Sustained-regression guard against the committed history.

    For each tracked metric, the rolling baseline is the median of the
    last ``window`` history records for this bench+metric on the same
    hardware tier.  current < median*min_frac is a warning; current AND
    the most recent history record both below is a FAIL (two PRs in a
    row - a trend, not noise).  Fewer than ``min_records`` comparable
    records means no baseline yet: record and move on.
    """
    traj = spec.get("trajectory", {})
    window = int(traj.get("window", 8))
    min_frac = float(traj.get("min_frac", 0.5))
    min_records = int(traj.get("min_records", 3))
    for name in traj.get("metrics", []):
        if name not in metrics:
            continue
        value = float(metrics[name])
        new_records.append(
            {
                "ts": int(time.time()),
                "bench": bench,
                "tier": tier,
                "metric": name,
                "value": value,
            }
        )
        prior = [
            float(r["value"])
            for r in history
            if r.get("bench") == bench
            and r.get("metric") == name
            and str(r.get("tier")) == tier
        ]
        if len(prior) < min_records:
            print(
                f"  trajectory: {name} = {value:.3g} recorded "
                f"({len(prior)} prior record(s) at tier {tier}, "
                f"baseline needs {min_records})"
            )
            continue
        baseline = statistics.median(prior[-window:])
        floor = baseline * min_frac
        if value >= floor:
            print(
                f"  trajectory ok: {name} = {value:.3g} >= {floor:.3g} "
                f"(median {baseline:.3g} of last {min(len(prior), window)} "
                f"* {min_frac})"
            )
        elif prior[-1] < floor:
            failures.append(
                f"{name} = {value:.3g} below trajectory floor "
                f"{floor:.3g} for the 2nd PR running "
                f"(median {baseline:.3g}, tier {tier}) - sustained "
                f"regression"
            )
        else:
            print(
                f"  trajectory WARN: {name} = {value:.3g} < {floor:.3g} "
                f"(median {baseline:.3g}); one-off for now, fails if "
                f"the next PR is also below"
            )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("results_dir", type=Path)
    parser.add_argument(
        "--reference",
        type=Path,
        default=Path(__file__).parent / "reference_perf.json",
    )
    parser.add_argument(
        "--history",
        type=Path,
        default=Path(__file__).parent / "perf_history.jsonl",
    )
    parser.add_argument(
        "--update-history",
        action="store_true",
        help="append this run's tracked metrics to the history file",
    )
    args = parser.parse_args()

    ref = load_json(args.reference)
    history = load_history(args.history)
    failures = []
    new_records = []
    checked = 0

    for bench, spec in ref.get("benches", {}).items():
        result_path = args.results_dir / f"BENCH_{bench}.json"
        if not result_path.is_file():
            print(f"check_perf: {result_path.name} not present, skipping")
            continue
        metrics = load_json(result_path).get("metrics", {})
        if not metrics:
            print(f"check_perf: {result_path.name} has no metrics, skipping")
            continue
        checked += 1
        tier = str(int(metrics.get(spec.get("tier_metric", ""), 0)))
        print(f"check_perf: {bench} (tier {tier})")
        check_ratio_floors(spec, metrics, tier, failures)
        check_throughput_floors(spec, metrics, failures)
        check_trajectory(
            bench, spec, metrics, tier, history, new_records, failures
        )

    if args.update_history and new_records:
        with open(args.history, "a") as fh:
            for rec in new_records:
                fh.write(json.dumps(rec, sort_keys=True) + "\n")
        print(
            f"check_perf: appended {len(new_records)} record(s) to "
            f"{args.history.name}"
        )

    if failures:
        print(f"check_perf: {len(failures)} floor violation(s):")
        for f in failures:
            print(f"  FAIL: {f}")
        return 1
    if checked == 0:
        print("check_perf: no guarded bench ran, nothing to do")
    else:
        print("check_perf: all floors cleared")
    return 0


if __name__ == "__main__":
    sys.exit(main())
