#!/usr/bin/env python3
"""ctest registration drift guard.

The build registers tests by globbing ``tests/test_*.cpp``, so a new
test file that never shows up in ``ctest -N`` (stale configure, typo'd
name, glob miss) silently runs zero tests while CI stays green.  This
script closes that hole: every ``tests/test_*.cpp`` stem must appear as
a ctest test, and every ctest test must map back to a source file.

Rules, mirroring CMakeLists.txt:

1. Each ``tests/test_<x>.cpp`` registers a ctest entry ``test_<x>``.
2. A file containing a ``TEST(Slow...`` suite additionally registers
   ``test_<x>_slow`` (the slow-labeled full run); a file without one
   must NOT have a ``_slow`` twin.
3. No ctest entry may exist without a backing source file.

Usage:
    scripts/check_tests.py [build-dir]    (default: build)

Exit status: 0 when registration matches the sources, 1 on any drift,
2 on usage/configure errors.
"""

import re
import subprocess
import sys
from pathlib import Path

CTEST_LINE_RE = re.compile(r"^\s*Test\s+#\d+:\s+(\S+)")
SLOW_SUITE_RE = re.compile(r"^\s*TEST(?:_F)?\(\s*Slow", re.MULTILINE)


def ctest_names(build_dir: Path):
    try:
        out = subprocess.run(
            ["ctest", "-N"], cwd=build_dir, check=True,
            capture_output=True, text=True).stdout
    except (OSError, subprocess.CalledProcessError) as exc:
        print(f"error: 'ctest -N' failed in {build_dir}: {exc}",
              file=sys.stderr)
        return None
    return {m.group(1) for m in map(CTEST_LINE_RE.match,
                                    out.splitlines()) if m}


def main() -> int:
    root = Path(__file__).resolve().parent.parent
    build_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else \
        root / "build"
    if not (build_dir / "CTestTestfile.cmake").is_file():
        print(f"error: {build_dir} is not a configured build "
              f"directory (run cmake first)", file=sys.stderr)
        return 2

    sources = sorted((root / "tests").glob("test_*.cpp"))
    if not sources:
        print("error: no tests/test_*.cpp found", file=sys.stderr)
        return 2
    registered = ctest_names(build_dir)
    if registered is None:
        return 2

    expected = set()
    for src in sources:
        stem = src.stem
        expected.add(stem)
        if SLOW_SUITE_RE.search(src.read_text(encoding="utf-8")):
            expected.add(stem + "_slow")

    failures = 0
    for name in sorted(expected - registered):
        print(f"DRIFT: {name} expected from tests/ but not "
              f"registered in ctest (stale configure or glob miss)")
        failures += 1
    for name in sorted(registered - expected):
        print(f"DRIFT: ctest registers {name} with no backing "
              f"tests/{re.sub(r'_slow$', '', name)}.cpp")
        failures += 1

    print(f"checked {len(sources)} test sources against "
          f"{len(registered)} ctest entries, {failures} drifting")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
