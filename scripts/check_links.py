#!/usr/bin/env python3
"""Markdown link/section-reference checker.

Guards against the dead-reference class of bug PR 1 fixed by hand
(source comments and docs pointing at sections that do not exist).
Checks, over docs/*.md plus the top-level README.md and ROADMAP.md:

1. Inline links ``[text](target)``: a relative target must resolve to
   an existing file or directory; a ``#anchor`` suffix (or intra-doc
   ``#anchor`` link) must match a heading in the target document under
   GitHub's slug rules.  http(s)/mailto links are not fetched (CI has
   no business depending on the network) - only recorded.
2. Bare section references of the form ``DESIGN.md Section 7``,
   ``docs/ARCHITECTURE.md §2b`` etc.: the referenced document must
   contain a correspondingly numbered section heading
   (``## Section 7 ...`` or ``## 2b. ...``).

Usage:
    scripts/check_links.py [repo-root]

Exit status: 0 when everything resolves, 1 on any dead link/reference,
2 on usage errors.
"""

import re
import sys
from pathlib import Path

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
# "DESIGN.md Section 7", "docs/ARCHITECTURE.md §2b", "DESIGN.md §4",
# and the backtick-quoted link-text form "[`docs/DESIGN.md` §9]".
SECTION_RE = re.compile(
    r"([\w./-]+\.md)`?\s+(?:Section|§)\s*([0-9]+[a-z]?)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*)$")
# "## Section 7 — ..." and "## 2b. ..." both yield a section id.
SECTION_HEADING_RE = re.compile(
    r"^#{1,6}\s+(?:Section\s+)?([0-9]+[a-z]?)[.\s—-]")


def github_slug(heading: str) -> str:
    """GitHub's anchor slug: lowercase, drop punctuation, dash spaces.

    Backticks/asterisks/tildes are markdown formatting (absent from
    the rendered heading, hence from the anchor); underscores are
    literal text and survive - '## run_benches.sh' anchors as
    #run_benchessh.
    """
    slug = heading.strip().lower()
    slug = re.sub(r"[`*~]", "", slug)
    slug = re.sub(r"[^\w\s-]", "", slug, flags=re.UNICODE)
    return re.sub(r"[\s]+", "-", slug.strip())


def doc_headings(path: Path):
    slugs, sections = set(), set()
    seen = {}
    for line in path.read_text(encoding="utf-8").splitlines():
        m = HEADING_RE.match(line)
        if not m:
            continue
        slug = github_slug(m.group(2))
        # Repeated headings get -1, -2 ... suffixes on GitHub.
        if slug in seen:
            seen[slug] += 1
            slugs.add(f"{slug}-{seen[slug]}")
        else:
            seen[slug] = 0
            slugs.add(slug)
        s = SECTION_HEADING_RE.match(line)
        if s:
            sections.add(s.group(1))
    return slugs, sections


def main() -> int:
    root = Path(sys.argv[1]) if len(sys.argv) > 1 else \
        Path(__file__).resolve().parent.parent
    if not root.is_dir():
        print(f"error: {root} is not a directory", file=sys.stderr)
        return 2

    docs = sorted((root / "docs").glob("*.md"))
    for name in ("README.md", "ROADMAP.md"):
        if (root / name).is_file():
            docs.append(root / name)
    if not docs:
        print("error: no markdown docs found", file=sys.stderr)
        return 2

    cache = {}

    def headings_of(path: Path):
        if path not in cache:
            cache[path] = doc_headings(path)
        return cache[path]

    failures = 0
    checked_links = checked_sections = external = 0
    for doc in docs:
        text = doc.read_text(encoding="utf-8")
        rel = doc.relative_to(root)
        for lineno, line in enumerate(text.splitlines(), 1):
            for target in LINK_RE.findall(line):
                if re.match(r"^[a-z][a-z0-9+.-]*:", target):
                    external += 1  # http(s)/mailto: not fetched
                    continue
                checked_links += 1
                raw, _, anchor = target.partition("#")
                dest = doc if not raw else \
                    (doc.parent / raw).resolve()
                if not dest.exists():
                    print(f"DEAD {rel}:{lineno}: ({target}) - "
                          f"no such file {raw}")
                    failures += 1
                    continue
                if anchor and dest.suffix == ".md":
                    slugs, _ = headings_of(dest)
                    if anchor not in slugs:
                        print(f"DEAD {rel}:{lineno}: ({target}) - "
                              f"no heading #{anchor}")
                        failures += 1
            for name, section in SECTION_RE.findall(line):
                base = Path(name).name
                # Resolve "DESIGN.md" / "docs/DESIGN.md" relative to
                # the doc, its directory, or the repo's docs/.
                candidates = [doc.parent / name, root / name,
                              root / "docs" / base]
                dest = next((c for c in candidates if c.is_file()),
                            None)
                if dest is None:
                    print(f"DEAD {rel}:{lineno}: section reference "
                          f"'{name} §{section}' - no such document")
                    failures += 1
                    continue
                checked_sections += 1
                _, sections = headings_of(dest.resolve())
                if section not in sections:
                    print(f"DEAD {rel}:{lineno}: '{base} §{section}' "
                          f"- document has sections "
                          f"{sorted(sections)}")
                    failures += 1

    print(f"checked {len(docs)} docs: {checked_links} local links, "
          f"{checked_sections} section references "
          f"({external} external links not fetched), "
          f"{failures} dead")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
