#!/usr/bin/env python3
"""Paper-metric regression guard.

Compares the ``metrics`` object of every ``BENCH_<name>.json`` in a
results directory against the committed reference values in
``scripts/reference_metrics.json``.  The bench metrics are
deterministic given the experiment scale (results are bit-identical at
any CATSIM_JOBS), so the default tolerance only absorbs cross-platform
libm noise; a real physics regression moves metrics by orders of
magnitude more.

Usage:
    scripts/check_metrics.py RESULTS_DIR [--reference FILE]

Reference file layout (all tolerances optional):
    {
      "scale": 0.05,
      "default_rel_tol": 1e-6,
      "default_abs_tol": 1e-9,
      "tolerances": {"metric_name": {"rel": 0.01, "abs": 1e-6}},
      "benches": {"bench_fig08_cmrpo": {"metric": value, ...}, ...}
    }

Exit status: 0 when every overlapping metric matches (or nothing
overlaps), 1 on any mismatch, 2 on usage/IO errors.
"""

import argparse
import json
import math
import sys
from pathlib import Path


def load_json(path: Path):
    try:
        with open(path) as fh:
            return json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot read {path}: {exc}", file=sys.stderr)
        sys.exit(2)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("results_dir", type=Path)
    parser.add_argument(
        "--reference",
        type=Path,
        default=Path(__file__).parent / "reference_metrics.json",
    )
    args = parser.parse_args()

    ref = load_json(args.reference)
    ref_scale = ref.get("scale")
    default_rel = ref.get("default_rel_tol", 1e-6)
    default_abs = ref.get("default_abs_tol", 1e-9)
    per_metric = ref.get("tolerances", {})
    ref_benches = ref.get("benches", {})

    bench_files = sorted(args.results_dir.glob("BENCH_*.json"))
    if not bench_files:
        print(f"error: no BENCH_*.json under {args.results_dir}",
              file=sys.stderr)
        return 2

    checked = failures = skipped = 0
    for path in bench_files:
        data = load_json(path)
        name = data.get("bench", path.stem.replace("BENCH_", ""))
        if ref_scale is not None and data.get("scale") != ref_scale:
            print(f"SKIP {name}: scale {data.get('scale')} != "
                  f"reference scale {ref_scale}")
            skipped += 1
            continue
        expected = ref_benches.get(name)
        if expected is None:
            print(f"SKIP {name}: no reference entry")
            skipped += 1
            continue
        got = data.get("metrics", {})
        bench_fail = 0
        for metric, want in sorted(expected.items()):
            if metric not in got:
                print(f"FAIL {name}.{metric}: missing from results")
                bench_fail += 1
                continue
            have = got[metric]
            tol = per_metric.get(metric, {})
            rel = tol.get("rel", default_rel)
            abs_tol = tol.get("abs", default_abs)
            if not math.isclose(have, want, rel_tol=rel,
                                abs_tol=abs_tol):
                print(f"FAIL {name}.{metric}: got {have!r}, "
                      f"want {want!r} (rel_tol={rel}, "
                      f"abs_tol={abs_tol})")
                bench_fail += 1
        extra = sorted(set(got) - set(expected))
        if extra:
            # New metrics are fine (a later PR refreshes the
            # reference); just make them visible.
            print(f"note {name}: unreferenced metrics {extra}")
        checked += 1
        failures += bench_fail
        if not bench_fail:
            print(f"PASS {name} ({len(expected)} metrics)")

    print(f"\nchecked {checked} bench(es), {skipped} skipped, "
          f"{failures} failing metric(s)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
