#!/usr/bin/env bash
# Build the Release tree and run every bench binary, emitting one
# BENCH_<name>.json per bench so results can accumulate across PRs.
#
# Usage:
#   scripts/run_benches.sh [output-dir]
#
# Environment:
#   CATSIM_SCALE   experiment scale passed to the benches (default 0.05
#                  here to keep a full sweep under a few minutes; the
#                  benches themselves default to 0.2)
#   CATSIM_JOBS    sweep worker count passed to the benches (default
#                  nproc); recorded in each BENCH_<name>.json so the
#                  parallel speedup shows up in the cross-PR trajectory
#   CATSIM_BASELINE_CACHE  optional dir for baseline stream reuse
#                  across runs (not set by default: trajectory numbers
#                  should include the baseline cost unless asked)
#   CATSIM_CHECKPOINT  optional dir for the crash-safe run journal;
#                  a killed invocation re-run with the same dir resumes
#                  finished sweep cells / Monte-Carlo batches and
#                  prints byte-identical @@METRIC lines (EXPERIMENTS.md
#                  Section 3b)
#   BENCH_FILTER   only run benches whose name matches this grep regex
#   CATSIM_CHECK_METRICS  set to 0 to skip the reference-metric
#                  regression check (scripts/check_metrics.py); the
#                  check auto-skips benches whose scale differs from
#                  the committed reference scale
#   CATSIM_CHECK_PERF  set to 0 to skip the hot-path throughput gate
#                  (scripts/check_perf.py over the micro-bench's and
#                  fleet bench's @@METRIC throughputs; auto-skips
#                  benches that were filtered out)
#   CATSIM_PERF_HISTORY  set to 1 to append this run's tracked
#                  throughput metrics to scripts/perf_history.jsonl
#                  (the cross-PR trajectory file; commit the appended
#                  lines with the PR). Off by default so CI reruns do
#                  not fork the history.
#   CATSIM_SHARDS  fleet shard count for bench_fleet_scale's
#                  fleet_result_* metrics (results are shard-count
#                  invariant; CI diffs 1 vs 4)
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${REPO_ROOT}/build"
OUT_DIR="${1:-${REPO_ROOT}/bench-results}"
SCALE="${CATSIM_SCALE:-0.05}"
JOBS="${CATSIM_JOBS:-$(nproc)}"
FILTER="${BENCH_FILTER:-.}"

cmake -B "${BUILD_DIR}" -S "${REPO_ROOT}" -DCMAKE_BUILD_TYPE=Release
cmake --build "${BUILD_DIR}" -j"$(nproc)"

mkdir -p "${OUT_DIR}"

# Millisecond wall clock: bash 5 EPOCHREALTIME (microseconds) when
# available, second-resolution date otherwise (e.g. macOS bash 3.2).
now_ms() {
    if [ -n "${EPOCHREALTIME:-}" ]; then
        local t="${EPOCHREALTIME/./}"
        echo "$((t / 1000))"
    else
        echo "$(($(date +%s) * 1000))"
    fi
}

json_escape() {
    # Minimal escaper for strings we embed in JSON.
    sed -e 's/\\/\\\\/g' -e 's/"/\\"/g' | tr '\n' ' '
}

status=0
for bench in "${BUILD_DIR}"/bench/bench_*; do
    [ -x "${bench}" ] || continue
    name="$(basename "${bench}")"
    echo "${name}" | grep -qE "${FILTER}" || continue

    log="${OUT_DIR}/${name}.log"
    echo "==> ${name} (scale=${SCALE}, jobs=${JOBS})"
    start="$(now_ms)"
    if CATSIM_SCALE="${SCALE}" CATSIM_JOBS="${JOBS}" \
        CATSIM_SHARDS="${CATSIM_SHARDS:-}" \
        CATSIM_CHECKPOINT="${CATSIM_CHECKPOINT:-}" "${bench}" \
        > "${log}" 2>&1; then
        exit_code=0
    else
        exit_code=$?
        status=1
    fi
    end="$(now_ms)"
    elapsed="$((end - start))"

    first_line="$(head -n1 "${log}" | json_escape)"
    # Collect every "@@METRIC <name> <value>" line the bench printed
    # into a JSON object, so per-figure result values (mean CMRPO/ETO
    # per scheme) are tracked across PRs alongside wall time.
    metrics="$(awk '/^@@METRIC /{
        if (n++) printf ",\n";
        printf "    \"%s\": %s", $2, $3
    } END { if (n) printf "\n" }' "${log}")"
    cat > "${OUT_DIR}/BENCH_${name}.json" <<EOF
{
  "bench": "${name}",
  "scale": ${SCALE},
  "jobs": ${JOBS},
  "wall_ms": ${elapsed},
  "exit_code": ${exit_code},
  "log": "${name}.log",
  "title": "${first_line}",
  "metrics": {
${metrics}  }
}
EOF
    echo "    ${elapsed} ms, exit ${exit_code}"
done

# Regression-check the recorded metrics against the committed
# reference values (deterministic given the scale; see
# scripts/reference_metrics.json for tolerances).
REFERENCE="${REPO_ROOT}/scripts/reference_metrics.json"
if [ "${CATSIM_CHECK_METRICS:-1}" != "0" ] && [ -f "${REFERENCE}" ] \
    && command -v python3 > /dev/null; then
    echo "==> checking metrics against $(basename "${REFERENCE}")"
    if ! python3 "${REPO_ROOT}/scripts/check_metrics.py" \
        "${OUT_DIR}" --reference "${REFERENCE}"; then
        echo "::error::bench metrics regressed against reference"
        status=1
    fi
fi

# Gate the hot-path throughput (bundle + fleet speedup floors per
# hardware tier, loose absolute sanity floors, and the cross-PR
# trajectory guard; see scripts/reference_perf.json and
# scripts/perf_history.jsonl).
PERF_REFERENCE="${REPO_ROOT}/scripts/reference_perf.json"
if [ "${CATSIM_CHECK_PERF:-1}" != "0" ] && [ -f "${PERF_REFERENCE}" ] \
    && command -v python3 > /dev/null; then
    echo "==> checking throughput against $(basename "${PERF_REFERENCE}")"
    PERF_ARGS=()
    if [ "${CATSIM_PERF_HISTORY:-0}" = "1" ]; then
        PERF_ARGS+=(--update-history)
    fi
    if ! python3 "${REPO_ROOT}/scripts/check_perf.py" \
        "${OUT_DIR}" --reference "${PERF_REFERENCE}" \
        ${PERF_ARGS[@]+"${PERF_ARGS[@]}"}; then
        echo "::error::hot-path throughput regressed against reference"
        status=1
    fi
fi

echo "Results in ${OUT_DIR}/"
exit "${status}"
