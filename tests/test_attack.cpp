/**
 * @file
 * Tests for the kernel-attack generator (paper Section VIII-D).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "trace/attack.hpp"

namespace catsim
{

namespace
{

struct Env
{
    Env()
        : geometry(DramGeometry::dualCore2Ch()),
          mapper(geometry, MappingPolicy::RowRankBankChanCol)
    {
    }

    DramGeometry geometry;
    AddressMapper mapper;
};

} // namespace

TEST(Attack, ModeFractions)
{
    EXPECT_DOUBLE_EQ(attackTargetFraction(AttackMode::Heavy), 0.75);
    EXPECT_DOUBLE_EQ(attackTargetFraction(AttackMode::Medium), 0.50);
    EXPECT_DOUBLE_EQ(attackTargetFraction(AttackMode::Light), 0.25);
    EXPECT_STREQ(attackModeName(AttackMode::Heavy), "Heavy");
}

TEST(Attack, FourTargetsPerBankSixtyFourTotal)
{
    // Paper: "4 rows per bank and a total of 64 target rows for 16
    // banks with dual-core/2-channels configuration".
    Env env;
    AttackWorkload atk(findWorkload("comm2"), env.geometry, env.mapper,
                       AttackMode::Medium, 1, 42, 1000);
    std::size_t total = 0;
    for (std::uint32_t b = 0; b < env.geometry.totalBanks(); ++b) {
        EXPECT_EQ(atk.targets(b).size(), 4u);
        total += atk.targets(b).size();
    }
    EXPECT_EQ(total, 64u);
}

TEST(Attack, TargetsAreDistinctRows)
{
    Env env;
    AttackWorkload atk(findWorkload("comm2"), env.geometry, env.mapper,
                       AttackMode::Heavy, 3, 42, 1000);
    for (std::uint32_t b = 0; b < env.geometry.totalBanks(); ++b) {
        std::set<RowAddr> rows(atk.targets(b).begin(),
                               atk.targets(b).end());
        EXPECT_EQ(rows.size(), 4u);
    }
}

TEST(Attack, GaussianCollisionsAreRedrawnDistinct)
{
    // Regression: Gaussian placement used to sort-and-bump duplicates,
    // which could silently shrink the effective targets-per-bank.  A
    // tiny bank with many targets makes collisions near-certain
    // (sigma = rows/64 = 1, 16 targets in 64 rows), so every kernel
    // must still come back with all-distinct target sets.
    DramGeometry tiny;
    tiny.channels = 1;
    tiny.ranksPerChannel = 1;
    tiny.banksPerRank = 2;
    tiny.rowsPerBank = 64;
    const std::uint32_t perBank = 16;
    for (std::uint64_t kernel = 1; kernel <= 12; ++kernel) {
        std::vector<std::vector<RowAddr>> targets(tiny.totalBanks());
        for (auto &t : targets)
            t.resize(perBank);
        GaussianKernel().pickTargets(targets, tiny, kernel);
        for (std::uint32_t b = 0; b < tiny.totalBanks(); ++b) {
            std::set<RowAddr> rows(targets[b].begin(),
                                   targets[b].end());
            EXPECT_EQ(rows.size(), perBank)
                << "kernel " << kernel << " bank " << b;
            for (RowAddr r : rows)
                EXPECT_LT(r, tiny.rowsPerBank);
        }
    }
}

TEST(Attack, GaussianKernelMatchesLegacyPlacementWhenNoCollision)
{
    // The strategy extraction must not move the paper kernels: at the
    // shipped geometries no kernel collides, so targets are exactly
    // the historical draws (center via nextBounded, offsets via
    // nextGaussian, sorted).
    Env env;
    std::vector<std::vector<RowAddr>> targets(
        env.geometry.totalBanks());
    for (auto &t : targets)
        t.resize(4);
    GaussianKernel().pickTargets(targets, env.geometry, 1);

    Xoshiro256StarStar krng(1 * 0x9E3779B9ULL + 7);
    const double sigma = env.geometry.rowsPerBank / 64.0;
    for (std::uint32_t b = 0; b < env.geometry.totalBanks(); ++b) {
        const std::uint64_t center =
            krng.nextBounded(env.geometry.rowsPerBank);
        std::vector<RowAddr> expect(4);
        for (auto &row : expect) {
            const double offset = krng.nextGaussian() * sigma;
            std::int64_t r = static_cast<std::int64_t>(center)
                             + static_cast<std::int64_t>(offset);
            const auto n =
                static_cast<std::int64_t>(env.geometry.rowsPerBank);
            r = ((r % n) + n) % n;
            row = static_cast<RowAddr>(r);
        }
        std::sort(expect.begin(), expect.end());
        EXPECT_EQ(targets[b], expect) << "bank " << b;
    }
}

TEST(Attack, MultiBankKernelSynchronizesTargetsAcrossBanks)
{
    Env env;
    AttackWorkload atk(findWorkload("comm2"), env.geometry, env.mapper,
                       AttackMode::Heavy, 5, 42, 1000, 4,
                       AttackKernelKind::MultiBank);
    const std::vector<RowAddr> &first = atk.targets(0);
    std::set<RowAddr> distinct(first.begin(), first.end());
    EXPECT_EQ(distinct.size(), 4u);
    for (std::uint32_t b = 1; b < env.geometry.totalBanks(); ++b)
        EXPECT_EQ(atk.targets(b), first) << "bank " << b;
}

TEST(Attack, KernelKindParse)
{
    EXPECT_EQ(parseAttackKernelKind("gaussian"),
              AttackKernelKind::Gaussian);
    EXPECT_EQ(parseAttackKernelKind("MultiBank"),
              AttackKernelKind::MultiBank);
}

TEST(Attack, DifferentKernelsPickDifferentTargets)
{
    Env env;
    AttackWorkload k1(findWorkload("comm2"), env.geometry, env.mapper,
                      AttackMode::Heavy, 1, 42, 100);
    AttackWorkload k2(findWorkload("comm2"), env.geometry, env.mapper,
                      AttackMode::Heavy, 2, 42, 100);
    EXPECT_NE(k1.targets(0), k2.targets(0));
}

class AttackMixTest : public ::testing::TestWithParam<AttackMode>
{
};

TEST_P(AttackMixTest, TargetShareMatchesMode)
{
    Env env;
    const AttackMode mode = GetParam();
    AttackWorkload atk(findWorkload("comm2"), env.geometry, env.mapper,
                       mode, 5, 7, 100000);
    // Collect target sets per bank for classification.
    std::vector<std::set<RowAddr>> targetSets(env.geometry.totalBanks());
    for (std::uint32_t b = 0; b < env.geometry.totalBanks(); ++b)
        targetSets[b] = {atk.targets(b).begin(), atk.targets(b).end()};

    TraceRecord r;
    Count onTarget = 0, total = 0;
    while (atk.next(r)) {
        const MappedAddr m = env.mapper.map(r.addr);
        const auto flat = m.bankId().flat(env.geometry);
        onTarget += targetSets[flat].count(m.row) != 0;
        ++total;
    }
    const double share =
        static_cast<double>(onTarget) / static_cast<double>(total);
    EXPECT_NEAR(share, attackTargetFraction(mode), 0.02);
}

INSTANTIATE_TEST_SUITE_P(Modes, AttackMixTest,
                         ::testing::Values(AttackMode::Heavy,
                                           AttackMode::Medium,
                                           AttackMode::Light));

TEST(Attack, DeterministicAndRewindable)
{
    Env env;
    AttackWorkload a(findWorkload("comm2"), env.geometry, env.mapper,
                     AttackMode::Medium, 1, 42, 5000);
    std::vector<Addr> first;
    TraceRecord r;
    while (a.next(r))
        first.push_back(r.addr);
    EXPECT_EQ(first.size(), 5000u);
    a.rewind();
    std::size_t i = 0;
    while (a.next(r))
        ASSERT_EQ(r.addr, first[i++]);
}

TEST(Attack, TargetRowsGetHammered)
{
    Env env;
    AttackWorkload atk(findWorkload("comm2"), env.geometry, env.mapper,
                       AttackMode::Heavy, 9, 11, 200000);
    std::map<RowAddr, Count> counts;
    TraceRecord r;
    while (atk.next(r)) {
        const MappedAddr m = env.mapper.map(r.addr);
        if (m.bankId().flat(env.geometry) == 0)
            ++counts[m.row];
    }
    // Each of bank 0's four targets should be far hotter than the
    // average benign row.
    for (const RowAddr t : atk.targets(0))
        EXPECT_GT(counts[t], 500u) << "target row " << t;
}

} // namespace catsim
