/**
 * @file
 * Tests for the address mapping policies (paper Table I and
 * Section VIII-B).
 */

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "controller/address_mapping.hpp"

namespace catsim
{

class MappingRoundTrip : public ::testing::TestWithParam<MappingPolicy>
{
};

TEST_P(MappingRoundTrip, MapComposeIdentity)
{
    const DramGeometry g = DramGeometry::dualCore2Ch();
    AddressMapper mapper(g, GetParam());
    Xoshiro256StarStar rng(1);
    for (int i = 0; i < 100000; ++i) {
        const Addr a = rng.nextBounded(g.totalBytes()) & ~63ULL;
        const MappedAddr m = mapper.map(a);
        EXPECT_EQ(mapper.compose(m), a);
        ASSERT_LT(m.channel, g.channels);
        ASSERT_LT(m.rank, g.ranksPerChannel);
        ASSERT_LT(m.bank, g.banksPerRank);
        ASSERT_LT(m.row, g.rowsPerBank);
        ASSERT_LT(m.col, g.colsPerRow);
    }
}

TEST_P(MappingRoundTrip, ComposeMapIdentity)
{
    const DramGeometry g = DramGeometry::quadCore4Ch();
    AddressMapper mapper(g, GetParam());
    Xoshiro256StarStar rng(2);
    for (int i = 0; i < 100000; ++i) {
        MappedAddr m;
        m.channel = static_cast<std::uint32_t>(
            rng.nextBounded(g.channels));
        m.rank = static_cast<std::uint32_t>(
            rng.nextBounded(g.ranksPerChannel));
        m.bank = static_cast<std::uint32_t>(
            rng.nextBounded(g.banksPerRank));
        m.row =
            static_cast<RowAddr>(rng.nextBounded(g.rowsPerBank));
        m.col = static_cast<std::uint32_t>(
            rng.nextBounded(g.colsPerRow));
        const MappedAddr back = mapper.map(mapper.compose(m));
        ASSERT_EQ(back.channel, m.channel);
        ASSERT_EQ(back.rank, m.rank);
        ASSERT_EQ(back.bank, m.bank);
        ASSERT_EQ(back.row, m.row);
        ASSERT_EQ(back.col, m.col);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Policies, MappingRoundTrip,
    ::testing::Values(MappingPolicy::RowRankBankChanCol,
                      MappingPolicy::RowRankBankColChan));

TEST(Mapping, PaperPolicyPutsRowInMsbs)
{
    const DramGeometry g = DramGeometry::dualCore2Ch();
    AddressMapper mapper(g, MappingPolicy::RowRankBankChanCol);
    // Consecutive cache lines stay in the same row.
    const MappedAddr a = mapper.map(0x100000);
    const MappedAddr b = mapper.map(0x100040);
    EXPECT_EQ(a.row, b.row);
}

TEST(Mapping, InterleavedPolicySpreadsLinesOverChannels)
{
    const DramGeometry g = DramGeometry::quadCore4Ch();
    AddressMapper mapper(g, MappingPolicy::RowRankBankColChan);
    const MappedAddr a = mapper.map(0x0);
    const MappedAddr b = mapper.map(0x40);
    EXPECT_NE(a.channel, b.channel)
        << "adjacent lines must hit different channels";
}

TEST(Mapping, GeometryPresets)
{
    EXPECT_EQ(DramGeometry::dualCore2Ch().totalBanks(), 16u);
    EXPECT_EQ(DramGeometry::dualCore2Ch().rowsPerBank, 65536u);
    EXPECT_EQ(DramGeometry::quadCore2Ch().rowsPerBank, 131072u);
    EXPECT_EQ(DramGeometry::quadCore4Ch().totalBanks(), 64u);
    // Table I: 16 GB total for the dual-core system.
    EXPECT_EQ(DramGeometry::dualCore2Ch().totalBytes(),
              16ULL << 30);
}

TEST(Mapping, BankIdFlatBijective)
{
    const DramGeometry g = DramGeometry::quadCore4Ch();
    std::vector<bool> seen(g.totalBanks(), false);
    for (std::uint32_t ch = 0; ch < g.channels; ++ch) {
        for (std::uint32_t rk = 0; rk < g.ranksPerChannel; ++rk) {
            for (std::uint32_t bk = 0; bk < g.banksPerRank; ++bk) {
                const auto f = BankId{ch, rk, bk}.flat(g);
                ASSERT_LT(f, g.totalBanks());
                ASSERT_FALSE(seen[f]);
                seen[f] = true;
            }
        }
    }
}

TEST(Mapping, PolicyNames)
{
    EXPECT_EQ(AddressMapper::policyName(
                  MappingPolicy::RowRankBankChanCol),
              "rw:rk:bk:ch:col:offset");
    EXPECT_EQ(AddressMapper::policyName(
                  MappingPolicy::RowRankBankColChan),
              "rw:rk:bk:col:ch:offset");
}

} // namespace catsim
