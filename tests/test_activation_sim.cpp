/**
 * @file
 * Tests for the activation-replay simulator.
 */

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/drcat.hpp"
#include "core/sca.hpp"
#include "sim/activation_sim.hpp"
#include "trace/workloads.hpp"

namespace catsim
{

namespace
{

TimingResult
recordedBaseline(std::uint64_t records)
{
    TimingConfig sys;
    sys.geometry = DramGeometry::dualCore2Ch();
    sys.numCores = 2;
    sys.scheme.kind = SchemeKind::None;
    sys.recordActivations = true;
    sys.epochScale = 0.002;
    static AddressMapper mapper(sys.geometry, sys.mapping);
    const WorkloadProfile profile = findWorkload("comm1");
    const DramGeometry geometry = sys.geometry;
    return runTiming(sys, [profile, geometry, records](CoreId core) {
        return std::unique_ptr<TraceStream>(
            std::make_unique<SyntheticWorkload>(profile, geometry,
                                                mapper, core + 1,
                                                records));
    });
}

} // namespace

TEST(ActivationSim, ReplayMatchesInlineScheme)
{
    // Replaying the recorded baseline stream through SCA must produce
    // exactly the same refresh behaviour as running SCA inline in the
    // timing simulation (schemes are pure functions of the stream).
    const auto base = recordedBaseline(120000);

    SchemeConfig cfg;
    cfg.kind = SchemeKind::Sca;
    cfg.numCounters = 64;
    cfg.threshold = 512;
    const auto replay = replayActivations(
        base.bankStreams, cfg, DramGeometry::dualCore2Ch().rowsPerBank);

    TimingConfig sys;
    sys.geometry = DramGeometry::dualCore2Ch();
    sys.numCores = 2;
    sys.scheme = cfg;
    sys.epochScale = 0.002;
    AddressMapper mapper(sys.geometry, sys.mapping);
    const WorkloadProfile profile = findWorkload("comm1");
    const DramGeometry geometry = sys.geometry;
    const auto inline_ =
        runTiming(sys, [&](CoreId core) -> std::unique_ptr<TraceStream> {
            return std::make_unique<SyntheticWorkload>(
                profile, geometry, mapper, core + 1, 120000);
        });

    EXPECT_EQ(replay.stats.activations, inline_.scheme.activations);
    // Timing feedback from refreshes slightly shifts epoch boundaries,
    // so allow a small relative slack on refresh totals.
    const double a =
        static_cast<double>(replay.stats.victimRowsRefreshed);
    const double b =
        static_cast<double>(inline_.scheme.victimRowsRefreshed);
    EXPECT_NEAR(a, b, 0.05 * std::max(a, b) + 1000.0);
}

TEST(ActivationSim, EpochMarkersDriveResets)
{
    std::vector<std::vector<RowAddr>> streams(1);
    // 600 activations of row 0, an epoch marker, then 600 more: with
    // T=1024 no refresh may trigger because the epoch resets counts.
    for (int i = 0; i < 600; ++i)
        streams[0].push_back(0);
    streams[0].push_back(kEpochMarker);
    for (int i = 0; i < 600; ++i)
        streams[0].push_back(0);

    SchemeConfig cfg;
    cfg.kind = SchemeKind::Sca;
    cfg.numCounters = 64;
    cfg.threshold = 1024;
    const auto res = replayActivations(streams, cfg, 65536);
    EXPECT_EQ(res.stats.refreshEvents, 0u);
    EXPECT_EQ(res.epochs, 1u);

    // Without the marker the same 1200 accesses must trigger.
    std::vector<std::vector<RowAddr>> noMarker(1);
    for (int i = 0; i < 1200; ++i)
        noMarker[0].push_back(0);
    const auto res2 = replayActivations(noMarker, cfg, 65536);
    EXPECT_EQ(res2.stats.refreshEvents, 1u);
}

TEST(ActivationSim, PerBankSchemesAreIndependent)
{
    std::vector<std::vector<RowAddr>> streams(2);
    for (int i = 0; i < 1100; ++i)
        streams[0].push_back(5);
    for (int i = 0; i < 100; ++i)
        streams[1].push_back(5);

    SchemeConfig cfg;
    cfg.kind = SchemeKind::Sca;
    cfg.numCounters = 64;
    cfg.threshold = 1024;
    const auto res = replayActivations(streams, cfg, 65536);
    EXPECT_EQ(res.stats.refreshEvents, 1u)
        << "only the hammered bank may refresh";
    EXPECT_EQ(res.banks, 2u);
}

namespace
{

bool
sameStats(const SchemeStats &a, const SchemeStats &b)
{
    return a.activations == b.activations
           && a.refreshEvents == b.refreshEvents
           && a.victimRowsRefreshed == b.victimRowsRefreshed
           && a.sramAccesses == b.sramAccesses
           && a.prngBits == b.prngBits && a.splits == b.splits
           && a.merges == b.merges && a.epochResets == b.epochResets
           && a.counterDramReads == b.counterDramReads
           && a.counterDramWrites == b.counterDramWrites;
}

std::vector<RowAddr>
mixedRows(std::size_t n, std::uint64_t seed)
{
    std::vector<RowAddr> rows;
    rows.reserve(n);
    Xoshiro256StarStar rng(seed);
    for (std::size_t i = 0; i < n; ++i)
        rows.push_back(rng.nextDouble() < 0.6
            ? static_cast<RowAddr>(rng.nextBounded(8))
            : static_cast<RowAddr>(rng.nextBounded(65536)));
    return rows;
}

} // namespace

TEST(ActivationSim, BatchMatchesPerCallForCatOverride)
{
    // Prcat/Drcat override onActivateBatch; driving the same rows in
    // arbitrary chunk sizes must leave stats identical to per-call.
    const auto rows = mixedRows(120000, 21);
    Drcat perCall(65536, 64, 11, 1024);
    Drcat batched(65536, 64, 11, 1024);
    for (const RowAddr r : rows)
        perCall.onActivate(r);
    std::size_t begin = 0;
    std::size_t chunk = 1;
    while (begin < rows.size()) { // ragged chunks incl. size 0 and 1
        const std::size_t n =
            std::min(chunk % 7001, rows.size() - begin);
        batched.onActivateBatch(rows.data() + begin, n);
        begin += n;
        chunk = chunk * 13 + 7;
    }
    EXPECT_TRUE(sameStats(perCall.stats(), batched.stats()));
    EXPECT_EQ(perCall.tree().maxLeafDepth(),
              batched.tree().maxLeafDepth());
}

TEST(ActivationSim, BatchMatchesPerCallForDefaultImplementation)
{
    // Schemes without an override go through the base-class loop.
    const auto rows = mixedRows(50000, 22);
    Sca perCall(65536, 64, 1024);
    Sca batched(65536, 64, 1024);
    for (const RowAddr r : rows)
        perCall.onActivate(r);
    batched.onActivateBatch(rows.data(), rows.size());
    EXPECT_TRUE(sameStats(perCall.stats(), batched.stats()));
}

TEST(ActivationSim, BatchedReplayMatchesPerActivationReplay)
{
    // The chunked replayActivations must equal a hand-rolled per-row
    // replay over marker-laced streams, including edge layouts
    // (leading/trailing/adjacent markers, empty stream).
    std::vector<std::vector<RowAddr>> streams(4);
    streams[0] = mixedRows(40000, 23);
    for (std::size_t i = 5000; i < streams[0].size(); i += 5000)
        streams[0][i] = kEpochMarker;
    streams[1].push_back(kEpochMarker); // leading + adjacent markers
    streams[1].push_back(kEpochMarker);
    for (int i = 0; i < 3000; ++i)
        streams[1].push_back(7);
    streams[2] = mixedRows(2000, 24);
    streams[2].push_back(kEpochMarker); // trailing marker
    // streams[3] stays empty.

    for (const SchemeKind kind :
         {SchemeKind::Drcat, SchemeKind::Prcat, SchemeKind::Sca}) {
        SchemeConfig cfg;
        cfg.kind = kind;
        cfg.numCounters = 64;
        cfg.maxLevels = 11;
        cfg.threshold = 1024;
        const auto batched = replayActivations(streams, cfg, 65536);

        ReplayResult manual;
        manual.banks = streams.size();
        std::uint32_t bankIdx = 0;
        for (const auto &stream : streams) {
            SchemeConfig bankCfg = cfg;
            bankCfg.seed = cfg.seed * 1000003ULL + bankIdx;
            auto scheme = makeScheme(bankCfg, 65536);
            Count epochs = 0;
            for (const RowAddr row : stream) {
                if (row == kEpochMarker) {
                    scheme->onEpoch();
                    ++epochs;
                    continue;
                }
                scheme->onActivate(row);
            }
            if (bankIdx == 0)
                manual.epochs = epochs;
            const SchemeStats &st = scheme->stats();
            manual.stats.activations += st.activations;
            manual.stats.refreshEvents += st.refreshEvents;
            manual.stats.victimRowsRefreshed += st.victimRowsRefreshed;
            manual.stats.sramAccesses += st.sramAccesses;
            manual.stats.splits += st.splits;
            manual.stats.merges += st.merges;
            manual.stats.epochResets += st.epochResets;
            ++bankIdx;
        }
        EXPECT_TRUE(sameStats(batched.stats, manual.stats))
            << "scheme kind " << static_cast<int>(kind);
        EXPECT_EQ(batched.epochs, manual.epochs);
        EXPECT_EQ(batched.banks, manual.banks);
    }
}

TEST(ActivationSim, DrcatReplayKeepsInvariantStats)
{
    const auto base = recordedBaseline(80000);
    SchemeConfig cfg;
    cfg.kind = SchemeKind::Drcat;
    cfg.numCounters = 64;
    cfg.maxLevels = 11;
    cfg.threshold = 1024;
    const auto res = replayActivations(base.bankStreams, cfg, 65536);
    EXPECT_EQ(res.stats.activations, base.totalActivations);
    EXPECT_GT(res.stats.sramAccesses, 2 * res.stats.activations - 1);
}

} // namespace catsim
