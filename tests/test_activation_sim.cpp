/**
 * @file
 * Tests for the activation-replay simulator.
 */

#include <gtest/gtest.h>

#include "sim/activation_sim.hpp"
#include "trace/workloads.hpp"

namespace catsim
{

namespace
{

TimingResult
recordedBaseline(std::uint64_t records)
{
    SystemConfig sys;
    sys.geometry = DramGeometry::dualCore2Ch();
    sys.numCores = 2;
    sys.scheme.kind = SchemeKind::None;
    sys.recordActivations = true;
    sys.epochScale = 0.002;
    static AddressMapper mapper(sys.geometry, sys.mapping);
    const WorkloadProfile profile = findWorkload("comm1");
    const DramGeometry geometry = sys.geometry;
    return runTiming(sys, [profile, geometry, records](CoreId core) {
        return std::unique_ptr<TraceStream>(
            std::make_unique<SyntheticWorkload>(profile, geometry,
                                                mapper, core + 1,
                                                records));
    });
}

} // namespace

TEST(ActivationSim, ReplayMatchesInlineScheme)
{
    // Replaying the recorded baseline stream through SCA must produce
    // exactly the same refresh behaviour as running SCA inline in the
    // timing simulation (schemes are pure functions of the stream).
    const auto base = recordedBaseline(120000);

    SchemeConfig cfg;
    cfg.kind = SchemeKind::Sca;
    cfg.numCounters = 64;
    cfg.threshold = 512;
    const auto replay = replayActivations(
        base.bankStreams, cfg, DramGeometry::dualCore2Ch().rowsPerBank);

    SystemConfig sys;
    sys.geometry = DramGeometry::dualCore2Ch();
    sys.numCores = 2;
    sys.scheme = cfg;
    sys.epochScale = 0.002;
    AddressMapper mapper(sys.geometry, sys.mapping);
    const WorkloadProfile profile = findWorkload("comm1");
    const DramGeometry geometry = sys.geometry;
    const auto inline_ =
        runTiming(sys, [&](CoreId core) -> std::unique_ptr<TraceStream> {
            return std::make_unique<SyntheticWorkload>(
                profile, geometry, mapper, core + 1, 120000);
        });

    EXPECT_EQ(replay.stats.activations, inline_.scheme.activations);
    // Timing feedback from refreshes slightly shifts epoch boundaries,
    // so allow a small relative slack on refresh totals.
    const double a =
        static_cast<double>(replay.stats.victimRowsRefreshed);
    const double b =
        static_cast<double>(inline_.scheme.victimRowsRefreshed);
    EXPECT_NEAR(a, b, 0.05 * std::max(a, b) + 1000.0);
}

TEST(ActivationSim, EpochMarkersDriveResets)
{
    std::vector<std::vector<RowAddr>> streams(1);
    // 600 activations of row 0, an epoch marker, then 600 more: with
    // T=1024 no refresh may trigger because the epoch resets counts.
    for (int i = 0; i < 600; ++i)
        streams[0].push_back(0);
    streams[0].push_back(kEpochMarker);
    for (int i = 0; i < 600; ++i)
        streams[0].push_back(0);

    SchemeConfig cfg;
    cfg.kind = SchemeKind::Sca;
    cfg.numCounters = 64;
    cfg.threshold = 1024;
    const auto res = replayActivations(streams, cfg, 65536);
    EXPECT_EQ(res.stats.refreshEvents, 0u);
    EXPECT_EQ(res.epochs, 1u);

    // Without the marker the same 1200 accesses must trigger.
    std::vector<std::vector<RowAddr>> noMarker(1);
    for (int i = 0; i < 1200; ++i)
        noMarker[0].push_back(0);
    const auto res2 = replayActivations(noMarker, cfg, 65536);
    EXPECT_EQ(res2.stats.refreshEvents, 1u);
}

TEST(ActivationSim, PerBankSchemesAreIndependent)
{
    std::vector<std::vector<RowAddr>> streams(2);
    for (int i = 0; i < 1100; ++i)
        streams[0].push_back(5);
    for (int i = 0; i < 100; ++i)
        streams[1].push_back(5);

    SchemeConfig cfg;
    cfg.kind = SchemeKind::Sca;
    cfg.numCounters = 64;
    cfg.threshold = 1024;
    const auto res = replayActivations(streams, cfg, 65536);
    EXPECT_EQ(res.stats.refreshEvents, 1u)
        << "only the hammered bank may refresh";
    EXPECT_EQ(res.banks, 2u);
}

TEST(ActivationSim, DrcatReplayKeepsInvariantStats)
{
    const auto base = recordedBaseline(80000);
    SchemeConfig cfg;
    cfg.kind = SchemeKind::Drcat;
    cfg.numCounters = 64;
    cfg.maxLevels = 11;
    cfg.threshold = 1024;
    const auto res = replayActivations(base.bankStreams, cfg, 65536);
    EXPECT_EQ(res.stats.activations, base.totalActivations);
    EXPECT_GT(res.stats.sramAccesses, 2 * res.stats.activations - 1);
}

} // namespace catsim
