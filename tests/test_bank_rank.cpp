/**
 * @file
 * Tests for per-bank and per-rank DRAM timing state machines.
 */

#include <gtest/gtest.h>

#include "dram/bank.hpp"
#include "dram/rank.hpp"

namespace catsim
{

TEST(Bank, ActToActRespectsTrc)
{
    const DramTiming t = DramTiming::ddr3_1600();
    Bank bank(t);
    EXPECT_EQ(bank.earliestActivate(100), 100u);
    bank.access(100, 5, false);
    EXPECT_EQ(bank.earliestActivate(100), 100u + t.tRC);
    EXPECT_EQ(bank.earliestActivate(200), 200u);
}

TEST(Bank, ReadLatency)
{
    const DramTiming t = DramTiming::ddr3_1600();
    Bank bank(t);
    const Cycle done = bank.access(0, 1, false);
    EXPECT_EQ(done, t.tRCD + t.tCAS + t.tBURST);
}

TEST(Bank, WriteExtendsBusyWindow)
{
    const DramTiming t = DramTiming::ddr3_1600();
    Bank bank(t);
    bank.access(0, 1, true);
    // Write recovery pushes the next ACT past tRC.
    const Cycle writeBusy =
        t.tRCD + t.tCAS + t.tBURST + t.tWR + t.tRP;
    EXPECT_EQ(bank.earliestActivate(0), std::max<Cycle>(t.tRC,
                                                        writeBusy));
}

TEST(Bank, VictimRefreshBlocksForTrcPerRow)
{
    const DramTiming t = DramTiming::ddr3_1600();
    Bank bank(t);
    const Cycle freeAt = bank.victimRefresh(1000, 10);
    EXPECT_EQ(freeAt, 1000u + 10u * t.tRC);
    EXPECT_EQ(bank.earliestActivate(1000), freeAt);
    EXPECT_EQ(bank.victimRowsRefreshed(), 10u);
    EXPECT_EQ(bank.victimRefreshEvents(), 1u);
}

TEST(Bank, VictimRefreshWaitsForBusyBank)
{
    const DramTiming t = DramTiming::ddr3_1600();
    Bank bank(t);
    bank.access(100, 1, false);
    const Cycle freeAt = bank.victimRefresh(100, 2);
    EXPECT_EQ(freeAt, 100u + t.tRC + 2u * t.tRC);
}

TEST(Bank, TracksActivations)
{
    const DramTiming t = DramTiming::ddr3_1600();
    Bank bank(t);
    Cycle c = 0;
    for (int i = 0; i < 5; ++i) {
        c = bank.earliestActivate(c);
        bank.access(c, static_cast<RowAddr>(i), false);
    }
    EXPECT_EQ(bank.activations(), 5u);
    EXPECT_EQ(bank.lastRow(), 4u);
}

TEST(Rank, TrrdSpacing)
{
    const DramTiming t = DramTiming::ddr3_1600();
    Rank rank(t);
    rank.recordActivate(100);
    EXPECT_EQ(rank.earliestActivate(100), 100u + t.tRRD);
    EXPECT_EQ(rank.earliestActivate(200), 200u);
}

TEST(Rank, FourActivateWindow)
{
    const DramTiming t = DramTiming::ddr3_1600();
    Rank rank(t);
    // Four back-to-back ACTs at tRRD spacing.
    Cycle c = 0;
    for (int i = 0; i < 4; ++i) {
        c = rank.earliestActivate(c);
        rank.recordActivate(c);
    }
    // The fifth ACT must wait for the first + tFAW.
    const Cycle fifth = rank.earliestActivate(c);
    EXPECT_GE(fifth, 0u + t.tFAW);
}

TEST(Rank, AutoRefreshSchedule)
{
    const DramTiming t = DramTiming::ddr3_1600();
    Rank rank(t);
    EXPECT_EQ(rank.autoRefreshDue(0), 0u);
    EXPECT_EQ(rank.autoRefreshDue(t.tREFI - 1), 0u);
    const Cycle end = rank.autoRefreshDue(t.tREFI);
    EXPECT_EQ(end, t.tREFI + t.tRFC);
    // Next one is a full tREFI later.
    EXPECT_EQ(rank.autoRefreshDue(t.tREFI), 0u);
    EXPECT_EQ(rank.autoRefreshDue(2 * t.tREFI), 2 * t.tREFI + t.tRFC);
    EXPECT_EQ(rank.autoRefreshes(), 2u);
}

TEST(Timing, IntervalCycles)
{
    const DramTiming t = DramTiming::ddr3_1600();
    // 64 ms at 1.25 ns per cycle = 51.2 M cycles.
    EXPECT_EQ(t.refreshIntervalCycles(), 51200000u);
    EXPECT_DOUBLE_EQ(t.cyclesToNs(8), 10.0);
}

} // namespace catsim
