/**
 * @file
 * Tests for the Table II-calibrated hardware cost model.
 */

#include <gtest/gtest.h>

#include "energy/hw_model.hpp"

namespace catsim
{

TEST(HwModel, TableIICalibrationPoints)
{
    // Spot-check the published Table II entries (L=11, T=32K).
    const HwCost d64 =
        HwModel::cost(SchemeKind::Drcat, 64, 11, 32768);
    EXPECT_NEAR(d64.dynPerAccess, 4.30e-4, 1e-6);
    EXPECT_NEAR(d64.staticPerInterval, 1.39e4, 1e2);
    EXPECT_NEAR(d64.areaMm2, 6.12e-2, 1e-4);

    const HwCost p128 =
        HwModel::cost(SchemeKind::Prcat, 128, 11, 32768);
    EXPECT_NEAR(p128.dynPerAccess, 5.50e-4, 1e-6);
    EXPECT_NEAR(p128.staticPerInterval, 2.63e4, 1e2);

    const HwCost s512 = HwModel::cost(SchemeKind::Sca, 512, 11, 32768);
    EXPECT_NEAR(s512.dynPerAccess, 4.25e-4, 1e-6);
    EXPECT_NEAR(s512.areaMm2, 1.72e-1, 1e-3);
}

TEST(HwModel, DrcatCostsMoreThanPrcat)
{
    // Section VII-A: DRCAT adds ~4.2 % area and ~5 % dynamic energy.
    for (std::uint32_t m : {32u, 64u, 128u, 256u, 512u}) {
        const auto d = HwModel::cost(SchemeKind::Drcat, m, 11, 32768);
        const auto p = HwModel::cost(SchemeKind::Prcat, m, 11, 32768);
        EXPECT_GT(d.dynPerAccess, p.dynPerAccess);
        EXPECT_GT(d.areaMm2, p.areaMm2);
        EXPECT_LT(d.areaMm2 / p.areaMm2, 1.10);
    }
}

TEST(HwModel, ScaDynamicRoughlyHalfOfPrcat)
{
    // Section VII-A: "the dynamic energy per access of PRCAT is roughly
    // twice that of SCA for the same number of counters".
    const auto p = HwModel::cost(SchemeKind::Prcat, 64, 11, 32768);
    const auto s = HwModel::cost(SchemeKind::Sca, 64, 11, 32768);
    EXPECT_NEAR(p.dynPerAccess / s.dynPerAccess, 2.0, 0.35);
}

TEST(HwModel, IsoAreaPrcat64Sca128)
{
    // Section VII-A: "PRCAT64 and SCA128 occupy iso-area".
    const auto p = HwModel::cost(SchemeKind::Prcat, 64, 11, 32768);
    const auto s = HwModel::cost(SchemeKind::Sca, 128, 11, 32768);
    EXPECT_NEAR(p.areaMm2 / s.areaMm2, 1.0, 0.05);
}

TEST(HwModel, MonotoneInCounters)
{
    double prevStat = 0, prevArea = 0;
    for (std::uint32_t m = 16; m <= 65536; m *= 2) {
        const auto c = HwModel::cost(SchemeKind::Sca, m, 11, 32768);
        EXPECT_GT(c.staticPerInterval, prevStat);
        EXPECT_GT(c.areaMm2, prevArea);
        prevStat = c.staticPerInterval;
        prevArea = c.areaMm2;
    }
}

TEST(HwModel, DeeperTreesCostMoreDynamicEnergy)
{
    const auto l8 = HwModel::cost(SchemeKind::Drcat, 64, 8, 32768);
    const auto l11 = HwModel::cost(SchemeKind::Drcat, 64, 11, 32768);
    const auto l14 = HwModel::cost(SchemeKind::Drcat, 64, 14, 32768);
    EXPECT_LT(l8.dynPerAccess, l11.dynPerAccess);
    EXPECT_LT(l11.dynPerAccess, l14.dynPerAccess);
}

TEST(HwModel, NarrowerCountersLeakLess)
{
    const auto t32 = HwModel::cost(SchemeKind::Sca, 128, 11, 32768);
    const auto t16 = HwModel::cost(SchemeKind::Sca, 128, 11, 16384);
    EXPECT_LT(t16.staticPerInterval, t32.staticPerInterval);
    EXPECT_NEAR(t16.staticPerInterval / t32.staticPerInterval,
                14.0 / 15.0, 1e-6);
}

TEST(HwModel, RegularRefreshPower)
{
    EXPECT_DOUBLE_EQ(HwModel::regularRefreshPowerMw(65536), 2.5);
    EXPECT_DOUBLE_EQ(HwModel::regularRefreshPowerMw(131072), 5.0);
}

TEST(HwModel, PraHasNoPerBankCounters)
{
    const auto c = HwModel::cost(SchemeKind::Pra, 0, 0, 32768);
    EXPECT_DOUBLE_EQ(c.dynPerAccess, 0.0);
    EXPECT_DOUBLE_EQ(c.staticPerInterval, 0.0);
    EXPECT_GT(c.areaMm2, 0.0);
}

TEST(HwModel, CacheCountsDoubleForTagOverhead)
{
    // A 2K-counter cache costs like a 4K-counter SCA array (Fig 2).
    const auto cc = HwModel::cost(SchemeKind::CounterCache, 2048, 0,
                                  32768);
    const auto sca = HwModel::cost(SchemeKind::Sca, 4096, 0, 32768);
    EXPECT_NEAR(cc.staticPerInterval, sca.staticPerInterval,
                sca.staticPerInterval * 1e-9);
}

TEST(HwModel, CactiLiteAnchors)
{
    EXPECT_NEAR(HwModel::sramLeakageMw(256.0), 1.44e4 / 64e3, 1e-9);
    EXPECT_NEAR(HwModel::sramAccessNj(256.0), 1.11e-4, 1e-9);
    EXPECT_GT(HwModel::sramLeakageMw(1024.0),
              HwModel::sramLeakageMw(256.0));
    EXPECT_GT(HwModel::sramAccessNj(1024.0),
              HwModel::sramAccessNj(256.0));
}

} // namespace catsim
