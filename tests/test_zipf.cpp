/**
 * @file
 * Tests for the Zipf sampler that models DRAM row popularity skew.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "common/zipf.hpp"

namespace catsim
{

TEST(Zipf, SamplesWithinRange)
{
    Xoshiro256StarStar rng(1);
    ZipfSampler z(100, 0.99);
    for (int i = 0; i < 100000; ++i)
        ASSERT_LT(z.sample(rng), 100u);
}

TEST(Zipf, ThetaZeroIsUniform)
{
    Xoshiro256StarStar rng(2);
    ZipfSampler z(10, 0.0);
    const int n = 200000;
    std::vector<int> counts(10, 0);
    for (int i = 0; i < n; ++i)
        ++counts[z.sample(rng)];
    for (int c : counts)
        EXPECT_NEAR(c, n / 10, n / 10 * 0.1);
}

TEST(Zipf, HigherThetaConcentrates)
{
    Xoshiro256StarStar rng(3);
    auto topShare = [&rng](double theta) {
        ZipfSampler z(1000, theta);
        const int n = 100000;
        int top = 0;
        for (int i = 0; i < n; ++i)
            top += z.sample(rng) == 0;
        return static_cast<double>(top) / n;
    };
    const double s05 = topShare(0.5);
    const double s10 = topShare(1.0);
    const double s15 = topShare(1.5);
    EXPECT_LT(s05, s10);
    EXPECT_LT(s10, s15);
}

TEST(Zipf, MatchesAnalyticFrequencies)
{
    // For theta and n small enough, empirical frequencies should match
    // p(k) = (k+1)^-theta / H within a few percent.
    const double theta = 0.8;
    const std::uint64_t nItems = 50;
    double H = 0.0;
    for (std::uint64_t k = 1; k <= nItems; ++k)
        H += std::pow(static_cast<double>(k), -theta);

    Xoshiro256StarStar rng(4);
    ZipfSampler z(nItems, theta);
    const int n = 500000;
    std::vector<int> counts(nItems, 0);
    for (int i = 0; i < n; ++i)
        ++counts[z.sample(rng)];

    for (std::uint64_t k : {0ULL, 1ULL, 4ULL, 9ULL, 24ULL}) {
        const double expect =
            std::pow(static_cast<double>(k + 1), -theta) / H;
        const double got = counts[k] / static_cast<double>(n);
        EXPECT_NEAR(got, expect, expect * 0.08 + 0.001)
            << "rank " << k;
    }
}

TEST(Zipf, Theta1LogCase)
{
    Xoshiro256StarStar rng(5);
    ZipfSampler z(64, 1.0);
    const int n = 100000;
    int top = 0;
    for (int i = 0; i < n; ++i)
        top += z.sample(rng) == 0;
    // H(64) ~ 4.74 => top share ~ 0.21
    EXPECT_NEAR(top / static_cast<double>(n), 0.21, 0.03);
}

TEST(Zipf, SingleItem)
{
    Xoshiro256StarStar rng(6);
    ZipfSampler z(1, 1.2);
    for (int i = 0; i < 100; ++i)
        ASSERT_EQ(z.sample(rng), 0u);
}

/** Property sweep: all samples in range for many (n, theta) combos. */
class ZipfParamTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, double>>
{
};

TEST_P(ZipfParamTest, InRange)
{
    const auto [n, theta] = GetParam();
    Xoshiro256StarStar rng(7);
    ZipfSampler z(n, theta);
    for (int i = 0; i < 20000; ++i)
        ASSERT_LT(z.sample(rng), n);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ZipfParamTest,
    ::testing::Combine(::testing::Values(2ULL, 16ULL, 64ULL, 65536ULL),
                       ::testing::Values(0.0, 0.5, 0.99, 1.0, 1.3)));

} // namespace catsim
