/**
 * @file
 * Unit tests for the Fibonacci LFSR used to model cheap PRA PRNGs.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/lfsr.hpp"

namespace catsim
{

TEST(Lfsr, StateNeverZero)
{
    Lfsr l(8, 0xAB);
    for (int i = 0; i < 1000; ++i) {
        l.shiftBit();
        ASSERT_NE(l.state(), 0u);
    }
}

TEST(Lfsr, ZeroSeedCoerced)
{
    Lfsr l(8, 0);
    EXPECT_NE(l.state(), 0u);
}

/** Maximal-length taps must cycle through all 2^w - 1 nonzero states. */
class LfsrPeriodTest : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(LfsrPeriodTest, MaximalPeriod)
{
    const unsigned width = GetParam();
    Lfsr l(width, 1);
    const std::uint64_t start = l.state();
    std::uint64_t period = 0;
    do {
        l.shiftBit();
        ++period;
        ASSERT_LE(period, l.period());
    } while (l.state() != start);
    EXPECT_EQ(period, l.period());
}

INSTANTIATE_TEST_SUITE_P(Widths, LfsrPeriodTest,
                         ::testing::Values(2u, 3u, 4u, 5u, 6u, 7u, 8u,
                                           9u, 10u, 11u, 12u, 13u, 14u,
                                           15u, 16u));

TEST(Lfsr, NextBitsWidth)
{
    Lfsr l(16, 0x1234);
    for (int i = 0; i < 100; ++i)
        ASSERT_LT(l.nextBits(9), 512u);
}

TEST(Lfsr, DoubleInUnitInterval)
{
    Lfsr l(16, 0xBEEF);
    for (int i = 0; i < 1000; ++i) {
        const double d = l.nextDouble();
        ASSERT_GE(d, 0.0);
        ASSERT_LT(d, 1.0);
    }
}

TEST(Lfsr, SequenceIsPeriodicHenceCorrelated)
{
    // The whole point of modeling the LFSR: outputs repeat with the
    // register period, unlike a true RNG.
    Lfsr a(8, 0x5A);
    std::vector<unsigned> first;
    for (std::uint64_t i = 0; i < a.period(); ++i)
        first.push_back(a.shiftBit());
    for (std::uint64_t i = 0; i < a.period(); ++i)
        ASSERT_EQ(a.shiftBit(), first[i]);
}

TEST(Lfsr, Deterministic)
{
    Lfsr a(16, 0xACE1), b(16, 0xACE1);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.nextBits(9), b.nextBits(9));
}

} // namespace catsim
