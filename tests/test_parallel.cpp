/**
 * @file
 * Tests for the thread pool and parallelFor (common/parallel).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/fault_injection.hpp"
#include "common/parallel.hpp"

namespace catsim
{

namespace
{

/** RAII guard that restores CATSIM_JOBS after a test. */
class JobsEnvGuard
{
  public:
    JobsEnvGuard()
    {
        const char *v = std::getenv("CATSIM_JOBS");
        if (v)
            saved_ = v;
        had_ = v != nullptr;
    }
    ~JobsEnvGuard()
    {
        if (had_)
            ::setenv("CATSIM_JOBS", saved_.c_str(), 1);
        else
            ::unsetenv("CATSIM_JOBS");
    }

  private:
    std::string saved_;
    bool had_ = false;
};

} // namespace

TEST(Parallel, DefaultJobsHonoursEnv)
{
    JobsEnvGuard guard;
    ::setenv("CATSIM_JOBS", "3", 1);
    EXPECT_EQ(defaultJobs(), 3u);
    ::setenv("CATSIM_JOBS", "1", 1);
    EXPECT_EQ(defaultJobs(), 1u);
}

TEST(Parallel, DefaultJobsRejectsGarbage)
{
    JobsEnvGuard guard;
    for (const char *bad : {"0", "-2", "abc", "4x", ""}) {
        ::setenv("CATSIM_JOBS", bad, 1);
        EXPECT_GE(defaultJobs(), 1u) << "input: " << bad;
        EXPECT_NE(defaultJobs(), 0u) << "input: " << bad;
    }
    ::unsetenv("CATSIM_JOBS");
    EXPECT_GE(defaultJobs(), 1u);
}

TEST(Parallel, ThreadPoolRunsEveryJob)
{
    ThreadPool pool(4);
    std::atomic<int> counter{0};
    for (int i = 0; i < 1000; ++i)
        pool.submit([&counter] { counter.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(counter.load(), 1000);
}

TEST(Parallel, ThreadPoolInlineWhenSingleJob)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.jobs(), 1u);
    // Inline execution: the job has run by the time submit returns.
    int value = 0;
    pool.submit([&value] { value = 7; });
    EXPECT_EQ(value, 7);
    pool.wait();
}

TEST(Parallel, ThreadPoolReusableAcrossBatches)
{
    ThreadPool pool(2);
    std::atomic<int> counter{0};
    for (int batch = 0; batch < 3; ++batch) {
        for (int i = 0; i < 50; ++i)
            pool.submit([&counter] { counter.fetch_add(1); });
        pool.wait();
        EXPECT_EQ(counter.load(), (batch + 1) * 50);
    }
}

TEST(Parallel, ThreadPoolPropagatesFirstException)
{
    ThreadPool pool(2);
    for (int i = 0; i < 8; ++i) {
        pool.submit([i] {
            if (i == 3)
                throw std::runtime_error("boom");
        });
    }
    EXPECT_THROW(pool.wait(), std::runtime_error);
    // The error is consumed; the pool keeps working afterwards.
    std::atomic<int> counter{0};
    pool.submit([&counter] { counter.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(counter.load(), 1);
}

TEST(Parallel, ParallelForCoversEachIndexOnce)
{
    const std::size_t n = 337;
    // Distinct vector elements: no synchronization needed per slot.
    std::vector<int> hits(n, 0);
    parallelFor(
        n, [&hits](std::size_t i) { ++hits[i]; }, 5);
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i], 1) << "index " << i;
}

TEST(Parallel, ParallelForSerialRunsInIndexOrder)
{
    std::vector<std::size_t> order;
    parallelFor(
        10, [&order](std::size_t i) { order.push_back(i); }, 1);
    std::vector<std::size_t> expect(10);
    std::iota(expect.begin(), expect.end(), 0u);
    EXPECT_EQ(order, expect);
}

TEST(Parallel, ParallelForZeroAndExcessWorkers)
{
    std::atomic<int> counter{0};
    parallelFor(0, [&counter](std::size_t) { counter.fetch_add(1); }, 4);
    EXPECT_EQ(counter.load(), 0);
    // More workers than items must still hit every item exactly once.
    parallelFor(3, [&counter](std::size_t) { counter.fetch_add(1); }, 16);
    EXPECT_EQ(counter.load(), 3);
}

TEST(Parallel, ParallelForPropagatesException)
{
    EXPECT_THROW(parallelFor(
                     20,
                     [](std::size_t i) {
                         if (i == 11)
                             throw std::runtime_error("cell failed");
                     },
                     4),
                 std::runtime_error);
}

TEST(Parallel, ThreadPoolReportsLowestSubmissionIndex)
{
    // Every job throws; regardless of which worker finishes first, the
    // surfaced error must belong to submission 0.
    ThreadPool pool(4);
    for (int i = 0; i < 8; ++i) {
        pool.submit([i] {
            throw std::runtime_error("err" + std::to_string(i));
        });
    }
    try {
        pool.wait();
        FAIL() << "expected rethrow";
    } catch (const std::runtime_error &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("task 0"), std::string::npos) << what;
        EXPECT_NE(what.find("err0"), std::string::npos) << what;
    }
}

TEST(Parallel, ThreadPoolInlineAlsoWrapsTaskIndex)
{
    ThreadPool pool(1);
    pool.submit([] {});
    pool.submit([] { throw std::runtime_error("inline boom"); });
    try {
        pool.wait();
        FAIL() << "expected rethrow";
    } catch (const std::runtime_error &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("task 1"), std::string::npos) << what;
        EXPECT_NE(what.find("inline boom"), std::string::npos) << what;
    }
}

TEST(Parallel, ParallelForReportsLowestFailingCell)
{
    // All cells throw.  The first indices handed out are 0..jobs-1, so
    // cell 0 always fails and must win the report at any job count.
    for (std::size_t jobs : {std::size_t(1), std::size_t(4)}) {
        try {
            parallelFor(
                16,
                [](std::size_t i) {
                    throw std::runtime_error("cell" + std::to_string(i));
                },
                jobs);
            FAIL() << "expected rethrow at jobs=" << jobs;
        } catch (const std::runtime_error &e) {
            const std::string what = e.what();
            EXPECT_NE(what.find("cell 0:"), std::string::npos)
                << "jobs=" << jobs << ": " << what;
            EXPECT_NE(what.find("cell0"), std::string::npos)
                << "jobs=" << jobs << ": " << what;
        }
    }
}

TEST(Parallel, ThreadPoolStealsFromLoadedWorker)
{
    // Round-robin placement homes submissions 0,4,8,... on worker 0.
    // Making exactly those slow gives worker 0 a ~300 ms backlog while
    // workers 1-3 drain their fast tasks almost instantly - they MUST
    // steal to finish, and every task still runs exactly once.
    ThreadPool pool(4);
    std::vector<std::atomic<int>> ran(64);
    for (auto &r : ran)
        r.store(0);
    for (std::size_t i = 0; i < 64; ++i) {
        pool.submit([i, &ran] {
            if (i % 4 == 0)
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(20));
            ran[i].fetch_add(1);
        });
    }
    pool.wait();
    for (std::size_t i = 0; i < 64; ++i)
        EXPECT_EQ(ran[i].load(), 1) << "task " << i;
    EXPECT_GT(pool.steals(), 0u);
}

TEST(Parallel, StealingStillReportsLowestSubmissionIndex)
{
    // Same skew as above, but every task throws.  Steals reorder WHERE
    // tasks run; the surfaced error must still be submission 0's.
    ThreadPool pool(4);
    for (std::size_t i = 0; i < 32; ++i) {
        pool.submit([i] {
            if (i % 4 == 0)
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(5));
            throw std::runtime_error("err" + std::to_string(i));
        });
    }
    try {
        pool.wait();
        FAIL() << "expected rethrow";
    } catch (const std::runtime_error &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("task 0:"), std::string::npos) << what;
        EXPECT_NE(what.find("err0"), std::string::npos) << what;
    }
}

TEST(Parallel, StealSiteFaultIsAttributedToTheStolenTask)
{
    // Arm every pool_steal hit: any stolen task dies at the steal
    // boundary.  With worker 0 buried in sleeps, steals are forced, so
    // wait() must surface a FaultInjected-derived failure - proving
    // the fail-point registry covers the stealing path.
    fault::installFailpoints("pool_steal@*");
    ThreadPool pool(4);
    std::atomic<int> ran{0};
    for (std::size_t i = 0; i < 64; ++i) {
        pool.submit([i, &ran] {
            if (i % 4 == 0)
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(10));
            ran.fetch_add(1);
        });
    }
    bool threw = false;
    try {
        pool.wait();
    } catch (const std::runtime_error &e) {
        threw = true;
        EXPECT_NE(std::string(e.what()).find("pool_steal"),
                  std::string::npos)
            << e.what();
    }
    fault::installFailpoints("");
    EXPECT_GT(pool.steals(), 0u);
    EXPECT_TRUE(threw);
}

TEST(Parallel, ParallelForBitIdenticalAcrossJobCounts)
{
    // Each cell is a pure function of its index; any job count (and
    // any steal schedule) must produce the same output vector.
    auto cell = [](std::size_t i) {
        std::uint64_t h = i * 0x9E3779B97F4A7C15ULL + 1;
        h ^= h >> 31;
        return h * 0xBF58476D1CE4E5B9ULL;
    };
    const std::size_t n = 97;
    std::vector<std::uint64_t> ref(n);
    parallelFor(
        n, [&ref, &cell](std::size_t i) { ref[i] = cell(i); }, 1);
    for (std::size_t jobs : {2u, 5u, 16u}) {
        std::vector<std::uint64_t> out(n, 0);
        parallelFor(
            n, [&out, &cell](std::size_t i) { out[i] = cell(i); },
            jobs);
        EXPECT_EQ(out, ref) << "jobs=" << jobs;
    }
}

TEST(Parallel, NumaPinEnvParse)
{
    JobsEnvGuard guard; // unrelated var, but keeps env hygiene local
    ::unsetenv("CATSIM_NUMA_PIN");
    EXPECT_FALSE(numaPinEnabled());
    ::setenv("CATSIM_NUMA_PIN", "1", 1);
    EXPECT_TRUE(numaPinEnabled());
    ::setenv("CATSIM_NUMA_PIN", "0", 1);
    EXPECT_FALSE(numaPinEnabled());
    ::unsetenv("CATSIM_NUMA_PIN");
}

TEST(Parallel, NumaPinnedPoolStillRunsEverything)
{
    // Pinning is a placement hint; with it enabled the pool must stay
    // correct (and be a harmless no-op where sysfs is unavailable).
    ::setenv("CATSIM_NUMA_PIN", "1", 1);
    {
        ThreadPool pool(4);
        std::atomic<int> counter{0};
        for (int i = 0; i < 200; ++i)
            pool.submit([&counter] { counter.fetch_add(1); });
        pool.wait();
        EXPECT_EQ(counter.load(), 200);
    }
    ::unsetenv("CATSIM_NUMA_PIN");
}

TEST(Parallel, ParallelForSerialNamesFailingIndex)
{
    try {
        parallelFor(
            10,
            [](std::size_t i) {
                if (i == 7)
                    throw std::runtime_error("seven");
            },
            1);
        FAIL() << "expected rethrow";
    } catch (const std::runtime_error &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("cell 7"), std::string::npos) << what;
        EXPECT_NE(what.find("seven"), std::string::npos) << what;
    }
}

} // namespace catsim
