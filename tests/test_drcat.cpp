/**
 * @file
 * Tests for DRCAT's weight-driven reconfiguration (paper Section V-B).
 */

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/cat_tree.hpp"
#include "core/drcat.hpp"
#include "core/split_thresholds.hpp"

namespace catsim
{

namespace
{

CatTree::Params
weightedParams(RowAddr rows, std::uint32_t M, std::uint32_t L,
               std::uint32_t T)
{
    CatTree::Params p;
    p.numRows = rows;
    p.numCounters = M;
    p.maxLevels = L;
    p.refreshThreshold = T;
    p.splitThresholds = computeSplitThresholds(M, L, T);
    p.enableWeights = true;
    return p;
}

/** Saturate the tree so every counter is active. */
void
saturate(CatTree &tree, RowAddr rows, std::uint64_t seed)
{
    Xoshiro256StarStar rng(seed);
    while (tree.activeCounters() < tree.params().numCounters) {
        for (int i = 0; i < 20000; ++i)
            tree.access(static_cast<RowAddr>(rng.nextBounded(rows)));
    }
}

} // namespace

TEST(Drcat, WeightsTrackRefreshes)
{
    CatTree tree(weightedParams(65536, 16, 9, 1024));
    saturate(tree, 65536, 1);
    // Hammer one row: its group refreshes and gains weight.
    std::uint32_t before = tree.leafWeight(7);
    for (int i = 0; i < 1200; ++i)
        tree.access(7);
    EXPECT_GE(tree.leafWeight(7), before);
    EXPECT_TRUE(tree.checkInvariants());
}

TEST(Drcat, ReconfigurationMovesCountersToHotRegion)
{
    CatTree tree(weightedParams(65536, 16, 9, 1024));
    saturate(tree, 65536, 2);
    const auto depthBefore = tree.leafDepth(100);
    // Sustained hammering on a cold-start region must eventually pull
    // counters over via merge+split (weight saturation).
    Count merges = 0;
    for (int i = 0; i < 30000; ++i) {
        const auto r = tree.access(100);
        merges += r.didReconfigure;
    }
    EXPECT_GT(merges, 0u);
    EXPECT_GT(tree.leafDepth(100), depthBefore);
    EXPECT_TRUE(tree.checkInvariants());
}

TEST(Drcat, ReconfigurationPreservesInvariants)
{
    CatTree tree(weightedParams(65536, 32, 10, 512));
    Xoshiro256StarStar rng(3);
    // Alternate hot spots to force repeated merges and splits.
    for (int phase = 0; phase < 6; ++phase) {
        const RowAddr hot =
            static_cast<RowAddr>(rng.nextBounded(65536));
        for (int i = 0; i < 40000; ++i) {
            const RowAddr row = rng.nextDouble() < 0.8
                ? hot
                : static_cast<RowAddr>(rng.nextBounded(65536));
            tree.access(row);
        }
        std::string why;
        ASSERT_TRUE(tree.checkInvariants(&why))
            << "phase " << phase << ": " << why;
    }
    EXPECT_GT(tree.totalMerges(), 0u);
}

TEST(Drcat, NewlySplitCountersGetWeightOne)
{
    CatTree tree(weightedParams(65536, 16, 9, 1024));
    saturate(tree, 65536, 4);
    // Trigger a reconfiguration and inspect the hot leaf's weight.
    bool reconfigured = false;
    for (int i = 0; i < 30000 && !reconfigured; ++i)
        reconfigured = tree.access(100).didReconfigure;
    ASSERT_TRUE(reconfigured);
    EXPECT_EQ(tree.leafWeight(100), 1u);
}

TEST(Drcat, SchemeAdaptsAcrossEpochs)
{
    // DRCAT keeps its learned shape across epochs; PRCAT rebuilds.
    Drcat drcat(65536, 64, 11, 32768);
    for (std::uint32_t i = 0; i < 40000; ++i)
        drcat.onActivate(42);
    const auto &tree = drcat.tree();
    const auto depth = tree.leafDepth(42);
    ASSERT_GT(depth, 5u);
    drcat.onEpoch();
    EXPECT_EQ(tree.leafDepth(42), depth) << "shape must survive epochs";
    EXPECT_EQ(tree.counterValue(42), 0u) << "counts must reset";
}

TEST(Drcat, NoWorseThanPrcatOnStablePattern)
{
    // With a stable hot set, DRCAT's retained tree keeps the hot rows
    // in minimal groups across epochs, so it refreshes no more rows
    // than PRCAT, which re-learns the same shape every epoch.
    const std::uint32_t T = 2048;
    Drcat drcat(65536, 16, 9, T);
    Prcat prcat(65536, 16, 9, T);

    auto hammer = [&](MitigationScheme &s, std::uint64_t seed, int n) {
        Xoshiro256StarStar local(seed);
        for (int i = 0; i < n; ++i) {
            const RowAddr row = local.nextDouble() < 0.7
                ? 30000 + static_cast<RowAddr>(local.nextBounded(4))
                : static_cast<RowAddr>(local.nextBounded(65536));
            s.onActivate(row);
        }
    };

    for (int epoch = 0; epoch < 8; ++epoch) {
        hammer(drcat, 100 + epoch, 60000);
        hammer(prcat, 100 + epoch, 60000);
        drcat.onEpoch();
        prcat.onEpoch();
    }
    EXPECT_LE(drcat.stats().victimRowsRefreshed,
              prcat.stats().victimRowsRefreshed * 11 / 10);
}

TEST(Drcat, MergeNeverRisesAbovePresplitLevel)
{
    // The lambda-level balanced prefix is a floor for merges: no leaf
    // may end up shallower than the pre-split depth.
    CatTree tree(weightedParams(65536, 16, 9, 512));
    Xoshiro256StarStar rng(7);
    for (int phase = 0; phase < 10; ++phase) {
        const RowAddr hot =
            static_cast<RowAddr>(rng.nextBounded(65536));
        for (int i = 0; i < 30000; ++i) {
            const RowAddr row = rng.nextDouble() < 0.8
                ? hot
                : static_cast<RowAddr>(rng.nextBounded(65536));
            tree.access(row);
        }
    }
    ASSERT_GT(tree.totalMerges(), 0u);
    for (RowAddr r = 0; r < 65536; r += 512)
        EXPECT_GE(tree.leafDepth(r), 3u); // log2(16) - 1
}

TEST(Drcat, Name)
{
    Drcat d(65536, 64, 11, 32768);
    EXPECT_EQ(d.name(), "DRCAT_64");
}

} // namespace catsim
