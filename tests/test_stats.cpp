/**
 * @file
 * Tests for the statistics accumulators.
 */

#include <gtest/gtest.h>

#include "common/stats.hpp"

namespace catsim
{

TEST(RunningStat, Empty)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStat, KnownValues)
{
    RunningStat s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStat, SingleValue)
{
    RunningStat s;
    s.add(3.5);
    EXPECT_DOUBLE_EQ(s.mean(), 3.5);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStat, Reset)
{
    RunningStat s;
    s.add(1.0);
    s.add(2.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.sum(), 0.0);
}

TEST(Histogram, Bucketing)
{
    Histogram h(0.0, 10.0, 10);
    h.add(0.5);
    h.add(1.5);
    h.add(1.6);
    h.add(9.9);
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(1), 2u);
    EXPECT_EQ(h.bucket(9), 1u);
    EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, OutOfRangeClamps)
{
    Histogram h(0.0, 10.0, 10);
    h.add(-5.0);
    h.add(100.0);
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(9), 1u);
}

TEST(Histogram, BucketLow)
{
    Histogram h(0.0, 10.0, 10);
    EXPECT_DOUBLE_EQ(h.bucketLow(0), 0.0);
    EXPECT_DOUBLE_EQ(h.bucketLow(5), 5.0);
}

TEST(GeoMean, KnownValue)
{
    GeoMean g;
    g.add(2.0);
    g.add(8.0);
    EXPECT_NEAR(g.value(), 4.0, 1e-12);
}

TEST(GeoMean, IgnoresNonPositive)
{
    GeoMean g;
    g.add(4.0);
    g.add(0.0);
    g.add(-1.0);
    EXPECT_NEAR(g.value(), 4.0, 1e-12);
}

TEST(GeoMean, EmptyIsZero)
{
    GeoMean g;
    EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

} // namespace catsim
