/**
 * @file
 * Tests for the key=value configuration helper.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/config.hpp"

namespace catsim
{

TEST(Config, FromArgs)
{
    const char *argv[] = {"prog", "counters=64", "scheme=drcat",
                          "p=0.002"};
    Config cfg = Config::fromArgs(4, argv);
    EXPECT_EQ(cfg.getUint("counters", 0), 64u);
    EXPECT_EQ(cfg.getString("scheme", ""), "drcat");
    EXPECT_DOUBLE_EQ(cfg.getDouble("p", 0.0), 0.002);
}

TEST(Config, Defaults)
{
    Config cfg;
    EXPECT_EQ(cfg.getInt("missing", -3), -3);
    EXPECT_EQ(cfg.getString("missing", "x"), "x");
    EXPECT_TRUE(cfg.getBool("missing", true));
    EXPECT_FALSE(cfg.has("missing"));
}

TEST(Config, BoolParsing)
{
    Config cfg;
    cfg.set("a", "true");
    cfg.set("b", "0");
    cfg.set("c", "yes");
    cfg.set("d", "off");
    EXPECT_TRUE(cfg.getBool("a", false));
    EXPECT_FALSE(cfg.getBool("b", true));
    EXPECT_TRUE(cfg.getBool("c", false));
    EXPECT_FALSE(cfg.getBool("d", true));
}

TEST(Config, SetOverrides)
{
    Config cfg;
    cfg.set("k", "1");
    cfg.set("k", "2");
    EXPECT_EQ(cfg.getInt("k", 0), 2);
}

TEST(Config, KeysSorted)
{
    Config cfg;
    cfg.set("b", "1");
    cfg.set("a", "2");
    const auto keys = cfg.keys();
    ASSERT_EQ(keys.size(), 2u);
    EXPECT_EQ(keys[0], "a");
    EXPECT_EQ(keys[1], "b");
}

TEST(Config, FromFile)
{
    const std::string path = ::testing::TempDir() + "/catsim_cfg.txt";
    {
        std::ofstream out(path);
        out << "# comment line\n";
        out << "threshold = 16384\n";
        out << "scheme=prcat   # trailing comment\n";
        out << "\n";
    }
    Config cfg = Config::fromFile(path);
    EXPECT_EQ(cfg.getUint("threshold", 0), 16384u);
    EXPECT_EQ(cfg.getString("scheme", ""), "prcat");
    std::remove(path.c_str());
}

TEST(ExperimentScale, DefaultsToOne)
{
    // The test environment does not set CATSIM_SCALE (and if it does,
    // the value must be positive).
    EXPECT_GT(experimentScale(), 0.0);
}

} // namespace catsim
