/**
 * @file
 * Tests for the ASCII table printer.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/table.hpp"

namespace catsim
{

TEST(TextTable, PrintsHeaderAndRows)
{
    TextTable t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"b", "22"});
    std::ostringstream os;
    t.print(os);
    const std::string s = os.str();
    EXPECT_NE(s.find("name"), std::string::npos);
    EXPECT_NE(s.find("alpha"), std::string::npos);
    EXPECT_NE(s.find("22"), std::string::npos);
    // header, rule, two rows
    EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 4);
}

TEST(TextTable, ColumnsAligned)
{
    TextTable t({"a", "b"});
    t.addRow({"xxxxxxxx", "1"});
    t.addRow({"y", "2"});
    std::ostringstream os;
    t.print(os);
    std::istringstream is(os.str());
    std::string l1, l2, l3, l4;
    std::getline(is, l1);
    std::getline(is, l2);
    std::getline(is, l3);
    std::getline(is, l4);
    // The second column starts at the same offset in every row.
    EXPECT_EQ(l3.find('1'), l4.find('2'));
}

TEST(TextTable, Formatters)
{
    EXPECT_EQ(TextTable::fixed(3.14159, 2), "3.14");
    EXPECT_EQ(TextTable::pct(0.0425, 1), "4.2%");
    EXPECT_EQ(TextTable::num(1234), "1234");
    const std::string s = TextTable::sci(1.234e5, 2);
    EXPECT_NE(s.find("1.23"), std::string::npos);
    EXPECT_NE(s.find("e+05"), std::string::npos);
}

TEST(TextTableDeath, RowWidthMismatch)
{
    TextTable t({"a", "b"});
    EXPECT_DEATH(t.addRow({"only-one"}), "row width");
}

} // namespace catsim
