/**
 * @file
 * Tests for Probabilistic Row Activation refresh (paper Section III-A).
 */

#include <gtest/gtest.h>

#include "core/pra.hpp"

namespace catsim
{

TEST(Pra, BitsPerDrawMatchesPaper)
{
    // p = 0.002 and 0.003 need ceil(log2(1/p)) = 9 bits (Section VII-B).
    Pra pra2(65536, 0.002);
    EXPECT_EQ(pra2.bitsPerDraw(), 9u);
    Pra pra3(65536, 0.003);
    EXPECT_EQ(pra3.bitsPerDraw(), 9u);
    Pra pra5(65536, 0.005);
    EXPECT_EQ(pra5.bitsPerDraw(), 8u);
}

TEST(Pra, EmpiricalRefreshRateNearP)
{
    Pra pra(65536, 0.002, std::make_unique<TruePrng>(7));
    const int n = 1000000;
    Count events = 0;
    for (int i = 0; i < n; ++i)
        events += pra.onActivate(1000).triggered();
    const double rate = static_cast<double>(events) / n;
    // The 9-bit quantized acceptance is 1/512 ~ 0.00195.
    EXPECT_NEAR(rate, 0.002, 0.0004);
}

TEST(Pra, RefreshesTwoNeighborsNotAggressor)
{
    Pra pra(65536, 0.5, std::make_unique<TruePrng>(1));
    for (int i = 0; i < 100; ++i) {
        const auto act = pra.onActivate(1000);
        if (act.triggered()) {
            EXPECT_EQ(act.lo, 999u);
            EXPECT_EQ(act.hi, 1001u);
            EXPECT_EQ(act.rowCount, 2u) << "aggressor not refreshed";
            return;
        }
    }
    FAIL() << "p=0.5 never triggered in 100 draws";
}

TEST(Pra, EdgeRowsHaveOneVictim)
{
    Pra pra(65536, 0.5, std::make_unique<TruePrng>(2));
    bool sawLow = false, sawHigh = false;
    for (int i = 0; i < 200 && !(sawLow && sawHigh); ++i) {
        const auto a = pra.onActivate(0);
        if (a.triggered()) {
            EXPECT_EQ(a.rowCount, 1u);
            EXPECT_EQ(a.lo, 1u);
            sawLow = true;
        }
        const auto b = pra.onActivate(65535);
        if (b.triggered()) {
            EXPECT_EQ(b.rowCount, 1u);
            EXPECT_EQ(b.hi, 65534u);
            sawHigh = true;
        }
    }
    EXPECT_TRUE(sawLow);
    EXPECT_TRUE(sawHigh);
}

TEST(Pra, PrngBitsAccountedPerActivation)
{
    Pra pra(65536, 0.002);
    for (int i = 0; i < 1000; ++i)
        pra.onActivate(5);
    EXPECT_EQ(pra.stats().prngBits, 9000u);
    EXPECT_EQ(pra.stats().activations, 1000u);
}

TEST(Pra, LfsrPrngWorks)
{
    Pra pra(65536, 0.01, std::make_unique<LfsrPrng>(16, 0xACE1));
    const int n = 500000;
    Count events = 0;
    for (int i = 0; i < n; ++i)
        events += pra.onActivate(123).triggered();
    // Rate should be in the right ballpark even with the cheap PRNG.
    const double rate = static_cast<double>(events) / n;
    EXPECT_GT(rate, 0.001);
    EXPECT_LT(rate, 0.05);
}

TEST(Pra, DeterministicWithSeed)
{
    Pra a(65536, 0.01, std::make_unique<TruePrng>(5));
    Pra b(65536, 0.01, std::make_unique<TruePrng>(5));
    for (int i = 0; i < 10000; ++i)
        ASSERT_EQ(a.onActivate(9).triggered(),
                  b.onActivate(9).triggered());
}

TEST(PraDeath, RejectsBadProbability)
{
    EXPECT_EXIT(Pra(65536, 0.0), ::testing::ExitedWithCode(1),
                "probability");
    EXPECT_EXIT(Pra(65536, 1.0), ::testing::ExitedWithCode(1),
                "probability");
}

} // namespace catsim
