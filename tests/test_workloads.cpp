/**
 * @file
 * Tests for the synthetic workload generators (paper Section VI).
 */

#include <gtest/gtest.h>

#include <map>

#include "trace/workloads.hpp"

namespace catsim
{

namespace
{

struct Env
{
    Env()
        : geometry(DramGeometry::dualCore2Ch()),
          mapper(geometry, MappingPolicy::RowRankBankChanCol)
    {
    }

    DramGeometry geometry;
    AddressMapper mapper;
};

} // namespace

TEST(Workloads, SuiteHasEighteenAcrossFourSuites)
{
    const auto &suite = workloadSuite();
    EXPECT_EQ(suite.size(), 18u);
    std::map<std::string, int> bySuite;
    for (const auto &w : suite)
        ++bySuite[w.suite];
    EXPECT_EQ(bySuite["COMM"], 5);
    EXPECT_EQ(bySuite["PARSEC"], 7);
    EXPECT_EQ(bySuite["SPEC"], 4);
    EXPECT_EQ(bySuite["BIO"], 2);
}

TEST(Workloads, FindByName)
{
    EXPECT_EQ(findWorkload("black").suite, "PARSEC");
    EXPECT_EQ(findWorkload("libq").suite, "SPEC");
}

TEST(WorkloadsDeath, UnknownName)
{
    EXPECT_EXIT(findWorkload("nope"), ::testing::ExitedWithCode(1),
                "unknown workload");
}

TEST(Workloads, DeterministicGivenSeed)
{
    Env env;
    const auto &p = findWorkload("comm1");
    SyntheticWorkload a(p, env.geometry, env.mapper, 5, 10000);
    SyntheticWorkload b(p, env.geometry, env.mapper, 5, 10000);
    TraceRecord ra, rb;
    while (a.next(ra)) {
        ASSERT_TRUE(b.next(rb));
        ASSERT_EQ(ra.addr, rb.addr);
        ASSERT_EQ(ra.gap, rb.gap);
        ASSERT_EQ(ra.isWrite, rb.isWrite);
    }
    EXPECT_FALSE(b.next(rb));
}

TEST(Workloads, RespectsLength)
{
    Env env;
    SyntheticWorkload w(findWorkload("swapt"), env.geometry, env.mapper,
                        1, 1234);
    TraceRecord r;
    std::size_t n = 0;
    while (w.next(r))
        ++n;
    EXPECT_EQ(n, 1234u);
}

TEST(Workloads, RewindReproducesStream)
{
    Env env;
    SyntheticWorkload w(findWorkload("face"), env.geometry, env.mapper,
                        9, 5000);
    std::vector<Addr> first;
    TraceRecord r;
    while (w.next(r))
        first.push_back(r.addr);
    w.rewind();
    std::size_t i = 0;
    while (w.next(r))
        ASSERT_EQ(r.addr, first[i++]);
}

TEST(Workloads, ReadRatioApproximate)
{
    Env env;
    const auto &p = findWorkload("libq"); // 0.95 reads
    SyntheticWorkload w(p, env.geometry, env.mapper, 3, 50000);
    TraceRecord r;
    int reads = 0, total = 0;
    while (w.next(r)) {
        reads += !r.isWrite;
        ++total;
    }
    EXPECT_NEAR(reads / static_cast<double>(total), 0.95, 0.02);
}

TEST(Workloads, HotSetDominatesForSkewedProfiles)
{
    // blackscholes (Fig 3): a small set of rows dominates the bank's
    // accesses.
    Env env;
    const auto &p = findWorkload("black");
    SyntheticWorkload w(p, env.geometry, env.mapper, 7, 200000);
    TraceRecord r;
    std::map<RowAddr, Count> rowCounts;
    while (w.next(r))
        ++rowCounts[env.mapper.map(r.addr).row];
    // Top-32 rows must account for more than 40 % of all accesses.
    std::vector<Count> counts;
    for (const auto &[row, c] : rowCounts)
        counts.push_back(c);
    std::sort(counts.rbegin(), counts.rend());
    Count top = 0, total = 0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
        if (i < 32)
            top += counts[i];
        total += counts[i];
    }
    EXPECT_GT(static_cast<double>(top) / static_cast<double>(total),
              0.4);
}

TEST(Workloads, StreamingProfileIsFlat)
{
    Env env;
    const auto &p = findWorkload("libq"); // low skew
    SyntheticWorkload w(p, env.geometry, env.mapper, 7, 200000);
    TraceRecord r;
    std::map<RowAddr, Count> rowCounts;
    Count total = 0;
    while (w.next(r)) {
        ++rowCounts[env.mapper.map(r.addr).row];
        ++total;
    }
    Count maxC = 0;
    for (const auto &[row, c] : rowCounts)
        maxC = std::max(maxC, c);
    // No single row may dominate a streaming workload.
    EXPECT_LT(static_cast<double>(maxC) / static_cast<double>(total),
              0.05);
}

TEST(Workloads, MeanGapTracksProfile)
{
    Env env;
    const auto &p = findWorkload("mum");
    SyntheticWorkload w(p, env.geometry, env.mapper, 11, 100000);
    TraceRecord r;
    double sum = 0;
    Count n = 0;
    while (w.next(r)) {
        sum += r.gap;
        ++n;
    }
    // Truncation of the exponential tail and integer rounding shave a
    // little off the mean.
    EXPECT_NEAR(sum / static_cast<double>(n), p.meanGap,
                p.meanGap * 0.1);
}

TEST(Workloads, PhaseRelocatesHotSet)
{
    Env env;
    WorkloadProfile p = findWorkload("comm1");
    p.phaseEvery = 20000;
    p.hotFraction = 0.9;
    SyntheticWorkload w(p, env.geometry, env.mapper, 13, 60000);
    TraceRecord r;
    std::map<RowAddr, Count> phase0, phase2;
    std::size_t i = 0;
    while (w.next(r)) {
        const RowAddr row = env.mapper.map(r.addr).row;
        if (i < 20000)
            ++phase0[row];
        else if (i >= 40000)
            ++phase2[row];
        ++i;
    }
    // The dominant rows of phase 0 must fade by phase 2.
    RowAddr top0 = 0;
    Count best = 0;
    for (const auto &[row, c] : phase0) {
        if (c > best) {
            best = c;
            top0 = row;
        }
    }
    EXPECT_LT(phase2[top0], best / 4)
        << "hot row must cool down after the phase change";
}

TEST(Workloads, ScatterRowIsBijective)
{
    std::vector<bool> seen(4096, false);
    for (std::uint64_t i = 0; i < 4096; ++i) {
        const RowAddr r = SyntheticWorkload::scatterRow(i, 4096);
        ASSERT_LT(r, 4096u);
        ASSERT_FALSE(seen[r]) << "collision at " << i;
        seen[r] = true;
    }
}

} // namespace catsim
