/**
 * @file
 * Property and determinism tests for the event engine.
 *
 * Three layers:
 *  - direct queue-order tests of the documented (time, actor-id, seq)
 *    tie-break contract, with scripted actors that log their firing
 *    order;
 *  - seeded random system grids (core counts, workload gap profiles,
 *    scheme kinds, epoch scales, recording on/off) asserting the
 *    engine front end equals the frozen reference loop and repeats
 *    itself exactly;
 *  - CATSIM_JOBS invariance of SweepRunner grids built on the engine
 *    (closed-loop adaptive cells and stimulus-path ETO cells).
 *
 * The big grids live in the SlowPropertyGrid suite, which CMake
 * registers as a separate ctest entry labeled "slow" (run with
 * `ctest -L slow`; the default run and the sanitizer CI use -LE slow).
 */

#include <gtest/gtest.h>

#include <random>
#include <utility>

#include "sim/event_engine.hpp"
#include "sim/reference_timing_sim.hpp"
#include "sim/sweep.hpp"
#include "sim/timing_sim.hpp"
#include "trace/workloads.hpp"

namespace catsim
{

namespace
{

/** Logs (actor id, time) on every event; optional same-time re-arms. */
class ScriptedActor : public SimActor
{
  public:
    ScriptedActor(EventEngine &engine,
                  std::vector<std::pair<ActorId, SimTime>> &log,
                  int rearms_at_same_time = 0)
        : engine_(engine), log_(log), rearms_(rearms_at_same_time)
    {
        id_ = engine_.addActor(this, EventEngine::ActorRole::Source);
    }

    ActorId id() const { return id_; }

    void
    onEvent(SimTime now) override
    {
        log_.emplace_back(id_, now);
        if (rearms_ > 0) {
            --rearms_;
            engine_.schedule(id_, now);
        } else {
            engine_.retire(id_);
        }
    }

  private:
    EventEngine &engine_;
    std::vector<std::pair<ActorId, SimTime>> &log_;
    int rearms_;
    ActorId id_ = 0;
};

std::vector<std::string>
workloadNames()
{
    return {"comm1", "comm2", "comm3", "comm4", "comm5"};
}

/** One seeded random system configuration. */
TimingConfig
randomSystem(std::mt19937_64 &rng, std::string *workload_out)
{
    const SchemeKind kinds[] = {SchemeKind::None, SchemeKind::Sca,
                                SchemeKind::Pra, SchemeKind::Prcat,
                                SchemeKind::Drcat,
                                SchemeKind::CounterCache};
    const auto pick = [&rng](std::uint64_t n) {
        return static_cast<std::size_t>(rng() % n);
    };

    TimingConfig sys;
    sys.geometry = DramGeometry::dualCore2Ch();
    sys.numCores = static_cast<std::uint32_t>(1 + pick(4));
    sys.scheme.kind = kinds[pick(6)];
    sys.scheme.numCounters = (pick(2) == 0) ? 64 : 128;
    sys.scheme.maxLevels = 11;
    sys.scheme.threshold =
        static_cast<std::uint32_t>(512u << pick(3)); // 512/1024/2048
    if (sys.scheme.kind == SchemeKind::Pra)
        sys.scheme.praProbability =
            1.0 / static_cast<double>(sys.scheme.threshold);
    sys.recordActivations = pick(2) == 0;
    const double epochScales[] = {0.001, 0.002, 0.004};
    sys.epochScale = epochScales[pick(3)];
    // Vary the core's memory-level parallelism and retire rate so the
    // inter-request gap distribution (not just the workload's) moves.
    sys.core.mlp = (pick(2) == 0) ? 8 : 16;
    sys.core.retireWidth = static_cast<std::uint32_t>(1 + pick(3));

    const auto &names = workloadNames();
    *workload_out = names[pick(names.size())];
    return sys;
}

StreamFactory
workloadFactory(const TimingConfig &sys, const AddressMapper &mapper,
                std::uint64_t records, const std::string &name)
{
    const WorkloadProfile profile = findWorkload(name);
    const DramGeometry geometry = sys.geometry;
    return [profile, geometry, &mapper,
            records](CoreId core) -> std::unique_ptr<TraceStream> {
        return std::make_unique<SyntheticWorkload>(
            profile, geometry, mapper, core + 1, records);
    };
}

/** Strict equality of everything a TimingResult carries. */
void
expectIdentical(const TimingResult &a, const TimingResult &b)
{
    EXPECT_EQ(a.execCycles, b.execCycles);
    EXPECT_EQ(a.execSeconds, b.execSeconds);
    EXPECT_EQ(a.epochs, b.epochs);
    EXPECT_EQ(a.totalActivations, b.totalActivations);
    EXPECT_EQ(a.victimRowsRefreshed, b.victimRowsRefreshed);
    EXPECT_EQ(a.controller.reads, b.controller.reads);
    EXPECT_EQ(a.controller.writes, b.controller.writes);
    EXPECT_EQ(a.controller.writeDrains, b.controller.writeDrains);
    EXPECT_EQ(a.controller.lastCompletion, b.controller.lastCompletion);
    EXPECT_EQ(a.scheme.refreshEvents, b.scheme.refreshEvents);
    EXPECT_EQ(a.scheme.splits, b.scheme.splits);
    EXPECT_EQ(a.scheme.merges, b.scheme.merges);
    ASSERT_EQ(a.bankStreams.size(), b.bankStreams.size());
    for (std::size_t i = 0; i < a.bankStreams.size(); ++i)
        EXPECT_EQ(a.bankStreams[i], b.bankStreams[i]);
}

void
checkRandomGrid(std::uint64_t seed, int configs, std::uint64_t records)
{
    std::mt19937_64 rng(seed);
    for (int i = 0; i < configs; ++i) {
        std::string workload;
        const TimingConfig sys = randomSystem(rng, &workload);
        SCOPED_TRACE(testing::Message()
                     << "config " << i << " workload " << workload
                     << " scheme "
                     << static_cast<int>(sys.scheme.kind) << " cores "
                     << sys.numCores);
        AddressMapper mapper(sys.geometry, sys.mapping);
        const auto factory =
            workloadFactory(sys, mapper, records, workload);

        const TimingResult ref = referenceRunTiming(sys, factory);
        const TimingResult once = runTiming(sys, factory);
        const TimingResult twice = runTiming(sys, factory);
        expectIdentical(once, ref);   // engine == frozen oracle
        expectIdentical(once, twice); // engine repeats itself
    }
}

AdaptiveCell
adaptiveCell(AttackerKind attacker, SchemeKind kind)
{
    AdaptiveCell c;
    c.preset = SystemPreset::DualCore2Ch;
    c.attack.attacker = attacker;
    c.attack.mode = AttackMode::Medium;
    c.attack.kernel = 1;
    c.scheme.kind = kind;
    c.scheme.numCounters = 64;
    c.scheme.maxLevels = 11;
    c.scheme.threshold = 32768;
    if (kind == SchemeKind::Pra)
        c.scheme.praProbability = 2.0 / 32768.0;
    return c;
}

} // namespace

TEST(EventEngineOrder, SameTimeResolvesByActorIdThenFifo)
{
    EventEngine engine;
    std::vector<std::pair<ActorId, SimTime>> log;
    ScriptedActor a(engine, log);          // id 0
    ScriptedActor b(engine, log, 1);       // id 1, re-arms once at t=5
    ScriptedActor c(engine, log);          // id 2

    // Scheduling order deliberately disagrees with actor-id order.
    engine.schedule(c.id(), 5.0);
    engine.schedule(b.id(), 5.0);
    engine.schedule(a.id(), 7.0);
    engine.run();

    // Time first (5 before 7); at t=5 the lower actor id wins even
    // though it was scheduled later, and b's same-time re-arm (a later
    // seq) still beats c because actor id outranks insertion order.
    const std::vector<std::pair<ActorId, SimTime>> expected = {
        {b.id(), 5.0}, {b.id(), 5.0}, {c.id(), 5.0}, {a.id(), 7.0}};
    EXPECT_EQ(log, expected);
}

TEST(EventEngineOrder, SameActorSameTimeIsFifo)
{
    // One actor re-arming at a constant time must simply run N times -
    // the sequential-replay pattern (all of a bank's events at time b).
    EventEngine engine;
    std::vector<std::pair<ActorId, SimTime>> log;
    ScriptedActor a(engine, log, 4);
    engine.schedule(a.id(), 3.0);
    engine.run();
    EXPECT_EQ(log.size(), 5u);
    for (const auto &entry : log)
        EXPECT_EQ(entry, (std::pair<ActorId, SimTime>{a.id(), 3.0}));
}

TEST(EventEngineOrder, TimerAloneDoesNotRun)
{
    EventEngine engine;
    Count fired = 0;
    EpochTimerActor timer(engine, 100.0, [&fired]() { ++fired; });
    engine.run(); // no Source actors -> nothing may fire
    EXPECT_EQ(fired, 0u);
    EXPECT_EQ(timer.epochs(), 0u);
}

TEST(EventEngineOrder, RunStopsWhenLastSourceRetires)
{
    EventEngine engine;
    Count fired = 0;
    EpochTimerActor timer(engine, 10.0, [&fired]() { ++fired; });
    std::vector<std::pair<ActorId, SimTime>> log;
    ScriptedActor a(engine, log);
    engine.schedule(a.id(), 25.0);
    engine.run();
    // Timer fires at 10 and 20; its pending t=30 event dies with the
    // source (the historical loops never ran epochs past the last
    // core's trace end).
    EXPECT_EQ(fired, 2u);
    EXPECT_EQ(log.size(), 1u);
}

TEST(EventEngineOrder, EpochTimerBeatsSameTimeSource)
{
    EventEngine engine;
    std::vector<int> order;
    // Timer registered FIRST, as the timing front ends do.
    EpochTimerActor timer(engine, 50.0, [&order]() { order.push_back(0); });
    std::vector<std::pair<ActorId, SimTime>> log;
    ScriptedActor a(engine, log);
    engine.schedule(a.id(), 50.0);
    engine.run();
    ASSERT_EQ(order.size(), 1u);
    ASSERT_EQ(log.size(), 1u);
    // The boundary fired before the source event at the same time -
    // the engine form of the old `earliest->time() >= nextEpoch`.
    EXPECT_EQ(timer.epochs(), 1u);
}

/** Fast seeded grid: a handful of random systems every ctest run. */
TEST(PropertyGrid, RandomSystemsMatchReferenceAndRepeat)
{
    checkRandomGrid(/*seed=*/1234, /*configs=*/5, /*records=*/15000);
}

/** Jobs invariance of the closed-loop grids the fig14 bench runs. */
TEST(PropertyGrid, AdaptiveSweepInvariantAcrossJobCounts)
{
    const std::vector<AdaptiveCell> cells = {
        adaptiveCell(AttackerKind::Static, SchemeKind::Drcat),
        adaptiveCell(AttackerKind::RefreshAware, SchemeKind::Drcat),
        adaptiveCell(AttackerKind::RefreshAware, SchemeKind::Prcat),
        adaptiveCell(AttackerKind::MultiBank, SchemeKind::CounterCache),
    };
    const double scale = 0.02;
    SweepRunner serial(scale, 1);
    SweepRunner wide(scale, 4);
    const auto a = serial.runAdaptive(cells);
    const auto b = wide.runAdaptive(cells);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].cmrpo, b[i].cmrpo) << "cell " << i;
        EXPECT_EQ(a[i].stats.refreshEvents, b[i].stats.refreshEvents);
    }
}

/** Large seeded grid - registered separately with ctest label "slow". */
TEST(SlowPropertyGrid, RandomSystemsMatchReferenceAndRepeat)
{
    checkRandomGrid(/*seed=*/98765, /*configs=*/16, /*records=*/50000);
}

/** Stimulus-path ETO cells repeat exactly at any job count. */
TEST(SlowPropertyGrid, AdaptiveEtoInvariantAcrossJobCounts)
{
    const std::vector<AdaptiveCell> cells = {
        adaptiveCell(AttackerKind::Static, SchemeKind::CounterCache),
        adaptiveCell(AttackerKind::RefreshAware, SchemeKind::Drcat),
    };
    const double scale = 0.02;
    SweepRunner serial(scale, 1);
    SweepRunner wide(scale, 8);
    const auto a = serial.runAdaptiveEto(cells);
    const auto b = wide.runAdaptiveEto(cells);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i], b[i]) << "cell " << i;
    // And the whole grid repeats bit-for-bit on a fresh runner.
    SweepRunner again(scale, 3);
    const auto c = again.runAdaptiveEto(cells);
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i], c[i]) << "cell " << i;
}

} // namespace catsim
