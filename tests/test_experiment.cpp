/**
 * @file
 * Tests for the experiment runner (CMRPO/ETO orchestration).
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "sim/experiment.hpp"

namespace catsim
{

namespace
{

// Keep the suite hermetic: an inherited CATSIM_BASELINE_CACHE would
// make runners read/write a user cache dir during tests.
const bool kEnvScrubbed = [] {
    ::unsetenv("CATSIM_BASELINE_CACHE");
    return true;
}();

/** Tiny scale so each test runs in well under a second. */
constexpr double kTestScale = 0.02;

SchemeConfig
scheme(SchemeKind kind, std::uint32_t counters = 64,
       std::uint32_t levels = 11, std::uint32_t threshold = 32768)
{
    SchemeConfig cfg;
    cfg.kind = kind;
    cfg.numCounters = counters;
    cfg.maxLevels = levels;
    cfg.threshold = threshold;
    cfg.praProbability = 0.002;
    return cfg;
}

} // namespace

TEST(Experiment, BaselineIsCached)
{
    ExperimentRunner runner(kTestScale);
    WorkloadSpec w;
    w.name = "comm1";
    const auto &a = runner.baseline(SystemPreset::DualCore2Ch, w);
    const auto &b = runner.baseline(SystemPreset::DualCore2Ch, w);
    EXPECT_EQ(&a, &b) << "same workload must reuse the cached baseline";
    EXPECT_GT(a.totalActivations, 0u);
    EXPECT_GT(a.epochs, 0u);
}

TEST(Experiment, ScaledThreshold)
{
    ExperimentRunner runner(0.25);
    EXPECT_EQ(runner.scaledThreshold(32768), 8192u);
    EXPECT_EQ(runner.scaledThreshold(1024), 512u) << "clamped at 512";
}

TEST(Experiment, CmrpoComponentsPositive)
{
    ExperimentRunner runner(kTestScale);
    WorkloadSpec w;
    w.name = "comm1";
    const auto r = runner.evalCmrpo(SystemPreset::DualCore2Ch, w,
                                    scheme(SchemeKind::Drcat));
    EXPECT_GT(r.cmrpo, 0.0);
    EXPECT_LT(r.cmrpo, 1.0) << "DRCAT CMRPO must be far below 100 %";
    EXPECT_GT(r.power.statik, 0.0);
    EXPECT_GT(r.power.dynamic, 0.0);
}

TEST(Experiment, ScaStaticPowerGrowsWithCounters)
{
    ExperimentRunner runner(kTestScale);
    WorkloadSpec w;
    w.name = "swapt";
    const auto small = runner.evalCmrpo(SystemPreset::DualCore2Ch, w,
                                        scheme(SchemeKind::Sca, 64));
    const auto large = runner.evalCmrpo(SystemPreset::DualCore2Ch, w,
                                        scheme(SchemeKind::Sca, 4096));
    EXPECT_GT(large.power.statik, small.power.statik);
}

TEST(Experiment, PraPowerDominatedByPrng)
{
    ExperimentRunner runner(kTestScale);
    WorkloadSpec w;
    w.name = "comm1";
    const auto r = runner.evalCmrpo(SystemPreset::DualCore2Ch, w,
                                    scheme(SchemeKind::Pra));
    // Section VII-B: PRNG generation dominates PRA's CMRPO.
    EXPECT_GT(r.power.dynamic, r.power.refresh);
}

TEST(Experiment, AttackWorkloadRuns)
{
    ExperimentRunner runner(kTestScale);
    WorkloadSpec w;
    w.name = "comm2";
    w.isAttack = true;
    w.attackMode = AttackMode::Heavy;
    w.attackKernel = 3;
    const auto &base = runner.baseline(SystemPreset::DualCore2Ch, w);
    EXPECT_GT(base.totalActivations, 0u);
    EXPECT_EQ(w.label(), "attack-Heavy-k3+comm2");
}

TEST(Experiment, CustomSplitScheduleCoScalesWithThreshold)
{
    // A custom schedule built from the paper threshold must be scaled
    // with T before it reaches the CAT, whose constructor requires the
    // last entry to equal the (scaled) refresh threshold - this test
    // dies if the co-scaling is wrong.  An eager schedule refreshes
    // no MORE victim rows than the lazy one on the same streams.
    ExperimentRunner runner(kTestScale);
    WorkloadSpec w;
    w.name = "comm1";

    auto withSchedule = [&](std::uint32_t div) {
        SchemeConfig cfg = scheme(SchemeKind::Drcat);
        cfg.splitThresholds.assign(cfg.maxLevels,
                                   cfg.threshold / div);
        cfg.splitThresholds.back() = cfg.threshold;
        return runner.evalCmrpo(SystemPreset::DualCore2Ch, w, cfg);
    };
    const auto eager = withSchedule(16);
    const auto lazy = withSchedule(2);
    EXPECT_GT(eager.cmrpo, 0.0);
    EXPECT_GT(lazy.cmrpo, 0.0);
    // Both schedules may fully saturate the counters (equal split
    // totals), but the eager one deepens the tree earlier, so its
    // walks make more SRAM accesses over the run.
    EXPECT_GE(eager.stats.splits, lazy.stats.splits);
    EXPECT_GT(eager.stats.sramAccesses, lazy.stats.sramAccesses)
        << "an eager schedule must deepen the tree earlier";
}

TEST(Experiment, EtoNonNegativeAndSmall)
{
    ExperimentRunner runner(kTestScale);
    WorkloadSpec w;
    w.name = "comm1";
    const double e = runner.evalEto(SystemPreset::DualCore2Ch, w,
                                    scheme(SchemeKind::Drcat));
    EXPECT_GE(e, -0.01);
    EXPECT_LT(e, 0.2);
}

TEST(Experiment, PresetsDiffer)
{
    const auto dual = makeSystem(SystemPreset::DualCore2Ch);
    const auto quad2 = makeSystem(SystemPreset::QuadCore2Ch);
    const auto quad4 = makeSystem(SystemPreset::QuadCore4Ch);
    EXPECT_EQ(dual.numCores, 2u);
    EXPECT_EQ(quad2.numCores, 4u);
    EXPECT_EQ(quad2.geometry.rowsPerBank, 131072u);
    EXPECT_EQ(quad4.geometry.totalBanks(), 64u);
    EXPECT_EQ(quad4.mapping, MappingPolicy::RowRankBankColChan);
}

TEST(ExperimentDeath, RejectsBadScale)
{
    EXPECT_EXIT(ExperimentRunner(0.0), ::testing::ExitedWithCode(1),
                "scale");
    EXPECT_EXIT(ExperimentRunner(1.5), ::testing::ExitedWithCode(1),
                "scale");
}

} // namespace catsim
