/**
 * @file
 * Tests for scheme construction by name/config.
 */

#include <gtest/gtest.h>

#include "core/factory.hpp"
#include "core/prcat.hpp"

namespace catsim
{

TEST(Factory, ParsesNames)
{
    EXPECT_EQ(parseSchemeKind("none"), SchemeKind::None);
    EXPECT_EQ(parseSchemeKind("SCA"), SchemeKind::Sca);
    EXPECT_EQ(parseSchemeKind("pra"), SchemeKind::Pra);
    EXPECT_EQ(parseSchemeKind("PrCat"), SchemeKind::Prcat);
    EXPECT_EQ(parseSchemeKind("drcat"), SchemeKind::Drcat);
    EXPECT_EQ(parseSchemeKind("cc"), SchemeKind::CounterCache);
    EXPECT_EQ(parseSchemeKind("countercache"),
              SchemeKind::CounterCache);
}

TEST(FactoryDeath, UnknownName)
{
    EXPECT_EXIT(parseSchemeKind("rowpress"),
                ::testing::ExitedWithCode(1), "unknown scheme");
}

TEST(Factory, BuildsEveryKind)
{
    SchemeConfig cfg;
    cfg.numCounters = 64;
    cfg.maxLevels = 11;
    cfg.threshold = 32768;

    cfg.kind = SchemeKind::None;
    EXPECT_EQ(makeScheme(cfg, 65536), nullptr);

    cfg.kind = SchemeKind::Sca;
    EXPECT_EQ(makeScheme(cfg, 65536)->name(), "SCA_64");

    cfg.kind = SchemeKind::Pra;
    cfg.praProbability = 0.002;
    EXPECT_EQ(makeScheme(cfg, 65536)->name(), "PRA_0.002");

    cfg.kind = SchemeKind::Prcat;
    EXPECT_EQ(makeScheme(cfg, 65536)->name(), "PRCAT_64");

    cfg.kind = SchemeKind::Drcat;
    EXPECT_EQ(makeScheme(cfg, 65536)->name(), "DRCAT_64");

    cfg.kind = SchemeKind::CounterCache;
    cfg.numCounters = 2048;
    EXPECT_EQ(makeScheme(cfg, 65536)->name(), "CC_2048");
}

TEST(Factory, CustomSplitScheduleReachesTree)
{
    // SchemeConfig::splitThresholds must flow through to the CAT: an
    // all-100 schedule splits the hot group on the 101st activation
    // instead of at the Section IV-D threshold.
    SchemeConfig cfg;
    cfg.kind = SchemeKind::Prcat;
    cfg.numCounters = 64;
    cfg.maxLevels = 11;
    cfg.threshold = 32768;
    cfg.splitThresholds.assign(11, 100);
    cfg.splitThresholds.back() = cfg.threshold;
    auto scheme = makeScheme(cfg, 65536);
    auto *prcat = dynamic_cast<Prcat *>(scheme.get());
    ASSERT_NE(prcat, nullptr);
    for (int i = 0; i < 100; ++i)
        scheme->onActivate(42);
    EXPECT_EQ(prcat->tree().leafDepth(42), 5u);
    scheme->onActivate(42);
    EXPECT_EQ(prcat->tree().leafDepth(42), 6u);
    EXPECT_TRUE(prcat->tree().checkInvariants());
}

TEST(Factory, LabelsMatchSchemes)
{
    SchemeConfig cfg;
    cfg.kind = SchemeKind::Drcat;
    cfg.numCounters = 128;
    EXPECT_EQ(cfg.label(), "DRCAT_128");
    cfg.kind = SchemeKind::None;
    EXPECT_EQ(cfg.label(), "none");
    cfg.kind = SchemeKind::Pra;
    cfg.praProbability = 0.003;
    EXPECT_EQ(cfg.label(), "PRA_0.003");
}

TEST(Factory, ExtensionAxisLabels)
{
    SchemeConfig cfg;
    cfg.kind = SchemeKind::CounterCache;
    cfg.numCounters = 2048;
    EXPECT_EQ(cfg.label(), "CC_2048"); // legacy default: unchanged
    cfg.evictionPolicy = EvictionPolicyKind::Lfu;
    EXPECT_EQ(cfg.label(), "CC_2048_lfu");
    // banksPerPool only marks CAT labels.
    cfg.banksPerPool = 8;
    EXPECT_EQ(cfg.label(), "CC_2048_lfu");
    cfg.kind = SchemeKind::Drcat;
    cfg.numCounters = 64;
    EXPECT_EQ(cfg.label(), "DRCAT_64_rank8");
    cfg.banksPerPool = 1;
    EXPECT_EQ(cfg.label(), "DRCAT_64");
}

TEST(Factory, NonPow2CountersBuildAndRun)
{
    SchemeConfig cfg;
    cfg.kind = SchemeKind::Drcat;
    cfg.numCounters = 63;
    cfg.maxLevels = 11;
    cfg.threshold = 4096;
    auto scheme = makeScheme(cfg, 65536);
    EXPECT_EQ(scheme->name(), "DRCAT_63");
    for (int i = 0; i < 10000; ++i)
        scheme->onActivate(static_cast<RowAddr>(i % 100));
    EXPECT_EQ(scheme->stats().activations, 10000u);
}

TEST(FactoryDeath, SingleInstanceCannotSharePool)
{
    SchemeConfig cfg;
    cfg.kind = SchemeKind::Prcat;
    cfg.banksPerPool = 8;
    EXPECT_EXIT(makeScheme(cfg, 65536), ::testing::ExitedWithCode(1),
                "makeBankSchemes");
}

TEST(Factory, BankSchemesMatchPerBankConstruction)
{
    // makeBankSchemes must reproduce the historical per-bank loop:
    // same seed derivation, same instances (PRA decisions included).
    SchemeConfig cfg;
    cfg.kind = SchemeKind::Pra;
    cfg.praProbability = 0.05;
    cfg.seed = 9;
    auto banks = makeBankSchemes(cfg, 65536, 3);
    ASSERT_EQ(banks.size(), 3u);
    for (std::uint32_t b = 0; b < 3; ++b) {
        SchemeConfig one = cfg;
        one.seed = cfg.seed * 1000003ULL + b;
        auto lone = makeScheme(one, 65536);
        for (int i = 0; i < 2000; ++i) {
            ASSERT_EQ(banks[b]->onActivate(7).triggered(),
                      lone->onActivate(7).triggered())
                << "bank " << b << " access " << i;
        }
    }
}

TEST(Factory, LfsrPraOption)
{
    SchemeConfig cfg;
    cfg.kind = SchemeKind::Pra;
    cfg.praProbability = 0.01;
    cfg.lfsrPrng = true;
    auto scheme = makeScheme(cfg, 65536);
    // Behaviourally identical interface; just ensure it runs.
    for (int i = 0; i < 1000; ++i)
        scheme->onActivate(42);
    EXPECT_EQ(scheme->stats().activations, 1000u);
}

TEST(Factory, PerBankSeedsDecorrelatePra)
{
    SchemeConfig a;
    a.kind = SchemeKind::Pra;
    a.praProbability = 0.05;
    a.seed = 1;
    SchemeConfig b = a;
    b.seed = 2;
    auto sa = makeScheme(a, 65536);
    auto sb = makeScheme(b, 65536);
    int same = 0;
    const int n = 2000;
    for (int i = 0; i < n; ++i) {
        same += sa->onActivate(7).triggered()
                == sb->onActivate(7).triggered();
    }
    EXPECT_LT(same, n); // different seeds, different decisions
}

} // namespace catsim
