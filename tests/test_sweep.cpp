/**
 * @file
 * Tests for the parallel sweep engine: serial/parallel equivalence,
 * baseline dedup under contention, and the on-disk baseline cache.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "sim/baseline_io.hpp"
#include "sim/sweep.hpp"

namespace catsim
{

namespace
{

// The runner reads CATSIM_BASELINE_CACHE at construction; these tests
// count baseline computations and disk loads, so an inherited cache
// dir (or jobs override) must not leak in from the environment.
const bool kEnvScrubbed = [] {
    ::unsetenv("CATSIM_BASELINE_CACHE");
    ::unsetenv("CATSIM_JOBS");
    ::unsetenv("CATSIM_CHECKPOINT");
    ::unsetenv("CATSIM_SWEEP_KEEP_GOING");
    return true;
}();

constexpr double kTestScale = 0.02;

std::vector<SweepCell>
smallGrid()
{
    std::vector<SweepCell> cells;
    for (const char *name : {"comm1", "swapt"}) {
        for (SchemeKind kind : {SchemeKind::Drcat, SchemeKind::Sca,
                                SchemeKind::Pra}) {
            SweepCell c;
            c.workload.name = name;
            c.scheme.kind = kind;
            c.scheme.numCounters = 64;
            c.scheme.maxLevels = 11;
            c.scheme.threshold = 32768;
            c.scheme.praProbability = 0.002;
            cells.push_back(c);
        }
    }
    return cells;
}

void
expectBitIdentical(const EvalResult &a, const EvalResult &b,
                   std::size_t i)
{
    EXPECT_EQ(a.cmrpo, b.cmrpo) << "cell " << i;
    EXPECT_EQ(a.baselineSeconds, b.baselineSeconds) << "cell " << i;
    EXPECT_EQ(a.power.dynamic, b.power.dynamic) << "cell " << i;
    EXPECT_EQ(a.power.statik, b.power.statik) << "cell " << i;
    EXPECT_EQ(a.power.refresh, b.power.refresh) << "cell " << i;
    EXPECT_EQ(a.stats.activations, b.stats.activations) << "cell " << i;
    EXPECT_EQ(a.stats.victimRowsRefreshed, b.stats.victimRowsRefreshed)
        << "cell " << i;
    EXPECT_EQ(a.stats.prngBits, b.stats.prngBits) << "cell " << i;
    EXPECT_EQ(a.stats.sramAccesses, b.stats.sramAccesses)
        << "cell " << i;
}

/** Fresh scratch dir under the test temp root. */
std::filesystem::path
freshCacheDir(const std::string &name)
{
    const auto dir =
        std::filesystem::temp_directory_path() / ("catsim_" + name);
    std::filesystem::remove_all(dir);
    return dir;
}

} // namespace

TEST(Sweep, ParallelMatchesSerialBitForBit)
{
    const auto cells = smallGrid();

    SweepRunner serial(kTestScale, 1);
    const auto expected = serial.runCmrpo(cells);

    SweepRunner parallel4(kTestScale, 4);
    const auto got = parallel4.runCmrpo(cells);

    ASSERT_EQ(expected.size(), got.size());
    for (std::size_t i = 0; i < expected.size(); ++i)
        expectBitIdentical(expected[i], got[i], i);
}

TEST(Sweep, EtoParallelMatchesSerial)
{
    std::vector<SweepCell> cells = smallGrid();
    cells.resize(3); // ETO cells run full timing sims; keep it small

    SweepRunner serial(kTestScale, 1);
    SweepRunner parallel4(kTestScale, 4);
    const auto expected = serial.runEto(cells);
    const auto got = parallel4.runEto(cells);

    ASSERT_EQ(expected.size(), got.size());
    for (std::size_t i = 0; i < expected.size(); ++i)
        EXPECT_EQ(expected[i], got[i]) << "cell " << i;
}

TEST(Sweep, RunMetricParallelMatchesSerial)
{
    // Custom per-cell metrics (the ablation bench's path) must come
    // back cell-indexed and identical at any job count; the tag field
    // must reach the callback.
    std::vector<SweepCell> cells;
    for (const char *name : {"comm1", "swapt"}) {
        for (std::uint64_t tag = 0; tag < 3; ++tag) {
            SweepCell c;
            c.workload.name = name;
            c.tag = tag;
            cells.push_back(c);
        }
    }
    const auto metric = [](ExperimentRunner &runner,
                           const SweepCell &cell) {
        const auto &base =
            runner.baseline(cell.preset, cell.workload);
        // Deterministic function of the baseline and the tag.
        return static_cast<double>(base.totalActivations)
               * static_cast<double>(cell.tag + 1);
    };

    SweepRunner serial(kTestScale, 1);
    SweepRunner parallel4(kTestScale, 4);
    const auto expected = serial.runMetric(cells, metric);
    const auto got = parallel4.runMetric(cells, metric);

    ASSERT_EQ(expected.size(), got.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(expected[i], got[i]) << "cell " << i;
        EXPECT_GT(expected[i], 0.0) << "cell " << i;
    }
    // Tags scale the metric, so cells sharing a workload must differ.
    EXPECT_EQ(expected[1], 2.0 * expected[0]);
    EXPECT_EQ(expected[2], 3.0 * expected[0]);
}

TEST(Sweep, AdaptiveParallelMatchesSerialWithoutBaselines)
{
    // Closed-loop cells must be pure functions of their spec: same
    // results at any job count, and no recorded baseline is ever
    // computed (the whole point of the closed-loop path).
    std::vector<AdaptiveCell> cells;
    for (AttackerKind a : {AttackerKind::Static,
                           AttackerKind::MultiBank,
                           AttackerKind::RefreshAware}) {
        for (SchemeKind kind : {SchemeKind::Drcat,
                                SchemeKind::CounterCache}) {
            AdaptiveCell c;
            c.attack.attacker = a;
            c.attack.kernel = 2;
            c.attack.epochs = 1;
            c.scheme.kind = kind;
            c.scheme.numCounters =
                kind == SchemeKind::CounterCache ? 2048 : 64;
            c.scheme.maxLevels = 11;
            c.scheme.threshold = 32768;
            cells.push_back(c);
        }
    }

    SweepRunner serial(kTestScale, 1);
    const auto expected = serial.runAdaptive(cells);
    EXPECT_EQ(serial.runner().baselineComputeCount(), 0u);

    SweepRunner parallel4(kTestScale, 4);
    const auto got = parallel4.runAdaptive(cells);
    EXPECT_EQ(parallel4.runner().baselineComputeCount(), 0u);

    ASSERT_EQ(expected.size(), got.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
        expectBitIdentical(expected[i], got[i], i);
        EXPECT_GT(got[i].cmrpo, 0.0) << "cell " << i;
    }
}

TEST(Sweep, BaselineComputedOnceUnderContention)
{
    // Eight cells hammer the same (preset, workload) concurrently;
    // the shared-future cache must run the baseline exactly once.
    std::vector<SweepCell> cells;
    for (std::uint32_t m : {16u, 32u, 64u, 128u, 256u, 512u, 1024u,
                            2048u}) {
        SweepCell c;
        c.workload.name = "comm1";
        c.scheme.kind = SchemeKind::Sca;
        c.scheme.numCounters = m;
        cells.push_back(c);
    }
    SweepRunner sweep(kTestScale, 8);
    const auto results = sweep.runCmrpo(cells);
    EXPECT_EQ(sweep.runner().baselineComputeCount(), 1u);
    EXPECT_EQ(results.size(), cells.size());
    for (const auto &r : results)
        EXPECT_GT(r.cmrpo, 0.0);
}

TEST(Sweep, ResultsIndexedByCellNotCompletionOrder)
{
    // Uneven per-cell work (PRA replays are cheap, DRCAT heavier):
    // results must still line up with their cells.
    const auto cells = smallGrid();
    SweepRunner sweep(kTestScale, 4);
    const auto results = sweep.runCmrpo(cells);
    ExperimentRunner direct(kTestScale);
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const auto r = direct.evalCmrpo(cells[i].preset,
                                        cells[i].workload,
                                        cells[i].scheme);
        EXPECT_EQ(results[i].cmrpo, r.cmrpo) << "cell " << i;
    }
}

TEST(SweepDiskCache, RoundTrip)
{
    const auto dir = freshCacheDir("sweep_cache_roundtrip");
    const auto cells = smallGrid();

    SweepRunner first(kTestScale, 2);
    first.runner().setBaselineCacheDir(dir.string());
    const auto expected = first.runCmrpo(cells);
    EXPECT_EQ(first.runner().baselineComputeCount(), 2u);
    EXPECT_EQ(first.runner().baselineDiskLoads(), 0u);

    // A fresh runner over the same dir must load, not recompute,
    // and produce bit-identical results.
    SweepRunner second(kTestScale, 2);
    second.runner().setBaselineCacheDir(dir.string());
    const auto got = second.runCmrpo(cells);
    EXPECT_EQ(second.runner().baselineComputeCount(), 0u);
    EXPECT_EQ(second.runner().baselineDiskLoads(), 2u);
    ASSERT_EQ(expected.size(), got.size());
    for (std::size_t i = 0; i < expected.size(); ++i)
        expectBitIdentical(expected[i], got[i], i);

    std::filesystem::remove_all(dir);
}

TEST(SweepDiskCache, CorruptFileRecomputed)
{
    const auto dir = freshCacheDir("sweep_cache_corrupt");

    WorkloadSpec w;
    w.name = "comm1";
    ExperimentRunner first(kTestScale);
    first.setBaselineCacheDir(dir.string());
    const auto &base = first.baseline(SystemPreset::DualCore2Ch, w);
    EXPECT_GT(base.totalActivations, 0u);

    const std::string path =
        first.baselineCachePath(SystemPreset::DualCore2Ch, w);
    ASSERT_FALSE(path.empty());
    ASSERT_TRUE(std::filesystem::exists(path));
    {
        std::ofstream os(path, std::ios::binary | std::ios::trunc);
        os << "not a baseline";
    }

    ExperimentRunner second(kTestScale);
    second.setBaselineCacheDir(dir.string());
    const auto &again = second.baseline(SystemPreset::DualCore2Ch, w);
    EXPECT_EQ(second.baselineDiskLoads(), 0u);
    EXPECT_EQ(second.baselineComputeCount(), 1u);
    EXPECT_EQ(again.totalActivations, base.totalActivations);
    EXPECT_EQ(again.execCycles, base.execCycles);

    std::filesystem::remove_all(dir);
}

TEST(SweepDiskCache, ScaleMismatchMissesCache)
{
    const auto dir = freshCacheDir("sweep_cache_scale");

    WorkloadSpec w;
    w.name = "comm1";
    ExperimentRunner first(kTestScale);
    first.setBaselineCacheDir(dir.string());
    first.baseline(SystemPreset::DualCore2Ch, w);

    ExperimentRunner other(0.03);
    other.setBaselineCacheDir(dir.string());
    other.baseline(SystemPreset::DualCore2Ch, w);
    EXPECT_EQ(other.baselineDiskLoads(), 0u)
        << "a different scale must not reuse cached streams";
    EXPECT_EQ(other.baselineComputeCount(), 1u);

    std::filesystem::remove_all(dir);
}

TEST(SweepDiskCache, FileNameEncodesKeyAndScale)
{
    const auto a = baselineCacheFileName("0/comm1/42", 0.02);
    const auto b = baselineCacheFileName("0/comm2/42", 0.02);
    const auto c = baselineCacheFileName("0/comm1/42", 0.05);
    EXPECT_NE(a, b);
    EXPECT_NE(a, c);
    EXPECT_EQ(a, baselineCacheFileName("0/comm1/42", 0.02));
    EXPECT_EQ(a.find('/'), std::string::npos)
        << "file name must be path-safe, got " << a;
}

} // namespace catsim
