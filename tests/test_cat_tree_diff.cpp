/**
 * @file
 * Differential tests: the flattened `CatTree` must be bit-identical to
 * the frozen pointer-chasing `ReferenceCatTree` (the pre-flattening
 * implementation kept as an oracle in src/core/reference_cat_tree.*).
 *
 * Every paper figure is a function of per-access observables (refresh
 * ranges, split/merge events, sramAccesses), so equality is asserted
 * per access, not just on aggregates, across random traffic, hammer
 * attacks, phase-shifting hot sets, epoch resets, and weight-driven
 * reconfiguration churn.
 */

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/cat_tree.hpp"
#include "core/reference_cat_tree.hpp"
#include "core/split_thresholds.hpp"

namespace catsim
{

namespace
{

CatTree::Params
makeParams(RowAddr rows, std::uint32_t M, std::uint32_t L,
           std::uint32_t T, bool weights)
{
    CatTree::Params p;
    p.numRows = rows;
    p.numCounters = M;
    p.maxLevels = L;
    p.refreshThreshold = T;
    p.splitThresholds = computeSplitThresholds(M, L, T);
    p.enableWeights = weights;
    return p;
}

/** Assert every AccessResult field matches; returns false on first
 *  mismatch so callers can abort the stream with context. */
::testing::AssertionResult
sameResult(const CatTree::AccessResult &a,
           const CatTree::AccessResult &b)
{
    if (a.refreshed != b.refreshed)
        return ::testing::AssertionFailure() << "refreshed differs";
    if (a.lo != b.lo || a.hi != b.hi)
        return ::testing::AssertionFailure()
               << "range [" << a.lo << "," << a.hi << "] vs ["
               << b.lo << "," << b.hi << "]";
    if (a.rowsRefreshed != b.rowsRefreshed)
        return ::testing::AssertionFailure() << "rowsRefreshed "
               << a.rowsRefreshed << " vs " << b.rowsRefreshed;
    if (a.sramAccesses != b.sramAccesses)
        return ::testing::AssertionFailure() << "sramAccesses "
               << a.sramAccesses << " vs " << b.sramAccesses;
    if (a.didSplit != b.didSplit)
        return ::testing::AssertionFailure() << "didSplit differs";
    if (a.didReconfigure != b.didReconfigure)
        return ::testing::AssertionFailure()
               << "didReconfigure differs";
    if (a.leafDepth != b.leafDepth)
        return ::testing::AssertionFailure() << "leafDepth "
               << a.leafDepth << " vs " << b.leafDepth;
    return ::testing::AssertionSuccess();
}

/** Compare all non-mutating probes on a sample of rows. */
void
compareProbes(const CatTree &fast, const ReferenceCatTree &ref,
              RowAddr rows)
{
    ASSERT_EQ(fast.activeCounters(), ref.activeCounters());
    ASSERT_EQ(fast.totalSplits(), ref.totalSplits());
    ASSERT_EQ(fast.totalMerges(), ref.totalMerges());
    ASSERT_EQ(fast.maxLeafDepth(), ref.maxLeafDepth());
    for (RowAddr r = 0; r < rows; r += rows / 64) {
        ASSERT_EQ(fast.leafDepth(r), ref.leafDepth(r)) << "row " << r;
        ASSERT_EQ(fast.counterValue(r), ref.counterValue(r))
            << "row " << r;
        ASSERT_EQ(fast.leafRange(r), ref.leafRange(r)) << "row " << r;
        ASSERT_EQ(fast.leafWeight(r), ref.leafWeight(r))
            << "row " << r;
    }
    std::string why;
    ASSERT_TRUE(fast.checkInvariants(&why)) << why;
    ASSERT_TRUE(ref.checkInvariants(&why)) << why;
}

/** Drive both trees with one row stream, asserting per access. */
void
runDifferential(CatTree &fast, ReferenceCatTree &ref,
                const std::vector<RowAddr> &stream, RowAddr rows,
                int probe_every = 20000)
{
    int sinceProbe = 0;
    for (std::size_t i = 0; i < stream.size(); ++i) {
        const auto a = fast.access(stream[i]);
        const auto b = ref.access(stream[i]);
        ASSERT_TRUE(sameResult(a, b))
            << "access " << i << " row " << stream[i];
        if (++sinceProbe >= probe_every) {
            sinceProbe = 0;
            compareProbes(fast, ref, rows);
            if (::testing::Test::HasFatalFailure())
                return;
        }
    }
    compareProbes(fast, ref, rows);
}

/** Mixed adversarial stream: hammer pairs, phase-shifting hot sets,
 *  uniform background - the patterns the paper's attacks use. */
std::vector<RowAddr>
adversarialStream(RowAddr rows, std::uint64_t seed, std::size_t n)
{
    std::vector<RowAddr> s;
    s.reserve(n);
    Xoshiro256StarStar rng(seed);
    RowAddr hot = static_cast<RowAddr>(rng.nextBounded(rows));
    for (std::size_t i = 0; i < n; ++i) {
        if (i % (n / 8) == 0) // shift the hot set periodically
            hot = static_cast<RowAddr>(rng.nextBounded(rows));
        const double u = rng.nextDouble();
        if (u < 0.45)
            s.push_back(hot);
        else if (u < 0.6) // double-sided pair around the hot row
            s.push_back(hot + 2 < rows ? hot + 2 : hot);
        else if (u < 0.8)
            s.push_back(static_cast<RowAddr>(rng.nextBounded(64)));
        else
            s.push_back(static_cast<RowAddr>(rng.nextBounded(rows)));
    }
    return s;
}

} // namespace

/** Grid over (M, extra levels, T, weights) like the property test. */
class CatTreeDiff
    : public ::testing::TestWithParam<
          std::tuple<std::uint32_t, std::uint32_t, std::uint32_t, bool>>
{
};

TEST_P(CatTreeDiff, BitIdenticalOnAdversarialStreams)
{
    const auto [M, extraLevels, T, weights] = GetParam();
    std::uint32_t m = 0;
    for (std::uint32_t v = M; v > 1; v >>= 1)
        ++m;
    const std::uint32_t L = m + extraLevels;
    const RowAddr rows = 65536;
    if ((1u << (L - 1)) > rows)
        GTEST_SKIP();

    const auto params = makeParams(rows, M, L, T, weights);
    CatTree fast(params);
    ReferenceCatTree ref(params);
    runDifferential(fast, ref,
                    adversarialStream(rows, M * 1009 + L, 150000),
                    rows);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CatTreeDiff,
    ::testing::Combine(::testing::Values(2u, 4u, 64u, 128u),
                       ::testing::Values(2u, 5u),
                       ::testing::Values(1024u, 32768u),
                       ::testing::Bool()));

TEST(CatTreeDiffPow2, GeneralizationKeepsPow2BitIdentical)
{
    // The non-power-of-two M generalization (uneven pre-split,
    // jump-table pre-sizing, pool hooks) must leave every power-of-two
    // configuration with the default schedule byte-for-byte on the
    // frozen oracle's path - the reference tree never learned about
    // any of it.
    const RowAddr rows = 65536;
    for (std::uint32_t M : {4u, 32u, 64u}) {
        for (bool weights : {false, true}) {
            const auto params = makeParams(rows, M, 11, 4096, weights);
            CatTree fast(params);
            ReferenceCatTree ref(params);
            runDifferential(fast, ref,
                            adversarialStream(rows, 77 + M, 120000),
                            rows);
            if (::testing::Test::HasFatalFailure())
                return;
        }
    }
}

TEST(CatTreeDiffEpochs, ResetAndResetCountsOnlyStayIdentical)
{
    // Interleave PRCAT-style full resets and DRCAT-style count-only
    // resets with traffic; the learned shape and the lazy weight decay
    // must survive both exactly.
    const auto params = makeParams(65536, 32, 10, 2048, true);
    CatTree fast(params);
    ReferenceCatTree ref(params);
    Xoshiro256StarStar rng(11);
    for (int epoch = 0; epoch < 12; ++epoch) {
        runDifferential(fast, ref,
                        adversarialStream(65536, 500 + epoch, 30000),
                        65536, 10000);
        if (HasFatalFailure())
            return;
        if (epoch % 3 == 2) {
            fast.reset();
            ref.reset();
        } else {
            fast.resetCountsOnly();
            ref.resetCountsOnly();
        }
    }
    compareProbes(fast, ref, 65536);
}

TEST(CatTreeDiffWeights, LazyDecayExactUnderRefreshStorms)
{
    // Tiny threshold + many counters: thousands of refreshes, so the
    // reference decrements every weight O(M) times while the flat tree
    // only advances its ordinal.  Every materialized weight must still
    // match, including after long cold periods (ordinal far beyond any
    // stamp).
    const auto params = makeParams(65536, 128, 12, 512, true);
    CatTree fast(params);
    ReferenceCatTree ref(params);
    Xoshiro256StarStar rng(13);
    std::vector<RowAddr> storm;
    storm.reserve(400000);
    for (int burst = 0; burst < 40; ++burst) {
        const RowAddr hot =
            static_cast<RowAddr>(rng.nextBounded(65536));
        for (int i = 0; i < 9000; ++i)
            storm.push_back(rng.nextDouble() < 0.85
                ? hot
                : static_cast<RowAddr>(rng.nextBounded(65536)));
        for (int i = 0; i < 1000; ++i) // cold tail: pure decay
            storm.push_back(
                static_cast<RowAddr>(rng.nextBounded(65536)));
    }
    runDifferential(fast, ref, storm, 65536, 25000);
    EXPECT_GT(fast.totalMerges(), 0u)
        << "storm must actually exercise reconfiguration";
    // Weight probes on every group, not just the sampled rows.
    for (RowAddr r = 0; r < 65536; r += 512)
        EXPECT_EQ(fast.leafWeight(r), ref.leafWeight(r)) << r;
}

TEST(CatTreeDiffChurn, InvariantsAndDepthAfterReconfigurationChurn)
{
    // Rotate hot spots so merges and splits fight each other; after
    // every phase the flat tree's structural indexes (jump table,
    // stored depths, candidate bitset) must still validate and the
    // deepest leaf must match the oracle.
    const auto params = makeParams(65536, 16, 9, 512, true);
    CatTree fast(params);
    ReferenceCatTree ref(params);
    Xoshiro256StarStar rng(17);
    for (int phase = 0; phase < 14; ++phase) {
        const RowAddr hot =
            static_cast<RowAddr>(rng.nextBounded(65536));
        std::vector<RowAddr> stream;
        stream.reserve(25000);
        for (int i = 0; i < 25000; ++i)
            stream.push_back(rng.nextDouble() < 0.8
                ? hot
                : static_cast<RowAddr>(rng.nextBounded(65536)));
        runDifferential(fast, ref, stream, 65536, 12500);
        if (HasFatalFailure())
            return;
        std::string why;
        ASSERT_TRUE(fast.checkInvariants(&why))
            << "phase " << phase << ": " << why;
        ASSERT_EQ(fast.maxLeafDepth(), ref.maxLeafDepth())
            << "phase " << phase;
    }
    EXPECT_GT(fast.totalMerges(), 4u);
}

} // namespace catsim
