/**
 * @file
 * Tests for the fleet-scale shard layer (sim/shard): plan alignment,
 * shard-count and job-count bit-identity against the unsharded replay,
 * streaming trace replay, checkpoint resume, and keep-going
 * degradation under injected shard faults.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "common/fault_injection.hpp"
#include "sim/shard.hpp"

namespace catsim
{

namespace
{

// Shard count, job count, checkpointing, keep-going and fail-points
// must come from the tests themselves, not the invoking environment.
const bool kEnvScrubbed = [] {
    ::unsetenv("CATSIM_JOBS");
    ::unsetenv("CATSIM_SHARDS");
    ::unsetenv("CATSIM_NUMA_PIN");
    ::unsetenv("CATSIM_CHECKPOINT");
    ::unsetenv("CATSIM_SWEEP_KEEP_GOING");
    fault::installFailpoints("");
    return true;
}();

struct FailpointGuard
{
    ~FailpointGuard() { fault::installFailpoints(""); }
};

struct EnvVarGuard
{
    explicit EnvVarGuard(const char *name) : name_(name) {}
    ~EnvVarGuard() { ::unsetenv(name_); }
    const char *name_;
};

std::filesystem::path
freshDir(const std::string &name)
{
    const auto dir =
        std::filesystem::temp_directory_path() / ("catsim_" + name);
    std::filesystem::remove_all(dir);
    return dir;
}

constexpr RowAddr kRows = 65536;
constexpr std::uint32_t kBanks = 16;

SchemeConfig
prcatConfig()
{
    SchemeConfig cfg;
    cfg.kind = SchemeKind::Prcat;
    cfg.numCounters = 16;
    cfg.maxLevels = 11;
    cfg.threshold = 2048;
    return cfg;
}

/**
 * Deterministic per-global-bank source: every shard count builds the
 * same source for the same bank.  Banks where bank % 8 < 2 run "hot"
 * (10x the activations) - the attacked-bank skew the work stealing
 * exists for.
 */
std::unique_ptr<ActivationSource>
makeSkewedSource(std::uint32_t bank)
{
    AttackSourceParams p;
    p.numRows = kRows;
    p.targets = {RowAddr(100 + bank), RowAddr(500 + bank)};
    p.actsPerEpoch = (bank % 8 < 2) ? 20000 : 2000;
    p.epochs = 2;
    p.seed = 1000 + bank;
    return std::make_unique<SyntheticAttackSource>(p);
}

/** Unsharded oracle: all banks through one replaySources call. */
ReplayResult
unshardedRun(const SchemeConfig &cfg)
{
    std::vector<std::unique_ptr<ActivationSource>> sources;
    for (std::uint32_t b = 0; b < kBanks; ++b)
        sources.push_back(makeSkewedSource(b));
    return replaySources(sources, cfg, kRows);
}

void
expectSameReplay(const ReplayResult &a, const ReplayResult &b,
                 const std::string &what)
{
    EXPECT_EQ(a.stats.activations, b.stats.activations) << what;
    EXPECT_EQ(a.stats.refreshEvents, b.stats.refreshEvents) << what;
    EXPECT_EQ(a.stats.victimRowsRefreshed, b.stats.victimRowsRefreshed)
        << what;
    EXPECT_EQ(a.stats.sramAccesses, b.stats.sramAccesses) << what;
    EXPECT_EQ(a.stats.prngBits, b.stats.prngBits) << what;
    EXPECT_EQ(a.stats.splits, b.stats.splits) << what;
    EXPECT_EQ(a.stats.merges, b.stats.merges) << what;
    EXPECT_EQ(a.stats.epochResets, b.stats.epochResets) << what;
    EXPECT_EQ(a.stats.counterDramReads, b.stats.counterDramReads)
        << what;
    EXPECT_EQ(a.stats.counterDramWrites, b.stats.counterDramWrites)
        << what;
    EXPECT_EQ(a.banks, b.banks) << what;
    EXPECT_EQ(a.epochs, b.epochs) << what;
}

} // namespace

TEST(ShardPlan, CoversAllBanksContiguously)
{
    const ShardPlan plan = ShardPlan::make(64, 4);
    ASSERT_EQ(plan.numShards(), 4u);
    std::uint32_t next = 0;
    for (const ShardRange &r : plan.shards()) {
        EXPECT_EQ(r.firstBank, next);
        EXPECT_GT(r.numBanks, 0u);
        next += r.numBanks;
    }
    EXPECT_EQ(next, 64u);
    EXPECT_EQ(plan.spec(), "banks=64/shards=4");
}

TEST(ShardPlan, BoundariesAlignToPoolGroups)
{
    // 10 groups of 8 banks over 3 shards: every boundary must sit on a
    // multiple of 8, and shard sizes must balance to within one group.
    const ShardPlan plan = ShardPlan::make(80, 3, 8);
    ASSERT_EQ(plan.numShards(), 3u);
    std::uint32_t next = 0;
    for (const ShardRange &r : plan.shards()) {
        EXPECT_EQ(r.firstBank % 8, 0u);
        EXPECT_EQ(r.firstBank, next);
        EXPECT_GE(r.numBanks, 16u);
        EXPECT_LE(r.numBanks, 32u);
        next += r.numBanks;
    }
    EXPECT_EQ(next, 80u);
}

TEST(ShardPlan, ClampsShardCountToGroups)
{
    // Only 2 pool groups exist; asking for 16 shards yields 2.
    const ShardPlan plan = ShardPlan::make(8, 16, 4);
    EXPECT_EQ(plan.numShards(), 2u);
    // And a short tail group still gets covered.
    const ShardPlan tail = ShardPlan::make(10, 3, 4);
    std::uint32_t covered = 0;
    for (const ShardRange &r : tail.shards())
        covered += r.numBanks;
    EXPECT_EQ(covered, 10u);
}

TEST(Shard, RunMatchesUnshardedAtEveryShardCount)
{
    const SchemeConfig cfg = prcatConfig();
    const ReplayResult oracle = unshardedRun(cfg);
    for (std::uint32_t shards : {1u, 2u, 4u, 8u}) {
        ShardedSim sim(cfg, kRows, ShardPlan::make(kBanks, shards), 4);
        const FleetResult fleet = sim.run(makeSkewedSource, "t");
        expectSameReplay(fleet.total, oracle,
                         "shards=" + std::to_string(shards));
        EXPECT_TRUE(fleet.errors.empty());
    }
}

TEST(Shard, RunMatchesAcrossJobCounts)
{
    const SchemeConfig cfg = prcatConfig();
    ShardedSim serial(cfg, kRows, ShardPlan::make(kBanks, 4), 1);
    ShardedSim parallel(cfg, kRows, ShardPlan::make(kBanks, 4), 8);
    const FleetResult a = serial.run(makeSkewedSource, "t");
    const FleetResult b = parallel.run(makeSkewedSource, "t");
    expectSameReplay(a.total, b.total, "jobs 1 vs 8");
    for (std::size_t i = 0; i < a.perShard.size(); ++i)
        expectSameReplay(a.perShard[i], b.perShard[i],
                         "shard " + std::to_string(i));
}

TEST(Shard, PooledConfigShardsAlongPoolGroups)
{
    SchemeConfig cfg = prcatConfig();
    cfg.banksPerPool = 8;
    const ReplayResult oracle = unshardedRun(cfg);
    // 16 banks / 8-bank pools: 2 groups, so at most 2 shards - and the
    // plan must place the boundary exactly between the pools.
    ShardedSim sim(cfg, kRows,
                   ShardPlan::make(kBanks, 2, cfg.banksPerPool), 2);
    ASSERT_EQ(sim.plan().shards()[1].firstBank, 8u);
    const FleetResult fleet = sim.run(makeSkewedSource, "t");
    expectSameReplay(fleet.total, oracle, "pooled shards=2");
}

TEST(ShardDeath, MisalignedPoolShardIsFatal)
{
    SchemeConfig cfg = prcatConfig();
    cfg.banksPerPool = 8;
    cfg.bundleWidth = 1;
    EXPECT_EXIT(makeBankSchemes(cfg, kRows, 8, 4),
                ::testing::ExitedWithCode(1), "splits a banksPerPool");
}

TEST(Shard, FleetCheckpointResumesByteIdentically)
{
    const auto dir = freshDir("fleet_ckpt");
    EnvVarGuard env("CATSIM_CHECKPOINT");
    ::setenv("CATSIM_CHECKPOINT", dir.c_str(), 1);

    const SchemeConfig cfg = prcatConfig();
    ShardedSim first(cfg, kRows, ShardPlan::make(kBanks, 4), 2);
    const FleetResult cold = first.run(makeSkewedSource, "ckpt");
    EXPECT_EQ(cold.resumedShards, 0u);

    // A fresh ShardedSim (same params, same tag) replays every shard
    // from the journal - no simulation work, identical bytes.
    ShardedSim second(cfg, kRows, ShardPlan::make(kBanks, 4), 2);
    const FleetResult warm = second.run(makeSkewedSource, "ckpt");
    EXPECT_EQ(warm.resumedShards, 4u);
    expectSameReplay(warm.total, cold.total, "resumed fleet");
    for (std::size_t i = 0; i < cold.perShard.size(); ++i)
        expectSameReplay(warm.perShard[i], cold.perShard[i],
                         "resumed shard " + std::to_string(i));
    std::filesystem::remove_all(dir);
}

TEST(Shard, PartialJournalRerunsOnlyMissingShards)
{
    const auto dir = freshDir("fleet_partial");
    EnvVarGuard env("CATSIM_CHECKPOINT");
    EnvVarGuard keep("CATSIM_SWEEP_KEEP_GOING");
    ::setenv("CATSIM_CHECKPOINT", dir.c_str(), 1);
    const SchemeConfig cfg = prcatConfig();
    const ReplayResult oracle = unshardedRun(cfg);

    // Kill shard 0 permanently (both attempts) with jobs=1 so the
    // armed hits deterministically belong to the first pending shard.
    // Failed shards are never journaled.
    {
        FailpointGuard fp;
        ::setenv("CATSIM_SWEEP_KEEP_GOING", "1", 1);
        fault::installFailpoints("shard_task@1,shard_task@2");
        ShardedSim crashy(cfg, kRows, ShardPlan::make(kBanks, 4), 1);
        const FleetResult broken = crashy.run(makeSkewedSource, "part");
        ASSERT_EQ(broken.errors.size(), 1u);
        EXPECT_EQ(broken.errors[0].shard, 0u);
        EXPECT_EQ(broken.errors[0].attempts, 2);
        EXPECT_LT(broken.total.banks, kBanks);
    }
    ::unsetenv("CATSIM_SWEEP_KEEP_GOING");

    // The re-run resumes the 3 journaled shards and computes only the
    // missing one; the merged fleet matches the unsharded oracle.
    ShardedSim resumed(cfg, kRows, ShardPlan::make(kBanks, 4), 1);
    const FleetResult fixed = resumed.run(makeSkewedSource, "part");
    EXPECT_EQ(fixed.resumedShards, 3u);
    expectSameReplay(fixed.total, oracle, "healed fleet");
    std::filesystem::remove_all(dir);
}

TEST(Shard, KeepGoingRetriesTransientShardFaultOnce)
{
    FailpointGuard fp;
    EnvVarGuard keep("CATSIM_SWEEP_KEEP_GOING");
    ::setenv("CATSIM_SWEEP_KEEP_GOING", "1", 1);
    // Only the FIRST shard_task hit is armed: attempt 1 throws,
    // attempt 2 succeeds, so the fleet completes with no errors.
    fault::installFailpoints("shard_task@1");
    const SchemeConfig cfg = prcatConfig();
    ShardedSim sim(cfg, kRows, ShardPlan::make(kBanks, 4), 1);
    const FleetResult fleet = sim.run(makeSkewedSource, "t");
    EXPECT_TRUE(fleet.errors.empty());
    expectSameReplay(fleet.total, unshardedRun(cfg), "after retry");
}

TEST(Shard, FailFastNamesTheFailingShard)
{
    FailpointGuard fp;
    fault::installFailpoints("shard_task@1");
    const SchemeConfig cfg = prcatConfig();
    ShardedSim sim(cfg, kRows, ShardPlan::make(kBanks, 4), 1);
    try {
        sim.run(makeSkewedSource, "t");
        FAIL() << "expected rethrow";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("shard 0"),
                  std::string::npos)
            << e.what();
    }
}

namespace
{

/** Skewed synthetic native trace hitting every bank of @p geom. */
std::string
writeSkewedTrace(const DramGeometry &geom, const AddressMapper &mapper,
                 std::size_t records, const std::string &name)
{
    const std::string path = ::testing::TempDir() + "/" + name;
    std::ofstream os(path);
    std::uint64_t state = 12345;
    for (std::size_t i = 0; i < records; ++i) {
        state = state * 6364136223846793005ULL + 1442695040888963407ULL;
        MappedAddr m;
        // Two hot banks per 8-bank rank, like the source-driven skew.
        const std::uint32_t flat = (state >> 33) % 4 == 0
                                       ? (state >> 17) % 2
                                       : (state >> 17) % geom.totalBanks();
        m.channel = flat / (geom.ranksPerChannel * geom.banksPerRank);
        m.rank = 0;
        m.bank = flat % geom.banksPerRank;
        m.row = (state >> 40) % 4096;
        m.col = 0;
        os << "1 R 0x" << std::hex << mapper.compose(m) << std::dec
           << '\n';
    }
    return path;
}

} // namespace

TEST(Shard, StreamedTraceReplayMatchesInRamPath)
{
    const DramGeometry geom = DramGeometry::dualCore2Ch();
    const AddressMapper mapper(geom,
                               MappingPolicy::RowRankBankChanCol);
    const std::string path =
        writeSkewedTrace(geom, mapper, 60000, "fleet_trace.trc");
    SchemeConfig cfg = prcatConfig();

    // Oracle: fully materialized streams through replayActivations.
    VectorTrace whole = readTraceFile(path);
    const auto streams = traceBankStreams(whole, mapper, geom, 1000);
    const ReplayResult oracle =
        replayActivations(streams, cfg, geom.rowsPerBank);

    for (std::uint32_t shards : {1u, 4u}) {
        StreamingTraceReader reader(path, TraceFormat::Native, 4096);
        ShardedSim sim(cfg, geom.rowsPerBank,
                       ShardPlan::make(geom.totalBanks(), shards), 4);
        const FleetResult fleet =
            sim.replayTrace(reader, mapper, geom, 1000, 8192, "t");
        expectSameReplay(fleet.total, oracle,
                         "trace shards=" + std::to_string(shards));
        // The whole point: the 60k-record trace was never resident.
        EXPECT_LE(reader.peakBuffered(), 4096u);
    }
    std::remove(path.c_str());
}

TEST(Shard, StreamedTraceReplayCheckpointResumes)
{
    const auto dir = freshDir("fleet_trace_ckpt");
    EnvVarGuard env("CATSIM_CHECKPOINT");
    ::setenv("CATSIM_CHECKPOINT", dir.c_str(), 1);
    const DramGeometry geom = DramGeometry::dualCore2Ch();
    const AddressMapper mapper(geom,
                               MappingPolicy::RowRankBankChanCol);
    const std::string path =
        writeSkewedTrace(geom, mapper, 20000, "fleet_trace_ck.trc");
    SchemeConfig cfg = prcatConfig();

    StreamingTraceReader reader(path, TraceFormat::Native, 4096);
    ShardedSim first(cfg, geom.rowsPerBank,
                     ShardPlan::make(geom.totalBanks(), 4), 2);
    const FleetResult cold =
        first.replayTrace(reader, mapper, geom, 1000, 8192, "tr");
    EXPECT_EQ(cold.resumedShards, 0u);

    // Resume decodes all four shards without re-opening the trace: a
    // reader pointing at a nonexistent file would die if touched.
    ShardedSim second(cfg, geom.rowsPerBank,
                      ShardPlan::make(geom.totalBanks(), 4), 2);
    std::remove(path.c_str());
    VectorTrace empty;
    const FleetResult warm =
        second.replayTrace(empty, mapper, geom, 1000, 8192, "tr");
    EXPECT_EQ(warm.resumedShards, 4u);
    expectSameReplay(warm.total, cold.total, "trace resume");
    std::filesystem::remove_all(dir);
}

TEST(ShardDeath, PooledStreamedTraceIsFatal)
{
    const DramGeometry geom = DramGeometry::dualCore2Ch();
    const AddressMapper mapper(geom,
                               MappingPolicy::RowRankBankChanCol);
    SchemeConfig cfg = prcatConfig();
    cfg.banksPerPool = 8;
    ShardedSim sim(cfg, geom.rowsPerBank,
                   ShardPlan::make(geom.totalBanks(), 2,
                                   cfg.banksPerPool),
                   1);
    VectorTrace empty;
    EXPECT_EXIT(sim.replayTrace(empty, mapper, geom, 0, 8192, "t"),
                ::testing::ExitedWithCode(1),
                "pooled round-robin interleave");
}

TEST(Shard, DefaultShardsHonoursEnv)
{
    EnvVarGuard env("CATSIM_SHARDS");
    ::unsetenv("CATSIM_SHARDS");
    EXPECT_EQ(defaultShards(), 1u);
    ::setenv("CATSIM_SHARDS", "8", 1);
    EXPECT_EQ(defaultShards(), 8u);
    for (const char *bad : {"0", "-3", "x", ""}) {
        ::setenv("CATSIM_SHARDS", bad, 1);
        EXPECT_EQ(defaultShards(), 1u) << "input: " << bad;
    }
}

} // namespace catsim
