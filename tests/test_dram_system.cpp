/**
 * @file
 * Tests for the aggregate DRAM device model.
 */

#include <gtest/gtest.h>

#include "dram/dram_system.hpp"

namespace catsim
{

namespace
{

DramSystem
makeSystem()
{
    return DramSystem(DramGeometry::dualCore2Ch(),
                      DramTiming::ddr3_1600());
}

} // namespace

TEST(DramSystem, IndependentBanksDoNotBlock)
{
    DramSystem d = makeSystem();
    const BankId b0{0, 0, 0}, b1{0, 0, 1};
    const Cycle t0 = d.earliestIssue(b0, 0);
    d.access(b0, 1, false, t0);
    // A different bank only pays rank tRRD, not tRC.
    const Cycle t1 = d.earliestIssue(b1, 0);
    EXPECT_LE(t1, d.timing().tRRD);
}

TEST(DramSystem, SameBankSerializedByTrc)
{
    DramSystem d = makeSystem();
    const BankId b{0, 0, 0};
    const Cycle t0 = d.earliestIssue(b, 0);
    d.access(b, 1, false, t0);
    const Cycle t1 = d.earliestIssue(b, 0);
    EXPECT_GE(t1, t0 + d.timing().tRC);
}

TEST(DramSystem, ChannelsAreIndependent)
{
    DramSystem d = makeSystem();
    const BankId c0{0, 0, 0}, c1{1, 0, 0};
    d.access(c0, 1, false, d.earliestIssue(c0, 0));
    EXPECT_EQ(d.earliestIssue(c1, 0), 0u);
}

TEST(DramSystem, DataBusSerializesBursts)
{
    DramSystem d = makeSystem();
    // Two different banks on one channel: the second burst must wait
    // for the first one's data bus slot.
    const BankId b0{0, 0, 0}, b1{0, 0, 1};
    const Cycle t0 = d.earliestIssue(b0, 0);
    const Cycle done0 = d.access(b0, 1, false, t0);
    const Cycle t1 = d.earliestIssue(b1, 0);
    const Cycle done1 = d.access(b1, 1, false, t1);
    EXPECT_GE(done1, done0 + d.timing().tBURST);
}

TEST(DramSystem, VictimRefreshDelaysLaterAccess)
{
    DramSystem d = makeSystem();
    const BankId b{0, 0, 0};
    const Cycle freeAt = d.victimRefresh(b, 100, 0);
    EXPECT_EQ(freeAt, 100u * d.timing().tRC);
    EXPECT_GE(d.earliestIssue(b, 0), freeAt);
    EXPECT_EQ(d.totalVictimRowsRefreshed(), 100u);
}

TEST(DramSystem, AutoRefreshBlocksWholeRank)
{
    DramSystem d = makeSystem();
    const auto &t = d.timing();
    const BankId b0{0, 0, 0}, b7{0, 0, 7};
    // Ask for an issue slot just after the first tREFI boundary: the
    // rank is mid-refresh and every bank must wait until tREFI + tRFC.
    const Cycle probe = t.tREFI + 1;
    EXPECT_GE(d.earliestIssue(b0, probe), t.tREFI + t.tRFC);
    EXPECT_GE(d.earliestIssue(b7, probe), t.tREFI + t.tRFC);
}

TEST(DramSystem, ActivationCounting)
{
    DramSystem d = makeSystem();
    const BankId b{0, 0, 3};
    Cycle now = 0;
    for (int i = 0; i < 10; ++i) {
        now = d.earliestIssue(b, now);
        d.access(b, static_cast<RowAddr>(i), i % 2 == 0, now);
    }
    EXPECT_EQ(d.totalActivations(), 10u);
    EXPECT_EQ(d.bank(b).activations(), 10u);
}

} // namespace catsim
