/**
 * @file
 * Tests for trace records, streams and file I/O.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "trace/trace.hpp"

namespace catsim
{

TEST(VectorTrace, PushAndIterate)
{
    VectorTrace t;
    t.push({10, false, 0x1000});
    t.push({0, true, 0x2000});
    TraceRecord r;
    ASSERT_TRUE(t.next(r));
    EXPECT_EQ(r.gap, 10u);
    EXPECT_FALSE(r.isWrite);
    ASSERT_TRUE(t.next(r));
    EXPECT_TRUE(r.isWrite);
    EXPECT_EQ(r.addr, 0x2000u);
    EXPECT_FALSE(t.next(r));
}

TEST(VectorTrace, Rewind)
{
    VectorTrace t;
    t.push({1, false, 0x10});
    TraceRecord r;
    ASSERT_TRUE(t.next(r));
    ASSERT_FALSE(t.next(r));
    t.rewind();
    ASSERT_TRUE(t.next(r));
    EXPECT_EQ(r.addr, 0x10u);
}

TEST(TraceFile, RoundTrip)
{
    const std::string path = ::testing::TempDir() + "/catsim_trace.txt";
    VectorTrace t;
    t.push({10, false, 0x12340});
    t.push({0, true, 0xABCDE0});
    t.push({999, false, 0x40});
    EXPECT_EQ(writeTraceFile(path, t), 3u);

    VectorTrace back = readTraceFile(path);
    ASSERT_EQ(back.size(), 3u);
    const auto &recs = back.records();
    EXPECT_EQ(recs[0].gap, 10u);
    EXPECT_EQ(recs[0].addr, 0x12340u);
    EXPECT_FALSE(recs[0].isWrite);
    EXPECT_TRUE(recs[1].isWrite);
    EXPECT_EQ(recs[2].gap, 999u);
    std::remove(path.c_str());
}

TEST(TraceFileDeath, MissingFile)
{
    EXPECT_EXIT(readTraceFile("/nonexistent/trace.txt"),
                ::testing::ExitedWithCode(1), "cannot open");
}

} // namespace catsim
