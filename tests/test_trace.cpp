/**
 * @file
 * Tests for trace records, streams and file I/O.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "trace/trace.hpp"

namespace catsim
{

TEST(VectorTrace, PushAndIterate)
{
    VectorTrace t;
    t.push({10, false, 0x1000});
    t.push({0, true, 0x2000});
    TraceRecord r;
    ASSERT_TRUE(t.next(r));
    EXPECT_EQ(r.gap, 10u);
    EXPECT_FALSE(r.isWrite);
    ASSERT_TRUE(t.next(r));
    EXPECT_TRUE(r.isWrite);
    EXPECT_EQ(r.addr, 0x2000u);
    EXPECT_FALSE(t.next(r));
}

TEST(VectorTrace, Rewind)
{
    VectorTrace t;
    t.push({1, false, 0x10});
    TraceRecord r;
    ASSERT_TRUE(t.next(r));
    ASSERT_FALSE(t.next(r));
    t.rewind();
    ASSERT_TRUE(t.next(r));
    EXPECT_EQ(r.addr, 0x10u);
}

TEST(TraceFile, RoundTrip)
{
    const std::string path = ::testing::TempDir() + "/catsim_trace.txt";
    VectorTrace t;
    t.push({10, false, 0x12340});
    t.push({0, true, 0xABCDE0});
    t.push({999, false, 0x40});
    EXPECT_EQ(writeTraceFile(path, t), 3u);

    VectorTrace back = readTraceFile(path);
    ASSERT_EQ(back.size(), 3u);
    const auto &recs = back.records();
    EXPECT_EQ(recs[0].gap, 10u);
    EXPECT_EQ(recs[0].addr, 0x12340u);
    EXPECT_FALSE(recs[0].isWrite);
    EXPECT_TRUE(recs[1].isWrite);
    EXPECT_EQ(recs[2].gap, 999u);
    std::remove(path.c_str());
}

TEST(TraceFile, RoundTripIsExactOverRandomRecords)
{
    // write -> read -> write -> read must reproduce every field
    // exactly, including extreme gaps and high address bits.
    const std::string p1 = ::testing::TempDir() + "/catsim_rt1.txt";
    const std::string p2 = ::testing::TempDir() + "/catsim_rt2.txt";
    VectorTrace t;
    std::uint64_t x = 0x9E3779B97F4A7C15ULL;
    for (int i = 0; i < 500; ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        TraceRecord r;
        r.gap = static_cast<std::uint32_t>(x);
        r.isWrite = (x >> 32) & 1;
        r.addr = x ^ (x << 1);
        t.push(r);
    }
    ASSERT_EQ(writeTraceFile(p1, t), 500u);
    VectorTrace once = readTraceFile(p1);
    ASSERT_EQ(writeTraceFile(p2, once), 500u);
    const VectorTrace twice = readTraceFile(p2);
    ASSERT_EQ(twice.size(), t.size());
    for (std::size_t i = 0; i < t.size(); ++i) {
        EXPECT_EQ(twice.records()[i].gap, t.records()[i].gap) << i;
        EXPECT_EQ(twice.records()[i].isWrite, t.records()[i].isWrite)
            << i;
        EXPECT_EQ(twice.records()[i].addr, t.records()[i].addr) << i;
    }
    std::remove(p1.c_str());
    std::remove(p2.c_str());
}

TEST(TraceFileDeath, MissingFile)
{
    EXPECT_EXIT(readTraceFile("/nonexistent/trace.txt"),
                ::testing::ExitedWithCode(1), "cannot open");
}

TEST(TraceFileDeath, TruncatedRecordRejected)
{
    const std::string path = ::testing::TempDir() + "/catsim_trunc.txt";
    {
        std::ofstream os(path);
        os << "10 R 0x100\n"
           << "12 W\n"; // interrupted mid-record
    }
    EXPECT_EXIT(readTraceFile(path), ::testing::ExitedWithCode(1),
                "bad trace line 2");
    std::remove(path.c_str());
}

TEST(TraceFileDeath, CorruptOpRejected)
{
    const std::string path = ::testing::TempDir() + "/catsim_badop.txt";
    {
        std::ofstream os(path);
        os << "10 X 0x100\n";
    }
    EXPECT_EXIT(readTraceFile(path), ::testing::ExitedWithCode(1),
                "bad op 'X'");
    std::remove(path.c_str());
}

TEST(TraceFileDeath, PartiallyNumericAddressRejected)
{
    const std::string path = ::testing::TempDir() + "/catsim_padr.txt";
    {
        std::ofstream os(path);
        os << "10 R 0x100junk\n";
    }
    EXPECT_EXIT(readTraceFile(path), ::testing::ExitedWithCode(1),
                "bad address");
    std::remove(path.c_str());
}

TEST(TraceFileDeath, GarbageLineRejected)
{
    const std::string path = ::testing::TempDir() + "/catsim_garb.txt";
    {
        std::ofstream os(path);
        os << "not a trace at all\n";
    }
    EXPECT_EXIT(readTraceFile(path), ::testing::ExitedWithCode(1),
                "bad trace line 1");
    std::remove(path.c_str());
}

} // namespace catsim
