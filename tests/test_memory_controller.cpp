/**
 * @file
 * Tests for the memory controller (queues, drains, mitigation hook).
 */

#include <gtest/gtest.h>

#include "controller/memory_controller.hpp"

namespace catsim
{

namespace
{

struct Fixture
{
    Fixture(SchemeKind kind = SchemeKind::None,
            std::uint32_t threshold = 32768)
        : geometry(DramGeometry::dualCore2Ch()),
          timing(DramTiming::ddr3_1600()),
          dram(geometry, timing),
          mapper(geometry, MappingPolicy::RowRankBankChanCol)
    {
        SchemeConfig cfg;
        cfg.kind = kind;
        cfg.numCounters = 64;
        cfg.maxLevels = 11;
        cfg.threshold = threshold;
        mc = std::make_unique<MemoryController>(dram, mapper, cfg);
    }

    Addr
    addrFor(std::uint32_t ch, std::uint32_t bank, RowAddr row,
            std::uint32_t col = 0) const
    {
        MappedAddr m;
        m.channel = ch;
        m.rank = 0;
        m.bank = bank;
        m.row = row;
        m.col = col;
        return mapper.compose(m);
    }

    DramGeometry geometry;
    DramTiming timing;
    DramSystem dram;
    AddressMapper mapper;
    std::unique_ptr<MemoryController> mc;
};

} // namespace

TEST(MemoryController, ReadCompletes)
{
    Fixture f;
    MemRequest req;
    req.addr = f.addrFor(0, 0, 100);
    req.arrival = 0;
    const Cycle done = f.mc->submitRead(req);
    EXPECT_EQ(done,
              f.timing.tRCD + f.timing.tCAS + f.timing.tBURST);
    EXPECT_EQ(f.mc->stats().reads, 1u);
}

TEST(MemoryController, WritesArePosted)
{
    Fixture f;
    MemRequest req;
    req.addr = f.addrFor(0, 0, 100);
    req.isWrite = true;
    req.arrival = 5;
    EXPECT_EQ(f.mc->submitWrite(req), 5u);
    EXPECT_EQ(f.mc->stats().writes, 1u);
    // Not yet issued to DRAM.
    EXPECT_EQ(f.dram.totalActivations(), 0u);
    f.mc->drainAllWrites(10);
    EXPECT_EQ(f.dram.totalActivations(), 1u);
}

TEST(MemoryController, WriteQueueDrainsAtCapacity)
{
    Fixture f;
    for (std::size_t i = 0;
         i <= MemoryController::kWriteQueueCapacity; ++i) {
        MemRequest req;
        req.addr = f.addrFor(0, i % 8, static_cast<RowAddr>(i));
        req.isWrite = true;
        req.arrival = i;
        f.mc->submitWrite(req);
    }
    EXPECT_GE(f.mc->stats().writeDrains, 1u);
    EXPECT_GT(f.dram.totalActivations(), 0u);
}

TEST(MemoryController, SchemeSeesActivations)
{
    Fixture f(SchemeKind::Sca);
    for (int i = 0; i < 10; ++i) {
        MemRequest req;
        req.addr = f.addrFor(0, 0, 42);
        req.arrival = i * 100;
        f.mc->submitRead(req);
    }
    const SchemeStats st = f.mc->combinedSchemeStats();
    EXPECT_EQ(st.activations, 10u);
}

TEST(MemoryController, RefreshTriggerBlocksBank)
{
    // Tiny threshold so a handful of reads triggers a victim refresh.
    Fixture f(SchemeKind::Sca, 512);
    Cycle prevDone = 0;
    bool sawJump = false;
    for (int i = 0; i < 600; ++i) {
        MemRequest req;
        req.addr = f.addrFor(0, 0, 42);
        req.arrival = prevDone;
        const Cycle done = f.mc->submitRead(req);
        if (i > 0 && done > prevDone + 100 * f.timing.tRC)
            sawJump = true;
        prevDone = done;
    }
    EXPECT_GE(f.mc->stats().victimRefreshEvents, 1u);
    EXPECT_TRUE(sawJump)
        << "victim refresh must visibly delay subsequent reads";
    EXPECT_GT(f.dram.totalVictimRowsRefreshed(), 0u);
}

TEST(MemoryController, ObserverSeesStream)
{
    Fixture f(SchemeKind::None);
    std::vector<std::pair<std::uint32_t, RowAddr>> seen;
    f.mc->setActivationObserver(
        [&seen](std::uint32_t bank, RowAddr row) {
            seen.emplace_back(bank, row);
        });
    MemRequest req;
    req.addr = f.addrFor(1, 3, 77);
    req.arrival = 0;
    f.mc->submitRead(req);
    ASSERT_EQ(seen.size(), 1u);
    EXPECT_EQ(seen[0].second, 77u);
    EXPECT_EQ(seen[0].first, (BankId{1, 0, 3}.flat(f.geometry)));
}

TEST(MemoryController, EpochForwardsToSchemes)
{
    Fixture f(SchemeKind::Prcat);
    MemRequest req;
    req.addr = f.addrFor(0, 0, 42);
    req.arrival = 0;
    f.mc->submitRead(req);
    f.mc->onEpoch();
    const SchemeStats st = f.mc->combinedSchemeStats();
    EXPECT_EQ(st.epochResets, f.geometry.totalBanks());
}

TEST(MemoryController, NoSchemeMeansNoRefreshes)
{
    Fixture f(SchemeKind::None, 16);
    for (int i = 0; i < 1000; ++i) {
        MemRequest req;
        req.addr = f.addrFor(0, 0, 42);
        req.arrival = i * 50;
        f.mc->submitRead(req);
    }
    EXPECT_EQ(f.mc->stats().victimRefreshEvents, 0u);
    EXPECT_EQ(f.dram.totalVictimRowsRefreshed(), 0u);
}

} // namespace catsim
