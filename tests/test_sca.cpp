/**
 * @file
 * Tests for Static Counter Assignment (paper Section III-B).
 */

#include <gtest/gtest.h>

#include "core/sca.hpp"

namespace catsim
{

TEST(Sca, NoRefreshBelowThreshold)
{
    Sca sca(65536, 128, 1024);
    for (int i = 0; i < 1023; ++i)
        ASSERT_FALSE(sca.onActivate(100).triggered());
}

TEST(Sca, RefreshesGroupPlusTwoNeighbors)
{
    Sca sca(65536, 128, 1024); // group size 512
    RefreshAction act;
    for (int i = 0; i < 1024; ++i)
        act = sca.onActivate(1000); // group 1: rows 512..1023
    ASSERT_TRUE(act.triggered());
    EXPECT_EQ(act.lo, 511u);
    EXPECT_EQ(act.hi, 1024u);
    EXPECT_EQ(act.rowCount, 512u + 2u);
}

TEST(Sca, EdgeGroupsClamp)
{
    Sca sca(65536, 128, 16);
    RefreshAction act;
    for (int i = 0; i < 16; ++i)
        act = sca.onActivate(0); // first group
    ASSERT_TRUE(act.triggered());
    EXPECT_EQ(act.lo, 0u);
    EXPECT_EQ(act.hi, 512u);
    EXPECT_EQ(act.rowCount, 513u);

    Sca sca2(65536, 128, 16);
    for (int i = 0; i < 16; ++i)
        act = sca2.onActivate(65535); // last group
    ASSERT_TRUE(act.triggered());
    EXPECT_EQ(act.lo, 65023u);
    EXPECT_EQ(act.hi, 65535u);
    EXPECT_EQ(act.rowCount, 513u);
}

TEST(Sca, CounterResetsAfterRefresh)
{
    Sca sca(65536, 64, 8);
    for (int i = 0; i < 8; ++i)
        sca.onActivate(0);
    EXPECT_EQ(sca.counterValue(0), 0u);
    // Needs the full threshold again.
    for (int i = 0; i < 7; ++i)
        ASSERT_FALSE(sca.onActivate(0).triggered());
    EXPECT_TRUE(sca.onActivate(0).triggered());
}

TEST(Sca, GroupsAreIndependent)
{
    Sca sca(65536, 64, 16); // group size 1024
    for (int i = 0; i < 15; ++i)
        sca.onActivate(0);
    for (int i = 0; i < 15; ++i)
        sca.onActivate(2048);
    EXPECT_EQ(sca.counterValue(0), 15u);
    EXPECT_EQ(sca.counterValue(2), 15u);
    EXPECT_EQ(sca.counterValue(1), 0u);
}

TEST(Sca, SharedCounterAggregatesGroupTraffic)
{
    // Two different rows in the same group share one counter - the
    // source of SCA's imprecision.
    Sca sca(65536, 64, 16);
    for (int i = 0; i < 8; ++i)
        ASSERT_FALSE(sca.onActivate(0).triggered());
    for (int i = 0; i < 7; ++i)
        ASSERT_FALSE(sca.onActivate(1023).triggered()); // same group 0
    EXPECT_TRUE(sca.onActivate(500).triggered())
        << "16th access anywhere in the group must trigger";
}

TEST(Sca, EpochResetsCounters)
{
    Sca sca(65536, 64, 16);
    for (int i = 0; i < 10; ++i)
        sca.onActivate(0);
    sca.onEpoch();
    EXPECT_EQ(sca.counterValue(0), 0u);
}

TEST(Sca, StatsAccumulate)
{
    Sca sca(65536, 64, 8);
    for (int i = 0; i < 16; ++i)
        sca.onActivate(0);
    const auto &st = sca.stats();
    EXPECT_EQ(st.activations, 16u);
    EXPECT_EQ(st.sramAccesses, 32u); // 2 per activation
    EXPECT_EQ(st.refreshEvents, 2u);
    EXPECT_EQ(st.victimRowsRefreshed, 2u * (1024u + 1u));
}

TEST(Sca, Name)
{
    Sca sca(65536, 128, 1024);
    EXPECT_EQ(sca.name(), "SCA_128");
}

TEST(ScaDeath, RejectsNonDividingCounters)
{
    EXPECT_EXIT(Sca(65536, 100, 1024), ::testing::ExitedWithCode(1),
                "divide");
}

} // namespace catsim
