/**
 * @file
 * Tests for the split-threshold schedule (paper Section IV-D).
 */

#include <gtest/gtest.h>

#include "core/split_thresholds.hpp"

namespace catsim
{

TEST(SplitThresholds, PaperCalibration64x10)
{
    // Section IV-D: M=64, L=10, T=32768 => T5=5155, T6=10309,
    // T7=12886, T8=16384, T9=T.
    const auto thr = computeSplitThresholds(64, 10, 32768);
    ASSERT_EQ(thr.size(), 10u);
    EXPECT_EQ(thr[5], 5155u);
    EXPECT_EQ(thr[6], 10309u);
    EXPECT_EQ(thr[7], 12886u);
    EXPECT_EQ(thr[8], 16384u);
    EXPECT_EQ(thr[9], 32768u);
    EXPECT_TRUE(splitThresholdsCalibrated(64, 10));
}

TEST(SplitThresholds, CalibrationScalesWithT)
{
    const auto thr = computeSplitThresholds(64, 10, 16384);
    EXPECT_EQ(thr[8], 8192u);
    EXPECT_NEAR(thr[5], 5155.0 / 2.0, 1.0);
    EXPECT_EQ(thr[9], 16384u);
}

TEST(SplitThresholds, FourCounterAnchor)
{
    // Section IV-D example: M=4 => T1 = T/4, T2 = T/2.
    const auto thr = computeSplitThresholds(4, 4, 32768);
    ASSERT_EQ(thr.size(), 4u);
    EXPECT_EQ(thr[1], 32768u / 4);
    EXPECT_EQ(thr[2], 32768u / 2);
    EXPECT_EQ(thr[3], 32768u);
}

TEST(SplitThresholds, GenericRuleNear64x10Anchor)
{
    // The generic rule (used when the calibrated case does not apply)
    // should stay within ~1 % of the published schedule; probe it via
    // the neighboring L=10 configs scaled back.
    const auto cal = computeSplitThresholds(64, 10, 32768);
    // Recompute with the generic path by asking for L=11 and comparing
    // the overlapping shape properties instead of exact values.
    const auto gen = computeSplitThresholds(64, 11, 32768);
    ASSERT_EQ(gen.size(), 11u);
    EXPECT_EQ(gen[9], 16384u);             // T(L-2) = T/2
    EXPECT_EQ(gen[5], gen[6] / 2);         // first = second / 2
    EXPECT_EQ(gen[10], 32768u);
    // Monotone non-decreasing.
    for (std::size_t d = 5; d + 1 < gen.size(); ++d)
        EXPECT_LE(gen[d], gen[d + 1]);
    (void)cal;
}

TEST(SplitThresholds, LastIsAlwaysT)
{
    for (std::uint32_t M : {2u, 4u, 32u, 64u, 128u, 512u}) {
        std::uint32_t m = 0;
        for (std::uint32_t v = M; v > 1; v >>= 1)
            ++m;
        for (std::uint32_t L : {m + 1, m + 3, m + 5}) {
            const auto thr = computeSplitThresholds(M, L, 32768);
            EXPECT_EQ(thr.back(), 32768u) << "M=" << M << " L=" << L;
        }
    }
}

/** Parameterized shape checks over the (M, L, T) grid. */
class ThresholdShapeTest
    : public ::testing::TestWithParam<
          std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>>
{
};

TEST_P(ThresholdShapeTest, MonotoneAndBounded)
{
    const auto [M, extraLevels, T] = GetParam();
    std::uint32_t m = 0;
    for (std::uint32_t v = M; v > 1; v >>= 1)
        ++m;
    const std::uint32_t L = m + extraLevels;
    const auto thr = computeSplitThresholds(M, L, T);
    ASSERT_EQ(thr.size(), L);
    for (std::size_t d = m >= 1 ? m - 1 : 0; d + 1 < L; ++d) {
        EXPECT_LE(thr[d], thr[d + 1]) << "depth " << d;
        EXPECT_GT(thr[d], 0u);
        EXPECT_LE(thr[d], T);
    }
    EXPECT_EQ(thr[L - 1], T);
    // Last split threshold is T/2 per the model.
    EXPECT_NEAR(thr[L - 2], T / 2.0, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ThresholdShapeTest,
    ::testing::Combine(::testing::Values(4u, 16u, 32u, 64u, 128u, 256u,
                                         512u),
                       ::testing::Values(1u, 2u, 4u, 6u, 8u),
                       ::testing::Values(8192u, 16384u, 32768u,
                                         65536u)));

TEST(SplitThresholds, NonPowerOfTwoAnchorsOnNextPowerUp)
{
    // A non-power-of-two M anchors on m = ceil(log2 M): the schedule
    // is the one the next power of two would get, so the sweep over
    // M = 2^k +/- 1 in bench_fig15_extensions moves only the tree
    // shape, never the threshold schedule, within one bracket.
    for (std::uint32_t m : {33u, 48u, 63u}) {
        EXPECT_EQ(computeSplitThresholds(m, 11, 32768),
                  computeSplitThresholds(64, 11, 32768))
            << "M=" << m;
    }
    EXPECT_EQ(computeSplitThresholds(65, 11, 32768),
              computeSplitThresholds(128, 11, 32768));
}

TEST(SplitThresholdsDeath, RejectsFewerThanTwoCounters)
{
    EXPECT_EXIT(computeSplitThresholds(1, 10, 32768),
                ::testing::ExitedWithCode(1), "at least 2");
}

TEST(SplitThresholdsDeath, RejectsTooFewLevels)
{
    EXPECT_EXIT(computeSplitThresholds(64, 6, 32768),
                ::testing::ExitedWithCode(1), "must exceed");
}

} // namespace catsim
