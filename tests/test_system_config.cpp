/**
 * @file
 * The unified SystemConfig surface: parse defaults, legacy aliases,
 * and the parse(format()) round-trip that makes a printed config line
 * a reproduction recipe.
 */

#include <gtest/gtest.h>

#include "sim/sweep.hpp"
#include "sim/system_config.hpp"

using namespace catsim;

namespace
{

/** Round-trip through format() and compare every field. */
void
expectRoundTrip(const SystemConfig &sys)
{
    const std::string line = sys.format();
    const SystemConfig back = SystemConfig::parse(line);
    EXPECT_EQ(back.format(), line) << line;
    EXPECT_EQ(back.preset, sys.preset);
    EXPECT_EQ(back.workload.name, sys.workload.name);
    EXPECT_EQ(back.workload.seed, sys.workload.seed);
    EXPECT_EQ(back.workload.isAttack, sys.workload.isAttack);
    if (sys.workload.isAttack) {
        EXPECT_EQ(back.workload.attackMode, sys.workload.attackMode);
        EXPECT_EQ(back.workload.attackKernel,
                  sys.workload.attackKernel);
        EXPECT_EQ(back.workload.attackKernelKind,
                  sys.workload.attackKernelKind);
    }
    EXPECT_EQ(back.scheme.kind, sys.scheme.kind);
    EXPECT_EQ(back.scheme.numCounters, sys.scheme.numCounters);
    EXPECT_EQ(back.scheme.maxLevels, sys.scheme.maxLevels);
    EXPECT_EQ(back.scheme.threshold, sys.scheme.threshold);
    EXPECT_EQ(back.scheme.praProbability, sys.scheme.praProbability);
    EXPECT_EQ(back.scheme.cacheWays, sys.scheme.cacheWays);
    EXPECT_EQ(back.scheme.rfmBudget, sys.scheme.rfmBudget);
    EXPECT_EQ(back.scheme.seed, sys.scheme.seed);
    EXPECT_EQ(back.scheme.lfsrPrng, sys.scheme.lfsrPrng);
    EXPECT_EQ(back.scheme.evictionPolicy, sys.scheme.evictionPolicy);
    EXPECT_EQ(back.scheme.banksPerPool, sys.scheme.banksPerPool);
    EXPECT_EQ(back.scheme.bundleWidth, sys.scheme.bundleWidth);
    EXPECT_EQ(back.label(), sys.label());
}

} // namespace

TEST(SystemConfigParse, EmptyKeepsPaperDefaults)
{
    const SystemConfig sys = SystemConfig::parse("");
    EXPECT_EQ(sys.preset, SystemPreset::DualCore2Ch);
    EXPECT_EQ(sys.workload.name, "black");
    EXPECT_EQ(sys.workload.seed, 42u);
    EXPECT_FALSE(sys.workload.isAttack);
    EXPECT_EQ(sys.scheme.kind, SchemeKind::Drcat);
    EXPECT_EQ(sys.scheme.numCounters, 64u);
    EXPECT_EQ(sys.scheme.maxLevels, 11u);
    EXPECT_EQ(sys.scheme.threshold, 32768u);
    EXPECT_EQ(sys.scheme.evictionPolicy, EvictionPolicyKind::Legacy);
    EXPECT_EQ(sys.scheme.banksPerPool, 0u);
    EXPECT_EQ(sys.scheme.bundleWidth, 0u);
    EXPECT_EQ(sys.label(), "DRCAT_64@black/dual2ch");
}

TEST(SystemConfigParse, LegacySimulateFlagsAreAliases)
{
    const SystemConfig legacy = SystemConfig::parse(
        "scheme=cc eviction=lru bankspool=8 kernelkind=multibank "
        "attack=medium");
    const SystemConfig canonical = SystemConfig::parse(
        "scheme=cc policy=lru pool=8 kind=multibank attack=medium");
    EXPECT_EQ(legacy.format(), canonical.format());
    EXPECT_EQ(legacy.scheme.evictionPolicy, EvictionPolicyKind::Lru);
    EXPECT_EQ(legacy.scheme.banksPerPool, 8u);
    EXPECT_EQ(legacy.workload.attackKernelKind,
              AttackKernelKind::MultiBank);
}

TEST(SystemConfigParse, CanonicalKeysWinOverAliases)
{
    const SystemConfig sys =
        SystemConfig::parse("policy=lfu eviction=lru pool=4 bankspool=8");
    EXPECT_EQ(sys.scheme.evictionPolicy, EvictionPolicyKind::Lfu);
    EXPECT_EQ(sys.scheme.banksPerPool, 4u);
}

TEST(SystemConfigFormat, DefaultsAreOmitted)
{
    EXPECT_EQ(SystemConfig().format(),
              "system=dual2ch scheme=drcat");
    SystemConfig sys;
    sys.workload.name = "black"; // parse()'s default, omitted too
    EXPECT_EQ(sys.format(), "system=dual2ch scheme=drcat");
}

TEST(SystemConfigFormat, RoundTripsAcrossTheDesignSpace)
{
    expectRoundTrip(SystemConfig::parse(""));
    {
        // fig13-style attack cell on a quad system.
        SystemConfig sys;
        sys.preset = SystemPreset::QuadCore4Ch;
        sys.workload.name = "comm2";
        sys.workload.isAttack = true;
        sys.workload.attackMode = AttackMode::Heavy;
        sys.workload.attackKernel = 7;
        sys.workload.seed = 9;
        sys.scheme.kind = SchemeKind::Prcat;
        sys.scheme.numCounters = 128;
        sys.scheme.threshold = 16384;
        expectRoundTrip(sys);
    }
    {
        // fig15-style extension cell: pooled bundle-backed DRCAT.
        SystemConfig sys;
        sys.workload.name = "mum";
        sys.scheme.kind = SchemeKind::Drcat;
        sys.scheme.numCounters = 16;
        sys.scheme.banksPerPool = 8;
        sys.scheme.bundleWidth = 8;
        expectRoundTrip(sys);
    }
    {
        // multibank kernel placement + non-default scheme seed.
        SystemConfig sys;
        sys.workload.name = "black";
        sys.workload.isAttack = true;
        sys.workload.attackMode = AttackMode::Light;
        sys.workload.attackKernelKind = AttackKernelKind::MultiBank;
        sys.scheme.kind = SchemeKind::Pra;
        sys.scheme.praProbability = 0.005;
        sys.scheme.seed = 77;
        sys.scheme.lfsrPrng = true;
        expectRoundTrip(sys);
    }
    {
        // counter cache with every cache knob off the default.
        SystemConfig sys;
        sys.preset = SystemPreset::QuadCore2Ch;
        sys.workload.name = "fluid";
        sys.scheme.kind = SchemeKind::CounterCache;
        sys.scheme.numCounters = 2048;
        sys.scheme.cacheWays = 4;
        sys.scheme.evictionPolicy = EvictionPolicyKind::Random;
        expectRoundTrip(sys);
    }
    {
        // fig16-style modern corpus cell: Misra-Gries vs many-sided.
        SystemConfig sys;
        sys.workload.name = "comm1";
        sys.workload.isAttack = true;
        sys.workload.attackMode = AttackMode::Medium;
        sys.workload.attackKernelKind = AttackKernelKind::ManySided;
        sys.scheme.kind = SchemeKind::MisraGries;
        sys.scheme.numCounters = 512;
        sys.scheme.threshold = 16384;
        expectRoundTrip(sys);
    }
    {
        // RFM with a non-default budget against half-double placement.
        SystemConfig sys;
        sys.workload.name = "mum";
        sys.workload.isAttack = true;
        sys.workload.attackKernelKind = AttackKernelKind::HalfDouble;
        sys.scheme.kind = SchemeKind::Rfm;
        sys.scheme.rfmBudget = 128;
        expectRoundTrip(sys);
    }
}

TEST(SystemConfigParse, ModernSchemeAliasesAndBudget)
{
    const SystemConfig mg =
        SystemConfig::parse("scheme=misra-gries counters=512");
    EXPECT_EQ(mg.scheme.kind, SchemeKind::MisraGries);
    EXPECT_EQ(mg.scheme.label(), "MG_512");
    EXPECT_EQ(SystemConfig::parse("scheme=misragries").scheme.kind,
              SchemeKind::MisraGries);

    const SystemConfig rfm =
        SystemConfig::parse("scheme=rfm rfmbudget=96");
    EXPECT_EQ(rfm.scheme.kind, SchemeKind::Rfm);
    EXPECT_EQ(rfm.scheme.rfmBudget, 96u);
    EXPECT_EQ(rfm.scheme.label(), "RFM_96");
    EXPECT_EQ(SystemConfig::parse("scheme=rfm").scheme.rfmBudget, 64u);
}

TEST(SystemConfigLabel, ComposesTheHistoricalLabels)
{
    SystemConfig sys;
    sys.preset = SystemPreset::QuadCore2Ch;
    sys.workload.name = "comm1";
    sys.workload.isAttack = true;
    sys.workload.attackMode = AttackMode::Medium;
    sys.workload.attackKernel = 3;
    sys.scheme.kind = SchemeKind::Prcat;
    sys.scheme.numCounters = 64;
    sys.scheme.banksPerPool = 8;
    // Every piece is the pre-existing formatter's output (scheme
    // labels feed committed @@METRIC names, workload labels feed
    // baseline cache keys), glued without modification.
    EXPECT_EQ(sys.label(),
              "PRCAT_64_rank8@attack-Medium-k3+comm1/quad2ch");
    EXPECT_EQ(sys.scheme.label(), "PRCAT_64_rank8");
    EXPECT_EQ(sys.workload.label(), "attack-Medium-k3+comm1");
}

TEST(SystemConfigParse, BadValuesAreFatal)
{
    EXPECT_EXIT(SystemConfig::parse("system=octo9ch"),
                ::testing::ExitedWithCode(1), "system must be");
    EXPECT_EXIT(SystemConfig::parse("attack=apocalyptic"),
                ::testing::ExitedWithCode(1), "attack must be");
    EXPECT_EXIT(SystemConfig::parse("scheme=warp"),
                ::testing::ExitedWithCode(1), "unknown scheme");
}

TEST(SweepCellLabel, RoutesThroughSystemConfig)
{
    SweepCell c;
    c.preset = SystemPreset::DualCore2Ch;
    c.workload.name = "libq";
    c.scheme.kind = SchemeKind::Sca;
    c.scheme.numCounters = 128;
    EXPECT_EQ(c.label(), c.system().label());
    EXPECT_EQ(c.label(), "SCA_128@libq/dual2ch");
}
