/**
 * @file
 * Tests for the counter-cache baseline (Kim et al., CAL 2015).
 */

#include <gtest/gtest.h>

#include "core/counter_cache.hpp"

namespace catsim
{

TEST(CounterCache, ExactTwoVictims)
{
    CounterCache cc(65536, 2048, 8, 64);
    RefreshAction act;
    for (int i = 0; i < 64; ++i)
        act = cc.onActivate(1000);
    ASSERT_TRUE(act.triggered());
    EXPECT_EQ(act.lo, 999u);
    EXPECT_EQ(act.hi, 1001u);
    EXPECT_EQ(act.rowCount, 2u);
}

TEST(CounterCache, ThresholdExactPerRow)
{
    CounterCache cc(65536, 2048, 8, 64);
    // 63 accesses to one row plus 63 to another: no refresh, because
    // counting is per row (unlike SCA's shared group counters).
    for (int i = 0; i < 63; ++i) {
        ASSERT_FALSE(cc.onActivate(10).triggered());
        ASSERT_FALSE(cc.onActivate(20).triggered());
    }
    EXPECT_TRUE(cc.onActivate(10).triggered());
}

TEST(CounterCache, HitsAndMisses)
{
    CounterCache cc(65536, 64, 4, 1000);
    cc.onActivate(1);
    cc.onActivate(1);
    cc.onActivate(1);
    EXPECT_EQ(cc.misses(), 1u);
    EXPECT_EQ(cc.hits(), 2u);
}

TEST(CounterCache, CapacityMissesGenerateDramTraffic)
{
    CounterCache cc(65536, 64, 4, 100000);
    // Touch far more rows than the cache holds.
    for (RowAddr r = 0; r < 1024; ++r)
        cc.onActivate(r);
    // Second sweep: everything was evicted.
    for (RowAddr r = 0; r < 1024; ++r)
        cc.onActivate(r);
    const auto &st = cc.stats();
    EXPECT_EQ(st.counterDramReads, 2048u);
    EXPECT_GT(st.counterDramWrites, 0u);
    EXPECT_EQ(cc.hits(), 0u);
}

TEST(CounterCache, LruKeepsHotRow)
{
    CounterCache cc(65536, 64, 4, 100000);
    // Row 0 stays hot while conflicting rows stream through its set.
    // Sets = 16, so rows 0, 16, 32, ... collide.
    for (int round = 0; round < 10; ++round) {
        cc.onActivate(0);
        cc.onActivate(16 * (round % 3 + 1));
    }
    // Row 0 should have stayed cached after the first miss.
    EXPECT_GE(cc.hits(), 9u);
}

TEST(CounterCache, CounterSurvivesEviction)
{
    CounterCache cc(65536, 64, 4, 10);
    for (int i = 0; i < 9; ++i)
        cc.onActivate(0);
    // Evict row 0's counter by streaming the set, then return.
    for (int k = 1; k <= 8; ++k)
        cc.onActivate(static_cast<RowAddr>(16 * k));
    // The 10th access must still trigger: backing storage kept 9.
    EXPECT_TRUE(cc.onActivate(0).triggered());
}

TEST(CounterCache, EpochResetsBacking)
{
    CounterCache cc(65536, 64, 4, 10);
    for (int i = 0; i < 9; ++i)
        cc.onActivate(0);
    cc.onEpoch();
    for (int i = 0; i < 9; ++i)
        ASSERT_FALSE(cc.onActivate(0).triggered());
    EXPECT_TRUE(cc.onActivate(0).triggered());
}

TEST(CounterCache, Name)
{
    CounterCache cc(65536, 2048, 8, 32768);
    EXPECT_EQ(cc.name(), "CC_2048");
}

TEST(CounterCacheDeath, RejectsBadWays)
{
    EXPECT_EXIT(CounterCache(65536, 100, 8, 32768),
                ::testing::ExitedWithCode(1), "multiple of ways");
}

namespace
{

/** A 4-way cache whose sets alias rows 16 apart (sets = 16). */
CounterCache
makeCacheWith(EvictionPolicyKind kind, std::uint64_t seed = 7)
{
    return CounterCache(65536, 64, 4, 100000,
                        makeEvictionPolicy(kind, seed));
}

} // namespace

TEST(CounterCacheEviction, ParseAndNames)
{
    EXPECT_EQ(parseEvictionPolicy("LRU"), EvictionPolicyKind::Lru);
    EXPECT_EQ(parseEvictionPolicy("legacy"),
              EvictionPolicyKind::Legacy);
    EXPECT_EQ(parseEvictionPolicy("default"),
              EvictionPolicyKind::Legacy);
    EXPECT_EQ(parseEvictionPolicy("lfu"), EvictionPolicyKind::Lfu);
    EXPECT_EQ(parseEvictionPolicy("Random"),
              EvictionPolicyKind::Random);
    EXPECT_STREQ(evictionPolicyName(EvictionPolicyKind::Lfu), "lfu");
}

TEST(CounterCacheEviction, ParseDeathOnUnknown)
{
    EXPECT_EXIT(parseEvictionPolicy("plru"),
                ::testing::ExitedWithCode(1), "eviction policy");
}

TEST(CounterCacheEviction, DefaultIsLegacyAndNameUnchanged)
{
    CounterCache cc(65536, 2048, 8, 32768);
    EXPECT_STREQ(cc.policy().name(), "legacy");
    EXPECT_EQ(cc.name(), "CC_2048");
    CounterCache lru(65536, 2048, 8, 32768,
                     makeEvictionPolicy(EvictionPolicyKind::Lru, 1));
    EXPECT_EQ(lru.name(), "CC_2048_lru");
}

TEST(CounterCacheEviction, LegacyMatchesLruOnWarmSets)
{
    // Once every way of a set is valid, legacy and LRU are the same
    // policy (they differ only in invalid-way preference); a shared
    // conflict stream must produce identical hit counts.
    CounterCache legacy = makeCacheWith(EvictionPolicyKind::Legacy);
    CounterCache lru = makeCacheWith(EvictionPolicyKind::Lru);
    for (int round = 0; round < 200; ++round) {
        const RowAddr row =
            static_cast<RowAddr>(16 * ((round * 7) % 9));
        legacy.onActivate(row);
        lru.onActivate(row);
    }
    EXPECT_EQ(legacy.hits(), lru.hits());
    EXPECT_EQ(legacy.misses(), lru.misses());
}

TEST(CounterCacheEviction, LfuKeepsFrequentRowLruEvictsIt)
{
    // Row 0 is touched often early, then 4 fresher conflicting rows
    // stream through the set.  LFU shields the frequent row; LRU
    // evicts it (it is the least recent once the streamers arrive).
    auto drive = [](CounterCache &cc) {
        for (int i = 0; i < 8; ++i)
            cc.onActivate(0);
        for (RowAddr r = 16; r <= 64; r += 16)
            cc.onActivate(r);
        const Count missesBefore = cc.misses();
        cc.onActivate(0);
        return cc.misses() - missesBefore;
    };
    CounterCache lfu = makeCacheWith(EvictionPolicyKind::Lfu);
    EXPECT_EQ(drive(lfu), 0u) << "LFU evicted the frequent row";
    CounterCache lru = makeCacheWith(EvictionPolicyKind::Lru);
    EXPECT_EQ(drive(lru), 1u) << "LRU kept the stale frequent row";
}

TEST(CounterCacheEviction, RandomIsDeterministicPerSeedAndCountsBits)
{
    auto drive = [](CounterCache &cc) {
        for (int i = 0; i < 400; ++i)
            cc.onActivate(static_cast<RowAddr>(16 * (i % 7)));
        return cc.hits();
    };
    CounterCache a = makeCacheWith(EvictionPolicyKind::Random, 99);
    CounterCache b = makeCacheWith(EvictionPolicyKind::Random, 99);
    EXPECT_EQ(drive(a), drive(b));
    // Conflict misses beyond the fills must have drawn PRNG bits, and
    // those bits are charged to the scheme stats (energy model input).
    EXPECT_GT(a.policy().prngBits(), 0u);
    EXPECT_EQ(a.stats().prngBits, a.policy().prngBits());
}

TEST(CounterCacheEviction, PoliciesStillRefreshExactly)
{
    // Whatever the policy, counting stays exact: threshold T on one
    // row refreshes exactly its two neighbors.
    for (EvictionPolicyKind kind :
         {EvictionPolicyKind::Lru, EvictionPolicyKind::Lfu,
          EvictionPolicyKind::Random}) {
        CounterCache cc(65536, 2048, 8, 64,
                        makeEvictionPolicy(kind, 3));
        RefreshAction act;
        for (int i = 0; i < 64; ++i)
            act = cc.onActivate(1000);
        ASSERT_TRUE(act.triggered());
        EXPECT_EQ(act.lo, 999u);
        EXPECT_EQ(act.hi, 1001u);
        EXPECT_EQ(act.rowCount, 2u);
    }
}

} // namespace catsim
