/**
 * @file
 * Tests for the counter-cache baseline (Kim et al., CAL 2015).
 */

#include <gtest/gtest.h>

#include "core/counter_cache.hpp"

namespace catsim
{

TEST(CounterCache, ExactTwoVictims)
{
    CounterCache cc(65536, 2048, 8, 64);
    RefreshAction act;
    for (int i = 0; i < 64; ++i)
        act = cc.onActivate(1000);
    ASSERT_TRUE(act.triggered());
    EXPECT_EQ(act.lo, 999u);
    EXPECT_EQ(act.hi, 1001u);
    EXPECT_EQ(act.rowCount, 2u);
}

TEST(CounterCache, ThresholdExactPerRow)
{
    CounterCache cc(65536, 2048, 8, 64);
    // 63 accesses to one row plus 63 to another: no refresh, because
    // counting is per row (unlike SCA's shared group counters).
    for (int i = 0; i < 63; ++i) {
        ASSERT_FALSE(cc.onActivate(10).triggered());
        ASSERT_FALSE(cc.onActivate(20).triggered());
    }
    EXPECT_TRUE(cc.onActivate(10).triggered());
}

TEST(CounterCache, HitsAndMisses)
{
    CounterCache cc(65536, 64, 4, 1000);
    cc.onActivate(1);
    cc.onActivate(1);
    cc.onActivate(1);
    EXPECT_EQ(cc.misses(), 1u);
    EXPECT_EQ(cc.hits(), 2u);
}

TEST(CounterCache, CapacityMissesGenerateDramTraffic)
{
    CounterCache cc(65536, 64, 4, 100000);
    // Touch far more rows than the cache holds.
    for (RowAddr r = 0; r < 1024; ++r)
        cc.onActivate(r);
    // Second sweep: everything was evicted.
    for (RowAddr r = 0; r < 1024; ++r)
        cc.onActivate(r);
    const auto &st = cc.stats();
    EXPECT_EQ(st.counterDramReads, 2048u);
    EXPECT_GT(st.counterDramWrites, 0u);
    EXPECT_EQ(cc.hits(), 0u);
}

TEST(CounterCache, LruKeepsHotRow)
{
    CounterCache cc(65536, 64, 4, 100000);
    // Row 0 stays hot while conflicting rows stream through its set.
    // Sets = 16, so rows 0, 16, 32, ... collide.
    for (int round = 0; round < 10; ++round) {
        cc.onActivate(0);
        cc.onActivate(16 * (round % 3 + 1));
    }
    // Row 0 should have stayed cached after the first miss.
    EXPECT_GE(cc.hits(), 9u);
}

TEST(CounterCache, CounterSurvivesEviction)
{
    CounterCache cc(65536, 64, 4, 10);
    for (int i = 0; i < 9; ++i)
        cc.onActivate(0);
    // Evict row 0's counter by streaming the set, then return.
    for (int k = 1; k <= 8; ++k)
        cc.onActivate(static_cast<RowAddr>(16 * k));
    // The 10th access must still trigger: backing storage kept 9.
    EXPECT_TRUE(cc.onActivate(0).triggered());
}

TEST(CounterCache, EpochResetsBacking)
{
    CounterCache cc(65536, 64, 4, 10);
    for (int i = 0; i < 9; ++i)
        cc.onActivate(0);
    cc.onEpoch();
    for (int i = 0; i < 9; ++i)
        ASSERT_FALSE(cc.onActivate(0).triggered());
    EXPECT_TRUE(cc.onActivate(0).triggered());
}

TEST(CounterCache, Name)
{
    CounterCache cc(65536, 2048, 8, 32768);
    EXPECT_EQ(cc.name(), "CC_2048");
}

TEST(CounterCacheDeath, RejectsBadWays)
{
    EXPECT_EXIT(CounterCache(65536, 100, 8, 32768),
                ::testing::ExitedWithCode(1), "multiple of ways");
}

} // namespace catsim
