/**
 * @file
 * Tests for the Counter-based Adaptive Tree (paper Section IV).
 */

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/cat_tree.hpp"
#include "core/split_thresholds.hpp"

namespace catsim
{

namespace
{

CatTree::Params
makeParams(RowAddr rows, std::uint32_t M, std::uint32_t L,
           std::uint32_t T, bool weights = false)
{
    CatTree::Params p;
    p.numRows = rows;
    p.numCounters = M;
    p.maxLevels = L;
    p.refreshThreshold = T;
    p.splitThresholds = computeSplitThresholds(M, L, T);
    p.enableWeights = weights;
    return p;
}

} // namespace

TEST(CatTree, StartsPresplit)
{
    // lambda = log2(M) levels: M/2 counters at depth log2(M)-1.
    CatTree tree(makeParams(65536, 64, 11, 32768));
    EXPECT_EQ(tree.activeCounters(), 32u);
    EXPECT_EQ(tree.leafDepth(0), 5u);
    EXPECT_EQ(tree.leafDepth(65535), 5u);
    EXPECT_TRUE(tree.checkInvariants());
}

TEST(CatTree, PresplitPartitionsUniformly)
{
    CatTree tree(makeParams(65536, 64, 11, 32768));
    // Every initial leaf covers N / 2^(log2(M)-1) = 2048 rows.
    const auto [lo, hi] = tree.leafRange(0);
    EXPECT_EQ(lo, 0u);
    EXPECT_EQ(hi, 2047u);
    const auto [lo2, hi2] = tree.leafRange(65535);
    EXPECT_EQ(lo2, 63488u); // 65536 - 2048
    EXPECT_EQ(hi2, 65535u);
}

TEST(CatTree, CountsAccumulate)
{
    CatTree tree(makeParams(65536, 64, 11, 32768));
    for (int i = 0; i < 100; ++i)
        tree.access(10);
    EXPECT_EQ(tree.counterValue(10), 100u);
    // Rows in another group are unaffected.
    EXPECT_EQ(tree.counterValue(30000), 0u);
}

TEST(CatTree, SplitsAtSplitThreshold)
{
    auto params = makeParams(65536, 64, 11, 32768);
    const std::uint32_t t5 = params.splitThresholds[5];
    CatTree tree(params);
    // Hammer a single row until the first split threshold is reached.
    for (std::uint32_t i = 0; i < t5; ++i) {
        const auto r = tree.access(42);
        ASSERT_FALSE(r.didSplit);
        ASSERT_FALSE(r.refreshed);
    }
    const auto r = tree.access(42);
    EXPECT_TRUE(r.didSplit);
    EXPECT_EQ(tree.activeCounters(), 33u);
    EXPECT_EQ(tree.leafDepth(42), 6u);
    // The clone inherits the parent count.
    EXPECT_EQ(tree.counterValue(42), t5);
    EXPECT_TRUE(tree.checkInvariants());
}

TEST(CatTree, HotRowDescendsToMaxLevel)
{
    auto params = makeParams(65536, 64, 11, 32768);
    CatTree tree(params);
    Count refreshes = 0;
    for (std::uint32_t i = 0; i < 40000; ++i) {
        const auto r = tree.access(42);
        refreshes += r.refreshed;
    }
    EXPECT_EQ(tree.leafDepth(42), 10u); // L-1
    EXPECT_GT(refreshes, 0u);
    EXPECT_TRUE(tree.checkInvariants());
}

TEST(CatTree, RefreshCoversGroupPlusNeighbors)
{
    auto params = makeParams(65536, 64, 11, 32768);
    CatTree tree(params);
    CatTree::AccessResult last;
    for (std::uint32_t i = 0; i < 40000; ++i) {
        const auto r = tree.access(4096);
        if (r.refreshed) {
            last = r;
            break;
        }
    }
    ASSERT_TRUE(last.refreshed);
    const auto [lo, hi] = tree.leafRange(4096);
    EXPECT_EQ(last.lo, lo == 0 ? 0 : lo - 1);
    EXPECT_EQ(last.hi, hi + 1);
    EXPECT_EQ(last.rowsRefreshed,
              static_cast<Count>(last.hi - last.lo + 1));
}

TEST(CatTree, UniformAccessesKeepTreeBalanced)
{
    // Paper Fig 4(b): uniform traffic grows the tree uniformly (like
    // SCA) rather than deep.
    auto params = makeParams(65536, 16, 9, 4096);
    CatTree tree(params);
    Xoshiro256StarStar rng(1);
    for (int i = 0; i < 300000; ++i)
        tree.access(static_cast<RowAddr>(rng.nextBounded(65536)));
    EXPECT_TRUE(tree.checkInvariants());
    // All counters active and the depth spread is at most one level
    // once the tree saturates.
    EXPECT_EQ(tree.activeCounters(), 16u);
    std::uint32_t minD = 99, maxD = 0;
    for (RowAddr r = 0; r < 65536; r += 1024) {
        const auto d = tree.leafDepth(r);
        minD = std::min(minD, d);
        maxD = std::max(maxD, d);
    }
    EXPECT_LE(maxD - minD, 1u);
}

TEST(CatTree, BiasedAccessesGrowUnbalancedTree)
{
    // Paper Fig 4(a): biased traffic deepens the hot path only.
    auto params = makeParams(65536, 16, 9, 4096);
    CatTree tree(params);
    Xoshiro256StarStar rng(2);
    for (int i = 0; i < 300000; ++i) {
        const bool hot = rng.nextDouble() < 0.9;
        const RowAddr row = hot
            ? static_cast<RowAddr>(rng.nextBounded(4))
            : static_cast<RowAddr>(rng.nextBounded(65536));
        tree.access(row);
    }
    EXPECT_TRUE(tree.checkInvariants());
    EXPECT_GT(tree.leafDepth(0), tree.leafDepth(60000));
}

TEST(CatTree, ThresholdBecomesTWhenCountersExhausted)
{
    // With all counters consumed, every counter refreshes at T (paper
    // Algorithm 1 lines 23-25).
    auto params = makeParams(65536, 4, 6, 4096);
    CatTree tree(params);
    Xoshiro256StarStar rng(3);
    // Saturate the tree.
    for (int i = 0; i < 100000; ++i)
        tree.access(static_cast<RowAddr>(rng.nextBounded(65536)));
    ASSERT_EQ(tree.activeCounters(), 4u);
    // Now a cold group must count all the way to T before refreshing.
    Count refreshes = 0;
    for (std::uint32_t i = 0; i <= 4096; ++i)
        refreshes += tree.access(0).refreshed;
    EXPECT_GE(refreshes, 1u);
    EXPECT_TRUE(tree.checkInvariants());
}

TEST(CatTree, ResetRestoresPresplit)
{
    auto params = makeParams(65536, 64, 11, 32768);
    CatTree tree(params);
    for (std::uint32_t i = 0; i < 30000; ++i)
        tree.access(42);
    ASSERT_GT(tree.leafDepth(42), 5u);
    tree.reset();
    EXPECT_EQ(tree.activeCounters(), 32u);
    EXPECT_EQ(tree.leafDepth(42), 5u);
    EXPECT_EQ(tree.counterValue(42), 0u);
    EXPECT_TRUE(tree.checkInvariants());
}

TEST(CatTree, ResetCountsOnlyKeepsShape)
{
    auto params = makeParams(65536, 64, 11, 32768);
    CatTree tree(params);
    for (std::uint32_t i = 0; i < 30000; ++i)
        tree.access(42);
    const auto depth = tree.leafDepth(42);
    ASSERT_GT(depth, 5u);
    tree.resetCountsOnly();
    EXPECT_EQ(tree.leafDepth(42), depth);
    EXPECT_EQ(tree.counterValue(42), 0u);
    EXPECT_TRUE(tree.checkInvariants());
}

TEST(CatTree, SramAccessBoundsMatchPaper)
{
    // Section IV-C: between 2 and L - log2(M/4) accesses per lookup.
    auto params = makeParams(65536, 64, 11, 32768);
    CatTree tree(params);
    std::uint32_t minAcc = 999, maxAcc = 0;
    for (std::uint32_t i = 0; i < 40000; ++i) {
        const auto r = tree.access(42);
        minAcc = std::min(minAcc, r.sramAccesses);
        maxAcc = std::max(maxAcc, r.sramAccesses);
    }
    EXPECT_EQ(minAcc, 2u);
    EXPECT_LE(maxAcc, 11u - 4u); // L - log2(M/4) = 11 - log2(16) = 7
}

TEST(CatTree, MaxLeafDepthTracksGrowth)
{
    auto params = makeParams(65536, 64, 11, 32768);
    CatTree tree(params);
    EXPECT_EQ(tree.maxLeafDepth(), 5u);
    for (std::uint32_t i = 0; i < 40000; ++i)
        tree.access(42);
    EXPECT_EQ(tree.maxLeafDepth(), 10u);
}

/** Property test: invariants hold under long random workloads. */
class CatTreeProperty
    : public ::testing::TestWithParam<
          std::tuple<std::uint32_t, std::uint32_t, std::uint32_t, bool>>
{
};

TEST_P(CatTreeProperty, InvariantsUnderRandomTraffic)
{
    const auto [M, extraLevels, T, weights] = GetParam();
    std::uint32_t m = 0;
    for (std::uint32_t v = M; v > 1; v >>= 1)
        ++m;
    const std::uint32_t L = m + extraLevels;
    const RowAddr rows = 65536;
    if ((1u << (L - 1)) > rows)
        GTEST_SKIP();

    CatTree tree(makeParams(rows, M, L, T, weights));
    Xoshiro256StarStar rng(M * 131 + L);
    for (int i = 0; i < 200000; ++i) {
        // Mixture: hot rows + background + occasional jumps.
        RowAddr row;
        const double u = rng.nextDouble();
        if (u < 0.5)
            row = static_cast<RowAddr>(rng.nextBounded(8));
        else if (u < 0.8)
            row = static_cast<RowAddr>(40000 + rng.nextBounded(64));
        else
            row = static_cast<RowAddr>(rng.nextBounded(rows));
        tree.access(row);
        if (i % 50000 == 49999) {
            std::string why;
            ASSERT_TRUE(tree.checkInvariants(&why)) << why;
        }
    }
    std::string why;
    EXPECT_TRUE(tree.checkInvariants(&why)) << why;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CatTreeProperty,
    ::testing::Combine(::testing::Values(4u, 16u, 64u, 128u,
                                         // non-powers of two: 2^k +/- 1
                                         31u, 33u, 63u, 65u),
                       ::testing::Values(2u, 4u, 6u),
                       ::testing::Values(2048u, 32768u),
                       ::testing::Bool()));

TEST(CatTreeNonPow2, UnevenPresplitShape)
{
    // M = 63: P = 31 initial leaves; d = floor(log2 31) = 4 gives 16
    // prefixes, of which the 15 lowest-address ones split one level
    // deeper (30 leaves at depth 5) and the last keeps its single
    // leaf at depth 4 - 31 in total.
    CatTree tree(makeParams(65536, 63, 11, 32768));
    EXPECT_EQ(tree.activeCounters(), 31u);
    EXPECT_EQ(tree.leafDepth(0), 5u);      // prefix 0: deep
    EXPECT_EQ(tree.leafDepth(65535), 4u);  // last prefix: shallow
    // Deep leaves cover 2048 rows, shallow ones 4096.
    const auto [dlo, dhi] = tree.leafRange(0);
    EXPECT_EQ(dhi - dlo + 1, 2048u);
    const auto [slo, shi] = tree.leafRange(65535);
    EXPECT_EQ(shi - slo + 1, 4096u);
    // The boundary between deep and shallow prefixes: prefix 14 (of 16)
    // is the last deep one, prefix 15 the first shallow one.
    EXPECT_EQ(tree.leafDepth(14u * 4096u), 5u);
    EXPECT_EQ(tree.leafDepth(15u * 4096u), 4u);
    std::string why;
    EXPECT_TRUE(tree.checkInvariants(&why)) << why;
}

TEST(CatTreeNonPow2, PlusOneKeepsBalancedShapeWithSpare)
{
    // M = 65: P = 32 is a power of two, so the shape is exactly the
    // M=64 pre-split plus one spare counter for growth.
    CatTree tree(makeParams(65536, 65, 11, 32768));
    EXPECT_EQ(tree.activeCounters(), 32u);
    EXPECT_EQ(tree.leafDepth(0), 5u);
    EXPECT_EQ(tree.leafDepth(65535), 5u);
    EXPECT_EQ(tree.maxLeafDepth(), 5u);
    EXPECT_TRUE(tree.checkInvariants());
}

/**
 * Refresh-guarantee property at M = 2^k +/- 1: no row may accumulate
 * more than T activations without a refresh covering both its victims
 * (the test_integration_safety ledger, at tree level).  CAT-style
 * schemes consume split-triggering accesses without counting them, so
 * a bounded slack of one access per possible split is allowed.
 */
TEST(CatTreeNonPow2, RefreshGuaranteeAtPow2Neighbors)
{
    const RowAddr rows = 65536;
    const std::uint32_t T = 1024;
    for (std::uint32_t M : {15u, 17u, 31u, 33u, 63u, 65u}) {
        CatTree tree(makeParams(rows, M, 11, T, true));
        std::vector<std::uint32_t> counts(rows, 0);
        Xoshiro256StarStar rng(M);
        const RowAddr targets[4] = {
            static_cast<RowAddr>(rng.nextBounded(rows)),
            static_cast<RowAddr>(rng.nextBounded(rows)),
            static_cast<RowAddr>(rng.nextBounded(rows)),
            static_cast<RowAddr>(rng.nextBounded(rows))};
        for (int i = 0; i < 300000; ++i) {
            const RowAddr row = rng.nextDouble() < 0.75
                ? targets[rng.nextBounded(4)]
                : static_cast<RowAddr>(rng.nextBounded(rows));
            const auto r = tree.access(row);
            ++counts[row];
            if (r.refreshed) {
                const RowAddr lo = r.lo == 0 ? 0 : r.lo + 1;
                const RowAddr hi =
                    r.hi == rows - 1 ? rows - 1 : r.hi - 1;
                for (RowAddr v = lo; v <= hi; ++v)
                    counts[v] = 0;
            }
            ASSERT_LE(counts[row], T + 16)
                << "M=" << M << " row " << row
                << " exceeded T without victim refresh";
        }
        std::string why;
        EXPECT_TRUE(tree.checkInvariants(&why)) << "M=" << M << ": "
                                                << why;
    }
}

TEST(CatTreeDeath, RejectsBadParams)
{
    auto params = makeParams(65536, 64, 11, 32768);
    params.splitThresholds.pop_back();
    EXPECT_EXIT(CatTree{params}, ::testing::ExitedWithCode(1),
                "split threshold");
}

TEST(CatTreeDeath, RejectsScheduleAboveRefreshThreshold)
{
    // A split threshold above T would let a group count past the
    // refresh threshold without refreshing (custom schedules are user
    // input via SchemeConfig::splitThresholds).
    auto params = makeParams(65536, 64, 11, 32768);
    params.splitThresholds[6] = params.refreshThreshold + 1;
    EXPECT_EXIT(CatTree{params}, ::testing::ExitedWithCode(1),
                "exceeds the refresh threshold");
}

} // namespace catsim
