/**
 * @file
 * Property tests for the Misra-Gries frequent-item mitigation: the
 * classic count-underestimate bound against an exact-count oracle, the
 * no-false-negative-above-threshold guarantee on seeded-random and
 * adversarial streams (sized and undersized tables), behavior across
 * epoch resets, and onActivate/onActivateBatch stats identity.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/rng.hpp"
#include "core/misra_gries.hpp"

namespace catsim
{

namespace
{

constexpr RowAddr kRows = 65536;

/** A threshold far above any bound the streams below can reach. */
constexpr std::uint32_t kNeverTrigger = 1000000000;

/**
 * Feed @p acts activations of @p mg while asserting the no-false-
 * negative guarantee against an exact oracle: no row's true activation
 * count since the last refresh triggered by that row ever reaches past
 * the threshold.
 */
void
assertNoFalseNegative(MisraGries &mg, const std::vector<RowAddr> &acts,
                      std::uint32_t threshold,
                      std::map<RowAddr, std::uint64_t> &since)
{
    for (const RowAddr row : acts) {
        ++since[row];
        const RefreshAction act = mg.onActivate(row);
        ASSERT_LE(since[row], threshold)
            << "row " << row << " hammered past the threshold "
            << "without a refresh";
        if (act.triggered())
            since[row] = 0;
    }
}

} // namespace

TEST(MisraGries, NameAndEntryCount)
{
    MisraGries mg(kRows, 8, 32768);
    EXPECT_EQ(mg.name(), "MG_8");
    EXPECT_EQ(mg.numEntries(), 8u);
}

TEST(MisraGries, RefreshesNeighborsOfTriggeringRow)
{
    MisraGries mg(kRows, 4, 2);
    EXPECT_FALSE(mg.onActivate(100).triggered());
    const RefreshAction act = mg.onActivate(100);
    ASSERT_TRUE(act.triggered());
    EXPECT_EQ(act.lo, 99u);
    EXPECT_EQ(act.hi, 101u);
    EXPECT_EQ(act.rowCount, 2u) << "aggressor itself not refreshed";
    EXPECT_EQ(mg.stats().refreshEvents, 1u);
    EXPECT_EQ(mg.stats().victimRowsRefreshed, 2u);

    // Edge rows have a single victim.
    MisraGries edge(kRows, 4, 2);
    edge.onActivate(0);
    const RefreshAction low = edge.onActivate(0);
    ASSERT_TRUE(low.triggered());
    EXPECT_EQ(low.rowCount, 1u);
    EXPECT_EQ(low.lo, 1u);
}

TEST(MisraGries, UnderestimateBoundAgainstExactOracle)
{
    // k = 8 entries against a 64-row working set: evictions and
    // decrements happen constantly.  The sketch must never OVER-count,
    // and its underestimate is bounded by the global spill counter,
    // itself at most N/(k+1) after N activations.
    constexpr std::uint32_t kEntries = 8;
    MisraGries mg(kRows, kEntries, kNeverTrigger);
    std::map<RowAddr, std::uint64_t> truth;
    Xoshiro256StarStar rng(99);
    std::uint64_t n = 0;
    for (int i = 0; i < 50000; ++i) {
        const auto row = static_cast<RowAddr>(rng.nextBounded(64));
        ++truth[row];
        mg.onActivate(row);
        ++n;
        if (i % 1000 != 0)
            continue;
        ASSERT_LE(mg.decrements() * (kEntries + 1), n)
            << "spill counter above N/(k+1) after " << n << " acts";
        for (const auto &[r, trueCount] : truth) {
            const std::uint64_t tracked = mg.trackedCount(r);
            ASSERT_LE(tracked, trueCount)
                << "sketch over-counted row " << r;
            ASSERT_LE(trueCount - tracked, mg.decrements())
                << "underestimate of row " << r
                << " exceeds the spill total";
        }
    }
}

TEST(MisraGries, AdversarialRoundRobinMeetsTightBound)
{
    // Round robin over k+1 rows is the classic worst case: every
    // (k+1)-th activation misses a full table and decrements, so the
    // spill counter tracks N/(k+1) exactly and the (k+1)-th row's
    // underestimate equals the bound.
    constexpr std::uint32_t kEntries = 4;
    MisraGries mg(kRows, kEntries, kNeverTrigger);
    constexpr std::uint64_t kCycles = 1000;
    for (std::uint64_t c = 0; c < kCycles; ++c)
        for (RowAddr row = 0; row <= kEntries; ++row)
            mg.onActivate(row);
    EXPECT_EQ(mg.decrements(), kCycles);
    EXPECT_EQ(mg.trackedCount(kEntries), 0u)
        << "the overflowing row is never retained";
    // true(k) - tracked(k) == kCycles - 0 == decrements: bound tight.
}

TEST(MisraGries, NoFalseNegativeWithGrapheneSizedTable)
{
    // Sized per Graphene: entries + 1 = 129 > 60000 acts / T=500, so
    // the spill counter stays below T and the conservative miss path
    // never fires - yet an embedded heavy hitter (30% of the stream)
    // must still be refreshed every <= T of its own activations.
    constexpr std::uint32_t kThreshold = 500;
    MisraGries mg(8192, 128, kThreshold);
    std::vector<RowAddr> acts;
    Xoshiro256StarStar rng(7);
    for (int i = 0; i < 60000; ++i) {
        acts.push_back(rng.nextDouble() < 0.3
                           ? RowAddr(4000)
                           : static_cast<RowAddr>(
                                 rng.nextBounded(8000)));
    }
    std::map<RowAddr, std::uint64_t> since;
    assertNoFalseNegative(mg, acts, kThreshold, since);
    EXPECT_LT(mg.decrements(), kThreshold)
        << "a Graphene-sized table must never hit the "
           "conservative miss path";
    // ~18000 heavy-hitter acts at T=500 demand dozens of refreshes.
    EXPECT_GE(mg.stats().refreshEvents, 30u);
}

TEST(MisraGries, NoFalseNegativeWhenUndersized)
{
    // 4 entries against 40 round-robin rows plus a heavy hitter: the
    // spill counter blows through T, and the scheme must degrade to
    // conservative refreshes instead of losing the guarantee.
    constexpr std::uint32_t kThreshold = 50;
    MisraGries mg(kRows, 4, kThreshold);
    std::vector<RowAddr> acts;
    for (int i = 0; i < 20000; ++i) {
        acts.push_back(static_cast<RowAddr>(i % 40));
        if (i % 3 == 0)
            acts.push_back(777);
    }
    std::map<RowAddr, std::uint64_t> since;
    assertNoFalseNegative(mg, acts, kThreshold, since);
    EXPECT_GE(mg.decrements(), kThreshold)
        << "this stream is supposed to exercise the undersized path";
}

TEST(MisraGries, EpochResetClearsSketchAndKeepsGuarantee)
{
    constexpr std::uint32_t kThreshold = 60;
    MisraGries mg(kRows, 6, kThreshold);
    std::vector<RowAddr> acts;
    Xoshiro256StarStar rng(21);
    for (int i = 0; i < 5000; ++i)
        acts.push_back(static_cast<RowAddr>(rng.nextBounded(30)));

    for (int epoch = 0; epoch < 3; ++epoch) {
        // Retention refresh clears true disturbance too, so the
        // oracle restarts with the sketch.
        std::map<RowAddr, std::uint64_t> since;
        assertNoFalseNegative(mg, acts, kThreshold, since);
        mg.onEpoch();
        EXPECT_EQ(mg.decrements(), 0u);
        for (RowAddr row = 0; row < 30; ++row)
            EXPECT_EQ(mg.trackedCount(row), 0u);
    }
    EXPECT_EQ(mg.stats().epochResets, 3u);
}

TEST(MisraGries, BatchMatchesPerActivationStats)
{
    MisraGries single(kRows, 16, 64);
    MisraGries batched(kRows, 16, 64);
    std::vector<RowAddr> acts;
    Xoshiro256StarStar rng(5);
    for (int i = 0; i < 20000; ++i)
        acts.push_back(static_cast<RowAddr>(rng.nextBounded(256)));

    for (const RowAddr row : acts)
        single.onActivate(row);
    for (std::size_t i = 0; i < acts.size(); i += 777) {
        const std::size_t n = std::min<std::size_t>(777,
                                                    acts.size() - i);
        batched.onActivateBatch(acts.data() + i, n);
    }

    const SchemeStats &a = single.stats();
    const SchemeStats &b = batched.stats();
    EXPECT_EQ(a.activations, b.activations);
    EXPECT_EQ(a.refreshEvents, b.refreshEvents);
    EXPECT_EQ(a.victimRowsRefreshed, b.victimRowsRefreshed);
    EXPECT_EQ(a.sramAccesses, b.sramAccesses);
    EXPECT_EQ(a.epochResets, b.epochResets);
    EXPECT_EQ(single.decrements(), batched.decrements());
    for (RowAddr row = 0; row < 256; ++row)
        ASSERT_EQ(single.trackedCount(row), batched.trackedCount(row))
            << "row " << row;
}

TEST(MisraGries, AdjacencyModelSelectsPhysicalVictims)
{
    const RowAdjacency adj(RowAdjacency::Kind::BlockMirrored, kRows);
    MisraGries mg(kRows, 4, 2);
    mg.setAdjacency(&adj);
    mg.onActivate(1000);
    const RefreshAction act = mg.onActivate(1000);
    ASSERT_TRUE(act.triggered());
    std::array<RowAddr, 2> victims{};
    const std::uint32_t n = adj.victims(1000, victims);
    ASSERT_EQ(n, 2u);
    EXPECT_EQ(act.lo, std::min(victims[0], victims[1]));
    EXPECT_EQ(act.hi, std::max(victims[0], victims[1]));
    EXPECT_EQ(act.rowCount, 2u);
}

TEST(MisraGriesDeath, RejectsBadConfig)
{
    EXPECT_EXIT(MisraGries(kRows, 0, 32768),
                ::testing::ExitedWithCode(1), "at least one entry");
    EXPECT_EXIT(MisraGries(kRows, 8, 1), ::testing::ExitedWithCode(1),
                "threshold");
}

} // namespace catsim
