/**
 * @file
 * Tests for the pluggable activation sources and the replaySources
 * engine: recorded-stream equivalence with the historical replay
 * loop, synthetic generator determinism, and the closed-loop
 * refresh-aware attacker's feedback behaviour.
 */

#include <gtest/gtest.h>

#include <memory>

#include "sim/activation_sim.hpp"
#include "sim/activation_source.hpp"

namespace catsim
{

namespace
{

constexpr RowAddr kRows = 4096;

SchemeConfig
drcatConfig()
{
    SchemeConfig cfg;
    cfg.kind = SchemeKind::Drcat;
    cfg.numCounters = 32;
    cfg.maxLevels = 8;
    cfg.threshold = 512;
    return cfg;
}

/** Drain a source into (rows, epoch positions) for inspection. */
struct Drained
{
    std::vector<RowAddr> rows;
    std::vector<std::size_t> epochAfter; //!< row count at each epoch
};

Drained
drain(ActivationSource &src)
{
    Drained d;
    for (;;) {
        const RowAddr *rows = nullptr;
        std::size_t n = 0;
        const SourceChunk c = src.next(&rows, &n);
        if (c == SourceChunk::End)
            break;
        if (c == SourceChunk::Epoch) {
            d.epochAfter.push_back(d.rows.size());
            continue;
        }
        d.rows.insert(d.rows.end(), rows, rows + n);
    }
    return d;
}

void
expectStatsEqual(const SchemeStats &a, const SchemeStats &b)
{
    EXPECT_EQ(a.activations, b.activations);
    EXPECT_EQ(a.refreshEvents, b.refreshEvents);
    EXPECT_EQ(a.victimRowsRefreshed, b.victimRowsRefreshed);
    EXPECT_EQ(a.sramAccesses, b.sramAccesses);
    EXPECT_EQ(a.prngBits, b.prngBits);
    EXPECT_EQ(a.splits, b.splits);
    EXPECT_EQ(a.merges, b.merges);
    EXPECT_EQ(a.epochResets, b.epochResets);
    EXPECT_EQ(a.counterDramReads, b.counterDramReads);
    EXPECT_EQ(a.counterDramWrites, b.counterDramWrites);
}

} // namespace

TEST(RecordedStreamSource, ReproducesMarkerDelimitedChunks)
{
    std::vector<RowAddr> stream{1, 2, 3, kEpochMarker, 4,
                                kEpochMarker, kEpochMarker, 5};
    RecordedStreamSource src(stream);

    const RowAddr *rows = nullptr;
    std::size_t n = 0;
    ASSERT_EQ(src.next(&rows, &n), SourceChunk::Rows);
    EXPECT_EQ(n, 3u);
    EXPECT_EQ(rows[0], 1u);
    ASSERT_EQ(src.next(&rows, &n), SourceChunk::Epoch);
    ASSERT_EQ(src.next(&rows, &n), SourceChunk::Rows);
    EXPECT_EQ(n, 1u);
    EXPECT_EQ(rows[0], 4u);
    ASSERT_EQ(src.next(&rows, &n), SourceChunk::Epoch);
    ASSERT_EQ(src.next(&rows, &n), SourceChunk::Rows);
    EXPECT_EQ(n, 0u); // empty segment between adjacent markers
    ASSERT_EQ(src.next(&rows, &n), SourceChunk::Epoch);
    ASSERT_EQ(src.next(&rows, &n), SourceChunk::Rows);
    EXPECT_EQ(n, 1u);
    EXPECT_EQ(rows[0], 5u);
    ASSERT_EQ(src.next(&rows, &n), SourceChunk::End);
    ASSERT_EQ(src.next(&rows, &n), SourceChunk::End);
}

TEST(ReplaySources, BitIdenticalToReplayActivations)
{
    // Adversarial-ish streams: hammer pairs, scattered rows, empty
    // streams, marker edge cases.
    std::vector<std::vector<RowAddr>> streams(4);
    Xoshiro256StarStar rng(7);
    for (std::uint64_t i = 0; i < 20000; ++i) {
        streams[0].push_back(
            static_cast<RowAddr>(rng.nextBounded(kRows)));
        streams[1].push_back(i % 2 ? 100 : 102);
        if (i % 5000 == 4999) {
            streams[0].push_back(kEpochMarker);
            streams[1].push_back(kEpochMarker);
        }
    }
    streams[2] = {kEpochMarker};
    // streams[3] stays empty.

    const SchemeConfig cfg = drcatConfig();
    const ReplayResult direct = replayActivations(streams, cfg, kRows);

    std::vector<std::unique_ptr<ActivationSource>> sources;
    for (const auto &s : streams)
        sources.push_back(std::make_unique<RecordedStreamSource>(s));
    const ReplayResult viaSources = replaySources(sources, cfg, kRows);

    EXPECT_EQ(direct.banks, viaSources.banks);
    EXPECT_EQ(direct.epochs, viaSources.epochs);
    expectStatsEqual(direct.stats, viaSources.stats);
}

TEST(SyntheticAttackSource, DeterministicEpochsAndMix)
{
    AttackSourceParams p;
    p.numRows = kRows;
    p.targets = {100, 200, 300, 400};
    p.targetFraction = 0.5;
    p.actsPerEpoch = 10000;
    p.epochs = 3;
    p.seed = 11;

    SyntheticAttackSource a(p);
    SyntheticAttackSource b(p);
    const Drained da = drain(a);
    const Drained db = drain(b);

    EXPECT_EQ(da.rows, db.rows);
    EXPECT_EQ(da.rows.size(), 30000u);
    ASSERT_EQ(da.epochAfter.size(), 3u);
    EXPECT_EQ(da.epochAfter[0], 10000u);
    EXPECT_EQ(da.epochAfter[2], 30000u);

    // The target mix must match the configured fraction.
    std::size_t onTarget = 0;
    for (RowAddr r : da.rows)
        onTarget += (r == 100 || r == 200 || r == 300 || r == 400);
    const double share =
        static_cast<double>(onTarget) / static_cast<double>(
            da.rows.size());
    EXPECT_NEAR(share, 0.5, 0.02);
}

TEST(RefreshAwareAttackerSource, RotatesOnObservedRefresh)
{
    AttackSourceParams p;
    p.numRows = kRows;
    p.targets = {100, 200};
    p.targetFraction = 1.0; // pure hammer, deterministic order
    p.actsPerEpoch = 100;
    p.epochs = 1;
    p.seed = 3;

    RefreshAwareAttackerSource src(p);
    const RowAddr *rows = nullptr;
    std::size_t n = 0;

    ASSERT_EQ(src.next(&rows, &n), SourceChunk::Rows);
    ASSERT_EQ(n, 1u);
    EXPECT_EQ(rows[0], 100u);

    // No refresh triggered: aggressors stay put.
    src.onRefreshAction(rows[0], RefreshAction{});
    EXPECT_EQ(src.rotations(), 0u);
    EXPECT_EQ(src.aggressors()[0], 100u);

    ASSERT_EQ(src.next(&rows, &n), SourceChunk::Rows);
    EXPECT_EQ(rows[0], 200u);
    // Defense refreshes victims around row 200: the attacker must
    // re-aim that aggressor somewhere else.
    RefreshAction act;
    act.rowCount = 2;
    act.lo = 199;
    act.hi = 201;
    src.onRefreshAction(rows[0], act);
    EXPECT_EQ(src.rotations(), 1u);
    EXPECT_EQ(src.aggressors()[0], 100u);
    EXPECT_NE(src.aggressors()[1], 200u);

    // The rotated aggressor is hammered at its new location.
    ASSERT_EQ(src.next(&rows, &n), SourceChunk::Rows);
    EXPECT_EQ(rows[0], 100u);
    ASSERT_EQ(src.next(&rows, &n), SourceChunk::Rows);
    EXPECT_EQ(rows[0], src.aggressors()[1]);
}

TEST(RefreshAwareAttackerSource, ClosedLoopBeatsStaticOnTreeSchemes)
{
    // Against a CAT tree, re-aiming after every observed refresh must
    // force strictly more victim-row refreshes than blind hammering:
    // each rotation lands in a coarse (unsplit) region whose whole
    // span is refreshed at the next trigger.
    AttackSourceParams p;
    p.numRows = kRows;
    p.targets = {100, 900, 1700, 2500};
    p.targetFraction = 0.5;
    p.actsPerEpoch = 50000;
    p.epochs = 2;
    p.seed = 21;

    const SchemeConfig cfg = drcatConfig();

    std::vector<std::unique_ptr<ActivationSource>> openLoop;
    openLoop.push_back(std::make_unique<SyntheticAttackSource>(p));
    const ReplayResult statics = replaySources(openLoop, cfg, kRows);

    std::vector<std::unique_ptr<ActivationSource>> closedLoop;
    closedLoop.push_back(
        std::make_unique<RefreshAwareAttackerSource>(p));
    auto *attacker = static_cast<RefreshAwareAttackerSource *>(
        closedLoop[0].get());
    const ReplayResult adaptive = replaySources(closedLoop, cfg, kRows);

    EXPECT_GT(attacker->rotations(), 0u);
    EXPECT_EQ(statics.stats.activations, adaptive.stats.activations);
    EXPECT_GT(adaptive.stats.victimRowsRefreshed,
              statics.stats.victimRowsRefreshed);
}

} // namespace catsim
