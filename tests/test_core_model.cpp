/**
 * @file
 * Tests for the ROB core model driving traces into the controller.
 */

#include <gtest/gtest.h>

#include "sim/core_model.hpp"

namespace catsim
{

namespace
{

struct Fixture
{
    Fixture()
        : geometry(DramGeometry::dualCore2Ch()),
          timing(DramTiming::ddr3_1600()),
          dram(geometry, timing),
          mapper(geometry, MappingPolicy::RowRankBankChanCol)
    {
        SchemeConfig none;
        none.kind = SchemeKind::None;
        mc = std::make_unique<MemoryController>(dram, mapper, none);
    }

    Addr
    addrFor(RowAddr row, std::uint32_t col = 0) const
    {
        MappedAddr m;
        m.row = row;
        m.col = col;
        return mapper.compose(m);
    }

    DramGeometry geometry;
    DramTiming timing;
    DramSystem dram;
    AddressMapper mapper;
    std::unique_ptr<MemoryController> mc;
};

} // namespace

TEST(CoreModel, RetiresComputeGapAtFullWidth)
{
    Fixture f;
    auto trace = std::make_unique<VectorTrace>();
    // 800 instructions then one write: 800 / (2 retire x 4 mult) = 100
    // bus cycles of compute.
    trace->push({800, true, f.addrFor(5)});
    CoreParams params;
    CoreModel core(0, params, std::move(trace), *f.mc);
    ASSERT_TRUE(core.step());
    EXPECT_NEAR(core.time(), 100.0, 1.0);
    EXPECT_FALSE(core.step());
    EXPECT_TRUE(core.done());
}

TEST(CoreModel, ReadsOverlapUpToMlp)
{
    Fixture f;
    auto trace = std::make_unique<VectorTrace>();
    const int n = 6;
    for (int i = 0; i < n; ++i)
        trace->push({0, false, f.addrFor(static_cast<RowAddr>(i),
                                         static_cast<std::uint32_t>(i))});
    CoreParams params;
    params.mlp = 2;
    CoreModel core(0, params, std::move(trace), *f.mc);
    while (core.step()) {
    }
    core.drain();
    // With MLP 2 the six reads cannot all pipeline; the core's clock
    // must exceed a single read's latency but stay below fully serial
    // execution.
    const double single = f.timing.tRCD + f.timing.tCAS
                          + f.timing.tBURST;
    EXPECT_GT(core.time(), single);
    EXPECT_LT(core.time(), n * f.timing.tRC);
    EXPECT_EQ(core.memOps(), static_cast<Count>(n));
}

TEST(CoreModel, DrainWaitsForOutstandingReads)
{
    Fixture f;
    auto trace = std::make_unique<VectorTrace>();
    trace->push({0, false, f.addrFor(9)});
    CoreParams params;
    CoreModel core(0, params, std::move(trace), *f.mc);
    ASSERT_TRUE(core.step());
    const double before = core.time();
    core.drain();
    EXPECT_GT(core.time(), before)
        << "drain must advance past the read completion";
}

TEST(CoreModel, CountsInstructions)
{
    Fixture f;
    auto trace = std::make_unique<VectorTrace>();
    trace->push({10, true, f.addrFor(1)});
    trace->push({20, true, f.addrFor(2)});
    CoreParams params;
    CoreModel core(0, params, std::move(trace), *f.mc);
    while (core.step()) {
    }
    // gaps + the memory ops themselves
    EXPECT_EQ(core.instructionsRetired(), 10u + 20u + 2u);
    EXPECT_EQ(core.memOps(), 2u);
}

TEST(CoreModel, PostedWritesDrainThroughTheController)
{
    Fixture f;
    auto trace = std::make_unique<VectorTrace>();
    // Far more writes than the 64-entry queue holds.
    for (int i = 0; i < 300; ++i)
        trace->push({0, true, f.addrFor(7)});
    CoreParams params;
    CoreModel core(0, params, std::move(trace), *f.mc);
    while (core.step()) {
    }
    core.drain();
    // Watermark drains must have fired, and a final flush accounts for
    // every write.
    EXPECT_GE(f.mc->stats().writeDrains, 1u);
    f.mc->drainAllWrites(static_cast<Cycle>(core.time()));
    EXPECT_EQ(f.dram.totalActivations(), 300u);
}

} // namespace catsim
