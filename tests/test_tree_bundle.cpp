/**
 * @file
 * Differential suite for the structure-of-arrays TreeBundle
 * (src/core/tree_bundle.*).
 *
 * The bundle's fast path must be BIT-IDENTICAL to the flattened
 * CatTree it mirrors and, transitively, to the frozen ReferenceCatTree
 * oracle: same per-access refresh decisions, same SRAM charges, same
 * split/merge/epoch counts, for adversarial streams, refresh storms,
 * epoch resets, non-power-of-two M, and rank-pooled groups with tail
 * banks.  Replay-level tests additionally pin that bundleWidth is a
 * pure execution-layout knob - every width produces the same
 * ReplayResult, including for non-CAT schemes where it is a no-op.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/bit.hpp"
#include "common/rng.hpp"
#include "core/drcat.hpp"
#include "core/factory.hpp"
#include "core/prcat.hpp"
#include "core/reference_cat_tree.hpp"
#include "core/shared_pool.hpp"
#include "core/tree_bundle.hpp"
#include "sim/activation_sim.hpp"

namespace catsim
{

namespace
{

/**
 * A stream that actually exercises the tree: a few hammered hot rows
 * (drives splits all the way down, then refreshes), a hot 2^12-row
 * neighborhood (drives mid-depth structure), and a uniform background
 * (keeps shallow counters warm).  Weighted DRCAT runs see enough
 * repeat refreshes to saturate weights and reconfigure.
 */
std::vector<RowAddr>
adversarialStream(std::size_t n, RowAddr num_rows, std::uint64_t seed)
{
    Xoshiro256StarStar rng(seed);
    std::vector<RowAddr> rows;
    rows.reserve(n);
    const RowAddr hot[4] = {5, num_rows / 3, num_rows / 2,
                            num_rows - 2};
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t pick = rng.nextBounded(100);
        if (pick < 55)
            rows.push_back(hot[rng.nextBounded(4)]);
        else if (pick < 85)
            rows.push_back(static_cast<RowAddr>(
                (num_rows / 4) + rng.nextBounded(1u << 12)));
        else
            rows.push_back(
                static_cast<RowAddr>(rng.nextBounded(num_rows)));
    }
    return rows;
}

void
expectSameStats(const SchemeStats &a, const SchemeStats &b)
{
    EXPECT_EQ(a.activations, b.activations);
    EXPECT_EQ(a.refreshEvents, b.refreshEvents);
    EXPECT_EQ(a.victimRowsRefreshed, b.victimRowsRefreshed);
    EXPECT_EQ(a.sramAccesses, b.sramAccesses);
    EXPECT_EQ(a.splits, b.splits);
    EXPECT_EQ(a.merges, b.merges);
    EXPECT_EQ(a.epochResets, b.epochResets);
}

struct DiffCase
{
    std::uint32_t numCounters;
    std::uint32_t threshold;
    bool weights;
    std::size_t accesses;
    std::size_t epochEvery; //!< 0 = no epochs
};

/**
 * Drive one bundle lane and a standalone scheme (and, for
 * power-of-two M, the frozen reference tree) through the same stream,
 * comparing every single refresh action.
 */
void
runLaneDiff(const DiffCase &c)
{
    constexpr RowAddr kRows = 65536;
    constexpr std::uint32_t kLevels = 11;

    TreeBundle bundle(kRows, c.numCounters, kLevels, c.threshold,
                      c.weights, {}, nullptr, 1);
    std::unique_ptr<MitigationScheme> lone;
    if (c.weights)
        lone = std::make_unique<Drcat>(kRows, c.numCounters, kLevels,
                                       c.threshold);
    else
        lone = std::make_unique<Prcat>(kRows, c.numCounters, kLevels,
                                       c.threshold);

    const bool pow2 = isPow2(c.numCounters);
    std::unique_ptr<ReferenceCatTree> ref;
    if (pow2)
        ref = std::make_unique<ReferenceCatTree>(makeCatTreeParams(
            kRows, c.numCounters, kLevels, c.threshold, c.weights, {},
            nullptr));

    const auto rows =
        adversarialStream(c.accesses, kRows, 0x5eed0000 + c.numCounters);
    for (std::size_t i = 0; i < rows.size(); ++i) {
        if (c.epochEvery && i && i % c.epochEvery == 0) {
            bundle.onEpoch(0);
            lone->onEpoch();
            if (ref) {
                if (c.weights)
                    ref->resetCountsOnly();
                else
                    ref->reset();
            }
        }
        const RefreshAction ba = bundle.onActivate(0, rows[i]);
        const RefreshAction sa = lone->onActivate(rows[i]);
        ASSERT_EQ(ba.rowCount, sa.rowCount) << "access " << i;
        ASSERT_EQ(ba.lo, sa.lo) << "access " << i;
        ASSERT_EQ(ba.hi, sa.hi) << "access " << i;
        if (ref) {
            const auto rr = ref->access(rows[i]);
            ASSERT_EQ(ba.rowCount, rr.refreshed ? rr.rowsRefreshed : 0)
                << "access " << i;
            if (rr.refreshed) {
                ASSERT_EQ(ba.lo, rr.lo) << "access " << i;
                ASSERT_EQ(ba.hi, rr.hi) << "access " << i;
            }
        }
    }

    expectSameStats(bundle.laneStats(0), lone->stats());

    std::string why;
    EXPECT_TRUE(bundle.tree(0).checkInvariants(&why)) << why;
    if (ref) {
        EXPECT_EQ(bundle.tree(0).totalSplits(), ref->totalSplits());
        EXPECT_EQ(bundle.tree(0).totalMerges(), ref->totalMerges());
        EXPECT_EQ(bundle.tree(0).activeCounters(),
                  ref->activeCounters());
    }
}

} // namespace

TEST(TreeBundleDiff, Pow2MatchesTreeAndReferencePrcat)
{
    runLaneDiff({64, 1024, false, 200000, 0});
}

TEST(TreeBundleDiff, Pow2MatchesTreeAndReferenceDrcat)
{
    runLaneDiff({64, 1024, true, 200000, 0});
}

TEST(TreeBundleDiff, EpochResetsStayIdentical)
{
    runLaneDiff({64, 512, false, 150000, 20000});
    runLaneDiff({64, 512, true, 150000, 20000});
}

TEST(TreeBundleDiff, RefreshStormSmallThreshold)
{
    // T small enough that refreshes (and DRCAT reconfigurations)
    // dominate: the slow path runs constantly and must stay exact.
    runLaneDiff({128, 64, true, 120000, 15000});
    runLaneDiff({128, 64, false, 120000, 15000});
}

TEST(TreeBundleDiff, NonPow2Counters)
{
    for (const std::uint32_t m : {31u, 33u, 65u}) {
        runLaneDiff({m, 512, false, 120000, 25000});
        runLaneDiff({m, 512, true, 120000, 25000});
    }
}

TEST(TreeBundleLanes, BatchAndLanesMatchPerCallAccess)
{
    // Three ways to deliver the same per-lane streams - one call per
    // activation, one batch per lane, one ragged multi-lane lockstep
    // call - must produce identical per-lane stats and tree shapes.
    constexpr RowAddr kRows = 65536;
    constexpr std::uint32_t kLanes = 8;

    std::vector<std::vector<RowAddr>> streams;
    for (std::uint32_t l = 0; l < kLanes; ++l)
        streams.push_back(
            adversarialStream(40000 + 7777 * l, kRows, 99 + l));

    TreeBundle perCall(kRows, 48, 11, 256, true, {}, nullptr, kLanes);
    TreeBundle perBatch(kRows, 48, 11, 256, true, {}, nullptr, kLanes);
    TreeBundle lockstep(kRows, 48, 11, 256, true, {}, nullptr, kLanes);

    for (std::uint32_t l = 0; l < kLanes; ++l)
        for (const RowAddr r : streams[l])
            perCall.onActivate(l, r);
    std::vector<TreeBundle::LaneBatch> batches;
    for (std::uint32_t l = 0; l < kLanes; ++l) {
        perBatch.onActivateBatch(l, streams[l].data(),
                                 streams[l].size());
        batches.push_back({l, streams[l].data(), streams[l].size()});
    }
    lockstep.onActivateLanes(batches.data(), batches.size());

    for (std::uint32_t l = 0; l < kLanes; ++l) {
        expectSameStats(perCall.laneStats(l), perBatch.laneStats(l));
        expectSameStats(perCall.laneStats(l), lockstep.laneStats(l));
        EXPECT_EQ(perCall.tree(l).activeCounters(),
                  lockstep.tree(l).activeCounters());
        std::string why;
        EXPECT_TRUE(lockstep.tree(l).checkInvariants(&why)) << why;
    }
}

TEST(TreeBundlePooled, RankPooledGroupMatchesStandaloneSchemes)
{
    // A 4-bank rank pool with contended growth, driven round-robin:
    // the bundle-backed group and a standalone pooled Prcat group must
    // agree on every refresh action (pool arbitration order included).
    constexpr RowAddr kRows = 65536;
    constexpr std::uint32_t kBanks = 4;
    constexpr std::uint32_t kPerBank = 16;

    for (const bool weights : {false, true}) {
        auto pool = std::make_shared<SharedCounterPool>(kPerBank
                                                        * kBanks);
        TreeBundle bundle(kRows, kPerBank, 11, 512, weights, {}, pool,
                          kBanks);

        auto lonePool =
            std::make_shared<SharedCounterPool>(kPerBank * kBanks);
        std::vector<std::unique_ptr<MitigationScheme>> lone;
        for (std::uint32_t b = 0; b < kBanks; ++b) {
            if (weights)
                lone.push_back(std::make_unique<Drcat>(
                    kRows, kPerBank, 11, 512,
                    std::vector<std::uint32_t>{}, lonePool));
            else
                lone.push_back(std::make_unique<Prcat>(
                    kRows, kPerBank, 11, 512,
                    std::vector<std::uint32_t>{}, lonePool));
        }

        std::vector<std::vector<RowAddr>> streams;
        for (std::uint32_t b = 0; b < kBanks; ++b)
            streams.push_back(
                adversarialStream(120000, kRows, 1234 + b));

        for (std::size_t i = 0; i < streams[0].size(); ++i) {
            for (std::uint32_t b = 0; b < kBanks; ++b) {
                if (i && i % 30000 == 0) {
                    bundle.onEpoch(b);
                    lone[b]->onEpoch();
                }
                const RefreshAction ba =
                    bundle.onActivate(b, streams[b][i]);
                const RefreshAction sa =
                    lone[b]->onActivate(streams[b][i]);
                ASSERT_EQ(ba.rowCount, sa.rowCount)
                    << "bank " << b << " access " << i;
                ASSERT_EQ(ba.lo, sa.lo)
                    << "bank " << b << " access " << i;
                ASSERT_EQ(ba.hi, sa.hi)
                    << "bank " << b << " access " << i;
            }
        }
        for (std::uint32_t b = 0; b < kBanks; ++b) {
            expectSameStats(bundle.laneStats(b), lone[b]->stats());
            std::string why;
            EXPECT_TRUE(bundle.tree(b).checkInvariants(&why)) << why;
        }
        EXPECT_EQ(bundle.sharedPool()->peakInUse(),
                  lonePool->peakInUse());
        EXPECT_EQ(bundle.sharedPool()->acquires(),
                  lonePool->acquires());
    }
}

TEST(TreeBundleFactory, BundleWidthIsPureLayoutInReplay)
{
    // Replay the same recorded streams at several bundle widths (1 =
    // standalone trees) and require identical ReplayResults - the
    // whole point of the knob.  Includes a pooled config with a tail
    // group (10 banks, pool groups of 4).
    constexpr RowAddr kRows = 65536;
    constexpr std::uint32_t kBanks = 10;

    std::vector<std::vector<RowAddr>> streams;
    for (std::uint32_t b = 0; b < kBanks; ++b) {
        auto s = adversarialStream(60000, kRows, 777 + b);
        s.insert(s.begin() + 20000, kEpochMarker);
        s.insert(s.begin() + 45000, kEpochMarker);
        streams.push_back(std::move(s));
    }

    for (const bool pooled : {false, true}) {
        for (const auto kind : {SchemeKind::Prcat, SchemeKind::Drcat}) {
            SchemeConfig cfg;
            cfg.kind = kind;
            cfg.numCounters = 16;
            cfg.threshold = 512;
            cfg.banksPerPool = pooled ? 4 : 0;

            cfg.bundleWidth = 1;
            const ReplayResult base =
                replayActivations(streams, cfg, kRows);
            for (const std::uint32_t width : {0u, 3u, 16u}) {
                if (pooled && width != 0)
                    continue; // pooled widths are pinned to the group
                cfg.bundleWidth = width;
                const ReplayResult r =
                    replayActivations(streams, cfg, kRows);
                expectSameStats(r.stats, base.stats);
                EXPECT_EQ(r.epochs, base.epochs);
            }
        }
    }
}

TEST(TreeBundleFactory, WidthIsNoOpForNonCatSchemes)
{
    // bundleWidth must be ignored (not rejected, not acted on) for
    // SCA/PRA/CounterCache - here across all four eviction policies.
    constexpr RowAddr kRows = 65536;
    std::vector<std::vector<RowAddr>> streams;
    for (std::uint32_t b = 0; b < 4; ++b)
        streams.push_back(adversarialStream(30000, kRows, 42 + b));

    for (const auto policy :
         {EvictionPolicyKind::Legacy, EvictionPolicyKind::Lru,
          EvictionPolicyKind::Lfu, EvictionPolicyKind::Random}) {
        SchemeConfig cfg;
        cfg.kind = SchemeKind::CounterCache;
        cfg.numCounters = 128;
        cfg.threshold = 512;
        cfg.evictionPolicy = policy;

        cfg.bundleWidth = 1;
        const ReplayResult base = replayActivations(streams, cfg, kRows);
        cfg.bundleWidth = 0;
        const ReplayResult r = replayActivations(streams, cfg, kRows);
        expectSameStats(r.stats, base.stats);
    }
}

TEST(TreeBundleFactory, PooledWidthMismatchIsFatal)
{
    SchemeConfig cfg;
    cfg.kind = SchemeKind::Drcat;
    cfg.numCounters = 16;
    cfg.banksPerPool = 4;
    cfg.bundleWidth = 8;
    EXPECT_EXIT(makeBankSchemes(cfg, 65536, 16),
                ::testing::ExitedWithCode(1), "bundleWidth");
}

TEST(TreeBundleFactory, BundleBackedSchemesExposeTheirBundle)
{
    SchemeConfig cfg;
    cfg.kind = SchemeKind::Drcat;
    cfg.numCounters = 16;
    cfg.threshold = 512;
    cfg.bundleWidth = 4;
    auto schemes = makeBankSchemes(cfg, 65536, 10);
    ASSERT_EQ(schemes.size(), 10u);

    // Groups of 4, 4, 2: lanes number within each bundle.
    const BundleHint h0 = schemes[0]->bundleHint();
    ASSERT_TRUE(h0.bundled());
    EXPECT_EQ(h0.lane, 0u);
    EXPECT_EQ(schemes[3]->bundleHint().bundle, h0.bundle);
    EXPECT_EQ(schemes[3]->bundleHint().lane, 3u);
    EXPECT_NE(schemes[4]->bundleHint().bundle, h0.bundle);
    EXPECT_EQ(schemes[4]->bundleHint().lane, 0u);
    EXPECT_EQ(schemes[8]->bundleHint().bundle->lanes(), 2u);
    EXPECT_EQ(schemes[0]->name(), "DRCAT_16");
    EXPECT_GT(h0.bundle->arenaBytes(), 0u);

    // Standalone schemes report no bundle.
    cfg.bundleWidth = 1;
    auto lone = makeBankSchemes(cfg, 65536, 2);
    EXPECT_FALSE(lone[0]->bundleHint().bundled());
}

} // namespace catsim
