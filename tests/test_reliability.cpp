/**
 * @file
 * Tests for the reliability analysis (paper Section III-A, Fig 1).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "reliability/montecarlo.hpp"
#include "reliability/unsurvivability.hpp"

namespace catsim
{

TEST(Unsurvivability, MatchesClosedForm)
{
    // Small T so the closed form can be computed directly.
    const double direct = std::pow(1.0 - 0.01, 100.0) * 10.0
                          * refreshPeriodsInYears(5.0);
    const double v = praUnsurvivability(100, 0.01, 10.0, 5.0);
    if (direct >= 1.0)
        EXPECT_DOUBLE_EQ(v, 1.0);
    else
        EXPECT_NEAR(v, direct, direct * 1e-9);
}

TEST(Unsurvivability, Fig1Anchors)
{
    // Fig 1: at T=32K, p > 0.001 beats Chipkill (1e-4); at smaller T
    // the same p fails.
    EXPECT_LT(praUnsurvivability(32768, 0.002, 10.0, 5.0),
              kChipkillUnsurvivability);
    EXPECT_GT(praUnsurvivability(8192, 0.001, 10.0, 5.0),
              kChipkillUnsurvivability);
}

TEST(Unsurvivability, MonotoneInPAndT)
{
    double prev = 2.0;
    for (double p : {0.001, 0.002, 0.003, 0.004, 0.005, 0.006}) {
        const double v = praUnsurvivability(16384, p, 20.0, 5.0);
        EXPECT_LE(v, prev);
        if (prev < 1.0) {
            EXPECT_LT(v, prev) << "strictly below the cap";
        }
        prev = v;
    }
    EXPECT_LT(praUnsurvivability(32768, 0.002, 10.0, 5.0),
              praUnsurvivability(16384, 0.002, 10.0, 5.0));
}

TEST(Unsurvivability, ScalesWithQ0AndYears)
{
    const double a = praUnsurvivability(32768, 0.001, 10.0, 5.0);
    const double b = praUnsurvivability(32768, 0.001, 40.0, 5.0);
    EXPECT_NEAR(b / a, 4.0, 1e-6);
    const double c = praUnsurvivability(32768, 0.001, 10.0, 10.0);
    EXPECT_NEAR(c / a, 2.0, 1e-6);
}

TEST(Unsurvivability, PaperProbabilityChoices)
{
    // Section VIII-C: p = 0.001/0.002/0.003/0.005 for T =
    // 64K/32K/16K/8K keep PRA below the Chipkill bar.
    EXPECT_LT(praUnsurvivability(65536, 0.001, 40.0, 5.0),
              kChipkillUnsurvivability);
    EXPECT_LT(praUnsurvivability(32768, 0.002, 40.0, 5.0),
              kChipkillUnsurvivability);
    EXPECT_LT(praUnsurvivability(16384, 0.003, 40.0, 5.0),
              kChipkillUnsurvivability);
    EXPECT_LT(praUnsurvivability(8192, 0.005, 40.0, 5.0),
              kChipkillUnsurvivability);
}

TEST(Unsurvivability, MinimumSafeProbabilityGrowsAsTShrinks)
{
    const double p64 = minimumSafeProbability(65536, 20.0, 5.0);
    const double p16 = minimumSafeProbability(16384, 20.0, 5.0);
    const double p8 = minimumSafeProbability(8192, 20.0, 5.0);
    EXPECT_LT(p64, p16);
    EXPECT_LT(p16, p8);
}

TEST(MonteCarlo, TruePrngMatchesAnalytic)
{
    // With a short window the analytic failure probability is sizable
    // and a true PRNG should match it.
    TruePrng prng(123);
    const std::uint32_t T = 256;
    const double p = 1.0 / 128.0; // 7 bits, accept=1
    const auto mc = praWindowFailures(prng, T, p, 20000);
    const double analytic = std::pow(1.0 - p, T); // ~0.134
    EXPECT_NEAR(mc.windowFailureProb, analytic, 0.01);
}

TEST(MonteCarlo, LfsrWorseThanTruePrng)
{
    // The paper's key Monte-Carlo finding: an LFSR-based PRNG degrades
    // PRA's reliability versus the independent-draw analysis.  The
    // failure is structural: a maximal LFSR of width w never emits w
    // consecutive zeros, so with a 9-bit accept region of {0} a 9-bit
    // LFSR never triggers a refresh at all - every window fails.
    const std::uint32_t T = 4096;
    const double p = 1.0 / 512.0; // 9 bits, accept = {0}

    TruePrng good(7);
    const auto mcGood = praWindowFailures(good, T, p, 2000);
    // Analytic: (1 - 1/512)^4096 ~ 3.3e-4.
    EXPECT_LT(mcGood.windowFailureProb, 0.01);

    LfsrPrng cheap(9, 0x1AB);
    const auto mcCheap = praWindowFailures(cheap, T, p, 2000);
    EXPECT_DOUBLE_EQ(mcCheap.windowFailureProb, 1.0)
        << "a 9-bit LFSR can never produce the all-zero 9-bit word";
}

TEST(MonteCarlo, UnsurvivabilityAfterIntervals)
{
    McResult r;
    r.windows = 100;
    r.failedWindows = 1;
    r.windowFailureProb = 0.01;
    // 10 windows per interval, 25 intervals: 1-(0.99)^250 ~ 0.919.
    EXPECT_NEAR(r.unsurvivabilityAfter(10.0, 25.0), 0.919, 0.01);
    McResult zero;
    EXPECT_DOUBLE_EQ(zero.unsurvivabilityAfter(10.0, 25.0), 0.0);
}

} // namespace catsim
