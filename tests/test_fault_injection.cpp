/**
 * @file
 * Tests for the deterministic fail-point registry
 * (common/fault_injection) and its integration with the baseline
 * cache's durability path: a torn or failed write must never be
 * loaded back.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "common/fault_injection.hpp"
#include "sim/baseline_io.hpp"

namespace catsim
{

namespace
{

/** Disarms every fail-point on scope exit so tests can't leak arms. */
struct FailpointGuard
{
    ~FailpointGuard() { fault::installFailpoints(""); }
};

TimingResult
sampleResult()
{
    TimingResult r;
    r.execCycles = 123456;
    r.execSeconds = 0.0625;
    r.epochs = 3;
    r.controller.reads = 1000;
    r.controller.writes = 500;
    r.scheme.activations = 777;
    r.totalActivations = 1500;
    r.victimRowsRefreshed = 42;
    r.bankStreams = {{1, 2, 3}, {}, {7, 8}};
    return r;
}

std::filesystem::path
scratchFile(const std::string &name)
{
    const auto dir = std::filesystem::temp_directory_path()
                     / "catsim_fault_injection";
    std::filesystem::create_directories(dir);
    const auto path = dir / name;
    std::filesystem::remove(path);
    return path;
}

} // namespace

TEST(FaultInjection, UnarmedIsFree)
{
    FailpointGuard guard;
    fault::installFailpoints("");
    EXPECT_FALSE(fault::armed());
    EXPECT_FALSE(fault::shouldFail("anything"));
    // Unarmed sites are not even counted (the fast path short-circuits
    // before the registry).
    EXPECT_EQ(fault::hitCount("anything"), 0u);
    EXPECT_NO_THROW(fault::maybeThrow("anything"));
}

TEST(FaultInjection, FiresAtExactHit)
{
    FailpointGuard guard;
    fault::installFailpoints("site_a@2");
    EXPECT_TRUE(fault::armed());
    EXPECT_FALSE(fault::shouldFail("site_a")); // hit 1
    EXPECT_TRUE(fault::shouldFail("site_a"));  // hit 2 - armed
    EXPECT_FALSE(fault::shouldFail("site_a")); // hit 3
    EXPECT_EQ(fault::hitCount("site_a"), 3u);
    // Other sites pass through untouched but armed() stays global.
    EXPECT_FALSE(fault::shouldFail("site_b"));
}

TEST(FaultInjection, MultipleHitsAndSites)
{
    FailpointGuard guard;
    fault::installFailpoints("a@1,a@3,b@2");
    EXPECT_TRUE(fault::shouldFail("a"));
    EXPECT_FALSE(fault::shouldFail("a"));
    EXPECT_TRUE(fault::shouldFail("a"));
    EXPECT_FALSE(fault::shouldFail("b"));
    EXPECT_TRUE(fault::shouldFail("b"));
}

TEST(FaultInjection, StarArmsEveryHit)
{
    FailpointGuard guard;
    fault::installFailpoints("always@*");
    for (int i = 0; i < 5; ++i)
        EXPECT_TRUE(fault::shouldFail("always")) << "hit " << i;
}

TEST(FaultInjection, MalformedItemsIgnored)
{
    FailpointGuard guard;
    // "@3" (empty site), "plain" (no @), "x@0" and "x@banana" (bad
    // nth) must all be dropped; the valid item still arms.
    fault::installFailpoints("@3,plain,x@0,x@banana,ok@1");
    EXPECT_FALSE(fault::shouldFail("plain"));
    EXPECT_FALSE(fault::shouldFail("x"));
    EXPECT_TRUE(fault::shouldFail("ok"));
}

TEST(FaultInjection, InstallResetsCounters)
{
    FailpointGuard guard;
    fault::installFailpoints("s@1");
    EXPECT_TRUE(fault::shouldFail("s"));
    fault::installFailpoints("s@1");
    EXPECT_TRUE(fault::shouldFail("s"))
        << "reinstall must reset the hit counter";
}

TEST(FaultInjection, MaybeThrowNamesTheSite)
{
    FailpointGuard guard;
    fault::installFailpoints("boom@1");
    try {
        fault::maybeThrow("boom");
        FAIL() << "expected FaultInjected";
    } catch (const FaultInjected &e) {
        EXPECT_NE(std::string(e.what()).find("boom"), std::string::npos);
    }
}

TEST(FaultInjection, TornBaselineWriteNeverLoads)
{
    FailpointGuard guard;
    const auto path = scratchFile("torn.catb");
    const TimingResult r = sampleResult();

    fault::installFailpoints("baseline_write_torn@1");
    EXPECT_TRUE(saveBaseline(path.string(), "key", 0.02, r));
    ASSERT_TRUE(std::filesystem::exists(path));

    fault::installFailpoints("");
    TimingResult out;
    EXPECT_FALSE(loadBaseline(path.string(), "key", 0.02, &out))
        << "a torn cache file must miss (CRC), not load garbage";

    // A clean rewrite over the torn file heals it.
    EXPECT_TRUE(saveBaseline(path.string(), "key", 0.02, r));
    ASSERT_TRUE(loadBaseline(path.string(), "key", 0.02, &out));
    EXPECT_EQ(out.execCycles, r.execCycles);
    EXPECT_EQ(out.execSeconds, r.execSeconds);
    EXPECT_EQ(out.bankStreams, r.bankStreams);
    EXPECT_EQ(out.victimRowsRefreshed, r.victimRowsRefreshed);
}

TEST(FaultInjection, BaselineWriteEnospcLeavesNoFile)
{
    FailpointGuard guard;
    const auto path = scratchFile("enospc.catb");

    fault::installFailpoints("baseline_write_enospc@1");
    EXPECT_FALSE(saveBaseline(path.string(), "key", 0.02,
                              sampleResult()));
    EXPECT_FALSE(std::filesystem::exists(path));
}

TEST(FaultInjection, BaselineReadFaultMisses)
{
    FailpointGuard guard;
    const auto path = scratchFile("readfault.catb");
    const TimingResult r = sampleResult();
    ASSERT_TRUE(saveBaseline(path.string(), "key", 0.02, r));

    fault::installFailpoints("baseline_read@1");
    TimingResult out;
    EXPECT_FALSE(loadBaseline(path.string(), "key", 0.02, &out));

    // The fault was one-shot; the next load succeeds.
    EXPECT_TRUE(loadBaseline(path.string(), "key", 0.02, &out));
    EXPECT_EQ(out.execCycles, r.execCycles);
}

} // namespace catsim
