/**
 * @file
 * Unit tests for the PRNG family (SplitMix64, xoshiro256**).
 */

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"

namespace catsim
{

TEST(SplitMix64, DeterministicSequence)
{
    SplitMix64 a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiffer)
{
    SplitMix64 a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_EQ(same, 0);
}

TEST(Xoshiro, DeterministicGivenSeed)
{
    Xoshiro256StarStar a(7), b(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro, DoubleRange)
{
    Xoshiro256StarStar rng(3);
    for (int i = 0; i < 100000; ++i) {
        const double d = rng.nextDouble();
        ASSERT_GE(d, 0.0);
        ASSERT_LT(d, 1.0);
    }
}

TEST(Xoshiro, DoubleMeanNearHalf)
{
    Xoshiro256StarStar rng(11);
    double sum = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += rng.nextDouble();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Xoshiro, BoundedStaysInBound)
{
    Xoshiro256StarStar rng(5);
    for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 17ULL, 65536ULL}) {
        for (int i = 0; i < 10000; ++i)
            ASSERT_LT(rng.nextBounded(bound), bound);
    }
}

TEST(Xoshiro, BoundedZeroIsZero)
{
    Xoshiro256StarStar rng(5);
    EXPECT_EQ(rng.nextBounded(0), 0u);
}

TEST(Xoshiro, BoundedCoversAllValues)
{
    Xoshiro256StarStar rng(9);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 2000; ++i)
        seen.insert(rng.nextBounded(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Xoshiro, BoundedRoughlyUniform)
{
    Xoshiro256StarStar rng(13);
    const int buckets = 10;
    const int n = 100000;
    int counts[buckets] = {};
    for (int i = 0; i < n; ++i)
        ++counts[rng.nextBounded(buckets)];
    for (int b = 0; b < buckets; ++b)
        EXPECT_NEAR(counts[b], n / buckets, n / buckets * 0.1);
}

TEST(Xoshiro, GaussianMoments)
{
    Xoshiro256StarStar rng(17);
    double sum = 0.0, sq = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        const double g = rng.nextGaussian();
        sum += g;
        sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Xoshiro, BernoulliRate)
{
    Xoshiro256StarStar rng(19);
    const int n = 200000;
    int hits = 0;
    for (int i = 0; i < n; ++i)
        hits += rng.nextBernoulli(0.01);
    EXPECT_NEAR(hits / static_cast<double>(n), 0.01, 0.002);
}

} // namespace catsim
