/**
 * @file
 * Property tests for the DDR5 RFM-style scheme: an RFM refresh is
 * issued within the configured activation budget on every bank under
 * random, burst, and many-sided streams; refresh accounting is
 * identical through onActivate and onActivateBatch; victims follow the
 * physical-adjacency model.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "core/factory.hpp"
#include "core/rfm.hpp"
#include "sim/activation_sim.hpp"

namespace catsim
{

namespace
{

constexpr RowAddr kRows = 65536;

/** Random, burst, and round-robin many-sided activation streams. */
std::vector<std::vector<RowAddr>>
streamCorpus(std::size_t acts)
{
    std::vector<std::vector<RowAddr>> corpus(3);
    Xoshiro256StarStar rng(17);
    for (std::size_t i = 0; i < acts; ++i) {
        corpus[0].push_back(
            static_cast<RowAddr>(rng.nextBounded(kRows)));
        corpus[1].push_back(4242); // single-row burst
        corpus[2].push_back(
            static_cast<RowAddr>(1000 + 2 * (i % 8))); // many-sided
    }
    return corpus;
}

} // namespace

TEST(Rfm, NameAndBudget)
{
    Rfm rfm(kRows, 64);
    EXPECT_EQ(rfm.name(), "RFM_64");
    EXPECT_EQ(rfm.budget(), 64u);
}

TEST(Rfm, RefreshWithinBudgetOnEveryStream)
{
    constexpr std::uint32_t kBudget = 64;
    constexpr std::size_t kActs = 6400;
    for (const auto &stream : streamCorpus(kActs)) {
        Rfm rfm(kRows, kBudget);
        std::uint64_t sinceRefresh = 0;
        for (const RowAddr row : stream) {
            ++sinceRefresh;
            if (rfm.onActivate(row).triggered())
                sinceRefresh = 0;
            ASSERT_LE(sinceRefresh, kBudget)
                << "RFM exceeded its activation budget";
        }
        // The cadence is exact, not just bounded.
        EXPECT_EQ(rfm.stats().refreshEvents, kActs / kBudget);
        EXPECT_EQ(rfm.stats().activations, kActs);
    }
}

TEST(Rfm, BurstRefreshesTheSampledRowsVictims)
{
    Rfm rfm(kRows, 4);
    for (int i = 0; i < 3; ++i)
        EXPECT_FALSE(rfm.onActivate(500).triggered());
    const RefreshAction act = rfm.onActivate(500);
    ASSERT_TRUE(act.triggered());
    EXPECT_EQ(act.lo, 499u);
    EXPECT_EQ(act.hi, 501u);
    EXPECT_EQ(act.rowCount, 2u) << "aggressor itself not refreshed";
    EXPECT_EQ(rfm.stats().victimRowsRefreshed, 2u);
}

TEST(Rfm, AdjacencyModelSelectsPhysicalVictims)
{
    const RowAdjacency adj(RowAdjacency::Kind::BlockMirrored, kRows);
    Rfm rfm(kRows, 1);
    rfm.setAdjacency(&adj);
    const RefreshAction act = rfm.onActivate(1000);
    ASSERT_TRUE(act.triggered());
    std::array<RowAddr, 2> victims{};
    ASSERT_EQ(adj.victims(1000, victims), 2u);
    EXPECT_EQ(act.lo, std::min(victims[0], victims[1]));
    EXPECT_EQ(act.hi, std::max(victims[0], victims[1]));
}

TEST(Rfm, EpochResetsRollingCounter)
{
    constexpr std::uint32_t kBudget = 64;
    Rfm rfm(kRows, kBudget);
    for (std::uint32_t i = 0; i < kBudget - 1; ++i)
        EXPECT_FALSE(rfm.onActivate(i).triggered());
    rfm.onEpoch();
    // The rolling window restarted: a full budget is available again.
    for (std::uint32_t i = 0; i < kBudget - 1; ++i)
        EXPECT_FALSE(rfm.onActivate(i).triggered());
    EXPECT_TRUE(rfm.onActivate(9).triggered());
    EXPECT_EQ(rfm.stats().epochResets, 1u);
}

TEST(Rfm, BatchMatchesPerActivationStats)
{
    Rfm single(kRows, 32);
    Rfm batched(kRows, 32);
    std::vector<RowAddr> acts;
    Xoshiro256StarStar rng(3);
    for (int i = 0; i < 10000; ++i)
        acts.push_back(static_cast<RowAddr>(rng.nextBounded(kRows)));

    for (const RowAddr row : acts)
        single.onActivate(row);
    for (std::size_t i = 0; i < acts.size(); i += 513) {
        const std::size_t n = std::min<std::size_t>(513,
                                                    acts.size() - i);
        batched.onActivateBatch(acts.data() + i, n);
    }

    const SchemeStats &a = single.stats();
    const SchemeStats &b = batched.stats();
    EXPECT_EQ(a.activations, b.activations);
    EXPECT_EQ(a.refreshEvents, b.refreshEvents);
    EXPECT_EQ(a.victimRowsRefreshed, b.victimRowsRefreshed);
    EXPECT_EQ(a.sramAccesses, b.sramAccesses);
    EXPECT_EQ(a.epochResets, b.epochResets);
}

TEST(Rfm, EveryBankRefreshesWithinBudgetUnderReplay)
{
    // Four banks with different stream lengths through the factory +
    // replay stack: each bank's scheme must issue exactly
    // epochs * floor(actsPerEpoch / budget) refreshes - the rolling
    // counter resets at every retention epoch.
    constexpr std::uint32_t kBudget = 32;
    SchemeConfig cfg;
    cfg.kind = SchemeKind::Rfm;
    cfg.rfmBudget = kBudget;

    const std::uint64_t actsPerBank[4] = {2000, 3300, 4096, 700};
    std::vector<std::unique_ptr<ActivationSource>> sources;
    std::uint64_t wantRefreshes = 0;
    std::uint64_t wantActs = 0;
    for (std::uint32_t b = 0; b < 4; ++b) {
        AttackSourceParams p;
        p.numRows = kRows;
        p.targets = {RowAddr(100 + b)};
        p.actsPerEpoch = actsPerBank[b];
        p.epochs = 2;
        p.seed = 50 + b;
        sources.push_back(std::make_unique<SyntheticAttackSource>(p));
        wantRefreshes += 2 * (actsPerBank[b] / kBudget);
        wantActs += 2 * actsPerBank[b];
    }
    const ReplayResult result = replaySources(sources, cfg, kRows);
    EXPECT_EQ(result.banks, 4u);
    EXPECT_EQ(result.stats.activations, wantActs);
    EXPECT_EQ(result.stats.refreshEvents, wantRefreshes);
}

TEST(RfmDeath, RejectsZeroBudget)
{
    EXPECT_EXIT(Rfm(kRows, 0), ::testing::ExitedWithCode(1), "budget");
}

} // namespace catsim
