/**
 * @file
 * Tests for the CMRPO power model (paper Sections VI and VII-B).
 */

#include <gtest/gtest.h>

#include "energy/cmrpo.hpp"

namespace catsim
{

TEST(Cmrpo, StaticOnlyHandComputed)
{
    // A scheme that never refreshes: CMRPO is static power over 2.5 mW.
    SchemeConfig cfg;
    cfg.kind = SchemeKind::Sca;
    cfg.numCounters = 128;
    cfg.threshold = 32768;

    SchemeStats st; // all zeros
    const auto p = schemePower(cfg, st, 0.064);
    EXPECT_DOUBLE_EQ(p.dynamic, 0.0);
    EXPECT_DOUBLE_EQ(p.refresh, 0.0);
    // SCA_128 static: 1.44e4 nJ / 64 ms = 0.225 mW, amortized by the
    // Table II calibration factor (see EnergyConstants).
    const double expected =
        0.225 / EnergyConstants::kStaticAmortization;
    EXPECT_NEAR(p.statik, expected, 1e-6);
    EXPECT_NEAR(cmrpo(p, 65536), expected / 2.5, 1e-6);
}

TEST(Cmrpo, RefreshComponent)
{
    SchemeConfig cfg;
    cfg.kind = SchemeKind::Sca;
    cfg.numCounters = 128;
    cfg.threshold = 32768;

    SchemeStats st;
    st.victimRowsRefreshed = 64000; // 64 uJ over 64 ms = 1 mW
    const auto p = schemePower(cfg, st, 0.064);
    EXPECT_NEAR(p.refresh, 1.0, 1e-9);
}

TEST(Cmrpo, PraChargedForPrngBits)
{
    // Section VII-B: "for every 50 row accesses, PRA consumes energy
    // equal to that of refreshing one row" - 9 bits x 2.917e-3 nJ/bit
    // x 50 ~ 1.3 nJ... the paper rounds; check the per-bit accounting.
    SchemeConfig cfg;
    cfg.kind = SchemeKind::Pra;
    cfg.praProbability = 0.002;

    SchemeStats st;
    st.activations = 1000000;
    st.prngBits = 9000000;
    const auto p = schemePower(cfg, st, 0.064);
    const double expectedNj = 9e6 * EnergyConstants::kPrngPerBitNj;
    EXPECT_NEAR(p.dynamic, expectedNj / 0.064 * 1e-6, 1e-9);
    EXPECT_DOUBLE_EQ(p.statik, 0.0);
}

TEST(Cmrpo, PrngEnergyPerFiftyAccessesNearOneRowRefresh)
{
    // Table II: eng_PRNG = 2.625e-2 nJ for 9 bits; 50 accesses ->
    // 1.31 nJ ~ one 1 nJ row refresh (the paper's "for every 50 row
    // accesses" claim, within rounding).
    const double perAccess = 9.0 * EnergyConstants::kPrngPerBitNj;
    EXPECT_NEAR(perAccess, 2.625e-2, 1e-4);
    EXPECT_NEAR(50.0 * perAccess, 1.3, 0.15);
}

TEST(Cmrpo, CounterCacheDramTrafficCharged)
{
    SchemeConfig cfg;
    cfg.kind = SchemeKind::CounterCache;
    cfg.numCounters = 2048;
    cfg.threshold = 32768;

    SchemeStats st;
    st.counterDramReads = 1000;
    st.counterDramWrites = 500;
    const auto p = schemePower(cfg, st, 0.064);
    const double expectedNj =
        1500.0 * EnergyConstants::kCounterDramAccessNj;
    EXPECT_NEAR(p.dynamic, expectedNj / 0.064 * 1e-6, 1e-9);
}

TEST(Cmrpo, QuadCoreBankNormalization)
{
    PowerBreakdown p;
    p.refresh = 1.0;
    EXPECT_NEAR(cmrpo(p, 65536), 0.4, 1e-9);
    EXPECT_NEAR(cmrpo(p, 131072), 0.2, 1e-9)
        << "bigger banks have proportionally larger baseline power";
}

TEST(Eto, Definition)
{
    EXPECT_NEAR(eto(1.0, 1.01), 0.01, 1e-12);
    EXPECT_DOUBLE_EQ(eto(2.0, 2.0), 0.0);
}

TEST(CmrpoDeath, RejectsZeroExecTime)
{
    SchemeConfig cfg;
    SchemeStats st;
    EXPECT_EXIT(schemePower(cfg, st, 0.0), ::testing::ExitedWithCode(1),
                "positive execution time");
}

} // namespace catsim
