/**
 * @file
 * Geometry and differential tests for the modern attack kernels: the
 * shared distinct-row placement helper, straddling-pair structure of
 * the many-sided and half-double kernels, blast-radius flow through
 * RowAdjacency::victimsWithin, and placement invariance under
 * CATSIM_JOBS / CATSIM_SHARDS.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <vector>

#include "core/adjacency.hpp"
#include "trace/attack_kernel.hpp"

namespace catsim
{

namespace
{

// Placement must be a pure function of (geometry, seed); scrub the
// parallelism knobs so the tests below prove it against a clean slate.
const bool kEnvScrubbed = [] {
    ::unsetenv("CATSIM_JOBS");
    ::unsetenv("CATSIM_SHARDS");
    return true;
}();

struct EnvVarGuard
{
    explicit EnvVarGuard(const char *name) : name_(name) {}
    ~EnvVarGuard() { ::unsetenv(name_); }
    const char *name_;
};

/**
 * Greedy straddle matching: repeatedly pair the smallest unmatched
 * aggressor x with x + 2*gap.  Returns the number of pairs matched;
 * asserts every matched pair's midpoint (the victim) is NOT itself an
 * aggressor.  The smallest unmatched row must be a pair's low
 * aggressor (its partner would otherwise be smaller and matched
 * already), so greedy matching recovers the placement's structure.
 */
std::size_t
countStraddlePairs(const std::vector<RowAddr> &rows, RowAddr gap)
{
    std::set<RowAddr> all(rows.begin(), rows.end());
    std::set<RowAddr> unmatched = all;
    std::size_t pairs = 0;
    while (!unmatched.empty()) {
        const RowAddr x = *unmatched.begin();
        unmatched.erase(unmatched.begin());
        const auto partner = unmatched.find(x + 2 * gap);
        if (partner == unmatched.end())
            continue; // lone aggressor (odd targets-per-bank)
        unmatched.erase(partner);
        EXPECT_EQ(all.count(x + gap), 0u)
            << "victim " << x + gap << " is itself an aggressor";
        ++pairs;
    }
    return pairs;
}

std::vector<std::vector<RowAddr>>
placeTargets(AttackKernelKind kind, std::uint64_t seed,
             std::uint32_t targets_per_bank)
{
    const DramGeometry geom = DramGeometry::dualCore2Ch();
    std::vector<std::vector<RowAddr>> targets(
        geom.totalBanks(), std::vector<RowAddr>(targets_per_bank));
    makeAttackKernel(kind)->pickTargets(targets, geom, seed);
    return targets;
}

} // namespace

TEST(PickDistinctRow, AcceptsFirstAcceptableDraw)
{
    int calls = 0;
    const auto draw = [&]() -> RowAddr { return ++calls, 5; };
    EXPECT_EQ(pickDistinctRow(100, draw,
                              [](RowAddr) { return true; }),
              5u);
    EXPECT_EQ(calls, 1);
}

TEST(PickDistinctRow, RedrawsOnCollision)
{
    std::vector<RowAddr> sequence{7, 7, 12};
    std::size_t i = 0;
    const auto draw = [&]() { return sequence[i++]; };
    EXPECT_EQ(pickDistinctRow(100, draw,
                              [](RowAddr r) { return r != 7; }),
              12u);
    EXPECT_EQ(i, 3u);
}

TEST(PickDistinctRow, FallsBackToWrappingLinearProbe)
{
    // The draw never produces an acceptable row: after 64 attempts the
    // helper probes linearly (wrapping) from the last candidate.
    int calls = 0;
    const auto draw = [&]() -> RowAddr { return ++calls, 3; };
    EXPECT_EQ(pickDistinctRow(4, draw,
                              [](RowAddr r) { return r == 1; }),
              1u);
    EXPECT_EQ(calls, 64);
}

TEST(AttackKernel, ManySidedPairsStraddleVictims)
{
    for (std::uint64_t seed = 1; seed <= 12; ++seed) {
        const auto targets =
            placeTargets(AttackKernelKind::ManySided, seed, 8);
        for (const auto &rows : targets) {
            ASSERT_EQ(rows.size(), 8u);
            const std::set<RowAddr> distinct(rows.begin(), rows.end());
            ASSERT_EQ(distinct.size(), 8u) << "duplicate aggressors";
            EXPECT_TRUE(std::is_sorted(rows.begin(), rows.end()));
            for (const RowAddr r : rows)
                ASSERT_LT(r, 65536u);
            EXPECT_EQ(countStraddlePairs(rows, 1), 4u)
                << "seed " << seed;
        }
    }
}

TEST(AttackKernel, HalfDoublePairsAtPhysicalDistanceTwo)
{
    for (std::uint64_t seed = 1; seed <= 12; ++seed) {
        const auto targets =
            placeTargets(AttackKernelKind::HalfDouble, seed, 8);
        for (const auto &rows : targets) {
            const std::set<RowAddr> distinct(rows.begin(), rows.end());
            ASSERT_EQ(distinct.size(), 8u);
            EXPECT_EQ(countStraddlePairs(rows, 2), 4u)
                << "seed " << seed;
        }
    }
}

TEST(AttackKernel, OddTargetCountTopsUpWithLoneAggressor)
{
    const auto targets =
        placeTargets(AttackKernelKind::ManySided, 3, 5);
    for (const auto &rows : targets) {
        const std::set<RowAddr> distinct(rows.begin(), rows.end());
        ASSERT_EQ(distinct.size(), 5u);
        EXPECT_EQ(countStraddlePairs(rows, 1), 2u);
    }
}

TEST(AttackKernel, BlastRadiusTwoFlowsThroughAdjacency)
{
    // Every half-double aggressor pair (x, x+4) squeezes the victim
    // x+2 at physical distance 2: the victim must appear in the
    // aggressor's radius-2 neighborhood, which is how the disturbance
    // accounting sees half-double pressure.
    const RowAdjacency adj(RowAdjacency::Kind::Direct, 65536);
    const auto targets =
        placeTargets(AttackKernelKind::HalfDouble, 1, 8);
    for (const auto &rows : targets) {
        const std::set<RowAddr> all(rows.begin(), rows.end());
        for (const RowAddr x : rows) {
            if (!all.count(x + 4))
                continue;
            std::array<RowAddr, 4> blast{};
            const std::uint32_t n = adj.victimsWithin(x, 2, blast);
            EXPECT_TRUE(std::find(blast.begin(), blast.begin() + n,
                                  x + 2)
                        != blast.begin() + n)
                << "victim " << x + 2 << " outside blast radius of "
                << x;
        }
    }
}

TEST(AttackKernel, PlacementIgnoresJobsAndShardsEnv)
{
    const auto reference =
        placeTargets(AttackKernelKind::ManySided, 5, 8);
    const auto referenceHd =
        placeTargets(AttackKernelKind::HalfDouble, 5, 8);
    EnvVarGuard jobs("CATSIM_JOBS");
    EnvVarGuard shards("CATSIM_SHARDS");
    for (const char *j : {"1", "7"}) {
        for (const char *s : {"1", "5"}) {
            ::setenv("CATSIM_JOBS", j, 1);
            ::setenv("CATSIM_SHARDS", s, 1);
            EXPECT_EQ(placeTargets(AttackKernelKind::ManySided, 5, 8),
                      reference)
                << "jobs=" << j << " shards=" << s;
            EXPECT_EQ(placeTargets(AttackKernelKind::HalfDouble, 5, 8),
                      referenceHd)
                << "jobs=" << j << " shards=" << s;
        }
    }
}

TEST(AttackKernel, TinyBankCollisionStress)
{
    // 8 targets in a 64-row bank with sigma 1: nearly every Gaussian
    // draw collides, forcing the shared helper's redraw and probe
    // paths while the straddle feasibility guard still admits the
    // placement (9*4 + 2*gap + 8 < 64).
    for (std::uint64_t seed = 1; seed <= 12; ++seed) {
        for (const RowAddr gap : {RowAddr(1), RowAddr(2)}) {
            std::vector<RowAddr> rows(8);
            Xoshiro256StarStar rng(seed);
            drawStraddlePairs(rows, rng, 32, 1.0, 64, gap);
            const std::set<RowAddr> distinct(rows.begin(), rows.end());
            ASSERT_EQ(distinct.size(), 8u)
                << "seed " << seed << " gap " << gap;
            for (const RowAddr r : rows)
                ASSERT_LT(r, 64u);
            EXPECT_EQ(countStraddlePairs(rows, gap), 4u);
        }
    }
}

TEST(AttackKernel, ParseAndNameRoundTrip)
{
    EXPECT_EQ(parseAttackKernelKind("manysided"),
              AttackKernelKind::ManySided);
    EXPECT_EQ(parseAttackKernelKind("many-sided"),
              AttackKernelKind::ManySided);
    EXPECT_EQ(parseAttackKernelKind("HalfDouble"),
              AttackKernelKind::HalfDouble);
    EXPECT_EQ(parseAttackKernelKind("half-double"),
              AttackKernelKind::HalfDouble);
    EXPECT_STREQ(attackKernelKindName(AttackKernelKind::ManySided),
                 "ManySided");
    EXPECT_STREQ(attackKernelKindName(AttackKernelKind::HalfDouble),
                 "HalfDouble");
}

TEST(Adjacency, VictimsWithinDirectModel)
{
    const RowAdjacency adj(RowAdjacency::Kind::Direct, 65536);
    std::array<RowAddr, 4> out{};
    // Nearest ring first.
    ASSERT_EQ(adj.victimsWithin(100, 1, out), 2u);
    EXPECT_EQ(out[0], 99u);
    EXPECT_EQ(out[1], 101u);
    ASSERT_EQ(adj.victimsWithin(100, 2, out), 4u);
    EXPECT_EQ(out[0], 99u);
    EXPECT_EQ(out[1], 101u);
    EXPECT_EQ(out[2], 98u);
    EXPECT_EQ(out[3], 102u);
    // Edges clip.
    ASSERT_EQ(adj.victimsWithin(0, 2, out), 2u);
    EXPECT_EQ(out[0], 1u);
    EXPECT_EQ(out[1], 2u);
    ASSERT_EQ(adj.victimsWithin(1, 2, out), 3u);
    ASSERT_EQ(adj.victimsWithin(65535, 2, out), 2u);
}

TEST(Adjacency, VictimsWithinRespectsRemapping)
{
    for (const auto kind : {RowAdjacency::Kind::BlockMirrored,
                            RowAdjacency::Kind::Scrambled}) {
        const RowAdjacency adj(kind, 65536);
        for (const RowAddr row : {RowAddr(0), RowAddr(513),
                                  RowAddr(4095), RowAddr(65535)}) {
            std::array<RowAddr, 4> out{};
            const std::uint32_t n = adj.victimsWithin(row, 2, out);
            const RowAddr pos = adj.logicalToPhysical(row);
            std::set<RowAddr> got(out.begin(), out.begin() + n);
            std::set<RowAddr> want;
            for (RowAddr d = 1; d <= 2; ++d) {
                if (pos >= d)
                    want.insert(adj.physicalToLogical(pos - d));
                if (pos + d < 65536)
                    want.insert(adj.physicalToLogical(pos + d));
            }
            EXPECT_EQ(got, want) << "row " << row;
        }
    }
}

TEST(AttackKernelDeath, InfeasibleStraddlePlacementIsFatal)
{
    std::vector<RowAddr> rows(8);
    Xoshiro256StarStar rng(1);
    EXPECT_EXIT(drawStraddlePairs(rows, rng, 8, 1.0, 16, 2),
                ::testing::ExitedWithCode(1), "cannot place");
    EXPECT_EXIT(drawStraddlePairs(rows, rng, 8, 1.0, 65536, 0),
                ::testing::ExitedWithCode(1), "cannot place");
}

TEST(AdjacencyDeath, VictimsWithinRejectsBadRadius)
{
    const RowAdjacency adj(RowAdjacency::Kind::Direct, 65536);
    std::array<RowAddr, 4> out{};
    EXPECT_EXIT(adj.victimsWithin(5, 0, out),
                ::testing::ExitedWithCode(1), "radius");
    EXPECT_EXIT(adj.victimsWithin(5, 3, out),
                ::testing::ExitedWithCode(1), "radius");
}

} // namespace catsim
