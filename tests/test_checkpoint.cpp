/**
 * @file
 * Tests for the crash-safe run journal (sim/checkpoint) and its
 * integration with the sweep engine and Monte-Carlo campaigns: a
 * journal killed at ANY byte offset must resume to byte-identical
 * results, corrupt records must never be served, and keep-going mode
 * must record failures without poisoning the rest of the grid.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/fault_injection.hpp"
#include "reliability/montecarlo.hpp"
#include "sim/checkpoint.hpp"
#include "sim/sweep.hpp"

namespace catsim
{

namespace
{

// Checkpointing, keep-going, job count, and fail-points must come from
// the tests themselves, not the invoking environment.
const bool kEnvScrubbed = [] {
    ::unsetenv("CATSIM_BASELINE_CACHE");
    ::unsetenv("CATSIM_JOBS");
    ::unsetenv("CATSIM_CHECKPOINT");
    ::unsetenv("CATSIM_SWEEP_KEEP_GOING");
    fault::installFailpoints("");
    return true;
}();

constexpr double kTestScale = 0.02;

struct FailpointGuard
{
    ~FailpointGuard() { fault::installFailpoints(""); }
};

std::filesystem::path
freshDir(const std::string &name)
{
    const auto dir =
        std::filesystem::temp_directory_path() / ("catsim_" + name);
    std::filesystem::remove_all(dir);
    return dir;
}

std::string
readFile(const std::filesystem::path &path)
{
    std::ifstream in(path, std::ios::binary);
    std::string s((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
    return s;
}

void
writeFile(const std::filesystem::path &path, const std::string &bytes)
{
    std::filesystem::create_directories(path.parent_path());
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
}

/** A small metric grid: cells distinguished purely by tag. */
std::vector<SweepCell>
tagGrid(std::size_t n)
{
    std::vector<SweepCell> cells(n);
    for (std::size_t i = 0; i < n; ++i) {
        cells[i].workload.name = "comm1";
        cells[i].tag = i;
    }
    return cells;
}

/** Cheap deterministic metric: irrational in the tag, ignores the
 *  runner, so resume equality is a strict bit-pattern check. */
double
tagMetric(const SweepCell &c)
{
    return std::sqrt(static_cast<double>(c.tag) + 2.0) * 0.125
           + static_cast<double>(c.tag);
}

} // namespace

TEST(CheckpointBlob, RoundTripIsBitExact)
{
    BlobWriter w;
    w.putU64(0);
    w.putU64(~0ULL);
    w.putDouble(-0.0);
    w.putDouble(5e-324); // smallest denormal
    w.putDouble(0.1);    // not exactly representable
    const std::string blob = w.str();
    EXPECT_EQ(blob.size(), 2 * 8 + 3 * 8);

    BlobReader r(blob);
    std::uint64_t a = 1, b = 1;
    double x = 0, y = 0, z = 0;
    ASSERT_TRUE(r.getU64(&a) && r.getU64(&b) && r.getDouble(&x)
                && r.getDouble(&y) && r.getDouble(&z));
    EXPECT_TRUE(r.atEnd());
    EXPECT_EQ(a, 0u);
    EXPECT_EQ(b, ~0ULL);
    EXPECT_TRUE(std::signbit(x) && x == 0.0);
    EXPECT_EQ(y, 5e-324);
    EXPECT_EQ(z, 0.1);
    // Reads past the end fail instead of fabricating data.
    EXPECT_FALSE(r.getU64(&a));
}

TEST(CheckpointJournalTest, RoundTripAcrossReopen)
{
    const auto dir = freshDir("ckpt_roundtrip");
    {
        CheckpointJournal j(dir.string(), "run-key");
        EXPECT_EQ(j.replayedRecords(), 0u);
        j.append("cell0", "blob zero");
        j.append("cell1", std::string("\x00\x01\xFF", 3));
        j.append("cell2", "");
    }
    CheckpointJournal j(dir.string(), "run-key");
    EXPECT_EQ(j.replayedRecords(), 3u);
    std::string blob;
    ASSERT_TRUE(j.lookup("cell0", &blob));
    EXPECT_EQ(blob, "blob zero");
    ASSERT_TRUE(j.lookup("cell1", &blob));
    EXPECT_EQ(blob, std::string("\x00\x01\xFF", 3));
    ASSERT_TRUE(j.lookup("cell2", &blob));
    EXPECT_EQ(blob, "");
    EXPECT_FALSE(j.lookup("cell3", &blob));
    std::filesystem::remove_all(dir);
}

TEST(CheckpointJournalTest, DistinctRunKeysUseDistinctFiles)
{
    EXPECT_NE(checkpointFileName("grid A"), checkpointFileName("grid B"));
    EXPECT_EQ(checkpointFileName("grid A"), checkpointFileName("grid A"));
}

TEST(CheckpointJournalTest, HeaderMismatchStartsFresh)
{
    const auto dir = freshDir("ckpt_header");
    const auto path =
        std::filesystem::path(dir) / checkpointFileName("run-key");
    writeFile(path, "this is not a journal header at all............");

    CheckpointJournal j(dir.string(), "run-key");
    EXPECT_EQ(j.replayedRecords(), 0u);
    j.append("cell0", "fresh");
    CheckpointJournal k(dir.string(), "run-key");
    EXPECT_EQ(k.replayedRecords(), 1u);
    std::filesystem::remove_all(dir);
}

/**
 * THE crash-safety property: truncate the journal at every byte
 * offset (every possible SIGKILL point of the append stream), reopen,
 * and require that (a) every record the replay serves is byte-equal to
 * what was appended - never a torn or corrupt blob - and (b) after
 * re-appending whatever is missing, the journal is whole again.
 */
TEST(CheckpointJournalTest, TruncationAtEveryOffsetIsSafe)
{
    const auto dir = freshDir("ckpt_trunc");
    const std::vector<std::pair<std::string, std::string>> records = {
        {"cell0", "first blob"},
        {"cell1", std::string(40, 'x')},
        {"cell2", ""},
        {"cell3", "tail blob with some length to it"},
    };
    {
        CheckpointJournal j(dir.string(), "trunc-key");
        for (const auto &[k, v] : records)
            j.append(k, v);
    }
    const auto path =
        std::filesystem::path(dir) / checkpointFileName("trunc-key");
    const std::string full = readFile(path);
    ASSERT_GT(full.size(), 0u);

    for (std::size_t len = 0; len < full.size(); ++len) {
        const auto d = freshDir("ckpt_trunc_case");
        writeFile(std::filesystem::path(d)
                      / checkpointFileName("trunc-key"),
                  full.substr(0, len));
        {
            CheckpointJournal j(d.string(), "trunc-key");
            EXPECT_LE(j.replayedRecords(), records.size());
            std::string blob;
            for (const auto &[k, v] : records) {
                if (j.lookup(k, &blob))
                    EXPECT_EQ(blob, v)
                        << "corrupt blob served for " << k
                        << " at truncation " << len;
                else
                    j.append(k, v); // the resume path re-runs it
            }
        }
        CheckpointJournal j(d.string(), "trunc-key");
        EXPECT_EQ(j.replayedRecords(), records.size())
            << "journal not whole after resume at truncation " << len;
        std::string blob;
        for (const auto &[k, v] : records) {
            ASSERT_TRUE(j.lookup(k, &blob)) << k;
            EXPECT_EQ(blob, v) << k;
        }
        std::filesystem::remove_all(d);
    }
    std::filesystem::remove_all(dir);
}

/** Bit flips anywhere in the file must never surface a wrong blob. */
TEST(CheckpointJournalTest, BitFlipsNeverServeCorruptRecords)
{
    const auto dir = freshDir("ckpt_flip");
    const std::vector<std::pair<std::string, std::string>> records = {
        {"cell0", "first blob"},
        {"cell1", std::string(24, 'y')},
        {"cell2", "third"},
    };
    {
        CheckpointJournal j(dir.string(), "flip-key");
        for (const auto &[k, v] : records)
            j.append(k, v);
    }
    const auto path =
        std::filesystem::path(dir) / checkpointFileName("flip-key");
    const std::string full = readFile(path);

    for (std::size_t pos = 0; pos < full.size(); pos += 3) {
        std::string mutated = full;
        mutated[pos] = static_cast<char>(mutated[pos] ^ 0x40);
        const auto d = freshDir("ckpt_flip_case");
        writeFile(std::filesystem::path(d)
                      / checkpointFileName("flip-key"),
                  mutated);
        CheckpointJournal j(d.string(), "flip-key");
        std::string blob;
        for (const auto &[k, v] : records) {
            if (j.lookup(k, &blob)) {
                EXPECT_EQ(blob, v)
                    << "bit flip at " << pos << " served corrupt " << k;
            }
        }
        std::filesystem::remove_all(d);
    }
    std::filesystem::remove_all(dir);
}

TEST(CheckpointSweep, ResumeSkipsJournaledCells)
{
    const auto dir = freshDir("ckpt_sweep_resume");
    const auto cells = tagGrid(5);
    std::atomic<int> evals{0};
    const auto fn = [&evals](ExperimentRunner &, const SweepCell &c) {
        evals.fetch_add(1);
        return tagMetric(c);
    };

    SweepRunner first(kTestScale, 2);
    first.setCheckpointDir(dir.string());
    const auto expected = first.runMetric(cells, fn);
    EXPECT_EQ(evals.load(), 5);
    EXPECT_EQ(first.lastResumedCells(), 0u);

    evals.store(0);
    SweepRunner second(kTestScale, 2);
    second.setCheckpointDir(dir.string());
    const auto got = second.runMetric(cells, fn);
    EXPECT_EQ(evals.load(), 0) << "journaled cells must not re-run";
    EXPECT_EQ(second.lastResumedCells(), 5u);
    ASSERT_EQ(got.size(), expected.size());
    for (std::size_t i = 0; i < got.size(); ++i)
        EXPECT_EQ(got[i], expected[i]) << "cell " << i;
    std::filesystem::remove_all(dir);
}

TEST(CheckpointSweep, RepeatedGridsGetSeparateJournals)
{
    const auto dir = freshDir("ckpt_sweep_seq");
    const auto cells = tagGrid(3);
    // One bench process often runs the same grid through runMetric
    // twice with DIFFERENT callbacks; the per-kind sequence number
    // must keep their journals apart.
    const auto fnA = [](ExperimentRunner &, const SweepCell &c) {
        return tagMetric(c);
    };
    const auto fnB = [](ExperimentRunner &, const SweepCell &c) {
        return -tagMetric(c);
    };

    SweepRunner first(kTestScale, 1);
    first.setCheckpointDir(dir.string());
    const auto a1 = first.runMetric(cells, fnA);
    const auto b1 = first.runMetric(cells, fnB);

    SweepRunner second(kTestScale, 1);
    second.setCheckpointDir(dir.string());
    const auto a2 = second.runMetric(cells, fnA);
    EXPECT_EQ(second.lastResumedCells(), 3u);
    const auto b2 = second.runMetric(cells, fnB);
    EXPECT_EQ(second.lastResumedCells(), 3u);
    EXPECT_EQ(a1, a2);
    EXPECT_EQ(b1, b2);
    EXPECT_NE(a2, b2) << "the two calls must not share one journal";
    std::filesystem::remove_all(dir);
}

/**
 * Kill the metric sweep's journal at every byte offset and resume at
 * two different job counts; every resumed grid must be byte-identical
 * to the uninterrupted reference.
 */
TEST(CheckpointSweep, KilledJournalResumesByteIdenticalAtAnyJobs)
{
    const auto dir = freshDir("ckpt_sweep_kill");
    const auto cells = tagGrid(4);
    const auto fn = [](ExperimentRunner &, const SweepCell &c) {
        return tagMetric(c);
    };

    SweepRunner ref(kTestScale, 1);
    const auto expected = ref.runMetric(cells, fn);

    SweepRunner writer(kTestScale, 1);
    writer.setCheckpointDir(dir.string());
    writer.runMetric(cells, fn);
    // The journal file is the only file in the directory.
    std::filesystem::path path;
    for (const auto &e : std::filesystem::directory_iterator(dir))
        path = e.path();
    ASSERT_FALSE(path.empty());
    const std::string full = readFile(path);

    for (std::size_t len = 0; len < full.size(); len += 5) {
        for (std::size_t jobs : {std::size_t(1), std::size_t(4)}) {
            const auto d = freshDir("ckpt_sweep_kill_case");
            writeFile(std::filesystem::path(d) / path.filename(),
                      full.substr(0, len));
            SweepRunner resumed(kTestScale, jobs);
            resumed.setCheckpointDir(d.string());
            const auto got = resumed.runMetric(cells, fn);
            ASSERT_EQ(got.size(), expected.size());
            for (std::size_t i = 0; i < got.size(); ++i)
                EXPECT_EQ(got[i], expected[i])
                    << "cell " << i << " truncation " << len << " jobs "
                    << jobs;
            std::filesystem::remove_all(d);
        }
    }
    std::filesystem::remove_all(dir);
}

/** End-to-end: a real CMRPO grid killed mid-run by a fail-point
 *  resumes to bit-identical EvalResults (the EvalResult codec path). */
TEST(CheckpointSweep, CmrpoKillAndResumeBitIdentical)
{
    FailpointGuard guard;
    const auto dir = freshDir("ckpt_sweep_cmrpo");
    std::vector<SweepCell> cells;
    for (SchemeKind kind :
         {SchemeKind::Drcat, SchemeKind::Sca, SchemeKind::Pra}) {
        SweepCell c;
        c.workload.name = "comm1";
        c.scheme.kind = kind;
        c.scheme.numCounters = 64;
        c.scheme.maxLevels = 11;
        c.scheme.threshold = 32768;
        c.scheme.praProbability = 0.002;
        cells.push_back(c);
    }

    SweepRunner ref(kTestScale, 1);
    const auto expected = ref.runCmrpo(cells);

    // Serial run dies evaluating the third cell; the first two are
    // already journaled.
    SweepRunner victim(kTestScale, 1);
    victim.setCheckpointDir(dir.string());
    fault::installFailpoints("sweep_cell@3");
    EXPECT_THROW(victim.runCmrpo(cells), std::runtime_error);
    fault::installFailpoints("");

    SweepRunner resumed(kTestScale, 1);
    resumed.setCheckpointDir(dir.string());
    const auto got = resumed.runCmrpo(cells);
    EXPECT_EQ(resumed.lastResumedCells(), 2u);
    ASSERT_EQ(got.size(), expected.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].cmrpo, expected[i].cmrpo) << "cell " << i;
        EXPECT_EQ(got[i].baselineSeconds, expected[i].baselineSeconds);
        EXPECT_EQ(got[i].power.dynamic, expected[i].power.dynamic);
        EXPECT_EQ(got[i].stats.activations, expected[i].stats.activations);
        EXPECT_EQ(got[i].stats.prngBits, expected[i].stats.prngBits);
    }

    // Fully journaled now: a third run resumes everything and never
    // computes a baseline.
    SweepRunner third(kTestScale, 1);
    third.setCheckpointDir(dir.string());
    const auto again = third.runCmrpo(cells);
    EXPECT_EQ(third.lastResumedCells(), 3u);
    EXPECT_EQ(third.runner().baselineComputeCount(), 0u);
    for (std::size_t i = 0; i < again.size(); ++i)
        EXPECT_EQ(again[i].cmrpo, expected[i].cmrpo) << "cell " << i;
    std::filesystem::remove_all(dir);
}

TEST(CheckpointSweep, KeepGoingRecordsErrorAndCompletesGrid)
{
    const auto cells = tagGrid(5);
    SweepRunner runner(kTestScale, 2);
    runner.setKeepGoing(true);
    const auto results = runner.runMetric(
        cells, [](ExperimentRunner &, const SweepCell &c) {
            if (c.tag == 2)
                throw std::runtime_error("cell is cursed");
            return tagMetric(c);
        });
    ASSERT_EQ(results.size(), 5u);
    EXPECT_TRUE(std::isnan(results[2]));
    for (std::size_t i : {std::size_t(0), std::size_t(1), std::size_t(3),
                          std::size_t(4)})
        EXPECT_EQ(results[i], tagMetric(cells[i])) << "cell " << i;

    ASSERT_EQ(runner.lastErrors().size(), 1u);
    const CellError &err = runner.lastErrors()[0];
    EXPECT_EQ(err.index, 2u);
    EXPECT_EQ(err.attempts, 2);
    EXPECT_NE(err.message.find("cursed"), std::string::npos);
    EXPECT_FALSE(err.label.empty());
}

TEST(CheckpointSweep, KeepGoingRetriesTransientFailureOnce)
{
    const auto cells = tagGrid(4);
    std::atomic<int> firstAttempt{0};
    SweepRunner runner(kTestScale, 1);
    runner.setKeepGoing(true);
    const auto results = runner.runMetric(
        cells,
        [&firstAttempt](ExperimentRunner &, const SweepCell &c) {
            if (c.tag == 1 && firstAttempt.fetch_add(1) == 0)
                throw std::runtime_error("transient");
            return tagMetric(c);
        });
    EXPECT_TRUE(runner.lastErrors().empty());
    for (std::size_t i = 0; i < cells.size(); ++i)
        EXPECT_EQ(results[i], tagMetric(cells[i])) << "cell " << i;
    EXPECT_EQ(firstAttempt.load(), 2) << "exactly one retry";
}

TEST(CheckpointSweep, KeepGoingFailedCellsRerunOnResume)
{
    const auto dir = freshDir("ckpt_keepgoing");
    const auto cells = tagGrid(4);
    std::atomic<bool> healed{false};
    std::atomic<int> evals{0};
    const auto fn = [&](ExperimentRunner &, const SweepCell &c) {
        evals.fetch_add(1);
        if (c.tag == 1 && !healed.load())
            throw std::runtime_error("persistent failure");
        return tagMetric(c);
    };

    SweepRunner first(kTestScale, 1);
    first.setCheckpointDir(dir.string());
    first.setKeepGoing(true);
    const auto partial = first.runMetric(cells, fn);
    EXPECT_TRUE(std::isnan(partial[1]));
    ASSERT_EQ(first.lastErrors().size(), 1u);

    // The failed cell was NOT journaled; resume re-runs exactly it.
    healed.store(true);
    evals.store(0);
    SweepRunner second(kTestScale, 1);
    second.setCheckpointDir(dir.string());
    second.setKeepGoing(true);
    const auto full = second.runMetric(cells, fn);
    EXPECT_EQ(second.lastResumedCells(), 3u);
    EXPECT_EQ(evals.load(), 1);
    EXPECT_TRUE(second.lastErrors().empty());
    for (std::size_t i = 0; i < cells.size(); ++i)
        EXPECT_EQ(full[i], tagMetric(cells[i])) << "cell " << i;
    std::filesystem::remove_all(dir);
}

TEST(CheckpointSweep, FailFastNamesTheFailingCell)
{
    const auto cells = tagGrid(4);
    SweepRunner runner(kTestScale, 1);
    try {
        runner.runMetric(cells,
                         [](ExperimentRunner &, const SweepCell &c) {
                             if (c.tag == 2)
                                 throw std::runtime_error("boom");
                             return tagMetric(c);
                         });
        FAIL() << "expected fail-fast throw";
    } catch (const std::runtime_error &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("cell 2"), std::string::npos) << what;
        EXPECT_NE(what.find("boom"), std::string::npos) << what;
    }
}

TEST(CheckpointMc, CampaignResumesAfterTornAppend)
{
    FailpointGuard guard;
    const auto dir = freshDir("ckpt_mc");
    McCampaignSpec spec;
    spec.prng = McCampaignSpec::Prng::True;
    spec.seed = 99;
    spec.threshold = 512;
    spec.p = 0.01;
    spec.windows = 800;
    spec.windowsPerBatch = 256; // 4 batches (last one short)

    const McResult expected = praWindowFailuresResumable(spec, nullptr);

    // The append of batch #2 tears mid-record and the "process" dies.
    {
        CheckpointJournal j(dir.string(), "mc-test");
        fault::installFailpoints("checkpoint_append_torn@2");
        EXPECT_THROW(praWindowFailuresResumable(spec, &j),
                     FaultInjected);
        fault::installFailpoints("");
    }

    // Resume: the torn record is dropped, batch 0 is served from the
    // journal, and the total matches the uninterrupted run exactly.
    CheckpointJournal j(dir.string(), "mc-test");
    EXPECT_EQ(j.replayedRecords(), 1u);
    const McResult got = praWindowFailuresResumable(spec, &j);
    EXPECT_EQ(got.failedWindows, expected.failedWindows);
    EXPECT_EQ(got.windows, expected.windows);
    EXPECT_EQ(got.windowFailureProb, expected.windowFailureProb);

    // And a fully-journaled rerun still agrees.
    CheckpointJournal k(dir.string(), "mc-test");
    EXPECT_EQ(k.replayedRecords(), 4u);
    const McResult again = praWindowFailuresResumable(spec, &k);
    EXPECT_EQ(again.failedWindows, expected.failedWindows);
    std::filesystem::remove_all(dir);
}

TEST(CheckpointMc, LfsrCampaignIsDeterministic)
{
    McCampaignSpec spec;
    spec.prng = McCampaignSpec::Prng::Lfsr;
    spec.lfsrWidth = 8;
    spec.seed = 0xAB;
    spec.threshold = 512;
    spec.p = 0.01;
    spec.windows = 512;
    spec.windowsPerBatch = 128;
    const McResult a = praWindowFailuresResumable(spec, nullptr);
    const McResult b = praWindowFailuresResumable(spec, nullptr);
    EXPECT_EQ(a.failedWindows, b.failedWindows);
    EXPECT_EQ(a.windowFailureProb, b.windowFailureProb);
}

} // namespace catsim
