/**
 * @file
 * Tests for external trace-file ingestion: the DRAMSim-style dialect,
 * malformed-input rejection, and the AddressMapper bank-stream
 * mapping that feeds the replay engine.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "trace/trace_ingest.hpp"

namespace catsim
{

namespace
{

std::string
writeTemp(const std::string &name, const std::string &content)
{
    const std::string path = ::testing::TempDir() + "/" + name;
    std::ofstream os(path);
    os << content;
    return path;
}

} // namespace

TEST(TraceFormat, Parse)
{
    EXPECT_EQ(parseTraceFormat("native"), TraceFormat::Native);
    EXPECT_EQ(parseTraceFormat("DRAMSim"), TraceFormat::DramSim);
}

TEST(TraceFormatDeath, UnknownName)
{
    EXPECT_EXIT(parseTraceFormat("usimm"),
                ::testing::ExitedWithCode(1), "unknown trace format");
}

TEST(DramSimTrace, CyclesBecomeGaps)
{
    const std::string path = writeTemp("dramsim_ok.trc",
                                       "# comment\n"
                                       "0x12340 READ 5\n"
                                       "0x55500 WRITE 25\n"
                                       "; another comment style\n"
                                       "0x12340 P_MEM_RD 25\n"
                                       "0xFF000 W 30\n");
    const VectorTrace t = readDramSimTrace(path);
    ASSERT_EQ(t.size(), 4u);
    const auto &r = t.records();
    EXPECT_EQ(r[0].gap, 5u); // lead-in gap = first cycle
    EXPECT_EQ(r[0].addr, 0x12340u);
    EXPECT_FALSE(r[0].isWrite);
    EXPECT_EQ(r[1].gap, 20u);
    EXPECT_TRUE(r[1].isWrite);
    EXPECT_EQ(r[2].gap, 0u); // same cycle: back-to-back
    EXPECT_FALSE(r[2].isWrite);
    EXPECT_EQ(r[3].gap, 5u);
    EXPECT_TRUE(r[3].isWrite);
    std::remove(path.c_str());
}

TEST(DramSimTrace, ReadTraceFileAsDispatch)
{
    const std::string path =
        writeTemp("dramsim_dispatch.trc", "0x40 READ 1\n");
    const VectorTrace t =
        readTraceFileAs(path, TraceFormat::DramSim);
    ASSERT_EQ(t.size(), 1u);
    EXPECT_EQ(t.records()[0].addr, 0x40u);
    std::remove(path.c_str());
}

TEST(DramSimTraceDeath, TruncatedLine)
{
    const std::string path = writeTemp("dramsim_trunc.trc",
                                       "0x12340 READ 5\n"
                                       "0x55500 WRITE\n");
    EXPECT_EXIT(readDramSimTrace(path), ::testing::ExitedWithCode(1),
                "bad DRAMSim trace line 2");
    std::remove(path.c_str());
}

TEST(DramSimTraceDeath, BadOp)
{
    const std::string path =
        writeTemp("dramsim_badop.trc", "0x12340 FETCH 5\n");
    EXPECT_EXIT(readDramSimTrace(path), ::testing::ExitedWithCode(1),
                "bad op 'FETCH'");
    std::remove(path.c_str());
}

TEST(DramSimTraceDeath, BadAddress)
{
    const std::string path =
        writeTemp("dramsim_badaddr.trc", "zzz READ 5\n");
    EXPECT_EXIT(readDramSimTrace(path), ::testing::ExitedWithCode(1),
                "bad address");
    std::remove(path.c_str());
}

TEST(DramSimTraceDeath, PartiallyNumericAddressRejected)
{
    // std::stoull alone would truncate "0x123junk" to 0x123 and
    // silently replay against the wrong rows.
    const std::string path =
        writeTemp("dramsim_partaddr.trc", "0x123junk READ 5\n");
    EXPECT_EXIT(readDramSimTrace(path), ::testing::ExitedWithCode(1),
                "bad address");
    std::remove(path.c_str());
}

TEST(ParseTraceAddr, StrictWholeToken)
{
    Addr a = 0;
    EXPECT_TRUE(parseTraceAddr("0x1F0", &a));
    EXPECT_EQ(a, 0x1F0u);
    EXPECT_TRUE(parseTraceAddr("64", &a));
    EXPECT_EQ(a, 64u);
    EXPECT_FALSE(parseTraceAddr("0x123junk", &a));
    EXPECT_FALSE(parseTraceAddr("0xZZ", &a));
    EXPECT_FALSE(parseTraceAddr("zzz", &a));
    EXPECT_FALSE(parseTraceAddr("", &a));
    // stoull would wrap these instead of failing.
    EXPECT_FALSE(parseTraceAddr("-5", &a));
    EXPECT_FALSE(parseTraceAddr("+5", &a));
}

TEST(DramSimTraceDeath, NonMonotonicCycles)
{
    const std::string path = writeTemp("dramsim_mono.trc",
                                       "0x100 READ 50\n"
                                       "0x200 READ 10\n");
    EXPECT_EXIT(readDramSimTrace(path), ::testing::ExitedWithCode(1),
                "non-monotonic cycle");
    std::remove(path.c_str());
}

TEST(DramSimTraceDeath, MissingFile)
{
    EXPECT_EXIT(readDramSimTrace("/nonexistent/x.trc"),
                ::testing::ExitedWithCode(1), "cannot open");
}

TEST(TraceBankStreams, MapsRecordsThroughAddressMapper)
{
    const DramGeometry geom = DramGeometry::dualCore2Ch();
    const AddressMapper mapper(geom,
                               MappingPolicy::RowRankBankChanCol);

    // Compose known coordinates, ingest, and expect them back in the
    // right per-bank streams.
    MappedAddr a;
    a.channel = 1;
    a.rank = 0;
    a.bank = 3;
    a.row = 1234;
    a.col = 7;
    MappedAddr b = a;
    b.row = 999;
    MappedAddr c;
    c.channel = 0;
    c.rank = 0;
    c.bank = 0;
    c.row = 42;

    VectorTrace trace;
    trace.push({0, false, mapper.compose(a)});
    trace.push({3, true, mapper.compose(c)});
    trace.push({5, false, mapper.compose(b)});

    const auto streams = traceBankStreams(trace, mapper, geom);
    ASSERT_EQ(streams.size(), geom.totalBanks());

    const std::uint32_t flatA = a.bankId().flat(geom);
    const std::uint32_t flatC = c.bankId().flat(geom);
    ASSERT_EQ(streams[flatA].size(), 2u);
    EXPECT_EQ(streams[flatA][0], 1234u);
    EXPECT_EQ(streams[flatA][1], 999u);
    ASSERT_EQ(streams[flatC].size(), 1u);
    EXPECT_EQ(streams[flatC][0], 42u);
}

namespace
{

std::vector<TraceRecord>
drain(TraceStream &s)
{
    std::vector<TraceRecord> out;
    TraceRecord r;
    while (s.next(r))
        out.push_back(r);
    return out;
}

bool
sameRecords(const std::vector<TraceRecord> &a,
            const std::vector<TraceRecord> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i)
        if (a[i].gap != b[i].gap || a[i].isWrite != b[i].isWrite
            || a[i].addr != b[i].addr)
            return false;
    return true;
}

/** Synthetic native trace of @p n records, returning the temp path. */
std::string
writeBigNative(std::size_t n, const std::string &name)
{
    std::ostringstream os;
    for (std::size_t i = 0; i < n; ++i)
        os << (i % 7) << (i % 3 ? " R 0x" : " W 0x") << std::hex
           << (i * 0x1337 + 64) << std::dec << '\n';
    return writeTemp(name, os.str());
}

} // namespace

TEST(StreamingTraceReader, MatchesBatchReaderBitForBitNative)
{
    // 10k records through a 256-record buffer: identical sequence to
    // the in-RAM reader, with at most one chunk ever resident.
    const std::string path = writeBigNative(10000, "stream_native.trc");
    VectorTrace batch = readTraceFile(path);
    StreamingTraceReader stream(path, TraceFormat::Native, 256);
    EXPECT_TRUE(sameRecords(drain(stream), batch.records()));
    EXPECT_LE(stream.peakBuffered(), 256u);
    EXPECT_EQ(stream.recordsRead(), 10000u);
    std::remove(path.c_str());
}

TEST(StreamingTraceReader, MatchesBatchReaderBitForBitDramSim)
{
    // The DRAMSim dialect's cycle->gap state must survive chunk
    // boundaries: use a chunk (64) much smaller than the trace.
    std::ostringstream os;
    os << "# header comment\n";
    for (std::size_t i = 0; i < 1000; ++i)
        os << "0x" << std::hex << (i * 4096 + 128) << std::dec
           << (i % 2 ? " WRITE " : " READ ") << i * 3 << '\n';
    const std::string path = writeTemp("stream_dramsim.trc", os.str());
    VectorTrace batch = readDramSimTrace(path);
    StreamingTraceReader stream(path, TraceFormat::DramSim, 64);
    EXPECT_TRUE(sameRecords(drain(stream), batch.records()));
    EXPECT_LE(stream.peakBuffered(), 64u);
    std::remove(path.c_str());
}

TEST(StreamingTraceReader, RewindReplaysTheSameSequence)
{
    const std::string path = writeBigNative(500, "stream_rewind.trc");
    StreamingTraceReader stream(path, TraceFormat::Native, 64);
    const auto first = drain(stream);
    stream.rewind();
    const auto second = drain(stream);
    EXPECT_TRUE(sameRecords(first, second));
    ASSERT_EQ(first.size(), 500u);
    std::remove(path.c_str());
}

TEST(StreamingTraceReaderDeath, TruncationMidChunkIsLoud)
{
    // A record cut short deep in the file (well past the first chunk)
    // must die at its line number, not be silently dropped.
    std::ostringstream os;
    for (std::size_t i = 0; i < 300; ++i)
        os << "1 R 0x" << std::hex << (i + 1) << std::dec << '\n';
    os << "3 W\n"; // truncated mid-record at line 301
    const std::string path = writeTemp("stream_trunc.trc", os.str());
    StreamingTraceReader stream(path, TraceFormat::Native, 64);
    EXPECT_EXIT(
        {
            TraceRecord r;
            while (stream.next(r)) {
            }
        },
        ::testing::ExitedWithCode(1), "bad trace line 301");
    std::remove(path.c_str());
}

TEST(StreamingTraceReaderDeath, MissingFile)
{
    EXPECT_EXIT(
        StreamingTraceReader("/nonexistent/x.trc", TraceFormat::Native),
        ::testing::ExitedWithCode(1), "cannot open");
}

TEST(TraceWindower, ConcatenatedWindowsEqualBankStreams)
{
    const DramGeometry geom = DramGeometry::dualCore2Ch();
    const AddressMapper mapper(geom,
                               MappingPolicy::RowRankBankChanCol);
    // Rows spread over several banks with an epoch cadence that does
    // NOT divide the window size, so markers land mid-window and the
    // carried cadence is exercised.
    VectorTrace trace;
    for (std::uint32_t i = 0; i < 5000; ++i) {
        MappedAddr m;
        m.channel = i % geom.channels;
        m.bank = (i / 2) % geom.banksPerRank;
        m.row = i % 4096;
        trace.push({0, false, mapper.compose(m)});
    }
    const auto whole = traceBankStreams(trace, mapper, geom, 7);

    trace.rewind();
    TraceWindower windower(trace, mapper, geom, 7, 13);
    std::vector<std::vector<RowAddr>> window;
    std::vector<std::vector<RowAddr>> concat(geom.totalBanks());
    std::size_t windows = 0;
    while (windower.next(&window)) {
        ++windows;
        for (std::size_t b = 0; b < window.size(); ++b)
            concat[b].insert(concat[b].end(), window[b].begin(),
                             window[b].end());
    }
    EXPECT_EQ(concat, whole);
    EXPECT_GT(windows, 100u);
    EXPECT_EQ(windower.recordsWindowed(), 5000u);
    // Bounded peak: 13 rows plus at most ceil(13/7) marker fan-outs
    // across every bank per window.
    EXPECT_LE(windower.peakWindowRows(),
              13u + 2u * geom.totalBanks());
}

TEST(TraceWindower, BoundedMemoryOnMultiChunkStream)
{
    // End-to-end bounded ingestion: a 40k-record file through a
    // 1k-record reader chunk and a 2k-record window.  Neither side
    // ever holds more than its bound - this is the assertion that
    // scales to multi-GB traces.
    const std::string path = writeBigNative(40000, "stream_window.trc");
    const DramGeometry geom = DramGeometry::dualCore2Ch();
    const AddressMapper mapper(geom,
                               MappingPolicy::RowRankBankChanCol);

    StreamingTraceReader stream(path, TraceFormat::Native, 1024);
    TraceWindower windower(stream, mapper, geom, 0, 2048);
    std::vector<std::vector<RowAddr>> window;
    std::uint64_t rows = 0;
    while (windower.next(&window))
        for (const auto &s : window)
            rows += s.size();
    EXPECT_EQ(rows, 40000u);
    EXPECT_LE(stream.peakBuffered(), 1024u);
    EXPECT_LE(windower.peakWindowRows(), 2048u);
    std::remove(path.c_str());
}

TEST(TraceBankStreams, EpochMarkersEveryN)
{
    const DramGeometry geom = DramGeometry::dualCore2Ch();
    const AddressMapper mapper(geom,
                               MappingPolicy::RowRankBankChanCol);

    VectorTrace trace;
    MappedAddr m;
    for (std::uint32_t i = 0; i < 10; ++i) {
        m.row = i;
        trace.push({0, false, mapper.compose(m)});
    }

    const auto streams = traceBankStreams(trace, mapper, geom, 4);
    // 10 records -> markers after records 4 and 8, in EVERY stream.
    for (const auto &s : streams) {
        const auto markers = static_cast<std::size_t>(
            std::count(s.begin(), s.end(), kEpochMarker));
        EXPECT_EQ(markers, 2u);
    }
    // Bank 0 got all ten rows plus two markers.
    const std::uint32_t flat = m.bankId().flat(geom);
    EXPECT_EQ(streams[flat].size(), 12u);
}

} // namespace catsim
