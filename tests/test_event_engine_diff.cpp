/**
 * @file
 * Differential suite: the event-engine runTiming must reproduce the
 * frozen pre-engine scan loop (sim/reference_timing_sim.hpp) bit for
 * bit - every TimingResult field, including the recorded per-bank
 * activation streams and the per-bank scheme statistics - across the
 * scheme matrices of the shipped figure benches, multi-core streams,
 * epoch scales, and recording on/off.  This is the event engine's
 * ReferenceCatTree: any reordering the queue introduces against the
 * historical earliest-core scan shows up here first.
 */

#include <gtest/gtest.h>

#include "sim/reference_timing_sim.hpp"
#include "sim/timing_sim.hpp"
#include "trace/attack.hpp"
#include "trace/workloads.hpp"

namespace catsim
{

namespace
{

TimingConfig
smallSystem(SchemeKind kind)
{
    TimingConfig sys;
    sys.geometry = DramGeometry::dualCore2Ch();
    sys.numCores = 2;
    sys.scheme.kind = kind;
    sys.scheme.numCounters = 64;
    sys.scheme.maxLevels = 11;
    sys.scheme.threshold = 2048;
    sys.recordActivations = true;
    sys.epochScale = 0.002; // ~102 K cycles per epoch: fast tests
    return sys;
}

StreamFactory
workloadFactory(const TimingConfig &sys, const AddressMapper &mapper,
                std::uint64_t records, const std::string &name)
{
    const WorkloadProfile profile = findWorkload(name);
    const DramGeometry geometry = sys.geometry;
    return [profile, geometry, &mapper,
            records](CoreId core) -> std::unique_ptr<TraceStream> {
        return std::make_unique<SyntheticWorkload>(
            profile, geometry, mapper, core + 1, records);
    };
}

StreamFactory
attackFactory(const TimingConfig &sys, const AddressMapper &mapper,
              std::uint64_t records, AttackMode mode,
              AttackKernelKind kind = AttackKernelKind::Gaussian)
{
    const WorkloadProfile profile = findWorkload("comm2");
    const DramGeometry geometry = sys.geometry;
    return [profile, geometry, &mapper, mode, kind,
            records](CoreId core) -> std::unique_ptr<TraceStream> {
        return std::make_unique<AttackWorkload>(
            profile, geometry, mapper, mode, 1, core + 1, records, 4,
            kind);
    };
}

void
expectSchemeStatsEqual(const SchemeStats &a, const SchemeStats &b)
{
    EXPECT_EQ(a.activations, b.activations);
    EXPECT_EQ(a.refreshEvents, b.refreshEvents);
    EXPECT_EQ(a.victimRowsRefreshed, b.victimRowsRefreshed);
    EXPECT_EQ(a.sramAccesses, b.sramAccesses);
    EXPECT_EQ(a.prngBits, b.prngBits);
    EXPECT_EQ(a.splits, b.splits);
    EXPECT_EQ(a.merges, b.merges);
    EXPECT_EQ(a.epochResets, b.epochResets);
    EXPECT_EQ(a.counterDramReads, b.counterDramReads);
    EXPECT_EQ(a.counterDramWrites, b.counterDramWrites);
}

/** Full-result bit-identity: every field, every stream element. */
void
expectIdentical(const TimingResult &engine, const TimingResult &ref)
{
    EXPECT_EQ(engine.execCycles, ref.execCycles);
    EXPECT_EQ(engine.execSeconds, ref.execSeconds); // exact, no tolerance
    EXPECT_EQ(engine.epochs, ref.epochs);
    EXPECT_EQ(engine.totalActivations, ref.totalActivations);
    EXPECT_EQ(engine.victimRowsRefreshed, ref.victimRowsRefreshed);

    EXPECT_EQ(engine.controller.reads, ref.controller.reads);
    EXPECT_EQ(engine.controller.writes, ref.controller.writes);
    EXPECT_EQ(engine.controller.writeDrains, ref.controller.writeDrains);
    EXPECT_EQ(engine.controller.victimRefreshEvents,
              ref.controller.victimRefreshEvents);
    EXPECT_EQ(engine.controller.victimRowsRefreshed,
              ref.controller.victimRowsRefreshed);
    EXPECT_EQ(engine.controller.lastCompletion,
              ref.controller.lastCompletion);

    expectSchemeStatsEqual(engine.scheme, ref.scheme);

    ASSERT_EQ(engine.bankStreams.size(), ref.bankStreams.size());
    for (std::size_t b = 0; b < engine.bankStreams.size(); ++b)
        EXPECT_EQ(engine.bankStreams[b], ref.bankStreams[b])
            << "bank " << b << " stream diverged";
}

void
runDiff(const TimingConfig &sys, std::uint64_t records,
        const std::string &workload)
{
    AddressMapper mapper(sys.geometry, sys.mapping);
    const auto factory = workloadFactory(sys, mapper, records, workload);
    expectIdentical(runTiming(sys, factory),
                    referenceRunTiming(sys, factory));
}

} // namespace

/** The fig09 scheme matrix: PRA / SCA-64 / SCA-128 / PRCAT / DRCAT. */
TEST(EventEngineDiff, Fig09SchemeMatrix)
{
    struct Cell
    {
        SchemeKind kind;
        std::uint32_t counters;
    };
    const Cell cellsMatrix[] = {
        {SchemeKind::Pra, 0},      {SchemeKind::Sca, 64},
        {SchemeKind::Sca, 128},    {SchemeKind::Prcat, 64},
        {SchemeKind::Drcat, 64},
    };
    for (const Cell &cell : cellsMatrix) {
        TimingConfig sys = smallSystem(cell.kind);
        sys.scheme.numCounters = cell.counters;
        if (cell.kind == SchemeKind::Pra)
            sys.scheme.praProbability = 1.0 / 2048.0;
        SCOPED_TRACE(static_cast<int>(cell.kind));
        runDiff(sys, 40000, "comm1");
    }
}

/** Fig09's second threshold column (T = 16384 in paper terms). */
TEST(EventEngineDiff, ThresholdVariants)
{
    for (const std::uint32_t threshold : {2048u, 1024u}) {
        TimingConfig sys = smallSystem(SchemeKind::Drcat);
        sys.scheme.threshold = threshold;
        SCOPED_TRACE(threshold);
        runDiff(sys, 40000, "comm3");
    }
}

/** Workload diversity: distinct profiles drive distinct interleaves. */
TEST(EventEngineDiff, WorkloadSpread)
{
    for (const char *name : {"comm2", "comm4", "comm5"}) {
        TimingConfig sys = smallSystem(SchemeKind::Prcat);
        SCOPED_TRACE(name);
        runDiff(sys, 30000, name);
    }
}

/** The fig13 attack matrix: Heavy/Medium/Light x SCA/PRCAT/DRCAT. */
TEST(EventEngineDiff, Fig13AttackMatrix)
{
    const AttackMode modes[] = {AttackMode::Heavy, AttackMode::Medium,
                                AttackMode::Light};
    const SchemeKind kinds[] = {SchemeKind::Sca, SchemeKind::Prcat,
                                SchemeKind::Drcat};
    for (const AttackMode mode : modes) {
        for (const SchemeKind kind : kinds) {
            TimingConfig sys = smallSystem(kind);
            sys.scheme.threshold = 1024; // triggers within short runs
            AddressMapper mapper(sys.geometry, sys.mapping);
            const auto factory =
                attackFactory(sys, mapper, 30000, mode);
            SCOPED_TRACE(attackModeName(mode));
            expectIdentical(runTiming(sys, factory),
                            referenceRunTiming(sys, factory));
        }
    }
}

/** MultiBank placement synchronizes refresh bursts across banks. */
TEST(EventEngineDiff, MultiBankAttackKernel)
{
    TimingConfig sys = smallSystem(SchemeKind::Drcat);
    sys.scheme.threshold = 1024;
    AddressMapper mapper(sys.geometry, sys.mapping);
    const auto factory =
        attackFactory(sys, mapper, 30000, AttackMode::Medium,
                      AttackKernelKind::MultiBank);
    expectIdentical(runTiming(sys, factory),
                    referenceRunTiming(sys, factory));
}

/** Core-count sweep: tie-breaks among 1, 2, and 4 same-time cores. */
TEST(EventEngineDiff, CoreCounts)
{
    for (const std::uint32_t cores : {1u, 2u, 4u}) {
        TimingConfig sys = smallSystem(SchemeKind::Sca);
        sys.numCores = cores;
        SCOPED_TRACE(cores);
        runDiff(sys, 25000, "comm1");
    }
}

/**
 * Epoch-scale sweep, including the marker-placement regression: with
 * recording on, the engine must put every kEpochMarker at exactly the
 * same stream offset as the reference at any scaled epoch length (the
 * stream equality in expectIdentical checks positions, not counts).
 */
TEST(EventEngineDiff, EpochScalesAndMarkerPlacement)
{
    for (const double scaleValue : {0.0005, 0.002, 0.01}) {
        TimingConfig sys = smallSystem(SchemeKind::Prcat);
        sys.epochScale = scaleValue;
        SCOPED_TRACE(scaleValue);
        runDiff(sys, 50000, "comm1");
    }
}

/** Recording off exercises the no-observer path on both sides. */
TEST(EventEngineDiff, RecordingOff)
{
    for (const SchemeKind kind :
         {SchemeKind::None, SchemeKind::Drcat}) {
        TimingConfig sys = smallSystem(kind);
        sys.recordActivations = false;
        SCOPED_TRACE(static_cast<int>(kind));
        runDiff(sys, 40000, "comm2");
    }
}

/** Baseline (no scheme) with recording: the experiment-cache shape. */
TEST(EventEngineDiff, BaselineRecordedStreams)
{
    TimingConfig sys = smallSystem(SchemeKind::None);
    runDiff(sys, 60000, "comm1");
}

} // namespace catsim
