/**
 * @file
 * Closed-loop coverage of the stimulus timing path
 * (runTimingOnSources): the RefreshAwareAttackerSource must observe
 * RefreshActions delivered mid-flight by the memory controller and
 * re-aim, extracting strictly more disturbance from the tree schemes
 * than the blind kernel - the timing-path mirror of the activation-path
 * assertions in test_activation_source.cpp - while exact per-row
 * counting (CounterCache) stays flat, and the extra victim refreshes
 * must surface as execution-time overhead (ETO).
 */

#include <gtest/gtest.h>

#include "sim/experiment.hpp"
#include "sim/timing_sim.hpp"

namespace catsim
{

namespace
{

TimingConfig
stimulusSystem(SchemeKind kind)
{
    TimingConfig sys;
    sys.geometry = DramGeometry::dualCore2Ch();
    sys.scheme.kind = kind;
    sys.scheme.numCounters = 64;
    sys.scheme.maxLevels = 11;
    sys.scheme.threshold = 1024;
    if (kind == SchemeKind::CounterCache)
        sys.scheme.numCounters = 2048;
    sys.epochScale = 0.01; // ~512 K bus cycles per epoch
    return sys;
}

/** One identically seeded attacker per bank, open or closed loop. */
std::vector<std::unique_ptr<ActivationSource>>
makeFleet(const TimingConfig &sys, bool refresh_aware,
          std::uint64_t acts_per_epoch = 20000,
          std::uint64_t epochs = 1)
{
    std::vector<std::unique_ptr<ActivationSource>> fleet;
    const std::uint32_t banks = sys.geometry.totalBanks();
    fleet.reserve(banks);
    for (std::uint32_t b = 0; b < banks; ++b) {
        AttackSourceParams p;
        p.numRows = sys.geometry.rowsPerBank;
        p.targets = {100, 900, 1700, 2500};
        p.targetFraction = 0.5;
        p.actsPerEpoch = acts_per_epoch;
        p.epochs = epochs;
        p.seed = 77ULL * (b + 1);
        if (refresh_aware)
            fleet.push_back(
                std::make_unique<RefreshAwareAttackerSource>(p));
        else
            fleet.push_back(
                std::make_unique<SyntheticAttackSource>(p));
    }
    return fleet;
}

Count
fleetRotations(
    const std::vector<std::unique_ptr<ActivationSource>> &fleet)
{
    Count total = 0;
    for (const auto &src : fleet) {
        if (const auto *aware =
                dynamic_cast<const RefreshAwareAttackerSource *>(
                    src.get()))
            total += aware->rotations();
    }
    return total;
}

AdaptiveAttackSpec
attackSpec(AttackerKind attacker)
{
    AdaptiveAttackSpec spec;
    spec.attacker = attacker;
    spec.mode = AttackMode::Medium;
    spec.kernel = 1;
    return spec;
}

SchemeConfig
paperScheme(SchemeKind kind)
{
    SchemeConfig cfg;
    cfg.kind = kind;
    cfg.numCounters = (kind == SchemeKind::CounterCache) ? 2048 : 64;
    cfg.maxLevels = 11;
    cfg.threshold = 32768;
    return cfg;
}

} // namespace

TEST(TimingClosedLoop, BaselineFleetRunsToCompletion)
{
    TimingConfig sys = stimulusSystem(SchemeKind::None);
    const auto fleet = makeFleet(sys, false, 5000);
    const TimingResult res = runTimingOnSources(sys, fleet);
    // Every bank delivered its full stream through the controller.
    EXPECT_EQ(res.totalActivations,
              5000ull * sys.geometry.totalBanks());
    EXPECT_EQ(res.controller.reads, res.totalActivations);
    EXPECT_GT(res.execCycles, 0u);
    EXPECT_EQ(res.victimRowsRefreshed, 0u);
}

TEST(TimingClosedLoop, NullSlotsLeaveBanksIdle)
{
    TimingConfig sys = stimulusSystem(SchemeKind::None);
    auto fleet = makeFleet(sys, false, 5000);
    fleet[1].reset();
    fleet[7].reset();
    const TimingResult res = runTimingOnSources(sys, fleet);
    EXPECT_EQ(res.totalActivations,
              5000ull * (sys.geometry.totalBanks() - 2));
}

TEST(TimingClosedLoop, RecordsStreamsWithEpochMarkers)
{
    TimingConfig sys = stimulusSystem(SchemeKind::None);
    sys.recordActivations = true;
    const auto fleet = makeFleet(sys, false, 30000);
    const TimingResult res = runTimingOnSources(sys, fleet);
    EXPECT_GT(res.epochs, 0u);
    ASSERT_EQ(res.bankStreams.size(), sys.geometry.totalBanks());
    Count rows = 0;
    Count markers = 0;
    for (const RowAddr r : res.bankStreams[0]) {
        rows += r != kEpochMarker;
        markers += r == kEpochMarker;
    }
    EXPECT_EQ(rows, 30000u);
    EXPECT_EQ(markers, res.epochs);
}

TEST(TimingClosedLoop, MitigationBlocksTheHammeredBank)
{
    TimingConfig base = stimulusSystem(SchemeKind::None);
    const TimingResult b =
        runTimingOnSources(base, makeFleet(base, false));

    TimingConfig mit = stimulusSystem(SchemeKind::Drcat);
    const TimingResult m =
        runTimingOnSources(mit, makeFleet(mit, false));

    EXPECT_GT(m.victimRowsRefreshed, 0u);
    EXPECT_GT(m.execCycles, b.execCycles);
    EXPECT_EQ(m.totalActivations, b.totalActivations);
}

TEST(TimingClosedLoop, RefreshAwareReAimsOnTimingPath)
{
    for (const SchemeKind kind :
         {SchemeKind::Prcat, SchemeKind::Drcat}) {
        SCOPED_TRACE(static_cast<int>(kind));
        TimingConfig sys = stimulusSystem(kind);

        const auto openFleet = makeFleet(sys, false);
        const TimingResult statics =
            runTimingOnSources(sys, openFleet);

        const auto closedFleet = makeFleet(sys, true);
        const TimingResult adaptive =
            runTimingOnSources(sys, closedFleet);

        // The attacker really saw the defense: observed refreshes on
        // the timing path drove aggressor rotations.
        EXPECT_GT(fleetRotations(closedFleet), 0u);
        // Same activation budget, strictly more extracted refreshes -
        // each re-aim lands in a coarse tree region whose whole span
        // is refreshed at the next trigger.
        EXPECT_EQ(adaptive.totalActivations, statics.totalActivations);
        EXPECT_GT(adaptive.victimRowsRefreshed,
                  statics.victimRowsRefreshed);
        // And the extra blocking is visible on the clock.
        EXPECT_GT(adaptive.execCycles, statics.execCycles);
    }
}

TEST(TimingClosedLoop, ExactCountingStaysFlatUnderReAiming)
{
    TimingConfig sys = stimulusSystem(SchemeKind::CounterCache);

    const TimingResult statics =
        runTimingOnSources(sys, makeFleet(sys, false));
    const TimingResult adaptive =
        runTimingOnSources(sys, makeFleet(sys, true));

    // Exact per-row counting cannot be gamed by moving aggressors:
    // every rotation restarts the new row's count from zero, so the
    // adaptive attacker extracts no more refresh work than the blind
    // one (two victim rows per trigger either way).
    EXPECT_EQ(adaptive.totalActivations, statics.totalActivations);
    EXPECT_LE(adaptive.victimRowsRefreshed,
              statics.victimRowsRefreshed);
}

TEST(TimingClosedLoop, AdaptiveEtoOrdersAttackersAndSchemes)
{
    ExperimentRunner runner(0.02);

    const double drcatStatic = runner.evalAdaptiveEto(
        SystemPreset::DualCore2Ch, attackSpec(AttackerKind::Static),
        paperScheme(SchemeKind::Drcat));
    const double drcatAware = runner.evalAdaptiveEto(
        SystemPreset::DualCore2Ch,
        attackSpec(AttackerKind::RefreshAware),
        paperScheme(SchemeKind::Drcat));
    const double ccStatic = runner.evalAdaptiveEto(
        SystemPreset::DualCore2Ch, attackSpec(AttackerKind::Static),
        paperScheme(SchemeKind::CounterCache));
    const double ccAware = runner.evalAdaptiveEto(
        SystemPreset::DualCore2Ch,
        attackSpec(AttackerKind::RefreshAware),
        paperScheme(SchemeKind::CounterCache));

    // Mitigation under a saturating hammer costs time at all.
    EXPECT_GT(drcatStatic, 0.0);
    // Re-aiming multiplies the tree scheme's overhead...
    EXPECT_GT(drcatAware, 2.0 * drcatStatic);
    // ...but leaves exact counting essentially untouched.
    EXPECT_LT(ccAware, 1.5 * ccStatic);
    EXPECT_LT(ccAware, drcatAware);
}

} // namespace catsim
