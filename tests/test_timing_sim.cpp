/**
 * @file
 * Tests for the closed-loop timing simulator.
 */

#include <gtest/gtest.h>

#include "sim/timing_sim.hpp"
#include "trace/workloads.hpp"

namespace catsim
{

namespace
{

TimingConfig
smallSystem(SchemeKind kind = SchemeKind::None)
{
    TimingConfig sys;
    sys.geometry = DramGeometry::dualCore2Ch();
    sys.numCores = 2;
    sys.scheme.kind = kind;
    sys.scheme.numCounters = 64;
    sys.scheme.maxLevels = 11;
    sys.scheme.threshold = 2048;
    sys.epochScale = 0.002; // ~102 K cycles per epoch: fast tests
    return sys;
}

StreamFactory
workloadFactory(const TimingConfig &sys, const AddressMapper &mapper,
                std::uint64_t records, const std::string &name = "comm1")
{
    const WorkloadProfile profile = findWorkload(name);
    const DramGeometry geometry = sys.geometry;
    return [profile, geometry, &mapper,
            records](CoreId core) -> std::unique_ptr<TraceStream> {
        return std::make_unique<SyntheticWorkload>(
            profile, geometry, mapper, core + 1, records);
    };
}

} // namespace

TEST(TimingSim, BaselineRunsToCompletion)
{
    TimingConfig sys = smallSystem();
    AddressMapper mapper(sys.geometry, sys.mapping);
    auto res = runTiming(sys, workloadFactory(sys, mapper, 20000));
    EXPECT_GT(res.execCycles, 0u);
    EXPECT_GT(res.execSeconds, 0.0);
    EXPECT_EQ(res.totalActivations, res.controller.reads
                                    + res.controller.writes);
    EXPECT_EQ(res.victimRowsRefreshed, 0u);
}

TEST(TimingSim, RecordsActivationStreams)
{
    TimingConfig sys = smallSystem();
    sys.recordActivations = true;
    AddressMapper mapper(sys.geometry, sys.mapping);
    auto res = runTiming(sys, workloadFactory(sys, mapper, 20000));
    ASSERT_EQ(res.bankStreams.size(), sys.geometry.totalBanks());
    Count rows = 0;
    for (const auto &s : res.bankStreams) {
        for (const RowAddr r : s)
            rows += r != kEpochMarker;
    }
    EXPECT_EQ(rows, res.totalActivations);
}

TEST(TimingSim, EpochMarkersAppear)
{
    TimingConfig sys = smallSystem();
    sys.recordActivations = true;
    AddressMapper mapper(sys.geometry, sys.mapping);
    auto res = runTiming(sys, workloadFactory(sys, mapper, 100000));
    EXPECT_GT(res.epochs, 0u);
    Count markers = 0;
    for (const RowAddr r : res.bankStreams[0])
        markers += r == kEpochMarker;
    EXPECT_EQ(markers, res.epochs);
}

TEST(TimingSim, MoreCoresMoreTraffic)
{
    TimingConfig sys2 = smallSystem();
    AddressMapper mapper(sys2.geometry, sys2.mapping);
    auto res2 = runTiming(sys2, workloadFactory(sys2, mapper, 20000));

    TimingConfig sys4 = smallSystem();
    sys4.numCores = 4;
    auto res4 = runTiming(sys4, workloadFactory(sys4, mapper, 20000));
    EXPECT_EQ(res4.totalActivations, 2 * res2.totalActivations);
    EXPECT_GT(res4.execCycles, res2.execCycles / 2);
}

TEST(TimingSim, MitigationAddsOverhead)
{
    TimingConfig base = smallSystem(SchemeKind::None);
    base.epochScale = 0.02; // long epochs so counters reach threshold
    AddressMapper mapper(base.geometry, base.mapping);
    auto b = runTiming(base, workloadFactory(base, mapper, 150000));

    // An aggressive SCA (tiny threshold, few counters -> huge refresh
    // ranges) must slow the run down and refresh rows.
    TimingConfig mit = smallSystem(SchemeKind::Sca);
    mit.epochScale = 0.02;
    mit.scheme.numCounters = 32;
    mit.scheme.threshold = 256;
    auto m = runTiming(mit, workloadFactory(mit, mapper, 150000));

    EXPECT_GT(m.victimRowsRefreshed, 0u);
    EXPECT_GT(m.execCycles, b.execCycles);
}

TEST(TimingSim, DeterministicAcrossRuns)
{
    TimingConfig sys = smallSystem(SchemeKind::Drcat);
    AddressMapper mapper(sys.geometry, sys.mapping);
    auto a = runTiming(sys, workloadFactory(sys, mapper, 30000));
    auto b = runTiming(sys, workloadFactory(sys, mapper, 30000));
    EXPECT_EQ(a.execCycles, b.execCycles);
    EXPECT_EQ(a.victimRowsRefreshed, b.victimRowsRefreshed);
    EXPECT_EQ(a.scheme.refreshEvents, b.scheme.refreshEvents);
}

TEST(TimingSim, SchemeStatsMatchDramCounters)
{
    TimingConfig sys = smallSystem(SchemeKind::Sca);
    sys.scheme.threshold = 512;
    AddressMapper mapper(sys.geometry, sys.mapping);
    auto res = runTiming(sys, workloadFactory(sys, mapper, 100000));
    EXPECT_EQ(res.scheme.victimRowsRefreshed, res.victimRowsRefreshed);
    EXPECT_EQ(res.scheme.activations, res.totalActivations);
}

} // namespace catsim
