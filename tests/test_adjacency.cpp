/**
 * @file
 * Tests for the physical row-adjacency models and their integration
 * into the exact-victim schemes.
 */

#include <gtest/gtest.h>

#include "core/adjacency.hpp"
#include "core/counter_cache.hpp"
#include "core/pra.hpp"

namespace catsim
{

class AdjacencyKinds
    : public ::testing::TestWithParam<RowAdjacency::Kind>
{
};

TEST_P(AdjacencyKinds, MappingIsBijective)
{
    RowAdjacency adj(GetParam(), 4096, 256, 11);
    std::vector<bool> seen(4096, false);
    for (RowAddr r = 0; r < 4096; ++r) {
        const RowAddr p = adj.logicalToPhysical(r);
        ASSERT_LT(p, 4096u);
        ASSERT_FALSE(seen[p]);
        seen[p] = true;
        ASSERT_EQ(adj.physicalToLogical(p), r);
    }
}

TEST_P(AdjacencyKinds, MappingStaysInBlock)
{
    const std::uint32_t bs = 256;
    RowAdjacency adj(GetParam(), 4096, bs, 11);
    for (RowAddr r = 0; r < 4096; ++r)
        ASSERT_EQ(adj.logicalToPhysical(r) / bs, r / bs);
}

TEST_P(AdjacencyKinds, VictimsAreCorrectPhysicalNeighbors)
{
    RowAdjacency adj(GetParam(), 4096, 256, 11);
    std::array<RowAddr, 2> v;
    for (RowAddr r = 0; r < 4096; r += 7) {
        const std::uint32_t n = adj.victims(r, v);
        const RowAddr pos = adj.logicalToPhysical(r);
        ASSERT_EQ(n, (pos == 0 || pos == 4095) ? 1u : 2u);
        for (std::uint32_t i = 0; i < n; ++i) {
            const RowAddr vp = adj.logicalToPhysical(v[i]);
            ASSERT_TRUE(vp + 1 == pos || vp == pos + 1)
                << "victim not physically adjacent";
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, AdjacencyKinds,
    ::testing::Values(RowAdjacency::Kind::Direct,
                      RowAdjacency::Kind::BlockMirrored,
                      RowAdjacency::Kind::Scrambled));

TEST(Adjacency, DirectIsIdentity)
{
    RowAdjacency adj(RowAdjacency::Kind::Direct, 4096, 256);
    for (RowAddr r = 0; r < 4096; r += 13)
        EXPECT_EQ(adj.logicalToPhysical(r), r);
}

TEST(Adjacency, MirroredSeparatesLogicalNeighbors)
{
    // In the anti-parallel layout, logically adjacent rows 0 and 1 are
    // physically far apart - the classic rowhammer-defense pitfall.
    RowAdjacency adj(RowAdjacency::Kind::BlockMirrored, 4096, 256);
    const RowAddr p0 = adj.logicalToPhysical(0);
    const RowAddr p1 = adj.logicalToPhysical(1);
    EXPECT_GT(p1 > p0 ? p1 - p0 : p0 - p1, 1u);
}

TEST(Adjacency, PraUsesModelForVictims)
{
    RowAdjacency adj(RowAdjacency::Kind::BlockMirrored, 65536, 256);
    Pra pra(65536, 0.5, std::make_unique<TruePrng>(3));
    pra.setAdjacency(&adj);
    std::array<RowAddr, 2> expected;
    const std::uint32_t n = adj.victims(1000, expected);
    ASSERT_EQ(n, 2u);
    for (int i = 0; i < 200; ++i) {
        const auto act = pra.onActivate(1000);
        if (!act.triggered())
            continue;
        EXPECT_EQ(act.rowCount, 2u);
        EXPECT_EQ(act.lo, std::min(expected[0], expected[1]));
        EXPECT_EQ(act.hi, std::max(expected[0], expected[1]));
        return;
    }
    FAIL() << "p=0.5 never triggered";
}

TEST(Adjacency, CounterCacheUsesModelForVictims)
{
    RowAdjacency adj(RowAdjacency::Kind::Scrambled, 65536, 256, 99);
    CounterCache cc(65536, 2048, 8, 16);
    cc.setAdjacency(&adj);
    RefreshAction act;
    for (int i = 0; i < 16; ++i)
        act = cc.onActivate(5000);
    ASSERT_TRUE(act.triggered());
    std::array<RowAddr, 2> expected;
    const std::uint32_t n = adj.victims(5000, expected);
    ASSERT_EQ(n, act.rowCount);
    EXPECT_EQ(act.lo, std::min(expected[0], expected[1]));
    EXPECT_EQ(act.hi, std::max(expected[0], expected[1]));
}

TEST(Adjacency, NeighborRefreshHelperEdges)
{
    const auto lowEdge = neighborRefresh(0, 4096, nullptr);
    EXPECT_EQ(lowEdge.rowCount, 1u);
    EXPECT_EQ(lowEdge.lo, 1u);
    const auto highEdge = neighborRefresh(4095, 4096, nullptr);
    EXPECT_EQ(highEdge.rowCount, 1u);
    EXPECT_EQ(highEdge.hi, 4094u);
}

TEST(AdjacencyDeath, RejectsBadGeometry)
{
    EXPECT_EXIT(RowAdjacency(RowAdjacency::Kind::Direct, 4096, 300),
                ::testing::ExitedWithCode(1), "power-of-two");
}

} // namespace catsim
