/**
 * @file
 * Determinism tests for the benign multi-tenant cloud-mix generator:
 * stream determinism, epoch cadence, deterministic phase changes, and
 * bit-identical replay between replaySources and a 4-shard ShardedSim
 * with byte-identical checkpoint resume - including through the new
 * Misra-Gries and RFM schemes.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <set>
#include <vector>

#include "sim/shard.hpp"

namespace catsim
{

namespace
{

// Shard/job counts and checkpointing must come from the tests, not
// from the invoking environment.
const bool kEnvScrubbed = [] {
    ::unsetenv("CATSIM_JOBS");
    ::unsetenv("CATSIM_SHARDS");
    ::unsetenv("CATSIM_CHECKPOINT");
    return true;
}();

struct EnvVarGuard
{
    explicit EnvVarGuard(const char *name) : name_(name) {}
    ~EnvVarGuard() { ::unsetenv(name_); }
    const char *name_;
};

std::filesystem::path
freshDir(const std::string &name)
{
    const auto dir =
        std::filesystem::temp_directory_path() / ("catsim_" + name);
    std::filesystem::remove_all(dir);
    return dir;
}

constexpr RowAddr kRows = 65536;
constexpr std::uint32_t kBanks = 16;

CloudMixParams
mixParams(std::uint64_t seed)
{
    CloudMixParams p;
    p.numRows = kRows;
    p.tenants = 4;
    p.hotRowsPerTenant = 64;
    p.zipfTheta = 0.99;
    p.actsPerEpoch = 20000;
    p.epochs = 2;
    p.phaseEvery = 3000; // not a multiple of the chunk size
    p.seed = seed;
    return p;
}

/** Drain a source; returns all rows and counts epoch markers. */
std::vector<RowAddr>
drain(CloudMixSource &source, std::uint64_t *epochs = nullptr)
{
    std::vector<RowAddr> all;
    if (epochs)
        *epochs = 0;
    for (;;) {
        const RowAddr *rows = nullptr;
        std::size_t count = 0;
        const SourceChunk chunk = source.next(&rows, &count);
        if (chunk == SourceChunk::End)
            return all;
        if (chunk == SourceChunk::Epoch) {
            if (epochs)
                ++*epochs;
            continue;
        }
        all.insert(all.end(), rows, rows + count);
    }
}

/** Per-global-bank cloud-mix source; identical at any shard count. */
std::unique_ptr<ActivationSource>
makeCloudSource(std::uint32_t bank)
{
    CloudMixParams p = mixParams(1000 + bank);
    // Skew the per-bank lengths so work stealing has something to do.
    p.actsPerEpoch = (bank % 8 < 2) ? 20000 : 4000;
    return std::make_unique<CloudMixSource>(p);
}

ReplayResult
unshardedRun(const SchemeConfig &cfg)
{
    std::vector<std::unique_ptr<ActivationSource>> sources;
    for (std::uint32_t b = 0; b < kBanks; ++b)
        sources.push_back(makeCloudSource(b));
    return replaySources(sources, cfg, kRows);
}

void
expectSameReplay(const ReplayResult &a, const ReplayResult &b,
                 const std::string &what)
{
    EXPECT_EQ(a.stats.activations, b.stats.activations) << what;
    EXPECT_EQ(a.stats.refreshEvents, b.stats.refreshEvents) << what;
    EXPECT_EQ(a.stats.victimRowsRefreshed, b.stats.victimRowsRefreshed)
        << what;
    EXPECT_EQ(a.stats.sramAccesses, b.stats.sramAccesses) << what;
    EXPECT_EQ(a.stats.prngBits, b.stats.prngBits) << what;
    EXPECT_EQ(a.stats.splits, b.stats.splits) << what;
    EXPECT_EQ(a.stats.merges, b.stats.merges) << what;
    EXPECT_EQ(a.stats.epochResets, b.stats.epochResets) << what;
    EXPECT_EQ(a.stats.counterDramReads, b.stats.counterDramReads)
        << what;
    EXPECT_EQ(a.stats.counterDramWrites, b.stats.counterDramWrites)
        << what;
    EXPECT_EQ(a.banks, b.banks) << what;
    EXPECT_EQ(a.epochs, b.epochs) << what;
}

/** The scheme configs the corpus cares about, new baselines included. */
std::vector<SchemeConfig>
schemeMatrix()
{
    std::vector<SchemeConfig> configs(3);
    configs[0].kind = SchemeKind::Prcat;
    configs[0].numCounters = 16;
    configs[0].maxLevels = 11;
    configs[0].threshold = 2048;
    configs[1].kind = SchemeKind::MisraGries;
    configs[1].numCounters = 64;
    configs[1].threshold = 2048;
    configs[2].kind = SchemeKind::Rfm;
    configs[2].rfmBudget = 64;
    return configs;
}

} // namespace

TEST(CloudMix, StreamIsDeterministic)
{
    CloudMixSource a(mixParams(7));
    CloudMixSource b(mixParams(7));
    std::uint64_t epochsA = 0, epochsB = 0;
    EXPECT_EQ(drain(a, &epochsA), drain(b, &epochsB));
    EXPECT_EQ(epochsA, epochsB);
}

TEST(CloudMix, EpochCadenceAndLength)
{
    CloudMixSource source(mixParams(7));
    std::uint64_t epochs = 0;
    const std::vector<RowAddr> all = drain(source, &epochs);
    EXPECT_EQ(all.size(), 40000u) << "2 epochs x 20000 acts";
    EXPECT_EQ(epochs, 2u);
    for (const RowAddr row : all)
        ASSERT_LT(row, kRows);
}

TEST(CloudMix, PhaseChangesMoveHotSets)
{
    // Bases are a pure hash of (seed, phase, tenant): deterministic,
    // and different across phases for this seed.
    CloudMixParams p = mixParams(11);
    CloudMixSource source(p);
    std::vector<RowAddr> basesPhase0;
    for (std::uint32_t t = 0; t < p.tenants; ++t)
        basesPhase0.push_back(source.tenantBase(t));

    // Drive past the first phase boundary (phaseEvery = 3000 acts).
    const RowAddr *rows = nullptr;
    std::size_t count = 0;
    std::uint64_t produced = 0;
    while (produced < p.phaseEvery) {
        ASSERT_EQ(source.next(&rows, &count), SourceChunk::Rows);
        produced += count;
        // Chunks never straddle a phase boundary.
        ASSERT_LE(produced, p.phaseEvery);
    }
    std::vector<RowAddr> basesPhase1;
    for (std::uint32_t t = 0; t < p.tenants; ++t)
        basesPhase1.push_back(source.tenantBase(t));
    EXPECT_NE(basesPhase0, basesPhase1) << "hot sets never moved";

    // A second source driven to the same point lands on the same
    // bases - relocation does not depend on chunking history.
    CloudMixSource replayed(p);
    std::uint64_t replayedActs = 0;
    while (replayedActs < p.phaseEvery) {
        ASSERT_EQ(replayed.next(&rows, &count), SourceChunk::Rows);
        replayedActs += count;
    }
    for (std::uint32_t t = 0; t < p.tenants; ++t)
        EXPECT_EQ(replayed.tenantBase(t), basesPhase1[t]);
}

TEST(CloudMix, PhasesProduceDistinctWorkingSets)
{
    CloudMixParams p = mixParams(13);
    p.hotRowsPerTenant = 8; // tight hot sets, clear separation
    CloudMixSource source(p);
    std::vector<RowAddr> all = drain(source);
    const auto phaseLen = static_cast<std::ptrdiff_t>(p.phaseEvery);
    const std::set<RowAddr> phase0(all.begin(),
                                   all.begin() + phaseLen);
    const std::set<RowAddr> phase1(all.begin() + phaseLen,
                                   all.begin() + 2 * phaseLen);
    EXPECT_NE(phase0, phase1)
        << "phase change left every hot row in place";
}

TEST(CloudMix, ShardedRunMatchesUnshardedForEveryScheme)
{
    for (const SchemeConfig &cfg : schemeMatrix()) {
        const ReplayResult oracle = unshardedRun(cfg);
        ShardedSim sim(cfg, kRows, ShardPlan::make(kBanks, 4), 4);
        const FleetResult fleet = sim.run(makeCloudSource, "cloud");
        expectSameReplay(fleet.total, oracle,
                         "scheme " + std::to_string(static_cast<int>(
                             cfg.kind)));
        EXPECT_TRUE(fleet.errors.empty());
    }
}

TEST(CloudMix, FleetCheckpointResumesByteIdentically)
{
    const auto dir = freshDir("cloud_ckpt");
    EnvVarGuard env("CATSIM_CHECKPOINT");
    ::setenv("CATSIM_CHECKPOINT", dir.c_str(), 1);

    // Run the new-scheme leg through the journal: a fresh ShardedSim
    // with the same params must replay every shard from bytes.
    const SchemeConfig cfg = schemeMatrix()[1]; // Misra-Gries
    ShardedSim first(cfg, kRows, ShardPlan::make(kBanks, 4), 2);
    const FleetResult cold = first.run(makeCloudSource, "cloud_ck");
    EXPECT_EQ(cold.resumedShards, 0u);

    ShardedSim second(cfg, kRows, ShardPlan::make(kBanks, 4), 2);
    const FleetResult warm = second.run(makeCloudSource, "cloud_ck");
    EXPECT_EQ(warm.resumedShards, 4u);
    expectSameReplay(warm.total, cold.total, "resumed cloud fleet");
    for (std::size_t i = 0; i < cold.perShard.size(); ++i)
        expectSameReplay(warm.perShard[i], cold.perShard[i],
                         "resumed shard " + std::to_string(i));
    std::filesystem::remove_all(dir);
}

TEST(CloudMixDeath, RejectsBadParams)
{
    CloudMixParams zeroTenants = mixParams(1);
    zeroTenants.tenants = 0;
    EXPECT_EXIT(CloudMixSource{zeroTenants},
                ::testing::ExitedWithCode(1), "tenant");
    CloudMixParams hugeSet = mixParams(1);
    hugeSet.hotRowsPerTenant = kRows + 1;
    EXPECT_EXIT(CloudMixSource{hugeSet}, ::testing::ExitedWithCode(1),
                "does not fit");
    CloudMixParams noActs = mixParams(1);
    noActs.actsPerEpoch = 0;
    EXPECT_EXIT(CloudMixSource{noActs}, ::testing::ExitedWithCode(1),
                "actsPerEpoch");
}

} // namespace catsim
