/**
 * @file
 * Tests for the rank-shared CAT counter pool (src/core/shared_pool.*)
 * and its integration with CatTree, the factory's per-rank grouping,
 * and the replay engine's interleaved contention.
 */

#include <gtest/gtest.h>

#include <memory>

#include "common/rng.hpp"
#include "core/drcat.hpp"
#include "core/factory.hpp"
#include "core/prcat.hpp"
#include "core/shared_pool.hpp"
#include "core/split_thresholds.hpp"
#include "core/tree_bundle.hpp"
#include "sim/activation_sim.hpp"

namespace catsim
{

namespace
{

CatTree::Params
pooledParams(SharedCounterPool *pool, std::uint32_t per_bank,
             std::uint32_t T = 2048)
{
    CatTree::Params p;
    p.numRows = 65536;
    p.numCounters = pool->capacity();
    p.presplitCounters = per_bank;
    p.maxLevels = 11;
    p.refreshThreshold = T;
    p.splitThresholds = computeSplitThresholds(per_bank, 11, T);
    p.sharedPool = pool;
    return p;
}

} // namespace

TEST(SharedCounterPool, Accounting)
{
    SharedCounterPool pool(4);
    EXPECT_EQ(pool.capacity(), 4u);
    EXPECT_EQ(pool.available(), 4u);
    EXPECT_TRUE(pool.tryAcquire());
    EXPECT_TRUE(pool.tryAcquire());
    EXPECT_EQ(pool.inUse(), 2u);
    pool.release(1);
    EXPECT_EQ(pool.inUse(), 1u);
    EXPECT_EQ(pool.peakInUse(), 2u);
    EXPECT_TRUE(pool.tryAcquire());
    EXPECT_TRUE(pool.tryAcquire());
    EXPECT_TRUE(pool.tryAcquire());
    EXPECT_FALSE(pool.tryAcquire()) << "capacity must bound acquires";
    EXPECT_EQ(pool.acquires(), 5u);
}

TEST(SharedCounterPoolDeath, RejectsZeroCapacityAndOverRelease)
{
    EXPECT_EXIT(SharedCounterPool(0), ::testing::ExitedWithCode(1),
                "non-zero");
    SharedCounterPool pool(2);
    ASSERT_TRUE(pool.tryAcquire());
    EXPECT_DEATH(pool.release(2), "more counters");
}

TEST(SharedPoolTree, InitialTreesChargeThePool)
{
    SharedCounterPool pool(2 * 64);
    CatTree a(pooledParams(&pool, 64));
    EXPECT_EQ(pool.inUse(), 32u); // P = 64/2 initial leaves
    {
        CatTree b(pooledParams(&pool, 64));
        EXPECT_EQ(pool.inUse(), 64u);
    }
    // Destruction releases bank b's counters back to the rank.
    EXPECT_EQ(pool.inUse(), 32u);
    std::string why;
    EXPECT_TRUE(a.checkInvariants(&why)) << why;
}

TEST(SharedPoolTree, GrowthIsGatedByPoolNotLocalCapacity)
{
    // Two trees, pool sized so only 8 counters of headroom exist
    // beyond the initial shapes (2 x P = 16 charged at reset): growth
    // must stop at the pool limit, and the starved tree must fall
    // back to refreshing at T (the "no free counter" branch of
    // Algorithm 1), never crash.
    SharedCounterPool pool(2 * 8 + 8);
    CatTree hot(pooledParams(&pool, 16));
    CatTree cold(pooledParams(&pool, 16));
    ASSERT_EQ(pool.available(), 8u);

    Xoshiro256StarStar rng(5);
    for (int i = 0; i < 300000; ++i)
        hot.access(static_cast<RowAddr>(rng.nextBounded(256)));
    // The hot tree grabbed the whole headroom...
    EXPECT_EQ(pool.available(), 0u);
    EXPECT_EQ(hot.activeCounters(), 8u + 8u); // P + headroom
    // ...and the cold tree can only refresh, not split.
    const std::uint32_t before = cold.activeCounters();
    for (int i = 0; i < 100000; ++i)
        cold.access(42);
    EXPECT_EQ(cold.activeCounters(), before);
    std::string why;
    EXPECT_TRUE(hot.checkInvariants(&why)) << why;
    EXPECT_TRUE(cold.checkInvariants(&why)) << why;

    // Resetting the hot tree returns its growth to the rank and
    // re-enables the cold one.
    hot.reset();
    EXPECT_EQ(pool.inUse(), 2u * 8u);
    for (int i = 0; i < 100000; ++i)
        cold.access(42);
    EXPECT_GT(cold.activeCounters(), before);
}

TEST(SharedPoolTree, PooledAccessPaysArbitrationSramAccess)
{
    // Identical trees, one private, one pooled: the pooled walk costs
    // exactly one extra SRAM access per activation (rank bank-select),
    // plus one per split (shared free-list update).
    SharedCounterPool pool(64);
    CatTree pooled(pooledParams(&pool, 64));
    CatTree::Params priv = pooledParams(&pool, 64);
    priv.numCounters = 64;
    priv.presplitCounters = 0;
    priv.sharedPool = nullptr;
    CatTree privTree(priv);

    Xoshiro256StarStar rng(11);
    for (int i = 0; i < 50000; ++i) {
        const auto row = static_cast<RowAddr>(rng.nextBounded(65536));
        const auto a = pooled.access(row);
        const auto b = privTree.access(row);
        ASSERT_EQ(a.didSplit, b.didSplit) << "access " << i;
        ASSERT_EQ(a.refreshed, b.refreshed) << "access " << i;
        ASSERT_EQ(a.sramAccesses,
                  b.sramAccesses + 1u + (a.didSplit ? 1u : 0u))
            << "access " << i;
    }
}

TEST(SharedPoolTree, PrcatEpochResetReturnsCountersToTheRank)
{
    auto pool = std::make_shared<SharedCounterPool>(8 * 64);
    Prcat scheme(65536, 64, 11, 2048, {}, pool);
    for (int i = 0; i < 200000; ++i)
        scheme.onActivate(static_cast<RowAddr>(i % 512));
    EXPECT_GT(pool->inUse(), 32u) << "hammering must grow the tree";
    scheme.onEpoch(); // full reset: back to the pre-split charge
    EXPECT_EQ(pool->inUse(), 32u);
    EXPECT_EQ(scheme.name(), "PRCAT_64_rank8");
}

TEST(SharedPoolFactory, GroupsConsecutiveBanksPerPool)
{
    SchemeConfig cfg;
    cfg.kind = SchemeKind::Drcat;
    cfg.numCounters = 16;
    cfg.maxLevels = 11;
    cfg.threshold = 2048;
    cfg.banksPerPool = 4;
    auto schemes = makeBankSchemes(cfg, 65536, 10);
    ASSERT_EQ(schemes.size(), 10u);
    std::vector<const SharedCounterPool *> pools;
    for (const auto &s : schemes) {
        // Pooled CAT groups come back bundle-backed by default; the
        // group's pool is reachable either way.
        const auto hint = s->bundleHint();
        pools.push_back(hint.bundled()
                            ? hint.bundle->sharedPool()
                            : dynamic_cast<const Prcat &>(*s)
                                  .sharedPool());
    }
    // Banks 0-3 share, 4-7 share, 8-9 form a short tail group.
    for (int b = 1; b < 4; ++b)
        EXPECT_EQ(pools[b], pools[0]);
    for (int b = 5; b < 8; ++b)
        EXPECT_EQ(pools[b], pools[4]);
    EXPECT_NE(pools[4], pools[0]);
    EXPECT_NE(pools[8], pools[4]);
    EXPECT_EQ(pools[9], pools[8]);
    EXPECT_EQ(pools[0]->capacity(), 4u * 16u);
    EXPECT_EQ(pools[8]->capacity(), 2u * 16u) << "tail group keeps "
                                                 "the per-bank budget";
    EXPECT_EQ(schemes[0]->name(), "DRCAT_16_rank4");
}

TEST(SharedPoolReplay, InterleavedContentionIsFairAcrossBanks)
{
    // Two banks hammer identical streams against a shared pool with
    // room for only one bank's worth of growth.  The round-robin
    // interleave must split the headroom between them instead of
    // letting bank 0 drain the pool before bank 1 runs.
    SchemeConfig cfg;
    cfg.kind = SchemeKind::Drcat;
    cfg.numCounters = 16;
    cfg.maxLevels = 11;
    cfg.threshold = 2048;
    cfg.banksPerPool = 2;

    std::vector<std::vector<RowAddr>> streams(2);
    Xoshiro256StarStar rng(3);
    for (int i = 0; i < 200000; ++i) {
        const auto row = static_cast<RowAddr>(rng.nextBounded(512));
        streams[0].push_back(row);
        streams[1].push_back(row);
    }
    const ReplayResult res = replayActivations(streams, cfg, 65536);
    EXPECT_EQ(res.banks, 2u);
    EXPECT_EQ(res.stats.activations, 400000u);

    // Identical per-bank demand, shared budget at iso-storage: each
    // bank must end up growing like a private M=16 bank.  Sequential
    // bank-by-bank replay instead gives bank 0 the whole headroom and
    // starves bank 1 into huge-group refreshes (this is the
    // regression the interleave fixes).
    SchemeConfig lone = cfg;
    lone.banksPerPool = 0;
    std::vector<std::vector<RowAddr>> soloStream(1, streams[0]);
    const ReplayResult solo =
        replayActivations(soloStream, lone, 65536);
    EXPECT_GE(res.stats.splits, 3 * solo.stats.splits / 2)
        << "shared growth collapsed onto one bank";
    EXPECT_LT(res.stats.victimRowsRefreshed,
              4 * solo.stats.victimRowsRefreshed)
        << "a starved bank is refreshing giant groups";
}

TEST(SharedPoolReplay, PooledReplayIsDeterministic)
{
    SchemeConfig cfg;
    cfg.kind = SchemeKind::Prcat;
    cfg.numCounters = 16;
    cfg.maxLevels = 11;
    cfg.threshold = 2048;
    cfg.banksPerPool = 4;

    std::vector<std::vector<RowAddr>> streams(4);
    Xoshiro256StarStar rng(17);
    for (int i = 0; i < 100000; ++i)
        for (auto &s : streams)
            s.push_back(static_cast<RowAddr>(rng.nextBounded(4096)));
    streams[2].push_back(kEpochMarker);

    const ReplayResult a = replayActivations(streams, cfg, 65536);
    const ReplayResult b = replayActivations(streams, cfg, 65536);
    EXPECT_EQ(a.stats.activations, b.stats.activations);
    EXPECT_EQ(a.stats.refreshEvents, b.stats.refreshEvents);
    EXPECT_EQ(a.stats.victimRowsRefreshed,
              b.stats.victimRowsRefreshed);
    EXPECT_EQ(a.stats.splits, b.stats.splits);
    EXPECT_EQ(a.stats.sramAccesses, b.stats.sramAccesses);
}

} // namespace catsim
